module weakorder

go 1.22
