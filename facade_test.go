package weakorder_test

import (
	"strings"
	"testing"

	"weakorder"
)

// TestNewMachineAllModels instantiates every operational model through the
// facade and explores one step of each.
func TestNewMachineAllModels(t *testing.T) {
	p := weakorder.MustParseProgram(mpSync).Program
	models := []weakorder.HardwareModel{
		weakorder.ModelSC, weakorder.ModelWriteBuffer, weakorder.ModelNetwork,
		weakorder.ModelNonAtomic, weakorder.ModelWODef1, weakorder.ModelWODef2,
		weakorder.ModelWODef2DRF1,
	}
	for _, m := range models {
		mach := weakorder.NewMachine(m, p)
		if mach == nil {
			t.Fatalf("%s: nil machine", m)
		}
		ts := mach.Transitions()
		if len(ts) == 0 {
			t.Fatalf("%s: no initial transitions", m)
		}
		if err := mach.Apply(ts[0]); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestNewMachineUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown model")
		}
	}()
	weakorder.NewMachine("no-such-model", weakorder.MustParseProgram(mpSync).Program)
}

func TestCheckModelCustomBound(t *testing.T) {
	p := weakorder.MustParseProgram(mpSync).Program
	rep, err := weakorder.CheckModel(p, weakorder.DRF1(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Obeys() {
		t.Errorf("mp-sync should obey DRF1 too: %s", rep)
	}
}

func TestFacadeConditionsCheck(t *testing.T) {
	p := weakorder.MustParseProgram(mpSync).Program
	cfg := weakorder.NewSimConfig(weakorder.PolicyWODef2)
	cfg.RecordTimings = true
	res, err := weakorder.Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep := weakorder.CheckConditions(res); !rep.OK() {
		t.Errorf("conditions: %s", rep)
	}
	cfg = weakorder.NewSimConfig(weakorder.PolicyWODef2DRF1)
	cfg.RecordTimings = true
	res, err = weakorder.Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep := weakorder.CheckConditionsRefined(res); !rep.OK() {
		t.Errorf("refined conditions: %s", rep)
	}
}

func TestFacadeLockDiscipline(t *testing.T) {
	locked := weakorder.MustParseProgram(`
name: locked
init: l=0 c=0
thread:
a0:
    tas r0, l, 1
    bne r0, 0, a0
    ld r1, c
    add r1, r1, 1
    st c, r1
    sync.st l, 0
thread:
a1:
    tas r0, l, 1
    bne r0, 0, a1
    st c, 9
    sync.st l, 0
`).Program
	cfg := weakorder.NewSimConfig(weakorder.PolicyWODef2)
	cfg.RecordTrace = true
	res, err := weakorder.Simulate(locked, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := weakorder.CheckLockDiscipline(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("lock discipline: %s", rep)
	}
}

func TestFacadePhaseDiscipline(t *testing.T) {
	// A deliberate intra-phase conflict through the facade types.
	e := &weakorder.Execution{}
	e.Append(weakorder.Access{Proc: 0, Op: weakorder.OpWrite, Addr: 10, Value: 1})
	e.Append(weakorder.Access{Proc: 1, Op: weakorder.OpRead, Addr: 10, Value: 1})
	rep, err := weakorder.CheckPhaseDiscipline(e, weakorder.PhaseBarrier{Counter: 100, Sense: 101})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("intra-phase conflict accepted")
	}
}

func TestFacadeReadKeyOf(t *testing.T) {
	p := weakorder.MustParseProgram(mpSync).Program
	out, err := weakorder.SCOutcomes(p)
	if err != nil {
		t.Fatal(err)
	}
	// Thread 1's final read of d (some op index >= 1) must be 1 in every
	// result; locate it via ReadKeyOf over plausible indices.
	for _, k := range out.Keys() {
		r := out[k]
		found := false
		for idx := 1; idx < 64; idx++ {
			if v, ok := r.Reads[weakorder.ReadKeyOf(1, idx)]; ok && v == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("no read of 1 found in result %q", k)
		}
	}
}

func TestFacadeModelNamesMatchFactories(t *testing.T) {
	p := weakorder.MustParseProgram(mpSync).Program
	for _, m := range []weakorder.HardwareModel{
		weakorder.ModelSC, weakorder.ModelWODef2, weakorder.ModelNonAtomic,
	} {
		mach := weakorder.NewMachine(m, p)
		if !strings.EqualFold(mach.Name(), string(m)) {
			t.Errorf("model %q has machine name %q", m, mach.Name())
		}
	}
}
