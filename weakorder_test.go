package weakorder_test

import (
	"testing"

	"weakorder"
)

const mpSync = `
name: mp
init: d=0 f=0
thread:
    st d, 1
    sync.st f, 1
thread:
wait:
    sync.ld r0, f
    beq r0, 0, wait
    ld r1, d
exists: 1:r1=0
`

const mpData = `
name: mp-racy
init: d=0 f=0
thread:
    st d, 1
    st f, 1
thread:
wait:
    ld r0, f
    beq r0, 0, wait
    ld r1, d
exists: 1:r1=0
`

func TestFacadeParseAndCheck(t *testing.T) {
	res, err := weakorder.ParseProgram(mpSync)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := weakorder.CheckDRF0(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Obeys() {
		t.Errorf("mp-sync should obey DRF0: %s", rep)
	}
	racy := weakorder.MustParseProgram(mpData).Program
	rep, err = weakorder.CheckDRF0(racy)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Obeys() {
		t.Error("mp-racy should violate DRF0")
	}
}

func TestFacadeContract(t *testing.T) {
	p := weakorder.MustParseProgram(mpSync).Program
	honored, err := weakorder.VerifyContract(weakorder.ModelWODef2, p)
	if err != nil {
		t.Fatal(err)
	}
	if !honored.Honored() || !honored.ObeysModel {
		t.Errorf("WO-def2 must honor the contract on mp-sync: %s", honored)
	}
	broken, err := weakorder.VerifyContract(weakorder.ModelNonAtomic, p)
	if err != nil {
		t.Fatal(err)
	}
	if broken.Honored() {
		t.Errorf("the NonAtomic machine should violate the contract: %s", broken)
	}
}

func TestFacadeOutcomesAndConditions(t *testing.T) {
	res := weakorder.MustParseProgram(mpSync)
	out, err := weakorder.Outcomes(weakorder.ModelWODef2, res.Program)
	if err != nil {
		t.Fatal(err)
	}
	// The exists outcome (stale payload) must be absent: every result has
	// the consumer's second read (op index 2: two sync reads precede it in
	// the shortest run... op indices are dynamic) — simply check all read
	// values of d are 1 via the recorded final memory and reads.
	for _, k := range out.Keys() {
		r := out[k]
		if r.Final[res.Names["d"]] != 1 {
			t.Errorf("final d = %d", r.Final[res.Names["d"]])
		}
	}
	if len(out) == 0 {
		t.Fatal("no outcomes")
	}
}

func TestFacadeSimulateAllPolicies(t *testing.T) {
	p := weakorder.MustParseProgram(mpSync).Program
	for _, pol := range []weakorder.Policy{
		weakorder.PolicySC, weakorder.PolicyWODef1,
		weakorder.PolicyWODef2, weakorder.PolicyWODef2DRF1,
	} {
		cfg := weakorder.NewSimConfig(pol)
		cfg.RecordTrace = true
		res, err := weakorder.Simulate(p, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.FinalRegs[1][1] != 1 {
			t.Errorf("%s: consumer read %d, want 1", pol, res.FinalRegs[1][1])
		}
		w, err := weakorder.IsSequentiallyConsistent(res.Trace, p.Init)
		if err != nil {
			t.Fatal(err)
		}
		if !w.SC {
			t.Errorf("%s: trace not SC", pol)
		}
	}
}

func TestFacadeBuilder(t *testing.T) {
	p := weakorder.NewBuilder("built").
		Thread().
		Store(0, weakorder.Imm(1)).
		SyncStore(1, weakorder.Imm(1)).
		Halt().
		Thread().
		SyncLoad(0, 1).
		Load(1, 0).
		Halt().
		MustBuild()
	if p.NumThreads() != 2 {
		t.Fatal("builder through facade broken")
	}
	if _, err := weakorder.SCOutcomes(p); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExecutionRaces(t *testing.T) {
	e := &weakorder.Execution{}
	e.Append(weakorder.Access{Proc: 0, Op: weakorder.OpWrite, Addr: 0, Value: 1})
	e.Append(weakorder.Access{Proc: 1, Op: weakorder.OpRead, Addr: 0, Value: 1})
	rep, err := weakorder.ExecutionRaces(e, weakorder.DRF0())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Free() {
		t.Error("unsynchronized conflict should race")
	}
	if weakorder.DRF0().Name() != "DRF0" || weakorder.DRF1().Name() != "DRF1" {
		t.Error("model names wrong")
	}
}
