// Command wocampd is the always-on campaign service: an HTTP/JSON front end
// over the internal/campaign engine that turns the simulator into a shared
// memory-model oracle.
//
// Usage:
//
//	wocampd [-addr HOST:PORT] [-dir DIR] [-cache PATH]
//
// Endpoints:
//
//	POST /v1/check              check one litmus program against machines
//	POST /v1/campaigns          submit a campaign spec (JSON); returns its id
//	GET  /v1/campaigns          list campaigns
//	GET  /v1/campaigns/{id}     one campaign's status (+report when done)
//	GET  /v1/campaigns/{id}/events   NDJSON per-seed progress (replay + live)
//	GET  /v1/stats              result-cache counters
//
// Single-program submissions are answered from the digest-keyed result cache
// when an identical (program, machines, budgets) combination was ever checked
// before — the response's "cached" flag and "explored_now" counter (zero on a
// hit) prove no re-exploration happened. Campaigns run in the background on
// the shared worker pool and checkpoint after every block, so killing the
// server loses nothing: on restart every incomplete campaign in -dir is
// resumed automatically. SIGINT/SIGTERM shut down gracefully — in-flight
// campaigns write a final checkpoint before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"weakorder/internal/campaign"
)

func main() {
	addr := flag.String("addr", "localhost:8423", "listen address")
	dir := flag.String("dir", "wocampd-data", "campaign checkpoint root directory")
	cachePath := flag.String("cache", "", `result cache segment (default DIR/cache.wocs; "off" disables caching)`)
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	var store *campaign.Store
	if *cachePath != "off" {
		path := *cachePath
		if path == "" {
			path = *dir + "/cache.wocs"
		}
		var err error
		if store, err = campaign.OpenStore(path); err != nil {
			fatal(err)
		}
		defer store.Close()
		if store.Discarded > 0 {
			fmt.Fprintf(os.Stderr, "wocampd: cache %s: %d stale/damaged byte(s) discarded, %d entrie(s) recovered\n",
				path, store.Discarded, store.Recovered)
		}
		fmt.Printf("wocampd: cache %s: %d entrie(s)\n", path, store.Len())
	}

	srv := campaign.NewServer(store, *dir)
	resumed, err := srv.Recover()
	if err != nil {
		fatal(err)
	}
	for _, id := range resumed {
		fmt.Printf("wocampd: resuming checkpointed campaign %s\n", id)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wocampd: serving on http://%s (data in %s)\n", ln.Addr(), *dir)

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-done:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting requests, interrupt every campaign
	// (each writes a final checkpoint), then exit cleanly — a restart resumes
	// exactly where this instance stopped.
	fmt.Fprintln(os.Stderr, "wocampd: shutting down; checkpointing campaigns")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "wocampd: %v\n", err)
	}
	srv.Shutdown()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wocampd: %v\n", err)
	os.Exit(1)
}
