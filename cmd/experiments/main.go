// Command experiments regenerates the paper's figures and the quantitative
// comparisons as text tables.
//
// Usage:
//
//	experiments [-run fig1|fig2|fig3|quant|spin|contract|fence|overlap|capacity|openloop|all] [-n N] [-seed S]
//
// -n sets the number of random programs for the contract sweep; -seed its
// generator seed. -cpuprofile and -memprofile write pprof profiles for the
// run, for inspection with `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"weakorder/internal/experiments"
	"weakorder/internal/stats"
)

func main() {
	run := flag.String("run", "all", "experiment to run: fig1, fig2, fig3, quant, spin, contract, fence, delayset, conditions, sweep, protocol, overlap, capacity, openloop, all")
	n := flag.Int("n", 40, "random programs for the contract sweep")
	seed := flag.Int64("seed", 7, "random seed for the contract sweep")
	capacityMaxP := flag.Int("max-p", 64, "largest processor count for the capacity sweep")
	openLoopMaxRate := flag.Int("max-rate", 64, "largest arrival rate for the open-loop sweep")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
		}()
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	print := func(tables ...*stats.Table) {
		for _, t := range tables {
			fmt.Println(t)
		}
	}

	if want("fig1") {
		ran = true
		s, err := experiments.Fig1()
		if err != nil {
			fail(err)
		}
		print(s.Tables...)
		fmt.Printf("figure 1 violation reachable on: %s\n\n", strings.Join(s.ViolationOn, ", "))
	}
	if want("fig2") {
		ran = true
		s, err := experiments.Fig2()
		if err != nil {
			fail(err)
		}
		print(s.Table)
	}
	if want("fig3") {
		ran = true
		s, err := experiments.Fig3()
		if err != nil {
			fail(err)
		}
		print(s.Table)
		fmt.Printf("def1 producer always slower than def2 producer: %v\n\n", s.Def1P0AlwaysSlower)
	}
	if want("quant") {
		ran = true
		s, err := experiments.Quant()
		if err != nil {
			fail(err)
		}
		print(s.Table)
	}
	if want("spin") {
		ran = true
		s, err := experiments.Spin()
		if err != nil {
			fail(err)
		}
		print(s.Table)
		fmt.Printf("refinement faster: barrier=%v lock=%v; exclusive acquisitions reduced: %v\n\n",
			s.RefinementFasterOnBarrier, s.RefinementFasterOnLock, s.GetXReduced)
	}
	if want("contract") {
		ran = true
		s, err := experiments.Contract(*n, *seed)
		if err != nil {
			fail(err)
		}
		print(s.Table)
	}
	if want("fence") {
		ran = true
		s, err := experiments.Fence()
		if err != nil {
			fail(err)
		}
		print(s.Table)
	}
	if want("delayset") {
		ran = true
		s, err := experiments.DelaySet(*n, *seed)
		if err != nil {
			fail(err)
		}
		print(s.Table)
	}
	if want("conditions") {
		ran = true
		s, err := experiments.Conditions()
		if err != nil {
			fail(err)
		}
		print(s.Table)
	}
	if want("sweep") {
		ran = true
		s, err := experiments.Sweep()
		if err != nil {
			fail(err)
		}
		print(s.Table)
	}
	if want("overlap") {
		ran = true
		s, err := experiments.Overlap()
		if err != nil {
			fail(err)
		}
		print(s.Table)
		fmt.Printf("overlap reclaimed at every cell: %v (total %d cycles)\n\n",
			s.AllReclaimedPositive, s.TotalReclaimed)
	}
	if want("capacity") {
		ran = true
		maxP := *capacityMaxP
		s, err := experiments.CapacityUpTo(maxP)
		if err != nil {
			fail(err)
		}
		print(s.Table)
		knee := func(p int) string {
			if p == 0 {
				return "not reached"
			}
			return fmt.Sprintf("P=%d", p)
		}
		fmt.Printf("capacity knee: high contention %s, low contention %s\n", knee(s.KneeHigh), knee(s.KneeLow))
		// Stderr, not stdout: the throughput figure is wall-clock and would
		// break the byte-identical-at-any-pool-width property of golden output.
		fmt.Fprintf(os.Stderr, "capacity engine throughput: %.0f simcycles/sec (wall-clock, excluded from golden output)\n", s.SimCyclesPerSec)
		fmt.Println()
	}
	if want("openloop") {
		ran = true
		s, err := experiments.OpenLoopUpTo(*openLoopMaxRate)
		if err != nil {
			fail(err)
		}
		print(s.Table)
		knee := func(r int) string {
			if r == 0 {
				return "not reached"
			}
			return fmt.Sprintf("rate=%d", r)
		}
		fmt.Printf("open-loop knee: lock %s, barrier %s, prodcons %s\n", knee(s.KneeLock), knee(s.KneeBarrier), knee(s.KneeProdCons))
		// Stderr, not stdout: wall-clock, excluded from golden output.
		fmt.Fprintf(os.Stderr, "open-loop engine throughput: %.0f simcycles/sec (wall-clock, excluded from golden output)\n", s.SimCyclesPerSec)
		fmt.Println()
	}
	if want("protocol") {
		ran = true
		s, err := experiments.Protocol()
		if err != nil {
			fail(err)
		}
		print(s.Table)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *run)
		os.Exit(2)
	}
}
