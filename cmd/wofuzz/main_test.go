package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildWofuzz(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wofuzz")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s %v: %v\n%s", bin, args, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestAllSkippedBudgetExit pins the distinct error path: when the state
// budget is so small that every program is skipped, the campaign decided
// nothing and must exit with status 2 (not 0, which would read as "no
// violations", and not the violation status 1).
func TestAllSkippedBudgetExit(t *testing.T) {
	bin := buildWofuzz(t)
	out, code := run(t, bin, "-seeds", "2", "-max-states", "1", "-minimize=false")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "state budget exhausted on every program") {
		t.Fatalf("missing budget message in output:\n%s", out)
	}
}

// TestPORFlag runs a small campaign with reduction on and off: both must
// succeed, and the summary lines (checked/drf0/racy counts) must be
// identical — POR may only change how much work the verdicts cost.
func TestPORFlag(t *testing.T) {
	bin := buildWofuzz(t)
	var summaries []string
	for _, por := range []string{"on", "off"} {
		out, code := run(t, bin, "-seeds", "6", "-minimize=false", "-por", por)
		if code != 0 {
			t.Fatalf("-por=%s: exit code = %d\noutput:\n%s", por, code, out)
		}
		i := strings.Index(out, "wofuzz: ")
		j := strings.Index(out, " in ") // strip the elapsed-time suffix
		if i < 0 || j < 0 || j < i {
			t.Fatalf("-por=%s: unexpected summary output:\n%s", por, out)
		}
		summaries = append(summaries, out[i:j])
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("POR changed campaign verdicts:\n on: %s\noff: %s", summaries[0], summaries[1])
	}
	if out, code := run(t, bin, "-por", "sideways"); code != 1 || !strings.Contains(out, "invalid -por") {
		t.Fatalf("invalid -por: exit code = %d, output:\n%s", code, out)
	}
}

// TestMachinesFlag pins the -machines selection surface: the relaxed
// write-buffer machines resolve by name and run a campaign to completion,
// while an unknown name is rejected before any program is generated, with an
// error naming the offender.
func TestMachinesFlag(t *testing.T) {
	bin := buildWofuzz(t)
	out, code := run(t, bin, "-seeds", "3", "-minimize=false", "-machines", "tso,pso,rmo")
	if code != 0 {
		t.Fatalf("-machines tso,pso,rmo: exit code = %d\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "checked") {
		t.Fatalf("-machines tso,pso,rmo: campaign summary missing:\n%s", out)
	}
	out, code = run(t, bin, "-machines", "tso,no-such-machine")
	if code != 1 {
		t.Fatalf("unknown machine: exit code = %d, want 1\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, `unknown machine "no-such-machine"`) {
		t.Fatalf("unknown-machine error does not name the offender:\n%s", out)
	}
	if strings.Contains(out, "checked") {
		t.Fatalf("campaign ran despite the bad -machines value:\n%s", out)
	}
}

// TestChaosMode runs a small chaos campaign end to end: it must complete with
// status 0, actually inject faults, and report the deterministic summary.
func TestChaosMode(t *testing.T) {
	bin := buildWofuzz(t)
	args := []string{"-chaos", "-seeds", "8", "-fault-seed", "3"}
	out, code := run(t, bin, args...)
	if code != 0 {
		t.Fatalf("exit code = %d\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "wofuzz chaos: 8 checked") {
		t.Fatalf("missing chaos summary:\n%s", out)
	}
	if strings.Contains(out, " 0 faults injected") {
		t.Fatalf("chaos campaign injected nothing:\n%s", out)
	}
	// Replay determinism: the summary (minus elapsed time) is identical.
	out2, _ := run(t, bin, args...)
	trim := func(s string) string {
		i := strings.Index(s, "wofuzz chaos:")
		j := strings.Index(s, " in ")
		if i < 0 || j < 0 {
			t.Fatalf("unexpected summary:\n%s", s)
		}
		return s[i:j]
	}
	if trim(out) != trim(out2) {
		t.Fatalf("chaos replay diverged:\n first: %s\nsecond: %s", trim(out), trim(out2))
	}
	if out, code := run(t, bin, "-chaos", "-seeds", "1", "-fault-rates", "drop=nope"); code != 1 || !strings.Contains(out, "bad probability") {
		t.Fatalf("invalid -fault-rates: exit code = %d, output:\n%s", code, out)
	}
}
