package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildWofuzz(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wofuzz")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s %v: %v\n%s", bin, args, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestAllSkippedBudgetExit pins the distinct error path: when the state
// budget is so small that every program is skipped, the campaign decided
// nothing and must exit with status 2 (not 0, which would read as "no
// violations", and not the violation status 1).
func TestAllSkippedBudgetExit(t *testing.T) {
	bin := buildWofuzz(t)
	out, code := run(t, bin, "-seeds", "2", "-max-states", "1", "-minimize=false")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "state budget exhausted on every program") {
		t.Fatalf("missing budget message in output:\n%s", out)
	}
}

// TestPORFlag runs a small campaign with reduction on and off: both must
// succeed, and the summary lines (checked/drf0/racy counts) must be
// identical — POR may only change how much work the verdicts cost.
func TestPORFlag(t *testing.T) {
	bin := buildWofuzz(t)
	var summaries []string
	for _, por := range []string{"on", "off"} {
		out, code := run(t, bin, "-seeds", "6", "-minimize=false", "-por", por)
		if code != 0 {
			t.Fatalf("-por=%s: exit code = %d\noutput:\n%s", por, code, out)
		}
		i := strings.Index(out, "wofuzz: ")
		j := strings.Index(out, " in ") // strip the elapsed-time suffix
		if i < 0 || j < 0 || j < i {
			t.Fatalf("-por=%s: unexpected summary output:\n%s", por, out)
		}
		summaries = append(summaries, out[i:j])
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("POR changed campaign verdicts:\n on: %s\noff: %s", summaries[0], summaries[1])
	}
	if out, code := run(t, bin, "-por", "sideways"); code != 1 || !strings.Contains(out, "invalid -por") {
		t.Fatalf("invalid -por: exit code = %d, output:\n%s", code, out)
	}
}

// TestMachinesFlag pins the -machines selection surface: the relaxed
// write-buffer machines resolve by name and run a campaign to completion,
// while an unknown name is rejected before any program is generated, with an
// error naming the offender.
func TestMachinesFlag(t *testing.T) {
	bin := buildWofuzz(t)
	out, code := run(t, bin, "-seeds", "3", "-minimize=false", "-machines", "tso,pso,rmo")
	if code != 0 {
		t.Fatalf("-machines tso,pso,rmo: exit code = %d\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "checked") {
		t.Fatalf("-machines tso,pso,rmo: campaign summary missing:\n%s", out)
	}
	out, code = run(t, bin, "-machines", "tso,no-such-machine")
	if code != 1 {
		t.Fatalf("unknown machine: exit code = %d, want 1\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, `unknown machine "no-such-machine"`) {
		t.Fatalf("unknown-machine error does not name the offender:\n%s", out)
	}
	if strings.Contains(out, "checked") {
		t.Fatalf("campaign ran despite the bad -machines value:\n%s", out)
	}
}

// TestSignalCheckpointResume kills a checkpointed campaign mid-run with
// SIGINT and pins the whole crash-safety contract: the process exits with the
// distinct interrupted status (3), the partial JSON report it flushed parses
// with internally consistent counts, and `wofuzz -resume` completes the
// campaign with a final report byte-identical to an uninterrupted run's.
func TestSignalCheckpointResume(t *testing.T) {
	bin := buildWofuzz(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	partialPath := filepath.Join(dir, "partial.json")
	finalPath := filepath.Join(dir, "final.json")
	baselinePath := filepath.Join(dir, "baseline.json")
	args := []string{"-seeds", "512", "-machines", "tso", "-minimize=false"}

	// Baseline: the same campaign, uninterrupted.
	if out, code := run(t, bin, append(args, "-json", baselinePath)...); code != 0 {
		t.Fatalf("baseline: exit code = %d\noutput:\n%s", code, out)
	}

	// Start the campaign, wait until the first checkpoint lands, then SIGINT.
	cmd := exec.Command(bin, append(args, "-checkpoint", ckpt, "-json", partialPath)...)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ckptFile := filepath.Join(ckpt, "checkpoint.json")
	for i := 0; ; i++ {
		if _, err := os.Stat(ckptFile); err == nil {
			break
		}
		if i > 1000 {
			cmd.Process.Kill()
			t.Fatalf("no checkpoint appeared\noutput:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("interrupted campaign: err = %v, want exit code 3\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "-resume") {
		t.Fatalf("interrupt message does not mention -resume:\n%s", out.String())
	}

	// The flushed partial report parses and is internally consistent.
	var partial struct {
		Seeds    int               `json:"seeds"`
		Checked  int               `json:"checked"`
		Skipped  int               `json:"skipped"`
		Programs []json.RawMessage `json:"programs"`
	}
	data, err := os.ReadFile(partialPath)
	if err != nil {
		t.Fatalf("no partial report: %v", err)
	}
	if err := json.Unmarshal(data, &partial); err != nil {
		t.Fatalf("partial report does not parse: %v", err)
	}
	if n := len(partial.Programs); n == 0 || n >= partial.Seeds {
		t.Fatalf("partial report has %d/%d programs; the kill did not land mid-run", n, partial.Seeds)
	}
	if partial.Checked+partial.Skipped != len(partial.Programs) {
		t.Fatalf("partial counts inconsistent: checked %d + skipped %d != %d programs",
			partial.Checked, partial.Skipped, len(partial.Programs))
	}

	// Resume completes the campaign; the final report is byte-identical.
	if out, code := run(t, bin, "-resume", ckpt, "-json", finalPath); code != 0 {
		t.Fatalf("resume: exit code = %d\noutput:\n%s", code, out)
	}
	baseline, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	final, err := os.ReadFile(finalPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, baseline) {
		t.Fatalf("resumed report differs from uninterrupted report (%d vs %d bytes)", len(final), len(baseline))
	}
}

// TestCacheFlag pins the CLI cache round trip: a second identical campaign
// run against the same -cache file is answered without exploration, visible
// in the cache summary line.
func TestCacheFlag(t *testing.T) {
	bin := buildWofuzz(t)
	cache := filepath.Join(t.TempDir(), "cache.wocs")
	args := []string{"-seeds", "6", "-machines", "tso", "-minimize=false", "-cache", cache}
	out, code := run(t, bin, args...)
	if code != 0 {
		t.Fatalf("first run: exit code = %d\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "cache 0 hit(s)") {
		t.Fatalf("first run should start cold:\n%s", out)
	}
	out, code = run(t, bin, args...)
	if code != 0 {
		t.Fatalf("second run: exit code = %d\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "cache 6 hit(s)") || !strings.Contains(out, "0 state(s) explored") {
		t.Fatalf("second run was not answered from the cache:\n%s", out)
	}
}

// TestChaosMode runs a small chaos campaign end to end: it must complete with
// status 0, actually inject faults, and report the deterministic summary.
func TestChaosMode(t *testing.T) {
	bin := buildWofuzz(t)
	args := []string{"-chaos", "-seeds", "8", "-fault-seed", "3"}
	out, code := run(t, bin, args...)
	if code != 0 {
		t.Fatalf("exit code = %d\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "wofuzz chaos: 8 checked") {
		t.Fatalf("missing chaos summary:\n%s", out)
	}
	if strings.Contains(out, " 0 faults injected") {
		t.Fatalf("chaos campaign injected nothing:\n%s", out)
	}
	// Replay determinism: the summary (minus elapsed time) is identical.
	out2, _ := run(t, bin, args...)
	trim := func(s string) string {
		i := strings.Index(s, "wofuzz chaos:")
		j := strings.Index(s, " in ")
		if i < 0 || j < 0 {
			t.Fatalf("unexpected summary:\n%s", s)
		}
		return s[i:j]
	}
	if trim(out) != trim(out2) {
		t.Fatalf("chaos replay diverged:\n first: %s\nsecond: %s", trim(out), trim(out2))
	}
	if out, code := run(t, bin, "-chaos", "-seeds", "1", "-fault-rates", "drop=nope"); code != 1 || !strings.Contains(out, "bad probability") {
		t.Fatalf("invalid -fault-rates: exit code = %d, output:\n%s", code, out)
	}
}
