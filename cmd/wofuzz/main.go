// Command wofuzz runs a differential fuzzing campaign against the
// Definition-2 contract: random litmus programs are generated, classified as
// DRF0 or racy, and run on every machine under test against the SC reference.
// A machine that claims weak ordering and produces a non-SC outcome on a DRF0
// program is a contract violation; the violating program is delta-debugged to
// a minimal reproducer, written out as both litmus text and ready-to-paste
// program.Builder code.
//
// Usage:
//
//	wofuzz [-seeds N] [-seed S] [-budget DUR] [-machines CSV] [-minimize]
//	       [-max-states N] [-explore-workers N] [-por on|off]
//	       [-json PATH] [-out DIR] [-v]
//	wofuzz -chaos [-seeds N] [-seed S] [-budget DUR] [-fault-seed S]
//	       [-fault-rates drop=P,dup=P,...] [-max-states N] [-explore-workers N] [-v]
//
// -chaos switches the campaign to the differential chaos harness
// (internal/chaos): random DRF0 programs run on the *timed* Definition-2
// machine over the deterministic fault-injecting fabric, asserting every run
// completes under bounded retry and lands inside the program's SC outcome
// set. A completion failure or containment escape exits with status 1 and
// prints the (program seed, fault seed) pair plus the injection log — a
// byte-identical reproducer.
//
// -por=off disables the exploration kernel's partial-order reduction (a
// debugging escape hatch: the differential tests pin that outcome sets are
// identical either way, so only speed changes).
//
// -explore-workers widens each individual exploration inside the kernel: the
// default 1 keeps explorations serial (the campaign already fans programs
// across cores), an explicit N runs N workers per exploration, and 0
// auto-sizes each exploration to whatever cores the campaign fan-out has left
// spare — useful when a handful of state-space blowups dominate the
// campaign's wall clock. Outcome sets are identical at every width.
//
// -machines accepts a comma-separated list of machine names plus the aliases
// "weak" (every machine claiming the contract; the default), "all", and
// "broken" (the known-bad fixtures — the non-atomic cached network and the
// reserve-bit ablation — useful for demonstrating the catch-and-shrink
// pipeline end to end: `wofuzz -machines broken` finds violations and emits
// minimized reproducers). The exit status is 1 if any Definition-2 violation
// was found, 0 otherwise — racy programs with non-SC outcomes are recorded
// but are not failures. Programs whose exploration exhausts the state budget
// are skipped and counted; if *every* program is skipped the campaign decided
// nothing and exits with status 2 and a distinct message (raise -max-states).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"weakorder/internal/chaos"
	"weakorder/internal/faults"
	"weakorder/internal/fuzz"
	"weakorder/internal/litmus"
	"weakorder/internal/model"
	"weakorder/internal/program"
	"weakorder/internal/workload"
)

// progReport is one program's verdict in the JSON report.
type progReport struct {
	Index      int      `json:"index"`
	Seed       int64    `json:"seed"`
	Name       string   `json:"name"`
	Config     string   `json:"config"`
	DRF0       bool     `json:"drf0"`
	Skipped    bool     `json:"skipped,omitempty"` // state budget exhausted
	SCOutcomes int      `json:"sc_outcomes,omitempty"`
	RacyNonSC  bool     `json:"racy_non_sc,omitempty"`
	Violating  []string `json:"violating,omitempty"`
	// Reproducers maps violating machine name to the minimized program in
	// litmus text form (only when -minimize is on).
	Reproducers map[string]string `json:"reproducers,omitempty"`
}

// campaignReport is the top-level JSON report.
type campaignReport struct {
	Seeds      int          `json:"seeds"`
	BaseSeed   int64        `json:"base_seed"`
	Machines   []string     `json:"machines"`
	Checked    int          `json:"checked"`
	Skipped    int          `json:"skipped"`
	DRF0       int          `json:"drf0"`
	Racy       int          `json:"racy"`
	RacyNonSC  int          `json:"racy_non_sc"`
	Violations int          `json:"violations"`
	Elapsed    string       `json:"elapsed"`
	Programs   []progReport `json:"programs"`
}

// configFor varies the generator deterministically across campaign indices so
// a single run sweeps light/dense sync, RMW-heavy mixes, guarded conditionals,
// and three-processor programs without any randomness beyond the seed.
func configFor(i int) (string, workload.RandomConfig) {
	switch i % 6 {
	case 0:
		return "2p-default", workload.RandomConfig{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4}
	case 1:
		return "2p-sparse", workload.RandomConfig{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4, SyncDensity: 10}
	case 2:
		return "2p-rmw", workload.RandomConfig{Procs: 2, DataVars: 1, SyncVars: 2, Ops: 4, SyncDensity: 60, RMWPct: 70, FetchAddPct: 40}
	case 3:
		return "3p-dense", workload.RandomConfig{Procs: 3, DataVars: 1, SyncVars: 1, Ops: 3, SyncDensity: 70}
	case 4:
		return "2p-guarded", workload.RandomConfig{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 3, SyncDensity: 50, CondPct: 50}
	default:
		return "2p-syncread", workload.RandomConfig{Procs: 2, DataVars: 1, SyncVars: 1, Ops: 4, SyncDensity: 50, SyncReadPct: 80}
	}
}

func main() {
	seeds := flag.Int("seeds", 64, "number of random programs to generate")
	baseSeed := flag.Int64("seed", 1, "base seed; program i uses seed+i")
	budget := flag.Duration("budget", 0, "wall-clock budget; 0 = run all seeds")
	machinesCSV := flag.String("machines", "weak", `machines to test: comma-separated names, "weak", "all", or "broken"`)
	minimize := flag.Bool("minimize", true, "delta-debug violating programs to minimal reproducers")
	maxStates := flag.Int("max-states", 0, "per-exploration state budget (0 = fuzzing default)")
	exploreWorkers := flag.Int("explore-workers", 1, "worker count inside each exploration (1 = serial, 0 = one per spare core)")
	por := flag.String("por", "on", "partial-order reduction in the exploration kernel: on or off")
	jsonPath := flag.String("json", "", `write a JSON campaign report to PATH ("-" = stdout)`)
	outDir := flag.String("out", "", "write minimized reproducers (.litmus and .go) into DIR")
	verbose := flag.Bool("v", false, "log every program checked")
	chaosMode := flag.Bool("chaos", false, "run the differential chaos campaign on the timed machine under fault injection")
	faultSeed := flag.Int64("fault-seed", 1, "chaos: base fault seed; program i uses fault-seed+i")
	faultRates := flag.String("fault-rates", "", "chaos: fault rates (empty = defaults)")
	flag.Parse()

	if *exploreWorkers < 0 {
		fatal(fmt.Errorf("negative -explore-workers %d (want 1 = serial, 0 = one per spare core, or an explicit width)", *exploreWorkers))
	}
	// The CLI's 0 means "auto": each exploration claims whatever spare slots
	// the par budget has at that moment (the campaign-level fan-out and the
	// in-exploration workers share one process-wide budget), which the kernel
	// spells as a negative width.
	kernelWorkers := *exploreWorkers
	if kernelWorkers == 0 {
		kernelWorkers = -1
	}

	if *chaosMode {
		rates, err := faults.ParseRates(*faultRates)
		if err != nil {
			fatal(err)
		}
		x := fuzz.DefaultExplorer()
		if *maxStates > 0 {
			x.MaxStates = *maxStates
		}
		x.Workers = kernelWorkers
		runChaos(*seeds, *baseSeed, *budget, *faultSeed, rates, x, *verbose)
		return
	}

	factories, err := litmus.FactoriesByNames(*machinesCSV)
	if err != nil {
		fatal(err)
	}
	if len(factories) == 0 {
		fatal(errors.New("no machines selected"))
	}
	x := fuzz.DefaultExplorer()
	if *maxStates > 0 {
		x.MaxStates = *maxStates
	}
	x.Workers = kernelWorkers
	switch *por {
	case "on":
	case "off":
		x.FullExploration = true
	default:
		fatal(fmt.Errorf("invalid -por %q (want on or off)", *por))
	}
	chk := &fuzz.Checker{Explorer: x, Machines: factories}

	rep := campaignReport{Seeds: *seeds, BaseSeed: *baseSeed}
	for _, f := range factories {
		rep.Machines = append(rep.Machines, f.Name)
	}

	start := time.Now()
	for i := 0; i < *seeds; i++ {
		if *budget > 0 && time.Since(start) > *budget {
			fmt.Fprintf(os.Stderr, "wofuzz: budget %s exhausted after %d/%d seeds\n", *budget, i, *seeds)
			break
		}
		seed := *baseSeed + int64(i)
		var p *program.Program
		var cfgName string
		// Every 7th program comes from the guarded producer/consumer shape —
		// the pattern the reserve-bit stall exists to protect — so the
		// campaign always exercises that bug class directly.
		if i%7 == 6 {
			cfgName = "guarded-mp"
			p = workload.RandomGuarded(seed, 1+i%2, i%3)
		} else {
			var cfg workload.RandomConfig
			cfgName, cfg = configFor(i)
			p = workload.Random(seed, cfg)
		}

		pr := progReport{Index: i, Seed: seed, Name: p.Name, Config: cfgName}
		r, err := chk.Check(p)
		switch {
		case err != nil && errors.Is(err, model.ErrStateBudget):
			pr.Skipped = true
			rep.Skipped++
		case err != nil:
			fatal(err)
		default:
			rep.Checked++
			pr.DRF0 = r.DRF0
			pr.SCOutcomes = r.SCOutcomes
			if r.DRF0 {
				rep.DRF0++
			} else {
				rep.Racy++
			}
			if r.RacyNonSC() {
				pr.RacyNonSC = true
				rep.RacyNonSC++
			}
			if v := r.Violating(); len(v) > 0 {
				pr.Violating = v
				rep.Violations++
				handleViolation(&pr, p, v, *minimize, x, *outDir)
			}
		}
		if *verbose {
			fmt.Printf("[%3d] seed=%-6d %-12s %-22s drf0=%-5v skipped=%v violating=%v\n",
				i, seed, cfgName, p.Name, pr.DRF0, pr.Skipped, pr.Violating)
		}
		rep.Programs = append(rep.Programs, pr)
	}
	rep.Elapsed = time.Since(start).Round(time.Millisecond).String()

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, &rep); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wofuzz: %d checked (%d drf0, %d racy, %d racy-non-SC), %d skipped, %d violation(s) in %s\n",
		rep.Checked, rep.DRF0, rep.Racy, rep.RacyNonSC, rep.Skipped, rep.Violations, rep.Elapsed)
	if rep.Violations > 0 {
		fmt.Fprintln(os.Stderr, "wofuzz: DEFINITION-2 VIOLATION(S) FOUND")
		os.Exit(1)
	}
	if rep.Checked == 0 && rep.Skipped > 0 {
		fmt.Fprintln(os.Stderr, "wofuzz: state budget exhausted on every program — nothing was decided (raise -max-states)")
		os.Exit(2)
	}
}

// runChaos is the -chaos campaign: DRF0-by-construction programs on the timed
// Definition-2 machine under deterministic fault injection, asserting the
// completion and SC-containment properties for every (program, fault seed)
// pair. Any failure prints a byte-identical reproducer and exits 1.
func runChaos(seeds int, baseSeed int64, budget time.Duration, faultSeed int64, rates faults.Rates, x *model.Explorer, verbose bool) {
	start := time.Now()
	var checked, injected int
	var retries, tolerated int64
	failures := 0
	for i := 0; i < seeds; i++ {
		if budget > 0 && time.Since(start) > budget {
			fmt.Fprintf(os.Stderr, "wofuzz: budget %s exhausted after %d/%d seeds\n", budget, i, seeds)
			break
		}
		seed := baseSeed + int64(i)
		var p *program.Program
		if i%2 == 0 {
			p = workload.RandomGuarded(seed, 2, 3)
		} else {
			p = workload.RandomDRF(seed, 2, 2, 2)
		}
		scOut, err := chaos.SCOutcomes(p, x)
		if err != nil {
			fatal(err)
		}
		c, err := chaos.RunCase(p, faultSeed+int64(i), rates, chaos.CanonicalSet(scOut))
		if err != nil {
			fmt.Fprintf(os.Stderr, "wofuzz: CHAOS COMPLETION FAILURE: %v\n", err)
			failures++
			continue
		}
		checked++
		injected += c.Faults
		retries += c.Retries
		tolerated += c.Tolerated
		if !c.Contained {
			fmt.Fprintf(os.Stderr,
				"wofuzz: CHAOS CONTAINMENT ESCAPE: %s (seed %d, fault seed %d) outcome outside the SC set:\n%s\ninjections:\n%s",
				p.Name, seed, c.Seed, c.Canonical, c.InjectionLog)
			failures++
		}
		if verbose {
			fmt.Printf("[%3d] seed=%-6d fault-seed=%-6d %-22s faults=%-3d retries=%-3d tolerated=%-3d contained=%v\n",
				i, seed, c.Seed, p.Name, c.Faults, c.Retries, c.Tolerated, c.Contained)
		}
	}
	fmt.Printf("wofuzz chaos: %d checked, %d faults injected, %d retries, %d tolerated, %d failure(s) in %s (rates %s)\n",
		checked, injected, retries, tolerated, failures, time.Since(start).Round(time.Millisecond), rates)
	if failures > 0 {
		fmt.Fprintln(os.Stderr, "wofuzz: CHAOS PROPERTY VIOLATION(S) FOUND")
		os.Exit(1)
	}
}

// handleViolation minimizes the program against each violating machine and
// records/writes the reproducers.
func handleViolation(pr *progReport, p *program.Program, violating []string, minimize bool, x *model.Explorer, outDir string) {
	fmt.Fprintf(os.Stderr, "wofuzz: VIOLATION: %s breaks Definition 2 on %v\n", p.Name, violating)
	if !minimize {
		return
	}
	pr.Reproducers = make(map[string]string, len(violating))
	for _, name := range violating {
		f, ok := litmus.FactoryByName(name)
		if !ok {
			// Violating names come from the factory list, so this cannot
			// happen unless the list mutates mid-run.
			fatal(fmt.Errorf("violating machine %q has no factory", name))
		}
		min := fuzz.Minimize(p, f, x)
		sz := fuzz.SizeOf(min)
		header := []string{
			fmt.Sprintf("minimized reproducer: %s violates Definition 2 on %s", p.Name, name),
			fmt.Sprintf("size: %d thread(s), longest %d op(s), %d address(es)", sz.Threads, sz.MaxOps, sz.Addrs),
			fmt.Sprintf("non-SC outcomes: %v", fuzz.ExtraOutcomes(min, f, x)),
		}
		lit := fuzz.EmitLitmus(min, header...)
		pr.Reproducers[name] = lit
		fmt.Fprintf(os.Stderr, "wofuzz: minimized to %d thread(s) x %d op(s):\n%s\nBuilder code:\n%s",
			sz.Threads, sz.MaxOps, lit, fuzz.EmitGo(min))
		if outDir != "" {
			if err := writeReproducer(outDir, min, name, lit); err != nil {
				fatal(err)
			}
		}
	}
}

func writeReproducer(dir string, min *program.Program, machine, lit string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(dir, fmt.Sprintf("%s-%s", min.Name, machine))
	if err := os.WriteFile(base+".litmus", []byte(lit), 0o644); err != nil {
		return err
	}
	code := fmt.Sprintf("// %s: minimized Definition-2 violation on %s\n%s", min.Name, machine, fuzz.EmitGo(min))
	return os.WriteFile(base+".go.txt", []byte(code), 0o644)
}

func writeJSON(path string, rep *campaignReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// fatal aborts the campaign. A state-budget error gets its own exit status
// (2) and wording: it means "the search was too big to finish", not "a
// violation was found" (1) or a usage/IO failure.
func fatal(err error) {
	if errors.Is(err, model.ErrStateBudget) {
		fmt.Fprintf(os.Stderr, "wofuzz: state budget exhausted: %v (raise -max-states)\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "wofuzz: %v\n", err)
	os.Exit(1)
}
