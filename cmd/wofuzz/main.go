// Command wofuzz runs a differential fuzzing campaign against the
// Definition-2 contract: random litmus programs are generated, classified as
// DRF0 or racy, and run on every machine under test against the SC reference.
// A machine that claims weak ordering and produces a non-SC outcome on a DRF0
// program is a contract violation; the violating program is delta-debugged to
// a minimal reproducer, written out as both litmus text and ready-to-paste
// program.Builder code.
//
// Usage:
//
//	wofuzz [-seeds N] [-seed S] [-budget DUR] [-machines CSV] [-minimize]
//	       [-max-states N] [-explore-workers N] [-por on|off]
//	       [-json PATH] [-out DIR] [-checkpoint DIR] [-cache PATH] [-v]
//	wofuzz -resume DIR [-json PATH] [-out DIR] [-cache PATH] [-v]
//	wofuzz -chaos [-seeds N] [-seed S] [-budget DUR] [-fault-seed S]
//	       [-fault-rates drop=P,dup=P,...] [-max-states N] [-explore-workers N]
//	       [-json PATH] [-checkpoint DIR] [-cache PATH] [-v]
//
// The campaign engine is internal/campaign: seeds fan out over the shared
// worker pool in checkpoint-sized blocks, and every verdict is a pure
// function of the campaign spec, so the same flags always produce the same
// report bytes.
//
// -checkpoint DIR snapshots campaign state atomically after every block; a
// killed campaign (SIGINT/SIGTERM, or -budget running out) leaves a resumable
// checkpoint plus a valid partial JSON report, and exits with status 3 when
// the stop was a signal. `wofuzz -resume DIR` continues exactly where the
// campaign stopped — the spec is restored from the checkpoint, and the final
// report is byte-identical to an uninterrupted run's.
//
// -cache PATH attaches the digest-keyed result cache: verdicts already
// computed for a (program, machines, budgets, fault schedule) combination —
// by any previous campaign or by the wocampd service — are answered without
// re-exploration. The cache is an append-only checksummed log; corrupt tails
// from a crash are truncated on open, never trusted.
//
// -chaos switches the campaign to the differential chaos harness
// (internal/chaos): random DRF0 programs run on the *timed* Definition-2
// machine over the deterministic fault-injecting fabric, asserting every run
// completes under bounded retry and lands inside the program's SC outcome
// set. A completion failure or containment escape exits with status 1.
//
// -por=off disables the exploration kernel's partial-order reduction (a
// debugging escape hatch: the differential tests pin that outcome sets are
// identical either way, so only speed changes).
//
// -explore-workers widens each individual exploration inside the kernel: the
// default 1 keeps explorations serial (the campaign already fans programs
// across cores), an explicit N runs N workers per exploration, and 0
// auto-sizes each exploration to whatever cores the campaign fan-out has left
// spare. Outcome sets are identical at every width.
//
// -machines accepts a comma-separated list of machine names plus the aliases
// "weak" (every machine claiming the contract; the default), "all", and
// "broken" (the known-bad fixtures — useful for demonstrating the
// catch-and-shrink pipeline end to end).
//
// Exit status: 0 clean campaign, 1 violation found (or usage/internal error),
// 2 state budget exhausted on every program (nothing was decided), 3
// interrupted by signal with a checkpoint saved.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"weakorder/internal/campaign"
	"weakorder/internal/faults"
	"weakorder/internal/model"
)

func main() {
	seeds := flag.Int("seeds", 64, "number of random programs to generate")
	baseSeed := flag.Int64("seed", 1, "base seed; program i uses seed+i")
	budget := flag.Duration("budget", 0, "wall-clock budget; 0 = run all seeds")
	machinesCSV := flag.String("machines", "weak", `machines to test: comma-separated names, "weak", "all", or "broken"`)
	minimize := flag.Bool("minimize", true, "delta-debug violating programs to minimal reproducers")
	maxStates := flag.Int("max-states", 0, "per-exploration state budget (0 = fuzzing default)")
	exploreWorkers := flag.Int("explore-workers", 1, "worker count inside each exploration (1 = serial, 0 = one per spare core)")
	por := flag.String("por", "on", "partial-order reduction in the exploration kernel: on or off")
	jsonPath := flag.String("json", "", `write a JSON campaign report to PATH ("-" = stdout)`)
	outDir := flag.String("out", "", "write minimized reproducers (.litmus and .go) into DIR")
	checkpointDir := flag.String("checkpoint", "", "snapshot campaign state into DIR so a killed campaign can be resumed")
	resumeDir := flag.String("resume", "", "resume the checkpointed campaign in DIR (spec is restored from the checkpoint)")
	cachePath := flag.String("cache", "", "digest-keyed result cache segment; hits skip re-exploration")
	verbose := flag.Bool("v", false, "log every program checked")
	chaosMode := flag.Bool("chaos", false, "run the differential chaos campaign on the timed machine under fault injection")
	faultSeed := flag.Int64("fault-seed", 1, "chaos: base fault seed; program i uses fault-seed+i")
	faultRates := flag.String("fault-rates", "", "chaos: fault rates (empty = defaults)")
	flag.Parse()

	if *exploreWorkers < 0 {
		fatal(fmt.Errorf("negative -explore-workers %d (want 1 = serial, 0 = one per spare core, or an explicit width)", *exploreWorkers))
	}
	// The CLI's 0 means "auto": each exploration claims whatever spare slots
	// the par budget has at that moment (the campaign-level fan-out and the
	// in-exploration workers share one process-wide budget), which the kernel
	// spells as a negative width.
	kernelWorkers := *exploreWorkers
	if kernelWorkers == 0 {
		kernelWorkers = -1
	}
	switch *por {
	case "on", "off":
	default:
		fatal(fmt.Errorf("invalid -por %q (want on or off)", *por))
	}

	spec := campaign.Spec{
		Seeds:          *seeds,
		BaseSeed:       *baseSeed,
		Machines:       *machinesCSV,
		MaxStates:      *maxStates,
		POROff:         *por == "off",
		Minimize:       *minimize,
		ExploreWorkers: kernelWorkers,
	}
	if *chaosMode {
		spec.Mode = campaign.ModeChaos
		spec.Machines = ""
		spec.Minimize = false
		spec.FaultSeed = *faultSeed
		spec.FaultRates = *faultRates
	}

	r := &campaign.Runner{
		Spec:          spec,
		CheckpointDir: *checkpointDir,
		Out:           *outDir,
		Budget:        *budget,
		Log:           os.Stderr,
	}
	if *resumeDir != "" {
		if *checkpointDir != "" {
			fatal(errors.New("-resume and -checkpoint are exclusive (resume continues the checkpoint in DIR)"))
		}
		cp, err := campaign.LoadCheckpoint(*resumeDir)
		if err != nil {
			fatal(fmt.Errorf("resuming %s: %w", *resumeDir, err))
		}
		// The spec lives in the checkpoint: a resumed campaign always
		// continues under the parameters it started with.
		r.Spec = cp.Spec
		r.CheckpointDir = *resumeDir
		r.Resume = true
	}
	if *verbose {
		r.Verbose = os.Stdout
	}
	if *cachePath != "" {
		store, err := campaign.OpenStore(*cachePath)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		if store.Discarded > 0 {
			fmt.Fprintf(os.Stderr, "wofuzz: cache %s: %d stale/damaged byte(s) discarded, %d entrie(s) recovered\n",
				*cachePath, store.Discarded, store.Recovered)
		}
		r.Store = store
	}

	// A signal interrupts the campaign between blocks: the engine writes a
	// final checkpoint, and the partial JSON report below is still valid.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, sum, err := r.Run(ctx)
	interrupted := err != nil && errors.Is(err, campaign.ErrInterrupted)
	if err != nil && !interrupted {
		fatal(err)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "wofuzz: %v\n", err)
	}

	if *jsonPath != "" {
		if err := writeReport(*jsonPath, rep); err != nil {
			fatal(err)
		}
	}

	elapsed := sum.Elapsed.Round(time.Millisecond)
	if rep.Mode == campaign.ModeChaos {
		// Spec validation already parsed the rates; render the canonical form
		// (the historical summary prints the parsed rates, not the raw flag).
		rates, _ := faults.ParseRates(r.Spec.FaultRates)
		fmt.Printf("wofuzz chaos: %d checked, %d faults injected, %d retries, %d tolerated, %d failure(s) in %s (rates %s)\n",
			rep.Checked, rep.Faults, rep.Retries, rep.Tolerated, rep.Failures, elapsed, rates)
	} else {
		fmt.Printf("wofuzz: %d checked (%d drf0, %d racy, %d racy-non-SC), %d skipped, %d violation(s) in %s\n",
			rep.Checked, rep.DRF0, rep.Racy, rep.RacyNonSC, rep.Skipped, rep.Violations, elapsed)
	}
	if r.Store != nil {
		st := r.Store.Stats()
		fmt.Printf("wofuzz: cache %d hit(s), %d put(s), %d entrie(s); %d state(s) explored this run\n",
			sum.CacheHits, st.Puts, st.Entries, sum.Explored)
	}

	// A signal stop gets its own status (3) so wrappers can tell "killed with
	// a resumable checkpoint" from "violations" (1) or "undecided" (2); a
	// -budget stop keeps the historical exit behavior.
	if interrupted && ctx.Err() != nil {
		if r.CheckpointDir != "" {
			fmt.Fprintf(os.Stderr, "wofuzz: interrupted; resume with: wofuzz -resume %s\n", r.CheckpointDir)
		} else {
			fmt.Fprintln(os.Stderr, "wofuzz: interrupted (no -checkpoint; progress was not saved)")
		}
		os.Exit(3)
	}
	if rep.Mode == campaign.ModeChaos {
		if rep.Failures > 0 {
			fmt.Fprintln(os.Stderr, "wofuzz: CHAOS PROPERTY VIOLATION(S) FOUND")
			os.Exit(1)
		}
		return
	}
	if rep.Violations > 0 {
		fmt.Fprintln(os.Stderr, "wofuzz: DEFINITION-2 VIOLATION(S) FOUND")
		os.Exit(1)
	}
	if rep.Checked == 0 && rep.Skipped > 0 {
		fmt.Fprintln(os.Stderr, "wofuzz: state budget exhausted on every program — nothing was decided (raise -max-states)")
		os.Exit(2)
	}
}

// writeReport writes the campaign report: to stdout for "-", else atomically
// (temp + rename) so a kill mid-write can never leave a torn report file.
func writeReport(path string, rep *campaign.Report) error {
	if path == "-" {
		data, err := campaign.MarshalReport(rep)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}
	return campaign.WriteJSONAtomic(path, rep)
}

// fatal aborts the campaign. A state-budget error gets its own exit status
// (2) and wording: it means "the search was too big to finish", not "a
// violation was found" (1) or a usage/IO failure.
func fatal(err error) {
	if errors.Is(err, model.ErrStateBudget) {
		fmt.Fprintf(os.Stderr, "wofuzz: state budget exhausted: %v (raise -max-states)\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "wofuzz: %v\n", err)
	os.Exit(1)
}
