// Command validate-timeline checks that a file is a well-formed Chrome
// trace-event timeline as written by `wosim -timeline` (see
// metrics.ValidateTimeline for the checked schema). Exit status 0 means
// valid; 1 names the first violation; 2 is a usage error. CI runs it against
// the timeline artifact so a schema regression fails the build even if the
// writer's self-check is bypassed.
//
// Usage:
//
//	validate-timeline FILE...
package main

import (
	"fmt"
	"os"

	"weakorder/internal/metrics"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: validate-timeline FILE...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "validate-timeline: %v\n", err)
			os.Exit(1)
		}
		if err := metrics.ValidateTimeline(data); err != nil {
			fmt.Fprintf(os.Stderr, "validate-timeline: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid (%d events)\n", path, metrics.EventCount(data))
	}
}
