// Command litmus runs litmus tests — the built-in corpus or a test parsed
// from a file in the repository's litmus format — across the operational
// hardware models, reporting whether the "exists" outcome is reachable on
// each.
//
// Usage:
//
//	litmus [-test NAME] [-machine NAME] [-file PATH] [-max-states N] [-v]
//
// With no flags the whole corpus runs on every machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"weakorder/internal/litmus"
	"weakorder/internal/model"
	"weakorder/internal/program"
)

func main() {
	testName := flag.String("test", "", "run only the named corpus test")
	machineName := flag.String("machine", "", "run only on the named machine")
	file := flag.String("file", "", "run a litmus file instead of the corpus")
	maxStates := flag.Int("max-states", 0, "exploration state budget (0 = default)")
	verbose := flag.Bool("v", false, "print per-test descriptions")
	flag.Parse()

	var tests []*litmus.Test
	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		res, err := program.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		if res.Exists == nil {
			fatal(fmt.Errorf("%s: no exists clause", *file))
		}
		tests = []*litmus.Test{{
			Name: res.Program.Name,
			Prog: res.Program,
			Cond: res.Exists,
		}}
	case *testName != "":
		t, ok := litmus.ByName(*testName)
		if !ok {
			fatal(fmt.Errorf("unknown corpus test %q", *testName))
		}
		tests = []*litmus.Test{t}
	default:
		tests = litmus.Corpus()
	}

	factories := litmus.Factories()
	if *machineName != "" {
		f, ok := litmus.FactoryByName(*machineName)
		if !ok {
			fatal(fmt.Errorf("unknown machine %q", *machineName))
		}
		factories = []litmus.Factory{f}
	}

	x := &model.Explorer{MaxStates: *maxStates}
	bad := 0
	for _, t := range tests {
		if *verbose && t.Description != "" {
			fmt.Printf("# %s: %s\n", t.Name, t.Description)
		}
		for _, f := range factories {
			o, err := litmus.Run(t, f, x)
			if err != nil {
				fatal(err)
			}
			fmt.Println(o)
			if !o.OK() {
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "litmus: %d unexpected observation(s)\n", bad)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "litmus: %v\n", err)
	os.Exit(1)
}
