package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildLitmus(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "litmus")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s %v: %v\n%s", bin, args, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestUnknownNamesRejected pins the flag-validation contract: a typo'd
// machine or test name fails before any exploration, with an error naming
// the offender.
func TestUnknownNamesRejected(t *testing.T) {
	bin := buildLitmus(t)
	out, code := run(t, bin, "-machine", "no-such-machine")
	if code != 1 || !strings.Contains(out, `unknown machine "no-such-machine"`) {
		t.Fatalf("-machine no-such-machine: exit code = %d, output:\n%s", code, out)
	}
	out, code = run(t, bin, "-test", "no-such-test")
	if code != 1 || !strings.Contains(out, `unknown corpus test "no-such-test"`) {
		t.Fatalf("-test no-such-test: exit code = %d, output:\n%s", code, out)
	}
}

// TestRelaxedMachinesResolve runs one corpus test on each of the relaxed
// write-buffer machines by name: every name must resolve and the observation
// must match its corpus annotation (exit 0).
func TestRelaxedMachinesResolve(t *testing.T) {
	bin := buildLitmus(t)
	for _, m := range []string{"tso", "pso", "rmo"} {
		out, code := run(t, bin, "-machine", m, "-test", "fig1-dekker-data")
		if code != 0 {
			t.Fatalf("-machine %s: exit code = %d\noutput:\n%s", m, code, out)
		}
		if !strings.Contains(out, m) {
			t.Fatalf("-machine %s: machine name missing from the report:\n%s", m, out)
		}
	}
}
