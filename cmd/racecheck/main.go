// Command racecheck decides whether a program (in the repository's litmus
// format) obeys a synchronization model — Definition 3 — by enumerating its
// idealized executions and reporting any data races found. With -trace it
// instead checks a recorded execution (JSON, as written by wosim -dump-trace):
// races under the model, sequential consistency of the result, and — when the
// trace carries timing data — the Section-5.1 conditions.
//
// Usage:
//
//	racecheck [-model drf0|drf1] [-max-ops N] [-all] FILE
//	racecheck -trace [-model drf0|drf1] FILE.json
//
// -all reports every racy execution instead of stopping at the first.
package main

import (
	"flag"
	"fmt"
	"os"

	"weakorder/internal/conditions"
	"weakorder/internal/core"
	"weakorder/internal/lockset"
	"weakorder/internal/model"
	"weakorder/internal/program"
	"weakorder/internal/race"
	"weakorder/internal/trace"
)

func main() {
	modelName := flag.String("model", "drf0", "synchronization model: drf0 or drf1")
	maxOps := flag.Int("max-ops", 48, "per-execution operation bound (spin loops make executions unbounded)")
	all := flag.Bool("all", false, "collect every racy execution")
	traceMode := flag.Bool("trace", false, "FILE is a recorded trace (JSON), not a program")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racecheck [-model drf0|drf1] [-trace] FILE")
		os.Exit(2)
	}
	var m core.SyncModel
	switch *modelName {
	case "drf0":
		m = core.DRF0{}
	case "drf1":
		m = core.DRF1{}
	default:
		fatal(fmt.Errorf("unknown model %q", *modelName))
	}
	if *traceMode {
		checkTrace(flag.Arg(0), m)
		return
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	res, err := program.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	enum := &model.Enumerator{
		Prog:     res.Program,
		Explorer: &model.Explorer{MaxTraceOps: *maxOps},
	}
	maxViol := 1
	if *all {
		maxViol = 0
	}
	rep, err := core.CheckProgram(enum, m, maxViol)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
	for _, v := range rep.Violations {
		fmt.Println(v)
	}
	if !rep.Obeys() {
		os.Exit(1)
	}
}

// checkTrace runs the per-execution checks on a recorded trace file.
func checkTrace(path string, m core.SyncModel) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	exec, init, timings, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	bad := false
	// Races via the streaming detector (the trace's completion order may be
	// a commit order from a relaxed machine; races are still meaningful
	// relative to it and cross-checked against hb by the library's tests).
	races, err := race.CheckExecution(exec, m)
	if err != nil {
		fatal(err)
	}
	if len(races) == 0 {
		fmt.Printf("races (%s): none over %d events\n", m.Name(), exec.Len())
	} else {
		bad = true
		fmt.Printf("races (%s): %d\n", m.Name(), len(races))
		for _, r := range races {
			fmt.Printf("  %s\n", r)
		}
	}
	w, err := core.SCCheck(exec, init)
	if err != nil {
		fatal(err)
	}
	if w.SC {
		fmt.Println("sequential consistency: the recorded result is SC")
	} else {
		bad = true
		fmt.Println("sequential consistency: VIOLATED (no legal total order exists)")
	}
	if len(timings) > 0 {
		rep := conditions.Check(timings)
		fmt.Println(rep)
		if !rep.OK() {
			bad = true
		}
	}
	// Monitor-style lock discipline (informational: flag-based DRF0 sharing
	// legitimately fails it).
	lrep, err := lockset.Check(exec)
	if err != nil {
		fatal(err)
	}
	fmt.Println(lrep)
	if bad {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "racecheck: %v\n", err)
	os.Exit(1)
}
