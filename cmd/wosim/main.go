// Command wosim runs a workload on the timed cache-coherent machine under a
// chosen ordering policy and prints cycle counts, stall breakdowns and
// coherence statistics.
//
// Usage:
//
//	wosim -workload prodcons|lock|barrier|fig3 [-policy sc|def1|def2|def2drf1]
//	      [-procs N] [-iters N] [-work N] [-spin sync|data|tas]
//	      [-spec FILE] [-record FILE] [-replay FILE]
//	      [-netlat N] [-jitter N] [-bus] [-seed S] [-check]
//	      [-dir-shards N] [-topology flat|dancehall|clusters]
//	      [-cluster-size N] [-remote-lat N] [-engine calendar|heap]
//	      [-por on|off] [-max-states N] [-explore-workers N]
//	      [-faults] [-fault-seed S] [-fault-rates drop=P,dup=P,delay=P,reorder=P,maxdelay=N]
//	      [-metrics] [-timeline FILE]
//
// All flag values are validated up front: an unknown enum value, a negative
// latency, an ill-formed -spec file, or an unreadable -replay trace exits
// with status 2 and a one-line message before any simulation work happens.
// The built-in barrier workload rejects -spin tas the same way: the
// test-and-set spin cannot express the sense-reversing barrier.
//
// -spec FILE runs an open-loop workload (internal/workload/spec, YAML or
// JSON) instead of -workload: operations arrive at simulated-time instants
// drawn from the spec's per-phase rates. -record FILE writes the exact
// arrival stream to a versioned binary trace; -replay FILE re-runs a
// recorded trace with no spec in hand, and combines with -record to
// re-record the replay (the two trace files are byte-identical — the CI
// smoke test relies on it). -spec and -replay are mutually exclusive, and
// -record without either is a usage error.
//
// -check additionally records the execution trace and verifies it is
// sequentially consistent (expected for the DRF0 workloads on every policy).
// The verification runs on the shared exploration kernel; -por=off disables
// its partial-order reduction (a debugging escape hatch — the answer never
// changes) and -max-states bounds its search. -explore-workers widens the
// search inside the kernel: 1 (the default) is the serial search, an explicit
// N runs N workers over a shared work-stealing frontier, and 0 auto-sizes to
// the spare cores; the verdict is identical at every width, though a
// satisfiable check may report a different (equally valid) witness order. A
// check that exhausts the state budget exits with status 2 and a distinct
// message — now naming the number of states the budget admitted, so the next
// -max-states needs no -metrics rerun — separating "too big to decide" from
// "decided and not SC" (status 1).
//
// -faults runs the machine over the deterministic fault-injecting fabric
// (internal/faults) with the protocol's recovery machinery (retries, NACKs,
// lenient duplicate handling, directory watchdog) enabled; -fault-seed and
// -fault-rates pick the exact fault schedule, and the run prints an injection
// summary. The same seed and rates replay byte-identically.
//
// -metrics turns on cycle-level observability (internal/metrics) and prints
// the attribution tables: every processor cycle classified as compute,
// reserve-stall, counter-stall, fence-stall, retry-backoff or idle, plus
// fabric traffic per message class and reserve-bit/directory occupancy
// histograms. -timeline additionally writes the run as Chrome trace-event
// JSON (load it in chrome://tracing or Perfetto); it implies the recorder and
// the written file is schema-validated before wosim exits. Both views are
// deterministic: the same flags produce byte-identical output.
//
// -cpuprofile and -memprofile write pprof profiles for the run, for
// inspection with `go tool pprof`.
package main

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"

	"weakorder/internal/conditions"
	"weakorder/internal/core"
	"weakorder/internal/explore"
	"weakorder/internal/faults"
	"weakorder/internal/interconnect"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/proc"
	"weakorder/internal/program"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
	"weakorder/internal/trace"
	"weakorder/internal/workload"
	"weakorder/internal/workload/openloop"
	"weakorder/internal/workload/spec"
	"weakorder/internal/workload/tracefmt"
)

func main() {
	wl := flag.String("workload", "prodcons", "prodcons, lock, barrier, fig3")
	policy := flag.String("policy", "def2", "sc, def1, def2, def2drf1, def2noreserve")
	procs := flag.Int("procs", 4, "processors (lock/barrier)")
	iters := flag.Int("iters", 8, "items/acquires/phases")
	work := flag.Int("work", 20, "local work cycles")
	spin := flag.String("spin", "sync", "sync, data, tas")
	specFile := flag.String("spec", "", "run an open-loop workload spec (YAML or JSON) instead of -workload")
	recordFile := flag.String("record", "", "record the open-loop arrival stream to this trace file (requires -spec or -replay)")
	replayFile := flag.String("replay", "", "replay a recorded arrival trace instead of generating one")
	netlat := flag.Int("netlat", 10, "network latency")
	jitter := flag.Int("jitter", 0, "network jitter")
	bus := flag.Bool("bus", false, "use the serialized bus fabric")
	update := flag.Bool("update", false, "use the write-update protocol for data writes")
	seed := flag.Int64("seed", 1, "jitter seed")
	check := flag.Bool("check", false, "verify the trace is sequentially consistent")
	por := flag.String("por", "on", "partial-order reduction in the -check search: on or off")
	maxStates := flag.Int("max-states", 0, "state budget for the -check search (0 = kernel default)")
	exploreWorkers := flag.Int("explore-workers", 1, "worker count for the -check search (1 = serial, 0 = one per spare core)")
	conds := flag.Bool("conditions", false, "verify the run against the Section-5.1 conditions")
	dump := flag.String("dump-trace", "", "write the recorded trace (and timings) as JSON to this file")
	injectFaults := flag.Bool("faults", false, "inject deterministic fabric faults and enable the recovery machinery")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection seed (replays byte-identically)")
	faultRates := flag.String("fault-rates", "", "fault rates, e.g. drop=0.03,dup=0.04,delay=0.06,reorder=0.02,maxdelay=16 (empty = defaults)")
	dirShards := flag.Int("dir-shards", 1, "address-interleaved directory shards (1 = single home node)")
	topology := flag.String("topology", "flat", "network topology: flat, dancehall, or clusters")
	clusterSize := flag.Int("cluster-size", 8, "processors per cluster for -topology clusters")
	remoteLat := flag.Int("remote-lat", 0, "extra latency per topology crossing (0 = same as -netlat)")
	engine := flag.String("engine", "calendar", "event scheduler: calendar (default) or heap (legacy baseline)")
	showMetrics := flag.Bool("metrics", false, "print cycle-attribution, traffic and occupancy tables")
	timeline := flag.String("timeline", "", "write a Chrome trace-event timeline (JSON) to this file; implies the metrics recorder")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	// Validate every flag before doing any work: a typo'd enum or a negative
	// latency is a usage error (exit 2), not something to discover mid-run.
	var pol proc.Policy
	switch *policy {
	case "sc":
		pol = proc.PolicySC
	case "def1":
		pol = proc.PolicyWODef1
	case "def2":
		pol = proc.PolicyWODef2
	case "def2drf1":
		pol = proc.PolicyWODef2DRF1
	case "def2noreserve":
		pol = proc.PolicyWODef2NoReserve
	default:
		usage(fmt.Errorf("unknown -policy %q (want sc, def1, def2, def2drf1, or def2noreserve)", *policy))
	}
	var sk workload.SpinKind
	switch *spin {
	case "sync":
		sk = workload.SpinSync
	case "data":
		sk = workload.SpinData
	case "tas":
		sk = workload.SpinTAS
	default:
		usage(fmt.Errorf("unknown -spin %q (want sync, data, or tas)", *spin))
	}
	switch *wl {
	case "prodcons", "lock", "barrier", "fig3":
	default:
		usage(fmt.Errorf("unknown -workload %q (want prodcons, lock, barrier, or fig3)", *wl))
	}
	if *specFile != "" && *replayFile != "" {
		usage(fmt.Errorf("-spec and -replay are mutually exclusive (a replay needs no spec)"))
	}
	if *recordFile != "" && *specFile == "" && *replayFile == "" {
		usage(fmt.Errorf("-record requires -spec or -replay (nothing to record)"))
	}
	if *por != "on" && *por != "off" {
		usage(fmt.Errorf("invalid -por %q (want on or off)", *por))
	}
	if *exploreWorkers < 0 {
		usage(fmt.Errorf("negative -explore-workers %d (want 1 = serial, 0 = one per spare core, or an explicit width)", *exploreWorkers))
	}
	if *netlat < 0 {
		usage(fmt.Errorf("negative -netlat %d", *netlat))
	}
	if *jitter < 0 {
		usage(fmt.Errorf("negative -jitter %d", *jitter))
	}
	if *procs < 1 {
		usage(fmt.Errorf("-procs %d out of range (want at least 1)", *procs))
	}
	if *iters < 0 {
		usage(fmt.Errorf("negative -iters %d", *iters))
	}
	if *dirShards < 1 {
		usage(fmt.Errorf("-dir-shards %d out of range (want at least 1)", *dirShards))
	}
	topo, err := interconnect.ParseTopology(*topology)
	if err != nil {
		usage(err)
	}
	if topo != interconnect.TopoFlat && *bus {
		usage(fmt.Errorf("-topology %s requires the network fabric (drop -bus)", topo))
	}
	if *clusterSize < 1 {
		usage(fmt.Errorf("-cluster-size %d out of range (want at least 1)", *clusterSize))
	}
	if *remoteLat < 0 {
		usage(fmt.Errorf("negative -remote-lat %d", *remoteLat))
	}
	if *engine != "calendar" && *engine != "heap" {
		usage(fmt.Errorf("unknown -engine %q (want calendar or heap)", *engine))
	}
	rates := faults.Rates{}
	if *injectFaults {
		var err error
		if rates, err = faults.ParseRates(*faultRates); err != nil {
			usage(fmt.Errorf("invalid -fault-rates: %w", err))
		}
	} else if *faultRates != "" {
		usage(fmt.Errorf("-fault-rates requires -faults"))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wosim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "wosim: %v\n", err)
			}
		}()
	}

	// Resolve the program and (for open-loop runs) the arrival source. Spec
	// and trace problems found here are usage errors: nothing has run yet.
	var prog *program.Program
	var src openloop.Source
	var traceHdr tracefmt.Header
	switch {
	case *specFile != "":
		data, err := os.ReadFile(*specFile)
		if err != nil {
			usage(fmt.Errorf("reading -spec: %w", err))
		}
		sp, err := spec.Parse(data)
		if err != nil {
			usage(fmt.Errorf("invalid -spec %s: %w", *specFile, err))
		}
		if prog, err = openloop.Program(sp); err != nil {
			usage(err)
		}
		gen, err := openloop.NewGenerator(sp, 0)
		if err != nil {
			usage(err)
		}
		src, traceHdr = gen, openloop.Header(sp)
	case *replayFile != "":
		f, err := os.Open(*replayFile)
		if err != nil {
			usage(fmt.Errorf("opening -replay: %w", err))
		}
		defer f.Close()
		r, err := tracefmt.NewReader(bufio.NewReader(f))
		if err != nil {
			usage(fmt.Errorf("invalid -replay %s: %w", *replayFile, err))
		}
		if prog, err = openloop.ReplayProgram(r.Header()); err != nil {
			usage(err)
		}
		src, traceHdr = openloop.NewReplayer(r), r.Header()
	default:
		switch *wl {
		case "prodcons":
			prog = workload.ProducerConsumer(*iters, *work)
		case "lock":
			prog = workload.Lock(*procs, *iters, *work, *work, sk)
		case "barrier":
			var err error
			if prog, err = workload.BuildBarrier(*procs, *iters, *work, sk); err != nil {
				usage(err)
			}
		case "fig3":
			prog = workload.Fig3(*procs-1, *work)
		}
	}
	// All file outputs below stream into same-directory temp files and are
	// renamed into place only when complete; the guard's signal handler
	// removes in-flight temps and exits with the distinct interrupted status,
	// so a kill at any instant can never leave a partial -record, -timeline
	// or -dump-trace file that looks valid.
	guard := newTempGuard()

	var traceW *tracefmt.Writer
	var traceOut *os.File
	if *recordFile != "" {
		var err error
		if traceOut, err = guard.create(*recordFile); err != nil {
			fatal(err)
		}
		if traceW, err = tracefmt.NewWriter(traceOut, traceHdr); err != nil {
			fatal(err)
		}
		src = openloop.NewRecorder(src, traceW)
	}

	cfg := machine.NewConfig(pol)
	cfg.NetLatency = sim.Time(*netlat)
	cfg.NetJitter = *jitter
	cfg.Seed = *seed
	if *bus {
		cfg.Fabric = machine.FabricBus
	}
	if *update {
		cfg.Protocol = machine.ProtocolUpdate
	}
	if *injectFaults {
		cfg.Faults = true
		cfg.FaultSeed = *faultSeed
		cfg.FaultRates = rates
	}
	cfg.DirShards = *dirShards
	cfg.Topology = topo
	cfg.ClusterSize = *clusterSize
	cfg.RemoteLatency = sim.Time(*remoteLat)
	cfg.HeapEngine = *engine == "heap"
	cfg.RecordTrace = *check || *dump != ""
	cfg.Metrics = *showMetrics || *timeline != ""
	cfg.RecordTimings = *conds || *dump != ""
	if src != nil {
		cfg.Workload = openloop.Compile(src)
	}

	res, err := machine.Run(prog, cfg)
	if err != nil {
		fatal(err)
	}
	if traceW != nil {
		if err := traceW.Close(); err != nil {
			fatal(fmt.Errorf("closing -record trace: %w", err))
		}
		if err := guard.commit(traceOut, *recordFile); err != nil {
			fatal(fmt.Errorf("closing -record trace: %w", err))
		}
		fmt.Printf("arrival trace recorded to %s (%d records)\n", *recordFile, traceW.Count())
	}

	fmt.Printf("workload %s on %s: %d cycles, %d messages\n", prog.Name, pol, res.Cycles, res.Messages)
	if *injectFaults {
		fmt.Printf("faults: seed=%d rates=%s injected=%d\n", *faultSeed, rates, len(res.Injections))
	}
	tbl := stats.NewTable("per-processor", "proc", "finish", "reads", "writes", "syncs",
		"read stall", "sync stall", "local")
	for i, ps := range res.ProcStats {
		tbl.Row(fmt.Sprintf("P%d", i), int64(res.ProcFinish[i]),
			ps.Get("reads"), ps.Get("writes"), ps.Get("syncs"),
			ps.Get("read_stall_cycles"),
			ps.Get("sync_counter_stall_cycles")+ps.Get("sync_line_stall_cycles")+ps.Get("sync_performed_stall_cycles"),
			ps.Get("local_cycles"))
	}
	fmt.Println(tbl)
	agg := stats.NewCounters()
	for _, cs := range res.CacheStats {
		agg.Merge(cs)
	}
	fmt.Printf("caches: %s\n", agg)
	fmt.Printf("directory: %s\n", res.DirStats)
	if *dirShards > 1 {
		for i, ss := range res.DirShardStats {
			fmt.Printf("  shard %d (node %d): %s\n", i, *procs+i, ss)
		}
	}
	fmt.Printf("final memory:")
	for _, a := range prog.Addrs() {
		fmt.Printf(" x%d=%d", a, res.FinalMem[a])
	}
	fmt.Println()

	if *showMetrics {
		for _, mt := range res.Metrics.Tables() {
			fmt.Println(mt)
		}
	}
	if *timeline != "" {
		// Render and validate in memory, then publish atomically: the file
		// either exists complete and schema-valid, or not at all.
		var buf bytes.Buffer
		if err := res.Metrics.WriteTimeline(&buf, prog.Name); err != nil {
			fatal(err)
		}
		data := buf.Bytes()
		if err := metrics.ValidateTimeline(data); err != nil {
			fatal(fmt.Errorf("timeline failed self-validation: %w", err))
		}
		if err := guard.write(*timeline, data); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline written to %s (%d events validated)\n", *timeline, metrics.EventCount(data))
	}

	init := make(map[mem.Addr]mem.Value)
	for _, a := range prog.Addrs() {
		init[a] = 0
	}
	for a, v := range prog.Init {
		init[a] = v
	}
	if *check {
		opts := core.SCOptions{MaxStates: *maxStates}
		if *por == "off" {
			opts.FullExploration = true
		}
		// The CLI's 0 means "auto" (one worker per spare core), which is the
		// kernel's negative width; 1 stays serial.
		if *exploreWorkers == 0 {
			opts.Workers = -1
		} else {
			opts.Workers = *exploreWorkers
		}
		w, err := core.SCCheckOpt(res.Trace, init, opts)
		if err != nil {
			if errors.Is(err, explore.ErrStateBudget) {
				fmt.Fprintf(os.Stderr, "wosim: trace check: state budget exhausted: %v (rerun with a larger -max-states)\n", err)
				os.Exit(2)
			}
			fatal(err)
		}
		if w.SC {
			fmt.Println("trace check: sequentially consistent")
		} else {
			fmt.Println("trace check: NOT sequentially consistent")
			os.Exit(1)
		}
	}
	if *conds {
		rep := conditions.Check(res.Timings)
		if pol == proc.PolicyWODef2DRF1 {
			rep = conditions.CheckRefined(res.Timings)
		}
		fmt.Println(rep)
		if !rep.OK() {
			os.Exit(1)
		}
	}
	if *dump != "" {
		f, err := guard.create(*dump)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, res.Trace, init, res.Timings); err != nil {
			fatal(err)
		}
		if err := guard.commit(f, *dump); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *dump)
	}
}

// tempGuard gives every output file crash/kill atomicity: writes stream into
// a same-directory temp file that is renamed over the destination only when
// complete. Its signal handler (SIGINT/SIGTERM) removes every in-flight temp
// and exits with status 3 — distinct from a failed run (1) and a usage error
// (2) — so an interrupted wosim never leaves a partial output behind.
type tempGuard struct {
	mu    sync.Mutex
	temps map[string]bool
}

func newTempGuard() *tempGuard {
	g := &tempGuard{temps: make(map[string]bool)}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		g.mu.Lock() // serializes with an in-progress commit
		for t := range g.temps {
			os.Remove(t)
		}
		fmt.Fprintf(os.Stderr, "wosim: interrupted (%v); partial output(s) removed\n", sig)
		os.Exit(3)
	}()
	return g
}

// create opens a tracked temp file next to path.
func (g *tempGuard) create(path string) (*os.File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	g.temps[f.Name()] = true
	g.mu.Unlock()
	return f, nil
}

// commit syncs, closes and renames a temp file over its destination.
func (g *tempGuard) commit(f *os.File, path string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	name := f.Name()
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(name, path); err != nil {
		return err
	}
	delete(g.temps, name)
	return nil
}

// write publishes a complete in-memory payload atomically.
func (g *tempGuard) write(path string, data []byte) error {
	f, err := g.create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return g.commit(f, path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wosim: %v\n", err)
	os.Exit(1)
}

// usage reports a flag-validation error. Usage errors exit with status 2 —
// distinct from a failed run (1) — so scripts can tell "you called it wrong"
// from "the simulation found a problem".
func usage(err error) {
	fmt.Fprintf(os.Stderr, "wosim: %v\n", err)
	os.Exit(2)
}
