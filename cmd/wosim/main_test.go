package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildWosim compiles the command once per test binary into a temp dir.
func buildWosim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wosim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s %v: %v\n%s", bin, args, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestCheckStateBudgetExit pins the distinct error path: an SC trace check
// that exhausts -max-states must exit with status 2 (not the generic 1) and
// say so, because "too big to decide" is not "not sequentially consistent".
func TestCheckStateBudgetExit(t *testing.T) {
	bin := buildWosim(t)
	out, code := run(t, bin, "-workload", "prodcons", "-iters", "2", "-check", "-max-states", "1")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "state budget exhausted") {
		t.Fatalf("missing budget message in output:\n%s", out)
	}
}

// TestCheckPORFlag runs the same checked workload with reduction on and off;
// both must succeed and agree on the verdict line.
func TestCheckPORFlag(t *testing.T) {
	bin := buildWosim(t)
	const verdict = "trace check: sequentially consistent"
	for _, por := range []string{"on", "off"} {
		out, code := run(t, bin, "-workload", "prodcons", "-iters", "2", "-check", "-por", por)
		if code != 0 {
			t.Fatalf("-por=%s: exit code = %d\noutput:\n%s", por, code, out)
		}
		if !strings.Contains(out, verdict) {
			t.Fatalf("-por=%s: missing %q in output:\n%s", por, verdict, out)
		}
	}
	if out, code := run(t, bin, "-check", "-por", "sideways"); code != 1 || !strings.Contains(out, "invalid -por") {
		t.Fatalf("invalid -por: exit code = %d, output:\n%s", code, out)
	}
}
