package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"weakorder/internal/metrics"
)

// buildWosim compiles the command once per test binary into a temp dir.
func buildWosim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wosim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s %v: %v\n%s", bin, args, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestCheckStateBudgetExit pins the distinct error path: an SC trace check
// that exhausts -max-states must exit with status 2 (not the generic 1) and
// say so, because "too big to decide" is not "not sequentially consistent".
func TestCheckStateBudgetExit(t *testing.T) {
	bin := buildWosim(t)
	out, code := run(t, bin, "-workload", "prodcons", "-iters", "2", "-check", "-max-states", "1")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "state budget exhausted") {
		t.Fatalf("missing budget message in output:\n%s", out)
	}
	// The message carries the visited-state count at exhaustion, so retuning
	// -max-states needs no second run under -metrics.
	if !strings.Contains(out, "after 1 distinct states") {
		t.Fatalf("budget message does not report the state count:\n%s", out)
	}
}

// TestCheckExploreWorkers pins the parallel search plumbing: explicit widths
// and the auto width (0) must reach the same verdict as the serial default,
// and a negative width is a usage error.
func TestCheckExploreWorkers(t *testing.T) {
	bin := buildWosim(t)
	const verdict = "trace check: sequentially consistent"
	for _, w := range []string{"0", "1", "4"} {
		out, code := run(t, bin, "-workload", "prodcons", "-iters", "2", "-check", "-explore-workers", w)
		if code != 0 {
			t.Fatalf("-explore-workers=%s: exit code = %d\noutput:\n%s", w, code, out)
		}
		if !strings.Contains(out, verdict) {
			t.Fatalf("-explore-workers=%s: missing %q in output:\n%s", w, verdict, out)
		}
	}
	if out, code := run(t, bin, "-check", "-explore-workers", "-2"); code != 2 || !strings.Contains(out, "negative -explore-workers") {
		t.Fatalf("negative -explore-workers: exit code = %d, want 2, output:\n%s", code, out)
	}
}

// TestCheckPORFlag runs the same checked workload with reduction on and off;
// both must succeed and agree on the verdict line.
func TestCheckPORFlag(t *testing.T) {
	bin := buildWosim(t)
	const verdict = "trace check: sequentially consistent"
	for _, por := range []string{"on", "off"} {
		out, code := run(t, bin, "-workload", "prodcons", "-iters", "2", "-check", "-por", por)
		if code != 0 {
			t.Fatalf("-por=%s: exit code = %d\noutput:\n%s", por, code, out)
		}
		if !strings.Contains(out, verdict) {
			t.Fatalf("-por=%s: missing %q in output:\n%s", por, verdict, out)
		}
	}
	if out, code := run(t, bin, "-check", "-por", "sideways"); code != 2 || !strings.Contains(out, "invalid -por") {
		t.Fatalf("invalid -por: exit code = %d, want 2, output:\n%s", code, out)
	}
}

// TestFlagValidationExitsTwo pins the up-front validation contract: a typo'd
// enum or a negative latency is rejected with status 2 and a message naming
// the flag, before any simulation output.
func TestFlagValidationExitsTwo(t *testing.T) {
	bin := buildWosim(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad workload", []string{"-workload", "nope"}, "unknown -workload"},
		{"bad policy", []string{"-policy", "tso"}, "unknown -policy"},
		{"bad spin", []string{"-spin", "busy"}, "unknown -spin"},
		{"negative netlat", []string{"-netlat", "-1"}, "negative -netlat"},
		{"negative jitter", []string{"-jitter", "-3"}, "negative -jitter"},
		{"zero procs", []string{"-procs", "0"}, "-procs"},
		{"bad fault rates", []string{"-faults", "-fault-rates", "drop=2"}, "invalid -fault-rates"},
		{"rates without faults", []string{"-fault-rates", "drop=0.1"}, "requires -faults"},
	}
	for _, c := range cases {
		out, code := run(t, bin, c.args...)
		if code != 2 {
			t.Errorf("%s: exit code = %d, want 2\noutput:\n%s", c.name, code, out)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("%s: output missing %q:\n%s", c.name, c.want, out)
		}
		if strings.Contains(out, "cycles") {
			t.Errorf("%s: simulation ran despite the usage error:\n%s", c.name, out)
		}
	}
}

// TestFaultInjectionReplays runs the same faulty simulation twice and asserts
// the output — cycle counts, injection summary, final memory — is identical:
// the -fault-seed contract.
func TestFaultInjectionReplays(t *testing.T) {
	bin := buildWosim(t)
	args := []string{"-workload", "fig3", "-procs", "3", "-work", "10",
		"-faults", "-fault-seed", "7", "-fault-rates", "drop=0.05,dup=0.05,delay=0.08,reorder=0.03,maxdelay=12"}
	out1, code1 := run(t, bin, args...)
	out2, code2 := run(t, bin, args...)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exit codes = %d, %d\noutput:\n%s", code1, code2, out1)
	}
	if out1 != out2 {
		t.Fatalf("faulty runs with the same seed diverged:\n--- first ---\n%s--- second ---\n%s", out1, out2)
	}
	if !strings.Contains(out1, "faults: seed=7") {
		t.Fatalf("missing injection summary:\n%s", out1)
	}
}

// TestMetricsAndTimelineFlags exercises the observability surface end to end:
// -metrics prints the attribution tables, -timeline writes a trace file that
// validates, and the combination is byte-deterministic across reruns.
func TestMetricsAndTimelineFlags(t *testing.T) {
	bin := buildWosim(t)
	tl1 := filepath.Join(t.TempDir(), "a.json")
	tl2 := filepath.Join(t.TempDir(), "b.json")
	args := func(tl string) []string {
		return []string{"-workload", "fig3", "-procs", "3", "-work", "15",
			"-jitter", "2", "-metrics", "-timeline", tl}
	}
	out1, code1 := run(t, bin, args(tl1)...)
	out2, code2 := run(t, bin, args(tl2)...)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exit codes = %d, %d\noutput:\n%s", code1, code2, out1)
	}
	for _, want := range []string{
		"cycle attribution", "compute", "idle",
		"fabric traffic", "reserve-bit occupancy", "directory occupancy",
		"timeline written to",
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, out1)
		}
	}
	// The two runs name different output files; everything else must match.
	strip := func(out string) string {
		var kept []string
		for _, l := range strings.Split(out, "\n") {
			if !strings.HasPrefix(l, "timeline written to") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	if strip(out1) != strip(out2) {
		t.Fatalf("-metrics output diverged between identical runs:\n--- first ---\n%s--- second ---\n%s", out1, out2)
	}
	d1, err := os.ReadFile(tl1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := os.ReadFile(tl2)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Fatal("timeline files diverged between identical runs")
	}
	if err := metrics.ValidateTimeline(d1); err != nil {
		t.Fatalf("written timeline invalid: %v", err)
	}
	if n := metrics.EventCount(d1); n == 0 {
		t.Fatal("timeline holds no events")
	}
	// Without the flags the run must not mention the recorder at all.
	plain, code := run(t, bin, "-workload", "fig3", "-procs", "3", "-work", "15")
	if code != 0 || strings.Contains(plain, "cycle attribution") {
		t.Fatalf("metrics output leaked into a plain run (code %d):\n%s", code, plain)
	}
}
