package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildWosim compiles the command once per test binary into a temp dir.
func buildWosim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wosim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s %v: %v\n%s", bin, args, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestCheckStateBudgetExit pins the distinct error path: an SC trace check
// that exhausts -max-states must exit with status 2 (not the generic 1) and
// say so, because "too big to decide" is not "not sequentially consistent".
func TestCheckStateBudgetExit(t *testing.T) {
	bin := buildWosim(t)
	out, code := run(t, bin, "-workload", "prodcons", "-iters", "2", "-check", "-max-states", "1")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "state budget exhausted") {
		t.Fatalf("missing budget message in output:\n%s", out)
	}
}

// TestCheckPORFlag runs the same checked workload with reduction on and off;
// both must succeed and agree on the verdict line.
func TestCheckPORFlag(t *testing.T) {
	bin := buildWosim(t)
	const verdict = "trace check: sequentially consistent"
	for _, por := range []string{"on", "off"} {
		out, code := run(t, bin, "-workload", "prodcons", "-iters", "2", "-check", "-por", por)
		if code != 0 {
			t.Fatalf("-por=%s: exit code = %d\noutput:\n%s", por, code, out)
		}
		if !strings.Contains(out, verdict) {
			t.Fatalf("-por=%s: missing %q in output:\n%s", por, verdict, out)
		}
	}
	if out, code := run(t, bin, "-check", "-por", "sideways"); code != 2 || !strings.Contains(out, "invalid -por") {
		t.Fatalf("invalid -por: exit code = %d, want 2, output:\n%s", code, out)
	}
}

// TestFlagValidationExitsTwo pins the up-front validation contract: a typo'd
// enum or a negative latency is rejected with status 2 and a message naming
// the flag, before any simulation output.
func TestFlagValidationExitsTwo(t *testing.T) {
	bin := buildWosim(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad workload", []string{"-workload", "nope"}, "unknown -workload"},
		{"bad policy", []string{"-policy", "tso"}, "unknown -policy"},
		{"bad spin", []string{"-spin", "busy"}, "unknown -spin"},
		{"negative netlat", []string{"-netlat", "-1"}, "negative -netlat"},
		{"negative jitter", []string{"-jitter", "-3"}, "negative -jitter"},
		{"zero procs", []string{"-procs", "0"}, "-procs"},
		{"bad fault rates", []string{"-faults", "-fault-rates", "drop=2"}, "invalid -fault-rates"},
		{"rates without faults", []string{"-fault-rates", "drop=0.1"}, "requires -faults"},
	}
	for _, c := range cases {
		out, code := run(t, bin, c.args...)
		if code != 2 {
			t.Errorf("%s: exit code = %d, want 2\noutput:\n%s", c.name, code, out)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("%s: output missing %q:\n%s", c.name, c.want, out)
		}
		if strings.Contains(out, "cycles") {
			t.Errorf("%s: simulation ran despite the usage error:\n%s", c.name, out)
		}
	}
}

// TestFaultInjectionReplays runs the same faulty simulation twice and asserts
// the output — cycle counts, injection summary, final memory — is identical:
// the -fault-seed contract.
func TestFaultInjectionReplays(t *testing.T) {
	bin := buildWosim(t)
	args := []string{"-workload", "fig3", "-procs", "3", "-work", "10",
		"-faults", "-fault-seed", "7", "-fault-rates", "drop=0.05,dup=0.05,delay=0.08,reorder=0.03,maxdelay=12"}
	out1, code1 := run(t, bin, args...)
	out2, code2 := run(t, bin, args...)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exit codes = %d, %d\noutput:\n%s", code1, code2, out1)
	}
	if out1 != out2 {
		t.Fatalf("faulty runs with the same seed diverged:\n--- first ---\n%s--- second ---\n%s", out1, out2)
	}
	if !strings.Contains(out1, "faults: seed=7") {
		t.Fatalf("missing injection summary:\n%s", out1)
	}
}
