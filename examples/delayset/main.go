// Delayset demonstrates the Shasha–Snir analysis discussed in the paper's
// related work (Section 2.1): statically compute, for a branch-free program,
// which intra-thread access pairs must be delayed to preserve sequential
// consistency on relaxed hardware, then verify the guarantee by exhaustive
// exploration of the write-buffer machine with and without enforcement.
package main

import (
	"fmt"
	"log"

	"weakorder"
	"weakorder/internal/delayset"
	"weakorder/internal/model"
)

const dekker = `
name: dekker
init: x=0 y=0
thread:
    st x, 1
    ld r0, y
thread:
    st y, 1
    ld r1, x
`

func main() {
	p := weakorder.MustParseProgram(dekker).Program

	an, err := delayset.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static accesses: %d, conflict edges: %d\n", len(an.Accesses), an.ConflictEdges)
	fmt.Println("delay set (Before -> After, same thread):")
	for _, d := range an.Delays {
		fmt.Printf("  %s\n", d)
	}

	x := &model.Explorer{}
	count := func(m model.Machine) int {
		out, _, err := x.Outcomes(m)
		if err != nil {
			log.Fatal(err)
		}
		return len(out)
	}
	sc := count(model.NewSC(p))
	wb := count(model.NewWriteBuffer(p, ""))
	enforced := count(model.NewWriteBufferDelays(p, an.DelayedBefore(p.NumThreads())))

	fmt.Printf("\ndistinct results: SC=%d  write-buffer=%d  write-buffer+delays=%d\n", sc, wb, enforced)
	fmt.Println("the write buffer's extra result is the both-reads-zero violation;")
	fmt.Println("enforcing the two store->load delays removes it exactly.")
	fmt.Println()
	fmt.Println("the paper's argument for weak ordering: these delays must be")
	fmt.Println("derived by global static analysis (often pessimistically), whereas")
	fmt.Println("DRF0 just asks the programmer to label synchronization.")
}
