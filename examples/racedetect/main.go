// Racedetect demonstrates the Definition-3 tooling: the happens-before
// machinery on the paper's Figure-2 executions, the dynamic vector-clock
// detector, and whole-program checking under both DRF0 and the Section-6
// refined model.
package main

import (
	"fmt"
	"log"

	"weakorder"
	"weakorder/internal/litmus"
	"weakorder/internal/race"
)

const racy = `
name: racy-mp
init: data=0 flag=0
thread:
    st data, 1
    st flag, 1       # plain data write: invisible to the hardware
thread:
wait:
    ld r0, flag      # plain data spin
    beq r0, 0, wait
    ld r1, data
`

const clean = `
name: clean-mp
init: data=0 flag=0
thread:
    st data, 1
    sync.st flag, 1
thread:
wait:
    sync.ld r0, flag
    beq r0, 0, wait
    ld r1, data
`

func main() {
	// Figure 2's executions through the per-execution checker.
	for name, exec := range map[string]*weakorder.Execution{
		"figure-2a": litmus.Figure2a(),
		"figure-2b": litmus.Figure2b(),
	} {
		rep, err := weakorder.ExecutionRaces(exec, weakorder.DRF0())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", name, rep)
	}
	fmt.Println()

	// The same verdicts from the streaming vector-clock detector.
	races, err := race.CheckExecution(litmus.Figure2b(), weakorder.DRF0())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vector-clock detector finds %d race pair(s) in figure-2b:\n", len(races))
	for _, r := range races {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println()

	// Whole-program checking (Definition 3 quantifies over all idealized
	// executions).
	for _, src := range []string{racy, clean} {
		p := weakorder.MustParseProgram(src).Program
		rep, err := weakorder.CheckDRF0(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
		if !rep.Obeys() && len(rep.Violations) > 0 {
			fmt.Printf("  first racy execution: %s\n", rep.Violations[0])
		}
	}
	fmt.Println()

	// The refined model demotes read-only synchronization from releasing.
	// Per execution the two models genuinely differ: in the execution below
	// the Test happens to complete before the TestAndSet, so DRF0 counts it
	// as ordering P0's write — DRF1 does not.
	exec := &weakorder.Execution{}
	exec.Append(weakorder.Access{Proc: 0, Op: weakorder.OpWrite, Addr: 0, Value: 1})
	exec.Append(weakorder.Access{Proc: 0, Op: weakorder.OpSyncRead, Addr: 1, Value: 0})
	exec.Append(weakorder.Access{Proc: 1, Op: weakorder.OpSyncRMW, Addr: 1, Value: 0, WValue: 1})
	exec.Append(weakorder.Access{Proc: 1, Op: weakorder.OpRead, Addr: 0, Value: 1})
	d0, err := weakorder.ExecutionRaces(exec, weakorder.DRF0())
	if err != nil {
		log.Fatal(err)
	}
	d1, err := weakorder.ExecutionRaces(exec, weakorder.DRF1())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Test-then-TAS execution under DRF0: race-free=%v; under DRF1: race-free=%v\n",
		d0.Free(), d1.Free())
	fmt.Println()
	fmt.Println("note: at whole-program level the models usually coincide — forcing a")
	fmt.Println("sync op to complete first requires the later one to OBSERVE it, which")
	fmt.Println("already needs a writing release and a reading acquire (DRF1's edge).")
}
