// Lockcontention sweeps a TestAndSet critical-section workload across
// ordering policies and contention levels, reporting the completion time and
// verifying that no increment is ever lost — the DRF0 program must behave
// sequentially consistently on every weakly ordered configuration.
package main

import (
	"fmt"
	"log"

	"weakorder"
	"weakorder/internal/workload"
)

func main() {
	policies := []weakorder.Policy{
		weakorder.PolicySC,
		weakorder.PolicyWODef1,
		weakorder.PolicyWODef2,
		weakorder.PolicyWODef2DRF1,
	}
	fmt.Printf("%-6s %-16s %10s %10s %8s\n", "procs", "policy", "cycles", "messages", "counter")
	for _, procs := range []int{2, 4, 6} {
		const acquires = 4
		prog := workload.Lock(procs, acquires, 15, 15, workload.SpinSync)
		want := workload.LockTotal(procs, acquires)
		for _, pol := range policies {
			cfg := weakorder.NewSimConfig(pol)
			res, err := weakorder.Simulate(prog, cfg)
			if err != nil {
				log.Fatal(err)
			}
			got := res.FinalMem[workload.CtrAddr()]
			mark := ""
			if got != want {
				mark = "  << LOST UPDATES"
			}
			fmt.Printf("%-6d %-16s %10d %10d %8d%s\n", procs, pol, res.Cycles, res.Messages, got, mark)
		}
		fmt.Println()
	}
	fmt.Println("every row's counter must equal procs*acquires: the critical sections")
	fmt.Println("are data-race-free, so Definition 2 guarantees SC behavior.")
}
