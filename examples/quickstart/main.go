// Quickstart: write a small synchronized program, check that it obeys DRF0
// (Definition 3), verify the weak-ordering contract (Definition 2) against
// the paper's Section-5 implementation, and time it on the cache-coherent
// simulator.
package main

import (
	"fmt"
	"log"

	"weakorder"
)

const src = `
name: quickstart
init: data=0 flag=0
thread:
    st data, 41          # plain data write
    sync.st flag, 1      # release: hardware-recognizable synchronization
thread:
wait:
    sync.ld r0, flag     # acquire: spin on the sync flag
    beq r0, 0, wait
    ld r1, data          # guaranteed to read 41 on weakly ordered hardware
exists: 1:r1=0
`

func main() {
	res := weakorder.MustParseProgram(src)
	p := res.Program

	// Definition 3: does the program obey DRF0? (All idealized executions
	// must order conflicting accesses by happens-before.)
	rep, err := weakorder.CheckDRF0(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DRF0:", rep)

	// Definition 2: the Section-5 machine must appear sequentially
	// consistent to this program — every reachable result is an SC result.
	for _, hw := range []weakorder.HardwareModel{
		weakorder.ModelWODef2, weakorder.ModelWODef1, weakorder.ModelNonAtomic,
	} {
		contract, err := weakorder.VerifyContract(hw, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("contract:", contract)
	}

	// And the stale-read outcome named by the exists clause is unreachable
	// on the weakly ordered machine:
	out, err := weakorder.Outcomes(weakorder.ModelWODef2, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WO-def2 produces %d distinct results\n", len(out))

	// Finally, time the program on the detailed coherent-cache simulator
	// under the paper's implementation.
	cfg := weakorder.NewSimConfig(weakorder.PolicyWODef2)
	cfg.RecordTrace = true
	sim, err := weakorder.Simulate(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timed run: %d cycles, %d messages, consumer read data=%d\n",
		sim.Cycles, sim.Messages, sim.FinalRegs[1][1])

	// The recorded trace must itself be sequentially consistent.
	w, err := weakorder.IsSequentiallyConsistent(sim.Trace, p.Init)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trace is SC:", w.SC)
}
