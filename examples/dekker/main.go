// Dekker walks through Figure 1 of the paper: the store-buffering mutual
// exclusion fragment whose "both processors get in" outcome is impossible
// under sequential consistency yet reachable on every relaxed hardware
// configuration — unless the flag accesses are made synchronization
// operations the hardware can see.
package main

import (
	"fmt"
	"log"

	"weakorder"
)

const dekkerData = `
name: dekker-data
init: x=0 y=0
thread:
    st x, 1
    ld r0, y      # if 0, P0 believes it may enter
thread:
    st y, 1
    ld r1, x      # if 0, P1 believes it may enter
exists: 0:r0=0 && 1:r1=0
`

const dekkerSync = `
name: dekker-sync
init: x=0 y=0
thread:
    sync.st x, 1
    sync.ld r0, y
thread:
    sync.st y, 1
    sync.ld r1, x
exists: 0:r0=0 && 1:r1=0
`

// violation checks whether some outcome has both loads zero. Thread 0 loads
// into r0, thread 1 into r1; the Result records them by (proc, op index 1).
func violation(out weakorder.OutcomeSet) bool {
	for _, k := range out.Keys() {
		r := out[k]
		v0 := r.Reads[weakorder.ReadKeyOf(0, 1)]
		v1 := r.Reads[weakorder.ReadKeyOf(1, 1)]
		if v0 == 0 && v1 == 0 {
			return true
		}
	}
	return false
}

func main() {
	models := []weakorder.HardwareModel{
		weakorder.ModelSC,
		weakorder.ModelWriteBuffer,
		weakorder.ModelNetwork,
		weakorder.ModelNonAtomic,
		weakorder.ModelWODef1,
		weakorder.ModelWODef2,
	}
	for _, src := range []string{dekkerData, dekkerSync} {
		p := weakorder.MustParseProgram(src).Program
		fmt.Printf("%s:\n", p.Name)
		for _, m := range models {
			out, err := weakorder.Outcomes(m, p)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "forbidden"
			if violation(out) {
				verdict = "ALLOWED (sequential consistency violated)"
			}
			fmt.Printf("  %-26s both-zero %s\n", m, verdict)
		}
		fmt.Println()
	}
	fmt.Println("the data version is racy: weak ordering promises it nothing.")
	fmt.Println("the sync version is DRF0: every weakly ordered machine forbids the violation.")
}
