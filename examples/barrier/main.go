// Barrier times a centralized sense-reversing barrier on the cache-coherent
// simulator under the paper's implementation (WO-def2) and the Section-6
// refinement (WO-def2-drf1), demonstrating the read-only-synchronization
// serialization problem: plain Definition-2 hardware treats every spinning
// Test as a write, so waiters ping-pong the sense line exclusively; the
// refinement lets them spin on a shared copy.
package main

import (
	"fmt"
	"log"

	"weakorder"
	"weakorder/internal/workload"
)

func main() {
	fmt.Println("centralized barrier, 4 processors, 4 phases, sync-read spin")
	fmt.Printf("%-16s %10s %10s %12s\n", "policy", "cycles", "messages", "final sense")
	for _, pol := range []weakorder.Policy{
		weakorder.PolicySC,
		weakorder.PolicyWODef1,
		weakorder.PolicyWODef2,
		weakorder.PolicyWODef2DRF1,
	} {
		prog := workload.Barrier(4, 4, 25, workload.SpinSync)
		cfg := weakorder.NewSimConfig(pol)
		res, err := weakorder.Simulate(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10d %10d %12d\n", pol, res.Cycles, res.Messages, res.FinalMem[workload.SenseAddr()])
	}
	fmt.Println()
	fmt.Println("WO-def2-drf1 should beat WO-def2: spinning Tests stop being serialized")
	fmt.Println("as exclusive acquisitions (Section 6's proposed refinement of DRF0).")
}
