// Paradigms demonstrates the two specialized synchronization models the
// paper's conclusion proposes — "sharing only through monitors" and
// "parallelism only from do-all loops" — as execution checkers: a monitor
// workload satisfies the lock discipline but not the phase discipline, a
// stencil satisfies the phase discipline but not the lock discipline, and
// both obey DRF0 (each paradigm is a stricter, easier-to-check subset).
package main

import (
	"fmt"
	"log"

	"weakorder"
	"weakorder/internal/workload"
)

func traceOf(p *weakorder.Program) *weakorder.Execution {
	cfg := weakorder.NewSimConfig(weakorder.PolicyWODef2)
	cfg.RecordTrace = true
	res, err := weakorder.Simulate(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res.Trace
}

func main() {
	counter, sense := workload.DoAllBarrier()
	barrier := weakorder.PhaseBarrier{Counter: counter, Sense: sense}

	monitor := workload.Lock(3, 3, 5, 5, workload.SpinTAS)
	stencil := workload.DoAll(3, 3, false)

	for _, c := range []struct {
		name string
		prog *weakorder.Program
	}{{"monitor-style (TAS critical sections)", monitor}, {"do-all stencil (double-buffered)", stencil}} {
		tr := traceOf(c.prog)
		locks, err := weakorder.CheckLockDiscipline(tr)
		if err != nil {
			log.Fatal(err)
		}
		phases, err := weakorder.CheckPhaseDiscipline(tr, barrier)
		if err != nil {
			log.Fatal(err)
		}
		sc, err := weakorder.IsSequentiallyConsistent(tr, c.prog.Init)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", c.name)
		fmt.Printf("  monitor discipline: %v\n", locks.OK())
		fmt.Printf("  do-all discipline:  %v\n", phases.OK())
		fmt.Printf("  trace is SC:        %v\n", sc.SC)
		fmt.Println()
	}
	fmt.Println("each paradigm is a stricter-but-simpler contract than raw DRF0:")
	fmt.Println("monitors fail the phase check, stencils fail the lock check, and")
	fmt.Println("weakly ordered hardware keeps both sequentially consistent.")
}
