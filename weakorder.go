// Package weakorder is a library-scale reproduction of Adve & Hill's
// "Weak Ordering — A New Definition": the formal machinery of the DRF0
// synchronization model, operational models of sequentially consistent and
// relaxed hardware with an exhaustive explorer, the paper's Section-5
// reserve-bit implementation, and a timed cache-coherent simulator for the
// performance analysis.
//
// The package is a facade over the implementation packages:
//
//   - Programs are written with the Builder DSL or parsed from the
//     litmus-style text format (ParseProgram).
//   - CheckDRF0 / CheckDRF1 decide Definition 3 by enumerating all idealized
//     executions; ExecutionRaces checks a single recorded execution.
//   - Outcomes enumerates a hardware model's result set; SCOutcomes the
//     idealized reference; VerifyContract performs Definition 2's
//     containment check.
//   - IsSequentiallyConsistent decides whether one recorded execution (for
//     example a trace from the timed simulator) could have been produced by
//     sequentially consistent memory.
//   - Simulate runs a program on the timed cache-coherent machine under a
//     chosen ordering policy (SC, WO-Def1, WO-Def2, WO-Def2+DRF1).
//
// Quick start:
//
//	res := weakorder.MustParseProgram(src)
//	rep, _ := weakorder.CheckDRF0(res.Program)
//	if rep.Obeys() {
//	    // Definition 2: any weakly ordered hardware appears SC to it.
//	}
package weakorder

import (
	"weakorder/internal/conditions"
	"weakorder/internal/core"
	"weakorder/internal/doall"
	"weakorder/internal/lockset"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/model"
	"weakorder/internal/proc"
	"weakorder/internal/program"
)

// Re-exported fundamental types.
type (
	// Addr is a memory location.
	Addr = mem.Addr
	// Value is a memory word.
	Value = mem.Value
	// ProcID names a processor.
	ProcID = mem.ProcID
	// Op classifies a memory operation (data read/write, sync read/write/RMW).
	Op = mem.Op
	// Access is one dynamic memory access.
	Access = mem.Access
	// Event is an access within a recorded execution.
	Event = mem.Event
	// Execution is a recorded execution.
	Execution = mem.Execution
	// Result is the paper's notion of an execution's result.
	Result = mem.Result

	// Program is a multithreaded register-machine program.
	Program = program.Program
	// Builder assembles programs.
	Builder = program.Builder
	// ParseResult is the output of the text-format parser.
	ParseResult = program.ParseResult
	// Cond is a litmus outcome predicate.
	Cond = program.Cond
	// FinalState is what conditions evaluate against.
	FinalState = program.FinalState

	// SyncModel is a synchronization model (DRF0, DRF1, ...).
	SyncModel = core.SyncModel
	// Orders bundles po / so / hb of an analyzed execution.
	Orders = core.Orders
	// Race is an unordered conflicting access pair.
	Race = core.Race
	// ProgramReport is the Definition-3 verdict for a program.
	ProgramReport = core.ProgramReport
	// ExecutionReport is the per-execution race report.
	ExecutionReport = core.Report
	// ContractReport is the Definition-2 verdict for (program, hardware).
	ContractReport = core.ContractReport
	// OutcomeSet is a set of distinct Results.
	OutcomeSet = core.OutcomeSet
	// SCWitness is SCCheck's verdict for a recorded execution.
	SCWitness = core.SCWitness

	// Machine is an operational hardware model under exploration.
	Machine = model.Machine
	// Explorer exhaustively enumerates a machine's behaviors.
	Explorer = model.Explorer

	// SimConfig parameterizes the timed cache-coherent simulator.
	SimConfig = machine.Config
	// SimResult reports a timed run.
	SimResult = machine.Result
	// Policy is a timed processor's ordering discipline.
	Policy = proc.Policy
)

// Operation kinds.
const (
	OpRead      = mem.OpRead
	OpWrite     = mem.OpWrite
	OpSyncRead  = mem.OpSyncRead
	OpSyncWrite = mem.OpSyncWrite
	OpSyncRMW   = mem.OpSyncRMW
)

// Timed ordering policies.
const (
	PolicySC              = proc.PolicySC
	PolicyWODef1          = proc.PolicyWODef1
	PolicyWODef2          = proc.PolicyWODef2
	PolicyWODef2DRF1      = proc.PolicyWODef2DRF1
	PolicyWODef2NoReserve = proc.PolicyWODef2NoReserve
)

// ReadKeyOf locates a dynamic read in a Result by processor and program-order
// operation index.
func ReadKeyOf(p ProcID, index int) mem.ReadKey {
	return mem.ReadKey{Proc: p, Index: index}
}

// DRF0 is the paper's Data-Race-Free-0 synchronization model.
func DRF0() SyncModel { return core.DRF0{} }

// DRF1 is the Section-6 refinement distinguishing read-only synchronization.
func DRF1() SyncModel { return core.DRF1{} }

// NewBuilder starts a program.
func NewBuilder(name string) *Builder { return program.NewBuilder(name) }

// Imm returns an immediate instruction operand.
func Imm(v Value) program.Operand { return program.Imm(v) }

// R returns a register instruction operand.
func R(r program.Reg) program.Operand { return program.R(r) }

// ParseProgram parses the litmus-style text format.
func ParseProgram(src string) (*ParseResult, error) { return program.Parse(src) }

// MustParseProgram is ParseProgram that panics on error.
func MustParseProgram(src string) *ParseResult { return program.MustParse(src) }

// CheckDRF0 decides Definition 3 for the program under DRF0, enumerating all
// idealized executions (bounded to maxOps memory operations per execution
// when the program can spin forever; pass 0 for the 64-op default).
func CheckDRF0(p *Program) (*ProgramReport, error) { return checkModel(p, core.DRF0{}, 0) }

// CheckDRF1 decides Definition 3 under the refined model.
func CheckDRF1(p *Program) (*ProgramReport, error) { return checkModel(p, core.DRF1{}, 0) }

// CheckModel decides Definition 3 under an arbitrary synchronization model
// with an explicit per-execution operation bound.
func CheckModel(p *Program, m SyncModel, maxOps int) (*ProgramReport, error) {
	return checkModel(p, m, maxOps)
}

func checkModel(p *Program, m SyncModel, maxOps int) (*ProgramReport, error) {
	if maxOps <= 0 {
		maxOps = 64
	}
	enum := &model.Enumerator{Prog: p, Explorer: &model.Explorer{MaxTraceOps: maxOps}}
	return core.CheckProgram(enum, m, 0)
}

// ExecutionRaces checks one idealized execution against a synchronization
// model, returning its race report.
func ExecutionRaces(e *Execution, m SyncModel) (*ExecutionReport, error) {
	return core.CheckExecution(e, m)
}

// SCOutcomes enumerates the results of the program on the idealized
// (sequentially consistent) architecture.
func SCOutcomes(p *Program) (OutcomeSet, error) {
	out, _, err := newExplorer().Outcomes(model.NewSC(p))
	return out, err
}

// HardwareModel names an operational machine for Outcomes.
type HardwareModel string

// The operational hardware models.
const (
	ModelSC          HardwareModel = "SC"
	ModelWriteBuffer HardwareModel = "bus+writebuffer"
	ModelNetwork     HardwareModel = "network-nocache"
	ModelNonAtomic   HardwareModel = "network+cache-nonatomic"
	ModelWODef1      HardwareModel = "WO-def1"
	ModelWODef2      HardwareModel = "WO-def2"
	ModelWODef2DRF1  HardwareModel = "WO-def2-drf1"
)

// NewMachine instantiates an operational model for the program.
func NewMachine(m HardwareModel, p *Program) Machine {
	switch m {
	case ModelSC:
		return model.NewSC(p)
	case ModelWriteBuffer:
		return model.NewWriteBuffer(p, "")
	case ModelNetwork:
		return model.NewNetwork(p)
	case ModelNonAtomic:
		return model.NewNonAtomic(p)
	case ModelWODef1:
		return model.NewWODef1(p)
	case ModelWODef2:
		return model.NewWODef2(p)
	case ModelWODef2DRF1:
		return model.NewWODef2DRF1(p)
	default:
		panic("weakorder: unknown hardware model " + string(m))
	}
}

func newExplorer() *model.Explorer { return &model.Explorer{MaxTraceOps: 64} }

// Outcomes enumerates the results the hardware model can produce for the
// program.
func Outcomes(m HardwareModel, p *Program) (OutcomeSet, error) {
	out, _, err := newExplorer().Outcomes(NewMachine(m, p))
	return out, err
}

// VerifyContract performs Definition 2's check for one program on one
// hardware model: it decides DRF0, enumerates both outcome sets, and reports
// whether every hardware outcome is sequentially consistent.
func VerifyContract(m HardwareModel, p *Program) (*ContractReport, error) {
	rep, err := CheckDRF0(p)
	if err != nil {
		return nil, err
	}
	sc, err := SCOutcomes(p)
	if err != nil {
		return nil, err
	}
	hw, err := Outcomes(m, p)
	if err != nil {
		return nil, err
	}
	return core.CheckContract(p.Name, string(m), rep.Obeys(), sc, hw), nil
}

// IsSequentiallyConsistent decides whether a recorded execution could have
// been produced by sequentially consistent memory, given the initial values.
func IsSequentiallyConsistent(e *Execution, init map[Addr]Value) (*SCWitness, error) {
	return core.SCCheck(e, init)
}

// NewSimConfig returns timed-simulator defaults for a policy.
func NewSimConfig(p Policy) SimConfig { return machine.NewConfig(p) }

// Simulate runs the program on the timed cache-coherent machine.
func Simulate(p *Program, cfg SimConfig) (*SimResult, error) { return machine.Run(p, cfg) }

// ConditionsReport is the verdict of checking a timed run's access lifecycle
// log against the Section-5.1 sufficient conditions.
type ConditionsReport = conditions.Report

// CheckConditions validates a timed run (made with SimConfig.RecordTimings)
// against the paper's Section-5.1 conditions for weak ordering w.r.t. DRF0.
func CheckConditions(r *SimResult) *ConditionsReport { return conditions.Check(r.Timings) }

// CheckConditionsRefined validates against the Section-6 refined conditions,
// the discipline PolicyWODef2DRF1 implements (read-only synchronization is
// unserialized and does not release).
func CheckConditionsRefined(r *SimResult) *ConditionsReport {
	return conditions.CheckRefined(r.Timings)
}

// LockDisciplineReport is the verdict of the Eraser-style monitor-discipline
// checker.
type LockDisciplineReport = lockset.Report

// CheckLockDiscipline verifies "sharing only through monitors" — the
// specialized synchronization model the paper's conclusion proposes — over a
// recorded execution: every shared data location must be consistently
// protected by at least one lock.
func CheckLockDiscipline(e *Execution) (*LockDisciplineReport, error) {
	return lockset.Check(e)
}

// PhaseBarrier designates the barrier locations for CheckPhaseDiscipline.
type PhaseBarrier = doall.Barrier

// PhaseDisciplineReport is the verdict of the do-all phase checker.
type PhaseDisciplineReport = doall.Report

// CheckPhaseDiscipline verifies "parallelism only from do-all loops" — the
// other specialized synchronization model from the paper's conclusion — over
// a recorded execution: no two threads may conflict on a data location within
// one barrier-delimited phase.
func CheckPhaseDiscipline(e *Execution, b PhaseBarrier) (*PhaseDisciplineReport, error) {
	return doall.Check(e, b)
}
