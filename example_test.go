package weakorder_test

import (
	"fmt"

	"weakorder"
)

// ExampleCheckDRF0 decides Definition 3 for a message-passing program.
func ExampleCheckDRF0() {
	p := weakorder.MustParseProgram(`
name: mp
init: d=0 f=0
thread:
    st d, 1
    sync.st f, 1
thread:
wait:
    sync.ld r0, f
    beq r0, 0, wait
    ld r1, d
`).Program
	rep, err := weakorder.CheckDRF0(p)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.Obeys())
	// Output: true
}

// ExampleVerifyContract checks Definition 2 on the Section-5 machine: for a
// DRF0 program, every hardware outcome must be sequentially consistent.
func ExampleVerifyContract() {
	p := weakorder.MustParseProgram(`
name: handoff
init: x=0 s=1
thread:
    st x, 42
    sync.st s, 0
thread:
acq:
    tas r0, s, 1
    bne r0, 0, acq
    ld r1, x
`).Program
	rep, err := weakorder.VerifyContract(weakorder.ModelWODef2, p)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep.ObeysModel, rep.Honored())
	// Output: true true
}

// ExampleExecutionRaces checks a single recorded execution for data races
// under DRF0 and under the Section-6 refinement.
func ExampleExecutionRaces() {
	e := &weakorder.Execution{}
	e.Append(weakorder.Access{Proc: 0, Op: weakorder.OpWrite, Addr: 0, Value: 1})
	e.Append(weakorder.Access{Proc: 1, Op: weakorder.OpRead, Addr: 0, Value: 1})
	rep, err := weakorder.ExecutionRaces(e, weakorder.DRF0())
	if err != nil {
		panic(err)
	}
	fmt.Println(len(rep.Races))
	// Output: 1
}

// ExampleSimulate times a DRF0 program on the Section-5 machine and verifies
// its trace is sequentially consistent.
func ExampleSimulate() {
	p := weakorder.MustParseProgram(`
name: handoff
init: x=0 s=1
thread:
    st x, 7
    sync.st s, 0
thread:
acq:
    tas r0, s, 1
    bne r0, 0, acq
    ld r1, x
`).Program
	cfg := weakorder.NewSimConfig(weakorder.PolicyWODef2)
	cfg.RecordTrace = true
	res, err := weakorder.Simulate(p, cfg)
	if err != nil {
		panic(err)
	}
	w, err := weakorder.IsSequentiallyConsistent(res.Trace, p.Init)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.FinalRegs[1][1], w.SC)
	// Output: 7 true
}

// ExampleOutcomes enumerates the result set of the write-buffer machine on
// the store-buffering test: the racy program shows one more result than the
// idealized architecture (the famous both-reads-zero).
func ExampleOutcomes() {
	p := weakorder.MustParseProgram(`
name: sb
init: x=0 y=0
thread:
    st x, 1
    ld r0, y
thread:
    st y, 1
    ld r1, x
`).Program
	sc, _ := weakorder.SCOutcomes(p)
	wb, _ := weakorder.Outcomes(weakorder.ModelWriteBuffer, p)
	fmt.Println(len(sc), len(wb))
	// Output: 3 4
}
