// Package par provides the bounded worker pool behind the repository's
// parallel sweeps. Experiments fan independent (program, machine, config)
// cells through Map or ForEach; results are always delivered in input order
// and the reported error is always the one of the lowest-indexed failing
// item, so a sweep's output is byte-identical regardless of how goroutines
// were scheduled or how wide the pool is.
//
// The default width is GOMAXPROCS. It can be overridden for a whole process
// with the WEAKORDER_WORKERS environment variable, or programmatically (and
// with higher precedence, so tests can pin a width regardless of the
// environment) via SetWorkers.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// override holds the SetWorkers value; 0 means unset.
var override atomic.Int64

// active tracks worker slots currently claimed process-wide: ForEach pools
// claim their width while they run, and parallel explorations
// (explore.Explorer.Workers) claim their extra workers for the lifetime of a
// run. Auto-sized widths subtract it from Workers(), so nested parallelism —
// a parallel exploration inside a cell of a parallel sweep, or a sweep
// launched from inside another sweep — shares one process-wide budget
// instead of multiplying into oversubscription.
var active atomic.Int64

// Register unconditionally claims n worker slots and returns a function
// releasing them (idempotent). Explicit widths are pins — a caller that asked
// for exactly n workers gets them even when the budget is spoken for — but
// registering them lets auto-sized work elsewhere shrink while they run.
func Register(n int) (release func()) {
	if n <= 0 {
		return func() {}
	}
	active.Add(int64(n))
	var once sync.Once
	return func() { once.Do(func() { active.Add(-int64(n)) }) }
}

// Acquire claims up to n extra worker slots, granting only what the budget
// has free: Workers() minus one slot for the calling goroutine minus slots
// already claimed. It returns the granted count (possibly 0) and an
// idempotent release function. Callers that can scale down — a parallel
// exploration that degrades gracefully to fewer workers — use Acquire; the
// grant is best-effort advisory, so concurrent acquirers may transiently see
// a stale count, which costs only a little parallelism, never correctness.
func Acquire(n int) (granted int, release func()) {
	if n <= 0 {
		return 0, func() {}
	}
	budget := int64(Workers())
	for {
		cur := active.Load()
		free := budget - 1 - cur
		if free <= 0 {
			return 0, func() {}
		}
		g := int64(n)
		if g > free {
			g = free
		}
		if active.CompareAndSwap(cur, cur+g) {
			var once sync.Once
			return int(g), func() { once.Do(func() { active.Add(-g) }) }
		}
	}
}

// Workers returns the pool width used by Map and ForEach when the caller
// passes width <= 0: the SetWorkers override if set, else the
// WEAKORDER_WORKERS environment variable if it parses to a positive integer,
// else GOMAXPROCS.
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	if s := os.Getenv("WEAKORDER_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the default pool width (n <= 0 clears the override)
// and returns a function restoring the previous value. Intended for tests
// that must compare runs at fixed widths.
func SetWorkers(n int) (restore func()) {
	prev := override.Load()
	if n < 0 {
		n = 0
	}
	override.Store(int64(n))
	return func() { override.Store(prev) }
}

// ForEach runs fn(i) for every i in [0, n) on a pool of the given width
// (width <= 0 means Workers()). All items run even if some fail — a fixed
// work set is what makes the reported error deterministic — and the returned
// error is the lowest-index failure, or nil.
func ForEach(n, width int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if width <= 0 {
		// Auto-sized pools respect slots already claimed elsewhere in the
		// process (Register/Acquire), so a sweep started while a parallel
		// exploration holds workers does not oversubscribe the machine.
		width = Workers() - int(active.Load())
		if width < 1 {
			width = 1
		}
	}
	if width > n {
		width = n
	}
	if width > 1 {
		defer Register(width)()
	}
	if width == 1 {
		// Run inline: exploration workloads are allocation-heavy, and the
		// width-1 fast path keeps single-core runs free of goroutine and
		// channel overhead (it is also what the determinism tests pin).
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map applies fn to every item on a pool of the given width (width <= 0
// means Workers()), returning results in input order. On failure it returns
// the lowest-index error; the result slice is still returned with every
// successful item filled in.
func Map[T, R any](items []T, width int, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEach(len(items), width, func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	return out, err
}
