// Package par provides the bounded worker pool behind the repository's
// parallel sweeps. Experiments fan independent (program, machine, config)
// cells through Map or ForEach; results are always delivered in input order
// and the reported error is always the one of the lowest-indexed failing
// item, so a sweep's output is byte-identical regardless of how goroutines
// were scheduled or how wide the pool is.
//
// The default width is GOMAXPROCS. It can be overridden for a whole process
// with the WEAKORDER_WORKERS environment variable, or programmatically (and
// with higher precedence, so tests can pin a width regardless of the
// environment) via SetWorkers.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// override holds the SetWorkers value; 0 means unset.
var override atomic.Int64

// Workers returns the pool width used by Map and ForEach when the caller
// passes width <= 0: the SetWorkers override if set, else the
// WEAKORDER_WORKERS environment variable if it parses to a positive integer,
// else GOMAXPROCS.
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	if s := os.Getenv("WEAKORDER_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the default pool width (n <= 0 clears the override)
// and returns a function restoring the previous value. Intended for tests
// that must compare runs at fixed widths.
func SetWorkers(n int) (restore func()) {
	prev := override.Load()
	if n < 0 {
		n = 0
	}
	override.Store(int64(n))
	return func() { override.Store(prev) }
}

// ForEach runs fn(i) for every i in [0, n) on a pool of the given width
// (width <= 0 means Workers()). All items run even if some fail — a fixed
// work set is what makes the reported error deterministic — and the returned
// error is the lowest-index failure, or nil.
func ForEach(n, width int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if width <= 0 {
		width = Workers()
	}
	if width > n {
		width = n
	}
	if width == 1 {
		// Run inline: exploration workloads are allocation-heavy, and the
		// width-1 fast path keeps single-core runs free of goroutine and
		// channel overhead (it is also what the determinism tests pin).
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map applies fn to every item on a pool of the given width (width <= 0
// means Workers()), returning results in input order. On failure it returns
// the lowest-index error; the result slice is still returned with every
// successful item filled in.
func Map[T, R any](items []T, width int, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEach(len(items), width, func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	return out, err
}
