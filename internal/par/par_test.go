package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, width := range []int{1, 2, 7, 64} {
		got, err := Map(items, width, func(i, v int) (int, error) { return v * v, nil })
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("width %d: got[%d] = %d, want %d", width, i, v, i*i)
			}
		}
	}
}

func TestLowestIndexError(t *testing.T) {
	// Items 10, 30 and 70 fail; every width must report item 10's error.
	fail := map[int]bool{10: true, 30: true, 70: true}
	for _, width := range []int{1, 3, 16} {
		err := ForEach(100, width, func(i int) error {
			if fail[i] {
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 10" {
			t.Fatalf("width %d: err = %v, want item 10", width, err)
		}
	}
}

func TestAllItemsRunDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(50, 4, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d items, want 50", ran.Load())
	}
}

func TestConcurrency(t *testing.T) {
	// With width 4 and items that block until enough peers are in flight,
	// the pool must actually run items concurrently.
	if runtime.GOMAXPROCS(0) < 2 {
		// The pool still works on one core (goroutines interleave), but the
		// gate below needs true width-4 dispatch, which it has regardless.
	}
	gate := make(chan struct{})
	var inFlight atomic.Int64
	err := ForEach(4, 4, func(i int) error {
		if inFlight.Add(1) == 4 {
			close(gate)
		}
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetWorkers(t *testing.T) {
	restore := SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	inner := SetWorkers(1)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", Workers())
	}
	inner()
	if Workers() != 3 {
		t.Fatalf("after restore Workers() = %d, want 3", Workers())
	}
	restore()
	if Workers() != runtime.GOMAXPROCS(0) && Workers() <= 0 {
		t.Fatalf("after outer restore Workers() = %d", Workers())
	}
}

func TestEnvOverride(t *testing.T) {
	t.Setenv("WEAKORDER_WORKERS", "5")
	if Workers() != 5 {
		t.Fatalf("Workers() = %d, want 5 from env", Workers())
	}
	// SetWorkers takes precedence over the environment.
	restore := SetWorkers(2)
	defer restore()
	if Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2 (override beats env)", Workers())
	}
}

func TestRegisterAcquire(t *testing.T) {
	restore := SetWorkers(8)
	defer restore()

	// Register is unconditional and idempotent on release.
	rel := Register(3)
	if got := active.Load(); got != 3 {
		t.Fatalf("after Register(3): active = %d, want 3", got)
	}
	// Acquire grants only what is free: 8 workers - 1 caller - 3 active = 4.
	got, rel2 := Acquire(10)
	if got != 4 {
		t.Fatalf("Acquire(10) granted %d, want 4", got)
	}
	if active.Load() != 7 {
		t.Fatalf("after Acquire: active = %d, want 7", active.Load())
	}
	// Budget exhausted: nothing left to grant.
	if n, rel3 := Acquire(1); n != 0 {
		t.Fatalf("Acquire(1) on a full budget granted %d", n)
	} else {
		rel3()
	}
	rel2()
	rel2() // idempotent
	rel()
	rel()
	if active.Load() != 0 {
		t.Fatalf("after releases: active = %d, want 0", active.Load())
	}
	if n, rel4 := Acquire(0); n != 0 {
		t.Fatalf("Acquire(0) granted %d", n)
	} else {
		rel4()
	}
}

func TestForEachAutoWidthRespectsActive(t *testing.T) {
	restore := SetWorkers(4)
	defer restore()
	// With 3 of 4 slots claimed, an auto-sized pool shrinks to width 1 —
	// observable through the inline fast path running items sequentially.
	rel := Register(3)
	defer rel()
	var inFlight, maxInFlight atomic.Int64
	err := ForEach(8, 0, func(i int) error {
		n := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if n <= m || maxInFlight.CompareAndSwap(m, n) {
				break
			}
		}
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInFlight.Load() != 1 {
		t.Fatalf("max in-flight = %d, want 1 (auto width shrunk by active claims)", maxInFlight.Load())
	}
}

func TestForEachRegistersItsWidth(t *testing.T) {
	restore := SetWorkers(4)
	defer restore()
	// An auto-sized pool claims its width while running, so a nested
	// auto-sized pool shrinks instead of oversubscribing.
	var sawActive int64
	err := ForEach(2, 0, func(i int) error {
		if i == 0 {
			sawActive = active.Load()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawActive != 2 {
		t.Fatalf("active during width-2 ForEach = %d, want 2", sawActive)
	}
	if active.Load() != 0 {
		t.Fatalf("active after ForEach = %d, want 0", active.Load())
	}
}

func TestEmpty(t *testing.T) {
	if err := ForEach(0, 8, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	out, err := Map([]string(nil), 0, func(int, string) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(nil) = %v, %v", out, err)
	}
}
