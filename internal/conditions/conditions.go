// Package conditions checks a timed run against the sufficient conditions of
// Section 5.1 — the paper's own specification of when hardware is weakly
// ordered with respect to DRF0. The timed machine logs, for every access, the
// cycle at which it issued, committed, and was globally performed; Check
// validates:
//
//	C2: writes to the same location are totally ordered by commit time.
//	C3: synchronization operations on the same location commit in the same
//	    order they are globally performed, and a later one does not commit
//	    before an earlier one is globally performed.
//	C4: a processor generates no new access until all its previous
//	    synchronization operations have committed.
//	C5: once a synchronization operation S by Pi has committed, no other
//	    processor's synchronization operation on the same location commits
//	    until all of Pi's reads before S have committed and all of Pi's
//	    writes before S are globally performed.
//
// Condition 1 (intra-processor dependencies) is structural: the interpreter
// resolves operations one at a time, so it cannot be violated and is not
// logged. The "observed by all processors in commit order" half of C2 is a
// statement about per-processor observation that the log does not carry; the
// recorded traces are separately checked for sequential consistency, which
// subsumes it for DRF0 programs.
//
// The checker is how the repository demonstrates the reserve-bit ablation is
// broken: PolicyWODef2NoReserve produces C3/C5 violations on exactly the runs
// whose results stop being sequentially consistent.
package conditions

import (
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/mem"
	"weakorder/internal/sim"
)

// AccessTiming is one access's lifecycle in a timed run. For reads, Commit
// and Perform are both the cycle the value was bound; for writes, Commit is
// the local cache update and Perform the arrival of the last invalidation
// acknowledgement.
type AccessTiming struct {
	Proc    int
	OpIndex int
	Op      mem.Op
	Addr    mem.Addr
	Issue   sim.Time
	Commit  sim.Time
	Perform sim.Time
}

// String implements fmt.Stringer.
func (a AccessTiming) String() string {
	return fmt.Sprintf("P%d#%d %s(x%d) issue=%d commit=%d perform=%d",
		a.Proc, a.OpIndex, a.Op, a.Addr, a.Issue, a.Commit, a.Perform)
}

// Violation is one failed condition instance.
type Violation struct {
	Condition string // "C2".."C5"
	Detail    string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Condition + ": " + v.Detail }

// Report is the verdict for one run.
type Report struct {
	Accesses   int
	Violations []Violation
}

// OK reports whether all checked conditions held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// String implements fmt.Stringer.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("Section 5.1 conditions hold over %d accesses", r.Accesses)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5.1 conditions violated (%d accesses):\n", r.Accesses)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Check validates the log against the DRF0 conditions. Entries may be in any
// order; they are grouped and sorted internally.
func Check(log []AccessTiming) *Report { return check(log, false) }

// CheckRefined validates the log against the Section-6 refined conditions,
// under which read-only synchronization operations are not serialized and do
// not release: C3's pairwise ordering and C5's hand-off guarantee are only
// required when the earlier synchronization operation has a write component
// (and, for C3's cross-processor commit gate, the later one reads). This is
// the discipline PolicyWODef2DRF1 implements.
func CheckRefined(log []AccessTiming) *Report { return check(log, true) }

func check(log []AccessTiming, refined bool) *Report {
	rep := &Report{Accesses: len(log)}
	add := func(cond, format string, args ...any) {
		rep.Violations = append(rep.Violations, Violation{Condition: cond, Detail: fmt.Sprintf(format, args...)})
	}

	// Structural sanity.
	for _, a := range log {
		if a.Commit < a.Issue || a.Perform < a.Commit {
			add("log", "non-monotonic lifecycle: %s", a)
		}
	}

	// C2: same-location writes totally ordered by commit.
	byAddrWrites := map[mem.Addr][]AccessTiming{}
	for _, a := range log {
		if a.Op.Writes() {
			byAddrWrites[a.Addr] = append(byAddrWrites[a.Addr], a)
		}
	}
	for addr, ws := range byAddrWrites {
		sort.Slice(ws, func(i, j int) bool { return ws[i].Commit < ws[j].Commit })
		for i := 1; i < len(ws); i++ {
			if ws[i].Commit == ws[i-1].Commit && ws[i].Proc != ws[i-1].Proc {
				add("C2", "writes to x%d by P%d and P%d commit at the same cycle %d",
					addr, ws[i-1].Proc, ws[i].Proc, ws[i].Commit)
			}
		}
	}

	// C3: same-location syncs commit in perform order; later commit waits
	// for earlier perform.
	byAddrSyncs := map[mem.Addr][]AccessTiming{}
	for _, a := range log {
		if a.Op.IsSync() {
			byAddrSyncs[a.Addr] = append(byAddrSyncs[a.Addr], a)
		}
	}
	for addr, ss := range byAddrSyncs {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Commit < ss[j].Commit })
		for i := 1; i < len(ss); i++ {
			prev, cur := ss[i-1], ss[i]
			if refined && (!prev.Op.Writes() || !cur.Op.Writes()) {
				// Read-only synchronization is unserialized under the
				// refinement; only write-bearing sync pairs stay ordered.
				continue
			}
			if cur.Perform < prev.Perform {
				add("C3", "syncs on x%d perform out of commit order: %s then %s", addr, prev, cur)
			}
			if cur.Proc != prev.Proc && cur.Commit < prev.Perform {
				add("C3", "sync on x%d by P%d commits at %d before P%d's sync performs at %d",
					addr, cur.Proc, cur.Commit, prev.Proc, prev.Perform)
			}
		}
	}

	// Per-processor program-order views for C4/C5.
	byProc := map[int][]AccessTiming{}
	for _, a := range log {
		byProc[a.Proc] = append(byProc[a.Proc], a)
	}
	for p, as := range byProc {
		sort.Slice(as, func(i, j int) bool { return as[i].OpIndex < as[j].OpIndex })
		byProc[p] = as
	}

	// C4: issue waits for previous syncs' commits.
	for p, as := range byProc {
		var lastSyncCommit sim.Time
		for _, a := range as {
			if a.Issue < lastSyncCommit {
				add("C4", "P%d issued %s at %d before its previous sync committed at %d",
					p, a, a.Issue, lastSyncCommit)
			}
			if a.Op.IsSync() && a.Commit > lastSyncCommit {
				lastSyncCommit = a.Commit
			}
		}
	}

	// C5: for same-location syncs S1 (Pi) then S2 (Pj != Pi) in commit
	// order, S2's commit waits for Pi's pre-S1 reads to commit and writes
	// to perform.
	for addr, ss := range byAddrSyncs {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Commit < ss[j].Commit })
		for i := 0; i < len(ss); i++ {
			s1 := ss[i]
			if refined && !s1.Op.Writes() {
				continue // a read-only sync does not release under the refinement
			}
			// Find the next sync on this location by a different processor.
			for j := i + 1; j < len(ss); j++ {
				s2 := ss[j]
				if s2.Proc == s1.Proc {
					continue
				}
				if refined && !s2.Op.Reads() {
					continue // a write-only sync does not acquire under the refinement
				}
				for _, a := range byProc[s1.Proc] {
					if a.OpIndex >= s1.OpIndex {
						break
					}
					if a.Op.Writes() && s2.Commit < a.Perform {
						add("C5", "sync on x%d by P%d commits at %d before P%d's earlier write performs (%s)",
							addr, s2.Proc, s2.Commit, s1.Proc, a)
					}
					if !a.Op.Writes() && a.Op.Reads() && s2.Commit < a.Commit {
						add("C5", "sync on x%d by P%d commits at %d before P%d's earlier read commits (%s)",
							addr, s2.Proc, s2.Commit, s1.Proc, a)
					}
				}
				break // only the immediately following foreign sync needs S1's guarantees directly; later ones inherit transitively via C3
			}
		}
	}
	return rep
}
