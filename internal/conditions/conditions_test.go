package conditions_test

import (
	"strings"
	"testing"

	"weakorder/internal/conditions"

	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/proc"
	"weakorder/internal/sim"
	"weakorder/internal/workload"
)

// at builds an conditions.AccessTiming tersely.
func at(p, idx int, op mem.Op, a mem.Addr, issue, commit, perform int64) conditions.AccessTiming {
	return conditions.AccessTiming{Proc: p, OpIndex: idx, Op: op, Addr: a,
		Issue: sim.Time(issue), Commit: sim.Time(commit), Perform: sim.Time(perform)}
}

func TestCheckCleanLog(t *testing.T) {
	log := []conditions.AccessTiming{
		at(0, 0, mem.OpWrite, 0, 1, 2, 10),
		at(0, 1, mem.OpSyncWrite, 1, 3, 12, 12),
		at(1, 0, mem.OpSyncRMW, 1, 5, 15, 15),
		at(1, 1, mem.OpRead, 0, 16, 17, 17),
	}
	rep := conditions.Check(log)
	if !rep.OK() {
		t.Fatalf("clean log flagged: %s", rep)
	}
}

func TestCheckC3Violation(t *testing.T) {
	log := []conditions.AccessTiming{
		at(0, 0, mem.OpSyncWrite, 1, 1, 2, 20), // performs late
		at(1, 0, mem.OpSyncRMW, 1, 3, 5, 6),    // commits before predecessor performs
	}
	rep := conditions.Check(log)
	if rep.OK() || !strings.Contains(rep.String(), "C3") {
		t.Fatalf("C3 not caught: %s", rep)
	}
}

func TestCheckC4Violation(t *testing.T) {
	log := []conditions.AccessTiming{
		at(0, 0, mem.OpSyncWrite, 1, 1, 10, 10),
		at(0, 1, mem.OpRead, 0, 5, 6, 6), // issued before the sync committed
	}
	rep := conditions.Check(log)
	if rep.OK() || !strings.Contains(rep.String(), "C4") {
		t.Fatalf("C4 not caught: %s", rep)
	}
}

func TestCheckC5Violation(t *testing.T) {
	log := []conditions.AccessTiming{
		at(0, 0, mem.OpWrite, 0, 1, 2, 50),    // payload write performs very late
		at(0, 1, mem.OpSyncWrite, 1, 3, 4, 4), // release commits early
		at(1, 0, mem.OpSyncRMW, 1, 5, 6, 6),   // acquire commits before payload performs
		at(1, 1, mem.OpRead, 0, 7, 8, 8),
	}
	rep := conditions.Check(log)
	if rep.OK() || !strings.Contains(rep.String(), "C5") {
		t.Fatalf("C5 not caught: %s", rep)
	}
	// Under the refinement nothing changes here (the release writes and the
	// acquire reads), so it is still a violation.
	if conditions.CheckRefined(log).OK() {
		t.Fatal("refined check should also flag a write-bearing release")
	}
}

func TestRefinedExemptsReadOnlyRelease(t *testing.T) {
	log := []conditions.AccessTiming{
		at(0, 0, mem.OpWrite, 0, 1, 2, 50),
		at(0, 1, mem.OpSyncRead, 1, 3, 4, 4), // Test: no release under DRF1
		at(1, 0, mem.OpSyncRMW, 1, 5, 6, 6),
	}
	if conditions.Check(log).OK() {
		t.Fatal("DRF0 conditions should flag the unprotected hand-off")
	}
	if rep := conditions.CheckRefined(log); !rep.OK() {
		t.Fatalf("refined conditions should exempt a read-only release: %s", rep)
	}
}

func TestCheckNonMonotonicLog(t *testing.T) {
	rep := conditions.Check([]conditions.AccessTiming{at(0, 0, mem.OpRead, 0, 5, 3, 3)})
	if rep.OK() {
		t.Fatal("commit before issue accepted")
	}
}

// --- End-to-end: the timed machine's logs against the paper's conditions ---

func runWithTimings(t *testing.T, pol proc.Policy) *machine.Result {
	t.Helper()
	p := workload.ProducerConsumer(6, 5)
	cfg := machine.NewConfig(pol)
	cfg.RecordTimings = true
	res, err := machine.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timings) == 0 {
		t.Fatal("no timings recorded")
	}
	return res
}

func TestTimedMachinesSatisfyConditions(t *testing.T) {
	for _, pol := range []proc.Policy{proc.PolicySC, proc.PolicyWODef1, proc.PolicyWODef2} {
		res := runWithTimings(t, pol)
		if rep := conditions.Check(res.Timings); !rep.OK() {
			t.Errorf("%s violates Section 5.1: %s", pol, rep)
		}
	}
}

// TestConditionsHoldUnderJitter stresses the same guarantee across jittered
// non-FIFO schedules, where message races are most likely to expose protocol
// bugs.
func TestConditionsHoldUnderJitter(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := workload.Fig3N(3, 4, 0)
		cfg := machine.NewConfig(proc.PolicyWODef2)
		cfg.NetJitter = 80
		cfg.FIFO = false
		cfg.Seed = seed
		cfg.RecordTimings = true
		res, err := machine.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep := conditions.Check(res.Timings); !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep)
		}
	}
}

func TestDRF1MachineSatisfiesRefinedConditions(t *testing.T) {
	res := runWithTimings(t, proc.PolicyWODef2DRF1)
	if rep := conditions.CheckRefined(res.Timings); !rep.OK() {
		t.Errorf("WO-def2-drf1 violates the refined conditions: %s", rep)
	}
}

func TestNoReserveAblationViolatesConditions(t *testing.T) {
	// The violation needs the payload write's invalidations to still be in
	// flight when the remote sync commits. On the serialized bus with many
	// sharers the invalidation round is long (one bus slot per message)
	// while the lock hand-off is a few messages, so the window is wide and
	// deterministic. The same configurations must stay clean under the real
	// Definition-2 policy.
	// Without reserve bits the violating schedule needs the release's
	// hand-off to outrun some invalidation acknowledgement; on symmetric
	// fabrics the two paths have similar length, so the test searches
	// jittered-network schedules by seed. Whatever seed exposes the
	// ablation must leave the real Definition-2 policy clean.
	run := func(pol proc.Policy, seed int64) *conditions.Report {
		p := workload.Fig3N(3, 4, 0)
		cfg := machine.NewConfig(pol)
		cfg.NetJitter = 80
		cfg.Seed = seed
		cfg.RecordTimings = true
		res, err := machine.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return conditions.Check(res.Timings)
	}
	caught := false
	for seed := int64(0); seed < 40; seed++ {
		if rep := run(proc.PolicyWODef2NoReserve, seed); !rep.OK() {
			caught = true
			if clean := run(proc.PolicyWODef2, seed); !clean.OK() {
				t.Errorf("real def2 violated conditions at seed %d: %s", seed, clean)
			}
			break
		}
	}
	if !caught {
		t.Error("the reserve-bit ablation never violated the Section-5.1 conditions")
	}
}
