package proc

import (
	"testing"

	"weakorder/internal/cache"
	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
	"weakorder/internal/program"
	"weakorder/internal/sim"
)

// rig assembles n processors with caches and a directory on one network.
type rig struct {
	engine *sim.Engine
	procs  []*Processor
	caches []*cache.Cache
}

type traceRec struct {
	a   mem.Access
	idx int
}

type recorder struct{ recs []traceRec }

func (r *recorder) Record(a mem.Access, opIndex int) {
	r.recs = append(r.recs, traceRec{a, opIndex})
}

func newRig(t *testing.T, codes []program.Code, pol Policy, init map[mem.Addr]mem.Value, tr Tracer) *rig {
	t.Helper()
	e := sim.NewEngine(10_000_000, 10_000_000)
	net := interconnect.NewNetwork(e, 5, 0, nil, true)
	dirID := interconnect.NodeID(len(codes))
	cache.NewDirectory(dirID, e, net, 1, init)
	r := &rig{engine: e}
	for i, code := range codes {
		c := cache.New(interconnect.NodeID(i), e, net, dirID, 1)
		r.caches = append(r.caches, c)
		r.procs = append(r.procs, New(i, e, c, code, pol, tr))
	}
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	for _, p := range r.procs {
		p.Start(nil)
	}
	if err := r.engine.Run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, p := range r.procs {
		if !p.Done() {
			t.Fatalf("P%d never finished", i)
		}
	}
}

// producerRelease is W(x)=1 then Unset(s)=1 — the Figure-3 producer with a
// payload write whose performance is slowed by a sharer. The leading nop lets
// the warm reader's GetS reach the directory first, so the payload write
// really does have an invalidation outstanding when the release commits.
func producerRelease() program.Code {
	return program.Code{
		{Op: program.INop, Delay: 20},
		{Op: program.IStore, Addr: 0, Src: program.Imm(1)},
		{Op: program.ISyncStore, Addr: 1, Src: program.Imm(1)},
		{Op: program.IHalt},
	}
}

// warmReader shares line 0 so the producer's write needs an invalidation.
func warmReader() program.Code {
	return program.Code{
		{Op: program.ILoad, Rd: 0, Addr: 0},
		{Op: program.IHalt},
	}
}

func TestDef1StallsAtSync(t *testing.T) {
	r := newRig(t, []program.Code{producerRelease(), warmReader()}, PolicyWODef1, nil, nil)
	r.run(t)
	st := r.procs[0].Stats
	if st.Get("sync_counter_stall_cycles") == 0 {
		t.Error("Definition-1 producer should stall at the sync waiting for its counter")
	}
}

func TestDef2DoesNotStallAtSync(t *testing.T) {
	r := newRig(t, []program.Code{producerRelease(), warmReader()}, PolicyWODef2, nil, nil)
	r.run(t)
	st := r.procs[0].Stats
	if st.Get("sync_counter_stall_cycles") != 0 {
		t.Error("Definition-2 producer must never wait on its own counter")
	}
	// The sync commit should have reserved the line (counter positive while
	// the payload write's invalidation is outstanding).
	found := false
	for _, c := range r.caches {
		if c.Stats.Get("reserves_set") > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no reserve bit was set")
	}
}

func TestSCWritesStallUntilPerformed(t *testing.T) {
	// Under SC the producer's write stall includes the invalidation round
	// trip; under Def2 the write is fire-and-forget.
	sc := newRig(t, []program.Code{producerRelease(), warmReader()}, PolicySC, nil, nil)
	sc.run(t)
	d2 := newRig(t, []program.Code{producerRelease(), warmReader()}, PolicyWODef2, nil, nil)
	d2.run(t)
	if sc.procs[0].Stats.Get("write_stall_cycles") == 0 {
		t.Error("SC write should stall")
	}
	if d2.procs[0].Stats.Get("write_stall_cycles") != 0 {
		t.Error("Def2 write should not stall")
	}
	if d2.procs[0].FinishTime() >= sc.procs[0].FinishTime() {
		t.Errorf("def2 producer (%d) should finish before SC producer (%d)",
			d2.procs[0].FinishTime(), sc.procs[0].FinishTime())
	}
}

func TestDRF1SyncReadHitsShared(t *testing.T) {
	// A Test loop on a flag another processor eventually sets: under DRF1
	// the spinning reads hit a shared copy; under plain Def2 every Test is
	// an exclusive acquisition (write misses).
	spinner := program.Code{
		{Op: program.ISyncLoad, Rd: 0, Addr: 0},                   // Test
		{Op: program.IBeq, Ra: 0, Src: program.Imm(0), Target: 0}, // retry
		{Op: program.IHalt},
	}
	setter := program.Code{
		{Op: program.INop, Delay: 200},
		{Op: program.ISyncStore, Addr: 0, Src: program.Imm(1)},
		{Op: program.IHalt},
	}
	drf1 := newRig(t, []program.Code{spinner, setter}, PolicyWODef2DRF1, nil, nil)
	drf1.run(t)
	plain := newRig(t, []program.Code{spinner, setter}, PolicyWODef2, nil, nil)
	plain.run(t)
	if h := drf1.caches[0].Stats.Get("hits"); h == 0 {
		t.Error("DRF1 spinner should hit its shared copy")
	}
	if wm := drf1.caches[0].Stats.Get("write_misses"); wm != 0 {
		t.Errorf("DRF1 spinner issued %d exclusive acquisitions for Tests", wm)
	}
	if wm := plain.caches[0].Stats.Get("write_misses"); wm == 0 {
		t.Error("plain Def2 spinner should acquire exclusively")
	}
}

func TestTraceRecordsProgramOrderIndices(t *testing.T) {
	rec := &recorder{}
	code := program.Code{
		{Op: program.IStore, Addr: 0, Src: program.Imm(1)},
		{Op: program.ILoad, Rd: 0, Addr: 2},
		{Op: program.ISyncRMW, Rd: 1, Addr: 3, Src: program.Imm(1), RMW: program.RMWSet},
		{Op: program.IHalt},
	}
	r := newRig(t, []program.Code{code}, PolicyWODef2, nil, rec)
	r.run(t)
	if len(rec.recs) != 3 {
		t.Fatalf("recorded %d accesses, want 3", len(rec.recs))
	}
	for i, tr := range rec.recs {
		if tr.idx != i {
			t.Errorf("access %d recorded with op index %d", i, tr.idx)
		}
	}
	if rec.recs[2].a.Op != mem.OpSyncRMW || rec.recs[2].a.WValue != 1 {
		t.Errorf("RMW recorded wrong: %+v", rec.recs[2].a)
	}
}

func TestRMWReturnsOldValue(t *testing.T) {
	code := program.Code{
		{Op: program.ISyncRMW, Rd: 0, Addr: 0, Src: program.Imm(9), RMW: program.RMWSet},
		{Op: program.ISyncRMW, Rd: 1, Addr: 0, Src: program.Imm(5), RMW: program.RMWAdd},
		{Op: program.IHalt},
	}
	r := newRig(t, []program.Code{code}, PolicySC, map[mem.Addr]mem.Value{0: 3}, nil)
	r.run(t)
	regs := r.procs[0].Registers()
	if regs[0] != 3 || regs[1] != 9 {
		t.Errorf("regs = %v, want old values 3 and 9", regs[:2])
	}
}

func TestNoReservePolicySkipsReservation(t *testing.T) {
	r := newRig(t, []program.Code{producerRelease(), warmReader()}, PolicyWODef2NoReserve, nil, nil)
	r.run(t)
	for _, c := range r.caches {
		if c.Stats.Get("reserves_set") != 0 {
			t.Error("the no-reserve ablation must never set reserve bits")
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	want := map[Policy]string{
		PolicySC:              "SC",
		PolicyWODef1:          "WO-def1",
		PolicyWODef2:          "WO-def2",
		PolicyWODef2DRF1:      "WO-def2-drf1",
		PolicyWODef2NoReserve: "WO-def2-noreserve",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}
