package proc

import (
	"fmt"

	"weakorder/internal/program"
	"weakorder/internal/sim"
)

// Job is one code fragment an open-loop workload hands a processor: run Code
// starting no earlier than simulated time At. Fragments of one processor are
// one logical thread — the register file carries across fragments and the
// per-processor operation index keeps counting, so tracing, race detection,
// and timing attribution see a single continuous instruction stream.
type Job struct {
	// At is the arrival time. A processor that reaches the fragment later
	// than At (open-loop backlog: the previous fragment overran) starts it
	// immediately; the queueing delay is visible as the difference between
	// At and the operations' issue times.
	At sim.Time
	// Code is the fragment body. It ends by halting (or running off the
	// end), which triggers the next pull — not the processor's finish.
	Code program.Code
}

// Workload feeds processors an open-loop stream of code fragments. The
// processor pulls the next job each time its current fragment halts; ok=false
// ends that processor's stream, and an error aborts the whole run through
// engine.Fail with the processor identified.
//
// Implementations must be deterministic per (spec, seed) regardless of pull
// interleaving across processors: the timed engine dispatches same-cycle
// events in a fixed order, and replay byte-identity depends on each
// processor's stream being a pure function of its own pull count.
type Workload interface {
	Next(proc int) (Job, bool, error)
}

// SetWorkload attaches an open-loop workload source. Must be called before
// Start. With a source attached, the processor's initial thread acts as a
// skeleton: when it halts, the processor starts pulling fragments, and only
// an exhausted source finishes the processor.
func (p *Processor) SetWorkload(w Workload) { p.src = w }

// pullResult says how step should proceed after a fragment halt.
type pullResult uint8

const (
	// pullNow: a fragment whose arrival time is already due was installed —
	// keep stepping in the current event.
	pullNow pullResult = iota
	// pullLater: a future step was scheduled (or the run failed) — stop
	// stepping now.
	pullLater
	// pullDone: the stream is exhausted — the processor finishes.
	pullDone
)

// pull installs the next workload fragment, preserving the register file and
// rolling the finished fragment's operations into the op-index base.
func (p *Processor) pull() pullResult {
	if p.src == nil {
		return pullDone
	}
	job, ok, err := p.src.Next(p.ID)
	if err != nil {
		p.engine.Fail(fmt.Errorf("proc: P%d workload source: %w", p.ID, err))
		return pullLater
	}
	if !ok {
		return pullDone
	}
	p.opBase += p.thread.OpIndex
	regs := p.thread.Regs
	p.thread = program.NewThread(job.Code)
	p.thread.Regs = regs
	if job.At > p.engine.Now() {
		p.engine.At(job.At, p.stepFn)
		return pullLater
	}
	return pullNow
}
