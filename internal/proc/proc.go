// Package proc implements the timed processor front-ends that sit on top of
// the coherence protocol in internal/cache. One Processor interprets one
// thread; the Policy decides where the processor stalls, which is exactly
// where the paper's definitions differ:
//
//   - PolicySC: an access issues only after the previous access is globally
//     performed (the Scheurich-Dubois sufficient condition for sequential
//     consistency).
//   - PolicyWODef1: data accesses overlap freely, but a synchronization
//     operation is not issued until all previous accesses are globally
//     performed, and nothing issues past it until it is globally performed
//     (Definition 1, conditions 2 and 3).
//   - PolicyWODef2: the Section-5.3 implementation — a synchronization
//     operation stalls its issuer only until it *commits* (the line is held
//     exclusively and modified); if the outstanding-access counter is
//     positive, the line is reserved, shifting the stall to the *next*
//     processor that synchronizes on the same location.
//   - PolicyWODef2DRF1: Definition 2 with the Section-6 refinement —
//     read-only synchronization operations issue as ordinary shared-copy
//     reads (not serialized, no reservation), still honoring existing
//     reservations at a remote owner.
package proc

import (
	"fmt"

	"weakorder/internal/cache"
	"weakorder/internal/conditions"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/program"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
)

// Policy selects the ordering discipline of a processor.
type Policy uint8

const (
	// PolicySC is sequentially consistent hardware.
	PolicySC Policy = iota
	// PolicyWODef1 is weak ordering per Dubois/Scheurich/Briggs.
	PolicyWODef1
	// PolicyWODef2 is the paper's reserve-bit implementation.
	PolicyWODef2
	// PolicyWODef2DRF1 adds the Section-6 read-only-sync refinement.
	PolicyWODef2DRF1
	// PolicyWODef2NoReserve is the ablation of PolicyWODef2 with the
	// reserve-bit mechanism disabled: synchronization releases without
	// transferring the stall. The resulting hardware is NOT weakly ordered
	// w.r.t. DRF0; it exists so experiments can show the reserve bits are
	// what keep DRF0 programs sequentially consistent.
	PolicyWODef2NoReserve
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicySC:
		return "SC"
	case PolicyWODef1:
		return "WO-def1"
	case PolicyWODef2:
		return "WO-def2"
	case PolicyWODef2DRF1:
		return "WO-def2-drf1"
	case PolicyWODef2NoReserve:
		return "WO-def2-noreserve"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Tracer receives every architecturally completed access, in resolve order,
// for post-run consistency checking. The machine provides one shared tracer.
type Tracer interface {
	Record(a mem.Access, opIndex int)
}

// TimingSink receives each access's (issue, commit, perform) lifecycle for
// checking the Section-5.1 conditions (internal/conditions). Entries arrive
// at global-performance time, which may be after the issuing thread halted.
type TimingSink interface {
	RecordTiming(t conditions.AccessTiming)
}

// Processor drives one thread against a cache under a policy.
type Processor struct {
	ID     int
	Policy Policy

	engine *sim.Engine
	cache  *cache.Cache
	thread program.Thread
	tracer Tracer
	timing TimingSink
	// updateProto routes data writes through the write-update protocol
	// (cache.WriteUpdate) instead of invalidation-based exclusive
	// acquisition. Synchronization operations always use the exclusive
	// path — the Section-5.3 reserve machinery depends on ownership.
	updateProto bool

	// Stats: per-class stall cycles and op counts.
	Stats *stats.Counters

	// rec, when non-nil, receives cycle-attribution spans (compute, counter
	// and fence stalls, raw memory waits). Nil-safe hooks keep the metrics-off
	// path free.
	rec *metrics.Recorder

	done     bool
	finish   sim.Time
	onFinish func()
}

// New builds a processor for one thread. tracer may be nil.
func New(id int, engine *sim.Engine, c *cache.Cache, code program.Code, policy Policy, tracer Tracer) *Processor {
	return &Processor{
		ID:     id,
		Policy: policy,
		engine: engine,
		cache:  c,
		thread: program.NewThread(code),
		tracer: tracer,
		Stats:  stats.NewCounters(),
	}
}

// SetTimingSink enables Section-5.1 lifecycle logging. Must be called before
// Start.
func (p *Processor) SetTimingSink(s TimingSink) { p.timing = s }

// SetUpdateProtocol switches data writes to the write-update protocol. Must
// be called before Start.
func (p *Processor) SetUpdateProtocol(on bool) { p.updateProto = on }

// SetMetrics attaches a cycle-observability recorder (nil to detach). Must be
// called before Start.
func (p *Processor) SetMetrics(rec *metrics.Recorder) { p.rec = rec }

// emitTiming reports one completed access lifecycle.
func (p *Processor) emitTiming(op mem.Op, addr mem.Addr, opIndex int, issue, commit, perform sim.Time) {
	if p.timing == nil {
		return
	}
	p.timing.RecordTiming(conditions.AccessTiming{
		Proc: p.ID, OpIndex: opIndex, Op: op, Addr: addr,
		Issue: issue, Commit: commit, Perform: perform,
	})
}

// Start schedules the processor's first step at the current time. onFinish
// runs once when the thread halts.
func (p *Processor) Start(onFinish func()) {
	p.onFinish = onFinish
	p.engine.After(0, p.step)
}

// Done reports whether the thread has halted.
func (p *Processor) Done() bool { return p.done }

// Registers returns the thread's current register file (its final values once
// Done).
func (p *Processor) Registers() [program.NumRegs]mem.Value { return p.thread.Regs }

// FinishTime returns the cycle at which the thread halted.
func (p *Processor) FinishTime() sim.Time { return p.finish }

// record traces a completed access.
func (p *Processor) record(op mem.Op, addr mem.Addr, readV, writeV mem.Value) {
	if p.tracer == nil {
		return
	}
	a := mem.Access{Proc: mem.ProcID(p.ID), Op: op, Addr: addr}
	switch {
	case op == mem.OpSyncRMW:
		a.Value, a.WValue = readV, writeV
	case op.Writes():
		a.Value = writeV
	default:
		a.Value = readV
	}
	p.tracer.Record(a, p.thread.OpIndex)
}

// step advances the thread to its next stall point.
func (p *Processor) step() {
	if p.done {
		return
	}
	req, ok, err := p.thread.Pending()
	if err != nil {
		panic(fmt.Sprintf("P%d: %v", p.ID, err))
	}
	// Charge explicit local work (nop delays) accumulated on the way to
	// this stall point before issuing the operation or halting.
	if d := p.thread.TakeLocalWork(); d > 0 {
		p.Stats.Add("local_cycles", int64(d))
		p.rec.Compute(p.ID, p.engine.Now(), p.engine.Now()+sim.Time(d))
		p.engine.After(sim.Time(d), p.step)
		return
	}
	if !ok {
		p.done = true
		p.finish = p.engine.Now()
		if p.onFinish != nil {
			p.onFinish()
		}
		return
	}
	// Same-address transaction in flight: preserve intra-processor
	// dependences (condition 1) by waiting for the MSHR.
	if p.cache.Busy(req.Addr) {
		t0 := p.engine.Now()
		p.cache.OnFree(req.Addr, func() {
			p.Stats.Add("mshr_stall_cycles", int64(p.engine.Now()-t0))
			p.rec.MemWait(p.ID, req.Addr, false, t0, p.engine.Now())
			p.step()
		})
		return
	}
	if req.Op.IsSync() {
		p.syncOp(req)
		return
	}
	if req.Op == mem.OpRead {
		p.dataRead(req)
		return
	}
	p.dataWrite(req)
}

// resume charges one hit latency (the pipeline cost of completing an access)
// and continues the thread. Cache callbacks are synchronous, so scheduling
// here is also what advances simulated time on cache-hit spin loops.
func (p *Processor) resume() {
	p.rec.Compute(p.ID, p.engine.Now(), p.engine.Now()+1)
	p.engine.After(1, p.step)
}

func (p *Processor) dataRead(req program.Request) {
	t0 := p.engine.Now()
	opIdx := p.thread.OpIndex
	p.Stats.Add("reads", 1)
	p.cache.AcquireShared(req.Addr, false, func(v mem.Value) {
		now := p.engine.Now()
		p.Stats.Add("read_stall_cycles", int64(now-t0))
		p.rec.MemWait(p.ID, req.Addr, false, t0, now)
		p.emitTiming(mem.OpRead, req.Addr, opIdx, t0, now, now)
		p.record(mem.OpRead, req.Addr, v, 0)
		p.thread.Resolve(v)
		p.resume()
	})
}

func (p *Processor) dataWrite(req program.Request) {
	t0 := p.engine.Now()
	opIdx := p.thread.OpIndex
	p.Stats.Add("writes", 1)
	var commitT sim.Time
	if p.updateProto {
		p.updateWrite(req, t0, opIdx)
		return
	}
	if p.Policy == PolicySC {
		// Stall until globally performed: the sequentially consistent
		// processor never has more than one access outstanding.
		p.cache.AcquireExclusive(req.Addr, false,
			func(old mem.Value) {
				commitT = p.engine.Now()
				p.cache.WriteLocal(req.Addr, req.Data)
			},
			func() {
				now := p.engine.Now()
				p.Stats.Add("write_stall_cycles", int64(now-t0))
				p.rec.MemWait(p.ID, req.Addr, false, t0, commitT)
				p.rec.FenceStall(p.ID, commitT, now)
				p.emitTiming(mem.OpWrite, req.Addr, opIdx, t0, commitT, now)
				p.record(mem.OpWrite, req.Addr, 0, req.Data)
				p.thread.Resolve(0)
				p.resume()
			})
		return
	}
	// Weakly ordered processors fire and forget: the thread resolves
	// immediately; commit and global performance proceed in the background,
	// tracked by the cache's counter.
	v := req.Data
	a := req.Addr
	p.cache.AcquireExclusive(a, false,
		func(old mem.Value) {
			commitT = p.engine.Now()
			p.cache.WriteLocal(a, v)
		},
		func() {
			p.emitTiming(mem.OpWrite, a, opIdx, t0, commitT, p.engine.Now())
		})
	p.record(mem.OpWrite, a, 0, v)
	p.thread.Resolve(0)
	p.resume()
}

// updateWrite issues a data write on the write-update protocol: the local
// copy commits immediately; global performance is the directory's
// acknowledgement after all sharers applied the update.
func (p *Processor) updateWrite(req program.Request, t0 sim.Time, opIdx int) {
	commitT := p.engine.Now()
	if p.Policy == PolicySC {
		p.cache.WriteUpdate(req.Addr, req.Data, func() {
			now := p.engine.Now()
			p.Stats.Add("write_stall_cycles", int64(now-t0))
			p.rec.FenceStall(p.ID, commitT, now)
			p.emitTiming(mem.OpWrite, req.Addr, opIdx, t0, commitT, now)
			p.record(mem.OpWrite, req.Addr, 0, req.Data)
			p.thread.Resolve(0)
			p.resume()
		})
		return
	}
	p.cache.WriteUpdate(req.Addr, req.Data, func() {
		p.emitTiming(mem.OpWrite, req.Addr, opIdx, t0, commitT, p.engine.Now())
	})
	p.record(mem.OpWrite, req.Addr, 0, req.Data)
	p.thread.Resolve(0)
	p.resume()
}

func (p *Processor) syncOp(req program.Request) {
	p.Stats.Add("syncs", 1)
	switch p.Policy {
	case PolicySC:
		p.syncExclusive(req, true)
	case PolicyWODef1:
		// Condition 2 of Definition 1: wait for all previous accesses to be
		// globally performed before issuing the synchronization operation.
		t0 := p.engine.Now()
		p.cache.OnCounterZero(func() {
			p.Stats.Add("sync_counter_stall_cycles", int64(p.engine.Now()-t0))
			p.rec.CounterStall(p.ID, t0, p.engine.Now())
			// Condition 3: nothing issues past the sync until it is
			// globally performed, so stall through performance.
			p.syncExclusive(req, true)
		})
	case PolicyWODef2, PolicyWODef2NoReserve:
		p.syncExclusive(req, false)
	case PolicyWODef2DRF1:
		if req.Op == mem.OpSyncRead {
			// Section 6: read-only synchronization is not serialized — it
			// issues as a shared-copy read (still flagged sync, so a
			// reserving owner stalls it).
			t0 := p.engine.Now()
			opIdx := p.thread.OpIndex
			p.cache.AcquireShared(req.Addr, true, func(v mem.Value) {
				now := p.engine.Now()
				p.Stats.Add("sync_line_stall_cycles", int64(now-t0))
				p.rec.MemWait(p.ID, req.Addr, true, t0, now)
				p.emitTiming(req.Op, req.Addr, opIdx, t0, now, now)
				p.record(req.Op, req.Addr, v, 0)
				p.thread.Resolve(v)
				p.resume()
			})
			return
		}
		p.syncExclusive(req, false)
	default:
		panic("proc: unknown policy")
	}
}

// syncExclusive performs a synchronization operation on an exclusively held
// line. When waitPerformed is set the thread stalls until the operation is
// globally performed (SC, Definition 1); otherwise it continues right after
// commit, reserving the line if the counter is positive (Definition 2 /
// Section 5.3).
func (p *Processor) syncExclusive(req program.Request, waitPerformed bool) {
	t0 := p.engine.Now()
	opIdx := p.thread.OpIndex
	var old mem.Value
	var newV mem.Value
	var commitT sim.Time
	committed := func(cur mem.Value) {
		old = cur
		newV = cur
		commitT = p.engine.Now()
		if req.Op.Writes() {
			newV = req.NewValue(cur)
			p.cache.WriteLocal(req.Addr, newV)
		}
		if !waitPerformed {
			p.rec.MemWait(p.ID, req.Addr, true, t0, commitT)
			// Definition 2: commit is the release point for the issuer. The
			// reserve waits only on outstanding *ordinary* accesses: those
			// are the accesses previous to this operation that the next
			// synchronizer must observe, and — unlike synchronization
			// acquires, which can themselves be reserve-stalled at a peer —
			// they always complete, keeping the stall acyclic.
			if p.Policy != PolicyWODef2NoReserve && p.cache.DataCounter() > 0 {
				p.cache.Reserve(req.Addr)
			}
			p.Stats.Add("sync_line_stall_cycles", int64(p.engine.Now()-t0))
			p.record(req.Op, req.Addr, old, newV)
			p.thread.Resolve(old)
			p.resume()
		}
	}
	performed := func() {
		p.emitTiming(req.Op, req.Addr, opIdx, t0, commitT, p.engine.Now())
		if waitPerformed {
			p.rec.MemWait(p.ID, req.Addr, true, t0, commitT)
			p.rec.FenceStall(p.ID, commitT, p.engine.Now())
			p.Stats.Add("sync_performed_stall_cycles", int64(p.engine.Now()-t0))
			p.record(req.Op, req.Addr, old, newV)
			p.thread.Resolve(old)
			p.resume()
		}
	}
	p.cache.AcquireExclusive(req.Addr, true, committed, performed)
}
