// Package proc implements the timed processor front-ends that sit on top of
// the coherence protocol in internal/cache. One Processor interprets one
// thread; the Policy decides where the processor stalls, which is exactly
// where the paper's definitions differ:
//
//   - PolicySC: an access issues only after the previous access is globally
//     performed (the Scheurich-Dubois sufficient condition for sequential
//     consistency).
//   - PolicyWODef1: data accesses overlap freely, but a synchronization
//     operation is not issued until all previous accesses are globally
//     performed, and nothing issues past it until it is globally performed
//     (Definition 1, conditions 2 and 3).
//   - PolicyWODef2: the Section-5.3 implementation — a synchronization
//     operation stalls its issuer only until it *commits* (the line is held
//     exclusively and modified); if the outstanding-access counter is
//     positive, the line is reserved, shifting the stall to the *next*
//     processor that synchronizes on the same location.
//   - PolicyWODef2DRF1: Definition 2 with the Section-6 refinement —
//     read-only synchronization operations issue as ordinary shared-copy
//     reads (not serialized, no reservation), still honoring existing
//     reservations at a remote owner.
package proc

import (
	"fmt"

	"weakorder/internal/cache"
	"weakorder/internal/conditions"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/program"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
)

// Policy selects the ordering discipline of a processor.
type Policy uint8

const (
	// PolicySC is sequentially consistent hardware.
	PolicySC Policy = iota
	// PolicyWODef1 is weak ordering per Dubois/Scheurich/Briggs.
	PolicyWODef1
	// PolicyWODef2 is the paper's reserve-bit implementation.
	PolicyWODef2
	// PolicyWODef2DRF1 adds the Section-6 read-only-sync refinement.
	PolicyWODef2DRF1
	// PolicyWODef2NoReserve is the ablation of PolicyWODef2 with the
	// reserve-bit mechanism disabled: synchronization releases without
	// transferring the stall. The resulting hardware is NOT weakly ordered
	// w.r.t. DRF0; it exists so experiments can show the reserve bits are
	// what keep DRF0 programs sequentially consistent.
	PolicyWODef2NoReserve
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicySC:
		return "SC"
	case PolicyWODef1:
		return "WO-def1"
	case PolicyWODef2:
		return "WO-def2"
	case PolicyWODef2DRF1:
		return "WO-def2-drf1"
	case PolicyWODef2NoReserve:
		return "WO-def2-noreserve"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Tracer receives every architecturally completed access, in resolve order,
// for post-run consistency checking. The machine provides one shared tracer.
type Tracer interface {
	Record(a mem.Access, opIndex int)
}

// TimingSink receives each access's (issue, commit, perform) lifecycle for
// checking the Section-5.1 conditions (internal/conditions). Entries arrive
// at global-performance time, which may be after the issuing thread halted.
type TimingSink interface {
	RecordTiming(t conditions.AccessTiming)
}

// Processor drives one thread against a cache under a policy.
type Processor struct {
	ID     int
	Policy Policy

	engine *sim.Engine
	cache  *cache.Cache
	thread program.Thread
	tracer Tracer
	timing TimingSink
	// updateProto routes data writes through the write-update protocol
	// (cache.WriteUpdate) instead of invalidation-based exclusive
	// acquisition. Synchronization operations always use the exclusive
	// path — the Section-5.3 reserve machinery depends on ownership.
	updateProto bool

	// Stats: per-class stall cycles and op counts.
	Stats *stats.Counters

	// rec, when non-nil, receives cycle-attribution spans (compute, counter
	// and fence stalls, raw memory waits). Nil-safe hooks keep the metrics-off
	// path free.
	rec *metrics.Recorder

	done     bool
	finish   sim.Time
	onFinish func()

	// src, when non-nil, feeds the processor open-loop code fragments once
	// the initial thread halts (SetWorkload). opBase is the running count of
	// memory operations completed by finished fragments, so opIndex stays a
	// single contiguous per-processor sequence across fragments.
	src    Workload
	opBase int

	// Hot-path counter handles (see stats.Hot): each resolves on first
	// touch, so registration order and which counters exist are unchanged;
	// steady-state increments skip the string-map lookup.
	hLocal, hMshr, hReads, hReadStall, hWrites, hWriteStall stats.Hot
	hSyncs, hSyncCounter, hSyncLine, hSyncPerformed         stats.Hot

	// stepFn is p.step bound once at construction. Every scheduling site uses
	// this stored value: a fresh method-value expression (p.step) allocates a
	// closure per call, which on cache-hit spin loops was one of the largest
	// steady-state allocation sources.
	stepFn func()
}

// New builds a processor for one thread. tracer may be nil.
func New(id int, engine *sim.Engine, c *cache.Cache, code program.Code, policy Policy, tracer Tracer) *Processor {
	p := &Processor{
		ID:     id,
		Policy: policy,
		engine: engine,
		cache:  c,
		thread: program.NewThread(code),
		tracer: tracer,
		Stats:  stats.NewCounters(),
	}
	p.stepFn = p.step
	return p
}

// SetTimingSink enables Section-5.1 lifecycle logging. Must be called before
// Start.
func (p *Processor) SetTimingSink(s TimingSink) { p.timing = s }

// SetUpdateProtocol switches data writes to the write-update protocol. Must
// be called before Start.
func (p *Processor) SetUpdateProtocol(on bool) { p.updateProto = on }

// SetMetrics attaches a cycle-observability recorder (nil to detach). Must be
// called before Start.
func (p *Processor) SetMetrics(rec *metrics.Recorder) { p.rec = rec }

// emitTiming reports one completed access lifecycle.
func (p *Processor) emitTiming(op mem.Op, addr mem.Addr, opIndex int, issue, commit, perform sim.Time) {
	if p.timing == nil {
		return
	}
	p.timing.RecordTiming(conditions.AccessTiming{
		Proc: p.ID, OpIndex: opIndex, Op: op, Addr: addr,
		Issue: issue, Commit: commit, Perform: perform,
	})
}

// Start schedules the processor's first step at the current time. onFinish
// runs once when the thread halts.
func (p *Processor) Start(onFinish func()) {
	p.onFinish = onFinish
	p.engine.After(0, p.stepFn)
}

// Done reports whether the thread has halted.
func (p *Processor) Done() bool { return p.done }

// Registers returns the thread's current register file (its final values once
// Done).
func (p *Processor) Registers() [program.NumRegs]mem.Value { return p.thread.Regs }

// FinishTime returns the cycle at which the thread halted.
func (p *Processor) FinishTime() sim.Time { return p.finish }

// record traces a completed access.
func (p *Processor) record(op mem.Op, addr mem.Addr, readV, writeV mem.Value) {
	if p.tracer == nil {
		return
	}
	a := mem.Access{Proc: mem.ProcID(p.ID), Op: op, Addr: addr}
	switch {
	case op == mem.OpSyncRMW:
		a.Value, a.WValue = readV, writeV
	case op.Writes():
		a.Value = writeV
	default:
		a.Value = readV
	}
	p.tracer.Record(a, p.opIndex())
}

// opIndex is the global program-order index the current (or just-resolving)
// memory operation carries: fragment-local OpIndex on top of the completed
// fragments' base.
func (p *Processor) opIndex() int { return p.opBase + p.thread.OpIndex }

// step advances the thread to its next stall point. The loop exists for the
// workload path: when a fragment halts and the next arrival is already due,
// the processor continues into it within the same event instead of recursing.
func (p *Processor) step() {
	if p.done {
		return
	}
	for {
		req, ok, err := p.thread.Pending()
		if err != nil {
			panic(fmt.Sprintf("P%d: %v", p.ID, err))
		}
		// Charge explicit local work (nop delays) accumulated on the way to
		// this stall point before issuing the operation or halting.
		if d := p.thread.TakeLocalWork(); d > 0 {
			p.hLocal.Add(p.Stats, "local_cycles", int64(d))
			p.rec.Compute(p.ID, p.engine.Now(), p.engine.Now()+sim.Time(d))
			p.engine.After(sim.Time(d), p.stepFn)
			return
		}
		if !ok {
			// Thread halted: with a workload attached this only ends the
			// current fragment — pull the next arrival.
			switch p.pull() {
			case pullNow:
				continue
			case pullLater:
				return
			}
			p.done = true
			p.finish = p.engine.Now()
			if p.onFinish != nil {
				p.onFinish()
			}
			return
		}
		// Same-address transaction in flight: preserve intra-processor
		// dependences (condition 1) by waiting for the MSHR.
		if p.cache.Busy(req.Addr) {
			t0 := p.engine.Now()
			p.cache.OnFree(req.Addr, func() {
				p.hMshr.Add(p.Stats, "mshr_stall_cycles", int64(p.engine.Now()-t0))
				p.rec.MemWait(p.ID, req.Addr, false, t0, p.engine.Now())
				p.step()
			})
			return
		}
		if req.Op.IsSync() {
			p.syncOp(req)
			return
		}
		if req.Op == mem.OpRead {
			p.dataRead(req)
			return
		}
		p.dataWrite(req)
		return
	}
}

// resume charges one hit latency (the pipeline cost of completing an access)
// and continues the thread. Cache callbacks are synchronous, so scheduling
// here is also what advances simulated time on cache-hit spin loops.
func (p *Processor) resume() {
	p.rec.Compute(p.ID, p.engine.Now(), p.engine.Now()+1)
	p.engine.After(1, p.stepFn)
}

func (p *Processor) dataRead(req program.Request) {
	t0 := p.engine.Now()
	opIdx := p.opIndex()
	p.hReads.Add(p.Stats, "reads", 1)
	if v, ok := p.cache.TryReadHit(req.Addr); ok {
		// Hit: AcquireShared would run done synchronously at t0 anyway.
		// Completing inline replicates that callback's exact stat, metric,
		// timing, and resolve sequence without allocating the continuation —
		// this is the hottest issue path (spin loops polling a cached flag).
		p.hReadStall.Add(p.Stats, "read_stall_cycles", 0)
		p.rec.MemWait(p.ID, req.Addr, false, t0, t0)
		p.emitTiming(mem.OpRead, req.Addr, opIdx, t0, t0, t0)
		p.record(mem.OpRead, req.Addr, v, 0)
		p.thread.Resolve(v)
		p.resume()
		return
	}
	p.cache.AcquireSharedCtx(req.Addr, false, p,
		cache.IssueCtx{Kind: issueDataRead, Addr: req.Addr, OpIdx: opIdx, T0: t0})
}

func (p *Processor) dataWrite(req program.Request) {
	t0 := p.engine.Now()
	opIdx := p.opIndex()
	p.hWrites.Add(p.Stats, "writes", 1)
	if p.updateProto {
		p.updateWrite(req, t0, opIdx)
		return
	}
	if p.Policy == PolicySC {
		// Stall until globally performed: the sequentially consistent
		// processor never has more than one access outstanding.
		p.cache.AcquireExclusiveCtx(req.Addr, false, p,
			cache.IssueCtx{Kind: issueDataWriteSC, Addr: req.Addr, Data: req.Data, OpIdx: opIdx, T0: t0})
		return
	}
	// Weakly ordered processors fire and forget: the thread resolves
	// immediately; commit and global performance proceed in the background,
	// tracked by the cache's counter.
	v := req.Data
	a := req.Addr
	if _, ok := p.cache.TryExclusiveHit(a); ok {
		// Exclusive hit: commit and performance coincide, so the committed
		// and performed callbacks would both run synchronously here. Inline
		// them (same order: write, timing entry, trace, resolve) without
		// allocating either closure.
		p.cache.WriteLocal(a, v)
		p.emitTiming(mem.OpWrite, a, opIdx, t0, t0, t0)
		p.record(mem.OpWrite, a, 0, v)
		p.thread.Resolve(0)
		p.resume()
		return
	}
	p.cache.AcquireExclusiveCtx(a, false, p,
		cache.IssueCtx{Kind: issueDataWriteWO, Addr: a, Data: v, OpIdx: opIdx, T0: t0})
	p.record(mem.OpWrite, a, 0, v)
	p.thread.Resolve(0)
	p.resume()
}

// updateWrite issues a data write on the write-update protocol: the local
// copy commits immediately; global performance is the directory's
// acknowledgement after all sharers applied the update.
func (p *Processor) updateWrite(req program.Request, t0 sim.Time, opIdx int) {
	commitT := p.engine.Now()
	if p.Policy == PolicySC {
		p.cache.WriteUpdate(req.Addr, req.Data, func() {
			now := p.engine.Now()
			p.hWriteStall.Add(p.Stats, "write_stall_cycles", int64(now-t0))
			p.rec.FenceStall(p.ID, commitT, now)
			p.emitTiming(mem.OpWrite, req.Addr, opIdx, t0, commitT, now)
			p.record(mem.OpWrite, req.Addr, 0, req.Data)
			p.thread.Resolve(0)
			p.resume()
		})
		return
	}
	p.cache.WriteUpdate(req.Addr, req.Data, func() {
		p.emitTiming(mem.OpWrite, req.Addr, opIdx, t0, commitT, p.engine.Now())
	})
	p.record(mem.OpWrite, req.Addr, 0, req.Data)
	p.thread.Resolve(0)
	p.resume()
}

func (p *Processor) syncOp(req program.Request) {
	p.hSyncs.Add(p.Stats, "syncs", 1)
	switch p.Policy {
	case PolicySC:
		p.syncExclusive(req, true)
	case PolicyWODef1:
		// Condition 2 of Definition 1: wait for all previous accesses to be
		// globally performed before issuing the synchronization operation.
		t0 := p.engine.Now()
		p.cache.OnCounterZero(func() {
			p.hSyncCounter.Add(p.Stats, "sync_counter_stall_cycles", int64(p.engine.Now()-t0))
			p.rec.CounterStall(p.ID, t0, p.engine.Now())
			// Condition 3: nothing issues past the sync until it is
			// globally performed, so stall through performance.
			p.syncExclusive(req, true)
		})
	case PolicyWODef2, PolicyWODef2NoReserve:
		p.syncExclusive(req, false)
	case PolicyWODef2DRF1:
		if req.Op == mem.OpSyncRead {
			// Section 6: read-only synchronization is not serialized — it
			// issues as a shared-copy read (still flagged sync, so a
			// reserving owner stalls it).
			t0 := p.engine.Now()
			opIdx := p.opIndex()
			p.cache.AcquireShared(req.Addr, true, func(v mem.Value) {
				now := p.engine.Now()
				p.hSyncLine.Add(p.Stats, "sync_line_stall_cycles", int64(now-t0))
				p.rec.MemWait(p.ID, req.Addr, true, t0, now)
				p.emitTiming(req.Op, req.Addr, opIdx, t0, now, now)
				p.record(req.Op, req.Addr, v, 0)
				p.thread.Resolve(v)
				p.resume()
			})
			return
		}
		p.syncExclusive(req, false)
	default:
		panic("proc: unknown policy")
	}
}

// syncExclusive performs a synchronization operation on an exclusively held
// line. When waitPerformed is set the thread stalls until the operation is
// globally performed (SC, Definition 1); otherwise it continues right after
// commit, reserving the line if the counter is positive (Definition 2 /
// Section 5.3).
func (p *Processor) syncExclusive(req program.Request, waitPerformed bool) {
	t0 := p.engine.Now()
	opIdx := p.opIndex()
	if cur, ok := p.cache.TryExclusiveHit(req.Addr); ok {
		p.syncHit(req, waitPerformed, t0, opIdx, cur)
		return
	}
	p.cache.AcquireExclusiveCtx(req.Addr, true, p, cache.IssueCtx{
		Kind: issueSync, Flag: waitPerformed, Op: req.Op, RMW: uint8(req.RMW),
		Addr: req.Addr, Data: req.Data, OpIdx: opIdx, T0: t0,
	})
}

// Issue-context discriminators for the IssueSink completion path: misses
// carry one of these in IssueCtx.Kind so LineCommitted/LinePerformed can
// replay the exact per-variant completion sequence the old continuation
// closures ran, without the per-miss closure allocations.
const (
	issueDataRead uint8 = iota
	issueDataWriteWO
	issueDataWriteSC
	issueSync
)

// LineCommitted implements cache.IssueSink: the commit point of a miss
// issued with an IssueCtx (synchronous with line installation, like the
// committed/done callbacks it replaces).
func (p *Processor) LineCommitted(ctx *cache.IssueCtx, v mem.Value) {
	now := p.engine.Now()
	switch ctx.Kind {
	case issueDataRead:
		p.hReadStall.Add(p.Stats, "read_stall_cycles", int64(now-ctx.T0))
		p.rec.MemWait(p.ID, ctx.Addr, false, ctx.T0, now)
		p.emitTiming(mem.OpRead, ctx.Addr, ctx.OpIdx, ctx.T0, now, now)
		p.record(mem.OpRead, ctx.Addr, v, 0)
		p.thread.Resolve(v)
		p.resume()
	case issueDataWriteWO, issueDataWriteSC:
		ctx.CommitT = now
		p.cache.WriteLocal(ctx.Addr, ctx.Data)
	case issueSync:
		ctx.Old, ctx.New, ctx.CommitT = v, v, now
		if ctx.Op.Writes() {
			req := program.Request{Op: ctx.Op, Addr: ctx.Addr, Data: ctx.Data, RMW: program.RMWKind(ctx.RMW)}
			ctx.New = req.NewValue(v)
			p.cache.WriteLocal(ctx.Addr, ctx.New)
		}
		if !ctx.Flag {
			p.rec.MemWait(p.ID, ctx.Addr, true, ctx.T0, ctx.CommitT)
			// Definition 2: commit is the release point for the issuer. The
			// reserve waits only on outstanding *ordinary* accesses: those
			// are the accesses previous to this operation that the next
			// synchronizer must observe, and — unlike synchronization
			// acquires, which can themselves be reserve-stalled at a peer —
			// they always complete, keeping the stall acyclic.
			if p.Policy != PolicyWODef2NoReserve && p.cache.DataCounter() > 0 {
				p.cache.Reserve(ctx.Addr)
			}
			p.hSyncLine.Add(p.Stats, "sync_line_stall_cycles", int64(p.engine.Now()-ctx.T0))
			p.record(ctx.Op, ctx.Addr, ctx.Old, ctx.New)
			p.thread.Resolve(ctx.Old)
			p.resume()
		}
	}
}

// LinePerformed implements cache.IssueSink: global performance of an
// exclusive miss issued with an IssueCtx (the performed callback it
// replaces).
func (p *Processor) LinePerformed(ctx *cache.IssueCtx) {
	now := p.engine.Now()
	switch ctx.Kind {
	case issueDataWriteWO:
		p.emitTiming(mem.OpWrite, ctx.Addr, ctx.OpIdx, ctx.T0, ctx.CommitT, now)
	case issueDataWriteSC:
		p.hWriteStall.Add(p.Stats, "write_stall_cycles", int64(now-ctx.T0))
		p.rec.MemWait(p.ID, ctx.Addr, false, ctx.T0, ctx.CommitT)
		p.rec.FenceStall(p.ID, ctx.CommitT, now)
		p.emitTiming(mem.OpWrite, ctx.Addr, ctx.OpIdx, ctx.T0, ctx.CommitT, now)
		p.record(mem.OpWrite, ctx.Addr, 0, ctx.Data)
		p.thread.Resolve(0)
		p.resume()
	case issueSync:
		p.emitTiming(ctx.Op, ctx.Addr, ctx.OpIdx, ctx.T0, ctx.CommitT, now)
		if ctx.Flag {
			p.rec.MemWait(p.ID, ctx.Addr, true, ctx.T0, ctx.CommitT)
			p.rec.FenceStall(p.ID, ctx.CommitT, p.engine.Now())
			p.hSyncPerformed.Add(p.Stats, "sync_performed_stall_cycles", int64(p.engine.Now()-ctx.T0))
			p.record(ctx.Op, ctx.Addr, ctx.Old, ctx.New)
			p.thread.Resolve(ctx.Old)
			p.resume()
		}
	}
}

// syncHit completes a synchronization operation whose line was already held
// Exclusive. It replicates the committed→performed callback sequence of
// syncExclusive on a hit exactly — same stat registrations, metric spans,
// timing-entry order, and resolve point — without allocating the two
// continuation closures; that pair dominated steady-state allocation on
// sync spin loops. On a hit, issue, commit, and performance coincide at t0.
func (p *Processor) syncHit(req program.Request, waitPerformed bool, t0 sim.Time, opIdx int, cur mem.Value) {
	old, newV := cur, cur
	if req.Op.Writes() {
		newV = req.NewValue(cur)
		p.cache.WriteLocal(req.Addr, newV)
	}
	if !waitPerformed {
		p.rec.MemWait(p.ID, req.Addr, true, t0, t0)
		if p.Policy != PolicyWODef2NoReserve && p.cache.DataCounter() > 0 {
			p.cache.Reserve(req.Addr)
		}
		p.hSyncLine.Add(p.Stats, "sync_line_stall_cycles", 0)
		p.record(req.Op, req.Addr, old, newV)
		p.thread.Resolve(old)
		p.resume()
		// The performed callback runs after committed returns, so the timing
		// entry lands after the resolve, exactly as on the closure path.
		p.emitTiming(req.Op, req.Addr, opIdx, t0, t0, t0)
		return
	}
	p.emitTiming(req.Op, req.Addr, opIdx, t0, t0, t0)
	p.rec.MemWait(p.ID, req.Addr, true, t0, t0)
	p.rec.FenceStall(p.ID, t0, t0)
	p.hSyncPerformed.Add(p.Stats, "sync_performed_stall_cycles", 0)
	p.record(req.Op, req.Addr, old, newV)
	p.thread.Resolve(old)
	p.resume()
}
