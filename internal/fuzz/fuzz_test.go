package fuzz

import (
	"errors"
	"testing"

	"weakorder/internal/litmus"
	"weakorder/internal/model"
	"weakorder/internal/program"
	"weakorder/internal/workload"
)

// noReserve is the deliberately broken fixture: the Section-5 machine with
// the reserve-bit stall dropped. It is NOT weakly ordered w.r.t. DRF0, and
// the fuzzer must catch it.
func noReserve() litmus.Factory {
	return litmus.Factory{
		Name: "WO-def2-noreserve",
		New:  func(p *program.Program) model.Machine { return model.NewWODef2NoReserve(p) },
	}
}

// TestCheckerCatchesAndShrinksNoReserve is the end-to-end acceptance test of
// the pipeline: a short differential campaign over guarded random programs
// must catch the no-reserve ablation, and delta-debugging must shrink the
// witness to at most 3 threads of at most 4 instructions whose emitted
// corpus file re-triggers the violation after a parse round-trip.
func TestCheckerCatchesAndShrinksNoReserve(t *testing.T) {
	chk := &Checker{Machines: []litmus.Factory{noReserve()}}
	var caught *program.Program
	for seed := int64(0); seed < 20 && caught == nil; seed++ {
		p := workload.RandomGuarded(seed, 1+int(seed%3), int(seed%2))
		rep, err := chk.Check(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violating()) > 0 {
			caught = p
		}
	}
	if caught == nil {
		t.Fatal("20 guarded programs never caught the no-reserve ablation; the checker is toothless")
	}

	min := Minimize(caught, noReserve(), nil)
	if !violates(min, noReserve(), DefaultExplorer()) {
		t.Fatal("minimized program lost the violation")
	}
	sz := SizeOf(min)
	t.Logf("minimized %v from %v:\n%s", sz, SizeOf(caught), EmitGo(min))
	if sz.Threads > 3 {
		t.Errorf("minimized to %d threads, want <= 3", sz.Threads)
	}
	if sz.MaxOps > 4 {
		t.Errorf("minimized to %d ops in the longest thread, want <= 4", sz.MaxOps)
	}

	// The emitted corpus file must survive a parse round-trip with the
	// violation intact (addresses are renamed densely by the parser; the
	// machines don't care).
	src := EmitLitmus(min, "minimized no-reserve witness")
	res, err := program.Parse(src)
	if err != nil {
		t.Fatalf("emitted litmus does not parse: %v\n%s", err, src)
	}
	if !violates(res.Program, noReserve(), DefaultExplorer()) {
		t.Fatalf("round-tripped reproducer lost the violation:\n%s", src)
	}
}

// TestWeaklyOrderedMachinesSurviveSweep is the standing correctness gate: a
// short sweep of mixed random programs across every machine that claims the
// Definition-2 contract must find no violation.
func TestWeaklyOrderedMachinesSurviveSweep(t *testing.T) {
	chk := &Checker{}
	for seed := int64(0); seed < 12; seed++ {
		cfg := workload.RandomConfig{
			Procs:       2 + int(seed%2),
			Ops:         2 + int(seed%3),
			SyncDensity: 20 + int(seed*13%60),
			RMWPct:      20,
			CondPct:     int(seed * 17 % 50),
		}
		p := workload.Random(seed, cfg)
		rep, err := chk.Check(p)
		if err != nil {
			if errors.Is(err, model.ErrStateBudget) {
				continue
			}
			t.Fatal(err)
		}
		if v := rep.Violating(); len(v) > 0 {
			min := Minimize(p, mustFactory(t, v[0]), nil)
			t.Fatalf("machine(s) %v violated the contract on seed %d; minimized reproducer:\n%s",
				v, seed, EmitGo(min))
		}
	}
}

func mustFactory(t *testing.T, name string) litmus.Factory {
	t.Helper()
	f, ok := litmus.FactoryByName(name)
	if !ok {
		t.Fatalf("unknown factory %q", name)
	}
	return f
}

// FuzzContract is the native fuzzing harness: every input derives a random
// generator configuration, and every machine claiming the Definition-2
// contract must keep its outcomes inside the SC set on DRF0 programs. Racy
// programs are informational only. Run with
//
//	go test ./internal/fuzz -run='^$' -fuzz=FuzzContract -fuzztime=30s
func FuzzContract(f *testing.F) {
	f.Add(int64(1), byte(0), byte(1), byte(30), byte(34), byte(0))
	f.Add(int64(7), byte(1), byte(2), byte(60), byte(80), byte(40))
	f.Add(int64(42), byte(2), byte(0), byte(45), byte(10), byte(55))
	f.Fuzz(func(t *testing.T, seed int64, procs, ops, syncDensity, rmwPct, condPct byte) {
		cfg := workload.RandomConfig{
			Procs:       2 + int(procs%3),
			DataVars:    1 + int(procs/3%2),
			SyncVars:    1 + int(ops/3%2),
			Ops:         2 + int(ops%3),
			SyncDensity: 10 + int(syncDensity)%81,
			RMWPct:      1 + int(rmwPct)%99,
			SyncReadPct: 1 + int(rmwPct/2)%99,
			CondPct:     int(condPct) % 61,
		}
		if cfg.Procs >= 4 {
			// Four-processor interleavings explode the Result-keyed state
			// space; two ops per thread keeps exploration exhaustive.
			cfg.Ops = 2
		}
		p := workload.Random(seed, cfg)
		// Tighter state budget than DefaultExplorer: go fuzzing treats any
		// input running past ~10s as a hang, and a sparse-sync 4-processor
		// program can spend that long across nine explorations at the default
		// budget. 100k states keeps the worst input a few seconds and turns
		// the pathological ones into skips.
		chk := &Checker{Explorer: &model.Explorer{MaxTraceOps: 40, MaxStates: 100_000}}
		rep, err := chk.Check(p)
		if err != nil {
			if errors.Is(err, model.ErrStateBudget) {
				t.Skip("state budget exhausted; input too large to enumerate")
			}
			t.Fatal(err)
		}
		if v := rep.Violating(); len(v) > 0 {
			fac, ok := litmus.FactoryByName(v[0])
			if !ok {
				t.Fatalf("machine(s) %v violated the contract (factory lookup failed)", v)
			}
			min := Minimize(p, fac, nil)
			t.Fatalf("DEFINITION-2 VIOLATION on %v (seed %d)\nminimized reproducer (Builder code):\n%s\ncorpus file:\n%s",
				v, seed, EmitGo(min), EmitLitmus(min))
		}
		if rep.RacyNonSC() {
			t.Logf("racy program %s: non-SC outcomes observed (informational)", p.Name)
		}
	})
}

// TestEmitGoRendersAllForms pins the Builder-code emitter's output for a
// program exercising every instruction form the generator can produce.
func TestEmitGoRendersAllForms(t *testing.T) {
	b := program.NewBuilder("forms")
	b.Init(5, 9)
	b.Thread()
	b.Mov(1, program.Imm(3))
	b.Add(2, 1, program.R(1))
	b.Store(10, program.R(2))
	b.SyncStore(20, program.Imm(1))
	b.Halt()
	b.Thread()
	b.SyncLoad(0, 20)
	b.Beq(0, program.Imm(0), "end")
	b.Load(1, 10)
	b.TestAndSet(2, 21, program.Imm(1))
	b.FetchAdd(3, 21, program.Imm(2))
	b.Label("end")
	b.Halt()
	p := b.MustBuild()

	got := EmitGo(p)
	want := `b := program.NewBuilder("forms")
b.Init(5, 9)
b.Thread()
b.Mov(1, program.Imm(3))
b.Add(2, 1, program.R(1))
b.Store(10, program.R(2))
b.SyncStore(20, program.Imm(1))
b.Halt()
b.Thread()
b.SyncLoad(0, 20)
b.Beq(0, program.Imm(0), "L5")
b.Load(1, 10)
b.TestAndSet(2, 21, program.Imm(1))
b.FetchAdd(3, 21, program.Imm(2))
b.Label("L5")
b.Halt()
p := b.MustBuild()
`
	if got != want {
		t.Errorf("EmitGo mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEmitLitmusRoundTrip checks structural equality through the parser:
// same thread count, same opcode/RMW sequences (addresses are densely
// renamed by Parse, so they are compared per-location-class only).
func TestEmitLitmusRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := workload.Random(seed, workload.RandomConfig{
			Procs: 2, Ops: 4, SyncDensity: 50, RMWPct: 30, CondPct: 40, FetchAddPct: 25,
		})
		src := EmitLitmus(p, "round-trip test")
		res, err := program.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: emitted litmus does not parse: %v\n%s", seed, err, src)
		}
		q := res.Program
		if len(q.Threads) != len(p.Threads) {
			t.Fatalf("seed %d: thread count %d -> %d", seed, len(p.Threads), len(q.Threads))
		}
		for ti := range p.Threads {
			if len(q.Threads[ti]) != len(p.Threads[ti]) {
				t.Fatalf("seed %d T%d: length %d -> %d", seed, ti, len(p.Threads[ti]), len(q.Threads[ti]))
			}
			for ii := range p.Threads[ti] {
				a, b := p.Threads[ti][ii], q.Threads[ti][ii]
				if a.Op != b.Op || a.RMW != b.RMW || a.Rd != b.Rd || a.Ra != b.Ra || a.Target != b.Target {
					t.Fatalf("seed %d T%d@%d: %s -> %s", seed, ti, ii, a, b)
				}
			}
		}
	}
}

// TestMinimizeDropsJunk pads the canonical guarded message-passing witness
// with junk instructions and checks the minimizer strips all of it while
// preserving the violation.
func TestMinimizeDropsJunk(t *testing.T) {
	b := program.NewBuilder("padded")
	b.Thread() // producer with junk
	b.Nop(1)
	b.Store(101, program.Imm(7))
	b.Load(3, 102)
	b.SyncStore(200, program.Imm(1))
	b.Halt()
	b.Thread() // consumer with junk
	b.Mov(2, program.Imm(9))
	b.SyncLoad(0, 200)
	b.Beq(0, program.Imm(0), "skip")
	b.Load(1, 101)
	b.Label("skip")
	b.Halt()
	b.Thread() // bystander thread, entirely junk
	b.Load(2, 102)
	b.Halt()
	p := b.MustBuild()

	f := noReserve()
	if !violates(p, f, DefaultExplorer()) {
		t.Fatal("padded witness does not violate; test setup wrong")
	}
	min := Minimize(p, f, nil)
	sz := SizeOf(min)
	if sz.Threads != 2 {
		t.Errorf("threads = %d, want 2 (bystander dropped)", sz.Threads)
	}
	// The consumer bottoms out at 4 instructions: sync.ld, beq, ld, and the
	// halt the beq targets (dropping the halt would dangle the branch).
	if sz.MaxOps > 4 {
		t.Errorf("longest thread = %d ops, want <= 4:\n%s", sz.MaxOps, EmitGo(min))
	}
	if !violates(min, f, DefaultExplorer()) {
		t.Error("minimized program lost the violation")
	}
	// 1-minimality spot check: dropping any remaining instruction loses it.
	for ti := range min.Threads {
		for ii := range min.Threads[ti] {
			if violates(dropOp(min, ti, ii), f, DefaultExplorer()) {
				t.Errorf("not 1-minimal: dropping T%d@%d keeps the violation", ti, ii)
			}
		}
	}
}

// TestDropOpFixesBranchTargets exercises the index arithmetic directly.
func TestDropOpFixesBranchTargets(t *testing.T) {
	b := program.NewBuilder("branches")
	b.Thread()
	b.Mov(0, program.Imm(1))        // 0 (dropped)
	b.Beq(0, program.Imm(0), "end") // 1
	b.Nop(1)                        // 2
	b.Label("end")
	b.Halt() // 3
	p := b.MustBuild()

	q := dropOp(p, 0, 0)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := q.Threads[0][0].Target; got != 2 {
		t.Errorf("branch target after drop = %d, want 2", got)
	}
	// Dropping the branch's own target retargets to the successor.
	r := dropOp(p, 0, 3)
	if got := r.Threads[0][1].Target; got != 3 {
		t.Errorf("branch target after dropping its target = %d, want 3 (past end => invalid)", got)
	}
	if err := r.Validate(); err == nil {
		t.Error("dangling branch target should fail validation")
	}
}
