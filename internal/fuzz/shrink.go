package fuzz

import (
	"sort"

	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/model"
	"weakorder/internal/program"
)

// Minimize delta-debugs a program that violates the Definition-2 contract on
// machine f: it greedily applies reductions — drop a whole thread, drop a
// single instruction (fixing up branch targets), merge two addresses — and
// keeps a reduction only if the reduced program still obeys DRF0 AND still
// produces an outcome outside the SC set on f. The loop runs to a fixpoint,
// so the result is 1-minimal with respect to the reduction set: removing any
// single remaining thread or instruction, or merging any remaining address
// pair, loses the violation.
//
// Minimize never fails: if no reduction applies it returns (a copy of) the
// input. The caller is expected to have established the violation first
// (Checker.Check / violates); passing a non-violating program returns it
// unchanged.
func Minimize(p *program.Program, f litmus.Factory, x *model.Explorer) *program.Program {
	if x == nil {
		x = DefaultExplorer()
	}
	cur := cloneProgram(p)
	cur.Name = p.Name + "-min"
	if !violates(cur, f, x) {
		return cur
	}
	for changed := true; changed; {
		changed = false
		// Whole threads first: the biggest cuts.
		for i := len(cur.Threads) - 1; i >= 0; i-- {
			if len(cur.Threads) == 1 {
				break
			}
			if cand := dropThread(cur, i); violates(cand, f, x) {
				cur = cand
				changed = true
			}
		}
		// Single instructions, scanned back to front so surviving indices
		// stay valid as instructions disappear.
		for t := range cur.Threads {
			for i := len(cur.Threads[t]) - 1; i >= 0; i-- {
				if cand := dropOp(cur, t, i); violates(cand, f, x) {
					cur = cand
					changed = true
				}
			}
		}
		// Address merges: rewrite the higher address onto the lower one.
		addrs := cur.Addrs()
		for ai := len(addrs) - 1; ai >= 1; ai-- {
			for bi := 0; bi < ai; bi++ {
				if cand := mergeAddr(cur, addrs[ai], addrs[bi]); violates(cand, f, x) {
					cur = cand
					changed = true
					break
				}
			}
		}
	}
	return cur
}

// cloneProgram deep-copies a program so reductions never alias the input.
func cloneProgram(p *program.Program) *program.Program {
	q := &program.Program{Name: p.Name, Init: make(map[mem.Addr]mem.Value, len(p.Init))}
	for a, v := range p.Init {
		q.Init[a] = v
	}
	q.Threads = make([]program.Code, len(p.Threads))
	for t, code := range p.Threads {
		q.Threads[t] = append(program.Code(nil), code...)
	}
	return q
}

// dropThread returns a copy of p without thread t.
func dropThread(p *program.Program, t int) *program.Program {
	q := cloneProgram(p)
	q.Threads = append(q.Threads[:t], q.Threads[t+1:]...)
	return q
}

// dropOp returns a copy of p with instruction i of thread t removed, shifting
// the branch targets of the surviving instructions: targets past the removed
// instruction move up by one; a branch *to* the removed instruction now
// targets whatever followed it. A branch left pointing past the end of the
// shortened thread makes the candidate invalid, and the caller's Validate
// check rejects it.
func dropOp(p *program.Program, t, i int) *program.Program {
	q := cloneProgram(p)
	code := q.Threads[t]
	code = append(code[:i], code[i+1:]...)
	for j := range code {
		switch code[j].Op {
		case program.IBeq, program.IBne, program.IBlt, program.IJmp:
			if code[j].Target > i {
				code[j].Target--
			}
		}
	}
	q.Threads[t] = code
	return q
}

// mergeAddr returns a copy of p with every reference to address from
// rewritten to address to. Initial values: to's wins when both exist;
// otherwise from's moves over.
func mergeAddr(p *program.Program, from, to mem.Addr) *program.Program {
	q := cloneProgram(p)
	for t := range q.Threads {
		for j := range q.Threads[t] {
			if q.Threads[t][j].Addr == from {
				if _, isMem := q.Threads[t][j].MemOp(); isMem {
					q.Threads[t][j].Addr = to
				}
			}
		}
	}
	if v, ok := q.Init[from]; ok {
		if _, exists := q.Init[to]; !exists {
			q.Init[to] = v
		}
		delete(q.Init, from)
	}
	return q
}

// Size summarizes a program's footprint for minimization reporting.
type Size struct {
	Threads int
	// MaxOps is the instruction count of the longest thread (Halt included).
	MaxOps int
	Addrs  int
}

// SizeOf measures p.
func SizeOf(p *program.Program) Size {
	s := Size{Threads: len(p.Threads), Addrs: len(p.Addrs())}
	for _, code := range p.Threads {
		if len(code) > s.MaxOps {
			s.MaxOps = len(code)
		}
	}
	return s
}

// ExtraOutcomes recomputes, for reporting, the outcome keys machine f can
// produce on p that the SC reference cannot. Keys are sorted for determinism;
// errors yield nil (the caller already holds a verdict).
func ExtraOutcomes(p *program.Program, f litmus.Factory, x *model.Explorer) []string {
	if x == nil {
		x = DefaultExplorer()
	}
	scOut, _, err := x.Outcomes(model.NewSC(p))
	if err != nil {
		return nil
	}
	hwOut, _, err := x.Outcomes(f.New(p))
	if err != nil {
		return nil
	}
	var out []string
	for k := range hwOut {
		if _, ok := scOut[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
