package fuzz

import (
	"testing"

	"weakorder/internal/program"
)

// TestNoReserveReproducerRegression pins the minimized counterexample the
// fuzzer produced against the reserve-bit ablation. The builder code below
// is pasted verbatim from EmitGo's output for the shrunk witness
// (TestCheckerCatchesAndShrinksNoReserve logs it): the producer's data store
// is still in flight when its synchronization write commits, and without the
// reservation stall the consumer's guarded read can observe the flag before
// the data — an outcome no SC execution allows. Any machine change that
// reintroduces the bug class fails here with a 2×4 program instead of a
// random campaign.
func TestNoReserveReproducerRegression(t *testing.T) {
	b := program.NewBuilder("guarded-0-min")
	b.Thread()
	b.Store(100, program.Imm(25))
	b.SyncStore(200, program.Imm(1))
	b.Thread()
	b.SyncLoad(0, 200)
	b.Beq(0, program.Imm(0), "L3")
	b.Load(1, 100)
	b.Label("L3")
	b.Halt()
	p := b.MustBuild()

	f := noReserve()
	if !violates(p, f, DefaultExplorer()) {
		t.Fatal("pasted reproducer no longer violates on WO-def2-noreserve")
	}

	// The same program must be harmless on the real Section-5 machine and on
	// the SC reference — the violation is the ablation's alone.
	chk := &Checker{}
	rep, err := chk.Check(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DRF0 {
		t.Fatal("reproducer must obey DRF0 (otherwise Definition 2 promises nothing)")
	}
	if v := rep.Violating(); len(v) > 0 {
		t.Fatalf("weakly ordered machines %v violate on the reproducer; real bug!", v)
	}
}
