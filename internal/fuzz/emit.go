package fuzz

import (
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// branchLabels assigns a label name to every branch target of one thread, so
// both emitters can render structured branches instead of raw indices.
func branchLabels(code program.Code) map[int]string {
	labels := make(map[int]string)
	for _, in := range code {
		switch in.Op {
		case program.IBeq, program.IBne, program.IBlt, program.IJmp:
			if _, ok := labels[in.Target]; !ok {
				labels[in.Target] = fmt.Sprintf("L%d", in.Target)
			}
		}
	}
	return labels
}

func sortedInit(init map[mem.Addr]mem.Value) []mem.Addr {
	addrs := make([]mem.Addr, 0, len(init))
	for a := range init {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// EmitGo renders the program as ready-to-paste program.Builder code — the
// form a minimized reproducer is pasted into a regression test as.
func EmitGo(p *program.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "b := program.NewBuilder(%q)\n", p.Name)
	for _, a := range sortedInit(p.Init) {
		fmt.Fprintf(&b, "b.Init(%d, %d)\n", a, p.Init[a])
	}
	for _, code := range p.Threads {
		fmt.Fprintf(&b, "b.Thread()\n")
		labels := branchLabels(code)
		for i, in := range code {
			if lbl, ok := labels[i]; ok {
				fmt.Fprintf(&b, "b.Label(%q)\n", lbl)
			}
			b.WriteString(emitGoInstr(in, labels))
			b.WriteByte('\n')
		}
		// A branch may target the instruction slot one past the last emitted
		// instruction only if Validate rejected it earlier; targets are
		// always < len(code), so every label was emitted above.
	}
	fmt.Fprintf(&b, "p := b.MustBuild()\n")
	return b.String()
}

func goOperand(o program.Operand) string {
	if o.IsReg {
		return fmt.Sprintf("program.R(%d)", o.Reg)
	}
	return fmt.Sprintf("program.Imm(%d)", o.Imm)
}

func emitGoInstr(in program.Instr, labels map[int]string) string {
	switch in.Op {
	case program.INop:
		return fmt.Sprintf("b.Nop(%d)", in.Delay)
	case program.IMov:
		return fmt.Sprintf("b.Mov(%d, %s)", in.Rd, goOperand(in.Src))
	case program.IAdd:
		return fmt.Sprintf("b.Add(%d, %d, %s)", in.Rd, in.Ra, goOperand(in.Src))
	case program.ISub:
		return fmt.Sprintf("b.Sub(%d, %d, %s)", in.Rd, in.Ra, goOperand(in.Src))
	case program.IMul:
		return fmt.Sprintf("b.Mul(%d, %d, %s)", in.Rd, in.Ra, goOperand(in.Src))
	case program.ILoad:
		if in.UseAddrReg {
			return fmt.Sprintf("b.LoadIdx(%d, %d, %d)", in.Rd, in.Addr, in.AddrReg)
		}
		return fmt.Sprintf("b.Load(%d, %d)", in.Rd, in.Addr)
	case program.IStore:
		if in.UseAddrReg {
			return fmt.Sprintf("b.StoreIdx(%d, %d, %s)", in.Addr, in.AddrReg, goOperand(in.Src))
		}
		return fmt.Sprintf("b.Store(%d, %s)", in.Addr, goOperand(in.Src))
	case program.ISyncLoad:
		return fmt.Sprintf("b.SyncLoad(%d, %d)", in.Rd, in.Addr)
	case program.ISyncStore:
		return fmt.Sprintf("b.SyncStore(%d, %s)", in.Addr, goOperand(in.Src))
	case program.ISyncRMW:
		if in.RMW == program.RMWAdd {
			return fmt.Sprintf("b.FetchAdd(%d, %d, %s)", in.Rd, in.Addr, goOperand(in.Src))
		}
		return fmt.Sprintf("b.TestAndSet(%d, %d, %s)", in.Rd, in.Addr, goOperand(in.Src))
	case program.IBeq:
		return fmt.Sprintf("b.Beq(%d, %s, %q)", in.Ra, goOperand(in.Src), labels[in.Target])
	case program.IBne:
		return fmt.Sprintf("b.Bne(%d, %s, %q)", in.Ra, goOperand(in.Src), labels[in.Target])
	case program.IBlt:
		return fmt.Sprintf("b.Blt(%d, %s, %q)", in.Ra, goOperand(in.Src), labels[in.Target])
	case program.IJmp:
		return fmt.Sprintf("b.Jmp(%q)", labels[in.Target])
	case program.IHalt:
		return "b.Halt()"
	default:
		return fmt.Sprintf("// unknown opcode %d", in.Op)
	}
}

// EmitLitmus renders the program in the repository's litmus text format
// (program.Parse's grammar), suitable as a corpus file. Locations keep their
// numeric addresses as symbolic names ("x101"); Parse reassigns dense
// addresses on reload, which preserves the program's structure — and
// therefore any contract violation, since the machines treat addresses
// opaquely. The header comments carry provenance the grammar has no clause
// for.
func EmitLitmus(p *program.Program, comments ...string) string {
	var b strings.Builder
	for _, c := range comments {
		fmt.Fprintf(&b, "# %s\n", c)
	}
	fmt.Fprintf(&b, "name: %s\n", p.Name)
	if len(p.Init) > 0 {
		b.WriteString("init:")
		for _, a := range sortedInit(p.Init) {
			fmt.Fprintf(&b, " x%d=%d", a, p.Init[a])
		}
		b.WriteByte('\n')
	}
	for _, code := range p.Threads {
		b.WriteString("thread:\n")
		labels := branchLabels(code)
		for i, in := range code {
			if lbl, ok := labels[i]; ok {
				fmt.Fprintf(&b, "%s:\n", lbl)
			}
			fmt.Fprintf(&b, "    %s\n", emitLitmusInstr(in, labels))
		}
	}
	return b.String()
}

func litmusOperand(o program.Operand) string {
	if o.IsReg {
		return fmt.Sprintf("r%d", o.Reg)
	}
	return fmt.Sprintf("%d", o.Imm)
}

func litmusLoc(in program.Instr) string {
	if in.UseAddrReg {
		return fmt.Sprintf("x%d[r%d]", in.Addr, in.AddrReg)
	}
	return fmt.Sprintf("x%d", in.Addr)
}

func emitLitmusInstr(in program.Instr, labels map[int]string) string {
	switch in.Op {
	case program.INop:
		return fmt.Sprintf("nop %d", in.Delay)
	case program.IMov:
		return fmt.Sprintf("mov r%d, %s", in.Rd, litmusOperand(in.Src))
	case program.IAdd, program.ISub, program.IMul:
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.Rd, in.Ra, litmusOperand(in.Src))
	case program.ILoad:
		return fmt.Sprintf("ld r%d, %s", in.Rd, litmusLoc(in))
	case program.IStore:
		return fmt.Sprintf("st %s, %s", litmusLoc(in), litmusOperand(in.Src))
	case program.ISyncLoad:
		return fmt.Sprintf("sync.ld r%d, %s", in.Rd, litmusLoc(in))
	case program.ISyncStore:
		return fmt.Sprintf("sync.st %s, %s", litmusLoc(in), litmusOperand(in.Src))
	case program.ISyncRMW:
		if in.RMW == program.RMWAdd {
			return fmt.Sprintf("faa r%d, %s, %s", in.Rd, litmusLoc(in), litmusOperand(in.Src))
		}
		return fmt.Sprintf("tas r%d, %s, %s", in.Rd, litmusLoc(in), litmusOperand(in.Src))
	case program.IBeq, program.IBne, program.IBlt:
		return fmt.Sprintf("%s r%d, %s, %s", in.Op, in.Ra, litmusOperand(in.Src), labels[in.Target])
	case program.IJmp:
		return fmt.Sprintf("jmp %s", labels[in.Target])
	case program.IHalt:
		return "halt"
	default:
		return fmt.Sprintf("# unknown opcode %d", in.Op)
	}
}
