// Package fuzz implements the differential litmus fuzzer: it attacks the
// paper's Definition-2 contract — hardware is weakly ordered w.r.t. DRF0 iff
// it appears sequentially consistent to all DRF0 software — with far more
// programs than the hand-written litmus corpus holds.
//
// The pipeline has three stages, each usable on its own:
//
//   - Checker differentially runs one program on every machine under test
//     against the SC reference, asserting outcome-set containment
//     (outcomes(M, P) ⊆ outcomes(SC, P)) for DRF0 programs and recording —
//     but not failing on — non-SC outcomes of racy ones.
//   - Minimize delta-debugs a violating program (drop threads, drop
//     instructions, merge addresses), re-verifying after every step that the
//     program still obeys DRF0 and the violation still reproduces.
//   - EmitGo / EmitLitmus render a minimized reproducer as ready-to-paste
//     program.Builder code and as a corpus file in the repository's litmus
//     text format.
//
// Three harnesses drive the pipeline: the native `go test -fuzz=FuzzContract`
// target in this package (seed corpus under testdata/fuzz/), the cmd/wofuzz
// CLI, and the nightly CI fuzz workflow.
package fuzz

import (
	"errors"
	"fmt"

	"weakorder/internal/axiomatic"
	"weakorder/internal/core"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/model"
	"weakorder/internal/program"
)

// Checker differentially tests programs against the SC reference.
// The zero value checks every weakly ordered machine with a trace-bounded
// default explorer.
type Checker struct {
	// Explorer configures exploration; nil uses DefaultExplorer().
	Explorer *model.Explorer
	// Machines are the hardware models under test; nil means
	// litmus.WeaklyOrderedFactories() — the machines that *claim* the
	// contract and must therefore never violate it.
	Machines []litmus.Factory
	// Axiomatic additionally cross-validates every machine that has an
	// axiomatic counterpart (axiomatic.CounterpartFor): the operational
	// outcome set must equal the axiomatically admitted set exactly, in both
	// directions. Programs outside the checker's fragment — or past its
	// enumeration budgets — are skipped per machine, visible as an empty
	// MachineReport.Axiomatic.
	Axiomatic bool
}

// DefaultExplorer returns the exploration settings the fuzzing harnesses use:
// Result-preserving enumeration bounded enough that a pathological random
// program aborts with model.ErrStateBudget instead of hanging the run.
func DefaultExplorer() *model.Explorer {
	return &model.Explorer{MaxTraceOps: 40, MaxStates: 400_000}
}

func (c *Checker) explorer() *model.Explorer {
	if c.Explorer != nil {
		return c.Explorer
	}
	return DefaultExplorer()
}

func (c *Checker) machines() []litmus.Factory {
	if c.Machines != nil {
		return c.Machines
	}
	return litmus.WeaklyOrderedFactories()
}

// MachineReport is one machine's verdict on one program.
type MachineReport struct {
	Machine  string
	Outcomes int
	// Extra lists outcomes the machine produced outside the SC set. On a
	// DRF0 program any entry is a Definition-2 violation; on a racy program
	// entries are informational (evidence the relaxations are real).
	Extra []mem.Result
	// Axiomatic names the counterpart system this machine was cross-checked
	// against; empty when the check was off, the machine has no counterpart,
	// or the program lies outside the axiomatic fragment/budgets.
	Axiomatic string
	// MissingAxiomatic lists operational outcomes the axioms reject, and
	// ExtraAxiomatic outcomes the axioms admit but the machine never
	// produces. Either being non-empty means machine and specification
	// disagree — a bug in one of them.
	MissingAxiomatic []mem.Result
	ExtraAxiomatic   []mem.Result
}

// Report is the differential verdict for one program.
type Report struct {
	Prog       *program.Program
	DRF0       bool // whether the program obeys DRF0 (Definition 3)
	Executions int  // idealized executions enumerated for the DRF0 verdict
	SCOutcomes int
	// States totals the distinct states visited across the SC reference and
	// every machine exploration — the effort this verdict cost to compute.
	// The campaign cache stores it so a cache hit can answer with the
	// original figure while demonstrably doing zero new exploration.
	States   int64
	Machines []MachineReport
}

// Violating returns the machines that broke the Definition-2 contract on this
// program: produced an outcome outside the SC set although the program obeys
// DRF0. Empty for racy programs by construction.
func (r *Report) Violating() []string {
	if !r.DRF0 {
		return nil
	}
	var out []string
	for _, m := range r.Machines {
		if len(m.Extra) > 0 {
			out = append(out, m.Machine)
		}
	}
	return out
}

// AxiomaticDisagreements returns the machines whose operational outcome set
// differed — in either direction — from their axiomatic counterpart's
// admitted set. Always empty unless Checker.Axiomatic was set.
func (r *Report) AxiomaticDisagreements() []string {
	var out []string
	for _, m := range r.Machines {
		if len(m.MissingAxiomatic) > 0 || len(m.ExtraAxiomatic) > 0 {
			out = append(out, m.Machine)
		}
	}
	return out
}

// RacyNonSC reports whether the program is racy AND some machine produced a
// non-SC outcome on it — the informational counterpart of a violation.
func (r *Report) RacyNonSC() bool {
	if r.DRF0 {
		return false
	}
	for _, m := range r.Machines {
		if len(m.Extra) > 0 {
			return true
		}
	}
	return false
}

// Check runs the full differential pipeline on one program: decide DRF0 by
// enumerating all idealized executions (Definition 3), collect the SC outcome
// set, then check Definition-2 containment for every machine under test.
func (c *Checker) Check(p *program.Program) (*Report, error) {
	x := c.explorer()
	rep := &Report{Prog: p}
	enum := &model.Enumerator{Prog: p, Explorer: x}
	drf, err := core.CheckProgram(enum, core.DRF0{}, 1)
	if err != nil {
		return nil, fmt.Errorf("fuzz: DRF0 check of %s: %w", p.Name, err)
	}
	rep.DRF0 = drf.Obeys()
	rep.Executions = drf.Executions
	scOut, scStats, err := x.Outcomes(model.NewSC(p))
	if err != nil {
		return nil, fmt.Errorf("fuzz: SC outcomes of %s: %w", p.Name, err)
	}
	rep.SCOutcomes = len(scOut)
	rep.States = int64(scStats.States)
	axCache := make(map[axiomatic.System]map[string]mem.Result)
	for _, f := range c.machines() {
		hwOut, hwStats, err := x.Outcomes(f.New(p))
		if err != nil {
			return nil, fmt.Errorf("fuzz: %s outcomes of %s: %w", f.Name, p.Name, err)
		}
		rep.States += int64(hwStats.States)
		crep := core.CheckContract(p.Name, f.Name, rep.DRF0, scOut, hwOut)
		mrep := MachineReport{
			Machine:  f.Name,
			Outcomes: len(hwOut),
			Extra:    crep.Extra,
		}
		if c.Axiomatic {
			if err := c.crossValidate(p, f.Name, hwOut, axCache, &mrep); err != nil {
				return nil, err
			}
		}
		rep.Machines = append(rep.Machines, mrep)
	}
	return rep, nil
}

// crossValidate compares one machine's operational outcome set against its
// axiomatic counterpart's admitted set, recording any disagreement in mrep.
// Admitted sets are memoized per system: several machines (e.g. the tso model
// and the Figure-1 bus machines) share one specification.
func (c *Checker) crossValidate(p *program.Program, machine string, hwOut core.OutcomeSet,
	cache map[axiomatic.System]map[string]mem.Result, mrep *MachineReport) error {
	sys, ok := axiomatic.CounterpartFor(machine)
	if !ok {
		return nil
	}
	adm, ok := cache[sys]
	if !ok {
		var err error
		adm, err = axiomatic.Admitted(p, sys)
		if errors.Is(err, axiomatic.ErrUnsupported) || errors.Is(err, axiomatic.ErrTooLarge) {
			return nil // outside the fragment/budgets: skip, leaving Axiomatic empty
		}
		if err != nil {
			return fmt.Errorf("fuzz: axiomatic %s on %s: %w", sys, p.Name, err)
		}
		cache[sys] = adm
	}
	mrep.Axiomatic = sys.String()
	for k, r := range hwOut {
		if _, ok := adm[k]; !ok {
			mrep.MissingAxiomatic = append(mrep.MissingAxiomatic, r)
		}
	}
	for k, r := range adm {
		if _, ok := hwOut[k]; !ok {
			mrep.ExtraAxiomatic = append(mrep.ExtraAxiomatic, r)
		}
	}
	return nil
}

// violates reports whether the program (a) obeys DRF0 and (b) still produces
// an outcome outside the SC set on the single given machine. It is the
// predicate the shrinker re-verifies after every candidate reduction; any
// exploration error (state budget, deadlock introduced by a bad reduction)
// counts as "does not violate" so the candidate is simply rejected.
func violates(p *program.Program, f litmus.Factory, x *model.Explorer) bool {
	if p == nil || len(p.Threads) == 0 || p.Validate() != nil {
		return false
	}
	enum := &model.Enumerator{Prog: p, Explorer: x}
	drf, err := core.CheckProgram(enum, core.DRF0{}, 1)
	if err != nil || !drf.Obeys() {
		return false
	}
	scOut, _, err := x.Outcomes(model.NewSC(p))
	if err != nil {
		return false
	}
	hwOut, _, err := x.Outcomes(f.New(p))
	if err != nil {
		return false
	}
	for k := range hwOut {
		if _, ok := scOut[k]; !ok {
			return true
		}
	}
	return false
}
