package fuzz

import (
	"errors"
	"runtime"
	"sort"
	"strings"
	"testing"

	"weakorder/internal/axiomatic"
	"weakorder/internal/litmus"
	"weakorder/internal/model"
	"weakorder/internal/program"
	"weakorder/internal/workload"
)

// counterpartFactories returns every registered machine that has an axiomatic
// specification, SC included.
func counterpartFactories(t testing.TB) []litmus.Factory {
	t.Helper()
	var out []litmus.Factory
	for _, f := range litmus.Factories() {
		if _, ok := axiomatic.CounterpartFor(f.Name); ok {
			out = append(out, f)
		}
	}
	if len(out) < 7 {
		t.Fatalf("only %d machines have axiomatic counterparts; expected SC, tso (x3), pso, rmo, WO-def1 (x2), WO-def2", len(out))
	}
	return out
}

// equivalenceCorpus is the program set the operational/axiomatic equivalence
// is asserted over: every litmus-corpus program inside the axiomatic fragment
// plus seeds random loop-free programs (256 in the full sweep).
func equivalenceCorpus(seeds int64) []*program.Program {
	var progs []*program.Program
	for _, tt := range litmus.Corpus() {
		if axiomatic.Supports(tt.Prog) == nil {
			progs = append(progs, tt.Prog)
		}
	}
	for seed := int64(0); seed < seeds; seed++ {
		cfg := workload.RandomConfig{
			// Small shapes: the axiomatic side enumerates candidate
			// executions exhaustively, so the sweep trades per-program size
			// for corpus breadth.
			Procs:       2 + int(seed%2),
			DataVars:    1 + int(seed%3),
			SyncVars:    1 + int(seed/3%2),
			Ops:         2 + int(seed%3),
			SyncDensity: 10 + int(seed*13%81),
			RMWPct:      1 + int(seed*7%80),
			SyncReadPct: 1 + int(seed*11%90),
			FetchAddPct: int(seed * 5 % 50),
			CondPct:     int(seed * 17 % 45),
		}
		p := workload.Random(seed, cfg)
		if axiomatic.Supports(p) != nil {
			continue // generator emits only forward branches; defensive
		}
		progs = append(progs, p)
	}
	return progs
}

func outcomeKeys(m map[string]bool) string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, "\n")
}

// TestAxiomaticOperationalEquivalence is the headline differential gate: for
// every machine with an axiomatic counterpart, the operational outcome set
// equals the axiomatically admitted set — byte-identical key sets in both
// directions — over the litmus corpus and a 256-seed random corpus, with the
// partial-order reduction on and off and at exploration widths 1 and
// GOMAXPROCS. The axiomatic side is computed once per (program, system);
// every explorer configuration must reproduce it exactly.
func TestAxiomaticOperationalEquivalence(t *testing.T) {
	machines := counterpartFactories(t)
	seeds := int64(256)
	if testing.Short() {
		seeds = 48
	}
	progs := equivalenceCorpus(seeds)
	widths := []int{1}
	if w := runtime.GOMAXPROCS(0); w > 1 {
		widths = append(widths, w)
	}
	checked, skipped := 0, 0
	for _, p := range progs {
		admitted := make(map[axiomatic.System]string) // canonical key set per system
		for _, sys := range axiomatic.Systems() {
			adm, err := axiomatic.Admitted(p, sys)
			if errors.Is(err, axiomatic.ErrTooLarge) {
				continue
			}
			if err != nil {
				t.Fatalf("%s: axiomatic %s: %v", p.Name, sys, err)
			}
			set := make(map[string]bool, len(adm))
			for k := range adm {
				set[k] = true
			}
			admitted[sys] = outcomeKeys(set)
		}
		for _, f := range machines {
			sys, _ := axiomatic.CounterpartFor(f.Name)
			want, ok := admitted[sys]
			if !ok {
				skipped++
				continue
			}
			for _, full := range []bool{false, true} {
				for _, w := range widths {
					x := &model.Explorer{FullExploration: full, Workers: w, MaxStates: 400_000}
					out, _, err := x.Outcomes(f.New(p))
					if err != nil {
						t.Fatalf("%s on %s (full=%v width=%d): %v", p.Name, f.Name, full, w, err)
					}
					set := make(map[string]bool, len(out))
					for k := range out {
						set[k] = true
					}
					if got := outcomeKeys(set); got != want {
						t.Errorf("%s: %s (full=%v width=%d) disagrees with %s axioms\n--- operational ---\n%s\n--- axiomatic ---\n%s",
							p.Name, f.Name, full, w, sys, got, want)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("equivalence sweep checked nothing")
	}
	t.Logf("equivalence held over %d program/machine/explorer combinations (%d machine-programs skipped by budget)", checked, skipped)
}

// TestCheckerAxiomaticCrossValidation exercises the fuzz.Checker integration:
// with Axiomatic set, every counterpart machine must agree with its
// specification on a mixed slice of random programs, and the report must
// actually record the cross-checks (counterpart names filled in).
func TestCheckerAxiomaticCrossValidation(t *testing.T) {
	chk := &Checker{Axiomatic: true, Machines: counterpartFactories(t)}
	validated := 0
	for seed := int64(0); seed < 10; seed++ {
		p := workload.Random(seed, workload.RandomConfig{
			Procs: 2, Ops: 2 + int(seed%2), SyncDensity: 30 + int(seed*9%50), RMWPct: 30,
		})
		rep, err := chk.Check(p)
		if err != nil {
			if errors.Is(err, model.ErrStateBudget) {
				continue
			}
			t.Fatal(err)
		}
		if d := rep.AxiomaticDisagreements(); len(d) > 0 {
			for _, m := range rep.Machines {
				if len(m.MissingAxiomatic) > 0 {
					t.Errorf("seed %d: %s produced outcomes its %s axioms reject: %v", seed, m.Machine, m.Axiomatic, m.MissingAxiomatic)
				}
				if len(m.ExtraAxiomatic) > 0 {
					t.Errorf("seed %d: %s axioms admit outcomes %s never produces: %v", seed, m.Axiomatic, m.Machine, m.ExtraAxiomatic)
				}
			}
		}
		for _, m := range rep.Machines {
			if m.Axiomatic != "" {
				validated++
			}
		}
	}
	if validated == 0 {
		t.Fatal("no machine was ever cross-validated; Axiomatic plumbing is dead")
	}
}

// FuzzAxiomatic is the native fuzzing harness for the axiomatic checker: each
// input derives a small random program, and every machine with a counterpart
// must produce exactly the admitted outcome set. Run with
//
//	go test ./internal/fuzz -run='^$' -fuzz=FuzzAxiomatic -fuzztime=30s
func FuzzAxiomatic(f *testing.F) {
	f.Add(int64(3), byte(0), byte(0), byte(40), byte(25))
	f.Add(int64(11), byte(1), byte(1), byte(70), byte(60))
	f.Add(int64(99), byte(0), byte(2), byte(15), byte(85))
	f.Fuzz(func(t *testing.T, seed int64, procs, ops, syncDensity, rmwPct byte) {
		cfg := workload.RandomConfig{
			Procs:       2 + int(procs%2),
			DataVars:    1 + int(ops/3%2),
			SyncVars:    1,
			Ops:         2 + int(ops%3),
			SyncDensity: 10 + int(syncDensity)%81,
			RMWPct:      1 + int(rmwPct)%99,
			SyncReadPct: 1 + int(rmwPct/2)%99,
			CondPct:     int(syncDensity/2) % 45,
		}
		p := workload.Random(seed, cfg)
		if axiomatic.Supports(p) != nil {
			t.Skip("outside the axiomatic fragment")
		}
		chk := &Checker{
			Axiomatic: true,
			Machines:  counterpartFactories(t),
			Explorer:  &model.Explorer{MaxTraceOps: 40, MaxStates: 100_000},
		}
		rep, err := chk.Check(p)
		if err != nil {
			if errors.Is(err, model.ErrStateBudget) {
				t.Skip("state budget exhausted")
			}
			t.Fatal(err)
		}
		if d := rep.AxiomaticDisagreements(); len(d) > 0 {
			t.Fatalf("MACHINE/SPECIFICATION DISAGREEMENT on %v (seed %d):\n%s", d, seed, EmitGo(p))
		}
	})
}
