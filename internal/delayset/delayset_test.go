package delayset

import (
	"testing"

	"weakorder/internal/core"
	"weakorder/internal/mem"
	"weakorder/internal/model"
	"weakorder/internal/program"
	"weakorder/internal/workload"
)

func dekker() *program.Program {
	return program.MustParse(`
name: dekker
init: x=0 y=0
thread:
    st x, 1
    ld r0, y
thread:
    st y, 1
    ld r1, x
`).Program
}

func TestDekkerDelaySet(t *testing.T) {
	an, err := Analyze(dekker())
	if err != nil {
		t.Fatal(err)
	}
	// The classic result: both W->R program pairs are in the delay set.
	if len(an.Delays) != 2 {
		t.Fatalf("delays = %v, want both store-load pairs", an.Delays)
	}
	for _, d := range an.Delays {
		if d.Before.Index != 0 || d.After.Index != 1 {
			t.Errorf("unexpected delay %s", d)
		}
	}
	if an.ConflictEdges != 2 {
		t.Errorf("conflict edges = %d, want 2", an.ConflictEdges)
	}
}

func TestIndependentThreadsNoDelays(t *testing.T) {
	p := program.MustParse(`
name: indep
thread:
    st x, 1
    ld r0, x
thread:
    st y, 1
    ld r0, y
`).Program
	an, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Delays) != 0 {
		t.Errorf("independent threads need no delays: %v", an.Delays)
	}
}

func TestMessagePassingDelays(t *testing.T) {
	p := program.MustParse(`
name: mp
thread:
    st d, 1
    st f, 1
thread:
    ld r0, f
    ld r1, d
`).Program
	an, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	// The W(d)->W(f) and R(f)->R(d) pairs both close cycles.
	if len(an.Delays) != 2 {
		t.Fatalf("delays = %v, want 2", an.Delays)
	}
}

func TestAnalyzeRejectsBranches(t *testing.T) {
	p := program.MustParse(`
name: loop
thread:
l:
    ld r0, x
    beq r0, 0, l
`).Program
	if _, err := Analyze(p); err == nil {
		t.Fatal("branches should be rejected")
	}
}

func TestAnalyzeRejectsIndexedAddressing(t *testing.T) {
	b := program.NewBuilder("idx").Thread().LoadIdx(0, 0, 1).Halt()
	p := b.MustBuild()
	if _, err := Analyze(p); err == nil {
		t.Fatal("indexed addressing should be rejected")
	}
}

func TestDelayedBefore(t *testing.T) {
	an, err := Analyze(dekker())
	if err != nil {
		t.Fatal(err)
	}
	db := an.DelayedBefore(2)
	if len(db[0][1]) != 1 || db[0][1][0] != 0 {
		t.Errorf("thread 0 delayed-before = %v", db[0])
	}
	if len(db[1][1]) != 1 || db[1][1][0] != 0 {
		t.Errorf("thread 1 delayed-before = %v", db[1])
	}
}

// exploreOutcomes is a helper returning the result set of a machine.
func exploreOutcomes(t *testing.T, m model.Machine) core.OutcomeSet {
	t.Helper()
	x := &model.Explorer{}
	out, _, err := x.Outcomes(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDelaysRestoreSCOnDekker(t *testing.T) {
	p := dekker()
	an, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	plain := exploreOutcomes(t, model.NewWriteBuffer(p, ""))
	delayed := exploreOutcomes(t, model.NewWriteBufferDelays(p, an.DelayedBefore(p.NumThreads())))
	sc := exploreOutcomes(t, model.NewSC(p))
	if len(plain) <= len(sc) {
		t.Fatalf("plain write buffer should allow extra outcomes: wb=%d sc=%d", len(plain), len(sc))
	}
	if len(delayed) != len(sc) {
		t.Fatalf("delayed write buffer outcomes = %d, want %d (exact SC set)", len(delayed), len(sc))
	}
	for k := range delayed {
		if _, ok := sc[k]; !ok {
			t.Fatal("delayed machine produced a non-SC outcome")
		}
	}
}

// TestDelaysGuaranteeSCOnRandomPrograms is the Shasha-Snir theorem as a
// property test: for random branch-free programs, the write-buffer machine
// with the computed delay set produces only sequentially consistent results.
func TestDelaysGuaranteeSCOnRandomPrograms(t *testing.T) {
	checked, relaxedObserved := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		p := workload.Random(seed, workload.RandomConfig{
			Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4, SyncDensity: 10,
		})
		an, err := Analyze(p)
		if err != nil {
			t.Fatal(err)
		}
		sc := exploreOutcomes(t, model.NewSC(p))
		plain := exploreOutcomes(t, model.NewWriteBuffer(p, ""))
		for k := range plain {
			if _, ok := sc[k]; !ok {
				relaxedObserved++
				break
			}
		}
		delayed := exploreOutcomes(t, model.NewWriteBufferDelays(p, an.DelayedBefore(p.NumThreads())))
		for k := range delayed {
			if _, ok := sc[k]; !ok {
				t.Fatalf("seed %d: delayed outcome outside SC set (delays %v)", seed, an.Delays)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	if relaxedObserved == 0 {
		t.Error("no random program showed relaxed behavior; the property test is vacuous")
	}
}

// TestDelaySetIsMemOpAgnostic: sync ops participate in cycles like any other
// access (they conflict), so the analysis covers them too.
func TestDelaySetCoversSyncAccesses(t *testing.T) {
	p := program.MustParse(`
name: syncmix
thread:
    st x, 1
    sync.ld r0, s
thread:
    sync.st s, 1
    ld r1, x
`).Program
	an, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Delays) == 0 {
		t.Error("mixed sync/data cycle should produce delays")
	}
	_ = mem.OpSyncRead
}
