// Package delayset implements a simplified form of Shasha & Snir's delay-set
// analysis, which Section 2.1 of the paper discusses as the software
// alternative to weak ordering: statically identify a set of intra-thread
// access pairs such that delaying the second access of each pair until the
// first is globally performed guarantees sequential consistency on otherwise
// relaxed hardware.
//
// The analysis here computes a sound *superset* of Shasha & Snir's minimal
// delay set: an ordered program pair (u, v) is delayed whenever some mixed
// cycle through conflict edges returns from v to u — equivalently, whenever v
// can reach u in the graph whose edges are program order (directed) plus
// conflict edges (both directions). Enforcing a superset still guarantees
// sequential consistency; it merely forgoes some optimization the exact
// minimal-cycle characterization would allow (the paper itself notes the
// static analysis "may be quite pessimistic").
//
// The analysis requires branch-free programs with statically known addresses:
// the delay set is defined over static accesses, and loops would need the
// full (and much heavier) cycle analysis over summarized iterations.
package delayset

import (
	"fmt"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// AccessRef names a static memory access: the Index-th memory operation of
// thread Thread (which, for branch-free programs, is also its dynamic
// program-order index).
type AccessRef struct {
	Thread int
	Index  int
}

// String implements fmt.Stringer.
func (r AccessRef) String() string { return fmt.Sprintf("T%d#%d", r.Thread, r.Index) }

// StaticAccess is one static access with its operation and address.
type StaticAccess struct {
	Ref  AccessRef
	Op   mem.Op
	Addr mem.Addr
}

// String implements fmt.Stringer.
func (a StaticAccess) String() string {
	return fmt.Sprintf("%s:%s(x%d)", a.Ref, a.Op, a.Addr)
}

// Pair is one ordered delay: After may not issue until Before is globally
// performed.
type Pair struct {
	Before, After AccessRef
}

// String implements fmt.Stringer.
func (p Pair) String() string { return fmt.Sprintf("%s -> %s", p.Before, p.After) }

// Analysis is the result of analyzing one program.
type Analysis struct {
	Accesses []StaticAccess
	Delays   []Pair
	// ConflictEdges counts cross-thread conflict edges, for diagnostics.
	ConflictEdges int
}

// DelayedBefore returns, per thread, a map from each access index to the
// indices of earlier same-thread accesses that must be globally performed
// first — the form the enforcing machine consumes.
func (a *Analysis) DelayedBefore(numThreads int) []map[int][]int {
	out := make([]map[int][]int, numThreads)
	for i := range out {
		out[i] = make(map[int][]int)
	}
	for _, d := range a.Delays {
		t := d.After.Thread
		out[t][d.After.Index] = append(out[t][d.After.Index], d.Before.Index)
	}
	return out
}

// Analyze extracts the static accesses of a branch-free program and computes
// its delay set. Programs with branches, jumps, or register-indexed addresses
// are rejected.
func Analyze(p *program.Program) (*Analysis, error) {
	an := &Analysis{}
	perThread := make([][]int, p.NumThreads()) // node ids per thread, in order
	for t, code := range p.Threads {
		idx := 0
		for pc, in := range code {
			switch in.Op {
			case program.IBeq, program.IBne, program.IBlt, program.IJmp:
				return nil, fmt.Errorf("delayset: thread %d has a branch at %d; the analysis requires branch-free programs", t, pc)
			}
			op, ok := in.MemOp()
			if !ok {
				continue
			}
			if in.UseAddrReg {
				return nil, fmt.Errorf("delayset: thread %d has a register-indexed address at %d; addresses must be static", t, pc)
			}
			an.Accesses = append(an.Accesses, StaticAccess{
				Ref:  AccessRef{Thread: t, Index: idx},
				Op:   op,
				Addr: in.Addr,
			})
			perThread[t] = append(perThread[t], len(an.Accesses)-1)
			idx++
		}
	}
	n := len(an.Accesses)
	// Adjacency: program-order successors (directed) plus conflict
	// neighbors (both directions).
	adj := make([][]int, n)
	for _, nodes := range perThread {
		for i := 1; i < len(nodes); i++ {
			adj[nodes[i-1]] = append(adj[nodes[i-1]], nodes[i])
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ai, aj := an.Accesses[i], an.Accesses[j]
			if ai.Ref.Thread == aj.Ref.Thread {
				continue
			}
			if ai.Addr != aj.Addr || !mem.Conflicts(ai.Op, aj.Op) {
				continue
			}
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
			an.ConflictEdges++
		}
	}
	// reach[v] = set of nodes reachable from v.
	reach := make([][]bool, n)
	for v := 0; v < n; v++ {
		seen := make([]bool, n)
		stack := []int{v}
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		reach[v] = seen
	}
	// Delay every ordered program pair closed into a cycle by the graph.
	for _, nodes := range perThread {
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				u, v := nodes[i], nodes[j]
				if reach[v][u] {
					an.Delays = append(an.Delays, Pair{
						Before: an.Accesses[u].Ref,
						After:  an.Accesses[v].Ref,
					})
				}
			}
		}
	}
	return an, nil
}
