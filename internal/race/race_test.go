package race

import (
	"math/rand"
	"sort"
	"testing"

	"weakorder/internal/core"
	"weakorder/internal/mem"
)

func TestVCBasics(t *testing.T) {
	a := NewVC(3)
	b := NewVC(3)
	if !a.LE(b) || !b.LE(a) {
		t.Fatal("zero clocks should be mutually LE")
	}
	a[1] = 5
	if a.LE(b) {
		t.Fatal("advanced clock LE zero clock")
	}
	if !b.LE(a) {
		t.Fatal("zero clock should be LE advanced clock")
	}
	b[2] = 7
	c := a.Copy()
	c.Join(b)
	if c[1] != 5 || c[2] != 7 {
		t.Fatalf("join wrong: %s", c)
	}
	if c.String() != "[0 5 7]" {
		t.Fatalf("string: %s", c)
	}
}

func buildHandoff() *mem.Execution {
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 1, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 1, Value: 1, WValue: 2})
	e.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})
	return e
}

func TestDetectorHandoffClean(t *testing.T) {
	races, err := CheckExecution(buildHandoff(), core.DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Fatalf("handoff should be race-free: %v", races)
	}
}

func TestDetectorFindsRace(t *testing.T) {
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpWrite, Addr: 0, Value: 2})
	races, err := CheckExecution(e, core.DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 1 {
		t.Fatalf("races = %v, want exactly one", races)
	}
}

func TestDetectorDRF1TestDoesNotRelease(t *testing.T) {
	// W(x); Test(s) ... TAS(s); R(x): clean under DRF0, racy under DRF1.
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncRead, Addr: 1, Value: 0})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 1, Value: 0, WValue: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})
	r0, err := CheckExecution(e, core.DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r0) != 0 {
		t.Fatalf("DRF0 should order via any sync pair: %v", r0)
	}
	r1, err := CheckExecution(e, core.DRF1{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != 1 {
		t.Fatalf("DRF1 should report the W/R race: %v", r1)
	}
}

// TestDetectorSyncRMWOrdersBothWays pins the RMW's dual role: a TestAndSet
// both acquires (its read component) and releases (its write component), so a
// handoff chained through two RMWs is clean even under DRF1 — unlike the
// Test/Unset split, where the direction matters.
func TestDetectorSyncRMWOrdersBothWays(t *testing.T) {
	// P1's TAS acquires P0's release and immediately re-releases, carrying
	// W(x0) transitively to P2: W ≤po TAS0 → TAS1 → TAS2 ≤po R.
	e := mem.NewExecution(3)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncRMW, Addr: 1, Value: 0, WValue: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 1, Value: 1, WValue: 2})
	e.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 2, Op: mem.OpSyncRMW, Addr: 1, Value: 2, WValue: 3})
	e.Append(mem.Access{Proc: 2, Op: mem.OpRead, Addr: 0, Value: 1})
	for _, m := range []core.SyncModel{core.DRF0{}, core.DRF1{}} {
		races, err := CheckExecution(e, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(races) != 0 {
			t.Fatalf("%s: RMW chain should transitively order all accesses: %v", m.Name(), races)
		}
	}
}

// TestDetectorDRF1UnsetDoesNotAcquire exercises the syntheticRelease gate on
// the acquire side: under DRF1 a write-only synchronization operation (Unset)
// observes nothing, so it must not inherit the location's release clock even
// though a release clock exists. The same execution is clean under DRF0,
// where any sync pair on the location synchronizes.
func TestDetectorDRF1UnsetDoesNotAcquire(t *testing.T) {
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 1, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncWrite, Addr: 1, Value: 2})
	e.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})
	r0, err := CheckExecution(e, core.DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r0) != 0 {
		t.Fatalf("DRF0: any sync pair orders, expected clean: %v", r0)
	}
	r1, err := CheckExecution(e, core.DRF1{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != 1 {
		t.Fatalf("DRF1: the second Unset acquires nothing, expected the W/R race: %v", r1)
	}
}

// TestDetectorDRF1ReleaseSurvivesIntermediateTest pins the release-clock
// bookkeeping behind syntheticRelease/syntheticAcquire: a read-only Test by a
// third party between the Unset and the acquiring Test must neither erase nor
// launder the release clock — the eventual acquirer still inherits the
// original release, and the bystander contributes nothing.
func TestDetectorDRF1ReleaseSurvivesIntermediateTest(t *testing.T) {
	e := mem.NewExecution(3)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 1, Value: 1})
	e.Append(mem.Access{Proc: 2, Op: mem.OpSyncRead, Addr: 1, Value: 1}) // bystander Test
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRead, Addr: 1, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})
	races, err := CheckExecution(e, core.DRF1{})
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Fatalf("DRF1: consumer acquires the producer's release despite bystander: %v", races)
	}
}

// TestDetectorSyncDataConflictIsARace documents that only sync-sync pairs are
// exempt from racing: a data write and a *synchronization* read of the same
// location on different processors, unordered by happens-before, is a race
// under every model.
func TestDetectorSyncDataConflictIsARace(t *testing.T) {
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRead, Addr: 0, Value: 1})
	for _, m := range []core.SyncModel{core.DRF0{}, core.DRF1{}} {
		races, err := CheckExecution(e, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(races) != 1 {
			t.Fatalf("%s: data/sync conflict on one location should race: %v", m.Name(), races)
		}
	}
}

// TestDetectorMinimalRacyVsDRFPair gives, per model, the smallest program
// pair separating racy from race-free — the boundary the fuzzer's DRF0
// classification stands on. Each clean execution differs from its racy
// sibling by exactly the synchronization the model credits.
func TestDetectorMinimalRacyVsDRFPair(t *testing.T) {
	// DRF0: unsynchronized W‖R races; any sync pair on a flag repairs it.
	racy0 := mem.NewExecution(2)
	racy0.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	racy0.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})
	clean0 := buildHandoff()

	// DRF1: release must write, acquire must read. The racy sibling uses a
	// read-only Test as the would-be release (the exact idiom Section 6
	// outlaws); the clean one uses Unset → Test in the proper direction.
	racy1 := mem.NewExecution(2)
	racy1.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	racy1.Append(mem.Access{Proc: 0, Op: mem.OpSyncRead, Addr: 1, Value: 0})
	racy1.Append(mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 1, Value: 0, WValue: 1})
	racy1.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})
	clean1 := mem.NewExecution(2)
	clean1.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	clean1.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 1, Value: 1})
	clean1.Append(mem.Access{Proc: 1, Op: mem.OpSyncRead, Addr: 1, Value: 1})
	clean1.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})

	cases := []struct {
		name  string
		model core.SyncModel
		exec  *mem.Execution
		races int
	}{
		{"DRF0 racy", core.DRF0{}, racy0, 1},
		{"DRF0 clean", core.DRF0{}, clean0, 0},
		{"DRF1 racy", core.DRF1{}, racy1, 1},
		{"DRF1 clean", core.DRF1{}, clean1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			races, err := CheckExecution(tc.exec, tc.model)
			if err != nil {
				t.Fatal(err)
			}
			if len(races) != tc.races {
				t.Fatalf("races = %v, want %d", races, tc.races)
			}
		})
	}
}

func TestDetectorStepRejectsBadProcessor(t *testing.T) {
	d := NewDetector(2, core.DRF0{})
	err := d.Step(mem.Event{Access: mem.Access{Proc: 5, Op: mem.OpRead, Addr: 0}})
	if err == nil {
		t.Fatal("expected out-of-range processor error")
	}
	if d.Events() != 0 && d.Events() != 1 {
		t.Fatalf("events = %d", d.Events())
	}
}

func TestDetectorRequiresCompletionOrder(t *testing.T) {
	e := buildHandoff()
	e.Completed = nil
	if _, err := CheckExecution(e, core.DRF0{}); err == nil {
		t.Fatal("expected error for missing completion order")
	}
}

// raceKey canonicalizes a race pair for set comparison.
func raceKey(r core.Race) [2]mem.EventID {
	a, b := r.A.ID, r.B.ID
	if a > b {
		a, b = b, a
	}
	return [2]mem.EventID{a, b}
}

// randomExec builds a random idealized execution: random atomic ops against a
// memory, so read values are consistent.
func randomExec(rng *rand.Rand) *mem.Execution {
	nproc := 2 + rng.Intn(3)
	naddr := 2 + rng.Intn(3)
	nsync := 1 + rng.Intn(2)
	nops := 4 + rng.Intn(14)
	memory := map[mem.Addr]mem.Value{}
	e := mem.NewExecution(nproc)
	for k := 0; k < nops; k++ {
		p := mem.ProcID(rng.Intn(nproc))
		if rng.Intn(100) < 35 {
			a := mem.Addr(100 + rng.Intn(nsync))
			switch rng.Intn(3) {
			case 0:
				e.Append(mem.Access{Proc: p, Op: mem.OpSyncRead, Addr: a, Value: memory[a]})
			case 1:
				v := mem.Value(rng.Intn(4))
				memory[a] = v
				e.Append(mem.Access{Proc: p, Op: mem.OpSyncWrite, Addr: a, Value: v})
			default:
				old := memory[a]
				memory[a] = old + 1
				e.Append(mem.Access{Proc: p, Op: mem.OpSyncRMW, Addr: a, Value: old, WValue: old + 1})
			}
			continue
		}
		a := mem.Addr(rng.Intn(naddr))
		if rng.Intn(2) == 0 {
			e.Append(mem.Access{Proc: p, Op: mem.OpRead, Addr: a, Value: memory[a]})
		} else {
			v := mem.Value(rng.Intn(4))
			memory[a] = v
			e.Append(mem.Access{Proc: p, Op: mem.OpWrite, Addr: a, Value: v})
		}
	}
	return e
}

// TestDetectorAgreesWithReference cross-checks the vector-clock detector
// against core.CheckExecution's O(n²) bit-matrix reference on random
// executions, under both synchronization models.
func TestDetectorAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	models := []core.SyncModel{core.DRF0{}, core.DRF1{}}
	for iter := 0; iter < 300; iter++ {
		e := randomExec(rng)
		for _, m := range models {
			want, err := core.CheckExecution(e, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CheckExecution(e, m)
			if err != nil {
				t.Fatal(err)
			}
			wk := make(map[[2]mem.EventID]bool)
			for _, r := range want.Races {
				wk[raceKey(r)] = true
			}
			gk := make(map[[2]mem.EventID]bool)
			for _, r := range got {
				gk[raceKey(r)] = true
			}
			if len(wk) != len(gk) {
				t.Fatalf("iter %d model %s: reference %d races, detector %d\nexec:\n%s",
					iter, m.Name(), len(wk), len(gk), e)
			}
			keys := make([][2]mem.EventID, 0, len(wk))
			for k := range wk {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i][0] != keys[j][0] {
					return keys[i][0] < keys[j][0]
				}
				return keys[i][1] < keys[j][1]
			})
			for _, k := range keys {
				if !gk[k] {
					t.Fatalf("iter %d model %s: detector missed race %v\nexec:\n%s", iter, m.Name(), k, e)
				}
			}
		}
	}
}
