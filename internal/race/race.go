// Package race implements a dynamic happens-before data-race detector over
// idealized executions, in the spirit of Netzer & Miller's race detection
// work cited by the paper. It processes an execution's events in completion
// order, maintaining vector clocks, and reports every pair of conflicting
// accesses unordered by happens-before.
//
// The detector is an O(n·p)-per-event alternative to internal/core's
// O(n²)-pair bit-matrix reference; the two are checked against each other by
// property-based tests. Like core, it supports both the DRF0 edge rule (any
// two synchronization operations on the same location synchronize) and the
// DRF1 refinement (read-only synchronization does not release).
package race

import (
	"fmt"

	"weakorder/internal/core"
	"weakorder/internal/mem"
)

// VC is a vector clock over processors.
type VC []uint64

// NewVC returns the zero clock for n processors.
func NewVC(n int) VC { return make(VC, n) }

// Copy returns an independent copy.
func (v VC) Copy() VC { return append(VC(nil), v...) }

// Join sets v to the pointwise maximum of v and o.
func (v VC) Join(o VC) {
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// LE reports whether v ≤ o pointwise (v happens-before-or-equal o).
func (v VC) LE(o VC) bool {
	for i, x := range v {
		if x > o[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (v VC) String() string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d", x)
	}
	return s + "]"
}

// accessRecord remembers one prior access for conflict checking: the event
// and the issuing processor's clock at the time of the access.
type accessRecord struct {
	ev mem.Event
	at VC
}

// locState tracks the access history of one location. Full histories (not
// just epochs) are kept so every racing *pair* is reported, matching the
// reference checker exactly; executions here are small by construction.
type locState struct {
	reads  []accessRecord
	writes []accessRecord
	// release is the clock a synchronizing acquirer of this location
	// inherits (the join of releasing processors' clocks).
	release VC
}

// Detector is the streaming race detector. Feed events in completion order
// via Step; collect races from Races.
type Detector struct {
	model  core.SyncModel
	clocks []VC
	locs   map[mem.Addr]*locState
	races  []core.Race
	nproc  int
	seen   int
}

// NewDetector builds a detector for n processors under the given model
// (core.DRF0{} or core.DRF1{}).
func NewDetector(n int, model core.SyncModel) *Detector {
	d := &Detector{model: model, locs: make(map[mem.Addr]*locState), nproc: n}
	for i := 0; i < n; i++ {
		d.clocks = append(d.clocks, NewVC(n))
	}
	return d
}

// Races returns the races found so far.
func (d *Detector) Races() []core.Race { return d.races }

// Events returns the number of events processed.
func (d *Detector) Events() int { return d.seen }

// Step processes the next event in completion order.
func (d *Detector) Step(ev mem.Event) error {
	p := int(ev.Proc)
	if p < 0 || p >= d.nproc {
		return fmt.Errorf("race: event %v has processor out of range", ev)
	}
	d.seen++
	ls := d.locs[ev.Addr]
	if ls == nil {
		ls = &locState{}
		d.locs[ev.Addr] = ls
	}
	me := d.clocks[p]

	if ev.Op.IsSync() {
		// Acquire: inherit the location's release clock if the model lets
		// prior syncs here order us. The model's edge rule is evaluated
		// pairwise at release time (see below), so the release clock
		// already contains exactly the orderable history.
		if ls.release != nil && d.model.SyncEdge(syntheticRelease(ev.Addr), ev) {
			me.Join(ls.release)
		}
		// Tick after acquiring so subsequent accesses are ordered after.
		me[p]++
		// Release: contribute this processor's clock to the location if the
		// model lets this sync order later syncs.
		if d.model.SyncEdge(ev, syntheticAcquire(ev.Addr)) {
			if ls.release == nil {
				ls.release = NewVC(d.nproc)
			}
			ls.release.Join(me)
		}
		// Synchronization operations never race with each other (hardware
		// arbitration, cf. core.CheckExecution); conflicts against *data*
		// accesses on the same location still count.
		d.checkConflicts(ls, ev, me, true)
		d.recordAccess(ls, ev, me)
		return nil
	}

	// Data access.
	d.checkConflicts(ls, ev, me, false)
	me[p]++
	d.recordAccess(ls, ev, me)
	return nil
}

// syntheticRelease/syntheticAcquire build representative events for the
// model's edge rule. DRF0 ignores the operands entirely; DRF1 only inspects
// Op.Writes() of the releaser and Op.Reads() of the acquirer, so a synthetic
// counterpart with full read-write capability asks "could *any* prior
// (resp. later) sync be ordered with this one?". The pairwise precision is
// recovered because releases only ever *contribute* their clock when the
// releaser side passes, and acquires only inherit when the acquirer side
// passes — exactly the conjunction DRF1's rule requires.
func syntheticRelease(a mem.Addr) mem.Event {
	return mem.Event{Access: mem.Access{Op: mem.OpSyncRMW, Addr: a}}
}

func syntheticAcquire(a mem.Addr) mem.Event {
	return mem.Event{Access: mem.Access{Op: mem.OpSyncRMW, Addr: a}}
}

// checkConflicts reports races between ev and recorded accesses. skipSync
// suppresses conflicts against other synchronization operations.
func (d *Detector) checkConflicts(ls *locState, ev mem.Event, me VC, skipSync bool) {
	check := func(rec accessRecord) {
		if skipSync && rec.ev.Op.IsSync() {
			return
		}
		if ev.Op.IsSync() && rec.ev.Op.IsSync() {
			return
		}
		if rec.ev.Proc == ev.Proc {
			return // program order always orders same-processor accesses
		}
		if !rec.at.LE(me) {
			d.races = append(d.races, core.Race{A: rec.ev, B: ev})
		}
	}
	if ev.Op.Writes() {
		for _, r := range ls.reads {
			check(r)
		}
	}
	for _, w := range ls.writes {
		check(w)
	}
}

// recordAccess stores the access with the processor's post-access clock.
func (d *Detector) recordAccess(ls *locState, ev mem.Event, me VC) {
	rec := accessRecord{ev: ev, at: me.Copy()}
	if ev.Op.Reads() {
		ls.reads = append(ls.reads, rec)
	}
	if ev.Op.Writes() {
		ls.writes = append(ls.writes, rec)
	}
}

// CheckExecution runs the detector over a complete idealized execution.
func CheckExecution(e *mem.Execution, model core.SyncModel) ([]core.Race, error) {
	if e.Completed == nil {
		return nil, fmt.Errorf("race: execution has no completion order")
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("race: invalid execution: %w", err)
	}
	d := NewDetector(e.NumProcs, model)
	for _, id := range e.Completed {
		if err := d.Step(e.Event(id)); err != nil {
			return nil, err
		}
	}
	return d.Races(), nil
}
