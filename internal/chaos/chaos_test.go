package chaos

import (
	"testing"

	"weakorder/internal/core"
	"weakorder/internal/faults"
	"weakorder/internal/fuzz"
	"weakorder/internal/litmus"
	"weakorder/internal/model"
	"weakorder/internal/program"
	"weakorder/internal/workload"
)

// litmusSeeds is the tier-1 fault-seed sweep over the corpus; the nightly
// chaos job extends it.
var litmusSeeds = []int64{1, 7, 1234}

// TestChaosLitmusSweep runs every corpus litmus test on the timed def2
// machine under default fault rates across a seed sweep: every run must
// complete, and DRF0 programs must land inside their SC outcome set.
func TestChaosLitmusSweep(t *testing.T) {
	rates := faults.DefaultRates()
	for _, tst := range litmus.Corpus() {
		var sc map[string]bool
		if tst.DRF0 { // racy programs: completion only
			scOut, err := SCOutcomes(tst.Prog, nil)
			if err != nil {
				t.Fatalf("%s: %v", tst.Name, err)
			}
			sc = CanonicalSet(scOut)
		}
		for _, seed := range litmusSeeds {
			c, err := RunCase(tst.Prog, seed, rates, sc)
			if err != nil {
				t.Fatalf("completion failed: %v", err)
			}
			if c.Checked && !c.Contained {
				t.Errorf("%s seed %d: outcome escaped the SC set under faults:\n%s\ninjections:\n%s",
					tst.Name, seed, c.Canonical, c.InjectionLog)
			}
		}
	}
}

// randomProgram returns the i-th chaos program: DRF0 by construction,
// alternating between the message-passing-guarded and critical-section
// shapes so both protocols' sync paths are exercised.
func randomProgram(i int) *program.Program {
	seed := int64(1_000 + i)
	if i%2 == 0 {
		return workload.RandomGuarded(seed, 2, 3)
	}
	return workload.RandomDRF(seed, 2, 2, 2)
}

// TestChaosRandomSweep is the acceptance sweep: 256 random DRF0 programs,
// each under a distinct fault seed, must complete under retry with outcomes
// contained in their SC sets.
func TestChaosRandomSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is tier-1 but not -short")
	}
	rates := faults.DefaultRates()
	injected := 0
	for i := 0; i < 256; i++ {
		p := randomProgram(i)
		scOut, err := SCOutcomes(p, nil)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		c, err := RunCase(p, int64(i), rates, CanonicalSet(scOut))
		if err != nil {
			t.Fatalf("completion failed: %v", err)
		}
		if !c.Contained {
			t.Errorf("%s seed %d: outcome escaped the SC set under faults:\n%s\ninjections:\n%s",
				p.Name, c.Seed, c.Canonical, c.InjectionLog)
		}
		injected += c.Faults
	}
	if injected == 0 {
		t.Fatal("sweep injected no faults: the harness is not testing anything")
	}
}

// TestChaosClassifiedRacyPrograms runs unguarded random programs (classified
// by the DRF0 checker) for the completion property; containment is asserted
// only for the ones that happen to be DRF0.
func TestChaosClassifiedRacyPrograms(t *testing.T) {
	rates := faults.DefaultRates()
	x := fuzz.DefaultExplorer()
	cfg := workload.RandomConfig{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 6}
	for i := 0; i < 16; i++ {
		p := workload.Random(int64(500+i), cfg)
		enum := &model.Enumerator{Prog: p, Explorer: x}
		drf, err := core.CheckProgram(enum, core.DRF0{}, 1)
		if err != nil {
			t.Fatalf("%s: DRF0 check: %v", p.Name, err)
		}
		var sc map[string]bool
		if drf.Obeys() {
			scOut, err := SCOutcomes(p, x)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			sc = CanonicalSet(scOut)
		}
		c, err := RunCase(p, int64(i), rates, sc)
		if err != nil {
			t.Fatalf("completion failed: %v", err)
		}
		if c.Checked && !c.Contained {
			t.Errorf("%s seed %d: DRF0 outcome escaped the SC set:\n%s", p.Name, c.Seed, c.Canonical)
		}
	}
}

// TestChaosReplayByteIdentical asserts the determinism property: a fixed
// (program, fault seed) pair reproduces the same outcome and the same
// injection log, byte for byte.
func TestChaosReplayByteIdentical(t *testing.T) {
	rates := faults.DefaultRates()
	progs := []*program.Program{
		workload.RandomGuarded(42, 3, 6),
		workload.RandomDRF(43, 3, 2, 3),
		workload.Fig3(2, 10),
	}
	for _, p := range progs {
		for _, seed := range []int64{1, 99} {
			if err := CheckReplay(p, seed, rates); err != nil {
				t.Error(err)
			}
		}
	}
}

// TestChaosRecoveryMachineryActivates runs a contended workload long enough
// that drops and duplicates actually trigger retries and tolerated-message
// suppression — guarding against a harness that silently injects nothing.
func TestChaosRecoveryMachineryActivates(t *testing.T) {
	rates := faults.Rates{Drop: 0.10, Dup: 0.10, Delay: 0.10, Reorder: 0.05, MaxDelay: 16}
	var faultsSeen, retries, tolerated int64
	for seed := int64(0); seed < 8; seed++ {
		p := workload.Fig3(3, 20)
		c, err := RunCase(p, seed, rates, nil)
		if err != nil {
			t.Fatalf("completion failed: %v", err)
		}
		faultsSeen += int64(c.Faults)
		retries += c.Retries
		tolerated += c.Tolerated
	}
	if faultsSeen == 0 {
		t.Fatal("no faults injected")
	}
	if retries == 0 {
		t.Error("drops never triggered a retry")
	}
	if tolerated == 0 {
		t.Error("duplicates never exercised tolerated-message suppression")
	}
}
