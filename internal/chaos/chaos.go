// Package chaos is the differential chaos harness: it runs programs on the
// *timed* Definition-2 machine (internal/machine with proc.PolicyWODef2) over
// a fault-injecting fabric (internal/faults) and checks the three contract
// properties the hardening must provide:
//
//   - Completion: every run finishes under bounded retry — no deadlock, no
//     retry exhaustion, no watchdog firing at the documented default rates.
//   - Containment: for DRF0 programs the observed outcome (reads + final
//     memory) lies inside the program's SC outcome set computed by the
//     model-level explorer — the paper's Definition-2 contract, now asserted
//     under an adversarial fabric.
//   - Replay: a fixed (program, fault seed) pair reproduces byte-identically
//     — same outcome key, same injection log — so any failure is a
//     deterministic reproducer.
//
// The harness is driven by this package's tests (litmus corpus + random
// programs across a seed sweep), by cmd/wofuzz's -chaos mode, and by the CI
// chaos jobs.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/core"
	"weakorder/internal/faults"
	"weakorder/internal/fuzz"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/model"
	"weakorder/internal/proc"
	"weakorder/internal/program"
)

// MachineConfig returns the chaos-campaign machine configuration: the
// Definition-2 timed machine on the network fabric with trace recording and
// fault injection at the given seed and rates (zero rates mean the documented
// defaults).
func MachineConfig(faultSeed int64, rates faults.Rates) machine.Config {
	cfg := machine.NewConfig(proc.PolicyWODef2)
	cfg.RecordTrace = true
	cfg.Faults = true
	cfg.FaultSeed = faultSeed
	cfg.FaultRates = rates
	return cfg
}

// TimedOutcome extracts the paper's result notion from a timed run: the
// values returned by all reads (from the recorded trace) plus the final
// memory state. Comparable by Key() with the model explorer's outcomes, whose
// final state covers the same program address set.
func TimedOutcome(r *machine.Result) mem.Result {
	out := mem.Result{Reads: make(map[mem.ReadKey]mem.Value), Final: r.FinalMem}
	if r.Trace != nil {
		for _, ev := range r.Trace.Events {
			if ev.Op.Reads() {
				out.Reads[mem.ReadKey{Proc: ev.Proc, Index: ev.Index}] = ev.Value
			}
		}
	}
	return out
}

// SCOutcomes computes the program's SC outcome set with the model explorer
// (nil means fuzz.DefaultExplorer()).
func SCOutcomes(p *program.Program, x *model.Explorer) (core.OutcomeSet, error) {
	if x == nil {
		x = fuzz.DefaultExplorer()
	}
	scOut, _, err := x.Outcomes(model.NewSC(p))
	if err != nil {
		return nil, fmt.Errorf("chaos: SC outcomes of %s: %w", p.Name, err)
	}
	return scOut, nil
}

// CanonicalKey renders a result spin-insensitively: per processor, reads are
// taken in program order, runs of consecutive equal values are collapsed to
// one, and positions renumbered densely; the final memory state is appended
// unchanged. A spin loop that polls its flag 3 or 300 times before observing
// the release yields the same canonical key, so outcomes of the timed machine
// (whose spin counts depend on latencies and injected faults) are comparable
// with the model explorer's bounded executions. This is stutter equivalence
// on each processor's read observation sequence; both sides of a containment
// check must use it.
func CanonicalKey(r mem.Result) string {
	perProc := make(map[mem.ProcID][]mem.ReadKey)
	for k := range r.Reads {
		perProc[k.Proc] = append(perProc[k.Proc], k)
	}
	procs := make([]mem.ProcID, 0, len(perProc))
	for p := range perProc {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	var b strings.Builder
	for _, p := range procs {
		ks := perProc[p]
		sort.Slice(ks, func(i, j int) bool { return ks[i].Index < ks[j].Index })
		pos := 0
		for i, k := range ks {
			v := r.Reads[k]
			if i > 0 && r.Reads[ks[i-1]] == v {
				continue // stutter: same value as the previous read
			}
			fmt.Fprintf(&b, "P%d.%d=%d;", p, pos, v)
			pos++
		}
	}
	b.WriteByte('|')
	addrs := make([]mem.Addr, 0, len(r.Final))
	for a := range r.Final {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(&b, "x%d=%d;", a, r.Final[a])
	}
	return b.String()
}

// CanonicalSet maps an outcome set to its canonical-key form for containment
// checks against timed outcomes.
func CanonicalSet(out core.OutcomeSet) map[string]bool {
	set := make(map[string]bool, len(out))
	for _, r := range out {
		set[CanonicalKey(r)] = true
	}
	return set
}

// Case is the verdict of one (program, fault seed) chaos run.
type Case struct {
	Prog string
	Seed int64
	// OutcomeKey is the exact rendering of the observed result (the replay
	// fingerprint); Canonical is its spin-insensitive form, the one
	// containment is decided on.
	OutcomeKey string
	Canonical  string
	// InjectionLog is the canonical fault log; together with OutcomeKey it
	// is the replay fingerprint.
	InjectionLog string
	// Faults is the number of injected faults.
	Faults int
	// Retries/Tolerated count the recovery machinery's activations, summed
	// over caches and the directory.
	Retries   int64
	Tolerated int64
	// Checked marks that containment was decided (an SC set was supplied);
	// Contained is its verdict.
	Checked   bool
	Contained bool
}

// RunCase runs one program once under the given fault seed and rates, and
// checks the canonical outcome against sc when non-nil (a canonical SC set
// from CanonicalSet). A non-nil error means the completion property failed
// (protocol error, retry exhaustion, watchdog, deadlock, or budget).
func RunCase(p *program.Program, faultSeed int64, rates faults.Rates, sc map[string]bool) (*Case, error) {
	r, err := machine.Run(p, MachineConfig(faultSeed, rates))
	if err != nil {
		return nil, fmt.Errorf("chaos: %s seed %d: %w", p.Name, faultSeed, err)
	}
	out := TimedOutcome(r)
	c := &Case{
		Prog:         p.Name,
		Seed:         faultSeed,
		OutcomeKey:   out.Key(),
		Canonical:    CanonicalKey(out),
		InjectionLog: r.InjectionLog,
		Faults:       len(r.Injections),
	}
	for _, cs := range r.CacheStats {
		c.Retries += cs.Get("request_retries") + cs.Get("nacks_received")
		for _, k := range []string{"stale_data", "dup_data", "stale_writeack", "stale_inv", "stale_fwd", "stale_update", "stale_nack"} {
			c.Tolerated += cs.Get("tolerated_" + k)
		}
	}
	for _, k := range []string{"dup_request", "stray_ack", "stale_ack", "dup_ack", "stray_downgrade", "stale_downgrade", "stray_transfer", "stale_transfer"} {
		c.Tolerated += r.DirStats.Get("tolerated_" + k)
	}
	if sc != nil {
		c.Checked = true
		c.Contained = sc[c.Canonical]
	}
	return c, nil
}

// CheckReplay runs the same (program, fault seed) twice and returns an error
// unless both runs are byte-identical in outcome key and injection log.
// (Programs are immutable specs, so rerunning one is safe.)
func CheckReplay(p *program.Program, faultSeed int64, rates faults.Rates) error {
	a, err := RunCase(p, faultSeed, rates, nil)
	if err != nil {
		return err
	}
	b, err := RunCase(p, faultSeed, rates, nil)
	if err != nil {
		return err
	}
	if a.OutcomeKey != b.OutcomeKey {
		return fmt.Errorf("chaos: replay diverged on outcome for %s seed %d:\n  first:  %s\n  second: %s",
			a.Prog, faultSeed, a.OutcomeKey, b.OutcomeKey)
	}
	if a.InjectionLog != b.InjectionLog {
		return fmt.Errorf("chaos: replay diverged on injection log for %s seed %d:\n--- first ---\n%s--- second ---\n%s",
			a.Prog, faultSeed, a.InjectionLog, b.InjectionLog)
	}
	return nil
}
