// Package tracefmt defines the versioned, length-prefixed binary format for
// open-loop workload traces: the arrival stream an openloop.Generator feeds
// the timed machine, recorded so a multi-million-operation run is
// byte-reproducible from the trace alone (no spec, no seed).
//
// Layout (all integers are unsigned varints unless noted; signed values use
// zigzag varints):
//
//	magic "WOTF" | version byte |
//	header frame | record frame* | footer frame
//
// Every frame is a uvarint byte length followed by that many payload bytes.
// The header payload holds the processor count, the workload name, and the
// initial-memory table (address/value pairs, ascending address). A record
// frame's payload is
//
//	proc, kind byte, dt, addr, aux, value zz, arg zz
//
// where dt is the arrival-time delta against the previous record of the SAME
// processor — per-processor arrival times are monotone by construction, so
// deltas are non-negative and the encoding makes time regressions
// unrepresentable. The footer payload is a kind byte 0xFF, the record count,
// and an FNV-1a checksum (8 bytes, big-endian) over the header payload and
// every record payload, so a flipped bit anywhere in the data is caught even
// when the damaged frame still parses. Varints must be minimal-length; the
// reader rejects non-canonical encodings, which gives each trace exactly one
// byte representation (what replay byte-identity checks lean on).
//
// The decode discipline mirrors internal/trace: the input is untrusted, so
// every length and count is bounds-checked before allocation, structural
// damage is ErrFormat, a clean cut mid-structure is ErrTruncated (both
// matchable with errors.Is), and a native fuzz target drives the reader.
// Reading is streaming: the Reader holds one frame at a time, never the
// whole trace.
//
// Versioning rule: the version byte names the complete frame vocabulary. Any
// change to frame layout, record fields, or kind semantics bumps it, and
// readers reject versions they do not know — there are no in-band feature
// flags to misinterpret.
package tracefmt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"weakorder/internal/mem"
	"weakorder/internal/sim"
)

// Version is the current format version.
const Version = 1

// magic identifies a workload trace file.
var magic = [4]byte{'W', 'O', 'T', 'F'}

// Format bounds. Untrusted input may declare any shape; everything that
// sizes an allocation or a loop is capped.
const (
	// MaxProcs bounds the header's processor count (same cap as
	// internal/trace documents).
	MaxProcs = 4096
	// MaxNameLen bounds the workload name.
	MaxNameLen = 4096
	// MaxInit bounds the initial-memory table.
	MaxInit = 1 << 20
	// maxRecordLen bounds one record frame's payload: 7 fields of at most
	// 10 varint bytes each is 70; anything longer is structural damage.
	maxRecordLen = 70
	// maxHeaderLen bounds the header frame's payload (name plus a full
	// init table of 10-byte varint pairs).
	maxHeaderLen = 16 + MaxNameLen + MaxInit*20
	// footerLen is the exact footer payload length: kind byte, record
	// count (up to 10), checksum (8).
	maxFooterLen = 1 + 10 + 8
	// footerKind marks the footer frame's payload; record payloads start
	// with a proc varint, whose first byte for any legal proc (< MaxProcs)
	// never collides with it in a well-formed stream because the kind is
	// checked after the frame is length-delimited anyway.
	footerKind = 0xFF
)

// Typed errors, matched with errors.Is.
var (
	// ErrFormat reports structural damage: bad magic, unknown version or
	// kind, out-of-range counts, checksum mismatch, trailing garbage.
	ErrFormat = errors.New("tracefmt: malformed trace")
	// ErrTruncated reports a clean cut: the stream ended inside a frame or
	// before the footer.
	ErrTruncated = errors.New("tracefmt: truncated trace")
)

// Kind is the operation vocabulary of an arrival record. Composite kinds
// (LockAcquire, AwaitGE, Barrier) expand to spin loops at compile time; they
// are first-class in the format so a recorded trace stays compact and the
// replayer reproduces the exact same fragment codes the generator injected.
type Kind uint8

const (
	// KindRead is an ordinary data read of Addr.
	KindRead Kind = iota
	// KindWrite is an ordinary data write of Value to Addr.
	KindWrite
	// KindSyncRead is a read-only synchronization operation (Test).
	KindSyncRead
	// KindSyncWrite is a write-only synchronization operation of Value.
	KindSyncWrite
	// KindTAS atomically swaps Value into Addr.
	KindTAS
	// KindFetchAdd atomically adds Value to Addr.
	KindFetchAdd
	// KindWork is Value cycles of pure local computation (no memory op).
	KindWork
	// KindLockAcquire spins TestAndSet(Addr, 1) until it reads 0.
	KindLockAcquire
	// KindLockRelease releases Addr with a synchronization write of 0.
	KindLockRelease
	// KindAwaitGE spins on sync reads of Addr until the value is >= Value.
	KindAwaitGE
	// KindBarrier is one sense-reversing barrier episode: FetchAdd on the
	// counter Addr; the last arriver (previous count == Arg) resets the
	// counter and sync-writes the new sense Value to Aux; everyone else
	// awaits sense >= Value.
	KindBarrier
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := [...]string{"read", "write", "sync-read", "sync-write", "tas",
		"fetch-add", "work", "lock-acquire", "lock-release", "await-ge", "barrier"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one open-loop arrival: at simulated time At, processor Proc
// begins the operation Kind describes. Addr/Aux/Value/Arg are interpreted
// per kind (see the Kind constants); unused fields are zero.
type Record struct {
	Proc  int
	At    sim.Time
	Kind  Kind
	Addr  mem.Addr
	Aux   mem.Addr
	Value mem.Value
	Arg   mem.Value
}

// Header describes the run a trace belongs to: enough to rebuild the
// machine's skeleton program (thread count, name, initial memory) from the
// trace alone.
type Header struct {
	Procs int
	Name  string
	Init  map[mem.Addr]mem.Value
}

// Writer streams records to an output in wire format. Writes are buffered;
// Close writes the footer and flushes. The Writer enforces the same
// invariants the Reader checks, so an ill-formed trace cannot be produced by
// accident: per-processor times must be monotone and procs in range.
type Writer struct {
	w      *bufio.Writer
	hdr    Header
	last   []sim.Time
	count  uint64
	sum    uint64
	buf    []byte
	closed bool
}

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// NewWriter writes the magic, version, and header and returns a Writer
// ready for records.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	if hdr.Procs < 1 || hdr.Procs > MaxProcs {
		return nil, fmt.Errorf("%w: processor count %d out of range [1,%d]", ErrFormat, hdr.Procs, MaxProcs)
	}
	if len(hdr.Name) > MaxNameLen {
		return nil, fmt.Errorf("%w: name length %d exceeds %d", ErrFormat, len(hdr.Name), MaxNameLen)
	}
	if len(hdr.Init) > MaxInit {
		return nil, fmt.Errorf("%w: init table size %d exceeds %d", ErrFormat, len(hdr.Init), MaxInit)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(Version); err != nil {
		return nil, err
	}
	// Header payload: procs, name, init table in ascending address order
	// (maps are unordered; the file must be deterministic).
	var p []byte
	p = binary.AppendUvarint(p, uint64(hdr.Procs))
	p = binary.AppendUvarint(p, uint64(len(hdr.Name)))
	p = append(p, hdr.Name...)
	p = binary.AppendUvarint(p, uint64(len(hdr.Init)))
	addrs := make([]mem.Addr, 0, len(hdr.Init))
	for a := range hdr.Init {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		p = binary.AppendUvarint(p, uint64(a))
		p = appendZigzag(p, int64(hdr.Init[a]))
	}
	if err := writeFrame(bw, p); err != nil {
		return nil, err
	}
	return &Writer{
		w:    bw,
		hdr:  Header{Procs: hdr.Procs, Name: hdr.Name, Init: hdr.Init},
		last: make([]sim.Time, hdr.Procs),
		sum:  fnvAdd(fnvOffset, p),
	}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if w.closed {
		return fmt.Errorf("tracefmt: write after Close")
	}
	if r.Proc < 0 || r.Proc >= w.hdr.Procs {
		return fmt.Errorf("%w: record processor P%d out of range [0,%d)", ErrFormat, r.Proc, w.hdr.Procs)
	}
	if r.Kind >= numKinds {
		return fmt.Errorf("%w: unknown record kind %d", ErrFormat, r.Kind)
	}
	if r.At < w.last[r.Proc] {
		return fmt.Errorf("%w: P%d arrival time %d before previous %d", ErrFormat, r.Proc, r.At, w.last[r.Proc])
	}
	p := w.buf[:0]
	p = binary.AppendUvarint(p, uint64(r.Proc))
	p = append(p, byte(r.Kind))
	p = binary.AppendUvarint(p, uint64(r.At-w.last[r.Proc]))
	p = binary.AppendUvarint(p, uint64(r.Addr))
	p = binary.AppendUvarint(p, uint64(r.Aux))
	p = appendZigzag(p, int64(r.Value))
	p = appendZigzag(p, int64(r.Arg))
	w.buf = p
	w.last[r.Proc] = r.At
	w.count++
	w.sum = fnvAdd(w.sum, p)
	return writeFrame(w.w, p)
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Close writes the footer frame and flushes. The Writer is unusable after.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	p := w.buf[:0]
	p = append(p, footerKind)
	p = binary.AppendUvarint(p, w.count)
	p = binary.BigEndian.AppendUint64(p, w.sum)
	if err := writeFrame(w.w, p); err != nil {
		return err
	}
	return w.w.Flush()
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w *bufio.Writer, payload []byte) error {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// appendZigzag appends a zigzag-varint encoding of v.
func appendZigzag(p []byte, v int64) []byte {
	return binary.AppendUvarint(p, uint64(v<<1)^uint64(v>>63))
}

// fnvAdd folds p into an FNV-1a running state.
func fnvAdd(sum uint64, p []byte) uint64 {
	for _, b := range p {
		sum ^= uint64(b)
		sum *= fnvPrime
	}
	return sum
}

// Reader streams records from wire format, validating as it goes. Memory use
// is one frame buffer regardless of trace length.
type Reader struct {
	r     *bufio.Reader
	hdr   Header
	last  []sim.Time
	count uint64
	sum   uint64
	buf   []byte
	done  bool
}

// NewReader consumes the magic, version, and header; records then stream
// from Next.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [5]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, truncOr(err, "magic")
	}
	if [4]byte(m[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, m[:4])
	}
	if m[4] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrFormat, m[4], Version)
	}
	p, err := readFrame(br, maxHeaderLen, nil)
	if err != nil {
		return nil, err
	}
	d := decoder{p: p}
	procs := d.uvarint("procs")
	if procs < 1 || procs > MaxProcs {
		return nil, fmt.Errorf("%w: processor count %d out of range [1,%d]", ErrFormat, procs, MaxProcs)
	}
	nameLen := d.uvarint("name length")
	if nameLen > MaxNameLen {
		return nil, fmt.Errorf("%w: name length %d exceeds %d", ErrFormat, nameLen, MaxNameLen)
	}
	name := d.bytes("name", int(nameLen))
	ninit := d.uvarint("init count")
	if ninit > MaxInit {
		return nil, fmt.Errorf("%w: init table size %d exceeds %d", ErrFormat, ninit, MaxInit)
	}
	var init map[mem.Addr]mem.Value
	var prevAddr int64 = -1
	if ninit > 0 {
		init = make(map[mem.Addr]mem.Value, ninit)
		for i := uint64(0); i < ninit; i++ {
			a := d.uvarint("init address")
			v := d.zigzag("init value")
			if a > 1<<32-1 {
				return nil, fmt.Errorf("%w: init address %d exceeds 32 bits", ErrFormat, a)
			}
			if int64(a) <= prevAddr {
				return nil, fmt.Errorf("%w: init table not in ascending address order at %d", ErrFormat, a)
			}
			prevAddr = int64(a)
			init[mem.Addr(a)] = mem.Value(v)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.p) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes in header", ErrFormat, len(d.p)-d.off)
	}
	return &Reader{
		r:    br,
		hdr:  Header{Procs: int(procs), Name: string(name), Init: init},
		last: make([]sim.Time, procs),
		sum:  fnvAdd(fnvOffset, p),
	}, nil
}

// Header returns the trace's header.
func (r *Reader) Header() Header { return r.hdr }

// Next returns the next record. After the last record it validates the
// footer (count and checksum) and the absence of trailing bytes, then
// returns io.EOF.
func (r *Reader) Next() (Record, error) {
	if r.done {
		return Record{}, io.EOF
	}
	p, err := readFrame(r.r, maxRecordLen, r.buf)
	if err != nil {
		return Record{}, err
	}
	r.buf = p[:0]
	if len(p) == 0 {
		return Record{}, fmt.Errorf("%w: empty frame", ErrFormat)
	}
	if p[0] == footerKind {
		return Record{}, r.finish(p)
	}
	r.sum = fnvAdd(r.sum, p)
	r.count++
	d := decoder{p: p}
	proc := d.uvarint("record proc")
	kind := d.byte("record kind")
	dt := d.uvarint("record dt")
	addr := d.uvarint("record addr")
	aux := d.uvarint("record aux")
	value := d.zigzag("record value")
	arg := d.zigzag("record arg")
	if d.err != nil {
		return Record{}, d.err
	}
	if len(d.p) != d.off {
		return Record{}, fmt.Errorf("%w: %d trailing bytes in record", ErrFormat, len(d.p)-d.off)
	}
	if proc >= uint64(r.hdr.Procs) {
		return Record{}, fmt.Errorf("%w: record processor P%d out of range [0,%d)", ErrFormat, proc, r.hdr.Procs)
	}
	if Kind(kind) >= numKinds {
		return Record{}, fmt.Errorf("%w: unknown record kind %d", ErrFormat, kind)
	}
	if addr > 1<<32-1 || aux > 1<<32-1 {
		return Record{}, fmt.Errorf("%w: address exceeds 32 bits", ErrFormat)
	}
	at := r.last[proc] + sim.Time(dt)
	if at < r.last[proc] {
		return Record{}, fmt.Errorf("%w: P%d arrival time overflows", ErrFormat, proc)
	}
	r.last[proc] = at
	return Record{
		Proc: int(proc), At: at, Kind: Kind(kind),
		Addr: mem.Addr(addr), Aux: mem.Addr(aux),
		Value: mem.Value(value), Arg: mem.Value(arg),
	}, nil
}

// finish validates the footer payload and the end of the stream.
func (r *Reader) finish(p []byte) error {
	d := decoder{p: p}
	d.byte("footer kind")
	count := d.uvarint("footer count")
	sumBytes := d.bytes("footer checksum", 8)
	if d.err != nil {
		return d.err
	}
	if len(d.p) != d.off {
		return fmt.Errorf("%w: %d trailing bytes in footer", ErrFormat, len(d.p)-d.off)
	}
	if count != r.count {
		return fmt.Errorf("%w: footer count %d, stream had %d records", ErrFormat, count, r.count)
	}
	if got := binary.BigEndian.Uint64(sumBytes); got != r.sum {
		return fmt.Errorf("%w: checksum mismatch (footer %016x, stream %016x)", ErrFormat, got, r.sum)
	}
	if _, err := r.r.ReadByte(); err != io.EOF {
		return fmt.Errorf("%w: trailing bytes after footer", ErrFormat)
	}
	r.done = true
	return io.EOF
}

// Count returns the number of records read so far.
func (r *Reader) Count() uint64 { return r.count }

// readFrame reads one length-prefixed frame into buf (grown as needed),
// bounding the declared length by maxLen.
func readFrame(br *bufio.Reader, maxLen int, buf []byte) ([]byte, error) {
	n, err := readCanonUvarint(br)
	if err != nil {
		return nil, truncOr(err, "frame length")
	}
	if n > uint64(maxLen) {
		return nil, fmt.Errorf("%w: frame length %d exceeds %d", ErrFormat, n, maxLen)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, truncOr(err, "frame payload")
	}
	return buf, nil
}

// truncOr maps io errors to the truncation sentinel; format errors pass
// through untouched, anything else is wrapped with the package prefix.
func truncOr(err error, what string) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: stream ends inside %s", ErrTruncated, what)
	}
	if errors.Is(err, ErrFormat) {
		return err
	}
	return fmt.Errorf("tracefmt: reading %s: %w", what, err)
}

// readCanonUvarint reads a minimal-length uvarint from br. It rejects
// encodings with a superfluous final byte and 64-bit overflow, so every
// value has exactly one wire form.
func readCanonUvarint(br *bufio.Reader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, fmt.Errorf("%w: varint overflows 64 bits", ErrFormat)
			}
			if i > 0 && b == 0 {
				return 0, fmt.Errorf("%w: non-canonical varint", ErrFormat)
			}
			return x | uint64(b)<<s, nil
		}
		if i == 9 {
			return 0, fmt.Errorf("%w: varint overflows 64 bits", ErrFormat)
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// decoder cursors over one frame payload with accumulated error handling.
type decoder struct {
	p   []byte
	off int
	err error
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad varint in %s", ErrFormat, what)
		return 0
	}
	if n > 1 && d.p[d.off+n-1] == 0 {
		d.err = fmt.Errorf("%w: non-canonical varint in %s", ErrFormat, what)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) zigzag(what string) int64 {
	u := d.uvarint(what)
	return int64(u>>1) ^ -int64(u&1)
}

func (d *decoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.p) {
		d.err = fmt.Errorf("%w: missing %s", ErrFormat, what)
		return 0
	}
	b := d.p[d.off]
	d.off++
	return b
}

func (d *decoder) bytes(what string, n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.p) {
		d.err = fmt.Errorf("%w: missing %s", ErrFormat, what)
		return nil
	}
	b := d.p[d.off : d.off+n]
	d.off += n
	return b
}
