package tracefmt

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"weakorder/internal/mem"
	"weakorder/internal/sim"
)

// sampleRecords returns a stream exercising every kind, multiple processors,
// repeated arrival times (dt=0), and negative values (zigzag path).
func sampleRecords() []Record {
	return []Record{
		{Proc: 0, At: 0, Kind: KindWork, Value: 12},
		{Proc: 1, At: 0, Kind: KindRead, Addr: 100},
		{Proc: 0, At: 5, Kind: KindWrite, Addr: 101, Value: -7},
		{Proc: 1, At: 5, Kind: KindSyncRead, Addr: 200},
		{Proc: 0, At: 5, Kind: KindSyncWrite, Addr: 200, Value: 1},
		{Proc: 1, At: 9, Kind: KindTAS, Addr: 201, Value: 1},
		{Proc: 0, At: 12, Kind: KindFetchAdd, Addr: 202, Value: 1},
		{Proc: 1, At: 12, Kind: KindLockAcquire, Addr: 203},
		{Proc: 1, At: 12, Kind: KindLockRelease, Addr: 203},
		{Proc: 0, At: 20, Kind: KindAwaitGE, Addr: 204, Value: 3},
		{Proc: 1, At: 31, Kind: KindBarrier, Addr: 205, Aux: 206, Value: 1, Arg: 1},
	}
}

func sampleHeader() Header {
	return Header{
		Procs: 2,
		Name:  "roundtrip",
		Init:  map[mem.Addr]mem.Value{100: 1, 101: -3, 205: 0},
	}
}

// encode writes hdr+recs to a buffer, failing the test on any error.
func encode(t *testing.T, hdr Header, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write record %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// decode reads everything back, failing the test on any error.
func decode(t *testing.T, data []byte) (Header, []Record) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next (record %d): %v", len(recs), err)
		}
		recs = append(recs, rec)
	}
	return r.Header(), recs
}

// TestRoundTrip pins the core contract: what the Writer emits, the Reader
// returns verbatim — header, every record field, arrival times reconstructed
// from per-processor deltas.
func TestRoundTrip(t *testing.T) {
	hdr, recs := sampleHeader(), sampleRecords()
	data := encode(t, hdr, recs)
	gotHdr, gotRecs := decode(t, data)
	if gotHdr.Procs != hdr.Procs || gotHdr.Name != hdr.Name {
		t.Fatalf("header = %+v, want %+v", gotHdr, hdr)
	}
	if len(gotHdr.Init) != len(hdr.Init) {
		t.Fatalf("init table has %d entries, want %d", len(gotHdr.Init), len(hdr.Init))
	}
	for a, v := range hdr.Init {
		if gotHdr.Init[a] != v {
			t.Fatalf("init[%d] = %d, want %d", a, gotHdr.Init[a], v)
		}
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(gotRecs), len(recs))
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, gotRecs[i], recs[i])
		}
	}
}

// TestDeterministicEncoding pins byte-level determinism: encoding the same
// header and records twice yields identical bytes, even though Header.Init
// is an unordered map. Replay byte-identity depends on this.
func TestDeterministicEncoding(t *testing.T) {
	a := encode(t, sampleHeader(), sampleRecords())
	b := encode(t, sampleHeader(), sampleRecords())
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same trace differ")
	}
}

// TestWriterRejectsIllFormed pins the Writer-side invariants: the Writer
// refuses to produce a trace its own Reader would reject.
func TestWriterRejectsIllFormed(t *testing.T) {
	t.Run("procs-out-of-range", func(t *testing.T) {
		for _, procs := range []int{0, -1, MaxProcs + 1} {
			if _, err := NewWriter(&bytes.Buffer{}, Header{Procs: procs}); !errors.Is(err, ErrFormat) {
				t.Fatalf("NewWriter(procs=%d) = %v, want ErrFormat", procs, err)
			}
		}
	})
	t.Run("record-proc-out-of-range", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, Header{Procs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(Record{Proc: 2, Kind: KindRead}); !errors.Is(err, ErrFormat) {
			t.Fatalf("Write(proc=2 of 2) = %v, want ErrFormat", err)
		}
	})
	t.Run("time-regression", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, Header{Procs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(Record{Proc: 0, At: 10, Kind: KindRead}); err != nil {
			t.Fatal(err)
		}
		if err := w.Write(Record{Proc: 0, At: 9, Kind: KindRead}); !errors.Is(err, ErrFormat) {
			t.Fatalf("Write(time regression) = %v, want ErrFormat", err)
		}
	})
	t.Run("unknown-kind", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, Header{Procs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(Record{Proc: 0, Kind: numKinds}); !errors.Is(err, ErrFormat) {
			t.Fatalf("Write(unknown kind) = %v, want ErrFormat", err)
		}
	})
}

// TestReaderTruncation cuts a valid trace at every byte offset: each prefix
// must fail with a typed error (ErrTruncated for clean cuts, ErrFormat where
// the cut leaves structural damage) and never be accepted as complete.
func TestReaderTruncation(t *testing.T) {
	data := encode(t, sampleHeader(), sampleRecords())
	for cut := 0; cut < len(data); cut++ {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		for err == nil {
			_, err = r.Next()
		}
		if err == io.EOF {
			t.Fatalf("prefix of %d/%d bytes was accepted as a complete trace", cut, len(data))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFormat) {
			t.Fatalf("prefix of %d bytes: error %v is neither ErrTruncated nor ErrFormat", cut, err)
		}
	}
}

// TestReaderRejectsDamage pins the structural checks on hand-corrupted
// inputs: bad magic, wrong version, trailing garbage, checksum and count
// mismatches, and a record time-delta that would overflow sim.Time.
func TestReaderRejectsDamage(t *testing.T) {
	valid := encode(t, sampleHeader(), sampleRecords())

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte{}, valid...)
		bad[0] = 'X'
		if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
			t.Fatalf("NewReader(bad magic) = %v, want ErrFormat", err)
		}
	})
	t.Run("unknown-version", func(t *testing.T) {
		bad := append([]byte{}, valid...)
		bad[4] = 99
		if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
			t.Fatalf("NewReader(version 99) = %v, want ErrFormat", err)
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		bad := append(append([]byte{}, valid...), 0xAB)
		if err := drain(bad); !errors.Is(err, ErrFormat) {
			t.Fatalf("trailing garbage = %v, want ErrFormat", err)
		}
	})
	t.Run("flipped-payload-byte", func(t *testing.T) {
		// Flip a byte inside a record payload; the footer checksum must
		// catch it even when the damaged record still parses.
		for off := len(valid) - 20; off > 5; off-- {
			bad := append([]byte{}, valid...)
			bad[off] ^= 0x01
			if err := drain(bad); err == nil || err == io.EOF {
				t.Fatalf("flipping byte %d went undetected", off)
			}
		}
	})
	t.Run("empty-input", func(t *testing.T) {
		if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("NewReader(empty) = %v, want ErrTruncated", err)
		}
	})
}

// drain reads a byte trace to completion and returns the terminal error
// (nil only if the stream somehow yields records forever, which the frame
// bound makes impossible).
func drain(data []byte) error {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		if _, err := r.Next(); err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return err
		}
	}
}

// TestEmptyTrace pins the degenerate case: a header and footer with zero
// records is a valid trace.
func TestEmptyTrace(t *testing.T) {
	data := encode(t, Header{Procs: 1, Name: "empty"}, nil)
	hdr, recs := decode(t, data)
	if hdr.Procs != 1 || hdr.Name != "empty" || len(recs) != 0 {
		t.Fatalf("empty trace decoded as %+v with %d records", hdr, len(recs))
	}
}

// TestReaderStreamsBounded pins the streaming property: reading a long trace
// holds one frame at a time, so allocations do not scale with record count.
func TestReaderStreamsBounded(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Procs: 1, Name: "long"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	for i := 0; i < n; i++ {
		if err := w.Write(Record{Proc: 0, At: sim.Time(i), Kind: KindWork, Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	allocs := testing.AllocsPerRun(3, func() {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for {
			if _, err := r.Next(); err != nil {
				if err != io.EOF {
					t.Fatal(err)
				}
				break
			}
			count++
		}
		if count != n {
			t.Fatalf("decoded %d records, want %d", count, n)
		}
	})
	// Reader setup allocates a handful of objects (bufio, last slice,
	// header); the per-record path must not allocate at all.
	if allocs > 32 {
		t.Fatalf("reading %d records cost %.0f allocations — per-record path allocates", n, allocs)
	}
}
