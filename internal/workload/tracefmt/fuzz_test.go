package tracefmt

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"weakorder/internal/mem"
)

// FuzzReader feeds arbitrary bytes through the binary trace decoder. The
// invariant is total safety on untrusted input: the Reader either rejects the
// stream with a typed, prefixed error or yields records that re-encode to the
// exact input bytes — it never panics, never allocates from an absurd
// declared length, and never accepts a stream whose footer does not match
// what it read.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace, its truncation witnesses, and targeted
	// corruptions of each region (magic, version, header, record, footer).
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		Procs: 2,
		Name:  "seed",
		Init:  map[mem.Addr]mem.Value{100: 1, 200: -2},
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range []Record{
		{Proc: 0, At: 0, Kind: KindWork, Value: 8},
		{Proc: 1, At: 3, Kind: KindLockAcquire, Addr: 200},
		{Proc: 1, At: 3, Kind: KindWrite, Addr: 100, Value: -5},
		{Proc: 1, At: 3, Kind: KindLockRelease, Addr: 200},
		{Proc: 0, At: 7, Kind: KindBarrier, Addr: 201, Aux: 202, Value: 1, Arg: 1},
	} {
		if err := w.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// Truncation witnesses: cut inside the header, inside a record frame,
	// and just before the footer.
	f.Add(valid[:3])
	f.Add(valid[:8])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-5])
	// Corruption witnesses.
	for _, off := range []int{0, 4, 6, len(valid) / 2, len(valid) - 2} {
		bad := append([]byte{}, valid...)
		bad[off] ^= 0xFF
		f.Add(bad)
	}
	// Absurd declared lengths: a header frame claiming 2^60 bytes, and a
	// record frame longer than the cap.
	f.Add([]byte("WOTF\x01\xff\xff\xff\xff\xff\xff\xff\xff\x0f"))
	f.Add(append(append([]byte{}, valid[:5]...), 0xC8, 0x01))
	f.Add([]byte{})
	f.Add([]byte("WOTF"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			checkErr(t, err)
			return
		}
		hdr := r.Header()
		if hdr.Procs < 1 || hdr.Procs > MaxProcs {
			t.Fatalf("accepted header with %d processors", hdr.Procs)
		}
		if len(hdr.Name) > MaxNameLen || len(hdr.Init) > MaxInit {
			t.Fatalf("accepted header beyond caps: name %d, init %d", len(hdr.Name), len(hdr.Init))
		}
		// Re-encode everything the Reader accepts; if the stream completes
		// (io.EOF after a valid footer) the re-encoding must be
		// byte-identical to the input — the format has exactly one encoding
		// per trace.
		var out bytes.Buffer
		w, err := NewWriter(&out, hdr)
		if err != nil {
			t.Fatalf("accepted header does not re-encode: %v", err)
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(out.Bytes(), data) {
					t.Fatalf("complete trace does not round-trip byte-identically (%d in, %d out)", len(data), out.Len())
				}
				return
			}
			if err != nil {
				checkErr(t, err)
				return
			}
			if rec.Proc < 0 || rec.Proc >= hdr.Procs || rec.Kind >= numKinds {
				t.Fatalf("accepted out-of-range record %+v", rec)
			}
			if err := w.Write(rec); err != nil {
				t.Fatalf("accepted record does not re-encode: %v", err)
			}
		}
	})
}

// checkErr asserts a decode error carries the package prefix (directly or
// via a typed sentinel), so callers can always attribute the failure.
func checkErr(t *testing.T, err error) {
	t.Helper()
	if !strings.Contains(err.Error(), "tracefmt:") {
		t.Fatalf("error lost its package prefix: %v", err)
	}
}
