// Package workload generates the parameterized programs driven through both
// the operational models (contract experiments) and the timed machine
// (performance experiments): the Figure-3 hand-off scenario, producer/
// consumer pipelines, centralized barriers, TestAndSet lock contention, and
// random programs for the Definition-2 contract sweep.
//
// Address-space convention: synchronization variables and data variables
// never share a location, and every generator documents which accesses are
// synchronization. All deterministic generators produce DRF0 programs unless
// the name says otherwise.
package workload

import (
	"fmt"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Locations shared by the fixed-shape generators.
const (
	locX     mem.Addr = 0 // Figure 3 payload
	locS     mem.Addr = 1 // Figure 3 lock (sync)
	locGo    mem.Addr = 2 // warmers' start flag (sync)
	locData  mem.Addr = 3 // producer/consumer payload
	locFlag  mem.Addr = 4 // producer/consumer flag (sync)
	locAck   mem.Addr = 5 // producer/consumer ack (sync)
	locCount mem.Addr = 6 // barrier arrival counter (sync)
	locSense mem.Addr = 7 // barrier sense (sync)
	locLock  mem.Addr = 8 // contended lock (sync)
	locCtr   mem.Addr = 9 // counter protected by locLock
)

// SpinKind selects how waiters poll a flag.
type SpinKind uint8

const (
	// SpinSync polls with a read-only synchronization operation (Test) —
	// DRF0/DRF1-conforming.
	SpinSync SpinKind = iota
	// SpinData polls with an ordinary data read — the racy-but-common idiom
	// the end of Section 6 discusses ("spinning on a barrier count with a
	// data read").
	SpinData
	// SpinTAS polls by retrying the TestAndSet itself (no test-and-TAS).
	SpinTAS
)

// String implements fmt.Stringer.
func (s SpinKind) String() string {
	switch s {
	case SpinSync:
		return "sync-spin"
	case SpinData:
		return "data-spin"
	case SpinTAS:
		return "tas-spin"
	default:
		return "spin?"
	}
}

// Fig3 builds the Figure-3 scenario: P0 writes the payload x (whose line
// `warmers` other processors hold shared, making its global performance
// slow), Unsets the lock s, and then does `workAfter` cycles of local work;
// P1 TestAndSets s until it wins and reads x. Warmer processors pre-load x
// and signal readiness through the sync flag `go`, keeping the program
// DRF0-conforming.
//
// Thread layout: 0 = P0 (producer), 1 = P1 (consumer), 2.. = warmers.
func Fig3(warmers, workAfter int) *program.Program {
	return Fig3N(warmers, 1, workAfter)
}

// Fig3N generalizes Fig3 to `writes` payload locations (x, x+…), all shared
// by every warmer, all written by the producer before the release. More
// outstanding writes mean more invalidation-acknowledgement traffic trailing
// the release — the configuration that exposes hardware releasing without
// protecting its outstanding accesses.
//
// Payload addresses are locX+0 … locX+writes-1 spaced to avoid the other
// fixed locations (writes beyond 1 use addresses from 100 up).
func Fig3N(warmers, writes, workAfter int) *program.Program {
	if writes < 1 {
		writes = 1
	}
	b := program.NewBuilder(fmt.Sprintf("fig3-w%d-n%d-a%d", warmers, writes, workAfter))
	b.Init(locS, 1) // lock starts held by P0
	payload := func(i int) mem.Addr {
		if i == 0 {
			return locX
		}
		return mem.Addr(100 + i)
	}
	// P0: wait for all warmers, write the payloads, release s, keep working.
	b.Thread().
		Label("wait")
	b.SyncLoad(0, locGo)
	b.Bne(0, program.Imm(mem.Value(warmers)), "wait")
	for i := 0; i < writes; i++ {
		b.Store(payload(i), program.Imm(mem.Value(42+i)))
	}
	b.SyncStore(locS, program.Imm(0))
	if workAfter > 0 {
		b.Nop(workAfter)
	}
	b.Halt()
	// P1: acquire s, read the first payload.
	b.Thread().
		Label("acq")
	b.TestAndSet(0, locS, program.Imm(1))
	b.Bne(0, program.Imm(0), "acq")
	b.Load(1, locX)
	b.Halt()
	// Warmers: read every payload (cold), then announce via fetch-add on go.
	for w := 0; w < warmers; w++ {
		b.Thread()
		for i := 0; i < writes; i++ {
			b.Load(2, payload(i))
		}
		b.FetchAdd(3, locGo, program.Imm(1))
		b.Halt()
	}
	return b.MustBuild()
}

// ProducerConsumer builds a two-thread pipeline: the producer writes `items`
// payload values, each published through the sync flag and acknowledged
// through the sync ack; `work` cycles of local computation separate items on
// both sides. DRF0-conforming.
func ProducerConsumer(items, work int) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("prodcons-n%d-w%d", items, work))
	// Producer (thread 0): r0 = item counter.
	b.Thread().
		Mov(0, program.Imm(0)).
		Label("loop")
	b.Blt(0, program.Imm(mem.Value(items)), "body")
	b.Jmp("end")
	b.Label("body")
	if work > 0 {
		b.Nop(work)
	}
	b.Add(1, 0, program.Imm(100)) // payload value = 100+i
	b.Store(locData, program.R(1))
	b.Add(0, 0, program.Imm(1))
	b.SyncStore(locFlag, program.R(0))
	b.Label("wait")
	b.SyncLoad(2, locAck)
	b.Bne(2, program.R(0), "wait")
	b.Jmp("loop")
	b.Label("end")
	b.Halt()
	// Consumer (thread 1): r0 = expected flag, r3 = running sum.
	b.Thread().
		Mov(0, program.Imm(1)).
		Mov(3, program.Imm(0)).
		Label("loop")
	b.Blt(0, program.Imm(mem.Value(items)+1), "body")
	b.Jmp("end")
	b.Label("body")
	b.Label("wait")
	b.SyncLoad(2, locFlag)
	b.Bne(2, program.R(0), "wait")
	b.Load(1, locData)
	b.Add(3, 3, program.R(1))
	if work > 0 {
		b.Nop(work)
	}
	b.SyncStore(locAck, program.R(0))
	b.Add(0, 0, program.Imm(1))
	b.Jmp("loop")
	b.Label("end")
	b.Store(locX, program.R(3)) // expose the checksum
	b.Halt()
	return b.MustBuild()
}

// ProducerConsumerChecksum returns the final value thread 1 stores into x
// after consuming all items: sum of (100+i) for i in [0,items).
func ProducerConsumerChecksum(items int) mem.Value {
	var s mem.Value
	for i := 0; i < items; i++ {
		s += mem.Value(100 + i)
	}
	return s
}

// Barrier builds a centralized sense-reversing barrier: each of nproc threads
// alternates `work` cycles of local computation with a barrier episode,
// `phases` times. Arrivals use FetchAdd on the counter; the last arriver
// resets the counter and advances the sense flag; the rest spin on the sense
// flag using the given SpinKind. With SpinSync the program is DRF0- and
// DRF1-conforming; with SpinData the sense spin is the racy idiom from the
// end of Section 6.
func Barrier(nproc, phases, work int, spin SpinKind) *program.Program {
	p, err := BuildBarrier(nproc, phases, work, spin)
	if err != nil {
		panic(err)
	}
	return p
}

// BuildBarrier is Barrier under the Builder error convention: invalid
// parameter combinations (SpinTAS, which polls by retrying a TestAndSet and
// has no meaning against a sense flag) are reported as an error instead of a
// panic, so CLIs and spec compilers can validate untrusted inputs.
func BuildBarrier(nproc, phases, work int, spin SpinKind) (*program.Program, error) {
	b := program.NewBuilder(fmt.Sprintf("barrier-p%d-n%d-w%d-%s", nproc, phases, work, spin))
	if spin == SpinTAS {
		b.Errorf("workload: SpinTAS is for locks, not barriers (use SpinSync or SpinData)")
		return b.Build()
	}
	if nproc < 1 {
		b.Errorf("workload: barrier needs at least 1 processor, got %d", nproc)
		return b.Build()
	}
	for t := 0; t < nproc; t++ {
		b.Thread().
			Mov(0, program.Imm(0)) // r0 = phase
		b.Label("phase")
		b.Blt(0, program.Imm(mem.Value(phases)), "body")
		b.Jmp("end")
		b.Label("body")
		if work > 0 {
			b.Nop(work)
		}
		b.FetchAdd(1, locCount, program.Imm(1)) // r1 = arrivals before me
		b.Add(2, 0, program.Imm(1))             // r2 = target sense
		b.Bne(1, program.Imm(mem.Value(nproc-1)), "spin")
		// Last arriver: reset the counter, release the new sense.
		b.SyncStore(locCount, program.Imm(0))
		b.SyncStore(locSense, program.R(2))
		b.Jmp("next")
		b.Label("spin")
		if spin == SpinData {
			b.Load(3, locSense)
		} else {
			b.SyncLoad(3, locSense)
		}
		b.Bne(3, program.R(2), "spin")
		b.Label("next")
		b.Add(0, 0, program.Imm(1))
		b.Jmp("phase")
		b.Label("end")
		b.Halt()
	}
	return b.Build()
}

// Lock builds a TestAndSet lock-contention workload: nproc threads each
// perform `acquires` critical sections incrementing a shared counter (data
// accesses protected by the lock), with `csWork` cycles of work inside the
// section and `outWork` outside. spin selects pure TAS retry (SpinTAS),
// test-and-TestAndSet with sync reads (SpinSync), or test with data reads
// (SpinData, racy). Release is a sync write of 0.
func Lock(nproc, acquires, csWork, outWork int, spin SpinKind) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("lock-p%d-n%d-%s", nproc, acquires, spin))
	for t := 0; t < nproc; t++ {
		b.Thread().
			Mov(0, program.Imm(0)) // r0 = completed acquires
		b.Label("loop")
		b.Blt(0, program.Imm(mem.Value(acquires)), "acquire")
		b.Jmp("end")
		b.Label("acquire")
		if outWork > 0 {
			b.Nop(outWork)
		}
		switch spin {
		case SpinTAS:
			b.Label("spin")
			b.TestAndSet(1, locLock, program.Imm(1))
			b.Bne(1, program.Imm(0), "spin")
		case SpinSync:
			b.Label("spin")
			b.SyncLoad(1, locLock)
			b.Bne(1, program.Imm(0), "spin")
			b.TestAndSet(1, locLock, program.Imm(1))
			b.Bne(1, program.Imm(0), "spin")
		case SpinData:
			b.Label("spin")
			b.Load(1, locLock)
			b.Bne(1, program.Imm(0), "spin")
			b.TestAndSet(1, locLock, program.Imm(1))
			b.Bne(1, program.Imm(0), "spin")
		}
		// Critical section: counter increment through data accesses.
		b.Load(2, locCtr)
		b.Add(2, 2, program.Imm(1))
		b.Store(locCtr, program.R(2))
		if csWork > 0 {
			b.Nop(csWork)
		}
		b.SyncStore(locLock, program.Imm(0))
		b.Add(0, 0, program.Imm(1))
		b.Jmp("loop")
		b.Label("end")
		b.Halt()
	}
	return b.MustBuild()
}

// arrayBase is where ArraySum's input vector lives.
const arrayBase mem.Addr = 1000

// ArraySum builds a data-parallel reduction: the input vector a[0..n) is
// pre-initialized to a[i] = i+1; each of nproc threads sums a contiguous
// chunk with register-indexed loads (thread-private reads of shared read-only
// data — race-free), then folds its partial sum into the shared counter under
// the TestAndSet lock. The "parallelism only through do-all loops" paradigm
// from the paper's conclusion, expressed with the primitives DRF0 offers.
func ArraySum(nproc, n int) *program.Program {
	if nproc <= 0 {
		nproc = 2
	}
	if n < nproc {
		n = nproc
	}
	b := program.NewBuilder(fmt.Sprintf("arraysum-p%d-n%d", nproc, n))
	for i := 0; i < n; i++ {
		b.Init(arrayBase+mem.Addr(i), mem.Value(i+1))
	}
	chunk := (n + nproc - 1) / nproc
	for t := 0; t < nproc; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		b.Thread().
			Mov(0, program.Imm(mem.Value(lo))). // r0 = index
			Mov(1, program.Imm(0))              // r1 = partial sum
		b.Label("loop")
		b.Blt(0, program.Imm(mem.Value(hi)), "body")
		b.Jmp("fold")
		b.Label("body")
		b.LoadIdx(2, arrayBase, 0)
		b.Add(1, 1, program.R(2))
		b.Add(0, 0, program.Imm(1))
		b.Jmp("loop")
		b.Label("fold")
		b.Label("acq")
		b.TestAndSet(3, locLock, program.Imm(1))
		b.Bne(3, program.Imm(0), "acq")
		b.Load(4, locCtr)
		b.Add(4, 4, program.R(1))
		b.Store(locCtr, program.R(4))
		b.SyncStore(locLock, program.Imm(0))
		b.Halt()
	}
	return b.MustBuild()
}

// ArraySumTotal returns the expected reduction result for ArraySum(_, n).
func ArraySumTotal(n int) mem.Value { return mem.Value(n * (n + 1) / 2) }

// doallBase is where the DoAll stencil array lives.
const doallBase mem.Addr = 2000

// DoAll builds a phased stencil in the "parallelism only from do-all loops"
// paradigm, double-buffered: in each phase, thread t reads its left
// neighbor's slot from the *previous* phase's buffer and writes its own slot
// of the current buffer; buffers swap at each barrier. Every cross-thread
// conflict is separated by the barrier, so the program obeys both DRF0 and
// the do-all phase discipline. With skewRead set, threads instead read the
// neighbor's slot from the buffer being written in the SAME phase —
// deliberately violating the discipline (and DRF0) for negative tests.
//
// Registers: r0 phase, r1 carried value, r2 scratch, r3/r4/r5 barrier,
// r6 current out-buffer offset (0 or nproc), r7 in-buffer offset.
func DoAll(nproc, phases int, skewRead bool) *program.Program {
	if nproc < 2 {
		nproc = 2
	}
	name := "doall"
	if skewRead {
		name = "doall-skewed"
	}
	b := program.NewBuilder(fmt.Sprintf("%s-p%d-n%d", name, nproc, phases))
	resultSlot := func(t int) mem.Addr { return doallBase + mem.Addr(2*nproc+t) }
	for t := 0; t < nproc; t++ {
		left := (t + nproc - 1) % nproc
		b.Thread().
			Mov(0, program.Imm(0)).
			Mov(1, program.Imm(1)).
			Mov(6, program.Imm(0)) // out buffer starts at offset 0
		b.Label("phase")
		b.Blt(0, program.Imm(mem.Value(phases)), "body")
		b.Jmp("end")
		b.Label("body")
		b.Mov(7, program.Imm(mem.Value(nproc)))
		b.Sub(7, 7, program.R(6)) // in buffer = the other one
		if skewRead {
			b.LoadIdx(2, doallBase+mem.Addr(left), 6) // same-phase buffer: violation
		} else {
			b.LoadIdx(2, doallBase+mem.Addr(left), 7) // previous-phase buffer
		}
		b.Add(1, 1, program.R(2))
		b.StoreIdx(doallBase+mem.Addr(t), 6, program.R(1))
		// Barrier episode (FetchAdd arrival + sense spin).
		b.FetchAdd(3, locCount, program.Imm(1))
		b.Add(4, 0, program.Imm(1))
		b.Bne(3, program.Imm(mem.Value(nproc-1)), "spin")
		b.SyncStore(locCount, program.Imm(0))
		b.SyncStore(locSense, program.R(4))
		b.Jmp("after")
		b.Label("spin")
		b.SyncLoad(5, locSense)
		b.Bne(5, program.R(4), "spin")
		b.Label("after")
		b.Mov(6, program.R(7)) // swap buffers
		b.Add(0, 0, program.Imm(1))
		b.Jmp("phase")
		b.Label("end")
		b.Store(resultSlot(t), program.R(1))
		b.Halt()
	}
	return b.MustBuild()
}

// DoAllResult returns the location thread t's final carried value lands in.
func DoAllResult(nproc, t int) mem.Addr { return doallBase + mem.Addr(2*nproc+t) }

// DoAllBarrier exposes the barrier locations for the doall checker.
func DoAllBarrier() (counter, sense mem.Addr) { return locCount, locSense }

// LockTotal returns the expected final counter value of Lock.
func LockTotal(nproc, acquires int) mem.Value { return mem.Value(nproc * acquires) }

// CtrAddr exposes the lock-counter location for assertions.
func CtrAddr() mem.Addr { return locCtr }

// XAddr exposes the Figure-3 payload / checksum location for assertions.
func XAddr() mem.Addr { return locX }

// SenseAddr exposes the barrier sense location.
func SenseAddr() mem.Addr { return locSense }
