package workload

import (
	"strings"
	"testing"
)

// TestBuildBarrierErrors pins the Builder error convention on the barrier
// generator: misuse returns an error from Build (never a panic), valid
// parameter combinations build clean programs with one thread per processor.
func TestBuildBarrierErrors(t *testing.T) {
	cases := []struct {
		name    string
		nproc   int
		phases  int
		work    int
		spin    SpinKind
		wantErr string // substring; empty means must succeed
	}{
		{name: "spin-tas-rejected", nproc: 4, phases: 2, work: 5, spin: SpinTAS,
			wantErr: "SpinTAS is for locks"},
		{name: "spin-tas-rejected-even-single-proc", nproc: 1, phases: 1, work: 0, spin: SpinTAS,
			wantErr: "SpinTAS is for locks"},
		{name: "zero-procs-rejected", nproc: 0, phases: 2, work: 5, spin: SpinSync,
			wantErr: "at least 1 processor"},
		{name: "negative-procs-rejected", nproc: -3, phases: 2, work: 5, spin: SpinSync,
			wantErr: "at least 1 processor"},
		{name: "sync-spin-ok", nproc: 3, phases: 2, work: 5, spin: SpinSync},
		{name: "data-spin-ok", nproc: 3, phases: 2, work: 5, spin: SpinData},
		{name: "no-work-ok", nproc: 2, phases: 1, work: 0, spin: SpinSync},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := BuildBarrier(tc.nproc, tc.phases, tc.work, tc.spin)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("BuildBarrier(%d,%d,%d,%s) = program %q, want error containing %q",
						tc.nproc, tc.phases, tc.work, tc.spin, p.Name, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("BuildBarrier error = %q, want substring %q", err, tc.wantErr)
				}
				if !strings.Contains(err.Error(), "program builder:") {
					t.Fatalf("BuildBarrier error = %q, want the Builder convention prefix", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("BuildBarrier(%d,%d,%d,%s): %v", tc.nproc, tc.phases, tc.work, tc.spin, err)
			}
			if got := p.NumThreads(); got != tc.nproc {
				t.Fatalf("BuildBarrier built %d threads, want %d", got, tc.nproc)
			}
		})
	}
}

// TestBarrierPanicsOnMisuse pins the convenience wrapper's Must semantics:
// Barrier still panics (with the builder error) so existing callers keep
// their contract, while BuildBarrier is the checked path.
func TestBarrierPanicsOnMisuse(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Barrier(SpinTAS) did not panic")
		}
		err, ok := r.(error)
		if !ok || !strings.Contains(err.Error(), "SpinTAS is for locks") {
			t.Fatalf("Barrier(SpinTAS) panicked with %v, want the builder error", r)
		}
	}()
	Barrier(2, 1, 0, SpinTAS)
}
