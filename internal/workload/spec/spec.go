// Package spec defines the versioned open-loop workload description: thread
// population, a sequence of phases with per-phase arrival rates, and the
// operation-mix knobs each phase draws from (the same sync-density vocabulary
// as workload.RandomConfig). A Spec plus a seed fully determines the arrival
// stream an openloop.Generator produces, so experiments are reproducible from
// the pair alone.
//
// Specs parse from JSON or from a small YAML subset (block mappings,
// block sequences, scalar values, '#' comments — no anchors, flow style, or
// multi-line strings), so hand-written workload files stay readable without
// pulling in a YAML dependency. Both parsers reject unknown fields: a typo in
// a knob name is an error, not a silently ignored default.
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"weakorder/internal/sim"
)

// Version is the current spec schema version. A spec file must declare it;
// parsers reject versions they do not know.
const Version = 1

// MaxProcs bounds the thread population (matches tracefmt.MaxProcs).
const MaxProcs = 4096

// ErrSpec reports an invalid or unparseable workload spec; all parse and
// validation failures wrap it.
var ErrSpec = errors.New("workload spec")

// Scenario names the per-phase arrival pattern.
type Scenario string

const (
	// ScenarioMix draws independent operations per arrival from the
	// sync-density mix (the open-loop analogue of workload.Random).
	ScenarioMix Scenario = "mix"
	// ScenarioLock makes each arrival a lock-protected critical section:
	// acquire, read-modify-write the protected counter, local work,
	// release. Contention scales with rate.
	ScenarioLock Scenario = "lock"
	// ScenarioBarrier makes each arrival a sense-reversing barrier episode
	// joined by every thread (a barrier storm at high rate).
	ScenarioBarrier Scenario = "barrier"
	// ScenarioProdCons pairs threads producer/consumer: even threads write
	// data and release a flag, odd threads await the flag and read, with an
	// acknowledgement flag providing flow control.
	ScenarioProdCons Scenario = "prodcons"
)

// valid reports whether s is a known scenario.
func (s Scenario) valid() bool {
	switch s {
	case ScenarioMix, ScenarioLock, ScenarioBarrier, ScenarioProdCons:
		return true
	}
	return false
}

// Mix carries the operation-mix knobs for ScenarioMix phases, sharing
// workload.RandomConfig's convention: zero means the documented default,
// negative means exactly zero percent.
type Mix struct {
	// SyncDensity is the per-arrival probability (percent) of a
	// synchronization operation instead of a data access.
	SyncDensity int `json:"sync_density,omitempty"`
	// RMWPct is the share (percent) of synchronization operations emitted
	// as atomic read-modify-writes.
	RMWPct int `json:"rmw_pct,omitempty"`
	// SyncReadPct splits non-RMW synchronization between read-only and
	// write-only operations.
	SyncReadPct int `json:"sync_read_pct,omitempty"`
	// FetchAddPct is the share (percent) of RMWs emitted as FetchAdd
	// rather than TestAndSet.
	FetchAddPct int `json:"fetch_add_pct,omitempty"`
}

// Phase is one window of the workload: for Duration simulated time units,
// each thread receives arrivals at Rate per thousand time units, drawn from
// Scenario's pattern.
type Phase struct {
	// Duration is the phase length in simulated time units.
	Duration sim.Time `json:"duration"`
	// Rate is the open-loop arrival rate in arrivals per 1000 simulated
	// time units per thread. Arrivals are Poisson (exponential
	// inter-arrival times) for mix and lock scenarios; barrier and
	// prodcons phases space their episodes evenly so every thread joins
	// the same episode count and the phase cannot deadlock.
	Rate int `json:"rate"`
	// Scenario selects the arrival pattern.
	Scenario Scenario `json:"scenario"`
	// DataVars and SyncVars size the address pools (defaults 4 and 2).
	DataVars int `json:"data_vars,omitempty"`
	SyncVars int `json:"sync_vars,omitempty"`
	// Work is the local computation (cycles) attached to each arrival's
	// operation (default 0).
	Work int `json:"work,omitempty"`
	// Mix tunes ScenarioMix phases; ignored by the other scenarios.
	Mix Mix `json:"mix,omitempty"`
}

// Spec is a complete open-loop workload description.
type Spec struct {
	// SpecVersion must equal Version.
	SpecVersion int `json:"version"`
	// Name labels the workload in traces and metrics output.
	Name string `json:"name,omitempty"`
	// Procs is the thread population; every thread runs for the whole
	// spec, receiving arrivals per the current phase.
	Procs int `json:"procs"`
	// Seed is the default generation seed; a caller-provided seed
	// overrides it.
	Seed int64 `json:"seed,omitempty"`
	// Phases run back to back in order.
	Phases []Phase `json:"phases"`
}

// EndTime returns the simulated time at which the last phase ends.
func (s *Spec) EndTime() sim.Time {
	var t sim.Time
	for _, p := range s.Phases {
		t += p.Duration
	}
	return t
}

// Validate checks the spec against the schema's bounds. It is called by
// Parse; callers constructing a Spec in code should call it themselves.
func (s *Spec) Validate() error {
	if s.SpecVersion != Version {
		return fmt.Errorf("%w: version %d unsupported (want %d)", ErrSpec, s.SpecVersion, Version)
	}
	if s.Procs < 1 || s.Procs > MaxProcs {
		return fmt.Errorf("%w: procs %d out of range [1,%d]", ErrSpec, s.Procs, MaxProcs)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("%w: no phases", ErrSpec)
	}
	for i, p := range s.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("%w: phase %d duration %d must be positive", ErrSpec, i, p.Duration)
		}
		if p.Rate < 1 || p.Rate > 1_000_000 {
			return fmt.Errorf("%w: phase %d rate %d out of range [1,1000000]", ErrSpec, i, p.Rate)
		}
		if !p.Scenario.valid() {
			return fmt.Errorf("%w: phase %d scenario %q unknown (mix, lock, barrier, prodcons)", ErrSpec, i, p.Scenario)
		}
		if p.DataVars < 0 || p.DataVars > 1<<16 {
			return fmt.Errorf("%w: phase %d data_vars %d out of range", ErrSpec, i, p.DataVars)
		}
		if p.SyncVars < 0 || p.SyncVars > 1<<16 {
			return fmt.Errorf("%w: phase %d sync_vars %d out of range", ErrSpec, i, p.SyncVars)
		}
		if p.Work < 0 || p.Work > 1<<20 {
			return fmt.Errorf("%w: phase %d work %d out of range", ErrSpec, i, p.Work)
		}
		for _, k := range []struct {
			name string
			v    int
		}{
			{"sync_density", p.Mix.SyncDensity},
			{"rmw_pct", p.Mix.RMWPct},
			{"sync_read_pct", p.Mix.SyncReadPct},
			{"fetch_add_pct", p.Mix.FetchAddPct},
		} {
			if k.v > 100 {
				return fmt.Errorf("%w: phase %d mix %s %d exceeds 100", ErrSpec, i, k.name, k.v)
			}
		}
		if p.Scenario == ScenarioProdCons && s.Procs < 2 {
			return fmt.Errorf("%w: phase %d prodcons needs at least 2 threads", ErrSpec, i)
		}
	}
	return nil
}

// Parse decodes a workload spec from JSON (input starting with '{') or the
// YAML subset, then validates it.
func Parse(data []byte) (*Spec, error) {
	trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	var v any
	var err error
	if strings.HasPrefix(trimmed, "{") {
		err = json.Unmarshal(data, &v)
		if err != nil {
			err = fmt.Errorf("%w: %v", ErrSpec, err)
		}
	} else {
		v, err = parseYAML(string(data))
	}
	if err != nil {
		return nil, err
	}
	s, err := decodeSpec(v)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeSpec converts the generic parse tree (from either syntax) into a
// Spec, rejecting unknown fields.
func decodeSpec(v any) (*Spec, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("%w: top level must be a mapping, got %T", ErrSpec, v)
	}
	s := &Spec{}
	for key, val := range m {
		var err error
		switch key {
		case "version":
			s.SpecVersion, err = asInt(key, val)
		case "name":
			s.Name, err = asString(key, val)
		case "procs":
			s.Procs, err = asInt(key, val)
		case "seed":
			var n int64
			n, err = asInt64(key, val)
			s.Seed = n
		case "phases":
			list, lok := val.([]any)
			if !lok {
				return nil, fmt.Errorf("%w: phases must be a sequence, got %T", ErrSpec, val)
			}
			for i, pv := range list {
				p, perr := decodePhase(i, pv)
				if perr != nil {
					return nil, perr
				}
				s.Phases = append(s.Phases, p)
			}
		default:
			return nil, fmt.Errorf("%w: unknown field %q", ErrSpec, key)
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func decodePhase(i int, v any) (Phase, error) {
	var p Phase
	m, ok := v.(map[string]any)
	if !ok {
		return p, fmt.Errorf("%w: phase %d must be a mapping, got %T", ErrSpec, i, v)
	}
	for key, val := range m {
		var err error
		switch key {
		case "duration":
			var n int64
			n, err = asInt64(key, val)
			p.Duration = sim.Time(n)
		case "rate":
			p.Rate, err = asInt(key, val)
		case "scenario":
			var s string
			s, err = asString(key, val)
			p.Scenario = Scenario(s)
		case "data_vars":
			p.DataVars, err = asInt(key, val)
		case "sync_vars":
			p.SyncVars, err = asInt(key, val)
		case "work":
			p.Work, err = asInt(key, val)
		case "mix":
			mm, mok := val.(map[string]any)
			if !mok {
				return p, fmt.Errorf("%w: phase %d mix must be a mapping, got %T", ErrSpec, i, val)
			}
			for mkey, mval := range mm {
				var n int
				n, err = asInt(mkey, mval)
				if err != nil {
					return p, err
				}
				switch mkey {
				case "sync_density":
					p.Mix.SyncDensity = n
				case "rmw_pct":
					p.Mix.RMWPct = n
				case "sync_read_pct":
					p.Mix.SyncReadPct = n
				case "fetch_add_pct":
					p.Mix.FetchAddPct = n
				default:
					return p, fmt.Errorf("%w: phase %d: unknown mix field %q", ErrSpec, i, mkey)
				}
			}
		default:
			return p, fmt.Errorf("%w: phase %d: unknown field %q", ErrSpec, i, key)
		}
		if err != nil {
			return p, fmt.Errorf("%w (phase %d)", err, i)
		}
	}
	return p, nil
}

// asInt64 coerces a scalar from either parser: float64 (JSON) must be
// integral, string (YAML) must parse as a base-10 integer.
func asInt64(key string, v any) (int64, error) {
	switch n := v.(type) {
	case float64:
		if n != float64(int64(n)) {
			return 0, fmt.Errorf("%w: field %q: %v is not an integer", ErrSpec, key, n)
		}
		return int64(n), nil
	case string:
		i, err := strconv.ParseInt(n, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: field %q: %q is not an integer", ErrSpec, key, n)
		}
		return i, nil
	}
	return 0, fmt.Errorf("%w: field %q: expected integer, got %T", ErrSpec, key, v)
}

func asInt(key string, v any) (int, error) {
	n, err := asInt64(key, v)
	return int(n), err
}

func asString(key string, v any) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("%w: field %q: expected string, got %T", ErrSpec, key, v)
	}
	return s, nil
}
