package spec

import (
	"errors"
	"strings"
	"testing"
)

const yamlDoc = `# lock contention swept across two rate windows
version: 1
name: "lock-storm"   # quoted, with a trailing comment
procs: 4
seed: 42
phases:
  - duration: 50000
    rate: 4
    scenario: lock
    work: 20
  - duration: 50000
    rate: 16
    scenario: mix
    data_vars: 8
    sync_vars: 2
    mix:
      sync_density: 60
      rmw_pct: 34
      sync_read_pct: 50
`

const jsonDoc = `{
  "version": 1,
  "name": "lock-storm",
  "procs": 4,
  "seed": 42,
  "phases": [
    {"duration": 50000, "rate": 4, "scenario": "lock", "work": 20},
    {"duration": 50000, "rate": 16, "scenario": "mix", "data_vars": 8,
     "sync_vars": 2, "mix": {"sync_density": 60, "rmw_pct": 34, "sync_read_pct": 50}}
  ]
}`

// TestParseBothSyntaxes pins that the YAML subset and JSON describe the same
// spec: every field of the two parses must agree.
func TestParseBothSyntaxes(t *testing.T) {
	fromYAML, err := Parse([]byte(yamlDoc))
	if err != nil {
		t.Fatalf("Parse(yaml): %v", err)
	}
	fromJSON, err := Parse([]byte(jsonDoc))
	if err != nil {
		t.Fatalf("Parse(json): %v", err)
	}
	if fromYAML.Name != "lock-storm" || fromYAML.Procs != 4 || fromYAML.Seed != 42 {
		t.Fatalf("yaml spec = %+v", fromYAML)
	}
	if len(fromYAML.Phases) != 2 {
		t.Fatalf("yaml spec has %d phases, want 2", len(fromYAML.Phases))
	}
	if fromYAML.Phases[0].Scenario != ScenarioLock || fromYAML.Phases[0].Work != 20 {
		t.Fatalf("yaml phase 0 = %+v", fromYAML.Phases[0])
	}
	if fromYAML.Phases[1].Mix.SyncDensity != 60 {
		t.Fatalf("yaml phase 1 mix = %+v", fromYAML.Phases[1].Mix)
	}
	if fromYAML.Name != fromJSON.Name || fromYAML.Procs != fromJSON.Procs ||
		fromYAML.Seed != fromJSON.Seed || len(fromYAML.Phases) != len(fromJSON.Phases) {
		t.Fatalf("yaml %+v != json %+v", fromYAML, fromJSON)
	}
	for i := range fromYAML.Phases {
		if fromYAML.Phases[i] != fromJSON.Phases[i] {
			t.Fatalf("phase %d: yaml %+v != json %+v", i, fromYAML.Phases[i], fromJSON.Phases[i])
		}
	}
	if fromYAML.EndTime() != 100000 {
		t.Fatalf("EndTime = %d, want 100000", fromYAML.EndTime())
	}
}

// TestParseRejects pins the error paths: unknown fields, bad versions,
// out-of-range knobs, and YAML-subset structural damage all fail with
// ErrSpec and a message naming the problem.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown-top-field", "version: 1\nprocs: 2\nbogus: 1\nphases:\n  - duration: 10\n    rate: 1\n    scenario: mix\n", "unknown field \"bogus\""},
		{"unknown-phase-field", "version: 1\nprocs: 2\nphases:\n  - duration: 10\n    rate: 1\n    scenario: mix\n    turbo: 9\n", "unknown field \"turbo\""},
		{"unknown-mix-field", "version: 1\nprocs: 2\nphases:\n  - duration: 10\n    rate: 1\n    scenario: mix\n    mix:\n      chaos: 1\n", "unknown mix field"},
		{"bad-version", "version: 2\nprocs: 2\nphases:\n  - duration: 10\n    rate: 1\n    scenario: mix\n", "version 2 unsupported"},
		{"missing-version", "procs: 2\nphases:\n  - duration: 10\n    rate: 1\n    scenario: mix\n", "version 0 unsupported"},
		{"zero-procs", "version: 1\nprocs: 0\nphases:\n  - duration: 10\n    rate: 1\n    scenario: mix\n", "procs 0 out of range"},
		{"no-phases", "version: 1\nprocs: 2\n", "no phases"},
		{"zero-duration", "version: 1\nprocs: 2\nphases:\n  - duration: 0\n    rate: 1\n    scenario: mix\n", "duration 0 must be positive"},
		{"zero-rate", "version: 1\nprocs: 2\nphases:\n  - duration: 10\n    rate: 0\n    scenario: mix\n", "rate 0 out of range"},
		{"bad-scenario", "version: 1\nprocs: 2\nphases:\n  - duration: 10\n    rate: 1\n    scenario: warp\n", "scenario \"warp\" unknown"},
		{"mix-over-100", "version: 1\nprocs: 2\nphases:\n  - duration: 10\n    rate: 1\n    scenario: mix\n    mix:\n      sync_density: 101\n", "sync_density 101 exceeds 100"},
		{"prodcons-one-thread", "version: 1\nprocs: 1\nphases:\n  - duration: 10\n    rate: 1\n    scenario: prodcons\n", "prodcons needs at least 2"},
		{"non-integer", "version: one\nprocs: 2\nphases:\n  - duration: 10\n    rate: 1\n    scenario: mix\n", "not an integer"},
		{"tab-indent", "version: 1\n\tprocs: 2\n", "tab in indentation"},
		{"duplicate-key", "version: 1\nversion: 1\nprocs: 2\nphases:\n  - duration: 10\n    rate: 1\n    scenario: mix\n", "duplicate key"},
		{"empty-doc", "", "empty document"},
		{"dangling-key", "version: 1\nprocs: 2\nphases:\n", "has no value"},
		{"bad-json", "{not json}", "workload spec"},
		{"json-float", `{"version": 1, "procs": 2.5, "phases": [{"duration": 10, "rate": 1, "scenario": "mix"}]}`, "not an integer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.doc)
			}
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("error %v does not wrap ErrSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestYAMLSubsetShapes exercises parser corners: scalar sequence items,
// comments in odd places, quoted strings with '#' inside, and indentation
// errors.
func TestYAMLSubsetShapes(t *testing.T) {
	t.Run("quoted-hash", func(t *testing.T) {
		v, err := parseYAML("name: \"a # not a comment\"\n")
		if err != nil {
			t.Fatal(err)
		}
		if v.(map[string]any)["name"] != "a # not a comment" {
			t.Fatalf("parsed %v", v)
		}
	})
	t.Run("scalar-seq", func(t *testing.T) {
		v, err := parseYAML("items:\n  - 1\n  - 2\n")
		if err != nil {
			t.Fatal(err)
		}
		got := v.(map[string]any)["items"].([]any)
		if len(got) != 2 || got[0] != "1" || got[1] != "2" {
			t.Fatalf("parsed %v", got)
		}
	})
	t.Run("dash-alone", func(t *testing.T) {
		v, err := parseYAML("phases:\n  -\n    duration: 5\n")
		if err != nil {
			t.Fatal(err)
		}
		ph := v.(map[string]any)["phases"].([]any)
		if len(ph) != 1 || ph[0].(map[string]any)["duration"] != "5" {
			t.Fatalf("parsed %v", ph)
		}
	})
	t.Run("bad-indent-under-scalar", func(t *testing.T) {
		if _, err := parseYAML("a: 1\n  b: 2\n"); err == nil {
			t.Fatal("accepted mapping nested under a scalar")
		}
	})
	t.Run("misaligned-item-key", func(t *testing.T) {
		if _, err := parseYAML("phases:\n  - duration: 5\n   rate: 1\n"); err == nil {
			t.Fatal("accepted misaligned mapping key in sequence item")
		}
	})
}
