package spec

import (
	"fmt"
	"strings"
)

// parseYAML parses the documented YAML subset into the same generic tree
// shape encoding/json produces (map[string]any, []any), with scalars kept as
// strings for the shared coercion layer. Supported: block mappings, block
// sequences ("- " items), scalar values, '#' comments, single/double quoted
// strings. Not supported (rejected, never misparsed): tabs in indentation,
// anchors, aliases, flow style, multi-line strings, documents.
func parseYAML(src string) (any, error) {
	p := &yparser{}
	for i, raw := range strings.Split(src, "\n") {
		n := i + 1
		line := strings.TrimRight(raw, " \r")
		content := strings.TrimLeft(line, " ")
		if content == "" {
			continue
		}
		indent := len(line) - len(content)
		if strings.HasPrefix(content, "\t") || strings.Contains(line[:indent+1], "\t") {
			return nil, fmt.Errorf("%w: line %d: tab in indentation", ErrSpec, n)
		}
		content = stripComment(content)
		if strings.TrimSpace(content) == "" {
			continue
		}
		p.lines = append(p.lines, yline{n: n, indent: indent, text: content})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("%w: empty document", ErrSpec)
	}
	v, err := p.parseValue(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("%w: line %d: unexpected indentation", ErrSpec, p.lines[p.pos].n)
	}
	return v, nil
}

// stripComment removes a trailing '#' comment that is not inside quotes. A
// '#' only starts a comment at the beginning of content or after a space
// (matching YAML), so "a#b" stays intact.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return strings.TrimRight(s[:i], " ")
		}
	}
	return s
}

type yline struct {
	n      int // 1-based source line
	indent int
	text   string
}

type yparser struct {
	lines []yline
	pos   int
}

// parseValue parses the block starting at the current line, which must sit
// at exactly the given indent.
func (p *yparser) parseValue(indent int) (any, error) {
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, fmt.Errorf("%w: line %d: expected indentation %d, got %d", ErrSpec, l.n, indent, l.indent)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func (p *yparser) parseMap(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("%w: line %d: unexpected indentation", ErrSpec, l.n)
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("%w: line %d: sequence item in mapping", ErrSpec, l.n)
		}
		key, rest, ok := strings.Cut(l.text, ":")
		if !ok {
			return nil, fmt.Errorf("%w: line %d: expected \"key: value\"", ErrSpec, l.n)
		}
		key = strings.TrimSpace(unquote(strings.TrimSpace(key)))
		if key == "" {
			return nil, fmt.Errorf("%w: line %d: empty key", ErrSpec, l.n)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("%w: line %d: duplicate key %q", ErrSpec, l.n, key)
		}
		rest = strings.TrimSpace(rest)
		p.pos++
		if rest != "" {
			m[key] = unquote(rest)
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				return nil, fmt.Errorf("%w: line %d: unexpected indentation under scalar %q", ErrSpec, p.lines[p.pos].n, key)
			}
			continue
		}
		// Block value: the next line must be indented deeper.
		if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
			return nil, fmt.Errorf("%w: line %d: key %q has no value", ErrSpec, l.n, key)
		}
		v, err := p.parseValue(p.lines[p.pos].indent)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

func (p *yparser) parseSeq(indent int) (any, error) {
	list := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		isItem := l.text == "-" || strings.HasPrefix(l.text, "- ")
		if l.indent > indent || !isItem {
			return nil, fmt.Errorf("%w: line %d: expected \"- \" sequence item at indentation %d", ErrSpec, l.n, indent)
		}
		if l.text == "-" {
			// Item body on the following, deeper-indented lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("%w: line %d: empty sequence item", ErrSpec, l.n)
			}
			v, err := p.parseValue(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
			continue
		}
		body := strings.TrimLeft(l.text[2:], " ")
		off := indent + (len(l.text) - len(body))
		if !strings.Contains(body, ":") {
			// Scalar item.
			list = append(list, unquote(body))
			p.pos++
			continue
		}
		// Mapping item: the inline "key: value" plus any following lines
		// aligned with it form one mapping. Re-inject the remainder as a
		// virtual line at the content's column and parse a block there.
		p.lines[p.pos] = yline{n: l.n, indent: off, text: body}
		v, err := p.parseValue(off)
		if err != nil {
			return nil, err
		}
		list = append(list, v)
	}
	return list, nil
}

// unquote strips one matched pair of surrounding single or double quotes.
func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	return s
}
