package workload

import (
	"testing"

	"weakorder/internal/core"
	"weakorder/internal/mem"
	"weakorder/internal/model"
	"weakorder/internal/program"
)

// runSCOnce executes the program on the idealized machine along one schedule
// (first enabled transition each step) and returns the final machine.
func runSCOnce(t *testing.T, p *program.Program) model.Machine {
	t.Helper()
	m := model.NewSC(p)
	for steps := 0; ; steps++ {
		if steps > 1_000_000 {
			t.Fatal("program did not terminate")
		}
		ts := m.Transitions()
		if len(ts) == 0 {
			if !m.Done() {
				t.Fatal("deadlock")
			}
			return m
		}
		// Rotate the choice to avoid starving a spinning thread's partner.
		if err := m.Apply(ts[steps%len(ts)]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	p := Fig3(2, 10)
	if p.NumThreads() != 4 {
		t.Fatalf("threads = %d, want producer+consumer+2 warmers", p.NumThreads())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := runSCOnce(t, p)
	fs := m.Final()
	if fs.Regs[1][1] != 42 {
		t.Errorf("consumer read %d, want 42", fs.Regs[1][1])
	}
}

func TestFig3IsDRF0(t *testing.T) {
	// Three spinning threads make the execution set large; bound executions
	// to a dozen operations (the shortest complete run needs 8, so the
	// bound still covers spin retries of each loop).
	p := Fig3(1, 0)
	enum := &model.Enumerator{Prog: p, Explorer: &model.Explorer{MaxTraceOps: 12}}
	rep, err := core.CheckProgram(enum, core.DRF0{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Obeys() {
		t.Errorf("Fig3 must obey DRF0: %s", rep)
	}
}

func TestProducerConsumerChecksumOnSC(t *testing.T) {
	const items = 5
	p := ProducerConsumer(items, 1)
	m := runSCOnce(t, p)
	if got := m.Final().Mem[XAddr()]; got != ProducerConsumerChecksum(items) {
		t.Errorf("checksum = %d, want %d", got, ProducerConsumerChecksum(items))
	}
}

func TestBarrierSCSenseAdvances(t *testing.T) {
	p := Barrier(3, 4, 1, SpinSync)
	m := runSCOnce(t, p)
	if got := m.Final().Mem[SenseAddr()]; got != 4 {
		t.Errorf("final sense = %d, want 4", got)
	}
}

func TestBarrierRejectsTASSpin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Barrier(2, 1, 1, SpinTAS)
}

func TestLockTotalOnSC(t *testing.T) {
	for _, spin := range []SpinKind{SpinTAS, SpinSync, SpinData} {
		p := Lock(3, 2, 1, 1, spin)
		m := runSCOnce(t, p)
		if got := m.Final().Mem[CtrAddr()]; got != LockTotal(3, 2) {
			t.Errorf("%s: counter = %d, want %d", spin, got, LockTotal(3, 2))
		}
	}
}

func TestLockSyncSpinIsDRF0DataSpinIsNot(t *testing.T) {
	x := &model.Explorer{MaxTraceOps: 28}
	syncP := Lock(2, 1, 0, 0, SpinSync)
	rep, err := core.CheckProgram(&model.Enumerator{Prog: syncP, Explorer: x}, core.DRF0{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Obeys() {
		t.Errorf("sync-spin lock must obey DRF0: %s", rep)
	}
	dataP := Lock(2, 1, 0, 0, SpinData)
	rep, err = core.CheckProgram(&model.Enumerator{Prog: dataP, Explorer: x}, core.DRF0{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Obeys() {
		t.Error("data-spin lock should violate DRF0 (the Section-6 idiom)")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	cfg := RandomConfig{Procs: 2, Ops: 5, SyncDensity: 50}
	a := Random(3, cfg)
	b := Random(3, cfg)
	if len(a.Threads) != len(b.Threads) {
		t.Fatal("thread counts differ")
	}
	for i := range a.Threads {
		if len(a.Threads[i]) != len(b.Threads[i]) {
			t.Fatalf("thread %d lengths differ", i)
		}
		for j := range a.Threads[i] {
			if a.Threads[i][j] != b.Threads[i][j] {
				t.Fatalf("instruction %d/%d differs", i, j)
			}
		}
	}
	c := Random(4, cfg)
	same := len(a.Threads[0]) == len(c.Threads[0])
	if same {
		for j := range a.Threads[0] {
			if a.Threads[0][j] != c.Threads[0][j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical first threads (suspicious)")
	}
}

func TestRandomAddressSpacesDisjoint(t *testing.T) {
	p := Random(1, RandomConfig{Procs: 3, Ops: 12, SyncDensity: 50})
	for ti, code := range p.Threads {
		for ii, in := range code {
			op, ok := in.MemOp()
			if !ok {
				continue
			}
			if op.IsSync() && in.Addr < randSyncBase {
				t.Errorf("T%d@%d: sync op on data address x%d", ti, ii, in.Addr)
			}
			if !op.IsSync() && in.Addr >= randSyncBase {
				t.Errorf("T%d@%d: data op on sync address x%d", ti, ii, in.Addr)
			}
		}
	}
}

func TestRandomDRFIsDRF0(t *testing.T) {
	// By-construction race freedom, verified by the checker for a few
	// seeds. Kept small: lock spins explode history-keyed enumeration.
	for seed := int64(0); seed < 4; seed++ {
		p := RandomDRF(seed, 2, 1, 1)
		enum := &model.Enumerator{Prog: p, Explorer: &model.Explorer{MaxTraceOps: 16}}
		rep, err := core.CheckProgram(enum, core.DRF0{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Obeys() {
			t.Errorf("seed %d: RandomDRF program violates DRF0: %s", seed, rep)
		}
	}
}

func TestRandomGuardedIsDRF0(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p := RandomGuarded(seed, 1+int(seed%3), int(seed%2))
		enum := &model.Enumerator{Prog: p, Explorer: &model.Explorer{}}
		rep, err := core.CheckProgram(enum, core.DRF0{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Obeys() {
			t.Errorf("seed %d: guarded program violates DRF0: %s", seed, rep)
		}
	}
}

func TestSpinKindStrings(t *testing.T) {
	if SpinSync.String() != "sync-spin" || SpinData.String() != "data-spin" || SpinTAS.String() != "tas-spin" {
		t.Error("spin kind strings wrong")
	}
}

func TestWorkloadLocationsDistinct(t *testing.T) {
	locs := []mem.Addr{locX, locS, locGo, locData, locFlag, locAck, locCount, locSense, locLock, locCtr}
	seen := map[mem.Addr]bool{}
	for _, a := range locs {
		if seen[a] {
			t.Fatalf("duplicate workload location %d", a)
		}
		seen[a] = true
	}
}
