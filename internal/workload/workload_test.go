package workload

import (
	"testing"

	"weakorder/internal/core"
	"weakorder/internal/mem"
	"weakorder/internal/model"
	"weakorder/internal/program"
)

// runSCOnce executes the program on the idealized machine along one schedule
// (first enabled transition each step) and returns the final machine.
func runSCOnce(t *testing.T, p *program.Program) model.Machine {
	t.Helper()
	m := model.NewSC(p)
	for steps := 0; ; steps++ {
		if steps > 1_000_000 {
			t.Fatal("program did not terminate")
		}
		ts := m.Transitions()
		if len(ts) == 0 {
			if !m.Done() {
				t.Fatal("deadlock")
			}
			return m
		}
		// Rotate the choice to avoid starving a spinning thread's partner.
		if err := m.Apply(ts[steps%len(ts)]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	p := Fig3(2, 10)
	if p.NumThreads() != 4 {
		t.Fatalf("threads = %d, want producer+consumer+2 warmers", p.NumThreads())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := runSCOnce(t, p)
	fs := m.Final()
	if fs.Regs[1][1] != 42 {
		t.Errorf("consumer read %d, want 42", fs.Regs[1][1])
	}
}

func TestFig3IsDRF0(t *testing.T) {
	// Three spinning threads make the execution set large; bound executions
	// to a dozen operations (the shortest complete run needs 8, so the
	// bound still covers spin retries of each loop).
	p := Fig3(1, 0)
	enum := &model.Enumerator{Prog: p, Explorer: &model.Explorer{MaxTraceOps: 12}}
	rep, err := core.CheckProgram(enum, core.DRF0{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Obeys() {
		t.Errorf("Fig3 must obey DRF0: %s", rep)
	}
}

func TestProducerConsumerChecksumOnSC(t *testing.T) {
	const items = 5
	p := ProducerConsumer(items, 1)
	m := runSCOnce(t, p)
	if got := m.Final().Mem[XAddr()]; got != ProducerConsumerChecksum(items) {
		t.Errorf("checksum = %d, want %d", got, ProducerConsumerChecksum(items))
	}
}

func TestBarrierSCSenseAdvances(t *testing.T) {
	p := Barrier(3, 4, 1, SpinSync)
	m := runSCOnce(t, p)
	if got := m.Final().Mem[SenseAddr()]; got != 4 {
		t.Errorf("final sense = %d, want 4", got)
	}
}

func TestBarrierRejectsTASSpin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Barrier(2, 1, 1, SpinTAS)
}

func TestLockTotalOnSC(t *testing.T) {
	for _, spin := range []SpinKind{SpinTAS, SpinSync, SpinData} {
		p := Lock(3, 2, 1, 1, spin)
		m := runSCOnce(t, p)
		if got := m.Final().Mem[CtrAddr()]; got != LockTotal(3, 2) {
			t.Errorf("%s: counter = %d, want %d", spin, got, LockTotal(3, 2))
		}
	}
}

func TestLockSyncSpinIsDRF0DataSpinIsNot(t *testing.T) {
	x := &model.Explorer{MaxTraceOps: 28}
	syncP := Lock(2, 1, 0, 0, SpinSync)
	rep, err := core.CheckProgram(&model.Enumerator{Prog: syncP, Explorer: x}, core.DRF0{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Obeys() {
		t.Errorf("sync-spin lock must obey DRF0: %s", rep)
	}
	dataP := Lock(2, 1, 0, 0, SpinData)
	rep, err = core.CheckProgram(&model.Enumerator{Prog: dataP, Explorer: x}, core.DRF0{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Obeys() {
		t.Error("data-spin lock should violate DRF0 (the Section-6 idiom)")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	cfg := RandomConfig{Procs: 2, Ops: 5, SyncDensity: 50}
	a := Random(3, cfg)
	b := Random(3, cfg)
	if len(a.Threads) != len(b.Threads) {
		t.Fatal("thread counts differ")
	}
	for i := range a.Threads {
		if len(a.Threads[i]) != len(b.Threads[i]) {
			t.Fatalf("thread %d lengths differ", i)
		}
		for j := range a.Threads[i] {
			if a.Threads[i][j] != b.Threads[i][j] {
				t.Fatalf("instruction %d/%d differs", i, j)
			}
		}
	}
	c := Random(4, cfg)
	same := len(a.Threads[0]) == len(c.Threads[0])
	if same {
		for j := range a.Threads[0] {
			if a.Threads[0][j] != c.Threads[0][j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical first threads (suspicious)")
	}
}

func TestRandomAddressSpacesDisjoint(t *testing.T) {
	p := Random(1, RandomConfig{Procs: 3, Ops: 12, SyncDensity: 50})
	for ti, code := range p.Threads {
		for ii, in := range code {
			op, ok := in.MemOp()
			if !ok {
				continue
			}
			if op.IsSync() && in.Addr < randSyncBase {
				t.Errorf("T%d@%d: sync op on data address x%d", ti, ii, in.Addr)
			}
			if !op.IsSync() && in.Addr >= randSyncBase {
				t.Errorf("T%d@%d: data op on sync address x%d", ti, ii, in.Addr)
			}
		}
	}
}

// opCounts tallies the memory-op mix of a program for the generator tests.
func opCounts(p *program.Program) (syncLd, syncSt, tas, faa, data, branches int) {
	for _, code := range p.Threads {
		for _, in := range code {
			switch in.Op {
			case program.ISyncLoad:
				syncLd++
			case program.ISyncStore:
				syncSt++
			case program.ISyncRMW:
				if in.RMW == program.RMWAdd {
					faa++
				} else {
					tas++
				}
			case program.ILoad, program.IStore:
				data++
			case program.IBeq, program.IBne, program.IBlt, program.IJmp:
				branches++
			}
		}
	}
	return
}

// TestRandomSyncDensityDefaultAndOff pins the percentage-knob convention on
// SyncDensity: the zero value defaults to DefaultSyncDensity (so sync ops
// appear), a negative value means exactly zero percent (so none do).
func TestRandomSyncDensityDefaultAndOff(t *testing.T) {
	defaulted := 0
	for seed := int64(0); seed < 8; seed++ {
		p := Random(seed, RandomConfig{Procs: 2, Ops: 6})
		sl, ss, tas, faa, _, _ := opCounts(p)
		defaulted += sl + ss + tas + faa
	}
	if defaulted == 0 {
		t.Fatal("zero SyncDensity must default, not mean 0%: no sync ops across 8 seeds")
	}
	for seed := int64(0); seed < 8; seed++ {
		p := Random(seed, RandomConfig{Procs: 2, Ops: 6, SyncDensity: -1})
		if sl, ss, tas, faa, _, _ := opCounts(p); sl+ss+tas+faa != 0 {
			t.Fatalf("seed %d: negative SyncDensity must emit no sync ops, got %d/%d/%d/%d",
				seed, sl, ss, tas, faa)
		}
	}
}

// TestRandomMixerKnobExtremes drives each mixer knob to its edges and checks
// the emitted op mix honors them.
func TestRandomMixerKnobExtremes(t *testing.T) {
	base := RandomConfig{Procs: 2, Ops: 8, SyncDensity: 100}
	cases := []struct {
		name  string
		tweak func(*RandomConfig)
		check func(t *testing.T, syncLd, syncSt, tas, faa int)
	}{
		{
			name:  "RMWPct=100 makes every sync op an RMW",
			tweak: func(c *RandomConfig) { c.RMWPct = 100 },
			check: func(t *testing.T, sl, ss, tas, faa int) {
				if sl+ss != 0 || tas+faa == 0 {
					t.Fatalf("mix = ld%d st%d tas%d faa%d, want RMWs only", sl, ss, tas, faa)
				}
			},
		},
		{
			name:  "RMWPct=100 FetchAddPct=100 makes every RMW a FetchAdd",
			tweak: func(c *RandomConfig) { c.RMWPct = 100; c.FetchAddPct = 100 },
			check: func(t *testing.T, sl, ss, tas, faa int) {
				if tas != 0 || faa == 0 {
					t.Fatalf("mix = tas%d faa%d, want FetchAdds only", tas, faa)
				}
			},
		},
		{
			name:  "RMWPct<0 SyncReadPct=100 makes every sync op a Test",
			tweak: func(c *RandomConfig) { c.RMWPct = -1; c.SyncReadPct = 100 },
			check: func(t *testing.T, sl, ss, tas, faa int) {
				if ss+tas+faa != 0 || sl == 0 {
					t.Fatalf("mix = ld%d st%d tas%d faa%d, want sync reads only", sl, ss, tas, faa)
				}
			},
		},
		{
			name:  "RMWPct<0 SyncReadPct<0 makes every sync op an Unset",
			tweak: func(c *RandomConfig) { c.RMWPct = -1; c.SyncReadPct = -1 },
			check: func(t *testing.T, sl, ss, tas, faa int) {
				if sl+tas+faa != 0 || ss == 0 {
					t.Fatalf("mix = ld%d st%d tas%d faa%d, want sync writes only", sl, ss, tas, faa)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.tweak(&cfg)
			var sl, ss, tas, faa int
			for seed := int64(0); seed < 6; seed++ {
				a, b, c, d, _, _ := opCounts(Random(seed, cfg))
				sl, ss, tas, faa = sl+a, ss+b, tas+c, faa+d
			}
			tc.check(t, sl, ss, tas, faa)
		})
	}
}

// TestRandomCondPctEmitsForwardGuards checks the guarded-block knob: with
// CondPct at 100 every op slot opens with the consumer idiom (sync read, then
// a forward branch over data accesses), and the result is still a valid
// loop-free program.
func TestRandomCondPctEmitsForwardGuards(t *testing.T) {
	sawGuard := false
	for seed := int64(0); seed < 6; seed++ {
		p := Random(seed, RandomConfig{Procs: 2, Ops: 4, SyncDensity: 50, CondPct: 100})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, _, _, _, _, branches := opCounts(p)
		if branches > 0 {
			sawGuard = true
		}
		for ti, code := range p.Threads {
			for ii, in := range code {
				if in.Op == program.IBeq && in.Target <= ii {
					t.Fatalf("seed %d T%d@%d: guard branch must be forward (target %d)",
						seed, ti, ii, in.Target)
				}
			}
		}
	}
	if !sawGuard {
		t.Fatal("CondPct=100 emitted no guarded blocks across 6 seeds")
	}
}

// TestRandomLegacyStreamPinned is the regression guard for the generator's
// backward compatibility: with all mixer knobs zero the per-seed instruction
// stream must stay byte-identical to the original equal-thirds generator,
// because the deterministic experiment sweeps (experiments.Contract) assert
// violation counts at fixed seeds. The golden program below was captured from
// the pre-knob generator; if this test fails, a code change consumed rng
// draws differently on the legacy path.
func TestRandomLegacyStreamPinned(t *testing.T) {
	want := [][]string{
		{
			"st x100, 1",
			"ld r0, x100",
			"sync.ld r0, x200",
			"ld r3, x100",
			"halt",
		},
		{
			"sync.ld r1, x200",
			"sync.ld r3, x200",
			"sync.ld r3, x200",
			"sync.st x200, 2",
			"halt",
		},
	}
	for _, cfg := range []RandomConfig{
		{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4, SyncDensity: 35},
		// Negative CondPct normalizes to 0 and must not shift the stream.
		{Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4, SyncDensity: 35, CondPct: -1},
	} {
		p := Random(7, cfg)
		if len(p.Threads) != len(want) {
			t.Fatalf("threads = %d, want %d", len(p.Threads), len(want))
		}
		for ti, code := range p.Threads {
			if len(code) != len(want[ti]) {
				t.Fatalf("thread %d has %d instrs, want %d — legacy rng stream shifted", ti, len(code), len(want[ti]))
			}
			for ii, in := range code {
				if got := in.String(); got != want[ti][ii] {
					t.Fatalf("T%d@%d: %q != %q — legacy rng stream shifted", ti, ii, got, want[ti][ii])
				}
			}
		}
	}
}

func TestRandomDRFIsDRF0(t *testing.T) {
	// By-construction race freedom, verified by the checker for a few
	// seeds. Kept small: lock spins explode history-keyed enumeration.
	for seed := int64(0); seed < 4; seed++ {
		p := RandomDRF(seed, 2, 1, 1)
		enum := &model.Enumerator{Prog: p, Explorer: &model.Explorer{MaxTraceOps: 16}}
		rep, err := core.CheckProgram(enum, core.DRF0{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Obeys() {
			t.Errorf("seed %d: RandomDRF program violates DRF0: %s", seed, rep)
		}
	}
}

func TestRandomGuardedIsDRF0(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p := RandomGuarded(seed, 1+int(seed%3), int(seed%2))
		enum := &model.Enumerator{Prog: p, Explorer: &model.Explorer{}}
		rep, err := core.CheckProgram(enum, core.DRF0{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Obeys() {
			t.Errorf("seed %d: guarded program violates DRF0: %s", seed, rep)
		}
	}
}

func TestSpinKindStrings(t *testing.T) {
	if SpinSync.String() != "sync-spin" || SpinData.String() != "data-spin" || SpinTAS.String() != "tas-spin" {
		t.Error("spin kind strings wrong")
	}
}

func TestWorkloadLocationsDistinct(t *testing.T) {
	locs := []mem.Addr{locX, locS, locGo, locData, locFlag, locAck, locCount, locSense, locLock, locCtr}
	seen := map[mem.Addr]bool{}
	for _, a := range locs {
		if seen[a] {
			t.Fatalf("duplicate workload location %d", a)
		}
		seen[a] = true
	}
}
