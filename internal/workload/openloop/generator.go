package openloop

import (
	"fmt"
	"math/rand"

	"weakorder/internal/mem"
	"weakorder/internal/sim"
	"weakorder/internal/workload/spec"
	"weakorder/internal/workload/tracefmt"
)

// Generator derives the arrival stream from (spec, seed). Each processor
// owns an independent RNG seeded from (seed, processor), so its stream is
// unaffected by how the machine interleaves pulls across processors — the
// property record/replay byte-identity rests on.
type Generator struct {
	spec  *spec.Spec
	lay   layout
	procs []genProc
}

// genProc is one processor's generation cursor.
type genProc struct {
	rng   *rand.Rand
	phase int      // index into spec.Phases
	start sim.Time // current phase's start time
	// cursor is the Poisson arrival clock within the current phase
	// (mix/lock scenarios); episode counts paced episodes (barrier,
	// prodcons).
	cursor  float64
	episode int
	// barBase/pcBase accumulate episode counts of *earlier* barrier and
	// prodcons phases, keeping sense targets and flag sequence numbers
	// monotone across phases that reuse the same words.
	barBase, pcBase int64
	// val is the per-processor write-value counter.
	val mem.Value
	// queue is the generated-but-undelivered burst (head-indexed to avoid
	// re-slicing churn; one arrival generates at most a handful of records).
	queue []tracefmt.Record
	head  int
}

// NewGenerator validates the spec and builds a generator. seed 0 falls back
// to the spec's own seed (and then to 1, so the zero value still runs).
func NewGenerator(s *spec.Spec, seed int64) (*Generator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = s.Seed
	}
	if seed == 0 {
		seed = 1
	}
	g := &Generator{spec: s, lay: layoutOf(s), procs: make([]genProc, s.Procs)}
	for i := range g.procs {
		// Golden-ratio stride decorrelates per-processor seeds without
		// shared draws.
		g.procs[i] = genProc{rng: rand.New(rand.NewSource(seed + int64(i)*-0x61c8864680b583eb)), val: 1}
	}
	return g, nil
}

// Next implements Source.
func (g *Generator) Next(procID int) (tracefmt.Record, bool, error) {
	if procID < 0 || procID >= len(g.procs) {
		return tracefmt.Record{}, false, fmt.Errorf("openloop: P%d out of range [0,%d)", procID, len(g.procs))
	}
	p := &g.procs[procID]
	for p.head >= len(p.queue) {
		p.queue, p.head = p.queue[:0], 0
		if p.phase >= len(g.spec.Phases) {
			return tracefmt.Record{}, false, nil
		}
		g.generate(procID, p)
	}
	r := p.queue[p.head]
	p.head++
	return r, true, nil
}

// push appends one record to the processor's pending burst.
func (p *genProc) push(r tracefmt.Record) { p.queue = append(p.queue, r) }

// nextPhase advances the cursor past the current phase, rolling paced
// episode counts into the monotone bases.
func (g *Generator) nextPhase(p *genProc) {
	ph := &g.spec.Phases[p.phase]
	switch ph.Scenario {
	case spec.ScenarioBarrier:
		p.barBase += int64(episodes(ph))
	case spec.ScenarioProdCons:
		p.pcBase += int64(episodes(ph))
	}
	p.start += ph.Duration
	p.phase++
	p.cursor = 0
	p.episode = 0
}

// episodes is the forced-equal episode count of a paced phase: every
// processor joins exactly this many barrier/prodcons episodes, so the phase
// cannot deadlock on mismatched arrival draws.
func episodes(ph *spec.Phase) int {
	n := int(int64(ph.Duration) * int64(ph.Rate) / 1000)
	if n < 1 {
		n = 1
	}
	return n
}

// pct resolves a mix knob under the RandomConfig convention: zero means the
// default, negative means zero percent.
func pct(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// generate produces one arrival (or advances one phase) for procID.
func (g *Generator) generate(procID int, p *genProc) {
	ph := &g.spec.Phases[p.phase]
	switch ph.Scenario {
	case spec.ScenarioMix, spec.ScenarioLock:
		// Poisson arrivals: exponential inter-arrival gaps with mean
		// 1000/Rate. The explicit float64 conversions pin IEEE rounding at
		// each step so no build may fuse the arithmetic and shift arrivals.
		gap := float64(p.rng.ExpFloat64() * (1000.0 / float64(ph.Rate)))
		p.cursor = float64(p.cursor + gap)
		if p.cursor >= float64(ph.Duration) {
			g.nextPhase(p)
			return
		}
		at := p.start + sim.Time(p.cursor)
		if ph.Scenario == spec.ScenarioMix {
			g.emitMix(procID, p, ph, at)
		} else {
			g.emitLock(procID, p, ph, at)
		}
	case spec.ScenarioBarrier:
		n := episodes(ph)
		if p.episode >= n {
			g.nextPhase(p)
			return
		}
		k := p.episode
		p.episode++
		at := p.start + pacedAt(ph.Duration, k, n)
		if ph.Work > 0 {
			p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindWork, Value: mem.Value(ph.Work)})
		}
		p.push(tracefmt.Record{
			Proc: procID, At: at, Kind: tracefmt.KindBarrier,
			Addr: g.lay.barCnt, Aux: g.lay.barSns,
			Value: mem.Value(p.barBase + int64(k) + 1),
			Arg:   mem.Value(g.spec.Procs - 1),
		})
	case spec.ScenarioProdCons:
		pairs := g.spec.Procs / 2
		if procID >= pairs*2 {
			// Odd processor count: the unpaired processor sits this phase out.
			g.nextPhase(p)
			return
		}
		n := episodes(ph)
		if p.episode >= n {
			g.nextPhase(p)
			return
		}
		k := int64(p.episode)
		p.episode++
		at := p.start + pacedAt(ph.Duration, int(k), n)
		pair := procID / 2
		flag := g.lay.pcFlags + 2*mem.Addr(pair)
		ack := flag + 1
		data := g.lay.pcData + mem.Addr(pair)
		seq := p.pcBase + k
		if procID%2 == 0 {
			// Producer: wait for the consumer's previous acknowledgement
			// (flow control keeps the data hand-off data-race-free), write
			// the payload, release through the flag.
			p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindAwaitGE, Addr: ack, Value: mem.Value(seq)})
			if ph.Work > 0 {
				p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindWork, Value: mem.Value(ph.Work)})
			}
			p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindWrite, Addr: data, Value: p.val})
			p.val++
			p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindSyncWrite, Addr: flag, Value: mem.Value(seq + 1)})
		} else {
			// Consumer: await the flag, read under it, acknowledge.
			p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindAwaitGE, Addr: flag, Value: mem.Value(seq + 1)})
			p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindRead, Addr: data})
			if ph.Work > 0 {
				p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindWork, Value: mem.Value(ph.Work)})
			}
			p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindSyncWrite, Addr: ack, Value: mem.Value(seq + 1)})
		}
	}
}

// pacedAt spaces episode k of n evenly across the phase.
func pacedAt(d sim.Time, k, n int) sim.Time {
	return sim.Time(int64(k) * int64(d) / int64(n))
}

// emitMix draws one independent operation from the sync-density mix
// (mirroring workload.Random's explicit percentage mixer).
func (g *Generator) emitMix(procID int, p *genProc, ph *spec.Phase, at sim.Time) {
	if ph.Work > 0 {
		p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindWork, Value: mem.Value(ph.Work)})
	}
	dv, sv := effVars(ph)
	density := pct(ph.Mix.SyncDensity, 40)
	if p.rng.Intn(100) < density {
		s := g.lay.mixSync + mem.Addr(p.rng.Intn(sv))
		rmw := pct(ph.Mix.RMWPct, 34)
		syncRead := pct(ph.Mix.SyncReadPct, 50)
		fetchAdd := pct(ph.Mix.FetchAddPct, 0)
		switch {
		case p.rng.Intn(100) < rmw:
			if p.rng.Intn(100) < fetchAdd {
				p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindFetchAdd, Addr: s, Value: 1})
			} else {
				p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindTAS, Addr: s, Value: p.val})
				p.val++
			}
		case p.rng.Intn(100) < syncRead:
			p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindSyncRead, Addr: s})
		default:
			p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindSyncWrite, Addr: s, Value: p.val})
			p.val++
		}
		return
	}
	d := g.lay.mixData + mem.Addr(p.rng.Intn(dv))
	if p.rng.Intn(2) == 0 {
		p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindRead, Addr: d})
	} else {
		p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindWrite, Addr: d, Value: p.val})
		p.val++
	}
}

// emitLock emits one lock-protected critical section: acquire, counter
// read/write, optional local work, release — all arriving together.
func (g *Generator) emitLock(procID int, p *genProc, ph *spec.Phase, at sim.Time) {
	_, sv := effVars(ph)
	li := p.rng.Intn(sv)
	lock := g.lay.locks + mem.Addr(li)
	ctr := g.lay.lockCtr + mem.Addr(li)
	p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindLockAcquire, Addr: lock})
	p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindRead, Addr: ctr})
	p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindWrite, Addr: ctr, Value: p.val})
	p.val++
	if ph.Work > 0 {
		p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindWork, Value: mem.Value(ph.Work)})
	}
	p.push(tracefmt.Record{Proc: procID, At: at, Kind: tracefmt.KindLockRelease, Addr: lock})
}
