package openloop

import (
	"fmt"
	"io"

	"weakorder/internal/workload/tracefmt"
)

// Recorder tees a Source into a trace writer: every record is written in the
// exact order the machine pulls it. The engine is single-threaded and
// dispatches same-cycle events deterministically, so the pull order — and
// with it the recorded byte stream — is reproducible run over run. The
// caller closes the writer after the run drains.
type Recorder struct {
	src Source
	w   *tracefmt.Writer
}

// NewRecorder wraps src, recording through w.
func NewRecorder(src Source, w *tracefmt.Writer) *Recorder {
	return &Recorder{src: src, w: w}
}

// Next implements Source.
func (r *Recorder) Next(proc int) (tracefmt.Record, bool, error) {
	rec, ok, err := r.src.Next(proc)
	if err != nil || !ok {
		return rec, ok, err
	}
	if err := r.w.Write(rec); err != nil {
		return tracefmt.Record{}, false, fmt.Errorf("openloop: recording trace: %w", err)
	}
	return rec, true, nil
}

// maxReplayWindow bounds each processor's demux queue. The trace is stored
// in pull order, so replaying on the machine that recorded it keeps every
// queue near-empty; a window overflow means the trace and the machine
// disagree wildly about scheduling (wrong pool width changing pull order is
// impossible — the engine is deterministic — so this indicates a foreign or
// corrupted trace) and the replay fails loudly instead of buffering the
// whole file.
const maxReplayWindow = 1 << 16

// Replayer demultiplexes a recorded trace back into per-processor streams.
// Records for not-yet-requested processors buffer in bounded FIFO windows;
// memory stays O(window), not O(trace).
type Replayer struct {
	r      *tracefmt.Reader
	queues [][]tracefmt.Record
	heads  []int
	eof    bool
	err    error
}

// NewReplayer wraps an open trace reader (header already consumed).
func NewReplayer(r *tracefmt.Reader) *Replayer {
	n := r.Header().Procs
	return &Replayer{r: r, queues: make([][]tracefmt.Record, n), heads: make([]int, n)}
}

// Next implements Source.
func (rp *Replayer) Next(proc int) (tracefmt.Record, bool, error) {
	if proc < 0 || proc >= len(rp.queues) {
		return tracefmt.Record{}, false, fmt.Errorf("openloop: replay P%d out of range [0,%d)", proc, len(rp.queues))
	}
	for rp.heads[proc] >= len(rp.queues[proc]) {
		rp.queues[proc], rp.heads[proc] = rp.queues[proc][:0], 0
		if rp.err != nil {
			// Sticky: every processor sees the decode failure, and the
			// engine's first-error-wins keeps the root cause.
			return tracefmt.Record{}, false, rp.err
		}
		if rp.eof {
			return tracefmt.Record{}, false, nil
		}
		rec, err := rp.r.Next()
		if err == io.EOF {
			rp.eof = true
			continue
		}
		if err != nil {
			rp.err = fmt.Errorf("openloop: replaying trace: %w", err)
			return tracefmt.Record{}, false, rp.err
		}
		q := rec.Proc
		if len(rp.queues[q])-rp.heads[q] >= maxReplayWindow {
			rp.err = fmt.Errorf("openloop: replay demux window for P%d exceeded %d records (trace does not match this machine)", q, maxReplayWindow)
			return tracefmt.Record{}, false, rp.err
		}
		rp.queues[q] = append(rp.queues[q], rec)
	}
	rec := rp.queues[proc][rp.heads[proc]]
	rp.heads[proc]++
	return rec, true, nil
}
