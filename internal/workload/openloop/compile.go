package openloop

import (
	"fmt"

	"weakorder/internal/proc"
	"weakorder/internal/program"
	"weakorder/internal/workload/tracefmt"
)

// maxFragCache bounds the compiled-fragment cache. Workloads draw from small
// address pools so the working set of distinct fragments is tiny, but the
// cache is keyed by record *values* too (a Write's stored value is an
// immediate), and per-processor value counters make those unbounded — the
// cap keeps compilation O(1) memory on multi-million-op runs. Beyond the cap
// fragments compile fresh: correctness never depends on a cache hit.
const maxFragCache = 4096

// fragKey identifies a fragment up to the fields that shape its code:
// everything in the record except processor and arrival time.
type fragKey struct {
	kind       tracefmt.Kind
	addr, aux  uint32
	value, arg int64
}

// Compiled adapts a Source to proc.Workload by compiling each record into a
// code fragment.
type Compiled struct {
	src   Source
	cache map[fragKey]program.Code
}

// Compile wraps a record source as a processor workload.
func Compile(src Source) *Compiled {
	return &Compiled{src: src, cache: make(map[fragKey]program.Code)}
}

// Next implements proc.Workload.
func (c *Compiled) Next(procID int) (proc.Job, bool, error) {
	r, ok, err := c.src.Next(procID)
	if err != nil || !ok {
		return proc.Job{}, false, err
	}
	key := fragKey{kind: r.Kind, addr: uint32(r.Addr), aux: uint32(r.Aux), value: int64(r.Value), arg: int64(r.Arg)}
	code, hit := c.cache[key]
	if !hit {
		code, err = compileFragment(r)
		if err != nil {
			return proc.Job{}, false, err
		}
		if len(c.cache) < maxFragCache {
			c.cache[key] = code
		}
	}
	return proc.Job{At: r.At, Code: code}, true, nil
}

// compileFragment lowers one arrival record to straight-line code (with
// backward spin branches for the composite kinds). Scratch registers r1/r2
// are clobbered freely — the open-loop workloads carry no live values across
// fragments.
func compileFragment(r tracefmt.Record) (program.Code, error) {
	b := program.NewBuilder("frag-" + r.Kind.String())
	b.Thread()
	switch r.Kind {
	case tracefmt.KindRead:
		b.Load(1, r.Addr)
	case tracefmt.KindWrite:
		b.Store(r.Addr, program.Imm(r.Value))
	case tracefmt.KindSyncRead:
		b.SyncLoad(1, r.Addr)
	case tracefmt.KindSyncWrite:
		b.SyncStore(r.Addr, program.Imm(r.Value))
	case tracefmt.KindTAS:
		b.TestAndSet(1, r.Addr, program.Imm(r.Value))
	case tracefmt.KindFetchAdd:
		b.FetchAdd(1, r.Addr, program.Imm(r.Value))
	case tracefmt.KindWork:
		b.Nop(int(r.Value))
	case tracefmt.KindLockAcquire:
		b.Label("spin")
		b.TestAndSet(1, r.Addr, program.Imm(1))
		b.Bne(1, program.Imm(0), "spin")
	case tracefmt.KindLockRelease:
		b.SyncStore(r.Addr, program.Imm(0))
	case tracefmt.KindAwaitGE:
		b.Label("spin")
		b.SyncLoad(1, r.Addr)
		b.Blt(1, program.Imm(r.Value), "spin")
	case tracefmt.KindBarrier:
		// Sense-"reversing" barrier with a monotone episode counter as the
		// sense: arrive on the counter; the last arriver (previous count ==
		// Arg) resets the counter for the next episode, then publishes the
		// episode number; everyone else spins until the sense reaches it.
		b.FetchAdd(1, r.Addr, program.Imm(1))
		b.Beq(1, program.Imm(r.Arg), "last")
		b.Label("spin")
		b.SyncLoad(2, r.Aux)
		b.Blt(2, program.Imm(r.Value), "spin")
		b.Jmp("end")
		b.Label("last")
		b.SyncStore(r.Addr, program.Imm(0))
		b.SyncStore(r.Aux, program.Imm(r.Value))
		b.Label("end")
	default:
		return nil, fmt.Errorf("openloop: cannot compile record kind %s", r.Kind)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("openloop: compiling %s fragment: %w", r.Kind, err)
	}
	return p.Threads[0], nil
}
