package openloop

import (
	"bytes"
	"testing"

	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/proc"
	"weakorder/internal/sim"
	"weakorder/internal/workload/spec"
	"weakorder/internal/workload/tracefmt"
)

// testSpec builds a four-phase spec touching every scenario.
func testSpec(procs int) *spec.Spec {
	return &spec.Spec{
		SpecVersion: spec.Version,
		Name:        "openloop-test",
		Procs:       procs,
		Seed:        7,
		Phases: []spec.Phase{
			{Duration: 4000, Rate: 5, Scenario: spec.ScenarioMix, Work: 3},
			{Duration: 4000, Rate: 5, Scenario: spec.ScenarioLock, Work: 2},
			{Duration: 4000, Rate: 3, Scenario: spec.ScenarioBarrier},
			{Duration: 4000, Rate: 3, Scenario: spec.ScenarioProdCons},
		},
	}
}

// runSpec assembles and runs a machine over the spec with the given source.
func runSpec(t *testing.T, s *spec.Spec, src Source, tweak func(*machine.Config)) *machine.Result {
	t.Helper()
	prog, err := Program(s)
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	cfg := machine.NewConfig(proc.PolicyWODef2)
	cfg.Workload = Compile(src)
	if tweak != nil {
		tweak(&cfg)
	}
	res, err := machine.Run(prog, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestGeneratorDeterministicAcrossPullOrder pins the order-independence
// contract: a processor's stream is the same whether pulls interleave
// round-robin or drain one processor at a time.
func TestGeneratorDeterministicAcrossPullOrder(t *testing.T) {
	s := testSpec(4)
	drain := func(order string) [][]tracefmt.Record {
		g, err := NewGenerator(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]tracefmt.Record, s.Procs)
		switch order {
		case "sequential":
			for p := 0; p < s.Procs; p++ {
				for {
					r, ok, err := g.Next(p)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						break
					}
					out[p] = append(out[p], r)
				}
			}
		case "roundrobin":
			live := s.Procs
			alive := make([]bool, s.Procs)
			for i := range alive {
				alive[i] = true
			}
			for live > 0 {
				for p := 0; p < s.Procs; p++ {
					if !alive[p] {
						continue
					}
					r, ok, err := g.Next(p)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						alive[p] = false
						live--
						continue
					}
					out[p] = append(out[p], r)
				}
			}
		}
		return out
	}
	a, b := drain("sequential"), drain("roundrobin")
	for p := range a {
		if len(a[p]) != len(b[p]) {
			t.Fatalf("P%d: %d records sequential vs %d round-robin", p, len(a[p]), len(b[p]))
		}
		for i := range a[p] {
			if a[p][i] != b[p][i] {
				t.Fatalf("P%d record %d differs: %+v vs %+v", p, i, a[p][i], b[p][i])
			}
		}
		if len(a[p]) == 0 {
			t.Fatalf("P%d generated no records", p)
		}
	}
}

// TestGeneratorMonotonePerProcTimes pins the tracefmt writability invariant:
// per-processor arrival times never regress, across phase boundaries
// included.
func TestGeneratorMonotonePerProcTimes(t *testing.T) {
	s := testSpec(3)
	g, err := NewGenerator(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := make([]sim.Time, s.Procs)
	for p := 0; p < s.Procs; p++ {
		for {
			r, ok, err := g.Next(p)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if r.At < last[p] {
				t.Fatalf("P%d time regressed %d -> %d", p, last[p], r.At)
			}
			last[p] = r.At
		}
	}
}

// TestOpenLoopEndToEnd runs the all-scenario spec on the timed machine and
// checks the structural invariants: the run drains, the recorded execution
// validates (contiguous per-processor op indices across fragments), every
// barrier episode completed (counter back to zero, sense at the episode
// total), and the prodcons flags reached their final sequence numbers.
func TestOpenLoopEndToEnd(t *testing.T) {
	s := testSpec(4)
	g, err := NewGenerator(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := runSpec(t, s, g, func(cfg *machine.Config) { cfg.RecordTrace = true })
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("execution fails Validate: %v", err)
	}
	lay := layoutOf(s)
	barEpisodes := int64(episodes(&s.Phases[2]))
	if got := res.FinalMem[lay.barCnt]; got != 0 {
		t.Fatalf("barrier counter = %d, want 0 (an episode never completed)", got)
	}
	if got := res.FinalMem[lay.barSns]; int64(got) != barEpisodes {
		t.Fatalf("barrier sense = %d, want %d episodes", got, barEpisodes)
	}
	pcEpisodes := int64(episodes(&s.Phases[3]))
	for pair := 0; pair < s.Procs/2; pair++ {
		flag := lay.pcFlags + 2*mem.Addr(pair)
		if int64(res.FinalMem[flag]) != pcEpisodes || int64(res.FinalMem[flag+1]) != pcEpisodes {
			t.Fatalf("pair %d flag/ack = %d/%d, want %d/%d",
				pair, res.FinalMem[flag], res.FinalMem[flag+1], pcEpisodes, pcEpisodes)
		}
	}
	lastPhaseStart := s.EndTime() - s.Phases[len(s.Phases)-1].Duration
	if res.Cycles < lastPhaseStart {
		t.Fatalf("run finished at %d, before the last phase even starts at %d", res.Cycles, lastPhaseStart)
	}
}

// recordRun runs the spec with a Recorder tee and returns (trace bytes,
// result).
func recordRun(t *testing.T, s *spec.Spec, tweak func(*machine.Config)) ([]byte, *machine.Result) {
	t.Helper()
	g, err := NewGenerator(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := tracefmt.NewWriter(&buf, Header(s))
	if err != nil {
		t.Fatal(err)
	}
	res := runSpec(t, s, NewRecorder(g, w), tweak)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// replayRun replays a trace (no spec, no generator), re-recording it, and
// returns (re-recorded bytes, result).
func replayRun(t *testing.T, trace []byte, tweak func(*machine.Config)) ([]byte, *machine.Result) {
	t.Helper()
	r, err := tracefmt.NewReader(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ReplayProgram(r.Header())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := tracefmt.NewWriter(&buf, r.Header())
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.NewConfig(proc.PolicyWODef2)
	cfg.Workload = Compile(NewRecorder(NewReplayer(r), w))
	if tweak != nil {
		tweak(&cfg)
	}
	res, err := machine.Run(prog, cfg)
	if err != nil {
		t.Fatalf("replay Run: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// sameResult compares the observable tables of two runs.
func sameResult(t *testing.T, a, b *machine.Result) {
	t.Helper()
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Messages != b.Messages {
		t.Fatalf("message counts differ: %d vs %d", a.Messages, b.Messages)
	}
	if len(a.FinalMem) != len(b.FinalMem) {
		t.Fatalf("final memory sizes differ: %d vs %d", len(a.FinalMem), len(b.FinalMem))
	}
	for addr, v := range a.FinalMem {
		if b.FinalMem[addr] != v {
			t.Fatalf("final mem[%d] differs: %d vs %d", addr, v, b.FinalMem[addr])
		}
	}
	for i := range a.ProcFinish {
		if a.ProcFinish[i] != b.ProcFinish[i] {
			t.Fatalf("P%d finish differs: %d vs %d", i, a.ProcFinish[i], b.ProcFinish[i])
		}
	}
}

// TestRecordReplayByteIdentical pins the headline reproducibility contract
// on the all-scenario spec: a recorded run replays from the trace alone with
// identical tables, and re-recording the replay reproduces the trace byte
// for byte. A second generation pass confirms (spec, seed) alone also
// reproduces the bytes.
func TestRecordReplayByteIdentical(t *testing.T) {
	s := testSpec(4)
	trace1, res1 := recordRun(t, s, nil)
	trace2, res2 := recordRun(t, s, nil)
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("two generated runs of the same (spec, seed) produced different traces")
	}
	sameResult(t, res1, res2)
	replayTrace, res3 := replayRun(t, trace1, nil)
	if !bytes.Equal(trace1, replayTrace) {
		t.Fatalf("replay re-recording differs from the original trace (%d vs %d bytes)", len(trace1), len(replayTrace))
	}
	sameResult(t, res1, res3)
}

// TestReplayerRejectsCorruptTrace pins the replay error path end to end: a
// flipped byte deep in the trace surfaces from machine.Run as a workload
// source failure naming tracefmt, not a hang or a silent divergence.
func TestReplayerRejectsCorruptTrace(t *testing.T) {
	s := testSpec(2)
	trace, _ := recordRun(t, s, nil)
	bad := append([]byte{}, trace...)
	bad[len(bad)/2] ^= 0x40
	r, err := tracefmt.NewReader(bytes.NewReader(bad))
	if err != nil {
		// Corruption landed early enough to fail at open — equally fine.
		return
	}
	prog, err := ReplayProgram(r.Header())
	if err != nil {
		t.Fatalf("ReplayProgram: %v", err)
	}
	cfg := machine.NewConfig(proc.PolicyWODef2)
	cfg.Workload = Compile(NewReplayer(r))
	if _, err := machine.Run(prog, cfg); err == nil {
		t.Fatal("corrupted trace replayed cleanly")
	}
}

// TestCompiledFragmentCacheBounded pins the cache cap: a workload with more
// distinct (kind, value) shapes than the cap still runs, and the cache never
// exceeds maxFragCache entries.
func TestCompiledFragmentCacheBounded(t *testing.T) {
	src := &countSource{n: maxFragCache + 500}
	c := Compile(src)
	for {
		_, ok, err := c.Next(0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if len(c.cache) > maxFragCache {
		t.Fatalf("fragment cache grew to %d entries (cap %d)", len(c.cache), maxFragCache)
	}
}

// countSource emits n writes with distinct values (worst case for the
// fragment cache).
type countSource struct{ n, i int }

func (s *countSource) Next(proc int) (tracefmt.Record, bool, error) {
	if s.i >= s.n {
		return tracefmt.Record{}, false, nil
	}
	s.i++
	return tracefmt.Record{Proc: proc, At: sim.Time(s.i), Kind: tracefmt.KindWrite,
		Addr: 100, Value: mem.Value(s.i)}, true, nil
}
