package openloop

import (
	"bytes"
	"runtime"
	"testing"

	"weakorder/internal/machine"
	"weakorder/internal/par"
	"weakorder/internal/proc"
	"weakorder/internal/sim"
	"weakorder/internal/workload/spec"
	"weakorder/internal/workload/tracefmt"
)

// bigSpec is the acceptance-scale workload: a long racy-mix phase followed
// by a contended-lock phase, sized to generate at least a million arrival
// records at full scale. -short divides the window by 20 (~55k records).
func bigSpec(short bool) *spec.Spec {
	scale := sim.Time(1)
	if short {
		scale = 20
	}
	return &spec.Spec{
		SpecVersion: spec.Version,
		Name:        "acceptance",
		Procs:       8,
		Seed:        11,
		Phases: []spec.Phase{
			{Duration: 1250000 / scale, Rate: 100, Scenario: spec.ScenarioMix},
			{Duration: 50000 / scale, Rate: 20, Scenario: spec.ScenarioLock, Work: 5},
		},
	}
}

// TestAcceptanceRecordReplayByteIdentical is the headline acceptance check:
// a million-operation open-loop run records a trace, the trace replays with
// no spec in hand, the replay's re-recorded trace is byte-identical to the
// original, and the result tables match exactly — at worker-pool widths 1
// and GOMAXPROCS both (machine.Run is single-threaded, but the pin guards
// against any future pool leaking into the run path).
func TestAcceptanceRecordReplayByteIdentical(t *testing.T) {
	s := bigSpec(testing.Short())
	type run struct {
		trace, replay []byte
		res, replayed *machine.Result
	}
	var runs []run
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		restore := par.SetWorkers(w)
		trace, res := recordRun(t, s, nil)
		replay, replayed := replayRun(t, trace, nil)
		restore()
		runs = append(runs, run{trace: trace, replay: replay, res: res, replayed: replayed})
	}
	for i, r := range runs {
		if !bytes.Equal(r.trace, r.replay) {
			t.Fatalf("width run %d: replay re-recording differs from the recorded trace (%d vs %d bytes)",
				i, len(r.trace), len(r.replay))
		}
		sameResult(t, r.res, r.replayed)
	}
	if !bytes.Equal(runs[0].trace, runs[1].trace) {
		t.Fatal("recorded traces differ between pool widths")
	}
	sameResult(t, runs[0].res, runs[1].res)

	rd, err := tracefmt.NewReader(bytes.NewReader(runs[0].trace))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := rd.Next(); err != nil {
			break
		}
		n++
	}
	if !testing.Short() && n < 1_000_000 {
		t.Fatalf("acceptance run generated %d records, want at least 1M", n)
	}
	if n == 0 {
		t.Fatal("acceptance run generated no records")
	}
}

// TestAcceptanceTimelineByteIdentical extends byte-identity to the exported
// observability artifacts on a metrics-on run: the cycle-attribution tables
// and the Chrome trace-event timeline of a replay match the recorded run's
// byte for byte.
func TestAcceptanceTimelineByteIdentical(t *testing.T) {
	s := testSpec(4)
	metricsOn := func(cfg *machine.Config) { cfg.Metrics = true }
	render := func(res *machine.Result) (string, []byte) {
		var tables bytes.Buffer
		for _, tb := range res.Metrics.Tables() {
			tables.WriteString(tb.String())
		}
		var tl bytes.Buffer
		if err := res.Metrics.WriteTimeline(&tl, "acceptance"); err != nil {
			t.Fatal(err)
		}
		return tables.String(), tl.Bytes()
	}
	trace, res := recordRun(t, s, metricsOn)
	_, replayed := replayRun(t, trace, metricsOn)
	tab1, tl1 := render(res)
	tab2, tl2 := render(replayed)
	if tab1 != tab2 {
		t.Fatalf("metrics tables differ between record and replay:\n%s\nvs\n%s", tab1, tab2)
	}
	if !bytes.Equal(tl1, tl2) {
		t.Fatalf("timelines differ between record and replay (%d vs %d bytes)", len(tl1), len(tl2))
	}
}

// liveSampler wraps a Source and samples the live heap (after a forced GC)
// every interval records, keeping the maximum.
type liveSampler struct {
	src      Source
	interval int
	n        int
	maxLive  uint64
}

func (l *liveSampler) Next(proc int) (tracefmt.Record, bool, error) {
	r, ok, err := l.src.Next(proc)
	if ok && err == nil {
		l.n++
		if l.n%l.interval == 0 {
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > l.maxLive {
				l.maxLive = ms.HeapAlloc
			}
		}
	}
	return r, ok, err
}

// TestAcceptanceMemoryBounded pins the streaming contract at machine scale:
// peak live heap during a run is a function of the live state (address
// pools, backlog window, fragment cache), not of how many operations the
// run injects. A 4x longer run must stay within 2x the shorter run's peak
// plus fixed slack — if any stage accumulated per-record state, the long
// run's peak would scale with its record count instead.
func TestAcceptanceMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory pin needs the full-scale run")
	}
	peak := func(duration sim.Time) uint64 {
		s := &spec.Spec{
			SpecVersion: spec.Version,
			Name:        "mempin",
			Procs:       4,
			Seed:        3,
			Phases: []spec.Phase{
				{Duration: duration, Rate: 100, Scenario: spec.ScenarioMix},
			},
		}
		g, err := NewGenerator(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		sampler := &liveSampler{src: g, interval: 20000}
		prog, err := Program(s)
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.NewConfig(proc.PolicyWODef2)
		cfg.Workload = Compile(sampler)
		if _, err := machine.Run(prog, cfg); err != nil {
			t.Fatal(err)
		}
		if sampler.maxLive == 0 {
			t.Fatalf("sampler never fired over %d pulls (interval %d)", sampler.n, sampler.interval)
		}
		return sampler.maxLive
	}
	short, long := peak(125000), peak(500000)
	if long > 2*short+8<<20 {
		t.Fatalf("live heap grew with trace length: %d bytes at 4x the run length, %d at 1x", long, short)
	}
}
