// Package openloop turns a workload spec (internal/workload/spec) into an
// open-loop arrival stream for the timed machine: operations arrive at
// simulated-time instants drawn from per-phase rates, independent of how fast
// the machine retires them, so rising rates expose the saturation knee
// instead of the closed-loop self-throttling a fixed program exhibits.
//
// The pipeline has three interchangeable stages:
//
//	Source  — a per-processor stream of tracefmt.Records. Generator derives
//	          one from (spec, seed); Replayer derives one from a recorded
//	          trace; Recorder tees any Source into a tracefmt.Writer.
//	Compile — adapts a Source to proc.Workload by compiling each record
//	          into a code fragment (spin loops for the composite kinds),
//	          with a bounded fragment cache.
//	Program — builds the machine's skeleton program: one halting thread per
//	          processor plus the address pools in Init, so the directory
//	          owns every location before the first arrival.
//
// Determinism contract: a Generator's per-processor stream is a pure
// function of (spec, seed, processor) — each processor draws from its own
// seeded RNG, so the pull interleaving across processors cannot perturb
// generation. Together with the engine's deterministic same-cycle dispatch
// order this makes a run byte-reproducible from (spec, seed), and the
// recorded trace makes it byte-reproducible with no generator at all.
//
// Memory contract: every stage is streaming. The Generator holds one
// arrival burst per processor, the Replayer a bounded demux window, the
// Compiled adapter a capped fragment cache — live state never scales with
// trace length.
package openloop

import (
	"fmt"

	"weakorder/internal/mem"
	"weakorder/internal/program"
	"weakorder/internal/workload/spec"
	"weakorder/internal/workload/tracefmt"
)

// Source is a demultiplexed record stream: Next returns processor proc's
// next arrival. ok=false ends that processor's stream; an error aborts the
// run. Implementations must tolerate interleaved calls across processors but
// are not required to be safe for concurrent use — the timed engine is
// single-threaded.
type Source interface {
	Next(proc int) (tracefmt.Record, bool, error)
}

// layout assigns each scenario its own address region, so phases of
// different scenarios cannot corrupt each other's protocol state (a mix
// phase TAS-ing a barrier counter would deadlock every later barrier).
// Regions are computed from the spec's maxima, packed from the conventional
// bases: data from 100, synchronization from 200 (or higher when the data
// region is large).
type layout struct {
	mixData mem.Addr // racy mix-scenario data pool
	lockCtr mem.Addr // lock-protected counters, one per lock
	pcData  mem.Addr // producer/consumer payload, one per pair
	mixSync mem.Addr // mix-scenario sync pool
	locks   mem.Addr // lock words, one per lock
	barCnt  mem.Addr // barrier arrival counter
	barSns  mem.Addr // barrier sense (a monotone episode counter)
	pcFlags mem.Addr // prodcons flag/ack words, two per pair

	nMixData, nLockCtr, nPCData      int
	nMixSync, nLocks, nBar, nPCFlags int
}

// effVars resolves a phase's pool sizes (zero means the default).
func effVars(ph *spec.Phase) (dataVars, syncVars int) {
	dataVars, syncVars = ph.DataVars, ph.SyncVars
	if dataVars == 0 {
		dataVars = 4
	}
	if syncVars == 0 {
		syncVars = 2
	}
	return dataVars, syncVars
}

// layoutOf computes the address regions a spec's phases can touch.
func layoutOf(s *spec.Spec) layout {
	var maxMixData, maxMixSync, maxLock int
	var hasBar, hasPC bool
	for i := range s.Phases {
		ph := &s.Phases[i]
		dv, sv := effVars(ph)
		switch ph.Scenario {
		case spec.ScenarioMix:
			maxMixData = max(maxMixData, dv)
			maxMixSync = max(maxMixSync, sv)
		case spec.ScenarioLock:
			maxLock = max(maxLock, sv)
		case spec.ScenarioBarrier:
			hasBar = true
		case spec.ScenarioProdCons:
			hasPC = true
		}
	}
	pairs := s.Procs / 2
	var l layout
	a := mem.Addr(100)
	l.mixData, l.nMixData = a, maxMixData
	a += mem.Addr(maxMixData)
	l.lockCtr, l.nLockCtr = a, maxLock
	a += mem.Addr(maxLock)
	if hasPC {
		l.pcData, l.nPCData = a, pairs
		a += mem.Addr(pairs)
	}
	if a < 200 {
		a = 200
	}
	l.mixSync, l.nMixSync = a, maxMixSync
	a += mem.Addr(maxMixSync)
	l.locks, l.nLocks = a, maxLock
	a += mem.Addr(maxLock)
	if hasBar {
		l.barCnt, l.barSns, l.nBar = a, a+1, 2
		a += 2
	}
	if hasPC {
		l.pcFlags, l.nPCFlags = a, 2*pairs
	}
	return l
}

// addrs enumerates every address in the layout's regions.
func (l *layout) addrs() []mem.Addr {
	var out []mem.Addr
	span := func(base mem.Addr, n int) {
		for i := 0; i < n; i++ {
			out = append(out, base+mem.Addr(i))
		}
	}
	span(l.mixData, l.nMixData)
	span(l.lockCtr, l.nLockCtr)
	span(l.pcData, l.nPCData)
	span(l.mixSync, l.nMixSync)
	span(l.locks, l.nLocks)
	if l.nBar > 0 {
		out = append(out, l.barCnt, l.barSns)
	}
	span(l.pcFlags, l.nPCFlags)
	return out
}

// Program builds the machine skeleton for a spec: one halting thread per
// processor, with every pool address declared (zero) in Init so the
// directory owns the whole working set before the first arrival.
func Program(s *spec.Spec) (*program.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	lay := layoutOf(s)
	return skeleton(name(s.Name), s.Procs, lay.addrs(), nil)
}

// Header describes a spec's runs for trace recording: the header written
// first into every trace, carrying enough (procs, name, init) to rebuild the
// skeleton with ReplayProgram from the trace alone.
func Header(s *spec.Spec) tracefmt.Header {
	lay := layoutOf(s)
	init := make(map[mem.Addr]mem.Value)
	for _, a := range lay.addrs() {
		init[a] = 0
	}
	return tracefmt.Header{Procs: s.Procs, Name: name(s.Name), Init: init}
}

// ReplayProgram rebuilds the machine skeleton from a recorded trace's
// header, so a trace replays with no spec in hand.
func ReplayProgram(hdr tracefmt.Header) (*program.Program, error) {
	if hdr.Procs < 1 {
		return nil, fmt.Errorf("openloop: trace header has %d processors", hdr.Procs)
	}
	var addrs []mem.Addr
	for a := range hdr.Init {
		addrs = append(addrs, a)
	}
	return skeleton(name(hdr.Name), hdr.Procs, addrs, hdr.Init)
}

// skeleton assembles the n-thread halting program with the given Init set.
// values may be nil (all zeros).
func skeleton(name string, n int, addrs []mem.Addr, values map[mem.Addr]mem.Value) (*program.Program, error) {
	b := program.NewBuilder(name)
	for _, a := range addrs {
		b.Init(a, values[a])
	}
	for i := 0; i < n; i++ {
		b.Thread()
		b.Halt()
	}
	return b.Build()
}

// name defaults the workload label.
func name(s string) string {
	if s == "" {
		return "openloop"
	}
	return s
}
