package workload

import (
	"fmt"
	"math/rand"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// RandomConfig parameterizes random program generation for the contract
// experiments (E6). Programs are straight-line (no loops), so operational
// exploration is exhaustive without trace bounds.
type RandomConfig struct {
	Procs    int // threads (default 2)
	DataVars int // data locations (default 2)
	SyncVars int // sync locations (default 1)
	Ops      int // memory operations per thread (default 4)
	// SyncDensity is the per-op probability (in percent) of emitting a
	// synchronization operation instead of a data access. Zero sync density
	// on >1 shared vars almost always yields racy programs; high density
	// yields mostly DRF0 ones.
	SyncDensity int
}

func (c *RandomConfig) defaults() {
	if c.Procs <= 0 {
		c.Procs = 2
	}
	if c.DataVars <= 0 {
		c.DataVars = 2
	}
	if c.SyncVars <= 0 {
		c.SyncVars = 1
	}
	if c.Ops <= 0 {
		c.Ops = 4
	}
}

// dataBase/syncBase separate the random address spaces.
const (
	randDataBase mem.Addr = 100
	randSyncBase mem.Addr = 200
)

// Random generates a straight-line random program from the seed. Whether it
// obeys DRF0 is for the checker to decide (core.CheckProgram); the generator
// only guarantees that data and sync locations are disjoint.
func Random(seed int64, cfg RandomConfig) *program.Program {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	b := program.NewBuilder(fmt.Sprintf("random-%d", seed))
	val := mem.Value(1)
	for t := 0; t < cfg.Procs; t++ {
		b.Thread()
		for k := 0; k < cfg.Ops; k++ {
			if rng.Intn(100) < cfg.SyncDensity {
				s := randSyncBase + mem.Addr(rng.Intn(cfg.SyncVars))
				switch rng.Intn(3) {
				case 0:
					b.SyncLoad(program.Reg(rng.Intn(4)), s)
				case 1:
					b.SyncStore(s, program.Imm(val))
					val++
				default:
					b.TestAndSet(program.Reg(rng.Intn(4)), s, program.Imm(val))
					val++
				}
				continue
			}
			d := randDataBase + mem.Addr(rng.Intn(cfg.DataVars))
			if rng.Intn(2) == 0 {
				b.Load(program.Reg(rng.Intn(4)), d)
			} else {
				b.Store(d, program.Imm(val))
				val++
			}
		}
		b.Halt()
	}
	return b.MustBuild()
}

// RandomGuarded generates a message-passing-shaped program that obeys DRF0
// *by construction* without loops: a producer writes 1..nvars data locations
// and releases through a sync flag; a consumer reads the flag once with a
// sync read and reads the data only under a branch guarding on the flag. In
// executions where the consumer's sync read completes first it simply skips
// the data, so every conflicting pair is ordered in every execution.
//
// These programs are the minimal witnesses that catch hardware whose
// synchronization commits without protecting outstanding writes (the
// no-reserve ablation of the Section-5 machine): the flag can arrive before
// the data does.
func RandomGuarded(seed int64, nvars, extraOps int) *program.Program {
	if nvars <= 0 {
		nvars = 2
	}
	rng := rand.New(rand.NewSource(seed))
	b := program.NewBuilder(fmt.Sprintf("guarded-%d", seed))
	flag := randSyncBase
	val := mem.Value(1 + rng.Intn(50))
	// Producer.
	b.Thread()
	for v := 0; v < nvars; v++ {
		b.Store(randDataBase+mem.Addr(v), program.Imm(val+mem.Value(v)))
	}
	for k := 0; k < extraOps; k++ {
		b.Load(program.Reg(rng.Intn(4)), randDataBase+mem.Addr(rng.Intn(nvars)))
	}
	b.SyncStore(flag, program.Imm(1))
	b.Halt()
	// Consumer: guarded reads.
	b.Thread()
	b.SyncLoad(0, flag)
	b.Beq(0, program.Imm(0), "skip")
	for v := 0; v < nvars; v++ {
		b.Load(program.Reg(1+v%3), randDataBase+mem.Addr(v))
	}
	b.Label("skip")
	b.Halt()
	return b.MustBuild()
}

// RandomDRF generates a random program that obeys DRF0 *by construction*:
// shared data locations are partitioned among critical sections guarded by a
// per-location TestAndSet lock, and every access to a shared location happens
// inside its lock's critical section. Thread-private locations are accessed
// freely.
func RandomDRF(seed int64, procs, sections, opsPerSection int) *program.Program {
	if procs <= 0 {
		procs = 2
	}
	if sections <= 0 {
		sections = 2
	}
	if opsPerSection <= 0 {
		opsPerSection = 2
	}
	rng := rand.New(rand.NewSource(seed))
	b := program.NewBuilder(fmt.Sprintf("randomdrf-%d", seed))
	val := mem.Value(1)
	lockOf := func(v int) mem.Addr { return randSyncBase + mem.Addr(v) }
	varOf := func(v int) mem.Addr { return randDataBase + mem.Addr(v) }
	nvars := 2
	for t := 0; t < procs; t++ {
		b.Thread()
		for s := 0; s < sections; s++ {
			v := rng.Intn(nvars)
			lbl := fmt.Sprintf("acq%d", s)
			b.Label(lbl)
			b.TestAndSet(0, lockOf(v), program.Imm(1))
			b.Bne(0, program.Imm(0), lbl)
			for k := 0; k < opsPerSection; k++ {
				if rng.Intn(2) == 0 {
					b.Load(program.Reg(1+rng.Intn(3)), varOf(v))
				} else {
					b.Store(varOf(v), program.Imm(val))
					val++
				}
			}
			b.SyncStore(lockOf(v), program.Imm(0))
		}
		b.Halt()
	}
	return b.MustBuild()
}
