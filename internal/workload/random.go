package workload

import (
	"fmt"
	"math/rand"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// RandomConfig parameterizes random program generation for the contract
// experiments (E6) and the differential fuzzer (internal/fuzz). Programs are
// loop-free (straight-line code plus optional forward-branch guarded blocks),
// so operational exploration is exhaustive without trace bounds.
//
// Percentage fields share one convention: the zero value means "use the
// documented default", a negative value means "exactly zero percent". This
// keeps the zero RandomConfig useful while still allowing a caller to switch
// a feature off entirely.
type RandomConfig struct {
	Procs    int // threads (default 2, the fuzzer sweeps 2–4)
	DataVars int // data locations (default 2)
	SyncVars int // sync locations (default 1)
	Ops      int // memory operations per thread (default 4)
	// SyncDensity is the per-op probability (in percent) of emitting a
	// synchronization operation instead of a data access. Zero sync density
	// on >1 shared vars almost always yields racy programs; high density
	// yields mostly DRF0 ones. The zero value defaults to
	// DefaultSyncDensity so that forgetting to set it no longer silently
	// produces an almost-always-racy (and therefore one-sided) sweep;
	// pass a negative value for a deliberately synchronization-free
	// program.
	SyncDensity int
	// RMWPct is the share (in percent) of synchronization operations
	// emitted as atomic read-modify-writes. When RMWPct, SyncReadPct and
	// FetchAddPct are all zero the generator keeps its original
	// equal-thirds split between sync reads, sync writes and TestAndSets —
	// byte-identical instruction streams per seed, which the deterministic
	// experiment sweeps rely on. Setting any of the three switches to the
	// explicit percentage mixer (zeros then mean their defaults: RMW 34,
	// SyncRead 50, FetchAdd 0).
	RMWPct int
	// SyncReadPct splits the non-RMW synchronization operations between
	// read-only (Test) and write-only (Unset) — the split the DRF1
	// refinement cares about. Default 50.
	SyncReadPct int
	// FetchAddPct is the share (in percent) of RMWs emitted as FetchAdd
	// rather than TestAndSet. Default 0.
	FetchAddPct int
	// CondPct is the per-slot probability (in percent) of emitting a
	// loop-free guarded block instead of a single access: a sync read of a
	// flag followed by a forward branch over one or two data accesses (the
	// message-passing consumer idiom, cf. RandomGuarded). Default 0; the
	// draw is only made when CondPct is positive, so existing seeds are
	// unaffected.
	CondPct int
}

// DefaultSyncDensity is the synchronization density applied when
// RandomConfig.SyncDensity is zero: high enough that a typical sweep contains
// a healthy share of DRF0 programs, low enough that racy ones still appear.
const DefaultSyncDensity = 40

// pctDefault resolves a percentage knob under the shared convention: zero
// means the default, negative means zero percent.
func pctDefault(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	case v > 100:
		return 100
	}
	return v
}

func (c *RandomConfig) defaults() {
	if c.Procs <= 0 {
		c.Procs = 2
	}
	if c.DataVars <= 0 {
		c.DataVars = 2
	}
	if c.SyncVars <= 0 {
		c.SyncVars = 1
	}
	if c.Ops <= 0 {
		c.Ops = 4
	}
	c.SyncDensity = pctDefault(c.SyncDensity, DefaultSyncDensity)
	if c.RMWPct != 0 || c.SyncReadPct != 0 || c.FetchAddPct != 0 {
		c.RMWPct = pctDefault(c.RMWPct, 34)
		c.SyncReadPct = pctDefault(c.SyncReadPct, 50)
		c.FetchAddPct = pctDefault(c.FetchAddPct, 0)
	}
	if c.CondPct < 0 {
		c.CondPct = 0
	}
}

// dataBase/syncBase separate the random address spaces.
const (
	randDataBase mem.Addr = 100
	randSyncBase mem.Addr = 200
)

// Random generates a loop-free random program from the seed. Whether it
// obeys DRF0 is for the checker to decide (core.CheckProgram); the generator
// only guarantees that data and sync locations are disjoint and that every
// branch is a forward branch (so exploration terminates without trace
// bounds).
func Random(seed int64, cfg RandomConfig) *program.Program {
	legacyMix := cfg.RMWPct == 0 && cfg.SyncReadPct == 0 && cfg.FetchAddPct == 0
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	b := program.NewBuilder(fmt.Sprintf("random-%d", seed))
	val := mem.Value(1)
	guards := 0
	emitSync := func() {
		s := randSyncBase + mem.Addr(rng.Intn(cfg.SyncVars))
		if legacyMix {
			// Legacy equal-thirds mixer; the rng draws here must stay
			// byte-identical so the deterministic experiment sweeps keep
			// their per-seed program streams.
			switch rng.Intn(3) {
			case 0:
				b.SyncLoad(program.Reg(rng.Intn(4)), s)
			case 1:
				b.SyncStore(s, program.Imm(val))
				val++
			default:
				b.TestAndSet(program.Reg(rng.Intn(4)), s, program.Imm(val))
				val++
			}
			return
		}
		switch draw := rng.Intn(100); {
		case draw < cfg.RMWPct:
			rd := program.Reg(rng.Intn(4))
			if rng.Intn(100) < cfg.FetchAddPct {
				b.FetchAdd(rd, s, program.Imm(val))
			} else {
				b.TestAndSet(rd, s, program.Imm(val))
			}
			val++
		case rng.Intn(100) < cfg.SyncReadPct:
			b.SyncLoad(program.Reg(rng.Intn(4)), s)
		default:
			b.SyncStore(s, program.Imm(val))
			val++
		}
	}
	emitData := func() {
		d := randDataBase + mem.Addr(rng.Intn(cfg.DataVars))
		if rng.Intn(2) == 0 {
			b.Load(program.Reg(rng.Intn(4)), d)
		} else {
			b.Store(d, program.Imm(val))
			val++
		}
	}
	for t := 0; t < cfg.Procs; t++ {
		b.Thread()
		for k := 0; k < cfg.Ops; k++ {
			if cfg.CondPct > 0 && rng.Intn(100) < cfg.CondPct {
				// Guarded block: sync-read a flag, branch forward over one
				// or two data accesses. The sync read and the guarded
				// accesses all count against the op budget.
				s := randSyncBase + mem.Addr(rng.Intn(cfg.SyncVars))
				r := program.Reg(rng.Intn(4))
				b.SyncLoad(r, s)
				lbl := fmt.Sprintf("g%d", guards)
				guards++
				b.Beq(r, program.Imm(0), lbl)
				for n := 1 + rng.Intn(2); n > 0 && k+1 < cfg.Ops; n-- {
					emitData()
					k++
				}
				b.Label(lbl)
				continue
			}
			if rng.Intn(100) < cfg.SyncDensity {
				emitSync()
				continue
			}
			emitData()
		}
		b.Halt()
	}
	return b.MustBuild()
}

// RandomGuarded generates a message-passing-shaped program that obeys DRF0
// *by construction* without loops: a producer writes 1..nvars data locations
// and releases through a sync flag; a consumer reads the flag once with a
// sync read and reads the data only under a branch guarding on the flag. In
// executions where the consumer's sync read completes first it simply skips
// the data, so every conflicting pair is ordered in every execution.
//
// These programs are the minimal witnesses that catch hardware whose
// synchronization commits without protecting outstanding writes (the
// no-reserve ablation of the Section-5 machine): the flag can arrive before
// the data does.
func RandomGuarded(seed int64, nvars, extraOps int) *program.Program {
	if nvars <= 0 {
		nvars = 2
	}
	rng := rand.New(rand.NewSource(seed))
	b := program.NewBuilder(fmt.Sprintf("guarded-%d", seed))
	flag := randSyncBase
	val := mem.Value(1 + rng.Intn(50))
	// Producer.
	b.Thread()
	for v := 0; v < nvars; v++ {
		b.Store(randDataBase+mem.Addr(v), program.Imm(val+mem.Value(v)))
	}
	for k := 0; k < extraOps; k++ {
		b.Load(program.Reg(rng.Intn(4)), randDataBase+mem.Addr(rng.Intn(nvars)))
	}
	b.SyncStore(flag, program.Imm(1))
	b.Halt()
	// Consumer: guarded reads.
	b.Thread()
	b.SyncLoad(0, flag)
	b.Beq(0, program.Imm(0), "skip")
	for v := 0; v < nvars; v++ {
		b.Load(program.Reg(1+v%3), randDataBase+mem.Addr(v))
	}
	b.Label("skip")
	b.Halt()
	return b.MustBuild()
}

// RandomDRF generates a random program that obeys DRF0 *by construction*:
// shared data locations are partitioned among critical sections guarded by a
// per-location TestAndSet lock, and every access to a shared location happens
// inside its lock's critical section. Thread-private locations are accessed
// freely.
func RandomDRF(seed int64, procs, sections, opsPerSection int) *program.Program {
	if procs <= 0 {
		procs = 2
	}
	if sections <= 0 {
		sections = 2
	}
	if opsPerSection <= 0 {
		opsPerSection = 2
	}
	rng := rand.New(rand.NewSource(seed))
	b := program.NewBuilder(fmt.Sprintf("randomdrf-%d", seed))
	val := mem.Value(1)
	lockOf := func(v int) mem.Addr { return randSyncBase + mem.Addr(v) }
	varOf := func(v int) mem.Addr { return randDataBase + mem.Addr(v) }
	nvars := 2
	for t := 0; t < procs; t++ {
		b.Thread()
		for s := 0; s < sections; s++ {
			v := rng.Intn(nvars)
			lbl := fmt.Sprintf("acq%d", s)
			b.Label(lbl)
			b.TestAndSet(0, lockOf(v), program.Imm(1))
			b.Bne(0, program.Imm(0), lbl)
			for k := 0; k < opsPerSection; k++ {
				if rng.Intn(2) == 0 {
					b.Load(program.Reg(1+rng.Intn(3)), varOf(v))
				} else {
					b.Store(varOf(v), program.Imm(val))
					val++
				}
			}
			b.SyncStore(lockOf(v), program.Imm(0))
		}
		b.Halt()
	}
	return b.MustBuild()
}
