package core

import (
	"fmt"

	"weakorder/internal/mem"
)

// Lemma1Report is the verdict of checking Appendix A's Lemma 1 condition on
// one idealized execution: a system is weakly ordered w.r.t. DRF0 iff for any
// execution of a DRF0 program there is a happens-before relation such that
// every read appears in it and returns the value written by the last write on
// the same variable ordered before it by happens-before.
type Lemma1Report struct {
	// Failures lists the reads whose value does not match the hb-last write.
	Failures []Lemma1Failure
	// Ambiguous lists reads with more than one hb-maximal preceding write —
	// possible only when the execution has a race, since DRF0 orders all
	// conflicting accesses (the paper notes the last write "is unique for
	// DRF0").
	Ambiguous []mem.Event
}

// Lemma1Failure records one read that violated the read-value condition.
type Lemma1Failure struct {
	Read mem.Event
	// LastWrite is the hb-last write to the read's location (NoEvent when
	// the read should have returned the initial value).
	LastWrite mem.EventID
	// Expected is the value the read should have returned.
	Expected mem.Value
}

// OK reports whether the execution satisfies Lemma 1's condition.
func (r *Lemma1Report) OK() bool { return len(r.Failures) == 0 && len(r.Ambiguous) == 0 }

// String implements fmt.Stringer.
func (r *Lemma1Report) String() string {
	if r.OK() {
		return "execution satisfies Lemma 1 (every read returns its hb-last write)"
	}
	return fmt.Sprintf("Lemma 1 violated: %d read-value failure(s), %d ambiguous read(s)",
		len(r.Failures), len(r.Ambiguous))
}

// CheckLemma1 verifies the read-value condition of Lemma 1 against the
// happens-before relation already built for the execution. init supplies
// initial memory values (the paper's hypothetical initializing writes, which
// happen-before everything).
//
// For each event with a read component, the hb-maximal writes to the same
// location ordered before it are computed; with exactly one (or none — the
// initial value) the read's value is compared against it. The read component
// of an OpSyncRMW is treated like any other read; the write it is paired with
// is its own event and is never its own hb-predecessor.
func CheckLemma1(ord *Orders, init map[mem.Addr]mem.Value) *Lemma1Report {
	e := ord.Exec
	rep := &Lemma1Report{}
	for _, ev := range e.Events {
		if !ev.Op.Reads() {
			continue
		}
		// Gather writes to the same address hb-before the read.
		var preds []mem.Event
		for _, w := range e.Events {
			if w.ID == ev.ID || !w.Op.Writes() || w.Addr != ev.Addr {
				continue
			}
			if ord.HappensBefore(w.ID, ev.ID) {
				preds = append(preds, w)
			}
		}
		// Keep hb-maximal ones.
		var maximal []mem.Event
		for _, w := range preds {
			isMax := true
			for _, w2 := range preds {
				if w2.ID != w.ID && ord.HappensBefore(w.ID, w2.ID) {
					isMax = false
					break
				}
			}
			if isMax {
				maximal = append(maximal, w)
			}
		}
		switch len(maximal) {
		case 0:
			want := init[ev.Addr]
			if ev.Value != want {
				rep.Failures = append(rep.Failures, Lemma1Failure{Read: ev, LastWrite: mem.NoEvent, Expected: want})
			}
		case 1:
			w := maximal[0]
			want := w.Value
			if w.Op == mem.OpSyncRMW {
				want = w.WValue
			}
			if ev.Value != want {
				rep.Failures = append(rep.Failures, Lemma1Failure{Read: ev, LastWrite: w.ID, Expected: want})
			}
		default:
			rep.Ambiguous = append(rep.Ambiguous, ev)
		}
	}
	return rep
}
