package core

import (
	"fmt"
	"strings"

	"weakorder/internal/mem"
)

// Race is a pair of conflicting accesses left unordered by happens-before —
// a data race under the chosen synchronization model.
type Race struct {
	A, B mem.Event
}

// String implements fmt.Stringer.
func (r Race) String() string {
	return fmt.Sprintf("race: %s <-> %s (unordered, conflicting)", r.A.Access, r.B.Access)
}

// Report is the verdict of checking one idealized execution against a
// synchronization model.
type Report struct {
	Model  string
	Races  []Race
	Orders *Orders
}

// Free reports whether the execution is race-free (obeys the model).
func (r *Report) Free() bool { return len(r.Races) == 0 }

// String implements fmt.Stringer.
func (r *Report) String() string {
	if r.Free() {
		return fmt.Sprintf("execution obeys %s (no unordered conflicting accesses)", r.Model)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "execution violates %s: %d race(s)\n", r.Model, len(r.Races))
	for _, rc := range r.Races {
		fmt.Fprintf(&b, "  %s\n", rc)
	}
	return strings.TrimRight(b.String(), "\n")
}

// CheckExecution applies Definition 3's per-execution condition: in the given
// idealized execution, every pair of conflicting accesses must be ordered by
// the happens-before relation of that execution. It additionally enforces
// DRF0's restriction (1): a synchronization operation accesses exactly one
// location — true by construction here, since every mem.Access names one
// address; the restriction is retained as documentation of why multi-location
// swaps are not expressible.
//
// The initial state needs no special casing: the paper's hypothetical
// initializing writes happen-before every real access, so they can race with
// nothing.
func CheckExecution(e *mem.Execution, m SyncModel) (*Report, error) {
	ord, err := BuildOrders(e, m)
	if err != nil {
		return nil, err
	}
	rep := &Report{Model: m.Name(), Orders: ord}
	n := e.Len()
	for i := 0; i < n; i++ {
		ei := e.Event(mem.EventID(i))
		for j := i + 1; j < n; j++ {
			ej := e.Event(mem.EventID(j))
			if !ei.ConflictsWith(ej.Access) {
				continue
			}
			// Two synchronization operations on the same location are never
			// a data race: the hardware arbitrates them by definition
			// (condition 3 of Section 5.1 totally orders them). Under DRF0
			// they are so-ordered anyway; under the DRF1 refinement a
			// read-only sync contributes no ordering edge, yet its conflict
			// with a sync write is still hardware-arbitrated — a spinning
			// Test merely retries.
			if ei.Op.IsSync() && ej.Op.IsSync() {
				continue
			}
			if !ord.Ordered(ei.ID, ej.ID) {
				rep.Races = append(rep.Races, Race{A: ei, B: ej})
			}
		}
	}
	return rep, nil
}

// ExecutionEnumerator supplies the idealized executions of a program.
// internal/model's Explorer implements it; Definition 3 quantifies over all
// executions on the idealized architecture, and CheckProgram consumes exactly
// that set.
type ExecutionEnumerator interface {
	// IdealizedExecutions invokes fn for every distinct execution of the
	// program on the idealized architecture (atomic accesses, program
	// order). Enumeration stops early if fn returns false.
	IdealizedExecutions(fn func(*mem.Execution) bool) error
}

// ProgramReport aggregates per-execution verdicts over all idealized
// executions of a program (Definition 3 proper).
type ProgramReport struct {
	Model      string
	Executions int
	// Violations holds the report of every racy execution found (capped by
	// the maxViolations argument of CheckProgram).
	Violations []*Report
}

// Obeys reports whether the program obeys the synchronization model: every
// idealized execution is race-free.
func (p *ProgramReport) Obeys() bool { return len(p.Violations) == 0 }

// String implements fmt.Stringer.
func (p *ProgramReport) String() string {
	if p.Obeys() {
		return fmt.Sprintf("program obeys %s (%d idealized executions checked)", p.Model, p.Executions)
	}
	return fmt.Sprintf("program violates %s: %d of %d idealized executions have races",
		p.Model, len(p.Violations), p.Executions)
}

// CheckProgram decides Definition 3 for a whole program by checking every
// idealized execution produced by the enumerator. maxViolations > 0 stops
// enumeration after that many racy executions (the verdict is already
// negative); pass 0 to collect them all.
func CheckProgram(enum ExecutionEnumerator, m SyncModel, maxViolations int) (*ProgramReport, error) {
	rep := &ProgramReport{Model: m.Name()}
	var innerErr error
	err := enum.IdealizedExecutions(func(e *mem.Execution) bool {
		rep.Executions++
		r, err := CheckExecution(e, m)
		if err != nil {
			innerErr = err
			return false
		}
		if !r.Free() {
			rep.Violations = append(rep.Violations, r)
			if maxViolations > 0 && len(rep.Violations) >= maxViolations {
				return false
			}
		}
		return true
	})
	if innerErr != nil {
		return nil, innerErr
	}
	if err != nil {
		return nil, err
	}
	return rep, nil
}
