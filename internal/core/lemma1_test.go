package core

import (
	"testing"

	"weakorder/internal/mem"
)

func TestLemma1HandoffOK(t *testing.T) {
	ord, err := BuildOrders(handoff(), DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckLemma1(ord, nil)
	if !rep.OK() {
		t.Fatalf("handoff should satisfy Lemma 1: %s", rep)
	}
}

func TestLemma1WrongReadValue(t *testing.T) {
	// Same shape as handoff but the final read returns a stale 0 — exactly
	// what a hardware violating weak ordering would produce.
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 1, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 1, Value: 1, WValue: 2})
	e.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 0}) // stale!
	ord, err := BuildOrders(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckLemma1(ord, nil)
	if rep.OK() {
		t.Fatal("stale read accepted")
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(rep.Failures))
	}
	f := rep.Failures[0]
	if f.Expected != 1 || f.Read.Value != 0 {
		t.Errorf("failure detail wrong: %+v", f)
	}
}

func TestLemma1InitialValue(t *testing.T) {
	e := mem.NewExecution(1)
	e.Append(mem.Access{Proc: 0, Op: mem.OpRead, Addr: 3, Value: 42})
	ord, err := BuildOrders(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := CheckLemma1(ord, nil); rep.OK() {
		t.Fatal("read of 42 with no writes and zero init accepted")
	}
	if rep := CheckLemma1(ord, map[mem.Addr]mem.Value{3: 42}); !rep.OK() {
		t.Fatalf("read of initial value rejected: %s", rep)
	}
}

func TestLemma1AmbiguousOnRace(t *testing.T) {
	// Two unordered writes before an acquiring read: no unique hb-last
	// write. (The program is racy, so DRF0 would have rejected it; Lemma 1
	// reports the ambiguity.)
	e := mem.NewExecution(3)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 1, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpWrite, Addr: 0, Value: 2})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncWrite, Addr: 1, Value: 2})
	e.Append(mem.Access{Proc: 2, Op: mem.OpSyncRMW, Addr: 1, Value: 2, WValue: 3})
	e.Append(mem.Access{Proc: 2, Op: mem.OpRead, Addr: 0, Value: 2})
	ord, err := BuildOrders(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckLemma1(ord, nil)
	if len(rep.Ambiguous) != 1 {
		t.Fatalf("ambiguous = %d, want 1 (%s)", len(rep.Ambiguous), rep)
	}
}

func TestLemma1RMWChainValues(t *testing.T) {
	// r1 reads the RMW's written value, not its read value.
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncRMW, Addr: 0, Value: 0, WValue: 7})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 0, Value: 7, WValue: 9})
	ord, err := BuildOrders(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := CheckLemma1(ord, nil); !rep.OK() {
		t.Fatalf("RMW chain should satisfy Lemma 1: %s", rep)
	}
}
