package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelationBasics(t *testing.T) {
	r := NewRelation(5)
	if r.Size() != 5 {
		t.Fatalf("size = %d, want 5", r.Size())
	}
	if r.Has(0, 1) {
		t.Fatal("empty relation has (0,1)")
	}
	r.Add(0, 1)
	r.Add(1, 2)
	if !r.Has(0, 1) || !r.Has(1, 2) {
		t.Fatal("added pairs missing")
	}
	if r.Has(1, 0) {
		t.Fatal("relation is not symmetric; (1,0) should be absent")
	}
	if got := r.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestRelationAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Add")
		}
	}()
	NewRelation(3).Add(0, 3)
}

func TestTransitiveClose(t *testing.T) {
	r := NewRelation(4)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 3)
	r.TransitiveClose()
	for _, want := range [][2]int{{0, 2}, {0, 3}, {1, 3}} {
		if !r.Has(want[0], want[1]) {
			t.Errorf("closure missing (%d,%d)", want[0], want[1])
		}
	}
	if r.Has(3, 0) {
		t.Error("closure invented a reverse edge")
	}
	if !r.Irreflexive() {
		t.Error("acyclic chain closure should be irreflexive")
	}
}

func TestTransitiveCloseCycle(t *testing.T) {
	r := NewRelation(3)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 0)
	r.TransitiveClose()
	if r.Irreflexive() {
		t.Error("cycle closure must be reflexive somewhere")
	}
}

func TestUnionAndClone(t *testing.T) {
	a := NewRelation(3)
	a.Add(0, 1)
	b := NewRelation(3)
	b.Add(1, 2)
	c := a.Clone()
	c.Union(b)
	if !c.Has(0, 1) || !c.Has(1, 2) {
		t.Fatal("union missing pairs")
	}
	if a.Has(1, 2) {
		t.Fatal("union mutated the clone source")
	}
}

func TestUnionSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size mismatch")
		}
	}()
	NewRelation(3).Union(NewRelation(4))
}

func TestTopoOrder(t *testing.T) {
	r := NewRelation(5)
	r.Add(0, 2)
	r.Add(1, 2)
	r.Add(2, 3)
	r.Add(2, 4)
	order, ok := r.TopoOrder()
	if !ok {
		t.Fatal("DAG reported cyclic")
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range r.Pairs() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("topological order violates edge %v", e)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	r := NewRelation(2)
	r.Add(0, 1)
	r.Add(1, 0)
	if _, ok := r.TopoOrder(); ok {
		t.Fatal("cycle not detected")
	}
}

func TestTopoOrderSelfLoop(t *testing.T) {
	r := NewRelation(2)
	r.Add(0, 0)
	if _, ok := r.TopoOrder(); ok {
		t.Fatal("self-loop not detected")
	}
}

func TestPairsRoundTrip(t *testing.T) {
	r := NewRelation(70) // spans multiple words
	edges := [][2]int{{0, 69}, {63, 64}, {64, 63}, {5, 5}}
	for _, e := range edges {
		r.Add(e[0], e[1])
	}
	got := r.Pairs()
	if len(got) != len(edges) {
		t.Fatalf("pairs = %v", got)
	}
	for _, e := range edges {
		if !r.Has(e[0], e[1]) {
			t.Errorf("missing %v", e)
		}
	}
}

// naive transitive closure for cross-checking.
func naiveClose(n int, edges [][2]int) [][]bool {
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
	}
	for _, e := range edges {
		m[e[0]][e[1]] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m[i][k] && m[k][j] {
					m[i][j] = true
				}
			}
		}
	}
	return m
}

// TestClosureAgainstNaive is a property test: the word-parallel Warshall
// closure agrees with the O(n³) boolean reference on random graphs.
func TestClosureAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 120; iter++ {
		n := 1 + rng.Intn(80)
		nEdges := rng.Intn(3 * n)
		var edges [][2]int
		r := NewRelation(n)
		for k := 0; k < nEdges; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			edges = append(edges, [2]int{a, b})
			r.Add(a, b)
		}
		r.TransitiveClose()
		want := naiveClose(n, edges)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Has(i, j) != want[i][j] {
					t.Fatalf("n=%d iter=%d: (%d,%d) = %v, want %v", n, iter, i, j, r.Has(i, j), want[i][j])
				}
			}
		}
	}
}

// TestIrreflexiveProperty: for random DAG-shaped inputs (edges always from
// lower to higher index) the closure is irreflexive; adding any back edge
// that completes a path produces a cycle detectable via Irreflexive.
func TestIrreflexiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		r := NewRelation(n)
		for k := 0; k < 2*n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a < b {
				r.Add(a, b)
			}
		}
		fwd := r.Clone()
		fwd.TransitiveClose()
		if !fwd.Irreflexive() {
			return false
		}
		// Pick a closed pair (a,b) and add (b,a): now a cycle must exist.
		pairs := fwd.Pairs()
		if len(pairs) == 0 {
			return true
		}
		p := pairs[rng.Intn(len(pairs))]
		r.Add(p[1], p[0])
		r.TransitiveClose()
		return !r.Irreflexive()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessors(t *testing.T) {
	r := NewRelation(130)
	r.Add(1, 0)
	r.Add(1, 64)
	r.Add(1, 129)
	var got []int
	r.Successors(1, func(b int) { got = append(got, b) })
	if len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Fatalf("successors = %v", got)
	}
}
