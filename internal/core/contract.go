package core

import (
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/mem"
)

// OutcomeSet is the set of distinct results a machine can produce for a
// program, keyed by mem.Result.Key().
type OutcomeSet map[string]mem.Result

// Add inserts a result.
func (s OutcomeSet) Add(r mem.Result) { s[r.Key()] = r }

// Contains reports whether the set holds the result.
func (s OutcomeSet) Contains(r mem.Result) bool {
	_, ok := s[r.Key()]
	return ok
}

// Keys returns the sorted result keys, for deterministic reporting.
func (s OutcomeSet) Keys() []string {
	ks := make([]string, 0, len(s))
	for k := range s {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// ContractReport records the Definition-2 check for one program on one
// hardware model: hardware is weakly ordered w.r.t. a synchronization model
// iff it appears sequentially consistent to all software obeying the model.
// For a program that obeys the model, that means every outcome the hardware
// can produce must be an outcome some sequentially consistent execution can
// produce.
type ContractReport struct {
	Program  string
	Hardware string
	// ObeysModel is whether the program obeys the synchronization model
	// (Definition 3). When false, Definition 2 promises nothing and Extra
	// outcomes are informational only.
	ObeysModel bool
	// SCOutcomes / HWOutcomes are the result-set sizes.
	SCOutcomes, HWOutcomes int
	// Extra lists hardware outcomes outside the SC set.
	Extra []mem.Result
}

// Honored reports whether the hardware honored its side of the contract on
// this program: vacuously true for programs that violate the model.
func (c *ContractReport) Honored() bool {
	return !c.ObeysModel || len(c.Extra) == 0
}

// String implements fmt.Stringer.
func (c *ContractReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: ", c.Program, c.Hardware)
	switch {
	case !c.ObeysModel && len(c.Extra) == 0:
		fmt.Fprintf(&b, "program violates model (contract vacuous); %d hw outcomes all within %d SC outcomes anyway", c.HWOutcomes, c.SCOutcomes)
	case !c.ObeysModel:
		fmt.Fprintf(&b, "program violates model (contract vacuous); %d non-SC outcome(s) observed", len(c.Extra))
	case len(c.Extra) == 0:
		fmt.Fprintf(&b, "contract honored: %d hw outcomes ⊆ %d SC outcomes", c.HWOutcomes, c.SCOutcomes)
	default:
		fmt.Fprintf(&b, "CONTRACT VIOLATED: %d outcome(s) outside the SC set", len(c.Extra))
	}
	return b.String()
}

// CheckContract performs the Definition-2 containment check given the SC
// outcome set, the hardware outcome set, and whether the program obeys the
// synchronization model.
func CheckContract(progName, hwName string, obeysModel bool, sc, hw OutcomeSet) *ContractReport {
	rep := &ContractReport{
		Program:    progName,
		Hardware:   hwName,
		ObeysModel: obeysModel,
		SCOutcomes: len(sc),
		HWOutcomes: len(hw),
	}
	for _, k := range hw.Keys() {
		if _, ok := sc[k]; !ok {
			rep.Extra = append(rep.Extra, hw[k])
		}
	}
	return rep
}
