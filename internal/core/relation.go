// Package core implements the formal machinery of Adve & Hill's
// "Weak Ordering — A New Definition": program order and synchronization
// order over recorded executions, the happens-before relation
// hb = (po ∪ so)+, the DRF0 synchronization model (Definition 3) and its
// Section-6 refinement, sequential-consistency checking of execution results,
// the Lemma-1 read-value condition, and the Definition-2 contract between
// software and hardware.
package core

import (
	"fmt"
	"math/bits"
)

// Relation is a binary relation over the dense integer range [0, n),
// represented as a bit matrix. It is the workhorse behind happens-before:
// dense executions of a few thousand events close in milliseconds.
type Relation struct {
	n     int
	words int
	rows  []uint64 // n rows of `words` uint64s each
}

// NewRelation returns the empty relation over [0, n).
func NewRelation(n int) *Relation {
	if n < 0 {
		panic("core: negative relation size")
	}
	w := (n + 63) / 64
	return &Relation{n: n, words: w, rows: make([]uint64, n*w)}
}

// Size returns n.
func (r *Relation) Size() int { return r.n }

func (r *Relation) check(a, b int) {
	if a < 0 || a >= r.n || b < 0 || b >= r.n {
		panic(fmt.Sprintf("core: relation index (%d,%d) out of range [0,%d)", a, b, r.n))
	}
}

// Add inserts the pair (a, b).
func (r *Relation) Add(a, b int) {
	r.check(a, b)
	r.rows[a*r.words+b/64] |= 1 << (uint(b) % 64)
}

// Has reports whether (a, b) is in the relation.
func (r *Relation) Has(a, b int) bool {
	r.check(a, b)
	return r.rows[a*r.words+b/64]&(1<<(uint(b)%64)) != 0
}

// Union adds every pair of o into r. The two relations must be the same size.
func (r *Relation) Union(o *Relation) {
	if o.n != r.n {
		panic("core: union of relations of different sizes")
	}
	for i := range r.rows {
		r.rows[i] |= o.rows[i]
	}
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := &Relation{n: r.n, words: r.words, rows: make([]uint64, len(r.rows))}
	copy(c.rows, r.rows)
	return c
}

// TransitiveClose replaces r with its transitive closure using word-parallel
// Warshall: for every intermediate k, each row that reaches k absorbs k's row.
func (r *Relation) TransitiveClose() {
	for k := 0; k < r.n; k++ {
		krow := r.rows[k*r.words : (k+1)*r.words]
		kw, kb := k/64, uint64(1)<<(uint(k)%64)
		for i := 0; i < r.n; i++ {
			irow := r.rows[i*r.words : (i+1)*r.words]
			if irow[kw]&kb == 0 {
				continue
			}
			for w := 0; w < r.words; w++ {
				irow[w] |= krow[w]
			}
		}
	}
}

// Irreflexive reports whether no element relates to itself. On a transitively
// closed relation this is exactly acyclicity of the original edges.
func (r *Relation) Irreflexive() bool {
	for i := 0; i < r.n; i++ {
		if r.rows[i*r.words+i/64]&(1<<(uint(i)%64)) != 0 {
			return false
		}
	}
	return true
}

// Pairs returns every (a, b) in the relation, in row-major order. Intended
// for tests and diagnostics, not hot paths.
func (r *Relation) Pairs() [][2]int {
	var out [][2]int
	for a := 0; a < r.n; a++ {
		row := r.rows[a*r.words : (a+1)*r.words]
		for w, word := range row {
			for word != 0 {
				b := w*64 + trailingZeros(word)
				out = append(out, [2]int{a, b})
				word &= word - 1
			}
		}
	}
	return out
}

// Count returns the number of pairs in the relation.
func (r *Relation) Count() int {
	n := 0
	for _, w := range r.rows {
		n += popcount(w)
	}
	return n
}

// Successors calls fn for each b with (a, b) in the relation.
func (r *Relation) Successors(a int, fn func(b int)) {
	r.check(a, 0)
	row := r.rows[a*r.words : (a+1)*r.words]
	for w, word := range row {
		for word != 0 {
			fn(w*64 + trailingZeros(word))
			word &= word - 1
		}
	}
}

// TopoOrder returns a topological order of [0, n) consistent with the
// relation's edges, or ok=false if the relation (viewed as an edge set) has a
// cycle. It works on the *edge* relation (closure not required).
func (r *Relation) TopoOrder() (order []int, ok bool) {
	indeg := make([]int, r.n)
	for a := 0; a < r.n; a++ {
		r.Successors(a, func(b int) {
			if a != b {
				indeg[b]++
			} else {
				indeg[b] += 2 // self-loop: never becomes ready
			}
		})
	}
	queue := make([]int, 0, r.n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order = make([]int, 0, r.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		r.Successors(v, func(b int) {
			if b == v {
				return
			}
			indeg[b]--
			if indeg[b] == 0 {
				queue = append(queue, b)
			}
		})
	}
	if len(order) != r.n {
		return nil, false
	}
	return order, true
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

func popcount(x uint64) int { return bits.OnesCount64(x) }
