package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/explore"
	"weakorder/internal/mem"
)

// SCCheck decides whether a recorded execution is sequentially consistent in
// Lamport's sense: does there exist a single total order of all its accesses,
// consistent with each processor's program order, in which every operation
// with a read component returns the value written by the most recent
// operation with a write component on the same location (or the initial value
// if none)?
//
// This is the "verifying sequential consistency" problem, NP-hard in general;
// the implementation is an exhaustive replay search on the shared exploration
// kernel (internal/explore): state deduplication over (frontier, memory) plus
// the kernel's conflict-driven partial-order reduction, which is fast for the
// execution sizes produced by litmus tests and the randomized contract
// experiments (tens of events per processor).
//
// SCCheck looks only at the events (per-processor sequences of accesses with
// bound values); any Completed order on the execution is ignored, since the
// question is precisely whether some legal total order exists.
func SCCheck(e *mem.Execution, init map[mem.Addr]mem.Value) (*SCWitness, error) {
	return SCCheckOpt(e, init, SCOptions{})
}

// SCOptions tunes SCCheckOpt; the zero value is SCCheck's behavior.
type SCOptions struct {
	// FullExploration disables the partial-order reduction, expanding every
	// enabled replay step of every search state. The escape hatch mirroring
	// model.Explorer's: differential tests pin that it never changes answers.
	FullExploration bool
	// MaxStates bounds the number of distinct search states (0 = the kernel's
	// DefaultMaxStates safety net). Exceeding it aborts with an error
	// satisfying errors.Is(err, explore.ErrStateBudget).
	MaxStates int
	// Workers selects the search width, passed through to the kernel (0 or 1
	// serial, n > 1 that many workers, negative auto-sized from the par
	// budget). The SC verdict is width-independent, but when an execution has
	// several witnessing orders a parallel search may return any of them —
	// VerifyWitness accepts them all.
	Workers int
}

// SCCheckOpt is SCCheck with explicit exploration options.
func SCCheckOpt(e *mem.Execution, init map[mem.Addr]mem.Value, opts SCOptions) (*SCWitness, error) {
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid execution: %w", err)
	}
	byProc := e.ByProc()
	s := &scSystem{
		exec:   e,
		byProc: byProc,
		next:   make([]int, len(byProc)),
	}
	// Pre-resolve the address universe to dense indices once, so the hot
	// replay loop works on a flat value slice instead of a map: collect every
	// address the execution or the initial memory mentions, sort for
	// canonicity, then index each event's address ahead of time. The dense
	// index doubles as the footprint bit when it fits in 64.
	addrSet := make(map[mem.Addr]bool)
	for _, ev := range e.Events {
		addrSet[ev.Addr] = true
	}
	for a := range init {
		addrSet[a] = true
	}
	addrs := make([]mem.Addr, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	idx := make(map[mem.Addr]int, len(addrs))
	for i, a := range addrs {
		idx[a] = i
	}
	s.memory = make([]mem.Value, len(addrs))
	for a, v := range init {
		s.memory[idx[a]] = v
	}
	s.addrOf = make([]int, e.Len())
	s.bitOf = make([]uint64, e.Len())
	for _, ev := range e.Events {
		ai := idx[ev.Addr]
		s.addrOf[ev.ID] = ai
		if ai < 64 {
			s.bitOf[ev.ID] = uint64(1) << ai
		}
	}
	// Per-processor suffix footprints: suffix[p][i] over-approximates every
	// access in byProc[p][i:]. Computed once; shared (read-only) by clones.
	s.suffix = make([][]explore.Footprint, len(byProc))
	for p, evs := range byProc {
		sf := make([]explore.Footprint, len(evs)+1)
		for i := len(evs) - 1; i >= 0; i-- {
			ev := e.Event(evs[i])
			fp := sf[i+1]
			bit := s.bitOf[ev.ID]
			if bit == 0 {
				fp.Wild = true
			} else {
				if ev.Op.Reads() {
					fp.Reads |= bit
				}
				if ev.Op.Writes() {
					fp.Writes |= bit
				}
			}
			fp.Sync = fp.Sync || ev.Op.IsSync()
			sf[i] = fp
		}
		s.suffix[p] = sf
	}

	x := explore.Explorer{
		MaxStates:       opts.MaxStates,
		FullExploration: opts.FullExploration,
		Workers:         opts.Workers,
		// Replay keys are (frontier, memory): the relative order in which
		// synchronization operations on different locations were serialized
		// is not part of the question being asked.
		VisibleSyncOrder: false,
		// A blocked replay — the recorded read value unreachable from here —
		// is an expected dead end of the search, not a modeling bug.
		AllowStuck: true,
	}
	var order []mem.EventID
	st, err := x.Run(s, func(f explore.TransitionSystem) bool {
		order = append([]mem.EventID(nil), f.(*scSystem).order...)
		return false // first witness suffices
	})
	if err != nil {
		return nil, fmt.Errorf("core: SC check: %w", err)
	}
	if order != nil {
		return &SCWitness{SC: true, Order: order}, nil
	}
	return &SCWitness{SC: false, States: st.States}, nil
}

// SCWitness is the result of SCCheck: either a witnessing total order or a
// proof of exhaustion (all interleavings explored without success).
type SCWitness struct {
	SC bool
	// Order is a witnessing total order of event IDs when SC is true.
	Order []mem.EventID
	// States is the number of distinct search states explored when SC is
	// false (diagnostic; depends on whether reduction was enabled).
	States int
}

// String implements fmt.Stringer.
func (w *SCWitness) String() string {
	if !w.SC {
		return fmt.Sprintf("not sequentially consistent (exhausted %d states)", w.States)
	}
	parts := make([]string, len(w.Order))
	for i, id := range w.Order {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return "SC witness order: " + strings.Join(parts, " < ")
}

// scSystem adapts the replay search to explore.TransitionSystem. A state is
// the per-processor frontier into the recorded event sequences plus the
// current memory; a step replays one processor's next event. A write is
// always enabled; a read is enabled iff memory holds the recorded value; an
// RMW needs its read component to match, and then applies its write. Each
// processor is its own agent, and a frozen frontier event (read awaiting its
// recorded value) is woken only by writes to its location — declared as the
// wake footprint — so the kernel's reduction applies unchanged.
type scSystem struct {
	exec   *mem.Execution
	byProc [][]mem.EventID
	addrOf []int                 // per event ID: dense index of the event's address
	bitOf  []uint64              // per event ID: footprint bit of the address (0 = none)
	suffix [][]explore.Footprint // per proc: footprint of the event suffix from each index

	next   []int       // per-processor frontier into byProc
	memory []mem.Value // dense, indexed by the pre-resolved address index
	order  []mem.EventID
}

// Name implements explore.TransitionSystem.
func (s *scSystem) Name() string { return "sc-replay" }

// Clone implements explore.TransitionSystem. The recorded execution and the
// derived static tables are immutable and shared.
func (s *scSystem) Clone() explore.TransitionSystem {
	c := *s
	c.next = append([]int(nil), s.next...)
	c.memory = append([]mem.Value(nil), s.memory...)
	c.order = append([]mem.EventID(nil), s.order...)
	return &c
}

// frontier returns processor p's next unreplayed event.
func (s *scSystem) frontier(p int) (mem.Event, bool) {
	i := s.next[p]
	if i >= len(s.byProc[p]) {
		return mem.Event{}, false
	}
	return s.exec.Event(s.byProc[p][i]), true
}

// Steps implements explore.TransitionSystem. Processor order is canonical:
// enabledness is a function of (frontier, memory), which is exactly the state
// key, so key-equal states list position-aligned steps.
func (s *scSystem) Steps() []explore.Step {
	var steps []explore.Step
	for p := range s.byProc {
		ev, ok := s.frontier(p)
		if !ok {
			continue
		}
		if ev.Op.Reads() && s.memory[s.addrOf[ev.ID]] != ev.Value {
			continue
		}
		steps = append(steps, explore.Step{
			Proc: p,
			Info: explore.Info{Agent: p, Addr: ev.Addr, Op: ev.Op, AddrBit: s.bitOf[ev.ID]},
		})
	}
	return steps
}

// Apply implements explore.TransitionSystem.
func (s *scSystem) Apply(t explore.Step) error {
	ev, ok := s.frontier(t.Proc)
	if !ok {
		return fmt.Errorf("sc-replay: P%d exhausted", t.Proc)
	}
	if ev.Op.Reads() && s.memory[s.addrOf[ev.ID]] != ev.Value {
		return fmt.Errorf("sc-replay: P%d read not enabled at %s", t.Proc, ev.Access)
	}
	s.next[t.Proc]++
	s.order = append(s.order, ev.ID)
	if ev.Op.Writes() {
		v := ev.Value
		if ev.Op == mem.OpSyncRMW {
			v = ev.WValue
		}
		s.memory[s.addrOf[ev.ID]] = v
	}
	return nil
}

// Done implements explore.TransitionSystem.
func (s *scSystem) Done() bool {
	for p := range s.byProc {
		if s.next[p] < len(s.byProc[p]) {
			return false
		}
	}
	return true
}

// AppendKey implements explore.TransitionSystem: (frontier, memory), a
// fixed-shape varint sequence, hence prefix-free for a given execution.
// Memory is determined by the multiset of applied writes only through the
// frontier in general — two different interleavings with the same frontier
// can differ in memory — so both parts are needed.
func (s *scSystem) AppendKey(key []byte) []byte {
	for _, n := range s.next {
		key = binary.AppendUvarint(key, uint64(n))
	}
	for _, v := range s.memory {
		key = binary.AppendVarint(key, int64(v))
	}
	return key
}

// Prune implements explore.TransitionSystem: replays are finite.
func (s *scSystem) Prune() bool { return false }

// Footprints implements explore.TransitionSystem: each processor's future is
// the static footprint of its remaining event suffix. A disabled frontier
// read is enabled only by the memory at its location coming to hold the
// recorded value — a write to that location by some other processor — so the
// location is the processor's wake footprint; everything else about
// enabledness (the frontier position) is the processor's own state.
func (s *scSystem) Footprints(buf []explore.AgentFootprints) []explore.AgentFootprints {
	for p := range s.byProc {
		af := explore.AgentFootprints{Future: s.suffix[p][s.next[p]]}
		if ev, ok := s.frontier(p); ok && ev.Op.Reads() && s.memory[s.addrOf[ev.ID]] != ev.Value {
			if bit := s.bitOf[ev.ID]; bit != 0 {
				af.Wake.Reads = bit
			} else {
				af.Wake.Wild = true
			}
		}
		buf = append(buf, af)
	}
	return buf
}

// VerifyWitness checks that a claimed witness order actually serializes the
// execution legally: it must be a permutation of all events, consistent with
// program order, with every read returning the most recent write (or the
// initial value). Used by tests and by downstream consumers that want to
// double-check SCCheck's positive answers.
func VerifyWitness(e *mem.Execution, init map[mem.Addr]mem.Value, order []mem.EventID) error {
	if len(order) != e.Len() {
		return fmt.Errorf("witness has %d events, execution has %d", len(order), e.Len())
	}
	seen := make([]bool, e.Len())
	lastIdx := make(map[mem.ProcID]int)
	memory := make(map[mem.Addr]mem.Value, len(init))
	for a, v := range init {
		memory[a] = v
	}
	first := make(map[mem.ProcID]bool)
	for _, id := range order {
		if id < 0 || int(id) >= e.Len() || seen[id] {
			return fmt.Errorf("witness is not a permutation (event %d)", id)
		}
		seen[id] = true
		ev := e.Event(id)
		if prev, ok := lastIdx[ev.Proc]; ok || first[ev.Proc] {
			if ev.Index != prev+1 {
				return fmt.Errorf("witness violates program order on P%d: index %d after %d", ev.Proc, ev.Index, prev)
			}
		} else if ev.Index != 0 {
			return fmt.Errorf("witness violates program order on P%d: first index %d", ev.Proc, ev.Index)
		}
		lastIdx[ev.Proc] = ev.Index
		first[ev.Proc] = true
		if ev.Op.Reads() && memory[ev.Addr] != ev.Value {
			return fmt.Errorf("witness read mismatch at %s: memory holds %d", ev.Access, memory[ev.Addr])
		}
		if ev.Op.Writes() {
			v := ev.Value
			if ev.Op == mem.OpSyncRMW {
				v = ev.WValue
			}
			memory[ev.Addr] = v
		}
	}
	return nil
}
