package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/digest"
	"weakorder/internal/mem"
)

// SCCheck decides whether a recorded execution is sequentially consistent in
// Lamport's sense: does there exist a single total order of all its accesses,
// consistent with each processor's program order, in which every operation
// with a read component returns the value written by the most recent
// operation with a write component on the same location (or the initial value
// if none)?
//
// This is the "verifying sequential consistency" problem, NP-hard in general;
// the implementation is an exhaustive replay search with memoization of
// visited frontier states, which is fast for the execution sizes produced by
// litmus tests and the randomized contract experiments (tens of events per
// processor).
//
// SCCheck looks only at the events (per-processor sequences of accesses with
// bound values); any Completed order on the execution is ignored, since the
// question is precisely whether some legal total order exists.
func SCCheck(e *mem.Execution, init map[mem.Addr]mem.Value) (*SCWitness, error) {
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid execution: %w", err)
	}
	byProc := e.ByProc()
	c := &scChecker{
		exec:    e,
		byProc:  byProc,
		next:    make([]int, len(byProc)),
		visited: make(map[digest.Sum]struct{}),
	}
	// Pre-resolve the address universe to dense indices once, so the hot
	// replay loop works on a flat value slice instead of a map: collect every
	// address the execution or the initial memory mentions, sort for
	// canonicity, then index each event's address ahead of time.
	addrSet := make(map[mem.Addr]bool)
	for _, ev := range e.Events {
		addrSet[ev.Addr] = true
	}
	for a := range init {
		addrSet[a] = true
	}
	addrs := make([]mem.Addr, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	idx := make(map[mem.Addr]int, len(addrs))
	for i, a := range addrs {
		idx[a] = i
	}
	c.memory = make([]mem.Value, len(addrs))
	for a, v := range init {
		c.memory[idx[a]] = v
	}
	c.addrOf = make([]int, e.Len())
	for _, ev := range e.Events {
		c.addrOf[ev.ID] = idx[ev.Addr]
	}

	if c.search() {
		w := &SCWitness{SC: true, Order: append([]mem.EventID(nil), c.order...)}
		return w, nil
	}
	return &SCWitness{SC: false, States: len(c.visited)}, nil
}

// SCWitness is the result of SCCheck: either a witnessing total order or a
// proof of exhaustion (all interleavings explored without success).
type SCWitness struct {
	SC bool
	// Order is a witnessing total order of event IDs when SC is true.
	Order []mem.EventID
	// States is the number of distinct search states explored when SC is
	// false (diagnostic).
	States int
}

// String implements fmt.Stringer.
func (w *SCWitness) String() string {
	if !w.SC {
		return fmt.Sprintf("not sequentially consistent (exhausted %d states)", w.States)
	}
	parts := make([]string, len(w.Order))
	for i, id := range w.Order {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return "SC witness order: " + strings.Join(parts, " < ")
}

type scChecker struct {
	exec    *mem.Execution
	byProc  [][]mem.EventID
	next    []int       // per-processor frontier into byProc
	memory  []mem.Value // dense, indexed by the pre-resolved address index
	addrOf  []int       // per event ID: dense index of the event's address
	order   []mem.EventID
	visited map[digest.Sum]struct{}
	key     []byte // reused state-key encoding buffer
}

// enabled reports whether processor p's next event can execute now: a write
// is always enabled; a read is enabled iff memory holds the recorded value;
// an RMW needs its read component to match, and then applies its write.
func (c *scChecker) enabled(p int) (mem.Event, bool) {
	i := c.next[p]
	if i >= len(c.byProc[p]) {
		return mem.Event{}, false
	}
	ev := c.exec.Event(c.byProc[p][i])
	if ev.Op.Reads() {
		if c.memory[c.addrOf[ev.ID]] != ev.Value {
			return mem.Event{}, false
		}
	}
	return ev, true
}

// apply executes the event, returning the previous value of its location for
// undo.
func (c *scChecker) apply(p int, ev mem.Event) mem.Value {
	ai := c.addrOf[ev.ID]
	old := c.memory[ai]
	c.next[p]++
	c.order = append(c.order, ev.ID)
	if ev.Op.Writes() {
		v := ev.Value
		if ev.Op == mem.OpSyncRMW {
			v = ev.WValue
		}
		c.memory[ai] = v
	}
	return old
}

// undo reverts apply.
func (c *scChecker) undo(p int, ev mem.Event, old mem.Value) {
	c.next[p]--
	c.order = c.order[:len(c.order)-1]
	if ev.Op.Writes() {
		c.memory[c.addrOf[ev.ID]] = old
	}
}

func (c *scChecker) done() bool {
	for p := range c.byProc {
		if c.next[p] < len(c.byProc[p]) {
			return false
		}
	}
	return true
}

// stateKey canonically encodes (frontier, memory) into the reused buffer and
// returns its fixed-seed digest. Memory is determined by the multiset of
// applied writes only through the frontier in general — two different
// interleavings with the same frontier can differ in memory — so both parts
// are needed. The encoding is a fixed-shape varint sequence, hence
// prefix-free for a given execution.
func (c *scChecker) stateKey() digest.Sum {
	b := c.key[:0]
	for _, n := range c.next {
		b = binary.AppendUvarint(b, uint64(n))
	}
	for _, v := range c.memory {
		b = binary.AppendVarint(b, int64(v))
	}
	c.key = b
	return digest.Sum128(b)
}

func (c *scChecker) search() bool {
	if c.done() {
		return true
	}
	key := c.stateKey()
	if _, ok := c.visited[key]; ok {
		return false
	}
	c.visited[key] = struct{}{}
	for p := range c.byProc {
		ev, ok := c.enabled(p)
		if !ok {
			continue
		}
		old := c.apply(p, ev)
		if c.search() {
			return true
		}
		c.undo(p, ev, old)
	}
	return false
}

// VerifyWitness checks that a claimed witness order actually serializes the
// execution legally: it must be a permutation of all events, consistent with
// program order, with every read returning the most recent write (or the
// initial value). Used by tests and by downstream consumers that want to
// double-check SCCheck's positive answers.
func VerifyWitness(e *mem.Execution, init map[mem.Addr]mem.Value, order []mem.EventID) error {
	if len(order) != e.Len() {
		return fmt.Errorf("witness has %d events, execution has %d", len(order), e.Len())
	}
	seen := make([]bool, e.Len())
	lastIdx := make(map[mem.ProcID]int)
	memory := make(map[mem.Addr]mem.Value, len(init))
	for a, v := range init {
		memory[a] = v
	}
	first := make(map[mem.ProcID]bool)
	for _, id := range order {
		if id < 0 || int(id) >= e.Len() || seen[id] {
			return fmt.Errorf("witness is not a permutation (event %d)", id)
		}
		seen[id] = true
		ev := e.Event(id)
		if prev, ok := lastIdx[ev.Proc]; ok || first[ev.Proc] {
			if ev.Index != prev+1 {
				return fmt.Errorf("witness violates program order on P%d: index %d after %d", ev.Proc, ev.Index, prev)
			}
		} else if ev.Index != 0 {
			return fmt.Errorf("witness violates program order on P%d: first index %d", ev.Proc, ev.Index)
		}
		lastIdx[ev.Proc] = ev.Index
		first[ev.Proc] = true
		if ev.Op.Reads() && memory[ev.Addr] != ev.Value {
			return fmt.Errorf("witness read mismatch at %s: memory holds %d", ev.Access, memory[ev.Addr])
		}
		if ev.Op.Writes() {
			v := ev.Value
			if ev.Op == mem.OpSyncRMW {
				v = ev.WValue
			}
			memory[ev.Addr] = v
		}
	}
	return nil
}
