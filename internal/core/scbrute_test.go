package core

import (
	"math/rand"
	"testing"

	"weakorder/internal/mem"
)

// bruteSC decides SC-executability by enumerating every interleaving of the
// per-processor sequences (no memoization, no pruning beyond read-value
// legality) — the trivially correct reference for SCCheck.
func bruteSC(e *mem.Execution, init map[mem.Addr]mem.Value) bool {
	byProc := e.ByProc()
	next := make([]int, len(byProc))
	memory := map[mem.Addr]mem.Value{}
	for a, v := range init {
		memory[a] = v
	}
	var rec func() bool
	rec = func() bool {
		done := true
		for p := range byProc {
			if next[p] < len(byProc[p]) {
				done = false
				ev := e.Event(byProc[p][next[p]])
				if ev.Op.Reads() && memory[ev.Addr] != ev.Value {
					continue
				}
				old, had := memory[ev.Addr]
				next[p]++
				if ev.Op.Writes() {
					v := ev.Value
					if ev.Op == mem.OpSyncRMW {
						v = ev.WValue
					}
					memory[ev.Addr] = v
				}
				if rec() {
					return true
				}
				next[p]--
				if ev.Op.Writes() {
					if had {
						memory[ev.Addr] = old
					} else {
						delete(memory, ev.Addr)
					}
				}
			}
		}
		return done
	}
	return rec()
}

// TestSCCheckAgainstBruteForce cross-validates the memoized replay search
// against full interleaving enumeration on random small executions, including
// deliberately inconsistent ones (perturbed read values).
func TestSCCheckAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	agreeSC, agreeNot := 0, 0
	for iter := 0; iter < 400; iter++ {
		nproc := 2 + rng.Intn(2)
		naddr := 1 + rng.Intn(2)
		nops := 2 + rng.Intn(6)
		e := mem.NewExecution(nproc)
		for k := 0; k < nops; k++ {
			p := mem.ProcID(rng.Intn(nproc))
			a := mem.Addr(rng.Intn(naddr))
			switch rng.Intn(3) {
			case 0:
				// Random (possibly illegal) read value: roughly half the
				// generated executions are not SC.
				e.Append(mem.Access{Proc: p, Op: mem.OpRead, Addr: a, Value: mem.Value(rng.Intn(3))})
			case 1:
				e.Append(mem.Access{Proc: p, Op: mem.OpWrite, Addr: a, Value: mem.Value(1 + rng.Intn(2))})
			default:
				e.Append(mem.Access{Proc: p, Op: mem.OpSyncRMW, Addr: a,
					Value: mem.Value(rng.Intn(3)), WValue: mem.Value(1 + rng.Intn(2))})
			}
		}
		want := bruteSC(e, nil)
		w, err := SCCheck(e, nil)
		if err != nil {
			t.Fatal(err)
		}
		if w.SC != want {
			t.Fatalf("iter %d: SCCheck=%v brute=%v\n%s", iter, w.SC, want, e)
		}
		if want {
			agreeSC++
			if err := VerifyWitness(e, nil, w.Order); err != nil {
				t.Fatalf("iter %d: witness invalid: %v", iter, err)
			}
		} else {
			agreeNot++
		}
	}
	if agreeSC == 0 || agreeNot == 0 {
		t.Fatalf("one-sided sample: sc=%d notsc=%d", agreeSC, agreeNot)
	}
}
