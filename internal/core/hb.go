package core

import (
	"fmt"
	"sort"

	"weakorder/internal/mem"
)

// SyncModel decides which pairs of synchronization operations create
// synchronization-order edges. DRF0 (Definition 3) lets every ordered pair of
// sync operations on the same location synchronize; the Section-6 refinement
// (here called DRF1) removes read-only synchronization operations from the
// releasing side, so that spinning Tests do not have to be serialized by the
// hardware.
type SyncModel interface {
	// Name identifies the model in reports.
	Name() string
	// SyncEdge reports whether s1 (completing earlier) → s2 (completing
	// later), both synchronization operations on the same location,
	// contributes a synchronization-order edge. Both arguments are
	// guaranteed to satisfy Op.IsSync() and share an address.
	SyncEdge(s1, s2 mem.Event) bool
}

// DRF0 is the paper's Data-Race-Free-0 synchronization model: all
// synchronization operations to the same location are mutually ordering.
type DRF0 struct{}

// Name implements SyncModel.
func (DRF0) Name() string { return "DRF0" }

// SyncEdge implements SyncModel.
func (DRF0) SyncEdge(s1, s2 mem.Event) bool { return true }

// DRF1 is the Section-6 refinement: "a processor cannot use a read-only
// synchronization operation to order its previous accesses with respect to
// subsequent synchronization operations of other processors". Concretely, an
// edge s1 → s2 requires s1 to have a write component (Unset or TestAndSet can
// release; a bare Test cannot), and s2 to have a read component (an Unset
// cannot acquire what a previous processor released — it observes nothing).
type DRF1 struct{}

// Name implements SyncModel.
func (DRF1) Name() string { return "DRF1" }

// SyncEdge implements SyncModel.
func (DRF1) SyncEdge(s1, s2 mem.Event) bool {
	return s1.Op.Writes() && s2.Op.Reads()
}

// Unconstrained is the degenerate synchronization model that never creates
// synchronization edges; under it, only single-threaded programs are
// race-free. It exists as the base case for tests and for Lamport-style
// hardware that must treat every access as potential synchronization.
type Unconstrained struct{}

// Name implements SyncModel.
func (Unconstrained) Name() string { return "unconstrained" }

// SyncEdge implements SyncModel.
func (Unconstrained) SyncEdge(s1, s2 mem.Event) bool { return false }

// Orders bundles the relations of one analyzed execution. All relations are
// indexed by mem.EventID (dense ints).
type Orders struct {
	Exec *mem.Execution
	// PO is program order: e1 → e2 iff same processor and e1 earlier.
	PO *Relation
	// SO is synchronization order under the chosen model: edges between
	// synchronization operations on the same location, directed by
	// completion order.
	SO *Relation
	// HB is the happens-before relation, the irreflexive transitive closure
	// of PO ∪ SO.
	HB *Relation
}

// BuildOrders computes po, so (under model m) and hb = (po ∪ so)+ for an
// idealized execution. The execution must carry a completion order
// (Completed non-nil): synchronization order is defined by completion times.
//
// The paper augments every execution with hypothetical initializing writes
// ordered (through a hypothetical synchronization chain) before all real
// accesses, and final reads after them; rather than materializing those
// events, the initial state is treated as happening-before everything and the
// final state after everything, which is equivalent for every check in this
// package.
func BuildOrders(e *mem.Execution, m SyncModel) (*Orders, error) {
	if e.Completed == nil {
		return nil, fmt.Errorf("core: execution has no completion order; BuildOrders requires an idealized execution")
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid execution: %w", err)
	}
	n := e.Len()
	po := NewRelation(n)
	for _, ids := range e.ByProc() {
		// Adjacent pairs suffice: closure fills in the rest.
		for i := 1; i < len(ids); i++ {
			po.Add(int(ids[i-1]), int(ids[i]))
		}
	}
	so := NewRelation(n)
	// Group synchronization operations by address, ordered by completion.
	completedPos := make([]int, n)
	for pos, id := range e.Completed {
		completedPos[id] = pos
	}
	byAddr := make(map[mem.Addr][]mem.EventID)
	for _, ev := range e.Events {
		if ev.Op.IsSync() {
			byAddr[ev.Addr] = append(byAddr[ev.Addr], ev.ID)
		}
	}
	for _, ids := range byAddr {
		sort.Slice(ids, func(i, j int) bool {
			return completedPos[ids[i]] < completedPos[ids[j]]
		})
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				s1, s2 := e.Event(ids[i]), e.Event(ids[j])
				if m.SyncEdge(s1, s2) {
					so.Add(int(ids[i]), int(ids[j]))
				}
			}
		}
	}
	hb := po.Clone()
	hb.Union(so)
	hb.TransitiveClose()
	if !hb.Irreflexive() {
		// Cannot happen for a valid completion order (po and so both follow
		// completion positions), so a cycle means corrupted input.
		return nil, fmt.Errorf("core: happens-before has a cycle; completion order is inconsistent")
	}
	return &Orders{Exec: e, PO: po, SO: so, HB: hb}, nil
}

// HappensBefore reports whether a → b in hb.
func (o *Orders) HappensBefore(a, b mem.EventID) bool { return o.HB.Has(int(a), int(b)) }

// Ordered reports whether a and b are ordered either way by hb.
func (o *Orders) Ordered(a, b mem.EventID) bool {
	return o.HB.Has(int(a), int(b)) || o.HB.Has(int(b), int(a))
}
