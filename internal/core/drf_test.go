package core

import (
	"strings"
	"testing"

	"weakorder/internal/mem"
)

func racyPair() *mem.Execution {
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})
	return e
}

func TestCheckExecutionFindsRace(t *testing.T) {
	rep, err := CheckExecution(racyPair(), DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Free() {
		t.Fatal("unsynchronized write/read must race")
	}
	if len(rep.Races) != 1 {
		t.Fatalf("races = %d, want 1", len(rep.Races))
	}
	r := rep.Races[0]
	if r.A.Addr != 0 || r.B.Addr != 0 {
		t.Errorf("race on wrong location: %s", r)
	}
	if !strings.Contains(rep.String(), "violates DRF0") {
		t.Errorf("report text: %s", rep)
	}
}

func TestCheckExecutionHandoffIsFree(t *testing.T) {
	rep, err := CheckExecution(handoff(), DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Free() {
		t.Fatalf("handoff should be race-free: %s", rep)
	}
	if !strings.Contains(rep.String(), "obeys DRF0") {
		t.Errorf("report text: %s", rep)
	}
}

func TestReadReadNoConflict(t *testing.T) {
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpRead, Addr: 0})
	e.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0})
	rep, err := CheckExecution(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Free() {
		t.Fatal("two reads never conflict")
	}
}

func TestDifferentLocationsNoConflict(t *testing.T) {
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpWrite, Addr: 1, Value: 1})
	rep, err := CheckExecution(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Free() {
		t.Fatal("writes to different locations never conflict")
	}
}

func TestSameProcessorNeverRaces(t *testing.T) {
	e := mem.NewExecution(1)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 2})
	rep, err := CheckExecution(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Free() {
		t.Fatal("program order covers same-processor conflicts")
	}
}

func TestSyncSyncConflictExempt(t *testing.T) {
	// Two sync writes to the same location by different processors: under
	// DRF1 neither edge direction exists (the later one cannot acquire),
	// yet hardware arbitration means this is not a data race.
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncWrite, Addr: 0, Value: 2})
	rep, err := CheckExecution(e, DRF1{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Free() {
		t.Fatalf("sync/sync conflicts are hardware-arbitrated, not races: %s", rep)
	}
}

func TestSyncDataConflictStillRaces(t *testing.T) {
	// A data write racing with a sync op on the same location is a race
	// (DRF0 programs must not mix data and sync accesses to one location
	// without ordering).
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncWrite, Addr: 0, Value: 2})
	rep, err := CheckExecution(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Free() {
		t.Fatal("data/sync conflict on one location must race")
	}
}

func TestUnconstrainedMakesEverythingRacy(t *testing.T) {
	rep, err := CheckExecution(handoff(), Unconstrained{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Free() {
		t.Fatal("without sync edges, W(x)/R(x) must race")
	}
}

// sliceEnum adapts a fixed set of executions to ExecutionEnumerator.
type sliceEnum []*mem.Execution

func (s sliceEnum) IdealizedExecutions(fn func(*mem.Execution) bool) error {
	for _, e := range s {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

func TestCheckProgramAggregates(t *testing.T) {
	rep, err := CheckProgram(sliceEnum{handoff(), racyPair(), racyPair()}, DRF0{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Obeys() {
		t.Fatal("program with racy executions must not obey")
	}
	if rep.Executions != 3 || len(rep.Violations) != 2 {
		t.Fatalf("executions=%d violations=%d", rep.Executions, len(rep.Violations))
	}
}

func TestCheckProgramStopsAtMaxViolations(t *testing.T) {
	rep, err := CheckProgram(sliceEnum{racyPair(), racyPair(), racyPair()}, DRF0{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("violations=%d, want 1 (early stop)", len(rep.Violations))
	}
	if rep.Executions != 1 {
		t.Fatalf("executions=%d, want 1", rep.Executions)
	}
}

func TestCheckProgramAllFree(t *testing.T) {
	rep, err := CheckProgram(sliceEnum{handoff(), handoff()}, DRF0{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Obeys() {
		t.Fatalf("all-free program reported as violating: %s", rep)
	}
	if !strings.Contains(rep.String(), "obeys") {
		t.Errorf("report text: %s", rep)
	}
}
