package core

import (
	"strings"
	"testing"

	"weakorder/internal/mem"
)

func res(reads map[mem.ReadKey]mem.Value, final map[mem.Addr]mem.Value) mem.Result {
	if reads == nil {
		reads = map[mem.ReadKey]mem.Value{}
	}
	if final == nil {
		final = map[mem.Addr]mem.Value{}
	}
	return mem.Result{Reads: reads, Final: final}
}

func TestOutcomeSetBasics(t *testing.T) {
	s := make(OutcomeSet)
	r1 := res(map[mem.ReadKey]mem.Value{{Proc: 0, Index: 0}: 1}, nil)
	r2 := res(map[mem.ReadKey]mem.Value{{Proc: 0, Index: 0}: 2}, nil)
	s.Add(r1)
	if !s.Contains(r1) || s.Contains(r2) {
		t.Fatal("containment wrong")
	}
	s.Add(r1)
	if len(s) != 1 {
		t.Fatal("duplicate result created a new entry")
	}
	s.Add(r2)
	if len(s.Keys()) != 2 {
		t.Fatal("keys wrong")
	}
}

func TestCheckContractHonored(t *testing.T) {
	sc := make(OutcomeSet)
	hw := make(OutcomeSet)
	a := res(nil, map[mem.Addr]mem.Value{0: 1})
	b := res(nil, map[mem.Addr]mem.Value{0: 2})
	sc.Add(a)
	sc.Add(b)
	hw.Add(a)
	rep := CheckContract("p", "m", true, sc, hw)
	if !rep.Honored() || len(rep.Extra) != 0 {
		t.Fatalf("subset should honor the contract: %s", rep)
	}
	if !strings.Contains(rep.String(), "contract honored") {
		t.Errorf("report text: %s", rep)
	}
}

func TestCheckContractViolated(t *testing.T) {
	sc := make(OutcomeSet)
	hw := make(OutcomeSet)
	sc.Add(res(nil, map[mem.Addr]mem.Value{0: 1}))
	hw.Add(res(nil, map[mem.Addr]mem.Value{0: 1}))
	hw.Add(res(nil, map[mem.Addr]mem.Value{0: 99}))
	rep := CheckContract("p", "m", true, sc, hw)
	if rep.Honored() {
		t.Fatal("extra outcome must violate the contract")
	}
	if len(rep.Extra) != 1 {
		t.Fatalf("extra = %d, want 1", len(rep.Extra))
	}
	if !strings.Contains(rep.String(), "CONTRACT VIOLATED") {
		t.Errorf("report text: %s", rep)
	}
}

func TestCheckContractVacuousForRacyPrograms(t *testing.T) {
	sc := make(OutcomeSet)
	hw := make(OutcomeSet)
	sc.Add(res(nil, map[mem.Addr]mem.Value{0: 1}))
	hw.Add(res(nil, map[mem.Addr]mem.Value{0: 99}))
	rep := CheckContract("p", "m", false, sc, hw)
	if !rep.Honored() {
		t.Fatal("Definition 2 promises nothing for programs violating the model")
	}
	if !strings.Contains(rep.String(), "vacuous") {
		t.Errorf("report text: %s", rep)
	}
}

func TestResultKeyDistinguishes(t *testing.T) {
	// Same final memory, different read values: distinct results.
	r1 := res(map[mem.ReadKey]mem.Value{{Proc: 1, Index: 3}: 5}, map[mem.Addr]mem.Value{2: 7})
	r2 := res(map[mem.ReadKey]mem.Value{{Proc: 1, Index: 3}: 6}, map[mem.Addr]mem.Value{2: 7})
	if r1.Key() == r2.Key() {
		t.Fatal("distinct results share a key")
	}
	if !r1.Equal(r1) || r1.Equal(r2) {
		t.Fatal("Equal wrong")
	}
	// Key is insensitive to map iteration order: rebuild and compare.
	r3 := res(map[mem.ReadKey]mem.Value{{Proc: 1, Index: 3}: 5}, map[mem.Addr]mem.Value{2: 7})
	if r1.Key() != r3.Key() {
		t.Fatal("equal results have different keys")
	}
}
