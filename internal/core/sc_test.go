package core

import (
	"math/rand"
	"testing"

	"weakorder/internal/mem"
)

// exec builds an execution from accesses appended in order.
func exec(accs ...mem.Access) *mem.Execution {
	n := 1
	for _, a := range accs {
		if int(a.Proc)+1 > n {
			n = int(a.Proc) + 1
		}
	}
	e := mem.NewExecution(n)
	for _, a := range accs {
		e.Append(a)
	}
	return e
}

func TestSCCheckSimpleSerializable(t *testing.T) {
	e := exec(
		mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1},
		mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1},
	)
	w, err := SCCheck(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !w.SC {
		t.Fatal("trivially serializable execution rejected")
	}
	if err := VerifyWitness(e, nil, w.Order); err != nil {
		t.Fatalf("witness does not verify: %v", err)
	}
}

func TestSCCheckDekkerViolation(t *testing.T) {
	// Both processors read 0 after the other's write: the Figure 1 outcome.
	e := exec(
		mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1}, // W(x)=1
		mem.Access{Proc: 0, Op: mem.OpRead, Addr: 1, Value: 0},  // R(y)=0
		mem.Access{Proc: 1, Op: mem.OpWrite, Addr: 1, Value: 1}, // W(y)=1
		mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 0},  // R(x)=0
	)
	w, err := SCCheck(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.SC {
		t.Fatalf("Dekker violation accepted as SC: %s", w)
	}
	if w.States == 0 {
		t.Error("exhaustive rejection should report explored states")
	}
}

func TestSCCheckDekkerAllowedOutcome(t *testing.T) {
	// One processor reading 1 is fine.
	e := exec(
		mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1},
		mem.Access{Proc: 0, Op: mem.OpRead, Addr: 1, Value: 0},
		mem.Access{Proc: 1, Op: mem.OpWrite, Addr: 1, Value: 1},
		mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1},
	)
	w, err := SCCheck(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !w.SC {
		t.Fatal("allowed Dekker outcome rejected")
	}
}

func TestSCCheckUsesInit(t *testing.T) {
	e := exec(mem.Access{Proc: 0, Op: mem.OpRead, Addr: 7, Value: 5})
	if w, _ := SCCheck(e, nil); w.SC {
		t.Fatal("read of 5 with zero init accepted")
	}
	w, err := SCCheck(e, map[mem.Addr]mem.Value{7: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !w.SC {
		t.Fatal("read of initial value rejected")
	}
}

func TestSCCheckRMW(t *testing.T) {
	// Two TAS on one location: both succeeding (reading 0) is not SC.
	bad := exec(
		mem.Access{Proc: 0, Op: mem.OpSyncRMW, Addr: 0, Value: 0, WValue: 1},
		mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 0, Value: 0, WValue: 1},
	)
	if w, _ := SCCheck(bad, nil); w.SC {
		t.Fatal("double-successful TAS accepted")
	}
	good := exec(
		mem.Access{Proc: 0, Op: mem.OpSyncRMW, Addr: 0, Value: 0, WValue: 1},
		mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 0, Value: 1, WValue: 1},
	)
	w, err := SCCheck(good, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !w.SC {
		t.Fatal("serialized TAS pair rejected")
	}
}

func TestSCCheckCoherenceViolation(t *testing.T) {
	// P1 sees x go 1 then 0 while only 0->1 writes exist.
	e := exec(
		mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1},
		mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1},
		mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 0},
	)
	if w, _ := SCCheck(e, nil); w.SC {
		t.Fatal("backward read accepted")
	}
}

func TestVerifyWitnessRejections(t *testing.T) {
	e := exec(
		mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1},
		mem.Access{Proc: 0, Op: mem.OpRead, Addr: 0, Value: 1},
	)
	// Wrong length.
	if err := VerifyWitness(e, nil, []mem.EventID{0}); err == nil {
		t.Error("short witness accepted")
	}
	// Not a permutation.
	if err := VerifyWitness(e, nil, []mem.EventID{0, 0}); err == nil {
		t.Error("duplicate witness accepted")
	}
	// Violates program order.
	if err := VerifyWitness(e, nil, []mem.EventID{1, 0}); err == nil {
		t.Error("order-violating witness accepted")
	}
	// Correct.
	if err := VerifyWitness(e, nil, []mem.EventID{0, 1}); err != nil {
		t.Errorf("valid witness rejected: %v", err)
	}
}

// TestSCCheckRandomSCExecutionsAccepted generates executions by actually
// simulating a random interleaving atop an SC memory — such executions are SC
// by construction and must always be accepted, and the returned witness must
// verify.
func TestSCCheckRandomSCExecutionsAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		nproc := 2 + rng.Intn(3)
		naddr := 1 + rng.Intn(3)
		nops := 3 + rng.Intn(8)
		memory := map[mem.Addr]mem.Value{}
		e := mem.NewExecution(nproc)
		for k := 0; k < nops; k++ {
			p := mem.ProcID(rng.Intn(nproc))
			a := mem.Addr(rng.Intn(naddr))
			switch rng.Intn(3) {
			case 0:
				e.Append(mem.Access{Proc: p, Op: mem.OpRead, Addr: a, Value: memory[a]})
			case 1:
				v := mem.Value(rng.Intn(5))
				memory[a] = v
				e.Append(mem.Access{Proc: p, Op: mem.OpWrite, Addr: a, Value: v})
			default:
				old := memory[a]
				memory[a] = old + 1
				e.Append(mem.Access{Proc: p, Op: mem.OpSyncRMW, Addr: a, Value: old, WValue: old + 1})
			}
		}
		w, err := SCCheck(e, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !w.SC {
			t.Fatalf("iter %d: SC-by-construction execution rejected:\n%s", iter, e)
		}
		if err := VerifyWitness(e, nil, w.Order); err != nil {
			t.Fatalf("iter %d: witness fails: %v", iter, err)
		}
	}
}

// TestSCCheckPerturbedReadsRejected flips one read's value to something no
// write produced; the execution can no longer be SC.
func TestSCCheckPerturbedReadsRejected(t *testing.T) {
	e := exec(
		mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1},
		mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 99},
	)
	if w, _ := SCCheck(e, nil); w.SC {
		t.Fatal("read of never-written value accepted")
	}
}
