package core

import (
	"testing"

	"weakorder/internal/mem"
)

// handoff builds the canonical release/acquire execution:
//
//	P0: W(x)=1, Sw(s)=1        P1: Srmw(s)=1/w2, R(x)=1
//
// completing in that order.
func handoff() *mem.Execution {
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 1, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 1, Value: 1, WValue: 2})
	e.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})
	return e
}

func TestBuildOrdersHandoff(t *testing.T) {
	ord, err := BuildOrders(handoff(), DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	// Program order within each processor.
	if !ord.PO.Has(0, 1) || !ord.PO.Has(2, 3) {
		t.Error("program order edges missing")
	}
	if ord.PO.Has(1, 2) {
		t.Error("program order crossed processors")
	}
	// Synchronization order between the two sync ops on s.
	if !ord.SO.Has(1, 2) {
		t.Error("synchronization order edge missing")
	}
	// Happens-before bridges W(x) to R(x).
	if !ord.HappensBefore(0, 3) {
		t.Error("W(x) should happen-before R(x) via the sync chain")
	}
	if ord.HappensBefore(3, 0) {
		t.Error("happens-before should not be reversed")
	}
	if !ord.Ordered(0, 3) || !ord.Ordered(3, 0) {
		t.Error("Ordered should hold either way around")
	}
}

func TestBuildOrdersRequiresCompletionOrder(t *testing.T) {
	e := handoff()
	e.Completed = nil
	if _, err := BuildOrders(e, DRF0{}); err == nil {
		t.Fatal("expected error without completion order")
	}
}

func TestDRF1EdgeRule(t *testing.T) {
	// A read-only sync (Test) must not act as a release under DRF1.
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})    // W(x)
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncRead, Addr: 1, Value: 0}) // Test(s): read-only release attempt
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 1, WValue: 1}) // TAS(s)
	e.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})     // R(x)
	ord0, err := BuildOrders(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if !ord0.HappensBefore(0, 3) {
		t.Error("DRF0: any sync pair on s should order W(x) before R(x)")
	}
	ord1, err := BuildOrders(e, DRF1{})
	if err != nil {
		t.Fatal(err)
	}
	if ord1.HappensBefore(0, 3) {
		t.Error("DRF1: a read-only sync must not release")
	}

	// The reverse: a sync write can release but a sync write cannot acquire.
	e2 := mem.NewExecution(2)
	e2.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e2.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 1, Value: 1}) // Unset: release ok
	e2.Append(mem.Access{Proc: 1, Op: mem.OpSyncWrite, Addr: 1, Value: 2}) // Unset: cannot acquire
	e2.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})
	ord2, err := BuildOrders(e2, DRF1{})
	if err != nil {
		t.Fatal(err)
	}
	if ord2.HappensBefore(0, 3) {
		t.Error("DRF1: a write-only sync must not acquire")
	}
}

func TestUnconstrainedModel(t *testing.T) {
	ord, err := BuildOrders(handoff(), Unconstrained{})
	if err != nil {
		t.Fatal(err)
	}
	if ord.SO.Count() != 0 {
		t.Error("unconstrained model must create no sync edges")
	}
	if ord.HappensBefore(0, 3) {
		t.Error("without sync edges W(x) must not happen-before R(x)")
	}
}

func TestSyncOrderFollowsCompletionNotProgramText(t *testing.T) {
	// P1's sync completes first even though P0 appears first in the event
	// list construction below; so must point P1 -> P0.
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncWrite, Addr: 5, Value: 1})
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 5, Value: 2})
	ord, err := BuildOrders(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if !ord.SO.Has(0, 1) {
		t.Error("so should follow completion order (event 0 completed first)")
	}
	if ord.SO.Has(1, 0) {
		t.Error("so should be antisymmetric here")
	}
}

func TestSyncOrderDifferentLocationsNoEdge(t *testing.T) {
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 1, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncWrite, Addr: 2, Value: 1})
	ord, err := BuildOrders(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if ord.SO.Count() != 0 {
		t.Error("sync ops on different locations must not synchronize")
	}
}

func TestHBIsTransitiveAndIrreflexive(t *testing.T) {
	// Chain across three processors via two sync locations, as in the
	// paper's op(P1,x) -> S(P1,s) -> S(P2,s) -> S(P2,t) -> S(P3,t) -> op(P3,x).
	e := mem.NewExecution(3)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})      // 0: op(P1,x)
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 10, Value: 1}) // 1: S(P1,s)
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 10, Value: 1})   // 2: S(P2,s)
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncWrite, Addr: 11, Value: 1}) // 3: S(P2,t)
	e.Append(mem.Access{Proc: 2, Op: mem.OpSyncRMW, Addr: 11, Value: 1})   // 4: S(P3,t)
	e.Append(mem.Access{Proc: 2, Op: mem.OpRead, Addr: 0, Value: 1})       // 5: op(P3,x)
	ord, err := BuildOrders(e, DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if !ord.HappensBefore(0, 5) {
		t.Error("hb should span the two-hop sync chain (the paper's example)")
	}
	if !ord.HB.Irreflexive() {
		t.Error("hb must be irreflexive")
	}
	// Transitivity: every composed pair is present.
	for _, p := range ord.HB.Pairs() {
		ord.HB.Successors(p[1], func(c int) {
			if !ord.HB.Has(p[0], c) {
				t.Errorf("hb not transitive: (%d,%d) and (%d,%d) but no (%d,%d)", p[0], p[1], p[1], c, p[0], c)
			}
		})
	}
}
