// Package model implements operational (small-step, nondeterministic) models
// of the memory systems discussed in the paper, together with an exhaustive
// state-space explorer. The machines are:
//
//   - SC: the idealized architecture — every access executes atomically in
//     program order (the reference for Definition 2 and the enumerator of
//     idealized executions for Definition 3).
//   - WriteBuffer: a bus-based system where reads may pass buffered writes
//     (Figure 1, configurations 1 and 3).
//   - Network: a general-interconnection-network system without caches where
//     accesses issue in program order but reach memory modules out of order
//     (Figure 1, configuration 2).
//   - NonAtomic: a cache-based system with a general network where a write
//     updates the writer's copy immediately and propagates to other
//     processors' copies asynchronously (Figure 1, configuration 4).
//   - WODef1: weak ordering per Dubois/Scheurich/Briggs' Definition 1 — a
//     processor stalls its own synchronization operation until all its
//     previous accesses are globally performed.
//   - WODef2: the paper's Section-5 implementation — synchronization commits
//     immediately and *reserves* its location; a subsequent synchronizer on
//     the same location (from another processor) stalls until the reserver's
//     outstanding accesses are globally performed.
//   - WODef2DRF1: WODef2 with the Section-6 refinement — read-only
//     synchronization operations are not serialized and set no reservation.
//
// Every machine is a value that can be Cloned, so the explorer can branch on
// each enabled transition and deduplicate states by canonical key.
package model

import (
	"encoding/binary"
	"fmt"
	"sort"

	"weakorder/internal/explore"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// TransKind classifies a nondeterministic transition.
type TransKind uint8

const (
	// TExec executes the next memory operation of a thread (possibly only
	// partially, e.g. enqueueing a write into a buffer).
	TExec TransKind = iota
	// TDrain retires the oldest entry of a processor's write buffer.
	TDrain
	// TDeliver delivers one in-flight message (network request or a write
	// propagation to one destination processor's copy).
	TDeliver
)

// String implements fmt.Stringer.
func (k TransKind) String() string {
	switch k {
	case TExec:
		return "exec"
	case TDrain:
		return "drain"
	case TDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("trans(%d)", uint8(k))
	}
}

// Transition identifies one enabled nondeterministic step of a machine.
// Proc is the acting processor; Aux disambiguates deliveries (its meaning is
// machine-specific, e.g. an index into a pending-message list).
type Transition struct {
	Kind TransKind
	Proc int
	Aux  int
}

// String implements fmt.Stringer.
func (t Transition) String() string { return fmt.Sprintf("%s(P%d,%d)", t.Kind, t.Proc, t.Aux) }

// KeyMode selects how much history a machine folds into its canonical state
// key, trading exploration speed for what the deduplicated outcomes preserve.
type KeyMode uint8

const (
	// KeyState keys on machine state only (threads, memory, buffers). Sound
	// for enumerating final states (litmus conditions), since the future of
	// a machine depends only on its state.
	KeyState KeyMode = iota
	// KeyResult additionally keys on the values returned by all past reads,
	// so deduplication preserves the paper's Result (all read values plus
	// final memory).
	KeyResult
	// KeyExecution additionally keys on the completion order of
	// synchronization operations, so deduplication preserves the
	// happens-before relation and hence the set of data races. Only
	// meaningful on the SC machine, whose traces are idealized executions.
	KeyExecution
)

// Machine is an operational memory-system model under exploration.
type Machine interface {
	// Name identifies the model in reports and tables.
	Name() string
	// Clone returns an independent deep copy.
	Clone() Machine
	// Transitions lists the currently enabled transitions, deterministically
	// ordered.
	Transitions() []Transition
	// Apply performs one enabled transition.
	Apply(t Transition) error
	// Done reports whether all threads halted and all internal buffers and
	// in-flight messages drained.
	Done() bool
	// AppendKey appends a canonical binary encoding of the state for
	// deduplication to key and returns the extended slice. The encoding is
	// prefix-free for a fixed program, so two distinct states never encode
	// to the same bytes; the explorer hashes it rather than storing it.
	AppendKey(mode KeyMode, key []byte) []byte
	// Final returns the final state (registers and memory); meaningful once
	// Done.
	Final() *program.FinalState
	// Result returns the paper's Result: all read values plus final memory.
	Result() mem.Result
	// Trace returns the recorded execution so far: accesses in completion
	// (commit) order. For the SC machine this is an idealized execution.
	Trace() *mem.Execution
	// StepInfo classifies an enabled transition for partial-order reduction:
	// which agent it belongs to and which single memory access it performs.
	// Agents partition a machine's transitions so that a disabled transition
	// of agent a can only be enabled by a step of a itself or of an agent
	// whose footprint conflicts with a's (the kernel's frozen-gate contract).
	StepInfo(t Transition) explore.Info
	// Footprints appends one entry per agent: an over-approximation of every
	// access the agent may still perform (static program suffix plus dynamic
	// machine state such as buffered writes or in-flight messages), and the
	// wake footprint through which other agents can unfreeze its currently
	// disabled steps.
	Footprints(buf []explore.AgentFootprints) []explore.AgentFootprints
}

// base carries the thread interpreters and recording shared by all machines.
type base struct {
	name    string
	prog    *program.Program
	threads []program.Thread
	addrs   []mem.Addr
	trace   *mem.Execution
	// readLog holds, per processor, the sequence of values returned by its
	// reads (dense in program-order op index of the reading ops).
	readLog [][]readRec
	// syncLog is the global commit order of synchronization operations.
	syncLog []syncRec
	// fp holds the immutable static footprints of the program, shared by all
	// clones (cloneBase copies the pointer).
	fp *progFootprints
}

type readRec struct {
	opIndex int
	value   mem.Value
}

type syncRec struct {
	proc    int
	opIndex int
	addr    mem.Addr
}

func newBase(name string, p *program.Program) base {
	b := base{
		name:    name,
		prog:    p,
		addrs:   p.Addrs(),
		trace:   mem.NewExecution(p.NumThreads()),
		readLog: make([][]readRec, p.NumThreads()),
		fp:      computeFootprints(p),
	}
	for _, code := range p.Threads {
		b.threads = append(b.threads, program.NewThread(code))
	}
	return b
}

func (b *base) cloneBase() base {
	c := *b
	c.threads = append([]program.Thread(nil), b.threads...)
	c.readLog = make([][]readRec, len(b.readLog))
	// One flat backing array for all per-proc read logs. Sub-slices get
	// len == cap, so a log growing in the clone reallocates its own copy
	// instead of stomping a sibling.
	total := 0
	for _, l := range b.readLog {
		total += len(l)
	}
	if total > 0 {
		flat := make([]readRec, total)
		off := 0
		for i, l := range b.readLog {
			n := copy(flat[off:], l)
			c.readLog[i] = flat[off : off+n : off+n]
			off += n
		}
	}
	c.syncLog = append([]syncRec(nil), b.syncLog...)
	tr := *b.trace
	tr.Events = append([]mem.Event(nil), b.trace.Events...)
	tr.Completed = append([]mem.EventID(nil), b.trace.Completed...)
	c.trace = &tr
	return c
}

// pending returns the published request of thread p, running local code.
func (b *base) pending(p int) (program.Request, bool, error) {
	return b.threads[p].Pending()
}

// record appends a completed access to the trace and logs. opIdx is the
// access's program-order index on its processor; machines that complete
// operations out of program order (e.g. a write draining from a buffer after
// later reads resolved) must capture it at issue time.
func (b *base) record(p, opIdx int, req program.Request, readVal, writeVal mem.Value) {
	a := mem.Access{Proc: mem.ProcID(p), Op: req.Op, Addr: req.Addr}
	switch {
	case req.Op == mem.OpSyncRMW:
		a.Value = readVal
		a.WValue = writeVal
	case req.Op.Writes():
		a.Value = writeVal
	default:
		a.Value = readVal
	}
	b.trace.AppendAt(a, opIdx)
	if req.Op.Reads() {
		b.readLog[p] = append(b.readLog[p], readRec{opIndex: opIdx, value: readVal})
	}
	if req.Op.IsSync() {
		b.syncLog = append(b.syncLog, syncRec{proc: p, opIndex: opIdx, addr: req.Addr})
	}
}

// resolve completes thread p's pending op, recording it at its current
// program-order index.
func (b *base) resolve(p int, req program.Request, readVal, writeVal mem.Value) {
	b.record(p, b.threads[p].OpIndex, req, readVal, writeVal)
	b.threads[p].Resolve(readVal)
}

func (b *base) threadsDone() bool {
	for i := range b.threads {
		// Pending also advances through local code; a thread stuck before
		// halt with no memory op counts as not done.
		if _, ok, err := b.threads[i].Pending(); err == nil && !ok && b.threads[i].Done() {
			continue
		}
		return false
	}
	return true
}

// Key returns the canonical state key of m as a string. Convenience for
// tests and debugging; hot paths call AppendKey with a reused buffer.
func Key(m Machine, mode KeyMode) string { return string(m.AppendKey(mode, nil)) }

// appendKeyBase encodes the thread states plus, per mode, read and sync
// history. Thread snapshots are self-delimiting varint sequences and the
// variable-length logs are count-prefixed, so the whole encoding is
// prefix-free for a fixed program.
func (b *base) appendKeyBase(mode KeyMode, key []byte) []byte {
	for i := range b.threads {
		key = b.threads[i].AppendSnapshot(key)
	}
	if mode >= KeyResult {
		key = append(key, 'R')
		for _, log := range b.readLog {
			key = binary.AppendUvarint(key, uint64(len(log)))
			for _, r := range log {
				key = binary.AppendUvarint(key, uint64(r.opIndex))
				key = binary.AppendVarint(key, int64(r.value))
			}
		}
	}
	if mode >= KeyExecution {
		key = append(key, 'S')
		key = binary.AppendUvarint(key, uint64(len(b.syncLog)))
		for _, s := range b.syncLog {
			key = binary.AppendUvarint(key, uint64(s.proc))
			key = binary.AppendUvarint(key, uint64(s.opIndex))
			key = binary.AppendUvarint(key, uint64(s.addr))
		}
	}
	return key
}

// appendMem canonically encodes a memory map over the known address universe.
func appendMem(key []byte, addrs []mem.Addr, m map[mem.Addr]mem.Value) []byte {
	for _, a := range addrs {
		key = binary.AppendVarint(key, int64(m[a]))
	}
	// Addresses outside the static universe (register-indexed accesses) are
	// appended sorted, count-prefixed.
	var extra []mem.Addr
	for a := range m {
		if !containsAddr(addrs, a) {
			extra = append(extra, a)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	key = binary.AppendUvarint(key, uint64(len(extra)))
	for _, a := range extra {
		key = binary.AppendUvarint(key, uint64(a))
		key = binary.AppendVarint(key, int64(m[a]))
	}
	return key
}

func containsAddr(addrs []mem.Addr, a mem.Addr) bool {
	i := sort.Search(len(addrs), func(i int) bool { return addrs[i] >= a })
	return i < len(addrs) && addrs[i] == a
}

// finalState assembles registers plus the supplied memory view.
func (b *base) finalState(memory map[mem.Addr]mem.Value) *program.FinalState {
	fs := &program.FinalState{Mem: make(map[mem.Addr]mem.Value, len(memory))}
	for i := range b.threads {
		fs.Regs = append(fs.Regs, b.threads[i].Regs)
	}
	for a, v := range memory {
		fs.Mem[a] = v
	}
	return fs
}

// result assembles the paper's Result from the read log and a memory view.
func (b *base) result(memory map[mem.Addr]mem.Value) mem.Result {
	r := mem.Result{Reads: make(map[mem.ReadKey]mem.Value), Final: make(map[mem.Addr]mem.Value, len(memory))}
	for p, log := range b.readLog {
		for _, rr := range log {
			r.Reads[mem.ReadKey{Proc: mem.ProcID(p), Index: rr.opIndex}] = rr.value
		}
	}
	for a, v := range memory {
		r.Final[a] = v
	}
	return r
}

func (b *base) Name() string          { return b.name }
func (b *base) Trace() *mem.Execution { return b.trace }

// copyMem deep-copies a memory map.
func copyMem(m map[mem.Addr]mem.Value) map[mem.Addr]mem.Value {
	c := make(map[mem.Addr]mem.Value, len(m))
	for a, v := range m {
		c[a] = v
	}
	return c
}

// initMem builds the initial memory of a program over its address universe,
// so every statically known location is present (defaulting to zero).
func initMem(p *program.Program) map[mem.Addr]mem.Value {
	m := make(map[mem.Addr]mem.Value)
	for _, a := range p.Addrs() {
		m[a] = 0
	}
	for a, v := range p.Init {
		m[a] = v
	}
	return m
}
