package model

import (
	"testing"

	"weakorder/internal/program"
)

// mpData is unsynchronized message passing: the r0=1, r1=0 outcome witnesses
// a store-store (writer) or load-load (reader) reordering and so separates
// PSO/RMO from TSO.
func mpData() *program.Program {
	return program.MustParse(`
name: mp-data
init: d=0 f=0
thread:
    st d, 1
    st f, 1
thread:
    ld r0, f
    ld r1, d
`).Program
}

// mpRelease fences the writer only: st d; sync.st f. The stale outcome now
// needs the *reader* to reorder its loads, separating RMO from PSO.
func mpRelease() *program.Program {
	return program.MustParse(`
name: mp-release
init: d=0 f=0
thread:
    st d, 1
    sync.st f, 1
thread:
    ld r0, f
    ld r1, d
`).Program
}

func hasOutcome(t *testing.T, m Machine, pred func(*program.FinalState) bool) bool {
	t.Helper()
	x := &Explorer{}
	found := false
	if _, err := x.FinalStates(m, func(fs *program.FinalState) bool {
		if pred(fs) {
			found = true
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return found
}

func staleMP(fs *program.FinalState) bool {
	return fs.Regs[1][0] == 1 && fs.Regs[1][1] == 0
}

func TestRelaxedLadderDiscrimination(t *testing.T) {
	// TSO: SB both-zero allowed (W->R relaxed), MP reorder forbidden.
	if !hasOutcome(t, NewTSO(sb()), bothZero) {
		t.Error("tso should allow the store-buffering both-zero outcome")
	}
	if hasOutcome(t, NewTSO(mpData()), staleMP) {
		t.Error("tso must not reorder same-thread stores (mp-data stale read)")
	}
	// PSO: MP reorder allowed via store-store relaxation, but a fenced writer
	// restores order because loads stay in order.
	if !hasOutcome(t, NewPSO(mpData()), staleMP) {
		t.Error("pso should allow the mp-data stale read (store-store reorder)")
	}
	if hasOutcome(t, NewPSO(mpRelease()), staleMP) {
		t.Error("pso must not show a stale read once the writer is fenced")
	}
	// RMO: even the fenced writer can be observed stale, because the reader's
	// second load may use an old view.
	if !hasOutcome(t, NewRMO(mpRelease()), staleMP) {
		t.Error("rmo should allow the stale read under a writer-only fence")
	}
}

// TestRMOCoherence: per-location ordering survives the stale-view mechanism —
// a reader that saw the new value never regresses to the old one (CoRR).
func TestRMOCoherence(t *testing.T) {
	p := program.MustParse(`
name: corr
init: x=0
thread:
    st x, 1
thread:
    ld r0, x
    ld r1, x
`).Program
	if hasOutcome(t, NewRMO(p), func(fs *program.FinalState) bool {
		return fs.Regs[1][0] == 1 && fs.Regs[1][1] == 0
	}) {
		t.Error("rmo violated CoRR: read of x went backward in coherence order")
	}
}

// TestRMOSyncIsFullFence: syncs on both sides restore SC for the MP shape.
func TestRMOSyncIsFullFence(t *testing.T) {
	p := program.MustParse(`
name: mp-sync
init: d=0 f=0
thread:
    st d, 1
    sync.st f, 1
thread:
    sync.ld r0, f
    ld r1, d
`).Program
	if hasOutcome(t, NewRMO(p), staleMP) {
		t.Error("rmo must not show a stale read across sync/sync message passing")
	}
}

// TestRelaxedReadForwarding: a processor always sees its own buffered store.
func TestRelaxedReadForwarding(t *testing.T) {
	p := program.MustParse(`
name: fwd
init: x=0
thread:
    st x, 1
    st x, 2
    ld r0, x
`).Program
	for _, mk := range []func(*program.Program) Machine{
		func(q *program.Program) Machine { return NewTSO(q) },
		func(q *program.Program) Machine { return NewPSO(q) },
		func(q *program.Program) Machine { return NewRMO(q) },
	} {
		m := mk(p)
		name := m.Name()
		if hasOutcome(t, m, func(fs *program.FinalState) bool { return fs.Regs[0][0] != 2 }) {
			t.Errorf("%s: read did not forward the newest buffered store", name)
		}
	}
}

// TestRelaxedCloneIndependence exercises Clone on the map-heavy RMO state.
func TestRelaxedCloneIndependence(t *testing.T) {
	for _, mk := range []func(*program.Program) Machine{
		func(q *program.Program) Machine { return NewTSO(q) },
		func(q *program.Program) Machine { return NewPSO(q) },
		func(q *program.Program) Machine { return NewRMO(q) },
	} {
		m := mk(sb())
		ts := m.Transitions()
		if len(ts) == 0 {
			t.Fatalf("%s: no transitions", m.Name())
		}
		c := m.Clone()
		if err := c.Apply(ts[0]); err != nil {
			t.Fatal(err)
		}
		if Key(m, KeyState) == Key(c, KeyState) {
			t.Errorf("%s: applying a transition to the clone should change its key", m.Name())
		}
		if Key(m, KeyState) != Key(m.Clone(), KeyState) {
			t.Errorf("%s: fresh clone should key identically", m.Name())
		}
	}
}
