package model

import (
	"fmt"

	"weakorder/internal/explore"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// NonAtomic models Figure 1's configuration 4: a cache-based system with a
// general interconnection network in which every processor issues accesses in
// program order and hits its own cache immediately, but a write reaches other
// processors' caches asynchronously — accesses do not *complete* in program
// order. Crucially, this machine applies the same relaxation to
// synchronization operations, so it implements no weak ordering at all: it is
// the deliberately broken hardware against which the Definition-2 contract
// checker must report violations even for DRF0 programs.
type NonAtomic struct {
	base
	c *copies
}

// NewNonAtomic builds the machine.
func NewNonAtomic(p *program.Program) *NonAtomic {
	return &NonAtomic{
		base: newBase("network+cache-nonatomic", p),
		c:    newCopies(p.NumThreads(), initMem(p)),
	}
}

// Clone implements Machine.
func (m *NonAtomic) Clone() Machine {
	return &NonAtomic{base: m.cloneBase(), c: m.c.clone()}
}

// Transitions implements Machine.
func (m *NonAtomic) Transitions() []Transition {
	var ts []Transition
	for i := range m.c.pending {
		if m.c.deliverable(i) {
			ts = append(ts, Transition{Kind: TDeliver, Proc: m.c.pending[i].dst, Aux: int(m.c.pending[i].seq)})
		}
	}
	for p := range m.threads {
		req, ok, err := m.pending(p)
		if err != nil || !ok {
			continue
		}
		if req.Op.Writes() && !m.c.canCommit(p) {
			continue // finite write buffering: stall until a delivery frees room
		}
		ts = append(ts, Transition{Kind: TExec, Proc: p})
	}
	return ts
}

// Apply implements Machine.
func (m *NonAtomic) Apply(t Transition) error {
	switch t.Kind {
	case TDeliver:
		return m.c.deliver(int64(t.Aux), t.Proc)
	case TExec:
		req, ok, err := m.pending(t.Proc)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("nonatomic: P%d has no pending operation", t.Proc)
		}
		old := m.c.read(t.Proc, req.Addr)
		var wv mem.Value
		if req.Op.Writes() {
			wv = req.NewValue(old)
			m.c.commitWrite(t.Proc, req.Addr, wv)
		}
		m.resolve(t.Proc, req, old, wv)
		return nil
	default:
		return fmt.Errorf("nonatomic: unexpected transition %s", t)
	}
}

// Done implements Machine.
func (m *NonAtomic) Done() bool { return m.c.allDrained() && m.threadsDone() }

// AppendKey implements Machine.
func (m *NonAtomic) AppendKey(mode KeyMode, key []byte) []byte {
	key = m.appendKeyBase(mode, key)
	return m.c.appendKey(key, m.addrs)
}

// StepInfo implements Machine: deliveries act for the source processor (see
// copies.propInfo), executions for the issuing thread.
func (m *NonAtomic) StepInfo(t Transition) explore.Info {
	if t.Kind == TDeliver {
		return m.c.propInfo(int64(t.Aux), t.Proc, m.fpAddrBit)
	}
	return m.execInfo(t.Proc)
}

// Footprints implements Machine: each processor's static suffix plus its
// undelivered write propagations. The only cross-agent enabling gate is a
// delivery blocked behind another source's older same-(dst,addr)
// propagation, declared as a wake footprint on the agent's own propagation
// addresses.
func (m *NonAtomic) Footprints(buf []explore.AgentFootprints) []explore.AgentFootprints {
	base := len(buf)
	buf = m.appendThreadFootprints(buf)
	for p, pm := range m.c.propMasks(m.fpAddrBit) {
		af := &buf[base+p]
		af.Future.Writes |= pm.bits
		af.Future.Wild = af.Future.Wild || pm.wild
		af.Wake.Reads |= pm.bits
		af.Wake.Wild = af.Wake.Wild || pm.wild
	}
	return buf
}

// Final implements Machine: once drained all copies agree; processor 0's copy
// is the canonical final memory.
func (m *NonAtomic) Final() *program.FinalState { return m.finalState(m.c.data[0]) }

// Result implements Machine.
func (m *NonAtomic) Result() mem.Result { return m.result(m.c.data[0]) }
