package model

import (
	"fmt"

	"weakorder/internal/explore"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// SC is the idealized architecture: all memory accesses execute atomically
// and in program order. Its traces are idealized executions in the paper's
// sense, so SC doubles as the ExecutionEnumerator behind Definition 3 and as
// the reference outcome set behind Definition 2.
type SC struct {
	base
	memory map[mem.Addr]mem.Value
}

// NewSC builds an SC machine for the program.
func NewSC(p *program.Program) *SC {
	return &SC{base: newBase("SC", p), memory: initMem(p)}
}

// Clone implements Machine.
func (m *SC) Clone() Machine {
	return &SC{base: m.cloneBase(), memory: copyMem(m.memory)}
}

// Transitions implements Machine: any thread with a pending memory operation
// may execute it atomically.
func (m *SC) Transitions() []Transition {
	ts := make([]Transition, 0, len(m.threads))
	for p := range m.threads {
		if _, ok, err := m.pending(p); err == nil && ok {
			ts = append(ts, Transition{Kind: TExec, Proc: p})
		}
	}
	return ts
}

// Apply implements Machine.
func (m *SC) Apply(t Transition) error {
	if t.Kind != TExec {
		return fmt.Errorf("SC: unexpected transition %s", t)
	}
	req, ok, err := m.pending(t.Proc)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("SC: P%d has no pending operation", t.Proc)
	}
	old := m.memory[req.Addr]
	var wv mem.Value
	if req.Op.Writes() {
		wv = req.NewValue(old)
		m.memory[req.Addr] = wv
	}
	m.resolve(t.Proc, req, old, wv)
	return nil
}

// Done implements Machine.
func (m *SC) Done() bool { return m.threadsDone() }

// AppendKey implements Machine.
func (m *SC) AppendKey(mode KeyMode, key []byte) []byte {
	key = m.appendKeyBase(mode, key)
	key = append(key, 'M')
	return appendMem(key, m.addrs, m.memory)
}

// StepInfo implements Machine: every transition is one atomic access by the
// acting thread.
func (m *SC) StepInfo(t Transition) explore.Info { return m.execInfo(t.Proc) }

// Footprints implements Machine: with no buffers or messages, an agent's
// future accesses are exactly its static program suffix, every step is
// always enabled, and the wake footprints stay empty.
func (m *SC) Footprints(buf []explore.AgentFootprints) []explore.AgentFootprints {
	return m.appendThreadFootprints(buf)
}

// Final implements Machine.
func (m *SC) Final() *program.FinalState { return m.finalState(m.memory) }

// Result implements Machine.
func (m *SC) Result() mem.Result { return m.result(m.memory) }
