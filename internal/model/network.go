package model

import (
	"encoding/binary"
	"fmt"
	"sort"

	"weakorder/internal/explore"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// netMsg is one access in flight between a processor and a memory module.
type netMsg struct {
	seq     int // issue order, for per-(proc,addr) FIFO and determinism
	proc    int
	isRead  bool
	addr    mem.Addr
	value   mem.Value // data for writes
	opIndex int
}

// Network models a system with a general interconnection network and no
// caches (Figure 1, configuration 2): every processor issues its accesses in
// program order, but requests to *different* memory modules may arrive in any
// order. Writes are fire-and-forget; a read blocks its issuer until the
// memory module answers (the processor needs the value), so the interesting
// relaxation is a read overtaking an older write to a different location.
// Same-processor accesses to the same location stay ordered (one module, one
// queue), which preserves uniprocessor dependences.
//
// Synchronization operations are strongly ordered: a processor may issue one
// only when it has nothing in flight, and it executes atomically at memory.
type Network struct {
	base
	memory   map[mem.Addr]mem.Value
	inflight []netMsg
	nextSeq  int
	// waiting marks processors blocked on an in-flight read.
	waiting []bool
}

// NewNetwork builds the machine.
func NewNetwork(p *program.Program) *Network {
	return &Network{
		base:    newBase("network-nocache", p),
		memory:  initMem(p),
		waiting: make([]bool, p.NumThreads()),
	}
}

// Clone implements Machine.
func (m *Network) Clone() Machine {
	return &Network{
		base:     m.cloneBase(),
		memory:   copyMem(m.memory),
		inflight: append([]netMsg(nil), m.inflight...),
		nextSeq:  m.nextSeq,
		waiting:  append([]bool(nil), m.waiting...),
	}
}

// deliverable reports whether inflight[i] is the oldest in-flight message of
// its (proc, addr) pair — the per-module FIFO constraint.
func (m *Network) deliverable(i int) bool {
	msg := m.inflight[i]
	for j := range m.inflight {
		o := m.inflight[j]
		if o.proc == msg.proc && o.addr == msg.addr && o.seq < msg.seq {
			return false
		}
	}
	return true
}

// hasInflight reports whether processor p has any message in flight.
func (m *Network) hasInflight(p int) bool {
	for _, msg := range m.inflight {
		if msg.proc == p {
			return true
		}
	}
	return false
}

// Transitions implements Machine.
func (m *Network) Transitions() []Transition {
	var ts []Transition
	for i := range m.inflight {
		if m.deliverable(i) {
			ts = append(ts, Transition{Kind: TDeliver, Proc: m.inflight[i].proc, Aux: m.inflight[i].seq})
		}
	}
	for p := range m.threads {
		if m.waiting[p] {
			continue
		}
		req, ok, err := m.pending(p)
		if err != nil || !ok {
			continue
		}
		if req.Op.IsSync() && m.hasInflight(p) {
			continue
		}
		if req.Op == mem.OpWrite && m.inflightCount(p) >= maxInflight {
			continue // finite request buffering per processor
		}
		ts = append(ts, Transition{Kind: TExec, Proc: p})
	}
	return ts
}

// maxInflight bounds a processor's simultaneously in-flight requests.
const maxInflight = 8

// inflightCount counts processor p's in-flight messages.
func (m *Network) inflightCount(p int) int {
	n := 0
	for _, msg := range m.inflight {
		if msg.proc == p {
			n++
		}
	}
	return n
}

// findMsg locates an in-flight message by its seq.
func (m *Network) findMsg(seq int) (int, bool) {
	for i := range m.inflight {
		if m.inflight[i].seq == seq {
			return i, true
		}
	}
	return 0, false
}

// Apply implements Machine.
func (m *Network) Apply(t Transition) error {
	switch t.Kind {
	case TDeliver:
		i, ok := m.findMsg(t.Aux)
		if !ok {
			return fmt.Errorf("network: no in-flight message with seq %d", t.Aux)
		}
		msg := m.inflight[i]
		m.inflight = append(m.inflight[:i], m.inflight[i+1:]...)
		if msg.isRead {
			v := m.memory[msg.addr]
			req := program.Request{Op: mem.OpRead, Addr: msg.addr}
			m.record(msg.proc, msg.opIndex, req, v, 0)
			m.waiting[msg.proc] = false
			m.threads[msg.proc].Resolve(v)
			return nil
		}
		m.memory[msg.addr] = msg.value
		m.record(msg.proc, msg.opIndex, program.Request{Op: mem.OpWrite, Addr: msg.addr, Data: msg.value}, 0, msg.value)
		return nil
	case TExec:
		if m.waiting[t.Proc] {
			return fmt.Errorf("network: P%d is blocked on a read", t.Proc)
		}
		req, ok, err := m.pending(t.Proc)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("network: P%d has no pending operation", t.Proc)
		}
		switch {
		case req.Op == mem.OpWrite:
			m.nextSeq++
			m.inflight = append(m.inflight, netMsg{
				seq: m.nextSeq, proc: t.Proc, addr: req.Addr, value: req.Data,
				opIndex: m.threads[t.Proc].OpIndex,
			})
			m.threads[t.Proc].Resolve(0)
			return nil
		case req.Op == mem.OpRead:
			m.nextSeq++
			m.inflight = append(m.inflight, netMsg{
				seq: m.nextSeq, proc: t.Proc, isRead: true, addr: req.Addr,
				opIndex: m.threads[t.Proc].OpIndex,
			})
			m.waiting[t.Proc] = true
			return nil
		default:
			if m.hasInflight(t.Proc) {
				return fmt.Errorf("network: sync op on P%d with messages in flight", t.Proc)
			}
			old := m.memory[req.Addr]
			var wv mem.Value
			if req.Op.Writes() {
				wv = req.NewValue(old)
				m.memory[req.Addr] = wv
			}
			m.resolve(t.Proc, req, old, wv)
			return nil
		}
	default:
		return fmt.Errorf("network: unexpected transition %s", t)
	}
}

// Done implements Machine.
func (m *Network) Done() bool { return len(m.inflight) == 0 && m.threadsDone() }

// AppendKey implements Machine.
func (m *Network) AppendKey(mode KeyMode, key []byte) []byte {
	key = m.appendKeyBase(mode, key)
	key = append(key, 'M')
	key = appendMem(key, m.addrs, m.memory)
	key = append(key, 'F')
	key = binary.AppendUvarint(key, uint64(len(m.inflight)))
	// Canonical grouped encoding: messages sorted by (proc, addr) with the
	// in-group (per-module FIFO) order preserved. The machine's behavior
	// depends only on each (proc, addr) subsequence — deliverable() never
	// compares messages across groups — so the cross-group interleaving the
	// list order records is not state and must not reach the key, or issue
	// steps of different processors would fail to commute at the key level.
	idx := make([]int, len(m.inflight))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		x, y := m.inflight[idx[a]], m.inflight[idx[b]]
		if x.proc != y.proc {
			return x.proc < y.proc
		}
		return x.addr < y.addr
	})
	for _, i := range idx {
		msg := m.inflight[i]
		r := byte('w')
		if msg.isRead {
			r = 'r'
		}
		key = append(key, r)
		key = binary.AppendUvarint(key, uint64(msg.proc))
		key = binary.AppendUvarint(key, uint64(msg.addr))
		key = binary.AppendVarint(key, int64(msg.value))
		key = binary.AppendUvarint(key, uint64(msg.opIndex))
	}
	return key
}

// StepInfo implements Machine. Deliveries act for the issuing processor: all
// of an agent's gates (per-module FIFO, in-flight caps, read blocking, sync
// quiescence) wait only on the agent's own deliveries.
func (m *Network) StepInfo(t Transition) explore.Info {
	if t.Kind == TDeliver {
		if i, ok := m.findMsg(t.Aux); ok {
			msg := m.inflight[i]
			op := mem.OpWrite
			if msg.isRead {
				op = mem.OpRead
			}
			info := explore.Info{Agent: msg.proc, Addr: msg.addr, Op: op}
			info.AddrBit, _ = m.fpAddrBit(msg.addr)
			return info
		}
		return explore.Info{Agent: t.Proc, Opaque: true}
	}
	return m.execInfo(t.Proc)
}

// Footprints implements Machine: each processor's static suffix plus its
// in-flight accesses. Wake footprints stay empty — every enabling gate
// (per-module FIFO, the in-flight cap, read blocking, sync quiescence)
// depends only on the processor's own in-flight messages.
func (m *Network) Footprints(buf []explore.AgentFootprints) []explore.AgentFootprints {
	base := len(buf)
	buf = m.appendThreadFootprints(buf)
	for _, msg := range m.inflight {
		fp := &buf[base+msg.proc].Future
		bit, ok := m.fpAddrBit(msg.addr)
		if !ok {
			fp.Wild = true
			continue
		}
		if msg.isRead {
			fp.Reads |= bit
		} else {
			fp.Writes |= bit
		}
	}
	return buf
}

// Final implements Machine.
func (m *Network) Final() *program.FinalState { return m.finalState(m.memory) }

// Result implements Machine.
func (m *Network) Result() mem.Result { return m.result(m.memory) }
