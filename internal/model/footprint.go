package model

import (
	"weakorder/internal/explore"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// progFootprints is the static half of the partial-order reducer's per-agent
// future footprints: for every (thread, pc), an over-approximation of every
// memory access the thread can still perform from that pc. Computed once per
// machine construction and shared, immutably, by all clones. Machines combine
// it with their dynamic half (buffered writes, in-flight messages, pending
// propagations) in Footprints.
type progFootprints struct {
	// addrBit maps each address of the program's static universe to a dense
	// bit index; nil when the universe exceeds 64 locations, in which case
	// every footprint degrades to Wild (sound: merely unreduced).
	addrBit map[mem.Addr]int
	// byPC[t][pc] is thread t's future footprint when its PC is pc.
	byPC [][]explore.Footprint
}

func computeFootprints(p *program.Program) *progFootprints {
	f := &progFootprints{}
	if addrs := p.Addrs(); len(addrs) <= 64 {
		f.addrBit = make(map[mem.Addr]int, len(addrs))
		for i, a := range addrs {
			f.addrBit[a] = i
		}
	}
	for _, code := range p.Threads {
		f.byPC = append(f.byPC, fpByPC(code, f.addrBit))
	}
	return f
}

// orFP unions src into dst.
func orFP(dst *explore.Footprint, src explore.Footprint) {
	dst.Reads |= src.Reads
	dst.Writes |= src.Writes
	dst.Wild = dst.Wild || src.Wild
	dst.Sync = dst.Sync || src.Sync
	dst.Opaque = dst.Opaque || src.Opaque
}

// fpByPC computes, per pc, the union of the access footprints of every
// instruction reachable from pc, by backward fixpoint over the thread's
// control-flow graph (branches make it cyclic, so a single pass does not
// suffice). Register-indexed addresses cannot be resolved statically and
// degrade the footprint to Wild.
func fpByPC(code program.Code, addrBit map[mem.Addr]int) []explore.Footprint {
	own := make([]explore.Footprint, len(code))
	for i, in := range code {
		op, ok := in.MemOp()
		if !ok {
			continue
		}
		fp := &own[i]
		if in.UseAddrReg || addrBit == nil {
			fp.Wild = true
		} else {
			bit := uint64(1) << addrBit[in.Addr]
			if op.Reads() {
				fp.Reads |= bit
			}
			if op.Writes() {
				fp.Writes |= bit
			}
		}
		if op.IsSync() {
			fp.Sync = true
		}
	}
	fps := make([]explore.Footprint, len(code))
	copy(fps, own)
	for changed := true; changed; {
		changed = false
		for i := len(code) - 1; i >= 0; i-- {
			fp := fps[i]
			switch code[i].Op {
			case program.IHalt:
				// No successors.
			case program.IJmp:
				orFP(&fp, fps[code[i].Target])
			case program.IBeq, program.IBne, program.IBlt:
				orFP(&fp, fps[code[i].Target])
				if i+1 < len(code) {
					orFP(&fp, fps[i+1])
				}
			default:
				if i+1 < len(code) {
					orFP(&fp, fps[i+1])
				}
			}
			if fp != fps[i] {
				fps[i] = fp
				changed = true
			}
		}
	}
	return fps
}

// threadFootprint is thread p's static future footprint at its current PC. A
// halted thread (or one run past its code) has nothing left.
func (b *base) threadFootprint(p int) explore.Footprint {
	t := &b.threads[p]
	byPC := b.fp.byPC[p]
	if t.Halted || t.PC < 0 || t.PC >= len(byPC) {
		return explore.Footprint{}
	}
	// When the thread is blocked on a published request, PC still points at
	// the memory instruction (Resolve advances it), so the pending operation
	// is covered by byPC[PC].
	return byPC[t.PC]
}

// appendThreadFootprints appends one AgentFootprints per processor, with the
// static thread suffix as the future footprint and an empty wake footprint.
// Machines OR their dynamic state (buffers, in-flight messages, propagations,
// reservation stalls) on top before returning from Footprints.
func (b *base) appendThreadFootprints(buf []explore.AgentFootprints) []explore.AgentFootprints {
	for p := range b.threads {
		buf = append(buf, explore.AgentFootprints{Future: b.threadFootprint(p)})
	}
	return buf
}

// fpAddrBit returns the dense footprint bit of an address; ok is false when
// the address universe overflowed 64 locations or the address is outside the
// static universe, in which case the caller must degrade to Wild.
func (b *base) fpAddrBit(a mem.Addr) (uint64, bool) {
	if b.fp.addrBit == nil {
		return 0, false
	}
	i, ok := b.fp.addrBit[a]
	if !ok {
		return 0, false
	}
	return uint64(1) << i, true
}

// execInfo is the reduction footprint of a TExec step: the acting thread's
// pending request, as a single access by agent p.
func (b *base) execInfo(p int) explore.Info {
	req, ok, err := b.pending(p)
	if err != nil || !ok {
		return explore.Info{Agent: p, Opaque: true}
	}
	info := explore.Info{Agent: p, Addr: req.Addr, Op: req.Op}
	info.AddrBit, _ = b.fpAddrBit(req.Addr)
	return info
}
