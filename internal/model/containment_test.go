package model

import (
	"testing"

	"weakorder/internal/core"
	"weakorder/internal/program"
	"weakorder/internal/workload"
)

// outcomes explores a machine's Result set.
func outcomes(t *testing.T, m Machine) core.OutcomeSet {
	t.Helper()
	x := &Explorer{MaxTraceOps: 24}
	out, _, err := x.Outcomes(m)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return out
}

// subset asserts a ⊆ b.
func subset(t *testing.T, name string, a, b core.OutcomeSet) {
	t.Helper()
	for k := range a {
		if _, ok := b[k]; !ok {
			t.Errorf("%s: containment violated (result %q)", name, k)
			return
		}
	}
}

// randomPrograms yields a mixed bag of small programs for the laws.
func randomPrograms() []*program.Program {
	var ps []*program.Program
	for seed := int64(0); seed < 12; seed++ {
		ps = append(ps, workload.Random(seed, workload.RandomConfig{
			Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4, SyncDensity: 30,
		}))
	}
	for seed := int64(20); seed < 26; seed++ {
		ps = append(ps, workload.RandomGuarded(seed, 2, 1))
	}
	return ps
}

// TestSCContainedInEveryRelaxedMachine: every machine can emulate the
// idealized architecture by scheduling transitions eagerly, so the SC result
// set is a subset of each machine's result set — the relaxations only *add*
// behaviors.
func TestSCContainedInEveryRelaxedMachine(t *testing.T) {
	mks := []func(*program.Program) Machine{
		func(p *program.Program) Machine { return NewWriteBuffer(p, "") },
		func(p *program.Program) Machine { return NewNetwork(p) },
		func(p *program.Program) Machine { return NewNonAtomic(p) },
		func(p *program.Program) Machine { return NewWODef1(p) },
		func(p *program.Program) Machine { return NewWODef2(p) },
		func(p *program.Program) Machine { return NewWODef2DRF1(p) },
	}
	for _, p := range randomPrograms() {
		sc := outcomes(t, NewSC(p))
		for _, mk := range mks {
			m := mk(p)
			subset(t, p.Name+" SC⊆"+m.Name(), sc, outcomes(t, m))
		}
	}
}

// TestDef1ContainedInDef2: Definition 1's extra stalls only remove behaviors
// relative to the Section-5 machine — under Definition 1 a synchronizer is
// drained at commit time, so it never leaves a reservation behind, making
// every Def1 path a legal Def2 path.
func TestDef1ContainedInDef2(t *testing.T) {
	for _, p := range randomPrograms() {
		d1 := outcomes(t, NewWODef1(p))
		d2 := outcomes(t, NewWODef2(p))
		subset(t, p.Name+" def1⊆def2", d1, d2)
	}
}

// TestDef2ContainedInNoReserve: removing the reservation constraint only
// enables more schedules.
func TestDef2ContainedInNoReserve(t *testing.T) {
	for _, p := range randomPrograms() {
		d2 := outcomes(t, NewWODef2(p))
		nr := outcomes(t, NewWODef2NoReserve(p))
		subset(t, p.Name+" def2⊆noreserve", d2, nr)
	}
}
