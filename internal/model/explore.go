package model

import (
	"fmt"

	"weakorder/internal/core"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Explorer exhaustively enumerates the behaviors of a Machine by depth-first
// search over its nondeterministic transitions, deduplicating states by
// canonical key. The key mode determines what the deduplicated enumeration
// preserves; see KeyMode.
type Explorer struct {
	// MaxStates bounds the number of distinct states visited (0 = the
	// DefaultMaxStates safety net). Exceeding it aborts with ErrStateBudget.
	MaxStates int
	// Mode selects the state-key granularity. The zero value (KeyState) is
	// correct for final-state/litmus enumeration.
	Mode KeyMode
	// MaxTraceOps, when positive, prunes any path whose recorded trace
	// exceeds this many memory operations. Programs with unbounded spin
	// loops have infinitely many executions of unbounded length; under
	// KeyResult/KeyExecution (whose keys embed history) a bound is the only
	// way to terminate. Pruned paths are counted in Stats.Truncated, so a
	// nonzero count flags the enumeration as length-bounded rather than
	// exhaustive.
	MaxTraceOps int
}

// DefaultMaxStates is the safety net applied when Explorer.MaxStates is 0.
const DefaultMaxStates = 2_000_000

// ErrStateBudget reports that exploration exceeded MaxStates.
var ErrStateBudget = fmt.Errorf("model: state budget exhausted")

// Visit runs the exploration, calling fn on every distinct completed machine
// (Done() true, deduplicated under Mode). fn returning false stops early.
// Visit reports statistics via the returned Stats even on early stop.
func (x *Explorer) Visit(m Machine, fn func(Machine) bool) (Stats, error) {
	budget := x.MaxStates
	if budget <= 0 {
		budget = DefaultMaxStates
	}
	st := Stats{}
	visited := make(map[string]bool)
	finals := make(map[string]bool)
	stop := false

	var dfs func(m Machine) error
	dfs = func(m Machine) error {
		if stop {
			return nil
		}
		if x.MaxTraceOps > 0 && m.Trace().Len() > x.MaxTraceOps {
			st.Truncated++
			return nil
		}
		// Compute transitions before keying: Transitions() advances threads
		// through their (deterministic) local instructions to their next
		// memory operation, normalizing the state so that equivalent states
		// reached along different paths key identically.
		ts := m.Transitions()
		key := m.Key(x.Mode)
		if visited[key] {
			return nil
		}
		if len(visited) >= budget {
			return ErrStateBudget
		}
		visited[key] = true
		st.States++
		if len(ts) == 0 {
			if !m.Done() {
				return fmt.Errorf("model: %s deadlocked (no enabled transitions, not done)", m.Name())
			}
			if !finals[key] {
				finals[key] = true
				st.Finals++
				if !fn(m) {
					stop = true
				}
			}
			return nil
		}
		for _, t := range ts {
			c := m.Clone()
			if err := c.Apply(t); err != nil {
				return fmt.Errorf("model: applying %s on %s: %w", t, m.Name(), err)
			}
			st.Transitions++
			if err := dfs(c); err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
		return nil
	}
	err := dfs(m.Clone())
	return st, err
}

// Stats summarizes one exploration.
type Stats struct {
	States      int // distinct states visited
	Transitions int // transitions applied
	Finals      int // distinct completed states reached
	Truncated   int // paths pruned by MaxTraceOps (0 means exhaustive)
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	if s.Truncated > 0 {
		return fmt.Sprintf("%d states, %d transitions, %d final states, %d paths truncated",
			s.States, s.Transitions, s.Finals, s.Truncated)
	}
	return fmt.Sprintf("%d states, %d transitions, %d final states", s.States, s.Transitions, s.Finals)
}

// Outcomes collects the set of distinct Results (the paper's notion: all read
// values plus final memory) the machine can produce. It forces at least
// KeyResult granularity so deduplication cannot merge distinct Results.
func (x *Explorer) Outcomes(m Machine) (core.OutcomeSet, Stats, error) {
	sub := *x
	if sub.Mode < KeyResult {
		sub.Mode = KeyResult
	}
	out := make(core.OutcomeSet)
	st, err := sub.Visit(m, func(f Machine) bool {
		out.Add(f.Result())
		return true
	})
	return out, st, err
}

// FinalStates collects the distinct final states (registers + memory),
// sufficient for litmus conditions; KeyState granularity suffices.
func (x *Explorer) FinalStates(m Machine, fn func(*program.FinalState) bool) (Stats, error) {
	return x.Visit(m, func(f Machine) bool { return fn(f.Final()) })
}

// Enumerator adapts (program, machine factory, explorer) to the
// core.ExecutionEnumerator interface so core.CheckProgram can quantify over
// all idealized executions. The factory is normally NewSC — Definition 3 is
// stated over the idealized architecture — and exploration runs at
// KeyExecution granularity so every distinct happens-before relation is
// produced.
type Enumerator struct {
	Prog     *program.Program
	Explorer *Explorer
	// New builds the machine; nil means NewSC.
	New func(*program.Program) Machine
}

var _ core.ExecutionEnumerator = (*Enumerator)(nil)

// IdealizedExecutions implements core.ExecutionEnumerator.
func (e *Enumerator) IdealizedExecutions(fn func(*mem.Execution) bool) error {
	x := e.Explorer
	if x == nil {
		x = &Explorer{}
	}
	sub := *x
	if sub.Mode < KeyExecution {
		sub.Mode = KeyExecution
	}
	mk := e.New
	if mk == nil {
		mk = func(p *program.Program) Machine { return NewSC(p) }
	}
	_, err := sub.Visit(mk(e.Prog), func(f Machine) bool { return fn(f.Trace()) })
	return err
}
