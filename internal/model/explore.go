package model

import (
	"sort"

	"weakorder/internal/core"
	"weakorder/internal/explore"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Explorer exhaustively enumerates the behaviors of a Machine by adapting it
// to the shared exploration kernel (internal/explore): depth-first search
// over its nondeterministic transitions with state deduplication by canonical
// key and conflict-driven partial-order reduction. The key mode determines
// what the deduplicated enumeration preserves; see KeyMode.
type Explorer struct {
	// MaxStates bounds the number of distinct states visited (0 = the
	// DefaultMaxStates safety net). Exceeding it aborts with an error
	// satisfying errors.Is(err, ErrStateBudget).
	MaxStates int
	// Mode selects the state-key granularity. The zero value (KeyState) is
	// correct for final-state/litmus enumeration.
	Mode KeyMode
	// MaxTraceOps, when positive, prunes any path whose recorded trace
	// exceeds this many memory operations. Programs with unbounded spin
	// loops have infinitely many executions of unbounded length; under
	// KeyResult/KeyExecution (whose keys embed history) a bound is the only
	// way to terminate. Pruned paths are counted in Stats.Truncated, so a
	// nonzero count flags the enumeration as length-bounded rather than
	// exhaustive.
	MaxTraceOps int
	// FullExploration disables the partial-order reduction: every enabled
	// transition of every state is expanded. The escape hatch for debugging
	// and for the differential tests that pin POR soundness.
	FullExploration bool
	// FullKeys, when true, deduplicates on the full canonical key encoding
	// instead of its 128-bit digest. The digest path is what production
	// sweeps use (constant memory per visited state, no per-state
	// allocation); the full-key path is collision-free by construction and
	// exists as a debug cross-check — tests explore both ways and assert
	// identical Stats.
	FullKeys bool
	// Workers selects the exploration width, passed through to the kernel:
	// 0 or 1 serial, n > 1 that many workers sharing one search, negative
	// auto-sized from the par budget. Any width produces the same outcome
	// set; visit order and reduced-mode Stats may vary above width 1. See
	// explore.Explorer.Workers.
	Workers int
}

// DefaultMaxStates is the safety net applied when Explorer.MaxStates is 0.
const DefaultMaxStates = explore.DefaultMaxStates

// ErrStateBudget reports that exploration exceeded MaxStates. Visit returns
// it wrapped with the machine name; check with errors.Is.
var ErrStateBudget = explore.ErrStateBudget

// Stats summarizes one exploration.
type Stats = explore.Stats

// machineSystem adapts a Machine to the kernel's TransitionSystem: it carries
// the key mode and trace bound, translates Transition to explore.Step (adding
// the machine's StepInfo), and presents the enabled steps in a canonical
// order. The machines emit deliveries in internal list order, which is not a
// function of the state key (equivalent states reached along different paths
// hold their pending lists in different cross-group orders), so the adapter
// sorts by (Kind, Proc, Addr) — a total order on any one state's steps, since
// per-(agent, addr) FIFO delivery makes at most one delivery per (Proc, Addr)
// pair enabled at once — giving the kernel the position-aligned step lists
// its per-state masks require.
type machineSystem struct {
	m           Machine
	mode        KeyMode
	maxTraceOps int
}

func (s *machineSystem) Name() string { return s.m.Name() }

func (s *machineSystem) Clone() explore.TransitionSystem {
	return &machineSystem{m: s.m.Clone(), mode: s.mode, maxTraceOps: s.maxTraceOps}
}

func (s *machineSystem) Steps() []explore.Step {
	ts := s.m.Transitions()
	steps := make([]explore.Step, len(ts))
	for i, t := range ts {
		steps[i] = explore.Step{Kind: uint8(t.Kind), Proc: t.Proc, Aux: int64(t.Aux), Info: s.m.StepInfo(t)}
	}
	sort.SliceStable(steps, func(a, b int) bool {
		x, y := steps[a], steps[b]
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		if x.Proc != y.Proc {
			return x.Proc < y.Proc
		}
		return x.Info.Addr < y.Info.Addr
	})
	return steps
}

func (s *machineSystem) Apply(t explore.Step) error {
	return s.m.Apply(Transition{Kind: TransKind(t.Kind), Proc: t.Proc, Aux: int(t.Aux)})
}

func (s *machineSystem) Done() bool { return s.m.Done() }

func (s *machineSystem) AppendKey(key []byte) []byte { return s.m.AppendKey(s.mode, key) }

func (s *machineSystem) Prune() bool {
	return s.maxTraceOps > 0 && s.m.Trace().Len() > s.maxTraceOps
}

func (s *machineSystem) Footprints(buf []explore.AgentFootprints) []explore.AgentFootprints {
	return s.m.Footprints(buf)
}

// Visit runs the exploration, calling fn on every distinct completed machine
// (Done() true, deduplicated under Mode). fn returning false stops early.
// Visit reports statistics via the returned Stats even on early stop.
func (x *Explorer) Visit(m Machine, fn func(Machine) bool) (Stats, error) {
	k := explore.Explorer{
		MaxStates:       x.MaxStates,
		FullExploration: x.FullExploration,
		FullKeys:        x.FullKeys,
		Workers:         x.Workers,
		// KeyExecution keys embed the global sync log, so the relative order
		// of sync steps on different locations is observable; coarser modes
		// only see sync effects through their memory locations.
		VisibleSyncOrder: x.Mode >= KeyExecution,
	}
	sys := &machineSystem{m: m, mode: x.Mode, maxTraceOps: x.MaxTraceOps}
	return k.Run(sys, func(s explore.TransitionSystem) bool {
		return fn(s.(*machineSystem).m)
	})
}

// Outcomes collects the set of distinct Results (the paper's notion: all read
// values plus final memory) the machine can produce. It forces at least
// KeyResult granularity so deduplication cannot merge distinct Results.
func (x *Explorer) Outcomes(m Machine) (core.OutcomeSet, Stats, error) {
	sub := *x
	if sub.Mode < KeyResult {
		sub.Mode = KeyResult
	}
	out := make(core.OutcomeSet)
	st, err := sub.Visit(m, func(f Machine) bool {
		out.Add(f.Result())
		return true
	})
	return out, st, err
}

// FinalStates collects the distinct final states (registers + memory),
// sufficient for litmus conditions; KeyState granularity suffices.
func (x *Explorer) FinalStates(m Machine, fn func(*program.FinalState) bool) (Stats, error) {
	return x.Visit(m, func(f Machine) bool { return fn(f.Final()) })
}

// Enumerator adapts (program, machine factory, explorer) to the
// core.ExecutionEnumerator interface so core.CheckProgram can quantify over
// all idealized executions. The factory is normally NewSC — Definition 3 is
// stated over the idealized architecture — and exploration runs at
// KeyExecution granularity so every distinct happens-before relation is
// produced.
type Enumerator struct {
	Prog     *program.Program
	Explorer *Explorer
	// New builds the machine; nil means NewSC.
	New func(*program.Program) Machine
}

var _ core.ExecutionEnumerator = (*Enumerator)(nil)

// IdealizedExecutions implements core.ExecutionEnumerator.
func (e *Enumerator) IdealizedExecutions(fn func(*mem.Execution) bool) error {
	x := e.Explorer
	if x == nil {
		x = &Explorer{}
	}
	sub := *x
	if sub.Mode < KeyExecution {
		sub.Mode = KeyExecution
	}
	mk := e.New
	if mk == nil {
		mk = func(p *program.Program) Machine { return NewSC(p) }
	}
	_, err := sub.Visit(mk(e.Prog), func(f Machine) bool { return fn(f.Trace()) })
	return err
}
