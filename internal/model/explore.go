package model

import (
	"errors"
	"fmt"

	"weakorder/internal/core"
	"weakorder/internal/digest"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Explorer exhaustively enumerates the behaviors of a Machine by depth-first
// search over its nondeterministic transitions, deduplicating states by
// canonical key. The key mode determines what the deduplicated enumeration
// preserves; see KeyMode.
type Explorer struct {
	// MaxStates bounds the number of distinct states visited (0 = the
	// DefaultMaxStates safety net). Exceeding it aborts with an error
	// satisfying errors.Is(err, ErrStateBudget).
	MaxStates int
	// Mode selects the state-key granularity. The zero value (KeyState) is
	// correct for final-state/litmus enumeration.
	Mode KeyMode
	// MaxTraceOps, when positive, prunes any path whose recorded trace
	// exceeds this many memory operations. Programs with unbounded spin
	// loops have infinitely many executions of unbounded length; under
	// KeyResult/KeyExecution (whose keys embed history) a bound is the only
	// way to terminate. Pruned paths are counted in Stats.Truncated, so a
	// nonzero count flags the enumeration as length-bounded rather than
	// exhaustive.
	MaxTraceOps int
	// FullKeys, when true, deduplicates on the full canonical key encoding
	// instead of its 128-bit digest. The digest path is what production
	// sweeps use (16 bytes per visited state, no per-state allocation); the
	// full-key path is collision-free by construction and exists as a debug
	// cross-check — tests explore both ways and assert identical Stats.
	FullKeys bool
}

// DefaultMaxStates is the safety net applied when Explorer.MaxStates is 0.
const DefaultMaxStates = 2_000_000

// ErrStateBudget reports that exploration exceeded MaxStates. Visit returns
// it wrapped with the machine name; check with errors.Is.
var ErrStateBudget = errors.New("model: state budget exhausted")

// visitedSet deduplicates canonical state keys either by fixed-seed 128-bit
// digest (the default: constant memory per state, no allocation) or by the
// full key bytes (FullKeys debug mode).
type visitedSet struct {
	hashed map[digest.Sum]struct{}
	full   map[string]struct{}
}

func newVisitedSet(fullKeys bool, capacity int) *visitedSet {
	v := &visitedSet{}
	if fullKeys {
		v.full = make(map[string]struct{}, capacity)
	} else {
		v.hashed = make(map[digest.Sum]struct{}, capacity)
	}
	return v
}

// add inserts the key encoding, reporting whether it was absent.
func (v *visitedSet) add(key []byte) bool {
	if v.full != nil {
		if _, ok := v.full[string(key)]; ok {
			return false
		}
		v.full[string(key)] = struct{}{}
		return true
	}
	d := digest.Sum128(key)
	if _, ok := v.hashed[d]; ok {
		return false
	}
	v.hashed[d] = struct{}{}
	return true
}

func (v *visitedSet) len() int {
	if v.full != nil {
		return len(v.full)
	}
	return len(v.hashed)
}

// frame is one node of the explicit DFS stack: a machine state plus the
// iterator over its enabled transitions.
type frame struct {
	m    Machine
	ts   []Transition
	next int
}

// Visit runs the exploration, calling fn on every distinct completed machine
// (Done() true, deduplicated under Mode). fn returning false stops early.
// Visit reports statistics via the returned Stats even on early stop.
//
// The search is an explicit-stack depth-first traversal (preserving the
// pre-order of the transition lists), so state spaces bounded only by
// MaxStates cannot overflow the goroutine stack no matter how deep a path
// runs. Visit allocates its working state locally, so one Explorer may be
// shared by concurrent explorations.
func (x *Explorer) Visit(m Machine, fn func(Machine) bool) (Stats, error) {
	budget := x.MaxStates
	if budget <= 0 {
		budget = DefaultMaxStates
	}
	st := Stats{}
	visited := newVisitedSet(x.FullKeys, 1024)
	finals := newVisitedSet(x.FullKeys, 16)
	stop := false
	var key []byte // reused across all states of this exploration

	// enter processes one state exactly as the former recursion's prologue
	// did: trace bound, transition computation, dedup, budget, final
	// handling. It reports descend=true when the state is new and has
	// children to push.
	enter := func(m Machine) (f frame, descend bool, err error) {
		if x.MaxTraceOps > 0 && m.Trace().Len() > x.MaxTraceOps {
			st.Truncated++
			return frame{}, false, nil
		}
		// Compute transitions before keying: Transitions() advances threads
		// through their (deterministic) local instructions to their next
		// memory operation, normalizing the state so that equivalent states
		// reached along different paths key identically.
		ts := m.Transitions()
		key = m.AppendKey(x.Mode, key[:0])
		if visited.len() >= budget {
			// Checked before the insert so the budget error is raised only
			// when a new state would exceed it, as before.
			if !visited.add(key) {
				return frame{}, false, nil
			}
			return frame{}, false, fmt.Errorf("model: exploring %s: %w", m.Name(), ErrStateBudget)
		}
		if !visited.add(key) {
			return frame{}, false, nil
		}
		st.States++
		if len(ts) == 0 {
			if !m.Done() {
				return frame{}, false, fmt.Errorf("model: %s deadlocked (no enabled transitions, not done)", m.Name())
			}
			if finals.add(key) {
				st.Finals++
				if !fn(m) {
					stop = true
				}
			}
			return frame{}, false, nil
		}
		return frame{m: m, ts: ts}, true, nil
	}

	root, descend, err := enter(m.Clone())
	if err != nil {
		return st, err
	}
	stack := make([]frame, 0, 64)
	if descend {
		stack = append(stack, root)
	}
	for len(stack) > 0 && !stop {
		top := &stack[len(stack)-1]
		if top.next >= len(top.ts) {
			stack = stack[:len(stack)-1]
			continue
		}
		t := top.ts[top.next]
		top.next++
		var c Machine
		if top.next >= len(top.ts) {
			// Last child: this frame is exhausted and will never be touched
			// again, so the child consumes the parent machine in place — one
			// whole clone saved per expanded state (states with a single
			// successor, the common case on long deterministic runs, clone
			// nothing at all).
			c = top.m
			stack = stack[:len(stack)-1]
		} else {
			c = top.m.Clone()
		}
		if err := c.Apply(t); err != nil {
			return st, fmt.Errorf("model: applying %s on %s: %w", t, c.Name(), err)
		}
		st.Transitions++
		child, descend, err := enter(c)
		if err != nil {
			return st, err
		}
		if descend {
			stack = append(stack, child)
		}
	}
	return st, nil
}

// Stats summarizes one exploration.
type Stats struct {
	States      int // distinct states visited
	Transitions int // transitions applied
	Finals      int // distinct completed states reached
	Truncated   int // paths pruned by MaxTraceOps (0 means exhaustive)
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	if s.Truncated > 0 {
		return fmt.Sprintf("%d states, %d transitions, %d final states, %d paths truncated",
			s.States, s.Transitions, s.Finals, s.Truncated)
	}
	return fmt.Sprintf("%d states, %d transitions, %d final states", s.States, s.Transitions, s.Finals)
}

// Outcomes collects the set of distinct Results (the paper's notion: all read
// values plus final memory) the machine can produce. It forces at least
// KeyResult granularity so deduplication cannot merge distinct Results.
func (x *Explorer) Outcomes(m Machine) (core.OutcomeSet, Stats, error) {
	sub := *x
	if sub.Mode < KeyResult {
		sub.Mode = KeyResult
	}
	out := make(core.OutcomeSet)
	st, err := sub.Visit(m, func(f Machine) bool {
		out.Add(f.Result())
		return true
	})
	return out, st, err
}

// FinalStates collects the distinct final states (registers + memory),
// sufficient for litmus conditions; KeyState granularity suffices.
func (x *Explorer) FinalStates(m Machine, fn func(*program.FinalState) bool) (Stats, error) {
	return x.Visit(m, func(f Machine) bool { return fn(f.Final()) })
}

// Enumerator adapts (program, machine factory, explorer) to the
// core.ExecutionEnumerator interface so core.CheckProgram can quantify over
// all idealized executions. The factory is normally NewSC — Definition 3 is
// stated over the idealized architecture — and exploration runs at
// KeyExecution granularity so every distinct happens-before relation is
// produced.
type Enumerator struct {
	Prog     *program.Program
	Explorer *Explorer
	// New builds the machine; nil means NewSC.
	New func(*program.Program) Machine
}

var _ core.ExecutionEnumerator = (*Enumerator)(nil)

// IdealizedExecutions implements core.ExecutionEnumerator.
func (e *Enumerator) IdealizedExecutions(fn func(*mem.Execution) bool) error {
	x := e.Explorer
	if x == nil {
		x = &Explorer{}
	}
	sub := *x
	if sub.Mode < KeyExecution {
		sub.Mode = KeyExecution
	}
	mk := e.New
	if mk == nil {
		mk = func(p *program.Program) Machine { return NewSC(p) }
	}
	_, err := sub.Visit(mk(e.Prog), func(f Machine) bool { return fn(f.Trace()) })
	return err
}
