package model

import (
	"encoding/binary"
	"fmt"
	"sort"

	"weakorder/internal/explore"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// relaxMode selects which program-order relaxations a Relaxed machine
// exhibits between synchronization operations.
type relaxMode uint8

const (
	// relaxTSO relaxes only W->R order: writes retire through a single FIFO
	// store buffer per processor while reads bypass it (forwarding from the
	// newest same-address buffered write). The classic total-store-order
	// machine; behaviorally it coincides with the Figure-1 write-buffer
	// hardware but is kept as an independently implemented model so the
	// axiomatic checker can cross-validate two codebases against one axiom
	// set.
	relaxTSO relaxMode = iota
	// relaxPSO additionally relaxes W->W order between different addresses:
	// the store buffer is FIFO per address only, so writes to distinct
	// locations retire in any order (SPARC partial store order).
	relaxPSO
	// relaxRMO additionally relaxes R->R and R->W order observationally: a
	// read may return a stale — but per-location coherent — view of memory,
	// as if the load had executed earlier than program order placed it.
	// Loads never pass their own processor's program-later stores (no load
	// speculation), so load buffering stays forbidden; the machine is
	// "RMO-ish" rather than full SPARC RMO.
	relaxRMO
)

// Relaxed is the family of single-memory store-buffer machines covering the
// classic relaxation ladder TSO -> PSO -> RMO. All three share one commit
// substrate: writes retire from per-processor buffers into a single global
// memory (writes are multi-copy atomic — every processor observes a retired
// write at the same instant), reads bind in program order at issue, and every
// synchronization operation first drains the issuer's buffer, then executes
// atomically against memory, then (RMO) discards any stale view — i.e. sync
// acts as a full fence, which is what makes all three weakly ordered with
// respect to DRF0 under the paper's Definition 2.
//
// The RMO staleness mechanism: memory keeps, per location, the history of
// values it has held (the per-location write serialization), and each
// processor a cursor into that history — the newest version it has observed.
// A read may return any version at or after the cursor, advancing it; the
// cursor can lag the history arbitrarily but never moves backward, so
// per-location coherence (CoRR/CoWR/CoRW/CoWW) holds while reads of
// different locations may observe global memory at different points in time.
type Relaxed struct {
	base
	mode   relaxMode
	memory map[mem.Addr]mem.Value
	// buffers holds each processor's pending stores in issue order. TSO
	// retires strictly FIFO; PSO/RMO retire FIFO per address only.
	buffers [][]wbEntry
	// hist (RMO only) is the per-location value history: hist[a][0] is the
	// oldest version still observable by some processor and the last entry
	// always equals memory[a]. Entries below every cursor are pruned.
	hist map[mem.Addr][]mem.Value
	// seen (RMO only) is each processor's cursor: the index into hist[a] of
	// the newest version of a it has observed. Reads choose any index >=
	// seen[p][a].
	seen []map[mem.Addr]int
}

// NewTSO builds the total-store-order machine.
func NewTSO(p *program.Program) *Relaxed { return newRelaxed(p, relaxTSO, "tso") }

// NewPSO builds the partial-store-order machine.
func NewPSO(p *program.Program) *Relaxed { return newRelaxed(p, relaxPSO, "pso") }

// NewRMO builds the relaxed-memory-order machine.
func NewRMO(p *program.Program) *Relaxed { return newRelaxed(p, relaxRMO, "rmo") }

func newRelaxed(p *program.Program, mode relaxMode, name string) *Relaxed {
	m := &Relaxed{
		base:    newBase(name, p),
		mode:    mode,
		memory:  initMem(p),
		buffers: make([][]wbEntry, p.NumThreads()),
	}
	if mode == relaxRMO {
		m.hist = make(map[mem.Addr][]mem.Value)
		m.seen = make([]map[mem.Addr]int, p.NumThreads())
		for i := range m.seen {
			m.seen[i] = make(map[mem.Addr]int)
		}
		for _, a := range m.addrs {
			m.hist[a] = []mem.Value{m.memory[a]}
		}
	}
	return m
}

// Clone implements Machine.
func (m *Relaxed) Clone() Machine {
	c := &Relaxed{
		base:    m.cloneBase(),
		mode:    m.mode,
		memory:  copyMem(m.memory),
		buffers: make([][]wbEntry, len(m.buffers)),
	}
	for i, b := range m.buffers {
		c.buffers[i] = append([]wbEntry(nil), b...)
	}
	if m.mode == relaxRMO {
		c.hist = make(map[mem.Addr][]mem.Value, len(m.hist))
		for a, h := range m.hist {
			c.hist[a] = append([]mem.Value(nil), h...)
		}
		c.seen = make([]map[mem.Addr]int, len(m.seen))
		for p, s := range m.seen {
			c.seen[p] = make(map[mem.Addr]int, len(s))
			for a, i := range s {
				c.seen[p][a] = i
			}
		}
	}
	return c
}

// ensureHist makes sure a history exists for addr (register-indexed accesses
// can reach locations outside the static universe).
func (m *Relaxed) ensureHist(a mem.Addr) {
	if _, ok := m.hist[a]; !ok {
		m.hist[a] = []mem.Value{m.memory[a]}
		for p := range m.seen {
			m.seen[p][a] = 0
		}
	}
}

// commit applies one retired or atomic write to memory, extending the RMO
// history and advancing the writer's own cursor (a processor observes its own
// writes immediately). A write of the value the location already holds is a
// stutter: no read can distinguish the two coherence-adjacent versions, so it
// extends no history — without this collapse a spin loop of failed
// TestAndSets would grow the history (and the state space) without bound.
func (m *Relaxed) commit(p int, a mem.Addr, v mem.Value) {
	m.memory[a] = v
	if m.mode != relaxRMO {
		return
	}
	m.ensureHist(a)
	if h := m.hist[a]; v != h[len(h)-1] {
		m.hist[a] = append(h, v)
	}
	m.seen[p][a] = len(m.hist[a]) - 1
	m.pruneHist(a)
}

// pruneHist drops history entries of a below every cursor; they can never be
// observed again, and keeping them would make equivalent states key-distinct.
func (m *Relaxed) pruneHist(a mem.Addr) {
	min := len(m.hist[a]) - 1
	for p := range m.seen {
		s, ok := m.seen[p][a]
		if !ok {
			s = 0
		}
		if s < min {
			min = s
		}
	}
	if min <= 0 {
		return
	}
	m.hist[a] = m.hist[a][min:]
	for p := range m.seen {
		if s, ok := m.seen[p][a]; ok {
			m.seen[p][a] = s - min
		} else {
			m.seen[p][a] = 0
		}
	}
}

// drainIndex returns the buffer index the drain transition for (proc, addr)
// retires: the head for TSO, the oldest same-address entry for PSO/RMO.
func (m *Relaxed) drainIndex(p int, a mem.Addr) int {
	if m.mode == relaxTSO {
		if len(m.buffers[p]) > 0 {
			return 0
		}
		return -1
	}
	for i, e := range m.buffers[p] {
		if e.addr == a {
			return i
		}
	}
	return -1
}

// forwardFrom returns the newest buffered write of p to a, if any.
func (m *Relaxed) forwardFrom(p int, a mem.Addr) (mem.Value, bool) {
	for i := len(m.buffers[p]) - 1; i >= 0; i-- {
		if m.buffers[p][i].addr == a {
			return m.buffers[p][i].value, true
		}
	}
	return 0, false
}

// Transitions implements Machine. RMO read transitions carry in Aux the
// offset from the reader's cursor of the history version they observe; all
// other transitions use Aux 0 (TSO drains) or the drained address (PSO/RMO
// drains), so key-equal states enumerate identical step lists.
func (m *Relaxed) Transitions() []Transition {
	var ts []Transition
	for p := range m.threads {
		switch m.mode {
		case relaxTSO:
			if len(m.buffers[p]) > 0 {
				ts = append(ts, Transition{Kind: TDrain, Proc: p})
			}
		default:
			emitted := make(map[mem.Addr]bool)
			for _, e := range m.buffers[p] {
				if !emitted[e.addr] {
					emitted[e.addr] = true
					ts = append(ts, Transition{Kind: TDrain, Proc: p, Aux: int(e.addr)})
				}
			}
		}
		req, ok, err := m.pending(p)
		if err != nil || !ok {
			continue
		}
		switch {
		case req.Op.IsSync():
			if len(m.buffers[p]) > 0 {
				continue // sync waits for the buffer to drain
			}
			ts = append(ts, Transition{Kind: TExec, Proc: p})
		case req.Op == mem.OpWrite:
			if len(m.buffers[p]) >= bufferDepth {
				continue // buffer full: stall until a drain
			}
			ts = append(ts, Transition{Kind: TExec, Proc: p})
		default: // OpRead
			if m.mode != relaxRMO {
				ts = append(ts, Transition{Kind: TExec, Proc: p})
				continue
			}
			if _, fwd := m.forwardFrom(p, req.Addr); fwd {
				ts = append(ts, Transition{Kind: TExec, Proc: p})
				continue
			}
			m.ensureHist(req.Addr)
			base := m.seen[p][req.Addr]
			for off := 0; off < len(m.hist[req.Addr])-base; off++ {
				ts = append(ts, Transition{Kind: TExec, Proc: p, Aux: off})
			}
		}
	}
	return ts
}

// Apply implements Machine.
func (m *Relaxed) Apply(t Transition) error {
	switch t.Kind {
	case TDrain:
		i := m.drainIndex(t.Proc, mem.Addr(t.Aux))
		if i < 0 {
			return fmt.Errorf("%s: P%d drain with no matching entry (aux %d)", m.name, t.Proc, t.Aux)
		}
		e := m.buffers[t.Proc][i]
		m.buffers[t.Proc] = append(m.buffers[t.Proc][:i], m.buffers[t.Proc][i+1:]...)
		m.commit(t.Proc, e.addr, e.value)
		m.record(t.Proc, e.opIndex, program.Request{Op: mem.OpWrite, Addr: e.addr, Data: e.value}, 0, e.value)
		return nil
	case TExec:
		req, ok, err := m.pending(t.Proc)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%s: P%d has no pending operation", m.name, t.Proc)
		}
		switch {
		case req.Op == mem.OpWrite:
			m.buffers[t.Proc] = append(m.buffers[t.Proc], wbEntry{
				addr: req.Addr, value: req.Data, opIndex: m.threads[t.Proc].OpIndex,
			})
			m.threads[t.Proc].Resolve(0)
			return nil
		case req.Op == mem.OpRead:
			if v, fwd := m.forwardFrom(t.Proc, req.Addr); fwd {
				m.resolve(t.Proc, req, v, 0)
				return nil
			}
			if m.mode != relaxRMO {
				m.resolve(t.Proc, req, m.memory[req.Addr], 0)
				return nil
			}
			m.ensureHist(req.Addr)
			idx := m.seen[t.Proc][req.Addr] + t.Aux
			if idx < 0 || idx >= len(m.hist[req.Addr]) {
				return fmt.Errorf("rmo: P%d read of x%d with out-of-range version offset %d", t.Proc, req.Addr, t.Aux)
			}
			v := m.hist[req.Addr][idx]
			m.seen[t.Proc][req.Addr] = idx
			m.pruneHist(req.Addr)
			m.resolve(t.Proc, req, v, 0)
			return nil
		default: // synchronization: buffer drained; full fence + atomic access
			if len(m.buffers[t.Proc]) > 0 {
				return fmt.Errorf("%s: sync op with non-empty buffer on P%d", m.name, t.Proc)
			}
			old := m.memory[req.Addr]
			var wv mem.Value
			if req.Op.Writes() {
				wv = req.NewValue(old)
				m.commit(t.Proc, req.Addr, wv)
			}
			if m.mode == relaxRMO {
				// The fence half: discard every stale view, so accesses after
				// the sync cannot appear to have executed before it.
				for a, h := range m.hist {
					m.seen[t.Proc][a] = len(h) - 1
					m.pruneHist(a)
				}
			}
			m.resolve(t.Proc, req, old, wv)
			return nil
		}
	default:
		return fmt.Errorf("%s: unexpected transition %s", m.name, t)
	}
}

// Done implements Machine.
func (m *Relaxed) Done() bool {
	if !m.threadsDone() {
		return false
	}
	for _, b := range m.buffers {
		if len(b) > 0 {
			return false
		}
	}
	return true
}

// histAddrs returns every location with a history, static universe first,
// extras sorted — the canonical iteration order for key encoding.
func (m *Relaxed) histAddrs() []mem.Addr {
	out := append([]mem.Addr(nil), m.addrs...)
	var extra []mem.Addr
	for a := range m.hist {
		if !containsAddr(m.addrs, a) {
			extra = append(extra, a)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	return append(out, extra...)
}

// AppendKey implements Machine. PSO/RMO buffers are encoded grouped by
// address (stable, preserving per-address FIFO order): the cross-address
// interleaving of a PSO buffer is not semantic state — drains, forwarding and
// Done never compare entries across addresses — and keeping it out of the key
// makes independent steps commute at key level, which the partial-order
// reducer relies on. TSO buffers are strictly FIFO, so their full order is
// state and is encoded as-is.
func (m *Relaxed) AppendKey(mode KeyMode, key []byte) []byte {
	key = m.appendKeyBase(mode, key)
	key = append(key, 'M')
	key = appendMem(key, m.addrs, m.memory)
	key = append(key, 'B')
	for p := range m.buffers {
		b := m.buffers[p]
		if m.mode != relaxTSO && len(b) > 1 {
			b = append([]wbEntry(nil), b...)
			sort.SliceStable(b, func(i, j int) bool { return b[i].addr < b[j].addr })
		}
		key = binary.AppendUvarint(key, uint64(len(b)))
		for _, e := range b {
			key = binary.AppendUvarint(key, uint64(e.addr))
			key = binary.AppendVarint(key, int64(e.value))
			key = binary.AppendUvarint(key, uint64(e.opIndex))
		}
	}
	if m.mode == relaxRMO {
		key = append(key, 'H')
		addrs := m.histAddrs()
		key = binary.AppendUvarint(key, uint64(len(addrs)))
		for _, a := range addrs {
			h := m.hist[a]
			key = binary.AppendUvarint(key, uint64(a))
			key = binary.AppendUvarint(key, uint64(len(h)))
			for _, v := range h {
				key = binary.AppendVarint(key, int64(v))
			}
			for p := range m.seen {
				s, ok := m.seen[p][a]
				if !ok {
					s = 0
				}
				key = binary.AppendUvarint(key, uint64(s))
			}
		}
	}
	return key
}

// StepInfo implements Machine. A drain retires one buffered write, an access
// by the buffering processor (its agent); every gate (buffer room, sync
// drain) waits on the agent's own buffer, and the RMO read-version choice set
// grows only through conflicting writes, which the reducer already orders.
// On RMO every sync is additionally a full fence: Apply snaps the issuer's
// staleness cursors for ALL locations to the histories as of the fence, so
// the step is dependent on every other processor's write commits and on
// every other fence — more than a single-address Info can say, hence the
// Fence flag. TSO and PSO carry no cursor state and need no fence axis.
func (m *Relaxed) StepInfo(t Transition) explore.Info {
	if t.Kind == TDrain {
		a := mem.Addr(t.Aux)
		if m.mode == relaxTSO {
			if b := m.buffers[t.Proc]; len(b) > 0 {
				a = b[0].addr
			} else {
				return explore.Info{Agent: t.Proc, Opaque: true}
			}
		}
		info := explore.Info{Agent: t.Proc, Addr: a, Op: mem.OpWrite}
		info.AddrBit, _ = m.fpAddrBit(a)
		return info
	}
	info := m.execInfo(t.Proc)
	if m.mode == relaxRMO && info.Op.IsSync() {
		info.Fence = true
	}
	return info
}

// Footprints implements Machine: each processor's static suffix plus the
// writes still sitting in its buffer. Wake footprints stay empty — every
// enabling gate depends on the processor's own buffer alone.
func (m *Relaxed) Footprints(buf []explore.AgentFootprints) []explore.AgentFootprints {
	base := len(buf)
	buf = m.appendThreadFootprints(buf)
	for p, b := range m.buffers {
		fp := &buf[base+p].Future
		for _, e := range b {
			if bit, ok := m.fpAddrBit(e.addr); ok {
				fp.Writes |= bit
			} else {
				fp.Wild = true
			}
		}
		// On RMO every remaining sync is a full fence (see StepInfo).
		if m.mode == relaxRMO && fp.Sync {
			fp.Fence = true
		}
	}
	return buf
}

// Final implements Machine.
func (m *Relaxed) Final() *program.FinalState { return m.finalState(m.memory) }

// Result implements Machine.
func (m *Relaxed) Result() mem.Result { return m.result(m.memory) }
