package model

import (
	"encoding/binary"
	"fmt"
	"sort"

	"weakorder/internal/explore"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// woMode selects which weak-ordering discipline a WeakOrdered machine
// enforces at synchronization operations.
type woMode uint8

const (
	// modeDef1 is Dubois/Scheurich/Briggs' Definition 1: a processor may not
	// issue a synchronization operation until all its previous accesses are
	// globally performed (and, symmetrically, issues nothing past a sync
	// until the sync is globally performed — automatic here because the
	// sync executes atomically).
	modeDef1 woMode = iota
	// modeDef2 is the paper's Section-5 implementation: a synchronization
	// operation commits without waiting for the issuer's outstanding
	// accesses; instead it *reserves* its location, and a subsequent
	// synchronization on the same location by another processor stalls
	// until the reserver's outstanding accesses are globally performed
	// (conditions 1-5 of Section 5.1).
	modeDef2
	// modeDef2DRF1 refines modeDef2 per Section 6: read-only
	// synchronization operations are not serialized and set no reservation;
	// they still respect existing reservations (an acquire must not see a
	// release whose prior accesses are incomplete).
	modeDef2DRF1
	// modeDef2NoReserve is the ablation: Definition 2's machine with the
	// reserve-bit mechanism disabled. Synchronization still commits without
	// waiting for outstanding accesses, but nothing transfers the stall to
	// the next synchronizer — the machine is NOT weakly ordered w.r.t. DRF0
	// and the contract experiments must catch it.
	modeDef2NoReserve
)

// WeakOrdered is the family of weakly ordered cache-based machines, sharing
// the copies substrate (per-processor copies, asynchronous propagation,
// commit vs globally-performed distinction).
type WeakOrdered struct {
	base
	c    *copies
	mode woMode
	// resv maps a synchronization location to the processor holding its
	// reservation (-1 when none). A reservation is released when the
	// holder's outstanding counter reads zero; release is evaluated lazily.
	resv map[mem.Addr]int
}

// NewWODef1 builds a Definition-1 weakly ordered machine.
func NewWODef1(p *program.Program) *WeakOrdered { return newWO(p, modeDef1, "WO-def1") }

// NewWODef2 builds the paper's Section-5 machine.
func NewWODef2(p *program.Program) *WeakOrdered { return newWO(p, modeDef2, "WO-def2") }

// NewWODef2DRF1 builds the Section-6 refined machine.
func NewWODef2DRF1(p *program.Program) *WeakOrdered {
	return newWO(p, modeDef2DRF1, "WO-def2-drf1")
}

// NewWODef2NoReserve builds the ablated Section-5 machine with reserve bits
// disabled; it exists to demonstrate that the reservation mechanism is what
// makes the implementation weakly ordered w.r.t. DRF0.
func NewWODef2NoReserve(p *program.Program) *WeakOrdered {
	return newWO(p, modeDef2NoReserve, "WO-def2-noreserve")
}

// NewFence builds an RP3-style fence machine (Section 2.1): a processor waits
// for acknowledgements of its outstanding requests only at synchronization
// points. Operationally this coincides with Definition 1's per-processor
// stall, so the machine shares modeDef1; only the name differs, and test E7
// verifies the behavioral equivalence explicitly.
func NewFence(p *program.Program) *WeakOrdered { return newWO(p, modeDef1, "RP3-fence") }

func newWO(p *program.Program, mode woMode, name string) *WeakOrdered {
	return &WeakOrdered{
		base: newBase(name, p),
		c:    newCopies(p.NumThreads(), initMem(p)),
		mode: mode,
		resv: make(map[mem.Addr]int),
	}
}

// Clone implements Machine.
func (m *WeakOrdered) Clone() Machine {
	r := make(map[mem.Addr]int, len(m.resv))
	for a, p := range m.resv {
		r[a] = p
	}
	return &WeakOrdered{base: m.cloneBase(), c: m.c.clone(), mode: m.mode, resv: r}
}

// reserver returns the processor effectively holding a reservation on a, or
// -1: a recorded reservation whose holder has drained is already released.
func (m *WeakOrdered) reserver(a mem.Addr) int {
	p, ok := m.resv[a]
	if !ok || p < 0 {
		return -1
	}
	if m.c.drained(p) {
		return -1
	}
	return p
}

// syncEnabled reports whether processor p may commit its pending
// synchronization operation on addr right now.
func (m *WeakOrdered) syncEnabled(p int, req program.Request) bool {
	switch m.mode {
	case modeDef1:
		// Definition 1, condition 2: previous accesses globally performed.
		return m.c.drained(p)
	case modeDef2, modeDef2DRF1:
		r := m.reserver(req.Addr)
		return r < 0 || r == p
	case modeDef2NoReserve:
		return true
	default:
		panic("model: unknown weak-ordering mode")
	}
}

// Transitions implements Machine.
func (m *WeakOrdered) Transitions() []Transition {
	var ts []Transition
	for i := range m.c.pending {
		if m.c.deliverable(i) {
			ts = append(ts, Transition{Kind: TDeliver, Proc: m.c.pending[i].dst, Aux: int(m.c.pending[i].seq)})
		}
	}
	for p := range m.threads {
		req, ok, err := m.pending(p)
		if err != nil || !ok {
			continue
		}
		if req.Op.IsSync() && !m.syncEnabled(p, req) {
			continue
		}
		if req.Op == mem.OpWrite && !m.c.canCommit(p) {
			continue // finite write buffering: stall until a delivery frees room
		}
		ts = append(ts, Transition{Kind: TExec, Proc: p})
	}
	return ts
}

// Apply implements Machine.
func (m *WeakOrdered) Apply(t Transition) error {
	switch t.Kind {
	case TDeliver:
		src := m.c.propSrc(int64(t.Aux), t.Proc)
		if err := m.c.deliver(int64(t.Aux), t.Proc); err != nil {
			return err
		}
		// A reservation is released for good the moment its holder's
		// outstanding counter reads zero. Scrubbing eagerly (rather than
		// filtering lazily in reserver) matters for state deduplication: a
		// lazily released reservation would silently rearm when the holder
		// commits its next write, giving two states with identical canonical
		// keys (the 'V' section encodes effective reservations only)
		// different futures.
		if src >= 0 && m.c.drained(src) {
			for a, h := range m.resv {
				if h == src {
					delete(m.resv, a)
				}
			}
		}
		return nil
	case TExec:
		req, ok, err := m.pending(t.Proc)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%s: P%d has no pending operation", m.name, t.Proc)
		}
		if !req.Op.IsSync() {
			// Data accesses are fully relaxed on every machine in the
			// family: reads hit the local copy; writes commit locally and
			// propagate asynchronously.
			old := m.c.read(t.Proc, req.Addr)
			var wv mem.Value
			if req.Op == mem.OpWrite {
				wv = req.Data
				m.c.commitWrite(t.Proc, req.Addr, wv)
			}
			m.resolve(t.Proc, req, old, wv)
			return nil
		}
		if !m.syncEnabled(t.Proc, req) {
			return fmt.Errorf("%s: P%d sync on x%d applied while stalled", m.name, t.Proc, req.Addr)
		}
		// The Section-6 refinement lets a read-only synchronization
		// operation proceed without serialization: it reads the local copy
		// (current for sync locations, whose writes are atomic) and leaves
		// no reservation.
		if m.mode == modeDef2DRF1 && req.Op == mem.OpSyncRead {
			old := m.c.read(t.Proc, req.Addr)
			m.resolve(t.Proc, req, old, 0)
			return nil
		}
		// A synchronization operation is performed on an exclusively held
		// line (Section 5.3), so its commit and global performance
		// coincide: the write component applies to every copy atomically.
		// Sync operations on the same location are thereby totally ordered
		// by commit time and globally performed in that order (condition 3).
		old := m.c.read(t.Proc, req.Addr)
		var wv mem.Value
		if req.Op.Writes() {
			wv = req.NewValue(old)
			m.c.atomicWrite(t.Proc, req.Addr, wv)
		}
		if m.mode == modeDef2 || m.mode == modeDef2DRF1 {
			// Condition 5: if the issuer has outstanding accesses, reserve
			// the line so later synchronizers stall until it drains.
			if !m.c.drained(t.Proc) {
				m.resv[req.Addr] = t.Proc
			} else {
				delete(m.resv, req.Addr)
			}
		}
		// modeDef2NoReserve deliberately records nothing: the ablation.
		m.resolve(t.Proc, req, old, wv)
		return nil
	default:
		return fmt.Errorf("%s: unexpected transition %s", m.name, t)
	}
}

// Done implements Machine.
func (m *WeakOrdered) Done() bool { return m.c.allDrained() && m.threadsDone() }

// AppendKey implements Machine.
func (m *WeakOrdered) AppendKey(mode KeyMode, key []byte) []byte {
	key = m.appendKeyBase(mode, key)
	key = m.c.appendKey(key, m.addrs)
	key = append(key, 'V')
	// Encode effective reservations, sorted by address for canonicity.
	addrs := make([]mem.Addr, 0, len(m.resv))
	for a := range m.resv {
		if m.reserver(a) >= 0 {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	key = binary.AppendUvarint(key, uint64(len(addrs)))
	for _, a := range addrs {
		key = binary.AppendUvarint(key, uint64(a))
		key = binary.AppendUvarint(key, uint64(m.reserver(a)))
	}
	return key
}

// StepInfo implements Machine. Deliveries act for the *source* processor:
// WODef1's sync stall (drained(p)) and WODef2's reservation release
// (drained(holder)) both wait only on the stalled/holding agent's own
// deliveries, which is what lets the kernel treat each processor plus its
// undelivered propagations as one agent.
func (m *WeakOrdered) StepInfo(t Transition) explore.Info {
	if t.Kind == TDeliver {
		return m.c.propInfo(int64(t.Aux), t.Proc, m.fpAddrBit)
	}
	return m.execInfo(t.Proc)
}

// Footprints implements Machine: each processor's static suffix plus the
// writes it has committed but not yet globally performed. Two gates can be
// unfrozen by other agents and are declared as wake footprints: a delivery
// blocked behind another source's older same-(dst,addr) propagation (woken
// by that source delivering — a write to the same address, so the agent's
// own propagation addresses as reads), and a synchronization stalled on a
// reservation (woken by the holder finishing its deliveries — writes to the
// holder's propagation addresses). Everything else (canCommit, Definition
// 1's drain stall) waits on the agent's own deliveries.
func (m *WeakOrdered) Footprints(buf []explore.AgentFootprints) []explore.AgentFootprints {
	base := len(buf)
	buf = m.appendThreadFootprints(buf)
	masks := m.c.propMasks(m.fpAddrBit)
	for p, pm := range masks {
		af := &buf[base+p]
		af.Future.Writes |= pm.bits
		af.Future.Wild = af.Future.Wild || pm.wild
		af.Wake.Reads |= pm.bits
		af.Wake.Wild = af.Wake.Wild || pm.wild
	}
	if m.mode == modeDef2 || m.mode == modeDef2DRF1 {
		for p := range m.threads {
			req, ok, err := m.pending(p)
			if err != nil || !ok || !req.Op.IsSync() {
				continue
			}
			if r := m.reserver(req.Addr); r >= 0 && r != p {
				af := &buf[base+p]
				af.Wake.Reads |= masks[r].bits
				af.Wake.Wild = af.Wake.Wild || masks[r].wild
			}
		}
	}
	return buf
}

// Final implements Machine.
func (m *WeakOrdered) Final() *program.FinalState { return m.finalState(m.c.data[0]) }

// Result implements Machine.
func (m *WeakOrdered) Result() mem.Result { return m.result(m.c.data[0]) }
