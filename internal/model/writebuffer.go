package model

import (
	"encoding/binary"
	"fmt"

	"weakorder/internal/explore"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// bufferDepth is the write-buffer capacity: a processor stalls issuing
// further writes once this many are pending. Finite depth matches real
// hardware and keeps spin-loop state spaces bounded.
const bufferDepth = 8

// wbEntry is one buffered write awaiting retirement to memory.
type wbEntry struct {
	addr    mem.Addr
	value   mem.Value
	opIndex int
}

// WriteBuffer models a shared-bus system (with or without per-processor
// caches kept coherent by the bus) in which each processor retires writes
// through a FIFO write buffer while reads are allowed to pass buffered
// writes — the relaxation Figure 1 names for configurations 1 and 3. A read
// forwards from the newest buffered write to the same address (preserving
// uniprocessor dependencies, condition 1 of Section 5.1); otherwise it reads
// memory directly, possibly ahead of older buffered writes.
//
// Synchronization operations drain the buffer first and then execute
// atomically, so the machine is strongly ordered at synchronization — it is
// the classic processor-consistent/TSO-like hardware that violates plain SC
// on Dekker-style races but appears SC to DRF0 programs.
type WriteBuffer struct {
	base
	memory  map[mem.Addr]mem.Value
	buffers [][]wbEntry
	// delays, when non-nil, holds per thread a map from op index to the
	// earlier op indices that must have retired first — the enforcement
	// half of Shasha & Snir's delay-set analysis (internal/delayset). Only
	// buffered writes can be unretired on this machine, so the gate checks
	// the buffer.
	delays []map[int][]int
}

// NewWriteBuffer builds the machine. name lets Figure-1 configurations 1 and
// 3 (without/with caches) present themselves distinctly; pass "" for the
// default.
func NewWriteBuffer(p *program.Program, name string) *WriteBuffer {
	if name == "" {
		name = "bus+writebuffer"
	}
	return &WriteBuffer{
		base:    newBase(name, p),
		memory:  initMem(p),
		buffers: make([][]wbEntry, p.NumThreads()),
	}
}

// NewWriteBufferDelays builds a write-buffer machine that additionally
// enforces a delay set: delays[t][k] lists the op indices of thread t that
// must have retired from the buffer before op k may issue. With the delay set
// computed by internal/delayset, the machine appears sequentially consistent
// to the analyzed program (Shasha & Snir's guarantee).
func NewWriteBufferDelays(p *program.Program, delays []map[int][]int) *WriteBuffer {
	m := NewWriteBuffer(p, "bus+writebuffer+delays")
	m.delays = delays
	return m
}

// delayBlocked reports whether thread p's pending op (at its current op
// index) must wait for a delayed predecessor still sitting in the buffer.
func (m *WriteBuffer) delayBlocked(p int) bool {
	if m.delays == nil || p >= len(m.delays) {
		return false
	}
	befores := m.delays[p][m.threads[p].OpIndex]
	for _, u := range befores {
		for _, e := range m.buffers[p] {
			if e.opIndex == u {
				return true
			}
		}
	}
	return false
}

// Clone implements Machine.
func (m *WriteBuffer) Clone() Machine {
	c := &WriteBuffer{
		base:    m.cloneBase(),
		memory:  copyMem(m.memory),
		buffers: make([][]wbEntry, len(m.buffers)),
		delays:  m.delays, // immutable after construction: share, don't copy
	}
	for i, b := range m.buffers {
		c.buffers[i] = append([]wbEntry(nil), b...)
	}
	return c
}

// Transitions implements Machine.
func (m *WriteBuffer) Transitions() []Transition {
	var ts []Transition
	for p := range m.threads {
		if len(m.buffers[p]) > 0 {
			ts = append(ts, Transition{Kind: TDrain, Proc: p})
		}
		req, ok, err := m.pending(p)
		if err != nil || !ok {
			continue
		}
		if req.Op.IsSync() && len(m.buffers[p]) > 0 {
			// A synchronization operation waits for the buffer to drain; it
			// is not an enabled execution step yet.
			continue
		}
		if req.Op == mem.OpWrite && len(m.buffers[p]) >= bufferDepth {
			continue // buffer full: the processor stalls until a drain
		}
		if m.delayBlocked(p) {
			continue // delay-set enforcement: a predecessor must retire first
		}
		ts = append(ts, Transition{Kind: TExec, Proc: p})
	}
	return ts
}

// Apply implements Machine.
func (m *WriteBuffer) Apply(t Transition) error {
	switch t.Kind {
	case TDrain:
		if len(m.buffers[t.Proc]) == 0 {
			return fmt.Errorf("writebuffer: P%d drain with empty buffer", t.Proc)
		}
		e := m.buffers[t.Proc][0]
		m.buffers[t.Proc] = m.buffers[t.Proc][1:]
		m.memory[e.addr] = e.value
		m.record(t.Proc, e.opIndex, program.Request{Op: mem.OpWrite, Addr: e.addr, Data: e.value}, 0, e.value)
		return nil
	case TExec:
		req, ok, err := m.pending(t.Proc)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("writebuffer: P%d has no pending operation", t.Proc)
		}
		switch {
		case req.Op == mem.OpWrite:
			// Enqueue; the thread proceeds immediately. The write is
			// recorded when it retires (its completion point).
			m.buffers[t.Proc] = append(m.buffers[t.Proc], wbEntry{
				addr: req.Addr, value: req.Data, opIndex: m.threads[t.Proc].OpIndex,
			})
			m.threads[t.Proc].Resolve(0)
			return nil
		case req.Op == mem.OpRead:
			// Forward from the newest buffered write to the same address,
			// else bypass the buffer and read memory.
			v, found := mem.Value(0), false
			for i := len(m.buffers[t.Proc]) - 1; i >= 0; i-- {
				if m.buffers[t.Proc][i].addr == req.Addr {
					v, found = m.buffers[t.Proc][i].value, true
					break
				}
			}
			if !found {
				v = m.memory[req.Addr]
			}
			m.resolve(t.Proc, req, v, 0)
			return nil
		default:
			// Synchronization: buffer already drained (Transitions gates
			// this); execute atomically against memory.
			if len(m.buffers[t.Proc]) > 0 {
				return fmt.Errorf("writebuffer: sync op with non-empty buffer on P%d", t.Proc)
			}
			old := m.memory[req.Addr]
			var wv mem.Value
			if req.Op.Writes() {
				wv = req.NewValue(old)
				m.memory[req.Addr] = wv
			}
			m.resolve(t.Proc, req, old, wv)
			return nil
		}
	default:
		return fmt.Errorf("writebuffer: unexpected transition %s", t)
	}
}

// Done implements Machine.
func (m *WriteBuffer) Done() bool {
	if !m.threadsDone() {
		return false
	}
	for _, b := range m.buffers {
		if len(b) > 0 {
			return false
		}
	}
	return true
}

// AppendKey implements Machine.
func (m *WriteBuffer) AppendKey(mode KeyMode, key []byte) []byte {
	key = m.appendKeyBase(mode, key)
	key = append(key, 'M')
	key = appendMem(key, m.addrs, m.memory)
	key = append(key, 'B')
	for _, b := range m.buffers {
		key = binary.AppendUvarint(key, uint64(len(b)))
		for _, e := range b {
			key = binary.AppendUvarint(key, uint64(e.addr))
			key = binary.AppendVarint(key, int64(e.value))
			key = binary.AppendUvarint(key, uint64(e.opIndex))
		}
	}
	return key
}

// StepInfo implements Machine. A drain retires the head buffered write, an
// access by the buffering processor (its agent): draining is only gated by
// the processor's own buffer, so every step of an agent is enabled or
// waitable on the agent itself.
func (m *WriteBuffer) StepInfo(t Transition) explore.Info {
	if t.Kind == TDrain {
		if b := m.buffers[t.Proc]; len(b) > 0 {
			info := explore.Info{Agent: t.Proc, Addr: b[0].addr, Op: mem.OpWrite}
			info.AddrBit, _ = m.fpAddrBit(b[0].addr)
			return info
		}
		return explore.Info{Agent: t.Proc, Opaque: true}
	}
	return m.execInfo(t.Proc)
}

// Footprints implements Machine: each processor's static suffix plus the
// writes still sitting in its buffer. Wake footprints stay empty — every
// enabling gate (buffer room, sync drain, delay sets) depends on the
// processor's own buffer alone.
func (m *WriteBuffer) Footprints(buf []explore.AgentFootprints) []explore.AgentFootprints {
	base := len(buf)
	buf = m.appendThreadFootprints(buf)
	for p, b := range m.buffers {
		fp := &buf[base+p].Future
		for _, e := range b {
			if bit, ok := m.fpAddrBit(e.addr); ok {
				fp.Writes |= bit
			} else {
				fp.Wild = true
			}
		}
	}
	return buf
}

// Final implements Machine.
func (m *WriteBuffer) Final() *program.FinalState { return m.finalState(m.memory) }

// Result implements Machine.
func (m *WriteBuffer) Result() mem.Result { return m.result(m.memory) }
