package model

import (
	"encoding/binary"
	"fmt"
	"sort"

	"weakorder/internal/explore"
	"weakorder/internal/mem"
)

// prop is one pending propagation of a committed write to one destination
// processor's copy of memory.
type prop struct {
	seq   int64 // global commit order of the originating write
	src   int
	dst   int
	addr  mem.Addr
	value mem.Value
}

// copies is the shared substrate of the cache-based machines (NonAtomic,
// WODef1, WODef2): every processor owns a full copy of memory; a write
// commits by updating the writer's copy and becomes globally performed once
// its propagations have reached every other copy. Writes to the same location
// are serialized by commit order (condition 2 of Section 5.1): a stale
// propagation arriving after a newer write never overwrites it, mirroring a
// real invalidation-based protocol in which the stale write's line would have
// been invalidated.
type copies struct {
	nproc   int
	data    []map[mem.Addr]mem.Value
	stamp   []map[mem.Addr]int64 // per copy: commit seq of last applied write per addr
	pending []prop
	nextSeq int64
	// outstanding counts, per source processor, propagations not yet
	// delivered — the Section-5.3 counter ("a positive value indicates the
	// number of outstanding accesses").
	outstanding []int
	// window bounds outstanding per processor, modeling finite miss/buffer
	// resources (cf. the paper's bounded number of cache misses while a
	// line is reserved). Besides realism, the bound keeps spin loops from
	// generating unboundedly long pending lists, which would make the
	// explored state space infinite.
	window int
}

// DefaultWindow is the per-processor bound on outstanding (committed but not
// globally performed) writes in the copies-based machines.
const DefaultWindow = 8

func newCopies(nproc int, init map[mem.Addr]mem.Value) *copies {
	c := &copies{nproc: nproc, outstanding: make([]int, nproc), window: DefaultWindow}
	for p := 0; p < nproc; p++ {
		c.data = append(c.data, copyMem(init))
		c.stamp = append(c.stamp, make(map[mem.Addr]int64))
	}
	return c
}

// canCommit reports whether processor p has window room for another
// committed-but-unperformed write (which enqueues nproc-1 propagations).
func (c *copies) canCommit(p int) bool {
	return c.outstanding[p]+(c.nproc-1) <= c.window*(c.nproc-1)
}

func (c *copies) clone() *copies {
	n := &copies{
		nproc:       c.nproc,
		pending:     append([]prop(nil), c.pending...),
		nextSeq:     c.nextSeq,
		outstanding: append([]int(nil), c.outstanding...),
		window:      c.window,
	}
	for p := 0; p < c.nproc; p++ {
		n.data = append(n.data, copyMem(c.data[p]))
		st := make(map[mem.Addr]int64, len(c.stamp[p]))
		for a, s := range c.stamp[p] {
			st[a] = s
		}
		n.stamp = append(n.stamp, st)
	}
	return n
}

// read returns processor p's view of addr.
func (c *copies) read(p int, a mem.Addr) mem.Value { return c.data[p][a] }

// commitWrite commits a write by processor p: p's own copy updates
// immediately; propagations to every other copy are enqueued. Returns the
// commit sequence number.
func (c *copies) commitWrite(p int, a mem.Addr, v mem.Value) int64 {
	c.nextSeq++
	seq := c.nextSeq
	c.data[p][a] = v
	c.stamp[p][a] = seq
	for q := 0; q < c.nproc; q++ {
		if q == p {
			continue
		}
		c.pending = append(c.pending, prop{seq: seq, src: p, dst: q, addr: a, value: v})
		c.outstanding[p]++
	}
	return seq
}

// atomicWrite applies a write to every copy at once (used for strongly
// ordered synchronization operations, whose line the issuer holds exclusively
// so that commit and global performance coincide).
func (c *copies) atomicWrite(p int, a mem.Addr, v mem.Value) {
	c.nextSeq++
	for q := 0; q < c.nproc; q++ {
		c.data[q][a] = v
		c.stamp[q][a] = c.nextSeq
	}
}

// deliverable reports whether pending[i] may be delivered now: it must be the
// oldest pending propagation for its (dst, addr) pair so that each copy
// observes same-location writes in commit order.
func (c *copies) deliverable(i int) bool {
	m := c.pending[i]
	for j := range c.pending {
		o := c.pending[j]
		if o.dst == m.dst && o.addr == m.addr && o.seq < m.seq {
			return false
		}
	}
	return true
}

// deliver applies pending propagation with the given seq/dst, dropping it if
// a newer same-location write already reached the destination.
func (c *copies) deliver(seq int64, dst int) error {
	for i := range c.pending {
		m := c.pending[i]
		if m.seq != seq || m.dst != dst {
			continue
		}
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		if c.stamp[dst][m.addr] < m.seq {
			c.data[dst][m.addr] = m.value
			c.stamp[dst][m.addr] = m.seq
		}
		c.outstanding[m.src]--
		return nil
	}
	return fmt.Errorf("copies: no pending propagation seq=%d dst=%d", seq, dst)
}

// drained reports whether processor p has no outstanding propagations, i.e.
// all its committed writes are globally performed (the counter reads zero).
func (c *copies) drained(p int) bool { return c.outstanding[p] == 0 }

// allDrained reports whether nothing is pending anywhere.
func (c *copies) allDrained() bool { return len(c.pending) == 0 }

// appendKey canonically encodes the substrate state. Raw sequence numbers
// are excluded (they differ between equivalent states reached along
// different paths); what delivery semantics actually depend on is, per
// pending propagation, (a) its position among pending propagations for the
// same destination and address — deliverable() and the stale-drop rule never
// compare propagations across (dst, addr) pairs — and (b) whether it is
// still "live" (its seq exceeds the destination's current stamp, so it will
// apply rather than be dropped). Propagations are therefore encoded grouped:
// stable-sorted by (dst, addr), preserving only the in-group commit order.
// The cross-group interleaving the list order records is not state; keeping
// it out of the key makes commit steps of different processors commute at
// the key level, which the partial-order reducer relies on.
func (c *copies) appendKey(key []byte, addrs []mem.Addr) []byte {
	for p := 0; p < c.nproc; p++ {
		key = appendMem(key, addrs, c.data[p])
	}
	key = append(key, 'P')
	key = binary.AppendUvarint(key, uint64(len(c.pending)))
	idx := make([]int, len(c.pending))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		x, y := c.pending[idx[a]], c.pending[idx[b]]
		if x.dst != y.dst {
			return x.dst < y.dst
		}
		return x.addr < y.addr
	})
	for _, i := range idx {
		m := c.pending[i]
		live := byte(0)
		if m.seq > c.stamp[m.dst][m.addr] {
			live = 1
		}
		key = binary.AppendUvarint(key, uint64(m.src))
		key = binary.AppendUvarint(key, uint64(m.dst))
		key = binary.AppendUvarint(key, uint64(m.addr))
		key = binary.AppendVarint(key, int64(m.value))
		key = append(key, live)
	}
	return key
}

// propSrc returns the source processor of the pending propagation identified
// by (seq, dst), or -1.
func (c *copies) propSrc(seq int64, dst int) int {
	for _, m := range c.pending {
		if m.seq == seq && m.dst == dst {
			return m.src
		}
	}
	return -1
}

// propInfo classifies a delivery transition (Aux=seq, Proc=dst) for
// partial-order reduction: the propagation acts for its *source* processor —
// outstanding[src] is what it decrements, and every gate that can freeze on
// undelivered propagations (WODef1's sync stall, WODef2's reservation
// release, per-(dst,addr) FIFO order) waits on the source's deliveries.
func (c *copies) propInfo(seq int64, dst int, bitOf func(mem.Addr) (uint64, bool)) explore.Info {
	for _, m := range c.pending {
		if m.seq == seq && m.dst == dst {
			info := explore.Info{Agent: m.src, Addr: m.addr, Op: mem.OpWrite}
			info.AddrBit, _ = bitOf(m.addr)
			return info
		}
	}
	return explore.Info{Agent: dst, Opaque: true}
}

// propMask is the address footprint of one processor's pending propagations.
type propMask struct {
	bits uint64
	wild bool
}

// propMasks returns, per source processor, the addresses of its undelivered
// propagations (wild when an address has no dense bit).
func (c *copies) propMasks(bitOf func(mem.Addr) (uint64, bool)) []propMask {
	masks := make([]propMask, c.nproc)
	for _, m := range c.pending {
		if bit, ok := bitOf(m.addr); ok {
			masks[m.src].bits |= bit
		} else {
			masks[m.src].wild = true
		}
	}
	return masks
}
