package model

// Unit tests for the contract the partial-order reduction rests on: when two
// enabled transitions are independent per their declared StepInfo, applying
// them in either order must land in key-identical states (and the second must
// stay enabled, under the same identity, after the first) — and every enabled
// step must be covered by its agent's declared future footprint. The POR and
// width sweeps in internal/explore pin outcome sets; these tests pin the
// per-machine declarations those sweeps rely on, so a broken footprint is
// reported as "machine X, state K, steps s1/s2" instead of a corpus-level
// outcome diff.

import (
	"fmt"
	"testing"

	"weakorder/internal/explore"
	"weakorder/internal/program"
)

// commuteFactories is the per-machine table the commutation tests sweep:
// every standard machine plus the broken fixtures (POR must be sound on those
// too, or the fuzzing pipeline could mask their violations).
func commuteFactories() []struct {
	name string
	mk   func(*program.Program) Machine
} {
	return []struct {
		name string
		mk   func(*program.Program) Machine
	}{
		{"SC", func(p *program.Program) Machine { return NewSC(p) }},
		{"bus+writebuffer", func(p *program.Program) Machine { return NewWriteBuffer(p, "") }},
		{"network-nocache", func(p *program.Program) Machine { return NewNetwork(p) }},
		{"network+cache-nonatomic", func(p *program.Program) Machine { return NewNonAtomic(p) }},
		{"WO-def1", func(p *program.Program) Machine { return NewWODef1(p) }},
		{"WO-def2", func(p *program.Program) Machine { return NewWODef2(p) }},
		{"WO-def2-drf1", func(p *program.Program) Machine { return NewWODef2DRF1(p) }},
		{"WO-def2-noreserve", func(p *program.Program) Machine { return NewWODef2NoReserve(p) }},
		{"RP3-fence", func(p *program.Program) Machine { return NewFence(p) }},
		{"tso", func(p *program.Program) Machine { return NewTSO(p) }},
		{"pso", func(p *program.Program) Machine { return NewPSO(p) }},
		{"rmo", func(p *program.Program) Machine { return NewRMO(p) }},
	}
}

// commutePrograms mixes the access kinds whose step classifications differ:
// plain data races (drain/deliver steps live here), a release fence, sync
// reads, and an RMW pair contending on one location.
func commutePrograms() []*program.Program {
	sb := program.MustParse(`
name: sb
init: x=0 y=0
thread:
    st x, 1
    ld r0, y
thread:
    st y, 1
    ld r1, x
`).Program
	sync := program.MustParse(`
name: sb-sync
init: x=0 y=0
thread:
    sync.st x, 1
    sync.ld r0, y
thread:
    sync.st y, 1
    sync.ld r1, x
`).Program
	// Sync writes followed by data loads: the shape that caught RMO's fence
	// steps failing to commute before explore.Info grew the Fence axis.
	syncData := program.MustParse(`
name: sync-sb-data
init: x=0 y=0
thread:
    sync.st x, 1
    ld r0, y
thread:
    sync.st y, 1
    ld r1, x
`).Program
	tas := program.MustParse(`
name: tas-pair
init: l=0 x=0
thread:
    tas r0, l, 1
    st x, 1
thread:
    tas r0, l, 1
    ld r1, x
`).Program
	return []*program.Program{sb, mpData(), mpRelease(), sync, syncData, tas}
}

// forEachReachable drives a bounded breadth-first enumeration of the
// machine's reachable states (KeyState granularity) and calls visit on each.
func forEachReachable(t *testing.T, m Machine, limit int, visit func(m Machine)) {
	t.Helper()
	seen := map[string]bool{Key(m, KeyState): true}
	queue := []Machine{m}
	for len(queue) > 0 && len(seen) < limit {
		cur := queue[0]
		queue = queue[1:]
		visit(cur)
		for _, tr := range cur.Transitions() {
			next := cur.Clone()
			if err := next.Apply(tr); err != nil {
				t.Fatalf("%s: apply %v: %v", cur.Name(), tr, err)
			}
			k := Key(next, KeyState)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
}

// applyPair clones m, applies first then second, and returns the pair of
// canonical keys at the given mode.
func applyPair(t *testing.T, m Machine, first, second Transition, mode KeyMode) string {
	t.Helper()
	c := m.Clone()
	if err := c.Apply(first); err != nil {
		t.Fatalf("%s: apply %v: %v", m.Name(), first, err)
	}
	found := false
	for _, tr := range c.Transitions() {
		if tr == second {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("%s: independent step %v disabled %v (enabledness must be preserved)", m.Name(), first, second)
	}
	if err := c.Apply(second); err != nil {
		t.Fatalf("%s: apply %v after %v: %v", m.Name(), second, first, err)
	}
	// Thread snapshots embed the pending-request cache flag, which depends on
	// when Transitions was last computed rather than on machine state. One
	// more Transitions call brings both application orders to the same
	// lifecycle point, so the keys compare real state only.
	c.Transitions()
	return Key(c, mode)
}

// TestFootprintIndependenceCommutes checks, machine by machine, the promise
// StepInfo makes to the kernel: at every reachable state of the table
// programs, each pair of enabled transitions that explore.Independent accepts
// must commute exactly — either application order reaches the same canonical
// key — at the key mode matching the independence flavor (sync order
// invisible for KeyState/KeyResult, visible for KeyExecution).
func TestFootprintIndependenceCommutes(t *testing.T) {
	const stateLimit = 800
	for _, f := range commuteFactories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			pairs := 0
			for _, p := range commutePrograms() {
				forEachReachable(t, f.mk(p), stateLimit, func(m Machine) {
					trs := m.Transitions()
					steps := make([]explore.Step, len(trs))
					for i, tr := range trs {
						steps[i] = explore.Step{Info: m.StepInfo(tr)}
					}
					for i := 0; i < len(trs); i++ {
						for j := i + 1; j < len(trs); j++ {
							for _, mode := range []KeyMode{KeyState, KeyResult, KeyExecution} {
								if !explore.Independent(steps[i], steps[j], mode >= KeyExecution) {
									continue
								}
								ab := applyPair(t, m, trs[i], trs[j], mode)
								ba := applyPair(t, m, trs[j], trs[i], mode)
								if ab != ba {
									t.Fatalf("%s on %s: steps %v (%+v) and %v (%+v) declared independent but do not commute at mode %d:\n %x\n %x",
										f.name, p.Name, trs[i], steps[i].Info, trs[j], steps[j].Info, mode, ab, ba)
								}
								pairs++
							}
						}
					}
				})
			}
			if pairs == 0 {
				t.Fatalf("%s: no independent pair was ever exercised — the sweep is vacuous", f.name)
			}
		})
	}
}

// TestFootprintsCoverEnabledSteps checks the other half of the contract: the
// per-agent future footprint each machine declares must cover every step the
// agent can currently take — a step reading or writing a location outside the
// declared footprint would let the persistent-set construction drop a
// dependent transition.
func TestFootprintsCoverEnabledSteps(t *testing.T) {
	const stateLimit = 800
	for _, f := range commuteFactories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			for _, p := range commutePrograms() {
				forEachReachable(t, f.mk(p), stateLimit, func(m Machine) {
					fps := m.Footprints(nil)
					for _, tr := range m.Transitions() {
						info := m.StepInfo(tr)
						if info.Agent < 0 || info.Agent >= len(fps) {
							t.Fatalf("%s on %s: step %v names agent %d outside the %d declared footprints",
								f.name, p.Name, tr, info.Agent, len(fps))
						}
						fp := fps[info.Agent].Future
						if err := covers(fp, info); err != nil {
							t.Fatalf("%s on %s: step %v (%+v) escapes agent %d's future footprint %+v: %v",
								f.name, p.Name, tr, info, info.Agent, fp, err)
						}
					}
				})
			}
		})
	}
}

// covers reports whether a declared footprint over-approximates one concrete
// step classification.
func covers(fp explore.Footprint, info explore.Info) error {
	if info.Opaque {
		if !fp.Opaque {
			return fmt.Errorf("opaque step but Opaque unset")
		}
		return nil
	}
	if info.Op.IsSync() && !fp.Sync {
		return fmt.Errorf("sync step but Sync unset")
	}
	if info.Fence && !fp.Fence {
		return fmt.Errorf("fence step but Fence unset")
	}
	if fp.Wild {
		return nil
	}
	if info.AddrBit == 0 {
		// The address universe overflowed the dense indexing; the machine must
		// have degraded the footprint to Wild (handled above) for soundness.
		return fmt.Errorf("step has no address bit but footprint is not Wild")
	}
	if info.Op.Reads() && fp.Reads&info.AddrBit == 0 {
		return fmt.Errorf("read of x%d not in Reads", info.Addr)
	}
	if info.Op.Writes() && fp.Writes&info.AddrBit == 0 {
		return fmt.Errorf("write of x%d not in Writes", info.Addr)
	}
	return nil
}
