package model

import (
	"errors"
	"testing"

	"weakorder/internal/core"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// sb is the store-buffering program (Figure 1 shape).
func sb() *program.Program {
	return program.MustParse(`
name: sb
init: x=0 y=0
thread:
    st x, 1
    ld r0, y
thread:
    st y, 1
    ld r1, x
`).Program
}

// bothZero detects the SC-violating outcome on a final state (thread 0 loads
// into r0, thread 1 into r1).
func bothZero(fs *program.FinalState) bool {
	return fs.Regs[0][0] == 0 && fs.Regs[1][1] == 0
}

func TestSCMachineEnumeratesAllInterleavings(t *testing.T) {
	x := &Explorer{}
	seen := map[string]bool{}
	_, err := x.FinalStates(NewSC(sb()), func(fs *program.FinalState) bool {
		key := ""
		if fs.Regs[0][0] == 1 {
			key += "a"
		}
		if fs.Regs[1][1] == 1 {
			key += "b"
		}
		if bothZero(fs) {
			t.Error("SC machine produced the store-buffering violation")
		}
		seen[key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// SC allows exactly (r0,r1) in {(0,1),(1,0),(1,1)}.
	if len(seen) != 3 {
		t.Errorf("distinct SC outcomes = %d, want 3", len(seen))
	}
}

func TestWriteBufferAllowsSB(t *testing.T) {
	x := &Explorer{}
	found := false
	_, err := x.FinalStates(NewWriteBuffer(sb(), ""), func(fs *program.FinalState) bool {
		if bothZero(fs) {
			found = true
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("write buffer should allow both-zero (reads pass buffered writes)")
	}
}

func TestMachinesRecordValidTraces(t *testing.T) {
	mks := []func(*program.Program) Machine{
		func(p *program.Program) Machine { return NewSC(p) },
		func(p *program.Program) Machine { return NewWriteBuffer(p, "") },
		func(p *program.Program) Machine { return NewNetwork(p) },
		func(p *program.Program) Machine { return NewNonAtomic(p) },
		func(p *program.Program) Machine { return NewWODef1(p) },
		func(p *program.Program) Machine { return NewWODef2(p) },
		func(p *program.Program) Machine { return NewWODef2DRF1(p) },
		func(p *program.Program) Machine { return NewWODef2NoReserve(p) },
		func(p *program.Program) Machine { return NewTSO(p) },
		func(p *program.Program) Machine { return NewPSO(p) },
		func(p *program.Program) Machine { return NewRMO(p) },
	}
	x := &Explorer{}
	for _, mk := range mks {
		m := mk(sb())
		name := m.Name()
		checked := 0
		_, err := x.Visit(m, func(f Machine) bool {
			checked++
			if err := f.Trace().Validate(); err != nil {
				t.Errorf("%s: invalid trace: %v", name, err)
				return false
			}
			if f.Trace().Len() != 4 {
				t.Errorf("%s: trace has %d events, want 4", name, f.Trace().Len())
			}
			return checked < 5
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if checked == 0 {
			t.Errorf("%s: no final states", name)
		}
	}
}

// TestSCTraceIsIdealized: every SC trace verifies as an SC witness of itself,
// and for a DRF0 program additionally satisfies the Lemma-1 read-value
// condition (on racy programs like sb the hb-last write is not defined, so
// Lemma 1 is only asserted on the race-free message-passing program).
func TestSCTraceIsIdealized(t *testing.T) {
	x := &Explorer{Mode: KeyExecution, MaxTraceOps: 16}
	_, err := x.Visit(NewSC(sb()), func(f Machine) bool {
		if err := core.VerifyWitness(f.Trace(), nil, f.Trace().Completed); err != nil {
			t.Errorf("SC completion order is not a witness: %v", err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	mp := program.MustParse(`
name: mp
init: d=0 f=0
thread:
    st d, 1
    sync.st f, 1
thread:
wait:
    sync.ld r0, f
    beq r0, 0, wait
    ld r1, d
`).Program
	_, err = x.Visit(NewSC(mp), func(f Machine) bool {
		ord, err := core.BuildOrders(f.Trace(), core.DRF0{})
		if err != nil {
			t.Fatalf("orders: %v", err)
		}
		if rep := core.CheckLemma1(ord, nil); !rep.OK() {
			t.Errorf("DRF0 SC trace violates Lemma 1: %s\n%s", rep, f.Trace())
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOutcomesKeyedByResult(t *testing.T) {
	x := &Explorer{}
	out, st, err := x.Outcomes(NewSC(sb()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("SC result set = %d, want 3", len(out))
	}
	if st.States == 0 || st.Finals < 3 {
		t.Errorf("stats look wrong: %s", st)
	}
}

func TestEnumeratorProducesDistinctSyncOrders(t *testing.T) {
	// Two sync writers to one location: two distinct sync completion orders
	// even though the final state coincides... (values differ, so results
	// differ too); the execution enumeration must yield both.
	p := program.MustParse(`
name: syncorder
init: s=0
thread:
    sync.st s, 1
thread:
    sync.st s, 2
`).Program
	e := &Enumerator{Prog: p}
	count := 0
	orders := map[string]bool{}
	if err := e.IdealizedExecutions(func(ex *mem.Execution) bool {
		count++
		first := ex.Event(ex.Completed[0])
		orders[first.Access.String()] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(orders) != 2 {
		t.Errorf("distinct first-completions = %d, want 2 (both sync orders)", len(orders))
	}
	_ = count
}

func TestExplorerStateBudget(t *testing.T) {
	x := &Explorer{MaxStates: 3}
	_, err := x.FinalStates(NewNetwork(sb()), func(*program.FinalState) bool { return true })
	if !errors.Is(err, ErrStateBudget) {
		t.Fatalf("err = %v, want ErrStateBudget", err)
	}
}

func TestExplorerTraceBound(t *testing.T) {
	// An unbounded TAS spin with history keying terminates only via the
	// trace bound.
	p := program.MustParse(`
name: spin
init: s=1
thread:
spin:
    tas r0, s, 1
    bne r0, 0, spin
`).Program
	x := &Explorer{Mode: KeyExecution, MaxTraceOps: 10}
	st, err := x.Visit(NewSC(p), func(Machine) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated == 0 {
		t.Error("expected truncated paths for the endless spin")
	}
}

func TestWindowBoundStallsWriters(t *testing.T) {
	// A thread writing many distinct locations cannot have more than the
	// window outstanding: after `window` writes with no deliveries, the
	// only transitions are deliveries.
	b := program.NewBuilder("writer")
	b.Thread()
	for i := 0; i < DefaultWindow+4; i++ {
		b.Store(mem.Addr(i), program.Imm(1))
	}
	b.Halt()
	b.Thread().Halt() // a second processor so writes actually propagate
	p := b.MustBuild()
	mach := NewNonAtomic(p)
	// Apply exec transitions greedily while available, never delivering.
	writes := 0
	for {
		ts := mach.Transitions()
		var exec *Transition
		for i := range ts {
			if ts[i].Kind == TExec && ts[i].Proc == 0 {
				exec = &ts[i]
				break
			}
		}
		if exec == nil {
			break
		}
		if err := mach.Apply(*exec); err != nil {
			t.Fatal(err)
		}
		writes++
		if writes > DefaultWindow+1 {
			t.Fatalf("issued %d writes without any delivery; window not enforced", writes)
		}
	}
	if writes != DefaultWindow {
		t.Errorf("greedy writes = %d, want %d", writes, DefaultWindow)
	}
}

func TestWODef2ReservationBlocksOtherSyncs(t *testing.T) {
	// P0: write x (left pending), sync on s -> reservation. P1's sync on s
	// must not be enabled until P0's write propagates.
	p := program.MustParse(`
name: resv
init: x=0 s=0
thread:
    st x, 1
    sync.st s, 1
thread:
    sync.st s, 2
`).Program
	m := NewWODef2(p)
	apply := func(tr Transition) {
		if err := m.Apply(tr); err != nil {
			t.Fatal(err)
		}
	}
	// P0 writes x (commit, prop pending) then syncs s.
	apply(Transition{Kind: TExec, Proc: 0})
	apply(Transition{Kind: TExec, Proc: 0})
	// Now P1's sync must be absent from the enabled set.
	for _, tr := range m.Transitions() {
		if tr.Kind == TExec && tr.Proc == 1 {
			t.Fatal("P1's sync enabled despite P0's reservation")
		}
	}
	// Deliver P0's propagation; P1 becomes enabled.
	ts := m.Transitions()
	delivered := false
	for _, tr := range ts {
		if tr.Kind == TDeliver {
			apply(tr)
			delivered = true
			break
		}
	}
	if !delivered {
		t.Fatal("no delivery available")
	}
	found := false
	for _, tr := range m.Transitions() {
		if tr.Kind == TExec && tr.Proc == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("P1's sync still blocked after the reservation drained")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewWODef2(sb())
	ts := m.Transitions()
	if len(ts) == 0 {
		t.Fatal("no transitions")
	}
	c := m.Clone()
	if err := c.Apply(ts[0]); err != nil {
		t.Fatal(err)
	}
	if Key(m, KeyState) == Key(c, KeyState) {
		t.Error("applying a transition to the clone should change its key")
	}
	m2 := m.Clone()
	if Key(m, KeyState) != Key(m2, KeyState) {
		t.Error("fresh clone should key identically")
	}
}

func TestNonAtomicDeliversLastWriterWins(t *testing.T) {
	// Two writers to one location: after draining, all copies agree on the
	// later commit regardless of delivery interleaving.
	p := program.MustParse(`
name: ww
init: x=0
thread:
    st x, 1
thread:
    st x, 2
`).Program
	x := &Explorer{}
	_, err := x.Visit(NewNonAtomic(p), func(f Machine) bool {
		na := f.(*NonAtomic)
		v0 := na.c.data[0][mem.Addr(0)]
		v1 := na.c.data[1][mem.Addr(0)]
		if v0 != v1 {
			t.Errorf("copies diverge after drain: %d vs %d", v0, v1)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestHashedKeysMatchFullKeys cross-checks the production digest-deduplicated
// exploration against the collision-free full-key debug mode: on a spread of
// machines and key modes both must visit exactly the same number of states,
// transitions and finals.
func TestHashedKeysMatchFullKeys(t *testing.T) {
	mp := program.MustParse(`
name: mp
init: d=0 f=0
thread:
    st d, 1
    sync.st f, 1
thread:
wait:
    sync.ld r0, f
    beq r0, 0, wait
    ld r1, d
`).Program
	progs := []*program.Program{sb(), mp}
	machines := []func(*program.Program) Machine{
		func(p *program.Program) Machine { return NewSC(p) },
		func(p *program.Program) Machine { return NewWriteBuffer(p, "") },
		func(p *program.Program) Machine { return NewNetwork(p) },
		func(p *program.Program) Machine { return NewNonAtomic(p) },
		func(p *program.Program) Machine { return NewWODef2(p) },
		func(p *program.Program) Machine { return NewTSO(p) },
		func(p *program.Program) Machine { return NewPSO(p) },
		func(p *program.Program) Machine { return NewRMO(p) },
	}
	for _, p := range progs {
		for _, mk := range machines {
			for _, mode := range []KeyMode{KeyState, KeyResult, KeyExecution} {
				hashed := &Explorer{Mode: mode, MaxTraceOps: 24}
				full := &Explorer{Mode: mode, MaxTraceOps: 24, FullKeys: true}
				hs, err := hashed.Visit(mk(p), func(Machine) bool { return true })
				if err != nil {
					t.Fatalf("%s mode %d hashed: %v", mk(p).Name(), mode, err)
				}
				fs, err := full.Visit(mk(p), func(Machine) bool { return true })
				if err != nil {
					t.Fatalf("%s mode %d full: %v", mk(p).Name(), mode, err)
				}
				if hs != fs {
					t.Errorf("%s on %s mode %d: hashed stats %+v != full-key stats %+v",
						mk(p).Name(), p.Name, mode, hs, fs)
				}
			}
		}
	}
}
