// Package metrics is the cycle-level observability layer of the timed
// machine: when enabled it attributes every processor cycle to one of
// {compute, reserve-stall, counter-stall, fence-stall, retry-backoff, idle},
// counts fabric traffic per message class, tracks per-line reserve-bit and
// directory occupancy, and exports both aggregate tables (internal/stats) and
// a Chrome trace-event timeline (one track per processor plus the directory).
//
// Zero overhead when disabled: every hook is a method on *Recorder that
// returns immediately on a nil receiver, the machine only allocates a
// Recorder when Config.Metrics is set, and the fabric tap is only interposed
// then. Recording itself never schedules simulator events — the Recorder
// holds a sim.Clock, not the engine — so an instrumented run dispatches
// exactly the same event stream as a bare one.
//
// Cycle-attribution taxonomy (per processor, covering [0, finish)):
//
//   - compute:       local work (explicit Nop delays) and the one-cycle
//     issue/complete pipeline cost of each operation.
//   - counter-stall: waiting for the outstanding-access counter to read zero
//     (Definition 1's synchronization issue condition).
//   - fence-stall:   post-commit waits for global performance — SC's
//     stall-until-performed and Definition 1's condition 3. The stall a
//     fence would cost, hence the name.
//   - reserve-stall: the span the processor's synchronization request spent
//     parked in a remote owner's stalled-request queue behind a Section-5.3
//     reserve bit (attributed to the requester, where the cycles are lost).
//   - retry-backoff: the part of a memory wait that overlapped the
//     transaction's retransmission schedule — NACK backoff sleeps and
//     re-flight windows of resent requests (faults mode only).
//   - idle:          the remainder — waiting on the memory system for data
//     or ownership with nothing to overlap.
//
// The first four are recorded directly by the processor front-end, which is
// sequential, so its spans never overlap. reserve-stall and retry-backoff are
// recorded by the cache layer and carved out of the enclosing memory-wait
// spans at report time (reserve-stall wins where both overlap); what remains
// of a memory wait is idle. idle is then the exact closure
// finish − (sum of the other five), so the attribution always totals the
// processor's lifetime.
package metrics

import (
	"fmt"
	"sort"

	"weakorder/internal/mem"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
)

// Class is one cycle-attribution bucket.
type Class uint8

const (
	// ClassCompute is local work and per-op pipeline cost.
	ClassCompute Class = iota
	// ClassReserveStall is time parked behind a remote reserve bit.
	ClassReserveStall
	// ClassCounterStall is Definition 1's counter-zero issue wait.
	ClassCounterStall
	// ClassFenceStall is a post-commit wait for global performance.
	ClassFenceStall
	// ClassRetryBackoff is wait time overlapping the retry schedule.
	ClassRetryBackoff
	// ClassIdle is the uninstrumented remainder of a memory wait.
	ClassIdle
	// NumClasses is the bucket count.
	NumClasses = int(ClassIdle) + 1
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassCompute:
		return "compute"
	case ClassReserveStall:
		return "reserve-stall"
	case ClassCounterStall:
		return "counter-stall"
	case ClassFenceStall:
		return "fence-stall"
	case ClassRetryBackoff:
		return "retry-backoff"
	case ClassIdle:
		return "idle"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// spanKind distinguishes raw recorded spans; memory waits are not a final
// class — they are carved into reserve-stall / retry-backoff / idle pieces at
// report time.
type spanKind uint8

const (
	kindCompute spanKind = iota
	kindCounter
	kindFence
	kindMemWait
	kindReserve
	kindBackoff
)

// span is one recorded interval. proc is the processor the cycles are
// attributed to; seq breaks rendering ties deterministically.
type span struct {
	proc     int
	kind     spanKind
	addr     mem.Addr
	sync     bool
	from, to sim.Time
	seq      uint64
}

// dirSpan is one directory transaction occupancy interval.
type dirSpan struct {
	addr     mem.Addr
	label    string
	from, to sim.Time
	seq      uint64
}

// msgSpan is one fabric message lifetime (send to delivery).
type msgSpan struct {
	src, dst  int
	class     string
	addr      mem.Addr
	sent      sim.Time
	delivered sim.Time
	done      bool
	seq       uint64
}

// Recorder collects raw observations during a run. All hook methods are safe
// on a nil receiver (they do nothing), which is how the instrumented
// components stay zero-overhead when metrics are off.
type Recorder struct {
	clock  sim.Clock
	nprocs int
	seq    uint64

	spans []span // processor cycle spans (all kinds)

	reserveOpen map[[2]int64]sim.Time // (cache, addr) -> set time
	reserveHist map[mem.Addr]*stats.Histogram
	reserveSets map[mem.Addr]int64

	dirOpen  map[mem.Addr]dirSpan
	dirSpans []dirSpan
	dirHist  map[mem.Addr]*stats.Histogram

	msgClasses *stats.Counters
	msgs       []msgSpan
	pending    map[[2]int][]int // (src,dst) -> indices of in-flight msgs
}

// NewRecorder returns a recorder for a machine with nprocs processors
// reading time from clock.
func NewRecorder(clock sim.Clock, nprocs int) *Recorder {
	return &Recorder{
		clock:       clock,
		nprocs:      nprocs,
		reserveOpen: make(map[[2]int64]sim.Time),
		reserveHist: make(map[mem.Addr]*stats.Histogram),
		reserveSets: make(map[mem.Addr]int64),
		dirOpen:     make(map[mem.Addr]dirSpan),
		dirHist:     make(map[mem.Addr]*stats.Histogram),
		msgClasses:  stats.NewCounters(),
		pending:     make(map[[2]int][]int),
	}
}

// Enabled reports whether the recorder is live (nil-safe).
func (r *Recorder) Enabled() bool { return r != nil }

func (r *Recorder) push(s span) {
	if s.to <= s.from {
		return
	}
	r.seq++
	s.seq = r.seq
	r.spans = append(r.spans, s)
}

// Compute attributes [from, to) of processor proc to local work.
func (r *Recorder) Compute(proc int, from, to sim.Time) {
	if r == nil {
		return
	}
	r.push(span{proc: proc, kind: kindCompute, from: from, to: to})
}

// CounterStall attributes [from, to) to the Definition-1 counter-zero wait.
func (r *Recorder) CounterStall(proc int, from, to sim.Time) {
	if r == nil {
		return
	}
	r.push(span{proc: proc, kind: kindCounter, from: from, to: to})
}

// FenceStall attributes [from, to) to a post-commit performance wait.
func (r *Recorder) FenceStall(proc int, from, to sim.Time) {
	if r == nil {
		return
	}
	r.push(span{proc: proc, kind: kindFence, from: from, to: to})
}

// MemWait records a raw memory-system wait of proc on addr over [from, to);
// it is carved into reserve-stall, retry-backoff and idle at report time.
func (r *Recorder) MemWait(proc int, addr mem.Addr, sync bool, from, to sim.Time) {
	if r == nil {
		return
	}
	r.push(span{proc: proc, kind: kindMemWait, addr: addr, sync: sync, from: from, to: to})
}

// ReserveStalled records that requester's synchronization request for addr
// sat parked behind a reserve bit over [from, to).
func (r *Recorder) ReserveStalled(requester int, addr mem.Addr, from, to sim.Time) {
	if r == nil {
		return
	}
	r.push(span{proc: requester, kind: kindReserve, addr: addr, from: from, to: to})
}

// Backoff records that proc's transaction for addr was in its retransmission
// schedule over [from, to); only the part overlapping an actual processor
// wait is attributed.
func (r *Recorder) Backoff(proc int, addr mem.Addr, from, to sim.Time) {
	if r == nil {
		return
	}
	r.push(span{proc: proc, kind: kindBackoff, addr: addr, from: from, to: to})
}

// ReserveSet records cache setting the reserve bit on addr.
func (r *Recorder) ReserveSet(cache int, addr mem.Addr) {
	if r == nil {
		return
	}
	r.reserveOpen[[2]int64{int64(cache), int64(addr)}] = r.clock.Now()
	r.reserveSets[addr]++
}

// ReserveCleared records cache clearing the reserve bit on addr, closing the
// occupancy interval opened by ReserveSet.
func (r *Recorder) ReserveCleared(cache int, addr mem.Addr) {
	if r == nil {
		return
	}
	key := [2]int64{int64(cache), int64(addr)}
	from, ok := r.reserveOpen[key]
	if !ok {
		return
	}
	delete(r.reserveOpen, key)
	h := r.reserveHist[addr]
	if h == nil {
		h = stats.NewHistogram()
		r.reserveHist[addr] = h
	}
	h.Observe(int64(r.clock.Now() - from))
}

// DirOpen records the directory opening a transaction for addr (label names
// the request, e.g. "GetX P1").
func (r *Recorder) DirOpen(addr mem.Addr, label string) {
	if r == nil {
		return
	}
	r.seq++
	r.dirOpen[addr] = dirSpan{addr: addr, label: label, from: r.clock.Now(), seq: r.seq}
}

// DirClosed records the directory closing the in-flight transaction for addr.
func (r *Recorder) DirClosed(addr mem.Addr) {
	if r == nil {
		return
	}
	s, ok := r.dirOpen[addr]
	if !ok {
		return
	}
	delete(r.dirOpen, addr)
	s.to = r.clock.Now()
	r.dirSpans = append(r.dirSpans, s)
	h := r.dirHist[addr]
	if h == nil {
		h = stats.NewHistogram()
		r.dirHist[addr] = h
	}
	h.Observe(int64(s.to - s.from))
}

// dirNode folds every directory-side node onto one logical track: shard
// nodes live at ids >= nprocs, and reports/timelines must not change when the
// directory's shard count does (a shard-count-invariant event stream keyed by
// raw node ids would still render different src/dst labels).
func (r *Recorder) dirNode(id int) int {
	if id > r.nprocs {
		return r.nprocs
	}
	return id
}

// MsgSent records one message entering the fabric.
func (r *Recorder) MsgSent(src, dst int, class string, addr mem.Addr) {
	if r == nil {
		return
	}
	src, dst = r.dirNode(src), r.dirNode(dst)
	r.msgClasses.Add(class, 1)
	r.seq++
	r.msgs = append(r.msgs, msgSpan{
		src: src, dst: dst, class: class, addr: addr, sent: r.clock.Now(), seq: r.seq,
	})
	key := [2]int{src, dst}
	r.pending[key] = append(r.pending[key], len(r.msgs)-1)
}

// MsgDelivered closes the oldest in-flight message on (src, dst). Pairing is
// per-link FIFO — exact on the default FIFO fabrics, best-effort under
// jitter reordering (lifetimes may swap between same-link messages; class
// counts are unaffected).
func (r *Recorder) MsgDelivered(src, dst int) {
	if r == nil {
		return
	}
	src, dst = r.dirNode(src), r.dirNode(dst)
	key := [2]int{src, dst}
	q := r.pending[key]
	if len(q) == 0 {
		return
	}
	i := q[0]
	r.pending[key] = q[1:]
	r.msgs[i].delivered = r.clock.Now()
	r.msgs[i].done = true
}

// ProcCycles is one processor's finalized cycle attribution.
type ProcCycles struct {
	Proc   int
	Finish sim.Time
	Cycles [NumClasses]int64
}

// Total sums the buckets (== Finish by construction).
func (p ProcCycles) Total() int64 {
	var n int64
	for _, c := range p.Cycles {
		n += c
	}
	return n
}

// LineOccupancy is the occupancy histogram of one line (reserve bit or
// directory transaction).
type LineOccupancy struct {
	Addr mem.Addr
	Sets int64 // occupancy intervals observed
	Hist *stats.Histogram
}

// Report is the finalized view of a run's observations.
type Report struct {
	Procs      []ProcCycles
	MsgClasses *stats.Counters
	ReserveOcc []LineOccupancy
	DirOcc     []LineOccupancy

	// timeline inputs, kept for WriteTimeline.
	events []timelineSpan
	msgs   []msgSpan
	dir    []dirSpan
	nprocs int
}

// timelineSpan is one finalized processor-track interval.
type timelineSpan struct {
	proc     int
	class    Class
	addr     mem.Addr
	hasAddr  bool
	from, to sim.Time
	seq      uint64
}

// Report finalizes the observations: memory waits are carved into
// reserve-stall / retry-backoff / idle, per-class totals are closed so every
// cycle of [0, finish) is attributed, and timeline inputs are frozen.
// finishes holds each processor's completion time.
func (r *Recorder) Report(finishes []sim.Time) *Report {
	if r == nil {
		return nil
	}
	rep := &Report{MsgClasses: r.msgClasses, nprocs: r.nprocs, dir: r.dirSpans}
	for _, m := range r.msgs {
		if m.done {
			rep.msgs = append(rep.msgs, m)
		}
	}
	// Partition the raw spans per processor.
	perProc := make([][]span, r.nprocs)
	for _, s := range r.spans {
		if s.proc < 0 || s.proc >= r.nprocs {
			continue
		}
		perProc[s.proc] = append(perProc[s.proc], s)
	}
	for p := 0; p < r.nprocs; p++ {
		var finish sim.Time
		if p < len(finishes) {
			finish = finishes[p]
		}
		pc := ProcCycles{Proc: p, Finish: finish}
		spans := perProc[p]
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].from != spans[j].from {
				return spans[i].from < spans[j].from
			}
			return spans[i].seq < spans[j].seq
		})
		var direct = map[spanKind]Class{
			kindCompute: ClassCompute, kindCounter: ClassCounterStall, kindFence: ClassFenceStall,
		}
		for _, s := range spans {
			if cl, ok := direct[s.kind]; ok {
				pc.Cycles[cl] += int64(s.to - s.from)
				rep.events = append(rep.events, timelineSpan{proc: p, class: cl, from: s.from, to: s.to, seq: s.seq})
			}
		}
		// Carve each memory wait: reserve-stall pieces first, retry-backoff
		// from what remains, idle is the rest.
		for _, w := range spans {
			if w.kind != kindMemWait {
				continue
			}
			rest := []iv{{w.from, w.to}}
			carve := func(kind spanKind, class Class) {
				var sub []iv
				for _, s := range spans {
					if s.kind != kind || s.addr != w.addr {
						continue
					}
					sub = append(sub, iv{s.from, s.to})
				}
				var kept []iv
				for _, piece := range rest {
					cut := intersectAll(piece, sub)
					for _, c := range cut {
						pc.Cycles[class] += int64(c.to - c.from)
						rep.events = append(rep.events, timelineSpan{
							proc: p, class: class, addr: w.addr, hasAddr: true, from: c.from, to: c.to, seq: w.seq,
						})
					}
					kept = append(kept, subtractAll(piece, cut)...)
				}
				rest = kept
			}
			carve(kindReserve, ClassReserveStall)
			carve(kindBackoff, ClassRetryBackoff)
			for _, piece := range rest {
				rep.events = append(rep.events, timelineSpan{
					proc: p, class: ClassIdle, addr: w.addr, hasAddr: true, from: piece.from, to: piece.to, seq: w.seq,
				})
			}
		}
		// Close the attribution: idle absorbs whatever the direct spans and
		// carved waits did not cover, so the six buckets total the lifetime.
		var covered int64
		for cl, n := range pc.Cycles {
			if Class(cl) != ClassIdle {
				covered += n
			}
		}
		idle := int64(finish) - covered
		if idle < 0 {
			idle = 0
		}
		pc.Cycles[ClassIdle] = idle
		rep.Procs = append(rep.Procs, pc)
	}
	rep.ReserveOcc = occupancies(r.reserveHist, r.reserveSets)
	dirSets := make(map[mem.Addr]int64, len(r.dirHist))
	for a, h := range r.dirHist {
		dirSets[a] = h.Count()
	}
	rep.DirOcc = occupancies(r.dirHist, dirSets)
	sort.SliceStable(rep.events, func(i, j int) bool {
		if rep.events[i].from != rep.events[j].from {
			return rep.events[i].from < rep.events[j].from
		}
		return rep.events[i].seq < rep.events[j].seq
	})
	return rep
}

// iv is a half-open interval.
type iv struct{ from, to sim.Time }

// intersectAll clips each of subs against piece, merging overlaps, returning
// the disjoint ordered intersections.
func intersectAll(piece iv, subs []iv) []iv {
	var out []iv
	for _, s := range subs {
		f, t := s.from, s.to
		if f < piece.from {
			f = piece.from
		}
		if t > piece.to {
			t = piece.to
		}
		if t > f {
			out = append(out, iv{f, t})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].from < out[j].from })
	var merged []iv
	for _, s := range out {
		if n := len(merged); n > 0 && s.from <= merged[n-1].to {
			if s.to > merged[n-1].to {
				merged[n-1].to = s.to
			}
			continue
		}
		merged = append(merged, s)
	}
	return merged
}

// subtractAll removes the (disjoint, ordered) cuts from piece.
func subtractAll(piece iv, cuts []iv) []iv {
	var out []iv
	at := piece.from
	for _, c := range cuts {
		if c.from > at {
			out = append(out, iv{at, c.from})
		}
		if c.to > at {
			at = c.to
		}
	}
	if piece.to > at {
		out = append(out, iv{at, piece.to})
	}
	return out
}

// occupancies renders per-line histograms sorted by address.
func occupancies(hists map[mem.Addr]*stats.Histogram, sets map[mem.Addr]int64) []LineOccupancy {
	addrs := make([]mem.Addr, 0, len(hists))
	for a := range hists {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := make([]LineOccupancy, 0, len(addrs))
	for _, a := range addrs {
		out = append(out, LineOccupancy{Addr: a, Sets: sets[a], Hist: hists[a]})
	}
	return out
}

// Tables renders the aggregate views in the repo's table style: cycle
// attribution, fabric traffic by class, and the occupancy histograms.
func (rep *Report) Tables() []*stats.Table {
	attr := stats.NewTable("cycle attribution (per processor)",
		"proc", "finish", "compute", "reserve-stall", "counter-stall",
		"fence-stall", "retry-backoff", "idle")
	for _, p := range rep.Procs {
		attr.Row(fmt.Sprintf("P%d", p.Proc), int64(p.Finish),
			p.Cycles[ClassCompute], p.Cycles[ClassReserveStall],
			p.Cycles[ClassCounterStall], p.Cycles[ClassFenceStall],
			p.Cycles[ClassRetryBackoff], p.Cycles[ClassIdle])
	}
	attr.Note("every cycle of a processor's lifetime lands in exactly one class")

	traffic := stats.NewTable("fabric traffic by message class", "class", "messages")
	names := rep.MsgClasses.Names()
	sort.Strings(names)
	for _, n := range names {
		traffic.Row(n, rep.MsgClasses.Get(n))
	}

	reserve := stats.NewTable("reserve-bit occupancy by line",
		"line", "sets", "cycles", "occupancy histogram")
	for _, o := range rep.ReserveOcc {
		reserve.Row(fmt.Sprintf("x%d", o.Addr), o.Sets, o.Hist.Sum(), o.Hist.String())
	}
	dir := stats.NewTable("directory occupancy by line",
		"line", "transactions", "busy cycles", "occupancy histogram")
	for _, o := range rep.DirOcc {
		dir.Row(fmt.Sprintf("x%d", o.Addr), o.Sets, o.Hist.Sum(), o.Hist.String())
	}
	return []*stats.Table{attr, traffic, reserve, dir}
}

// Stall returns the total cycles the report attributes to class across all
// processors.
func (rep *Report) Stall(class Class) int64 {
	var n int64
	for _, p := range rep.Procs {
		n += p.Cycles[class]
	}
	return n
}

// ProcStall returns proc's cycles in class (0 when out of range).
func (rep *Report) ProcStall(proc int, class Class) int64 {
	if proc < 0 || proc >= len(rep.Procs) {
		return 0
	}
	return rep.Procs[proc].Cycles[class]
}
