package metrics

import (
	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
)

// MsgInfo is what the fabric tap needs to know about one message. The
// classifier is injected by the machine (which knows the protocol's concrete
// message type) so this package never imports internal/cache.
type MsgInfo struct {
	Class string
	Addr  mem.Addr
	OK    bool
}

// Classifier maps an opaque fabric message to its class and address.
type Classifier func(msg interconnect.Message) MsgInfo

// FabricTap wraps a fabric and records every send and delivery into a
// Recorder. The machine interposes it under the fault injector, so it sees
// the traffic that actually enters the network: dropped messages never reach
// it, duplicated messages are counted twice — both are real fabric load.
type FabricTap struct {
	rec      *Recorder
	inner    interconnect.Fabric
	classify Classifier
}

// NewFabricTap wraps inner, recording into rec with classify naming each
// message.
func NewFabricTap(rec *Recorder, inner interconnect.Fabric, classify Classifier) *FabricTap {
	return &FabricTap{rec: rec, inner: inner, classify: classify}
}

// Attach implements interconnect.Fabric, wrapping the endpoint so deliveries
// are observed too.
func (t *FabricTap) Attach(id interconnect.NodeID, e interconnect.Endpoint) {
	t.inner.Attach(id, &tappedEndpoint{tap: t, id: id, inner: e})
}

// Send implements interconnect.Fabric.
func (t *FabricTap) Send(src, dst interconnect.NodeID, msg interconnect.Message) {
	if info := t.classify(msg); info.OK {
		t.rec.MsgSent(int(src), int(dst), info.Class, info.Addr)
	}
	t.inner.Send(src, dst, msg)
}

// Messages implements interconnect.Fabric.
func (t *FabricTap) Messages() uint64 { return t.inner.Messages() }

// tappedEndpoint observes deliveries before forwarding them.
type tappedEndpoint struct {
	tap   *FabricTap
	id    interconnect.NodeID
	inner interconnect.Endpoint
}

// Deliver implements interconnect.Endpoint.
func (e *tappedEndpoint) Deliver(src interconnect.NodeID, msg interconnect.Message) {
	if info := e.tap.classify(msg); info.OK {
		e.tap.rec.MsgDelivered(int(src), int(e.id))
	}
	e.inner.Deliver(src, msg)
}
