package metrics

import "testing"

// pt builds a SaturationPoint without going through a Report.
func pt(load int, compute, wait int64, throughput float64) SaturationPoint {
	return SaturationPoint{Load: load, Compute: compute, Wait: wait, Throughput: throughput}
}

// TestFindKneeSentinel pins the documented -1 sentinel on the three edge
// shapes a sweep can take before it has real knee evidence.
func TestFindKneeSentinel(t *testing.T) {
	cases := []struct {
		name   string
		points []SaturationPoint
		want   int
	}{
		{name: "empty-sweep", points: nil, want: -1},
		{name: "empty-sweep-nonnil", points: []SaturationPoint{}, want: -1},
		// One point carries no marginal-throughput evidence, even when it is
		// stall-dominated: -1, never index 0.
		{name: "single-point", points: []SaturationPoint{pt(2, 10, 100, 1.0)}, want: -1},
		{name: "single-point-unsaturated", points: []SaturationPoint{pt(2, 100, 10, 1.0)}, want: -1},
		// Monotonically improving: throughput scales linearly with load, so
		// marginal throughput never collapses below half the initial per-unit
		// rate — no knee, even though later points are stall-dominated.
		{name: "monotonically-improving", points: []SaturationPoint{
			pt(1, 100, 10, 1.0), pt(2, 100, 200, 2.0), pt(4, 100, 400, 4.0),
		}, want: -1},
		// Never stall-dominated: compute always wins, no knee regardless of
		// the throughput curve.
		{name: "never-stall-dominated", points: []SaturationPoint{
			pt(1, 100, 10, 1.0), pt(2, 100, 10, 1.1), pt(4, 100, 10, 1.1),
		}, want: -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := FindKnee(tc.points); got != tc.want {
				t.Fatalf("FindKnee(%v) = %d, want %d", tc.points, got, tc.want)
			}
		})
	}
}

// TestFindKneeLocatesCollapse pins the positive path: the knee is the first
// stall-dominated point whose marginal throughput fell below half the initial
// per-unit rate, and a sweep saturated from its very first point reports
// index 0 on stall dominance alone.
func TestFindKneeLocatesCollapse(t *testing.T) {
	sweep := []SaturationPoint{
		pt(1, 100, 10, 1.0),  // healthy: base rate 1.0/unit
		pt(2, 100, 110, 1.9), // stall-dominated but marginal 0.9 >= 0.5: still paying
		pt(4, 100, 400, 2.1), // marginal 0.1 < 0.5 and stall-dominated: knee
		pt(8, 100, 900, 2.0),
	}
	if got := FindKnee(sweep); got != 2 {
		t.Fatalf("FindKnee = %d, want 2", got)
	}
	saturatedFromStart := []SaturationPoint{
		pt(1, 10, 100, 1.0),
		pt(2, 10, 200, 1.0),
	}
	if got := FindKnee(saturatedFromStart); got != 0 {
		t.Fatalf("FindKnee(saturated from start) = %d, want 0", got)
	}
}

// TestMarginalThroughputShape pins the companion helper FindKnee reasons
// over: absolute-per-unit at the first point, deltas after, zero on
// non-ascending load.
func TestMarginalThroughputShape(t *testing.T) {
	m := MarginalThroughput([]SaturationPoint{
		pt(2, 0, 0, 4.0), pt(4, 0, 0, 6.0), pt(4, 0, 0, 9.0),
	})
	want := []float64{2.0, 1.0, 0}
	if len(m) != len(want) {
		t.Fatalf("len = %d, want %d", len(m), len(want))
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("marginal[%d] = %v, want %v", i, m[i], want[i])
		}
	}
	if got := MarginalThroughput(nil); len(got) != 0 {
		t.Fatalf("MarginalThroughput(nil) = %v, want empty", got)
	}
}

// TestOpenLoopSaturationPoint pins the open-loop point's backlog judgement:
// arrival-slack idle never counts as wait, and the drain overrun — scaled by
// processor count — does.
func TestOpenLoopSaturationPoint(t *testing.T) {
	rep := &Report{Procs: []ProcCycles{
		{Cycles: [NumClasses]int64{ClassCompute: 40, ClassReserveStall: 5, ClassIdle: 900}},
		{Cycles: [NumClasses]int64{ClassCompute: 60, ClassRetryBackoff: 10, ClassIdle: 800}},
	}}
	// Finished inside the window: idle is all arrival slack, no overrun.
	p := NewOpenLoopSaturationPoint(4, 1000, 1000, rep, 2.0)
	if p.Compute != 100 || p.SyncStall != 5 || p.Wait != 15 {
		t.Fatalf("unsaturated point = %+v, want compute 100, syncStall 5, wait 15", p)
	}
	if p.Wait >= p.Compute {
		t.Fatal("slack-idle run must not read as stall-dominated")
	}
	// Overran the window by 200 cycles on 2 processors: 400 backlog cycles.
	p = NewOpenLoopSaturationPoint(4, 1000, 1200, rep, 2.0)
	if p.Wait != 15+400 {
		t.Fatalf("overrun point wait = %d, want 415", p.Wait)
	}
	if p.Wait < p.Compute {
		t.Fatal("backlogged run must read as stall-dominated")
	}
}
