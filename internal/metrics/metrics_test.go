package metrics

import (
	"strings"
	"testing"

	"weakorder/internal/mem"
	"weakorder/internal/sim"
)

// fakeClock is a settable sim.Clock for driving the recorder by hand.
type fakeClock struct{ t sim.Time }

func (f *fakeClock) Now() sim.Time { return f.t }

// TestNilRecorder pins the zero-overhead contract: every hook is a no-op on
// a nil receiver.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims to be enabled")
	}
	r.Compute(0, 0, 5)
	r.CounterStall(0, 0, 5)
	r.FenceStall(0, 0, 5)
	r.MemWait(0, 1, false, 0, 5)
	r.ReserveStalled(0, 1, 0, 5)
	r.Backoff(0, 1, 0, 5)
	r.ReserveSet(0, 1)
	r.ReserveCleared(0, 1)
	r.DirOpen(1, "GetX P0")
	r.DirClosed(1)
	r.MsgSent(0, 1, "GetS", 1)
	r.MsgDelivered(0, 1)
	if rep := r.Report([]sim.Time{10}); rep != nil {
		t.Fatal("nil recorder produced a report")
	}
}

// TestAttributionCloses checks the core invariant: the six buckets always
// total the processor's lifetime, with idle as the exact remainder.
func TestAttributionCloses(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk, 1)
	r.Compute(0, 0, 10)
	r.CounterStall(0, 10, 25)
	r.FenceStall(0, 25, 40)
	r.MemWait(0, 7, false, 40, 90)
	rep := r.Report([]sim.Time{100})
	p := rep.Procs[0]
	if p.Cycles[ClassCompute] != 10 || p.Cycles[ClassCounterStall] != 15 || p.Cycles[ClassFenceStall] != 15 {
		t.Fatalf("direct buckets wrong: %+v", p.Cycles)
	}
	// 100 total - 40 direct = 60 idle (50 from the memory wait, 10 uncovered).
	if p.Cycles[ClassIdle] != 60 {
		t.Fatalf("idle = %d, want 60", p.Cycles[ClassIdle])
	}
	if p.Total() != 100 {
		t.Fatalf("total = %d, want finish 100", p.Total())
	}
}

// TestCarving checks the memory-wait carve: reserve-stall pieces win over
// backoff where both overlap, and only the overlap with the wait counts.
func TestCarving(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk, 1)
	// Wait on x3 over [10, 50).
	r.MemWait(0, 3, true, 10, 50)
	// Reserve-stall overlaps [20, 35); backoff claims [30, 45) — only its
	// part outside the reserve piece counts; backoff also extends past the
	// wait's end ([45, 60) is clipped off entirely).
	r.ReserveStalled(0, 3, 20, 35)
	r.Backoff(0, 3, 30, 60)
	// A backoff on a different address must not be attributed here.
	r.Backoff(0, 9, 10, 50)
	rep := r.Report([]sim.Time{50})
	p := rep.Procs[0]
	if got := p.Cycles[ClassReserveStall]; got != 15 {
		t.Errorf("reserve-stall = %d, want 15", got)
	}
	if got := p.Cycles[ClassRetryBackoff]; got != 15 {
		t.Errorf("retry-backoff = %d, want 15 ([35,50))", got)
	}
	// Wait pieces outside both carves are idle: [10,20) = 10, plus the
	// uncovered [0,10) prefix of the lifetime.
	if got := p.Cycles[ClassIdle]; got != 20 {
		t.Errorf("idle = %d, want 20", got)
	}
	if p.Total() != 50 {
		t.Errorf("total = %d, want 50", p.Total())
	}
}

// TestIntervalMath pins the helper semantics directly.
func TestIntervalMath(t *testing.T) {
	piece := iv{10, 50}
	cuts := intersectAll(piece, []iv{{0, 15}, {12, 20}, {40, 60}, {70, 80}})
	want := []iv{{10, 20}, {40, 50}}
	if len(cuts) != len(want) {
		t.Fatalf("intersect = %v, want %v", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("intersect = %v, want %v", cuts, want)
		}
	}
	rest := subtractAll(piece, cuts)
	if len(rest) != 1 || rest[0] != (iv{20, 40}) {
		t.Fatalf("subtract = %v, want [{20 40}]", rest)
	}
}

// TestOccupancyHistograms checks reserve and directory occupancy tracking.
func TestOccupancyHistograms(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk, 1)
	clk.t = 5
	r.ReserveSet(0, 7)
	clk.t = 13
	r.ReserveCleared(0, 7)
	// Unmatched clear: ignored.
	r.ReserveCleared(0, 7)
	clk.t = 20
	r.DirOpen(7, "GetX P0")
	clk.t = 26
	r.DirClosed(7)
	rep := r.Report([]sim.Time{30})
	if len(rep.ReserveOcc) != 1 || rep.ReserveOcc[0].Addr != 7 || rep.ReserveOcc[0].Hist.Sum() != 8 {
		t.Fatalf("reserve occupancy wrong: %+v", rep.ReserveOcc)
	}
	if len(rep.DirOcc) != 1 || rep.DirOcc[0].Hist.Sum() != 6 {
		t.Fatalf("dir occupancy wrong: %+v", rep.DirOcc)
	}
}

// TestMsgPairing checks per-link FIFO lifetime pairing and that unmatched
// sends are dropped from the timeline rather than emitted unbalanced.
func TestMsgPairing(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk, 2)
	clk.t = 0
	r.MsgSent(0, 1, "GetS", 4)
	clk.t = 2
	r.MsgSent(0, 1, "GetX", 5)
	clk.t = 9
	r.MsgDelivered(0, 1) // pairs with the GetS
	// The GetX is never delivered (aborted run): it must not appear.
	rep := r.Report([]sim.Time{10, 10})
	if len(rep.msgs) != 1 || rep.msgs[0].class != "GetS" || rep.msgs[0].delivered != 9 {
		t.Fatalf("paired msgs wrong: %+v", rep.msgs)
	}
	if rep.MsgClasses.Get("GetS") != 1 || rep.MsgClasses.Get("GetX") != 1 {
		t.Fatalf("class counts wrong: %s", rep.MsgClasses)
	}
	var sb strings.Builder
	if err := rep.WriteTimeline(&sb, "t"); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTimeline([]byte(sb.String())); err != nil {
		t.Fatalf("timeline invalid: %v", err)
	}
}

// TestTablesRender sanity-checks the aggregate rendering.
func TestTablesRender(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk, 2)
	r.Compute(0, 0, 4)
	r.MemWait(1, 2, false, 0, 6)
	r.MsgSent(0, 2, "GetS", 2)
	rep := r.Report([]sim.Time{10, 10})
	tables := rep.Tables()
	if len(tables) != 4 {
		t.Fatalf("got %d tables", len(tables))
	}
	out := tables[0].String()
	for _, want := range []string{"P0", "P1", "compute", "idle"} {
		if !strings.Contains(out, want) {
			t.Errorf("attribution table missing %q:\n%s", want, out)
		}
	}
	if rep.Stall(ClassCompute) != 4 || rep.ProcStall(1, ClassIdle) != 10 {
		t.Errorf("stall accessors wrong: %+v", rep.Procs)
	}
}

// TestValidateTimelineRejects drives the validator over malformed traces.
func TestValidateTimelineRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not-json", `{"traceEvents":`},
		{"missing-array", `{"other":1}`},
		{"unnamed-event", `{"traceEvents":[{"name":"","ph":"X","ts":0,"pid":0,"tid":0}]}`},
		{"negative-dur", `{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":-1,"pid":0,"tid":0}]}`},
		{"negative-ts", `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"pid":0,"tid":0}]}`},
		{"unknown-phase", `{"traceEvents":[{"name":"a","ph":"Q","ts":0,"pid":0,"tid":0}]}`},
		{"begin-no-id", `{"traceEvents":[{"name":"a","ph":"b","ts":0,"pid":0,"tid":0}]}`},
		{"end-no-begin", `{"traceEvents":[{"name":"a","ph":"e","ts":0,"pid":0,"tid":0,"id":"m1"}]}`},
		{"unended-begin", `{"traceEvents":[{"name":"a","cat":"msg","ph":"b","ts":0,"pid":0,"tid":0,"id":"m1"}]}`},
		{"end-before-begin", `{"traceEvents":[` +
			`{"name":"a","cat":"msg","ph":"b","ts":5,"pid":0,"tid":0,"id":"m1"},` +
			`{"name":"a","cat":"msg","ph":"e","ts":3,"pid":0,"tid":0,"id":"m1"}]}`},
		{"dup-begin", `{"traceEvents":[` +
			`{"name":"a","cat":"msg","ph":"b","ts":0,"pid":0,"tid":0,"id":"m1"},` +
			`{"name":"a","cat":"msg","ph":"b","ts":1,"pid":0,"tid":0,"id":"m1"}]}`},
		{"metadata-no-name", `{"traceEvents":[{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateTimeline([]byte(tc.data)); err == nil {
				t.Errorf("validator accepted %s", tc.name)
			}
		})
	}
	ok := `{"traceEvents":[` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"P0"}},` +
		`{"name":"compute","cat":"cpu","ph":"X","ts":0,"dur":4,"pid":0,"tid":0},` +
		`{"name":"a","cat":"msg","ph":"b","ts":0,"pid":0,"tid":0,"id":"m1"},` +
		`{"name":"a","cat":"msg","ph":"e","ts":7,"pid":0,"tid":0,"id":"m1"}]}`
	if err := ValidateTimeline([]byte(ok)); err != nil {
		t.Errorf("validator rejected a valid trace: %v", err)
	}
}

// TestTimelineDeterministic renders the same observations twice and compares
// bytes.
func TestTimelineDeterministic(t *testing.T) {
	build := func() string {
		clk := &fakeClock{}
		r := NewRecorder(clk, 2)
		r.Compute(0, 0, 3)
		r.MemWait(0, mem.Addr(1), false, 3, 12)
		r.Backoff(0, mem.Addr(1), 5, 9)
		clk.t = 2
		r.DirOpen(1, "GetS P0")
		clk.t = 8
		r.DirClosed(1)
		r.MsgSent(0, 2, "GetS", 1)
		clk.t = 12
		r.MsgDelivered(0, 2)
		var sb strings.Builder
		if err := r.Report([]sim.Time{12, 0}).WriteTimeline(&sb, "d"); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("timeline bytes differ:\n%s\n----\n%s", a, b)
	}
	if err := ValidateTimeline([]byte(a)); err != nil {
		t.Fatal(err)
	}
}
