package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The timeline is the Chrome trace-event JSON format (load it in
// chrome://tracing or Perfetto): one "thread" track per processor plus one
// for the directory, "X" complete events for cycle-attribution and
// directory-occupancy spans, and "b"/"e" async pairs for message lifetimes.
// ts and dur are in simulated cycles, not microseconds. Rendering is fully
// deterministic: events are ordered by (ts, record sequence), struct field
// order fixes the JSON key order, and one event is written per line.

// traceEvent is one Chrome trace-event record. Field order is the JSON key
// order, part of the byte-stable output contract.
type traceEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	Ts   int64      `json:"ts"`
	Dur  int64      `json:"dur,omitempty"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	ID   string     `json:"id,omitempty"`
	Args *traceArgs `json:"args,omitempty"`
}

// traceArgs carries the per-event detail (again: struct, not map, so key
// order is fixed).
type traceArgs struct {
	Name  string `json:"name,omitempty"`
	Addr  string `json:"addr,omitempty"`
	Class string `json:"class,omitempty"`
	Src   int    `json:"src,omitempty"`
	Dst   int    `json:"dst,omitempty"`
}

// WriteTimeline renders the report as Chrome trace-event JSON. label names
// the trace (shown as the process name).
func (rep *Report) WriteTimeline(w io.Writer, label string) error {
	dirTid := rep.nprocs
	var evs []traceEvent
	// Track metadata: process name, then one thread per processor and one for
	// the directory. Sort index pins the display order.
	evs = append(evs, traceEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: &traceArgs{Name: label},
	})
	for p := 0; p < rep.nprocs; p++ {
		evs = append(evs, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: p,
			Args: &traceArgs{Name: fmt.Sprintf("P%d", p)},
		})
	}
	evs = append(evs, traceEvent{
		Name: "thread_name", Ph: "M", Pid: 0, Tid: dirTid,
		Args: &traceArgs{Name: "directory"},
	})
	// Processor cycle spans (already sorted by (from, seq) in Report).
	for _, s := range rep.events {
		e := traceEvent{
			Name: s.class.String(), Cat: "cpu", Ph: "X",
			Ts: int64(s.from), Dur: int64(s.to - s.from), Pid: 0, Tid: s.proc,
		}
		if s.hasAddr {
			e.Args = &traceArgs{Addr: fmt.Sprintf("x%d", s.addr)}
		}
		evs = append(evs, e)
	}
	// Directory transaction spans.
	dir := append([]dirSpan(nil), rep.dir...)
	sort.SliceStable(dir, func(i, j int) bool {
		if dir[i].from != dir[j].from {
			return dir[i].from < dir[j].from
		}
		return dir[i].seq < dir[j].seq
	})
	for _, s := range dir {
		if s.to <= s.from {
			continue
		}
		evs = append(evs, traceEvent{
			Name: s.label, Cat: "dir", Ph: "X",
			Ts: int64(s.from), Dur: int64(s.to - s.from), Pid: 0, Tid: dirTid,
			Args: &traceArgs{Addr: fmt.Sprintf("x%d", s.addr)},
		})
	}
	// Message lifetimes as async begin/end pairs keyed by a per-message id
	// (async events tolerate the arbitrary nesting that "X" spans cannot).
	msgs := append([]msgSpan(nil), rep.msgs...)
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].sent != msgs[j].sent {
			return msgs[i].sent < msgs[j].sent
		}
		return msgs[i].seq < msgs[j].seq
	})
	for i, m := range msgs {
		name := fmt.Sprintf("%s x%d %d>%d", m.class, m.addr, m.src, m.dst)
		id := fmt.Sprintf("m%d", i)
		args := &traceArgs{Class: m.class, Addr: fmt.Sprintf("x%d", m.addr), Src: m.src, Dst: m.dst}
		evs = append(evs, traceEvent{
			Name: name, Cat: "msg", Ph: "b", Ts: int64(m.sent), Pid: 0, Tid: m.src, ID: id, Args: args,
		})
		evs = append(evs, traceEvent{
			Name: name, Cat: "msg", Ph: "e", Ts: int64(m.delivered), Pid: 0, Tid: m.src, ID: id,
		})
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range evs {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(evs)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"timeUnit\":\"cycles\"}}\n")
	return err
}

// ValidateTimeline checks that data is a well-formed trace: parses as the
// expected envelope, every event carries a known phase with sane
// timestamps, "X" spans have non-negative durations, and every async "b" has
// a matching "e" with ts(e) >= ts(b). CI runs this against the file wosim
// -timeline writes.
func ValidateTimeline(data []byte) error {
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("timeline: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("timeline: missing traceEvents array")
	}
	open := make(map[string]traceEvent)
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("timeline: event %d has no name", i)
		}
		if e.Ts < 0 || e.Tid < 0 {
			return fmt.Errorf("timeline: event %d (%s) has negative ts/tid", i, e.Name)
		}
		switch e.Ph {
		case "M":
			if e.Args == nil || e.Args.Name == "" {
				return fmt.Errorf("timeline: metadata event %d lacks args.name", i)
			}
		case "X":
			if e.Dur < 0 {
				return fmt.Errorf("timeline: span %d (%s) has negative dur", i, e.Name)
			}
		case "b":
			if e.ID == "" {
				return fmt.Errorf("timeline: async begin %d (%s) has no id", i, e.Name)
			}
			key := e.Cat + "/" + e.ID
			if _, dup := open[key]; dup {
				return fmt.Errorf("timeline: async id %s opened twice", key)
			}
			open[key] = e
		case "e":
			key := e.Cat + "/" + e.ID
			b, ok := open[key]
			if !ok {
				return fmt.Errorf("timeline: async end %d (%s) without begin", i, e.Name)
			}
			if e.Ts < b.Ts {
				return fmt.Errorf("timeline: async %s ends at %d before begin %d", key, e.Ts, b.Ts)
			}
			delete(open, key)
		default:
			return fmt.Errorf("timeline: event %d has unknown phase %q", i, e.Ph)
		}
	}
	if len(open) > 0 {
		return fmt.Errorf("timeline: %d async events never ended", len(open))
	}
	return nil
}

// EventCount reports how many events a timeline holds (0 if data does not
// parse) — for "wrote N events" style reporting after validation.
func EventCount(data []byte) int {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0
	}
	return len(doc.TraceEvents)
}
