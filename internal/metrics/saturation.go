package metrics

import "weakorder/internal/sim"

// SaturationPoint is one load level of a capacity sweep, summarized from a
// finalized cycle-attribution Report. Load is the swept parameter (processor
// count in E13); Throughput is the caller's useful-work rate at that load
// (e.g. lock acquisitions per kilocycle), in whatever unit the caller keeps
// consistent across the sweep.
type SaturationPoint struct {
	Load       int
	Cycles     sim.Time
	Compute    int64 // ClassCompute cycles across all processors
	SyncStall  int64 // reserve + counter + fence stall cycles across all processors
	Wait       int64 // every attributed non-compute cycle (SyncStall + retry backoff + idle memory waits)
	Throughput float64
}

// NewSaturationPoint summarizes a Report at one load level. The sync-stall
// aggregate is the three synchronization-serialization classes — reserve
// stalls (parked behind a remote reserve bit), counter stalls (Definition
// 1's issue wait), and fence stalls (post-commit waits for global
// performance). Wait additionally folds in retry backoff and the idle
// remainder of memory waits: on a contended lock the serialization cost
// mostly materializes as the lock line bouncing between caches, which the
// attribution carves into idle, so saturation is judged on the full
// non-compute aggregate while the table still breaks out the
// serialization-specific classes.
func NewSaturationPoint(load int, cycles sim.Time, rep *Report, throughput float64) SaturationPoint {
	syncStall := rep.Stall(ClassReserveStall) + rep.Stall(ClassCounterStall) + rep.Stall(ClassFenceStall)
	return SaturationPoint{
		Load:       load,
		Cycles:     cycles,
		Compute:    rep.Stall(ClassCompute),
		SyncStall:  syncStall,
		Wait:       syncStall + rep.Stall(ClassRetryBackoff) + rep.Stall(ClassIdle),
		Throughput: throughput,
	}
}

// StallShare returns the point's non-compute fraction of all attributed
// cycles (0 when nothing was attributed).
func (p SaturationPoint) StallShare() float64 {
	total := p.Compute + p.Wait
	if total == 0 {
		return 0
	}
	return float64(p.Wait) / float64(total)
}

// FindKnee locates the saturation knee of an ascending-load sweep: the first
// point where stall cycles dominate compute (Wait >= Compute) AND adding
// load has stopped paying — marginal throughput per added unit of load at
// that point is below half the sweep's initial per-unit rate (the first
// point qualifies on stall dominance alone: saturated from the start). The
// two conditions cross-check each other: stall dominance says *why* the
// machine saturated (serialization, not capacity), the marginal-throughput
// collapse says it actually *did*. Returns the index into points, or -1 when
// no point qualifies.
func FindKnee(points []SaturationPoint) int {
	marginal := MarginalThroughput(points)
	base := 0.0
	if len(points) > 0 && points[0].Load > 0 {
		base = points[0].Throughput / float64(points[0].Load)
	}
	for i, p := range points {
		if p.Wait < p.Compute {
			continue
		}
		if i == 0 || marginal[i] < base/2 {
			return i
		}
	}
	return -1
}

// MarginalThroughput returns, per point, the throughput gained per unit of
// added load relative to the previous point; the first point reports its
// absolute throughput per unit of load. Negative values mean throughput
// regressed as load grew — already past the knee.
func MarginalThroughput(points []SaturationPoint) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		if i == 0 {
			if p.Load > 0 {
				out[i] = p.Throughput / float64(p.Load)
			}
			continue
		}
		dl := p.Load - points[i-1].Load
		if dl <= 0 {
			continue
		}
		out[i] = (p.Throughput - points[i-1].Throughput) / float64(dl)
	}
	return out
}
