package metrics

import "weakorder/internal/sim"

// SaturationPoint is one load level of a capacity sweep, summarized from a
// finalized cycle-attribution Report. Load is the swept parameter (processor
// count in E13); Throughput is the caller's useful-work rate at that load
// (e.g. lock acquisitions per kilocycle), in whatever unit the caller keeps
// consistent across the sweep.
type SaturationPoint struct {
	Load       int
	Cycles     sim.Time
	Compute    int64 // ClassCompute cycles across all processors
	SyncStall  int64 // reserve + counter + fence stall cycles across all processors
	Wait       int64 // every attributed non-compute cycle (SyncStall + retry backoff + idle memory waits)
	Throughput float64
}

// NewSaturationPoint summarizes a Report at one load level. The sync-stall
// aggregate is the three synchronization-serialization classes — reserve
// stalls (parked behind a remote reserve bit), counter stalls (Definition
// 1's issue wait), and fence stalls (post-commit waits for global
// performance). Wait additionally folds in retry backoff and the idle
// remainder of memory waits: on a contended lock the serialization cost
// mostly materializes as the lock line bouncing between caches, which the
// attribution carves into idle, so saturation is judged on the full
// non-compute aggregate while the table still breaks out the
// serialization-specific classes.
func NewSaturationPoint(load int, cycles sim.Time, rep *Report, throughput float64) SaturationPoint {
	syncStall := rep.Stall(ClassReserveStall) + rep.Stall(ClassCounterStall) + rep.Stall(ClassFenceStall)
	return SaturationPoint{
		Load:       load,
		Cycles:     cycles,
		Compute:    rep.Stall(ClassCompute),
		SyncStall:  syncStall,
		Wait:       syncStall + rep.Stall(ClassRetryBackoff) + rep.Stall(ClassIdle),
		Throughput: throughput,
	}
}

// NewOpenLoopSaturationPoint summarizes a Report for an open-loop sweep,
// where the load knob is the offered arrival rate rather than the processor
// count. The closed-loop point folds every idle cycle into Wait, but under
// open-loop injection the idle bucket also absorbs arrival slack — the time
// a processor spends drained, waiting for its next arrival — which is
// largest at the *lightest* load and would mark the bottom of the sweep as
// stall-dominated. The open-loop point therefore judges saturation on
// backlog instead: Wait is the attributed synchronization and retry cycles
// plus the drain overrun — cycles the run needed beyond the offered arrival
// window, scaled by processor count to stay commensurable with the
// aggregated Compute. An unsaturated machine retires each arrival before
// the next and finishes with the window (overrun ~ one service time); a
// saturated one accumulates backlog and the overrun grows without bound as
// the rate rises.
func NewOpenLoopSaturationPoint(load int, window, cycles sim.Time, rep *Report, throughput float64) SaturationPoint {
	syncStall := rep.Stall(ClassReserveStall) + rep.Stall(ClassCounterStall) + rep.Stall(ClassFenceStall)
	var overrun int64
	if cycles > window {
		overrun = int64(cycles-window) * int64(len(rep.Procs))
	}
	return SaturationPoint{
		Load:       load,
		Cycles:     cycles,
		Compute:    rep.Stall(ClassCompute),
		SyncStall:  syncStall,
		Wait:       syncStall + rep.Stall(ClassRetryBackoff) + overrun,
		Throughput: throughput,
	}
}

// StallShare returns the point's non-compute fraction of all attributed
// cycles (0 when nothing was attributed).
func (p SaturationPoint) StallShare() float64 {
	total := p.Compute + p.Wait
	if total == 0 {
		return 0
	}
	return float64(p.Wait) / float64(total)
}

// FindKnee locates the saturation knee of an ascending-load sweep: the first
// point where stall cycles dominate compute (Wait >= Compute) AND adding
// load has stopped paying — marginal throughput per added unit of load at
// that point is below half the sweep's initial per-unit rate (the first
// point qualifies on stall dominance alone: saturated from the start). The
// two conditions cross-check each other: stall dominance says *why* the
// machine saturated (serialization, not capacity), the marginal-throughput
// collapse says it actually *did*.
//
// Returns the index into points, or the documented sentinel -1 when no point
// qualifies. -1 is returned in particular for:
//   - an empty sweep (nothing to judge);
//   - a single-point sweep (no marginal-throughput evidence exists, and a
//     knee claimed from one sample would be indistinguishable from a
//     constant-factor-slow machine);
//   - a monotonically improving sweep — marginal throughput never collapses
//     below half the initial per-unit rate, so even stall-dominated points
//     past the first are scaling, not saturated.
func FindKnee(points []SaturationPoint) int {
	if len(points) < 2 {
		return -1
	}
	marginal := MarginalThroughput(points)
	base := 0.0
	if points[0].Load > 0 {
		base = points[0].Throughput / float64(points[0].Load)
	}
	for i, p := range points {
		if p.Wait < p.Compute {
			continue
		}
		if i == 0 || marginal[i] < base/2 {
			return i
		}
	}
	return -1
}

// MarginalThroughput returns, per point, the throughput gained per unit of
// added load relative to the previous point; the first point reports its
// absolute throughput per unit of load. Negative values mean throughput
// regressed as load grew — already past the knee.
func MarginalThroughput(points []SaturationPoint) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		if i == 0 {
			if p.Load > 0 {
				out[i] = p.Throughput / float64(p.Load)
			}
			continue
		}
		dl := p.Load - points[i-1].Load
		if dl <= 0 {
			continue
		}
		out[i] = (p.Throughput - points[i-1].Throughput) / float64(dl)
	}
	return out
}
