package experiments

import (
	"weakorder/internal/conditions"
	"weakorder/internal/machine"
	"weakorder/internal/proc"
	"weakorder/internal/program"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// ConditionsSummary reports E9: the Section-5.1 sufficient conditions checked
// against the timed machine's own access-lifecycle logs.
type ConditionsSummary struct {
	Table *stats.Table
	// CleanViolations counts violations on the policies that must satisfy
	// the conditions (SC, Def1, Def2 under Check; Def2-DRF1 under
	// CheckRefined) — must be zero.
	CleanViolations int
	// AblationCaught reports whether the no-reserve ablation produced at
	// least one violation across the jittered schedule sweep.
	AblationCaught bool
}

// conditionsWorkloads are the E9 programs.
func conditionsWorkloads() []*program.Program {
	return []*program.Program{
		workload.ProducerConsumer(8, 10),
		workload.Fig3N(3, 4, 0),
		workload.Lock(3, 3, 8, 8, workload.SpinSync),
	}
}

// Conditions runs E9: every conforming policy's timed runs are validated
// against the paper's conditions (C2-C5) across workloads, and the
// reserve-bit ablation is swept over jittered schedules until a violating one
// is found — executable evidence that the reservation mechanism is exactly
// what discharges condition 5.
func Conditions() (*ConditionsSummary, error) {
	s := &ConditionsSummary{}
	tbl := stats.NewTable("E9 — Section 5.1 conditions on timed-machine logs",
		"workload", "policy", "accesses", "checker", "violations")
	check := func(p *program.Program, pol proc.Policy, refined bool, jitterSeed int64) (*conditions.Report, error) {
		cfg := machine.NewConfig(pol)
		cfg.RecordTimings = true
		if jitterSeed >= 0 {
			cfg.NetJitter = 80
			cfg.Seed = jitterSeed
		}
		res, err := machine.Run(p, cfg)
		if err != nil {
			return nil, err
		}
		if refined {
			return conditions.CheckRefined(res.Timings), nil
		}
		return conditions.Check(res.Timings), nil
	}
	for _, p := range conditionsWorkloads() {
		for _, pol := range []proc.Policy{proc.PolicySC, proc.PolicyWODef1, proc.PolicyWODef2, proc.PolicyWODef2DRF1} {
			refined := pol == proc.PolicyWODef2DRF1
			rep, err := check(p, pol, refined, -1)
			if err != nil {
				return nil, err
			}
			s.CleanViolations += len(rep.Violations)
			tbl.Row(p.Name, pol.String(), rep.Accesses, checkerName(refined), len(rep.Violations))
		}
	}
	// Sweep the ablation across jittered schedules until a violation shows.
	for seed := int64(0); seed < 40 && !s.AblationCaught; seed++ {
		p := workload.Fig3N(3, 4, 0)
		rep, err := check(p, proc.PolicyWODef2NoReserve, false, seed)
		if err != nil {
			return nil, err
		}
		if !rep.OK() {
			s.AblationCaught = true
			tbl.Row(p.Name, proc.PolicyWODef2NoReserve.String(), rep.Accesses, "C2-C5", len(rep.Violations))
			tbl.Note("ablation caught at jitter seed %d: %s", seed, rep.Violations[0])
		}
	}
	tbl.Note("conforming policies must read 0 violations; the ablation demonstrates condition 5 depends on the reserve bits")
	s.Table = tbl
	return s, nil
}

func checkerName(refined bool) string {
	if refined {
		return "refined"
	}
	return "C2-C5"
}
