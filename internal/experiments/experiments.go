// Package experiments regenerates every figure and analysis claim of the
// paper, plus the quantitative comparison its conclusion calls for. Each
// experiment returns both printable tables and a summary struct that tests
// and benchmarks assert on; EXPERIMENTS.md records the measured outputs.
//
// Index (see DESIGN.md §3):
//
//	E1 Fig1     — the SC violation across the four hardware configurations
//	E2 Fig2     — the DRF0 example and counterexample executions
//	E3 Fig3     — Definition-1 vs Definition-2 producer stall
//	E4 Quant    — cycles/stalls/messages across workloads and policies
//	E5 Spin     — the Section-6 read-only-sync serialization penalty
//	E6 Contract — Definition-2 containment over random programs
//	E7 Fence    — RP3 fence option behaves like Definition 1
package experiments

import (
	"fmt"

	"weakorder/internal/core"
	"weakorder/internal/litmus"
	"weakorder/internal/stats"
)

// Fig1Summary reports E1.
type Fig1Summary struct {
	Tables []*stats.Table
	// ViolationOn lists machines where the Figure-1 outcome is reachable.
	ViolationOn []string
	// SCForbids is true when the idealized machine forbids it.
	SCForbids bool
	// Mismatches counts observations that contradicted corpus expectations.
	Mismatches int
}

// Fig1 reproduces Figure 1: the store-buffering violation ("P1 and P2 are
// both killed") is impossible under sequential consistency but reachable on
// all four relaxed hardware configurations; expressing the accesses as
// synchronization operations restores the SC outcome everywhere that
// implements weak ordering.
func Fig1() (*Fig1Summary, error) {
	s := &Fig1Summary{SCForbids: true}
	for _, name := range []string{"fig1-dekker-data", "fig1-dekker-sync"} {
		t, ok := litmus.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: missing corpus test %s", name)
		}
		tbl := stats.NewTable(
			fmt.Sprintf("E1/Figure 1 — %s (exists %s)", name, t.Cond),
			"machine", "outcome", "expected", "states")
		for _, f := range litmus.Factories() {
			o, err := litmus.Run(t, f, nil)
			if err != nil {
				return nil, err
			}
			verdict := "forbidden"
			if o.Observed {
				verdict = "ALLOWED"
				if name == "fig1-dekker-data" {
					s.ViolationOn = append(s.ViolationOn, f.Name)
				}
			}
			want := "-"
			if o.Asserted {
				if o.Expected {
					want = "allowed"
				} else {
					want = "forbidden"
				}
			}
			if !o.OK() {
				s.Mismatches++
			}
			if f.Name == "SC" && name == "fig1-dekker-data" && o.Observed {
				s.SCForbids = false
			}
			tbl.Row(f.Name, verdict, want, o.Stats.States)
		}
		tbl.Note("the paper's outcome: both processors read 0 and kill each other")
		s.Tables = append(s.Tables, tbl)
	}
	return s, nil
}

// Fig2Summary reports E2.
type Fig2Summary struct {
	Table *stats.Table
	// AObeys / BObeys are the DRF0 verdicts of the two executions.
	AObeys, BObeys bool
	// BRaces is the number of racing pairs found in execution (b).
	BRaces int
	// Lemma1AOK records the Lemma-1 read-value check on (a).
	Lemma1AOK bool
}

// Fig2 reproduces Figure 2: execution (a) obeys DRF0 (and satisfies the
// Lemma-1 read-value condition); execution (b) has exactly the race clusters
// the caption describes.
func Fig2() (*Fig2Summary, error) {
	s := &Fig2Summary{}
	a := litmus.Figure2a()
	b := litmus.Figure2b()
	repA, err := core.CheckExecution(a, core.DRF0{})
	if err != nil {
		return nil, err
	}
	repB, err := core.CheckExecution(b, core.DRF0{})
	if err != nil {
		return nil, err
	}
	s.AObeys = repA.Free()
	s.BObeys = repB.Free()
	s.BRaces = len(repB.Races)
	ordA, err := core.BuildOrders(a, core.DRF0{})
	if err != nil {
		return nil, err
	}
	s.Lemma1AOK = core.CheckLemma1(ordA, nil).OK()
	tbl := stats.NewTable("E2/Figure 2 — DRF0 example and counterexample",
		"execution", "events", "DRF0", "races", "lemma1")
	tbl.Row("(a) synchronization chains", a.Len(), verdict(s.AObeys), len(repA.Races), okStr(s.Lemma1AOK))
	tbl.Row("(b) unordered conflicts", b.Len(), verdict(s.BObeys), s.BRaces, "-")
	for _, r := range repB.Races {
		tbl.Note("%s", r)
	}
	s.Table = tbl
	return s, nil
}

func verdict(free bool) string {
	if free {
		return "obeys"
	}
	return "VIOLATES"
}

func okStr(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
