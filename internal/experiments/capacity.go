package experiments

import (
	"fmt"
	"time"

	"weakorder/internal/machine"
	"weakorder/internal/metrics"
	"weakorder/internal/par"
	"weakorder/internal/proc"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// CapacitySummary reports E13: the capacity study of the scaled timed
// machine. For each contention level the sweep raises the processor count on
// the contended-lock workload, feeds each run's cycle attribution into the
// saturation analyzer, and reports the knee — the first processor count
// where synchronization stalls (reserve, counter, fence) dominate compute
// and marginal throughput has collapsed. Everything in Table and the point
// slices is deterministic; SimCyclesPerSec is the one wall-clock figure
// (simulated cycles per CPU-second across the sweep's runs) and must stay
// out of golden comparisons.
type CapacitySummary struct {
	Table *stats.Table
	// High and Low are the saturation sweeps at high contention (back-to-back
	// critical sections) and low contention (long inter-acquisition local
	// work), in ascending processor count.
	High, Low []metrics.SaturationPoint
	// KneeHigh/KneeLow are the processor counts at each sweep's knee (0 when
	// the sweep never saturated).
	KneeHigh, KneeLow int
	// SimCyclesPerSec is simulated cycles per CPU-second over all runs of the
	// sweep — the engine-throughput figure the CI capacity smoke floors.
	SimCyclesPerSec float64
}

// Capacity runs E13 with the default sweep (P up to 64).
func Capacity() (*CapacitySummary, error) { return CapacityUpTo(64) }

// CapacityUpTo runs E13 with processor counts 2..maxP (doubling), so smoke
// runs can bound the sweep. The acquisition count is fixed per processor:
// total useful work scales linearly with P, which is what makes acquisitions
// per kilocycle a meaningful throughput curve.
func CapacityUpTo(maxP int) (*CapacitySummary, error) {
	const acquires = 2
	type level struct {
		name    string
		outWork int // local work between acquisitions: low values = contention
	}
	levels := []level{{"high", 10}, {"low", 200}}
	var procsSweep []int
	for p := 2; p <= maxP; p *= 2 {
		procsSweep = append(procsSweep, p)
	}
	type cell struct {
		level level
		procs int
	}
	var cells []cell
	for _, lv := range levels {
		for _, p := range procsSweep {
			cells = append(cells, cell{level: lv, procs: p})
		}
	}
	type meas struct {
		point metrics.SaturationPoint
		msgs  int64
		wall  time.Duration
	}
	results, err := par.Map(cells, 0, func(_ int, c cell) (meas, error) {
		prog := workload.Lock(c.procs, acquires, 10, c.level.outWork, workload.SpinSync)
		cfg := machine.NewConfig(proc.PolicyWODef2)
		cfg.Metrics = true
		start := time.Now()
		res, err := machine.Run(prog, cfg)
		wall := time.Since(start)
		if err != nil {
			return meas{}, err
		}
		thru := float64(c.procs*acquires) / float64(res.Cycles) * 1000
		return meas{
			point: metrics.NewSaturationPoint(c.procs, res.Cycles, res.Metrics, thru),
			msgs:  int64(res.Messages),
			wall:  wall,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	s := &CapacitySummary{}
	tbl := stats.NewTable(fmt.Sprintf("E13 — capacity: saturation knee of the contended lock (WO-def2, %d acquisitions/proc)", acquires),
		"contention", "procs", "cycles", "messages", "compute", "sync stall", "wait", "stall share", "acq/kcycle", "marginal")
	var wall time.Duration
	i := 0
	for _, lv := range levels {
		points := make([]metrics.SaturationPoint, 0, len(procsSweep))
		for range procsSweep {
			m := results[i]
			points = append(points, m.point)
			wall += m.wall
			i++
		}
		marginal := metrics.MarginalThroughput(points)
		knee := metrics.FindKnee(points)
		for j, p := range points {
			kneeMark := ""
			if j == knee {
				kneeMark = " <- knee"
			}
			m := results[i-len(points)+j]
			tbl.Row(lv.name, p.Load, int64(p.Cycles), m.msgs, p.Compute, p.SyncStall, p.Wait,
				fmt.Sprintf("%.1f%%", p.StallShare()*100),
				fmt.Sprintf("%.3f", p.Throughput),
				fmt.Sprintf("%.3f%s", marginal[j], kneeMark))
		}
		kneeProcs := 0
		if knee >= 0 {
			kneeProcs = points[knee].Load
		}
		if lv.name == "high" {
			s.High, s.KneeHigh = points, kneeProcs
		} else {
			s.Low, s.KneeLow = points, kneeProcs
		}
	}
	tbl.Note("knee: first P where attributed wait cycles >= compute and marginal acq/kcycle fell below half the initial per-proc rate")
	tbl.Note("high contention: 10 local cycles between acquisitions; low: 200")
	s.Table = tbl

	var total int64
	for _, m := range results {
		total += int64(m.point.Cycles)
	}
	if secs := wall.Seconds(); secs > 0 {
		s.SimCyclesPerSec = float64(total) / secs
	}
	return s, nil
}
