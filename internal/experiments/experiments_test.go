package experiments

import (
	"testing"

	"weakorder/internal/metrics"
)

func TestFig1(t *testing.T) {
	s, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if !s.SCForbids {
		t.Error("SC must forbid the Figure-1 outcome")
	}
	if s.Mismatches != 0 {
		t.Errorf("corpus mismatches: %d", s.Mismatches)
	}
	// The paper lists four relaxed configurations; all must show the
	// violation, as must the weakly ordered machines (the program is racy).
	if len(s.ViolationOn) < 4 {
		t.Errorf("violation reachable on %v, want at least the four Figure-1 configurations", s.ViolationOn)
	}
	for _, want := range []string{"bus+writebuffer", "bus+cache+writebuffer", "network-nocache", "network+cache-nonatomic"} {
		found := false
		for _, got := range s.ViolationOn {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("violation not reachable on %s", want)
		}
	}
}

func TestFig2(t *testing.T) {
	s, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if !s.AObeys || s.BObeys {
		t.Errorf("verdicts: a obeys=%v b obeys=%v, want true/false", s.AObeys, s.BObeys)
	}
	if s.BRaces != 4 {
		t.Errorf("b races = %d, want 4 (two clusters of two)", s.BRaces)
	}
	if !s.Lemma1AOK {
		t.Error("execution (a) must satisfy Lemma 1")
	}
}

func TestFig3(t *testing.T) {
	s, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Def1P0AlwaysSlower {
		t.Error("Definition-1 producer should finish later than Definition-2 producer at every swept point")
	}
	// The def2 machinery must engage: some point sets reserve bits.
	engaged := false
	for _, pt := range s.Points {
		if pt.Reserves > 0 {
			engaged = true
			break
		}
	}
	if !engaged {
		t.Error("no swept point set a reserve bit")
	}
}

func TestQuant(t *testing.T) {
	s, err := Quant()
	if err != nil {
		t.Fatal(err)
	}
	if !s.WeakNeverSlower {
		t.Error("weak ordering should never lose to SC on these workloads")
	}
	if !s.Def2NeverSlowerThanDef1 {
		t.Error("def2 should not lose to def1 on these workloads")
	}
	if len(s.Rows) != 4*3 {
		t.Errorf("rows = %d, want 12", len(s.Rows))
	}
}

func TestSpin(t *testing.T) {
	s, err := Spin()
	if err != nil {
		t.Fatal(err)
	}
	if !s.GetXReduced {
		t.Error("the DRF1 refinement should reduce exclusive acquisitions on spin workloads")
	}
	if !s.RefinementFasterOnBarrier {
		t.Error("the refinement should speed up the spinning barrier")
	}
	if !s.RefinementFasterOnLock {
		t.Error("the refinement should speed up test-and-TAS locking")
	}
}

func TestContract(t *testing.T) {
	s, err := Contract(24, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.DRF0Programs == 0 {
		t.Fatal("no DRF0 programs generated; the sweep is vacuous")
	}
	if s.DRF0Programs == s.Programs {
		t.Fatal("no racy programs generated; the sweep is one-sided")
	}
	for _, f := range contractMachines() {
		v := s.ViolationsByMachine[f.Name]
		switch f.Name {
		case "network+cache-nonatomic", "WO-def2-noreserve":
			// The broken machines should get caught at least once across
			// the sweep (checked jointly below).
		default:
			if v != 0 {
				t.Errorf("%s violated the contract on %d DRF0 programs", f.Name, v)
			}
		}
	}
	if s.ViolationsByMachine["network+cache-nonatomic"] == 0 {
		t.Error("the NonAtomic machine was never caught; the checker may be toothless")
	}
	if s.ViolationsByMachine["WO-def2-noreserve"] == 0 {
		t.Error("the no-reserve ablation was never caught; guarded programs not doing their job")
	}
	if s.RacyNonSC == 0 {
		t.Error("no racy program showed a non-SC outcome; relaxations may not be exercised")
	}
}

func TestDelaySet(t *testing.T) {
	s, err := DelaySet(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Violations != 0 {
		t.Errorf("delay enforcement failed on %d programs", s.Violations)
	}
	if s.RelaxedObserved == 0 {
		t.Error("no program relaxed on the plain write buffer; sweep is vacuous")
	}
	if s.TotalDelays == 0 || s.TotalDelays >= s.TotalPairs {
		t.Errorf("delay selectivity looks wrong: %d of %d pairs", s.TotalDelays, s.TotalPairs)
	}
}

func TestSweep(t *testing.T) {
	s, err := Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !s.GapGrowsWithLatency {
		t.Error("def2's advantage over def1 should scale with network latency")
	}
	if len(s.Points) == 0 {
		t.Fatal("no points")
	}
}

func TestProtocol(t *testing.T) {
	s, err := Protocol()
	if err != nil {
		t.Fatal(err)
	}
	if !s.UpdateWinsProdCons {
		t.Error("update protocol should win on producer/consumer")
	}
	if !s.InvalidateWinsStreaming {
		t.Error("invalidation should win on streaming rewrites")
	}
}

func TestConditions(t *testing.T) {
	s, err := Conditions()
	if err != nil {
		t.Fatal(err)
	}
	if s.CleanViolations != 0 {
		t.Errorf("conforming policies produced %d condition violations", s.CleanViolations)
	}
	if !s.AblationCaught {
		t.Error("the reserve-bit ablation was never caught by the conditions checker")
	}
}

func TestFence(t *testing.T) {
	s, err := Fence()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal {
		t.Error("RP3 fence machine should match Definition 1 on every corpus program")
	}
}

func TestCapacity(t *testing.T) {
	s, err := CapacityUpTo(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.High) == 0 || len(s.High) != len(s.Low) {
		t.Fatalf("sweep shape: %d high, %d low points", len(s.High), len(s.Low))
	}
	// Both contention levels must saturate within the sweep: the
	// back-to-back lock immediately, the padded one once the lock's service
	// time overtakes the local work between acquisitions.
	if s.KneeHigh == 0 {
		t.Error("high-contention sweep never found a knee")
	}
	if s.KneeLow == 0 {
		t.Error("low-contention sweep never found a knee")
	}
	if s.KneeHigh != 0 && s.KneeLow != 0 && s.KneeLow < s.KneeHigh {
		t.Errorf("low contention saturated earlier (P=%d) than high (P=%d)", s.KneeLow, s.KneeHigh)
	}
	// Past the knee, per-acquisition throughput must decline.
	for _, pts := range [][]metrics.SaturationPoint{s.High, s.Low} {
		last := pts[len(pts)-1]
		if first := pts[0]; last.Throughput >= first.Throughput {
			t.Errorf("throughput did not decline across the sweep: %f -> %f", first.Throughput, last.Throughput)
		}
		if last.Wait < last.Compute {
			t.Errorf("largest P is not stall-dominated: wait %d < compute %d", last.Wait, last.Compute)
		}
	}
	if s.SimCyclesPerSec <= 0 {
		t.Errorf("engine throughput figure missing: %f", s.SimCyclesPerSec)
	}
}

func TestOverlap(t *testing.T) {
	s, err := Overlap()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) == 0 {
		t.Fatal("no points")
	}
	if !s.AllReclaimedPositive {
		t.Error("def2 should reclaim overlap cycles at every swept cell")
	}
	if s.TotalReclaimed <= 0 {
		t.Errorf("total reclaimed = %d, want > 0", s.TotalReclaimed)
	}
	for _, pt := range s.Points {
		if pt.Def1Release <= pt.Def2Release {
			t.Errorf("warmers=%d lat=%d: def1 release stall %d not above def2's %d",
				pt.Warmers, pt.NetLatency, pt.Def1Release, pt.Def2Release)
		}
	}
}

func TestOpenLoop(t *testing.T) {
	s, err := OpenLoopUpTo(32)
	if err != nil {
		t.Fatal(err)
	}
	sweeps := map[string][]metrics.SaturationPoint{
		"lock": s.Lock, "barrier": s.Barrier, "prodcons": s.ProdCons,
	}
	knees := map[string]int{"lock": s.KneeLock, "barrier": s.KneeBarrier, "prodcons": s.KneeProdCons}
	for name, pts := range sweeps {
		if len(pts) == 0 {
			t.Fatalf("%s sweep is empty", name)
		}
		// Raising the offered rate can only lengthen the drain.
		for i := 1; i < len(pts); i++ {
			if pts[i].Cycles < pts[i-1].Cycles {
				t.Errorf("%s: drain shortened as rate rose: %d cycles at rate %d, %d at rate %d",
					name, pts[i-1].Cycles, pts[i-1].Load, pts[i].Cycles, pts[i].Load)
			}
		}
		// Every scenario must saturate within the sweep, at a rate past the
		// bottom (the lightest offered load must not read as stall-dominated —
		// that would mean arrival slack leaked into the wait aggregate).
		if knees[name] == 0 {
			t.Errorf("%s sweep never found a knee", name)
		}
		if knees[name] == pts[0].Load {
			t.Errorf("%s knee at the lightest rate %d: arrival slack miscounted as backlog", name, knees[name])
		}
		last := pts[len(pts)-1]
		if last.Wait < last.Compute {
			t.Errorf("%s: highest rate is not backlog-dominated: wait %d < compute %d", name, last.Wait, last.Compute)
		}
		if first := pts[0]; first.Wait >= first.Compute {
			t.Errorf("%s: lightest rate reads as saturated: wait %d >= compute %d", name, first.Wait, first.Compute)
		}
	}
	if s.SimCyclesPerSec <= 0 {
		t.Errorf("engine throughput figure missing: %f", s.SimCyclesPerSec)
	}
}
