package experiments

import (
	"fmt"

	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/par"
	"weakorder/internal/proc"
	"weakorder/internal/program"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// ProtocolSummary reports E11: write-invalidate vs write-update on the data
// path (synchronization always keeps the exclusive/reserve path).
type ProtocolSummary struct {
	Table *stats.Table
	// UpdateWinsProdCons / InvalidateWinsStreaming capture the classic
	// trade-off both ways.
	UpdateWinsProdCons      bool
	InvalidateWinsStreaming bool
}

// streaming builds the update-protocol worst case: one processor rewrites a
// single location n times that another processor holds a (warmed) copy of,
// reading it once at the end through a sync flag. DRF0-conforming.
func streaming(n int) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("streaming-n%d", n))
	const (
		x  mem.Addr = 0
		gо mem.Addr = 1
		f  mem.Addr = 2
	)
	// P0: wait for the warmer, stream writes, release.
	b.Thread().
		Label("wait")
	b.SyncLoad(0, gо)
	b.Bne(0, program.Imm(1), "wait")
	b.Mov(1, program.Imm(0))
	b.Label("loop")
	b.Blt(1, program.Imm(mem.Value(n)), "body")
	b.Jmp("end")
	b.Label("body")
	b.Store(x, program.R(1))
	b.Add(1, 1, program.Imm(1))
	b.Jmp("loop")
	b.Label("end")
	b.SyncStore(f, program.Imm(1))
	b.Halt()
	// P1: warm a copy of x, announce, wait for the flag, read the result.
	b.Thread().
		Load(2, x).
		SyncStore(gо, program.Imm(1)).
		Label("spin")
	b.SyncLoad(3, f)
	b.Beq(3, program.Imm(0), "spin")
	b.Load(4, x)
	b.Halt()
	return b.MustBuild()
}

// Protocol runs E11: the same DRF0 workloads under both data-path protocols
// on the Section-5 machine. Producer/consumer favors update (the consumer's
// copy stays warm); streaming writes favor invalidation (one invalidation,
// then exclusive hits, versus a full update round trip per write). The four
// (workload, protocol) runs are independent and fan out through the worker
// pool; the table is assembled serially in the fixed cell order.
func Protocol() (*ProtocolSummary, error) {
	s := &ProtocolSummary{}
	tbl := stats.NewTable("E11 — write-invalidate vs write-update data path (WO-def2)",
		"workload", "protocol", "cycles", "messages", "read misses", "dir updates")
	pc := workload.ProducerConsumer(12, 10)
	st := streaming(24)
	type cell struct {
		prog  *program.Program
		proto machine.ProtocolKind
	}
	cells := []cell{
		{pc, machine.ProtocolInvalidate},
		{pc, machine.ProtocolUpdate},
		{st, machine.ProtocolInvalidate},
		{st, machine.ProtocolUpdate},
	}
	results, err := par.Map(cells, 0, func(_ int, c cell) (*machine.Result, error) {
		cfg := machine.NewConfig(proc.PolicyWODef2)
		cfg.Protocol = c.proto
		return machine.Run(c.prog, cfg)
	})
	if err != nil {
		return nil, err
	}
	cycles := make([]sim.Time, len(cells))
	for i, c := range cells {
		res := results[i]
		var rm int64
		for _, cs := range res.CacheStats {
			rm += cs.Get("read_misses")
		}
		tbl.Row(c.prog.Name, c.proto.String(), int64(res.Cycles), res.Messages, rm, res.DirStats.Get("updates"))
		cycles[i] = res.Cycles
	}
	s.UpdateWinsProdCons = cycles[1] < cycles[0]
	s.InvalidateWinsStreaming = cycles[2] < cycles[3]
	tbl.Note("update keeps consumer copies warm (producer/consumer); invalidation turns streaming rewrites into exclusive hits")
	s.Table = tbl
	return s, nil
}
