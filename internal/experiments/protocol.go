package experiments

import (
	"fmt"

	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/proc"
	"weakorder/internal/program"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// ProtocolSummary reports E11: write-invalidate vs write-update on the data
// path (synchronization always keeps the exclusive/reserve path).
type ProtocolSummary struct {
	Table *stats.Table
	// UpdateWinsProdCons / InvalidateWinsStreaming capture the classic
	// trade-off both ways.
	UpdateWinsProdCons      bool
	InvalidateWinsStreaming bool
}

// streaming builds the update-protocol worst case: one processor rewrites a
// single location n times that another processor holds a (warmed) copy of,
// reading it once at the end through a sync flag. DRF0-conforming.
func streaming(n int) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("streaming-n%d", n))
	const (
		x  mem.Addr = 0
		gо mem.Addr = 1
		f  mem.Addr = 2
	)
	// P0: wait for the warmer, stream writes, release.
	b.Thread().
		Label("wait")
	b.SyncLoad(0, gо)
	b.Bne(0, program.Imm(1), "wait")
	b.Mov(1, program.Imm(0))
	b.Label("loop")
	b.Blt(1, program.Imm(mem.Value(n)), "body")
	b.Jmp("end")
	b.Label("body")
	b.Store(x, program.R(1))
	b.Add(1, 1, program.Imm(1))
	b.Jmp("loop")
	b.Label("end")
	b.SyncStore(f, program.Imm(1))
	b.Halt()
	// P1: warm a copy of x, announce, wait for the flag, read the result.
	b.Thread().
		Load(2, x).
		SyncStore(gо, program.Imm(1)).
		Label("spin")
	b.SyncLoad(3, f)
	b.Beq(3, program.Imm(0), "spin")
	b.Load(4, x)
	b.Halt()
	return b.MustBuild()
}

// Protocol runs E11: the same DRF0 workloads under both data-path protocols
// on the Section-5 machine. Producer/consumer favors update (the consumer's
// copy stays warm); streaming writes favor invalidation (one invalidation,
// then exclusive hits, versus a full update round trip per write).
func Protocol() (*ProtocolSummary, error) {
	s := &ProtocolSummary{}
	tbl := stats.NewTable("E11 — write-invalidate vs write-update data path (WO-def2)",
		"workload", "protocol", "cycles", "messages", "read misses", "dir updates")
	type measurement struct{ cycles sim.Time }
	run := func(p *program.Program, proto machine.ProtocolKind) (measurement, error) {
		cfg := machine.NewConfig(proc.PolicyWODef2)
		cfg.Protocol = proto
		res, err := machine.Run(p, cfg)
		if err != nil {
			return measurement{}, err
		}
		var rm int64
		for _, cs := range res.CacheStats {
			rm += cs.Get("read_misses")
		}
		tbl.Row(p.Name, proto.String(), int64(res.Cycles), res.Messages, rm, res.DirStats.Get("updates"))
		return measurement{cycles: res.Cycles}, nil
	}
	pc := workload.ProducerConsumer(12, 10)
	pcInv, err := run(pc, machine.ProtocolInvalidate)
	if err != nil {
		return nil, err
	}
	pcUpd, err := run(pc, machine.ProtocolUpdate)
	if err != nil {
		return nil, err
	}
	st := streaming(24)
	stInv, err := run(st, machine.ProtocolInvalidate)
	if err != nil {
		return nil, err
	}
	stUpd, err := run(st, machine.ProtocolUpdate)
	if err != nil {
		return nil, err
	}
	s.UpdateWinsProdCons = pcUpd.cycles < pcInv.cycles
	s.InvalidateWinsStreaming = stInv.cycles < stUpd.cycles
	tbl.Note("update keeps consumer copies warm (producer/consumer); invalidation turns streaming rewrites into exclusive hits")
	s.Table = tbl
	return s, nil
}
