package experiments

import (
	"fmt"

	"weakorder/internal/machine"
	"weakorder/internal/proc"
	"weakorder/internal/program"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// SpinRow is one (workload, policy) measurement of E5.
type SpinRow struct {
	Workload string
	Policy   proc.Policy
	Cycles   sim.Time
	// GetX counts exclusive acquisitions at the directory: the direct
	// evidence of read-only-sync serialization (each Test of a spinning
	// waiter becomes a GetX under plain Def2).
	GetX int64
	// SyncHits counts cache hits — under the DRF1 refinement spinning Tests
	// hit a shared copy locally.
	Hits int64
}

// SpinSummary reports E5.
type SpinSummary struct {
	Table *stats.Table
	Rows  []SpinRow
	// RefinementFasterOnBarrier / OnLock: the Section-6 claim that removing
	// read-only-sync serialization improves spinning synchronization.
	RefinementFasterOnBarrier bool
	RefinementFasterOnLock    bool
	// GetXReduced: the refinement cut exclusive acquisitions.
	GetXReduced bool
}

// Spin runs E5: Section 6 observes that the Section-5 implementation
// "serializes all these synchronization operations, treating them as writes"
// when software performs repeated testing of a synchronization variable
// (Test-and-TestAndSet, barrier spinning), and proposes the data-race-free
// refinement that lets read-only synchronization go unserialized. The sweep
// compares plain WO-def2 against WO-def2-drf1 on spin-heavy workloads.
func Spin() (*SpinSummary, error) {
	s := &SpinSummary{}
	tbl := stats.NewTable("E5 — read-only-sync serialization (Section 6): WO-def2 vs WO-def2-drf1",
		"workload", "policy", "cycles", "dir GetX", "cache hits")
	cases := []struct {
		name string
		prog *program.Program
	}{
		{"barrier-4p-4ph-syncspin", workload.Barrier(4, 4, 20, workload.SpinSync)},
		{"lock-4p-4acq-ttas", workload.Lock(4, 4, 40, 5, workload.SpinSync)},
	}
	var results [][2]SpinRow
	for _, c := range cases {
		var pair [2]SpinRow
		for i, pol := range []proc.Policy{proc.PolicyWODef2, proc.PolicyWODef2DRF1} {
			cfg := machine.NewConfig(pol)
			res, err := machine.Run(c.prog, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", c.name, pol, err)
			}
			var hits int64
			for _, cs := range res.CacheStats {
				hits += cs.Get("hits")
			}
			row := SpinRow{
				Workload: c.name,
				Policy:   pol,
				Cycles:   res.Cycles,
				GetX:     res.DirStats.Get("getx"),
				Hits:     hits,
			}
			pair[i] = row
			s.Rows = append(s.Rows, row)
			tbl.Row(c.name, pol.String(), int64(row.Cycles), row.GetX, row.Hits)
		}
		results = append(results, pair)
	}
	s.RefinementFasterOnBarrier = results[0][1].Cycles < results[0][0].Cycles
	s.RefinementFasterOnLock = results[1][1].Cycles < results[1][0].Cycles
	s.GetXReduced = results[0][1].GetX < results[0][0].GetX && results[1][1].GetX < results[1][0].GetX
	tbl.Note("plain def2 turns every spinning Test into an exclusive (GetX) acquisition; the refinement spins on a shared copy")
	s.Table = tbl
	return s, nil
}
