package experiments

import (
	"fmt"

	"weakorder/internal/machine"
	"weakorder/internal/par"
	"weakorder/internal/proc"
	"weakorder/internal/program"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// QuantRow is one (workload, policy) measurement.
type QuantRow struct {
	Workload string
	Policy   proc.Policy
	Cycles   sim.Time
	Stall    int64 // total stall cycles across processors (all classes)
	Messages uint64
	Speedup  float64 // vs SC on the same workload
}

// QuantSummary reports E4.
type QuantSummary struct {
	Table *stats.Table
	Rows  []QuantRow
	// WeakNeverSlower: on every workload, both weakly ordered policies ran
	// at least as fast as SC.
	WeakNeverSlower bool
	// Def2NeverSlowerThanDef1 holds on workloads without read-only-sync
	// spinning pathologies.
	Def2NeverSlowerThanDef1 bool
}

// stallClasses are the processor stall counters summed into QuantRow.Stall.
var stallClasses = []string{
	"read_stall_cycles", "write_stall_cycles", "mshr_stall_cycles",
	"sync_counter_stall_cycles", "sync_line_stall_cycles", "sync_performed_stall_cycles",
}

func totalStall(res *machine.Result) int64 {
	var n int64
	for _, c := range stallClasses {
		n += res.TotalStall(c)
	}
	return n
}

// quantWorkloads are the E4 benchmark programs: the communication patterns
// the paper's introduction motivates (synchronized data sharing) at moderate
// scale.
func quantWorkloads() []struct {
	name string
	prog *program.Program
} {
	return []struct {
		name string
		prog *program.Program
	}{
		{"prodcons-16x20", workload.ProducerConsumer(16, 20)},
		{"lock-4p-6acq", workload.Lock(4, 6, 10, 10, workload.SpinTAS)},
		{"barrier-4p-5ph", workload.Barrier(4, 5, 30, workload.SpinSync)},
		{"fig3-3w", workload.Fig3(3, 150)},
	}
}

// quantPolicies are the policies E4 compares, SC first as the baseline.
var quantPolicies = []proc.Policy{proc.PolicySC, proc.PolicyWODef1, proc.PolicyWODef2}

// Quant runs E4: the quantitative Definition-1 vs Definition-2 comparison the
// paper's conclusion calls for, with sequential consistency as the baseline.
// The (workload, policy) cells are independent timed-simulator runs and fan
// out through the worker pool; speedups and the summary table are derived
// serially from the ordered results, so output is identical at any width.
func Quant() (*QuantSummary, error) {
	s := &QuantSummary{WeakNeverSlower: true, Def2NeverSlowerThanDef1: true}
	tbl := stats.NewTable("E4 — cycles, stalls and traffic by policy (network fabric, latency 10)",
		"workload", "policy", "cycles", "stall cycles", "messages", "speedup vs SC")
	type cell struct {
		name string
		prog *program.Program
		pol  proc.Policy
	}
	var cells []cell
	for _, w := range quantWorkloads() {
		for _, pol := range quantPolicies {
			cells = append(cells, cell{name: w.name, prog: w.prog, pol: pol})
		}
	}
	results, err := par.Map(cells, 0, func(_ int, c cell) (*machine.Result, error) {
		res, err := machine.Run(c.prog, machine.NewConfig(c.pol))
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", c.name, c.pol, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var scCycles, def1Cycles sim.Time
	for i, c := range cells {
		res := results[i]
		row := QuantRow{
			Workload: c.name,
			Policy:   c.pol,
			Cycles:   res.Cycles,
			Stall:    totalStall(res),
			Messages: res.Messages,
		}
		switch c.pol {
		case proc.PolicySC:
			scCycles = res.Cycles
			row.Speedup = 1
		default:
			row.Speedup = float64(scCycles) / float64(res.Cycles)
			if res.Cycles > scCycles {
				s.WeakNeverSlower = false
			}
		}
		if c.pol == proc.PolicyWODef1 {
			def1Cycles = res.Cycles
		}
		if c.pol == proc.PolicyWODef2 && res.Cycles > def1Cycles {
			s.Def2NeverSlowerThanDef1 = false
		}
		s.Rows = append(s.Rows, row)
		tbl.Row(c.name, c.pol.String(), int64(row.Cycles), row.Stall, row.Messages, row.Speedup)
	}
	tbl.Note("speedups are synthetic-simulator shapes, not absolute-hardware claims")
	s.Table = tbl
	return s, nil
}
