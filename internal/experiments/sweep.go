package experiments

import (
	"weakorder/internal/machine"
	"weakorder/internal/par"
	"weakorder/internal/proc"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// SweepPoint is one (fabric, latency, policy) measurement of E10.
type SweepPoint struct {
	Fabric  string
	Latency sim.Time
	Policy  proc.Policy
	Cycles  sim.Time
}

// SweepSummary reports E10.
type SweepSummary struct {
	Table  *stats.Table
	Points []SweepPoint
	// GapGrowsWithLatency: on the network fabric, Def2's absolute cycle
	// advantage over Def1 does not shrink as the interconnect slows — the
	// benefit of overlapping the release with outstanding writes scales
	// with how long global performance takes.
	GapGrowsWithLatency bool
}

// Sweep runs E10: sensitivity of the Definition-1 vs Definition-2 comparison
// to interconnect latency and fabric, on the communication-bound
// producer/consumer workload. The paper argues the new implementation's
// advantage comes from overlapping the issuer's post-release work with the
// global performance of its writes; the slower that performance, the bigger
// the advantage, which is exactly the trend the sweep verifies.
// Every (fabric, latency, policy) cell is an independent timed-simulator run,
// so the grid fans out through the worker pool; gains, the gap trend and the
// table derive serially from the ordered cycle counts, so the summary is
// identical at any pool width.
func Sweep() (*SweepSummary, error) {
	s := &SweepSummary{GapGrowsWithLatency: true}
	tbl := stats.NewTable("E10 — latency/fabric sensitivity (producer/consumer, 12 items)",
		"fabric", "latency", "policy", "cycles", "def2 gain vs def1")
	prog := workload.ProducerConsumer(12, 20)
	netLats := []sim.Time{5, 10, 20, 40, 80}
	netPols := []proc.Policy{proc.PolicySC, proc.PolicyWODef1, proc.PolicyWODef2}
	busCycs := []sim.Time{2, 8}
	busPols := []proc.Policy{proc.PolicyWODef1, proc.PolicyWODef2}
	type cell struct {
		fabric string
		lat    sim.Time // network latency or bus cycle
		pol    proc.Policy
	}
	var cells []cell
	for _, lat := range netLats {
		for _, pol := range netPols {
			cells = append(cells, cell{fabric: "network", lat: lat, pol: pol})
		}
	}
	// Bus cells for reference: the serialized fabric compresses differences
	// because every message contends for the same resource.
	for _, cyc := range busCycs {
		for _, pol := range busPols {
			cells = append(cells, cell{fabric: "bus", lat: cyc, pol: pol})
		}
	}
	cycles, err := par.Map(cells, 0, func(_ int, c cell) (sim.Time, error) {
		cfg := machine.NewConfig(c.pol)
		if c.fabric == "bus" {
			cfg.Fabric = machine.FabricBus
			cfg.BusCycle = c.lat
		} else {
			cfg.NetLatency = c.lat
		}
		res, err := machine.Run(prog, cfg)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	var prevGap sim.Time = -1 << 60
	var def1, def2 sim.Time
	lastLat := sim.Time(-1)
	for i, c := range cells {
		cyc := cycles[i]
		s.Points = append(s.Points, SweepPoint{Fabric: c.fabric, Latency: c.lat, Policy: c.pol, Cycles: cyc})
		gain := ""
		switch {
		case c.pol == proc.PolicyWODef1:
			def1 = cyc
		case c.pol == proc.PolicyWODef2:
			def2 = cyc
			gain = stats.Ratio(float64(def1), float64(def2))
		}
		tbl.Row(c.fabric, int64(c.lat), c.pol.String(), int64(cyc), gain)
		if c.fabric == "network" && c.pol == proc.PolicyWODef2 && c.lat != lastLat {
			gap := def1 - def2
			if gap < prevGap {
				s.GapGrowsWithLatency = false
			}
			prevGap = gap
			lastLat = c.lat
		}
	}
	tbl.Note("the def1-def2 cycle gap must not shrink as network latency grows (release overlap scales with performance latency)")
	s.Table = tbl
	return s, nil
}
