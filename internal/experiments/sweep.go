package experiments

import (
	"weakorder/internal/machine"
	"weakorder/internal/proc"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// SweepPoint is one (fabric, latency, policy) measurement of E10.
type SweepPoint struct {
	Fabric  string
	Latency sim.Time
	Policy  proc.Policy
	Cycles  sim.Time
}

// SweepSummary reports E10.
type SweepSummary struct {
	Table  *stats.Table
	Points []SweepPoint
	// GapGrowsWithLatency: on the network fabric, Def2's absolute cycle
	// advantage over Def1 does not shrink as the interconnect slows — the
	// benefit of overlapping the release with outstanding writes scales
	// with how long global performance takes.
	GapGrowsWithLatency bool
}

// Sweep runs E10: sensitivity of the Definition-1 vs Definition-2 comparison
// to interconnect latency and fabric, on the communication-bound
// producer/consumer workload. The paper argues the new implementation's
// advantage comes from overlapping the issuer's post-release work with the
// global performance of its writes; the slower that performance, the bigger
// the advantage, which is exactly the trend the sweep verifies.
func Sweep() (*SweepSummary, error) {
	s := &SweepSummary{GapGrowsWithLatency: true}
	tbl := stats.NewTable("E10 — latency/fabric sensitivity (producer/consumer, 12 items)",
		"fabric", "latency", "policy", "cycles", "def2 gain vs def1")
	prog := workload.ProducerConsumer(12, 20)
	var prevGap sim.Time = -1 << 60
	for _, lat := range []sim.Time{5, 10, 20, 40, 80} {
		var def1, def2 sim.Time
		for _, pol := range []proc.Policy{proc.PolicySC, proc.PolicyWODef1, proc.PolicyWODef2} {
			cfg := machine.NewConfig(pol)
			cfg.NetLatency = lat
			res, err := machine.Run(prog, cfg)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, SweepPoint{Fabric: "network", Latency: lat, Policy: pol, Cycles: res.Cycles})
			gain := ""
			switch pol {
			case proc.PolicyWODef1:
				def1 = res.Cycles
			case proc.PolicyWODef2:
				def2 = res.Cycles
				gain = stats.Ratio(float64(def1), float64(def2))
			}
			tbl.Row("network", int64(lat), pol.String(), int64(res.Cycles), gain)
		}
		gap := def1 - def2
		if gap < prevGap {
			s.GapGrowsWithLatency = false
		}
		prevGap = gap
	}
	// Bus rows for reference: the serialized fabric compresses differences
	// because every message contends for the same resource.
	for _, cyc := range []sim.Time{2, 8} {
		var def1 sim.Time
		for _, pol := range []proc.Policy{proc.PolicyWODef1, proc.PolicyWODef2} {
			cfg := machine.NewConfig(pol)
			cfg.Fabric = machine.FabricBus
			cfg.BusCycle = cyc
			res, err := machine.Run(prog, cfg)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, SweepPoint{Fabric: "bus", Latency: cyc, Policy: pol, Cycles: res.Cycles})
			gain := ""
			if pol == proc.PolicyWODef1 {
				def1 = res.Cycles
			} else {
				gain = stats.Ratio(float64(def1), float64(res.Cycles))
			}
			tbl.Row("bus", int64(cyc), pol.String(), int64(res.Cycles), gain)
		}
	}
	tbl.Note("the def1-def2 cycle gap must not shrink as network latency grows (release overlap scales with performance latency)")
	s.Table = tbl
	return s, nil
}
