package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"weakorder/internal/par"
)

// TestDeterministicAcrossPoolWidths is the regression guard for the worker
// pool: every experiment summary — tables, counters, derived booleans — must
// be byte-identical whether the cells ran serially or fanned out across
// GOMAXPROCS workers. par.Map collects results in input order and all
// summary assembly is serial, so any divergence here means a cell picked up
// shared mutable state.
func TestDeterministicAcrossPoolWidths(t *testing.T) {
	widths := []int{1, runtime.GOMAXPROCS(0)}

	t.Run("Contract", func(t *testing.T) {
		var got []*ContractSummary
		for _, w := range widths {
			restore := par.SetWorkers(w)
			s, err := Contract(12, 7)
			restore()
			if err != nil {
				t.Fatalf("Contract at width %d: %v", w, err)
			}
			got = append(got, s)
		}
		if !reflect.DeepEqual(got[0], got[1]) {
			t.Errorf("Contract summaries differ between widths %v:\n%+v\nvs\n%+v",
				widths, got[0], got[1])
		}
	})

	t.Run("Overlap", func(t *testing.T) {
		var got []*OverlapSummary
		for _, w := range widths {
			restore := par.SetWorkers(w)
			s, err := Overlap()
			restore()
			if err != nil {
				t.Fatalf("Overlap at width %d: %v", w, err)
			}
			got = append(got, s)
		}
		if !reflect.DeepEqual(got[0], got[1]) {
			t.Errorf("Overlap summaries differ between widths %v:\n%+v\nvs\n%+v",
				widths, got[0], got[1])
		}
	})

	t.Run("Sweep", func(t *testing.T) {
		var got []*SweepSummary
		for _, w := range widths {
			restore := par.SetWorkers(w)
			s, err := Sweep()
			restore()
			if err != nil {
				t.Fatalf("Sweep at width %d: %v", w, err)
			}
			got = append(got, s)
		}
		if !reflect.DeepEqual(got[0], got[1]) {
			t.Errorf("Sweep summaries differ between widths %v:\n%+v\nvs\n%+v",
				widths, got[0], got[1])
		}
	})
}
