package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"weakorder/internal/par"
)

// TestDeterministicAcrossPoolWidths is the regression guard for the worker
// pool: every experiment summary — tables, counters, derived booleans — must
// be byte-identical whether the cells ran serially or fanned out across
// GOMAXPROCS workers. par.Map collects results in input order and all
// summary assembly is serial, so any divergence here means a cell picked up
// shared mutable state.
func TestDeterministicAcrossPoolWidths(t *testing.T) {
	widths := []int{1, runtime.GOMAXPROCS(0)}

	t.Run("Contract", func(t *testing.T) {
		var got []*ContractSummary
		for _, w := range widths {
			restore := par.SetWorkers(w)
			s, err := Contract(12, 7)
			restore()
			if err != nil {
				t.Fatalf("Contract at width %d: %v", w, err)
			}
			got = append(got, s)
		}
		if !reflect.DeepEqual(got[0], got[1]) {
			t.Errorf("Contract summaries differ between widths %v:\n%+v\nvs\n%+v",
				widths, got[0], got[1])
		}
	})

	t.Run("Overlap", func(t *testing.T) {
		var got []*OverlapSummary
		for _, w := range widths {
			restore := par.SetWorkers(w)
			s, err := Overlap()
			restore()
			if err != nil {
				t.Fatalf("Overlap at width %d: %v", w, err)
			}
			got = append(got, s)
		}
		if !reflect.DeepEqual(got[0], got[1]) {
			t.Errorf("Overlap summaries differ between widths %v:\n%+v\nvs\n%+v",
				widths, got[0], got[1])
		}
	})

	t.Run("Capacity", func(t *testing.T) {
		// SimCyclesPerSec is wall-clock and legitimately varies; everything
		// else — points, knees, the rendered table — must be byte-identical.
		var got []*CapacitySummary
		for _, w := range widths {
			restore := par.SetWorkers(w)
			s, err := CapacityUpTo(8)
			restore()
			if err != nil {
				t.Fatalf("Capacity at width %d: %v", w, err)
			}
			s.SimCyclesPerSec = 0
			got = append(got, s)
		}
		if got[0].Table.String() != got[1].Table.String() || !reflect.DeepEqual(got[0].High, got[1].High) ||
			!reflect.DeepEqual(got[0].Low, got[1].Low) || got[0].KneeHigh != got[1].KneeHigh || got[0].KneeLow != got[1].KneeLow {
			t.Errorf("Capacity summaries differ between widths %v:\n%s\nvs\n%s",
				widths, got[0].Table, got[1].Table)
		}
	})

	t.Run("OpenLoop", func(t *testing.T) {
		// Same shape as Capacity: SimCyclesPerSec is wall-clock and varies;
		// the tables, points, and knees must be byte-identical.
		var got []*OpenLoopSummary
		for _, w := range widths {
			restore := par.SetWorkers(w)
			s, err := OpenLoopUpTo(8)
			restore()
			if err != nil {
				t.Fatalf("OpenLoop at width %d: %v", w, err)
			}
			s.SimCyclesPerSec = 0
			got = append(got, s)
		}
		if got[0].Table.String() != got[1].Table.String() || !reflect.DeepEqual(got[0].Lock, got[1].Lock) ||
			!reflect.DeepEqual(got[0].Barrier, got[1].Barrier) || !reflect.DeepEqual(got[0].ProdCons, got[1].ProdCons) ||
			got[0].KneeLock != got[1].KneeLock || got[0].KneeBarrier != got[1].KneeBarrier ||
			got[0].KneeProdCons != got[1].KneeProdCons {
			t.Errorf("OpenLoop summaries differ between widths %v:\n%s\nvs\n%s",
				widths, got[0].Table, got[1].Table)
		}
	})

	t.Run("Sweep", func(t *testing.T) {
		var got []*SweepSummary
		for _, w := range widths {
			restore := par.SetWorkers(w)
			s, err := Sweep()
			restore()
			if err != nil {
				t.Fatalf("Sweep at width %d: %v", w, err)
			}
			got = append(got, s)
		}
		if !reflect.DeepEqual(got[0], got[1]) {
			t.Errorf("Sweep summaries differ between widths %v:\n%+v\nvs\n%+v",
				widths, got[0], got[1])
		}
	})
}
