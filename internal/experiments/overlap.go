package experiments

import (
	"weakorder/internal/machine"
	"weakorder/internal/metrics"
	"weakorder/internal/par"
	"weakorder/internal/proc"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// OverlapPoint is one cell of the E12 overlap-accounting sweep: the Figure-3
// shape run under both weak-ordering definitions with cycle attribution on.
type OverlapPoint struct {
	Warmers    int
	NetLatency sim.Time
	WorkAfter  int
	Def1P0     sim.Time // producer completion under Definition 1
	Def2P0     sim.Time // producer completion under Definition 2
	// Def1Release / Def2Release are the producer's cycles attributed to
	// waiting at its release (counter-stall plus post-commit fence-stall).
	Def1Release int64
	Def2Release int64
	// ReserveStall is the def2 run's total cycles any processor spent parked
	// behind a reserve bit — where the def1 producer stall migrated to.
	ReserveStall int64
	// Reclaimed is Def1P0 − Def2P0: post-release work cycles the Definition-2
	// machine overlapped with the payload's global performance.
	Reclaimed int64
}

// OverlapSummary reports E12.
type OverlapSummary struct {
	Table  *stats.Table
	Points []OverlapPoint
	// AllReclaimedPositive is the headline: at every swept cell the def2
	// producer finishes strictly earlier, i.e. overlap reclaims cycles.
	AllReclaimedPositive bool
	// TotalReclaimed sums reclaimed cycles across the sweep.
	TotalReclaimed int64
}

// Overlap runs E12: the Figure-3 experiment re-measured through the cycle
// attribution of internal/metrics. Where E3 only compares finish times, E12
// shows *why* they differ — the def1 producer's release stall (counter wait
// until the payload write performs globally) disappears from the def2
// producer's buckets, and a reserve-stall charge appears on whoever touches
// the reserved line instead. Each (warmers, latency) cell runs both policies
// as independent simulator runs and fans out through the worker pool; the
// table and summary derive serially from the ordered results.
func Overlap() (*OverlapSummary, error) {
	s := &OverlapSummary{AllReclaimedPositive: true}
	tbl := stats.NewTable("E12 — overlap accounting (Figure-3 shape, def1 vs def2)",
		"warmers", "netlat", "work", "def1 P0", "def2 P0",
		"def1 release stall", "def2 release stall", "def2 reserve stall", "reclaimed")
	type cell struct {
		warmers int
		lat     sim.Time
	}
	var cells []cell
	for _, warmers := range []int{1, 2, 4} {
		for _, lat := range []sim.Time{10, 30, 60} {
			cells = append(cells, cell{warmers, lat})
		}
	}
	const work = 200
	points, err := par.Map(cells, 0, func(_ int, c cell) (OverlapPoint, error) {
		pt := OverlapPoint{Warmers: c.warmers, NetLatency: c.lat, WorkAfter: work}
		prog := workload.Fig3(c.warmers, work)
		run := func(pol proc.Policy) (*machine.Result, error) {
			cfg := machine.NewConfig(pol)
			cfg.NetLatency = c.lat
			cfg.Metrics = true
			return machine.Run(prog, cfg)
		}
		def1, err := run(proc.PolicyWODef1)
		if err != nil {
			return pt, err
		}
		def2, err := run(proc.PolicyWODef2)
		if err != nil {
			return pt, err
		}
		release := func(rep *metrics.Report) int64 {
			return rep.ProcStall(0, metrics.ClassCounterStall) +
				rep.ProcStall(0, metrics.ClassFenceStall)
		}
		pt.Def1P0 = def1.ProcFinish[0]
		pt.Def2P0 = def2.ProcFinish[0]
		pt.Def1Release = release(def1.Metrics)
		pt.Def2Release = release(def2.Metrics)
		pt.ReserveStall = def2.Metrics.Stall(metrics.ClassReserveStall)
		pt.Reclaimed = int64(pt.Def1P0 - pt.Def2P0)
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	for _, pt := range points {
		s.Points = append(s.Points, pt)
		s.TotalReclaimed += pt.Reclaimed
		if pt.Reclaimed <= 0 {
			s.AllReclaimedPositive = false
		}
		tbl.Row(pt.Warmers, int64(pt.NetLatency), pt.WorkAfter,
			int64(pt.Def1P0), int64(pt.Def2P0),
			pt.Def1Release, pt.Def2Release, pt.ReserveStall, pt.Reclaimed)
	}
	tbl.Note("release stall = producer cycles attributed counter-stall + fence-stall at its Unset")
	tbl.Note("reserve stall stays 0 on clean symmetric-latency runs: the consumer's forwarded request")
	tbl.Note("always lands after the short reserve window closes; fault injection widens the window (see machine tests)")
	tbl.Note("reclaimed = def1 P0 finish - def2 P0 finish: overlap won by committing the release early")
	s.Table = tbl
	return s, nil
}
