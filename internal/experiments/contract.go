package experiments

import (
	"fmt"

	"weakorder/internal/fuzz"
	"weakorder/internal/litmus"
	"weakorder/internal/model"
	"weakorder/internal/par"
	"weakorder/internal/program"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// ContractSummary reports E6: the Definition-2 containment check.
type ContractSummary struct {
	Table *stats.Table
	// Programs is the number of random programs generated; DRF0Programs how
	// many obeyed DRF0.
	Programs, DRF0Programs int
	// ViolationsByMachine counts contract violations on DRF0 programs per
	// machine. The weakly ordered machines must show zero; the broken
	// machines (NonAtomic, the no-reserve ablation) must show some.
	ViolationsByMachine map[string]int
	// RacyNonSC counts racy programs on which some machine produced a
	// non-SC outcome — evidence that the relaxations are real and only the
	// synchronization model is protecting DRF0 software.
	RacyNonSC int
}

// contractMachines are the hardware models E6 sweeps: every weakly ordered
// machine (must honor the contract) plus the deliberately broken fixtures —
// the NonAtomic machine and the no-reserve ablation of the Section-5
// implementation (both must get caught).
func contractMachines() []litmus.Factory {
	return append(litmus.WeaklyOrderedFactories(), litmus.BrokenFactories()...)
}

// Contract runs E6 over n random straight-line programs at two
// synchronization densities (sparser sync yields mostly racy programs, denser
// mostly DRF0 ones). Programs are loop-free so outcome enumeration — which
// must key on read histories to preserve the paper's Result — stays
// exhaustive and bounded; spin-loop programs are covered by the litmus corpus
// and the timed machine tests instead. For every program the experiment
// decides Definition 3 by enumerating all idealized executions, then checks
// Definition 2's containment — outcomes(M, P) ⊆ outcomes(SC, P) — for every
// machine, using the paper's Result (all read values plus final memory).
func Contract(n int, seed int64) (*ContractSummary, error) {
	if n <= 0 {
		n = 40
	}
	s := &ContractSummary{ViolationsByMachine: make(map[string]int)}
	x := &model.Explorer{MaxTraceOps: 40}
	progs := make([]*program.Program, 0, n)
	for i := 0; i < n/3; i++ {
		progs = append(progs, workload.Random(seed+int64(i), workload.RandomConfig{
			Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4, SyncDensity: 35,
		}))
	}
	for i := n / 3; i < n/2; i++ {
		progs = append(progs, workload.Random(seed+int64(i), workload.RandomConfig{
			Procs: 2, DataVars: 1, SyncVars: 2, Ops: 5, SyncDensity: 70,
		}))
	}
	for i := n / 2; i < 2*n/3; i++ {
		// Three processors exercise transitive synchronization chains; two
		// ops each keeps the 3-way interleaving space tractable across all
		// nine machines.
		progs = append(progs, workload.Random(seed+int64(i), workload.RandomConfig{
			Procs: 3, DataVars: 2, SyncVars: 1, Ops: 2, SyncDensity: 50,
		}))
	}
	for i := 2 * n / 3; i < n; i++ {
		// Guarded message passing: DRF0 by construction with a conditional;
		// these are the programs whose protection *depends* on the reserve
		// mechanism, so they expose the no-reserve ablation.
		progs = append(progs, workload.RandomGuarded(seed+int64(i), 1+i%3, i%2))
	}
	s.Programs = len(progs)
	// Every program's containment check — the expensive part, quantifying
	// over all idealized executions — is independent of every other's, so the
	// sweep fans out through the worker pool. Each cell reports its verdicts
	// and the serial reduction below aggregates them in input order, keeping
	// the summary identical at any pool width.
	type verdict struct {
		obeys     bool
		violated  []string // machines violating the contract on this program
		racyNonSC bool
	}
	chk := &fuzz.Checker{Explorer: x, Machines: contractMachines()}
	verdicts, err := par.Map(progs, 0, func(_ int, p *program.Program) (verdict, error) {
		var v verdict
		rep, err := chk.Check(p)
		if err != nil {
			return v, fmt.Errorf("contract: %w", err)
		}
		v.obeys = rep.DRF0
		v.violated = rep.Violating()
		v.racyNonSC = rep.RacyNonSC()
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	for _, v := range verdicts {
		if v.obeys {
			s.DRF0Programs++
		}
		for _, name := range v.violated {
			s.ViolationsByMachine[name]++
		}
		if v.racyNonSC {
			s.RacyNonSC++
		}
	}
	tbl := stats.NewTable(
		fmt.Sprintf("E6 — Definition-2 contract over %d random programs (%d obey DRF0, %d racy with non-SC outcomes)",
			s.Programs, s.DRF0Programs, s.RacyNonSC),
		"machine", "contract violations on DRF0 programs")
	for _, f := range contractMachines() {
		tbl.Row(f.Name, s.ViolationsByMachine[f.Name])
	}
	tbl.Note("weakly ordered machines must read 0; the broken machines demonstrate the checker has teeth")
	s.Table = tbl
	return s, nil
}

// FenceSummary reports E7.
type FenceSummary struct {
	Table *stats.Table
	// Equal is true when the RP3 fence machine produced exactly the same
	// outcome set as the Definition-1 machine on every corpus program.
	Equal bool
}

// Fence runs E7: Section 2.1 notes the RP3's option of waiting for
// outstanding-request acknowledgements only at fence instructions "functions
// as a weakly ordered system". The experiment checks outcome-set equality
// between the RP3-fence machine and the Definition-1 machine over the whole
// litmus corpus.
func Fence() (*FenceSummary, error) {
	s := &FenceSummary{Equal: true}
	// Corpus programs include unbounded spins; bound execution length so
	// the Result-keyed enumeration terminates. Both machines get the same
	// bound, so set equality remains meaningful.
	x := &model.Explorer{MaxTraceOps: 20}
	tbl := stats.NewTable("E7 — RP3 fence option vs Definition 1 (outcome-set equality)",
		"program", "outcomes def1", "outcomes fence", "equal")
	type row struct {
		name   string
		d1, fe int
		eq     bool
	}
	rows, err := par.Map(litmus.Corpus(), 0, func(_ int, t *litmus.Test) (row, error) {
		d1, _, err := x.Outcomes(model.NewWODef1(t.Prog))
		if err != nil {
			return row{}, err
		}
		fe, _, err := x.Outcomes(model.NewFence(t.Prog))
		if err != nil {
			return row{}, err
		}
		eq := len(d1) == len(fe)
		if eq {
			for k := range d1 {
				if _, ok := fe[k]; !ok {
					eq = false
					break
				}
			}
		}
		return row{name: t.Name, d1: len(d1), fe: len(fe), eq: eq}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if !r.eq {
			s.Equal = false
		}
		tbl.Row(r.name, r.d1, r.fe, okStr(r.eq))
	}
	s.Table = tbl
	return s, nil
}
