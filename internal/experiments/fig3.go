package experiments

import (
	"weakorder/internal/machine"
	"weakorder/internal/proc"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// Fig3Point is one cell of the Figure-3 sweep.
type Fig3Point struct {
	Warmers    int
	NetLatency sim.Time
	WorkAfter  int
	Policy     proc.Policy
	P0Finish   sim.Time // producer completion (the processor Def1 stalls)
	P1Finish   sim.Time // consumer completion (stalled under both defs)
	SyncStall  int64    // issuer-side sync stall cycles (def1: counter wait)
	Reserves   int64    // reserve bits set (def2 machinery engaged)
}

// Fig3Summary reports E3.
type Fig3Summary struct {
	Table  *stats.Table
	Points []Fig3Point
	// Def1P0AlwaysSlower is the paper's headline claim: with post-release
	// work to overlap, the Definition-1 producer finishes strictly later
	// than the Definition-2 producer at every swept configuration.
	Def1P0AlwaysSlower bool
}

// Fig3 reproduces Figure 3 as a timed sweep. The producer writes a payload
// whose line `warmers` other caches hold shared (so its global performance
// needs a full invalidation round), releases a lock with Unset, and keeps
// computing; the consumer TestAndSets the lock and reads the payload.
// Definition-1 hardware stalls the producer at the Unset until the payload
// write is globally performed; the Section-5 implementation commits the Unset
// immediately and reserves the line, shifting the stall onto the consumer's
// TestAndSet.
func Fig3() (*Fig3Summary, error) {
	s := &Fig3Summary{Def1P0AlwaysSlower: true}
	tbl := stats.NewTable("E3/Figure 3 — producer stall under Definition 1 vs Definition 2",
		"warmers", "netlat", "work", "policy", "P0 finish", "P1 finish", "sync stall", "reserves")
	for _, warmers := range []int{1, 2, 4} {
		for _, lat := range []sim.Time{10, 30, 60} {
			const work = 200
			var def1P0, def2P0 sim.Time
			for _, pol := range []proc.Policy{proc.PolicySC, proc.PolicyWODef1, proc.PolicyWODef2} {
				p := workload.Fig3(warmers, work)
				cfg := machine.NewConfig(pol)
				cfg.NetLatency = lat
				res, err := machine.Run(p, cfg)
				if err != nil {
					return nil, err
				}
				var reserves int64
				for _, cs := range res.CacheStats {
					reserves += cs.Get("reserves_set")
				}
				pt := Fig3Point{
					Warmers:    warmers,
					NetLatency: lat,
					WorkAfter:  work,
					Policy:     pol,
					P0Finish:   res.ProcFinish[0],
					P1Finish:   res.ProcFinish[1],
					SyncStall:  res.ProcStats[0].Get("sync_counter_stall_cycles") + res.ProcStats[0].Get("sync_performed_stall_cycles"),
					Reserves:   reserves,
				}
				s.Points = append(s.Points, pt)
				tbl.Row(warmers, int64(lat), work, pol.String(), int64(pt.P0Finish), int64(pt.P1Finish), pt.SyncStall, pt.Reserves)
				switch pol {
				case proc.PolicyWODef1:
					def1P0 = pt.P0Finish
				case proc.PolicyWODef2:
					def2P0 = pt.P0Finish
				}
			}
			if def2P0 >= def1P0 {
				s.Def1P0AlwaysSlower = false
			}
		}
	}
	tbl.Note("Def1 stalls P0 at the Unset until W(x) performs; Def2 commits the Unset and reserves the line")
	tbl.Note("P1's TestAndSet is blocked under both definitions until the write performs (the paper's Figure 3)")
	s.Table = tbl
	return s, nil
}
