package experiments

import (
	"fmt"
	"time"

	"weakorder/internal/machine"
	"weakorder/internal/metrics"
	"weakorder/internal/par"
	"weakorder/internal/proc"
	"weakorder/internal/stats"
	"weakorder/internal/workload/openloop"
	"weakorder/internal/workload/spec"
	"weakorder/internal/workload/tracefmt"
)

// OpenLoopSummary reports E14: the open-loop arrival-rate sweep. Where E13
// raises the processor count on a closed-loop program, E14 fixes the machine
// and raises the offered arrival rate of three injected scenarios — the
// contended lock, the barrier storm, and producer/consumer pipelines — until
// the machine stops draining arrivals inside their window. The knee is the
// first rate where the drain overrun dominates compute and marginal
// delivered throughput has collapsed. Everything in Table and the point
// slices is deterministic; SimCyclesPerSec is the one wall-clock figure and
// must stay out of golden comparisons.
type OpenLoopSummary struct {
	Table *stats.Table
	// Lock, Barrier, ProdCons are the saturation sweeps per scenario, in
	// ascending arrival rate (operations per 1000 ticks per processor).
	Lock, Barrier, ProdCons []metrics.SaturationPoint
	// KneeLock/KneeBarrier/KneeProdCons are the arrival rates at each
	// sweep's knee (0 when the sweep never saturated).
	KneeLock, KneeBarrier, KneeProdCons int
	// SimCyclesPerSec is simulated cycles per CPU-second over all runs.
	SimCyclesPerSec float64
}

// OpenLoop runs E14 with the default sweep (rates up to 64).
func OpenLoop() (*OpenLoopSummary, error) { return OpenLoopUpTo(64) }

// openLoopProcs is E14's fixed machine size.
const openLoopProcs = 8

// openLoopSpec builds the single-phase spec for one sweep cell.
func openLoopSpec(scenario spec.Scenario, rate int) *spec.Spec {
	return &spec.Spec{
		SpecVersion: spec.Version,
		Name:        fmt.Sprintf("e14-%s-r%d", scenario, rate),
		Procs:       openLoopProcs,
		Seed:        7,
		Phases: []spec.Phase{
			{Duration: 6000, Rate: rate, Scenario: scenario, Work: 10},
		},
	}
}

// countingSource counts the records a source delivers, so delivered
// operations per kilocycle is measurable without touching the stream.
type countingSource struct {
	src openloop.Source
	n   int64
}

func (c *countingSource) Next(proc int) (tracefmt.Record, bool, error) {
	r, ok, err := c.src.Next(proc)
	if ok && err == nil {
		c.n++
	}
	return r, ok, err
}

// OpenLoopUpTo runs E14 with arrival rates 2..maxRate (doubling), so smoke
// runs can bound the sweep. Each cell injects one scenario at one offered
// rate for a fixed window; delivered operations per kilocycle against the
// offered rate gives the throughput curve, and the drain overrun past the
// window gives the saturation evidence.
func OpenLoopUpTo(maxRate int) (*OpenLoopSummary, error) {
	scenarios := []spec.Scenario{spec.ScenarioLock, spec.ScenarioBarrier, spec.ScenarioProdCons}
	var rates []int
	for r := 1; r <= maxRate; r *= 2 {
		rates = append(rates, r)
	}
	type cell struct {
		scenario spec.Scenario
		rate     int
	}
	var cells []cell
	for _, sc := range scenarios {
		for _, r := range rates {
			cells = append(cells, cell{scenario: sc, rate: r})
		}
	}
	type meas struct {
		point metrics.SaturationPoint
		ops   int64
		msgs  int64
		wall  time.Duration
	}
	results, err := par.Map(cells, 0, func(_ int, c cell) (meas, error) {
		s := openLoopSpec(c.scenario, c.rate)
		prog, err := openloop.Program(s)
		if err != nil {
			return meas{}, err
		}
		gen, err := openloop.NewGenerator(s, 0)
		if err != nil {
			return meas{}, err
		}
		counted := &countingSource{src: gen}
		cfg := machine.NewConfig(proc.PolicyWODef2)
		cfg.Workload = openloop.Compile(counted)
		cfg.Metrics = true
		start := time.Now()
		res, err := machine.Run(prog, cfg)
		wall := time.Since(start)
		if err != nil {
			return meas{}, err
		}
		thru := float64(counted.n) / float64(res.Cycles) * 1000
		return meas{
			point: metrics.NewOpenLoopSaturationPoint(c.rate, s.EndTime(), res.Cycles, res.Metrics, thru),
			ops:   counted.n,
			msgs:  int64(res.Messages),
			wall:  wall,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	s := &OpenLoopSummary{}
	tbl := stats.NewTable(fmt.Sprintf("E14 — open-loop: saturation knee of injected arrivals (WO-def2, %d procs, 6000-tick window)", openLoopProcs),
		"scenario", "rate", "ops", "cycles", "messages", "compute", "sync stall", "wait", "stall share", "ops/kcycle", "marginal")
	var wall time.Duration
	i := 0
	for _, sc := range scenarios {
		points := make([]metrics.SaturationPoint, 0, len(rates))
		for range rates {
			m := results[i]
			points = append(points, m.point)
			wall += m.wall
			i++
		}
		marginal := metrics.MarginalThroughput(points)
		knee := metrics.FindKnee(points)
		for j, p := range points {
			kneeMark := ""
			if j == knee {
				kneeMark = " <- knee"
			}
			m := results[i-len(points)+j]
			tbl.Row(sc, p.Load, m.ops, int64(p.Cycles), m.msgs, p.Compute, p.SyncStall, p.Wait,
				fmt.Sprintf("%.1f%%", p.StallShare()*100),
				fmt.Sprintf("%.3f", p.Throughput),
				fmt.Sprintf("%.3f%s", marginal[j], kneeMark))
		}
		kneeRate := 0
		if knee >= 0 {
			kneeRate = points[knee].Load
		}
		switch sc {
		case spec.ScenarioLock:
			s.Lock, s.KneeLock = points, kneeRate
		case spec.ScenarioBarrier:
			s.Barrier, s.KneeBarrier = points, kneeRate
		case spec.ScenarioProdCons:
			s.ProdCons, s.KneeProdCons = points, kneeRate
		}
	}
	tbl.Note("rate: offered arrivals per 1000 ticks per processor; wait folds the drain overrun past the arrival window in place of closed-loop idle")
	tbl.Note("knee: first rate where backlog wait >= compute and marginal delivered ops/kcycle fell below half the initial per-rate slope")
	s.Table = tbl

	var total int64
	for _, m := range results {
		total += int64(m.point.Cycles)
	}
	if secs := wall.Seconds(); secs > 0 {
		s.SimCyclesPerSec = float64(total) / secs
	}
	return s, nil
}
