package experiments

import (
	"weakorder/internal/core"
	"weakorder/internal/delayset"
	"weakorder/internal/model"
	"weakorder/internal/program"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

// DelaySetSummary reports E8: the Shasha-Snir software alternative the paper
// discusses in Section 2.1.
type DelaySetSummary struct {
	Table *stats.Table
	// Programs swept; RelaxedObserved counts programs where the plain write
	// buffer produced non-SC results; Violations counts programs where the
	// delay-enforcing machine still produced a non-SC result (must be 0).
	Programs, RelaxedObserved, Violations int
	// TotalDelays / TotalPairs measure the analysis' selectivity: how many
	// program pairs were delayed out of all ordered same-thread pairs.
	TotalDelays, TotalPairs int
}

// DelaySet runs E8: compute the (superset) delay set of random branch-free
// programs and verify Shasha & Snir's guarantee — enforcing the delays on the
// write-buffer machine yields only sequentially consistent results — while
// the unconstrained machine demonstrably relaxes. The pair counts show the
// static analysis' pessimism, the property the paper cites when arguing for
// hardware-visible synchronization instead.
func DelaySet(n int, seed int64) (*DelaySetSummary, error) {
	if n <= 0 {
		n = 30
	}
	s := &DelaySetSummary{}
	x := &model.Explorer{}
	tbl := stats.NewTable("E8 — Shasha-Snir delay sets on random branch-free programs (Section 2.1)",
		"program", "accesses", "delays", "pairs", "wb extra", "wb+delays extra")
	for i := 0; i < n; i++ {
		p := workload.Random(seed+int64(i), workload.RandomConfig{
			Procs: 2, DataVars: 2, SyncVars: 1, Ops: 4, SyncDensity: 15,
		})
		an, err := delayset.Analyze(p)
		if err != nil {
			return nil, err
		}
		sc, _, err := x.Outcomes(model.NewSC(p))
		if err != nil {
			return nil, err
		}
		plain, _, err := x.Outcomes(model.NewWriteBuffer(p, ""))
		if err != nil {
			return nil, err
		}
		enforced, _, err := x.Outcomes(model.NewWriteBufferDelays(p, an.DelayedBefore(p.NumThreads())))
		if err != nil {
			return nil, err
		}
		plainExtra := extraCount(sc, plain)
		enforcedExtra := extraCount(sc, enforced)
		if plainExtra > 0 {
			s.RelaxedObserved++
		}
		if enforcedExtra > 0 {
			s.Violations++
		}
		pairs := totalPairs(p)
		s.Programs++
		s.TotalDelays += len(an.Delays)
		s.TotalPairs += pairs
		tbl.Row(p.Name, len(an.Accesses), len(an.Delays), pairs, plainExtra, enforcedExtra)
	}
	tbl.Note("wb extra = write-buffer results outside the SC set; with delays enforced the column must be all zero")
	tbl.Note("delays/pairs shows the static analysis' pessimism (%d/%d here)", s.TotalDelays, s.TotalPairs)
	s.Table = tbl
	return s, nil
}

// extraCount counts results of hw outside the sc set.
func extraCount(sc, hw core.OutcomeSet) int {
	n := 0
	for k := range hw {
		if _, ok := sc[k]; !ok {
			n++
		}
	}
	return n
}

// totalPairs counts ordered same-thread access pairs.
func totalPairs(p *program.Program) int {
	n := 0
	for _, code := range p.Threads {
		ops := 0
		for _, in := range code {
			if _, ok := in.MemOp(); ok {
				ops++
			}
		}
		n += ops * (ops - 1) / 2
	}
	return n
}
