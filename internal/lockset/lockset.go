// Package lockset implements an Eraser-style lock-discipline checker, the
// kind of specialized synchronization model the paper's conclusion proposes
// ("sharing only through monitors"): a program whose every shared data
// location is consistently protected by some lock trivially obeys DRF0, and
// the consistent-lockset property can be checked per execution without
// happens-before reasoning.
//
// Lock semantics are inferred from the synchronization operations of this
// repository's workloads: an *acquire* of lock L is a synchronization
// read-modify-write on L that reads the unlocked value 0 and writes a
// non-zero value; a *release* is a synchronization write of 0 to L (or an RMW
// writing 0). Failed TestAndSets (reading non-zero) neither acquire nor
// release. Read-only synchronization (Test spinning) is ignored.
//
// For every data location the checker intersects the lock sets held at each
// access (reads may additionally be protected by any lock held by *all*
// writers — the standard read-shared refinement is deliberately omitted to
// keep the discipline strict: this checker validates monitor-style sharing,
// not arbitrary DRF0 programs).
package lockset

import (
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/mem"
)

// Report is the verdict for one execution.
type Report struct {
	// Protection maps each data location to the locks that protected every
	// access to it (nil set = unprotected access seen).
	Protection map[mem.Addr][]mem.Addr
	// Violations lists locations whose candidate lockset became empty, with
	// the offending access.
	Violations []Violation
	// Accesses is the number of data accesses processed.
	Accesses int
}

// Violation records the first access that emptied a location's lockset.
type Violation struct {
	Location mem.Addr
	Access   mem.Event
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("x%d loses all candidate locks at %s", v.Location, v.Access.Access)
}

// OK reports whether every shared data location kept a non-empty lockset.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// String implements fmt.Stringer.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("lock discipline holds over %d data accesses", r.Accesses)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "lock discipline violated (%d data accesses):\n", r.Accesses)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return strings.TrimRight(b.String(), "\n")
}

// lockState tracks one processor's held locks.
type lockState map[mem.Addr]bool

// candidate tracks a location's shrinking lockset. shared marks locations
// accessed by more than one processor (only those need protection).
type candidate struct {
	locks    map[mem.Addr]bool
	initOnce bool
	firstBy  mem.ProcID
	shared   bool
	dead     bool
}

// Check processes an execution in completion order. Locations touched by a
// single processor only are exempt (thread-local data needs no lock).
func Check(e *mem.Execution, opts ...Option) (*Report, error) {
	if e.Completed == nil {
		return nil, fmt.Errorf("lockset: execution has no completion order")
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("lockset: %w", err)
	}
	cfg := options{}
	for _, o := range opts {
		o(&cfg)
	}
	held := make(map[mem.ProcID]lockState)
	cands := make(map[mem.Addr]*candidate)
	rep := &Report{Protection: make(map[mem.Addr][]mem.Addr)}
	for _, id := range e.Completed {
		ev := e.Event(id)
		if ev.Op.IsSync() {
			ls := held[ev.Proc]
			if ls == nil {
				ls = make(lockState)
				held[ev.Proc] = ls
			}
			switch {
			case ev.Op == mem.OpSyncRMW && ev.Value == 0 && ev.WValue != 0:
				ls[ev.Addr] = true // successful acquire
			case ev.Op.Writes() && writtenValue(ev) == 0:
				delete(ls, ev.Addr) // release
			}
			continue
		}
		rep.Accesses++
		c := cands[ev.Addr]
		if c == nil {
			c = &candidate{firstBy: ev.Proc}
			cands[ev.Addr] = c
		}
		if ev.Proc != c.firstBy {
			c.shared = true
		}
		cur := held[ev.Proc]
		if !c.initOnce {
			c.initOnce = true
			c.locks = make(map[mem.Addr]bool, len(cur))
			for l := range cur {
				c.locks[l] = true
			}
		} else {
			for l := range c.locks {
				if !cur[l] {
					delete(c.locks, l)
				}
			}
		}
		// The verdict is evaluated on every access (not only when the
		// intersection shrinks): a location whose lockset emptied while
		// still thread-local becomes a violation the moment another
		// processor touches it.
		if c.shared && len(c.locks) == 0 && !c.dead {
			c.dead = true
			rep.Violations = append(rep.Violations, Violation{Location: ev.Addr, Access: ev})
		}
	}
	// Summarize protection for shared locations.
	addrs := make([]mem.Addr, 0, len(cands))
	for a := range cands {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		c := cands[a]
		if !c.shared {
			continue // thread-local: exempt
		}
		var locks []mem.Addr
		for l := range c.locks {
			locks = append(locks, l)
		}
		sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
		rep.Protection[a] = locks
	}
	// Drop violations for locations that later turned out thread-local
	// (cannot happen with the current flow — shared is monotonic and
	// checked before recording — but kept as a guard for future options).
	if cfg.ignoreUnshared {
		var kept []Violation
		for _, v := range rep.Violations {
			if cands[v.Location].shared {
				kept = append(kept, v)
			}
		}
		rep.Violations = kept
	}
	return rep, nil
}

// writtenValue extracts the value a write-bearing event stored.
func writtenValue(ev mem.Event) mem.Value {
	if ev.Op == mem.OpSyncRMW {
		return ev.WValue
	}
	return ev.Value
}

// options configure Check.
type options struct {
	ignoreUnshared bool
}

// Option customizes Check.
type Option func(*options)

// IgnoreUnshared re-filters violations against final sharing information.
func IgnoreUnshared() Option { return func(o *options) { o.ignoreUnshared = true } }
