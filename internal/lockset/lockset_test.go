package lockset

import (
	"strings"
	"testing"

	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/proc"
	"weakorder/internal/workload"
)

const (
	lockA mem.Addr = 100
	varX  mem.Addr = 0
	varY  mem.Addr = 1
)

// acq/rel/w/r are event helpers appended in completion order.
func acq(e *mem.Execution, p mem.ProcID, l mem.Addr) {
	e.Append(mem.Access{Proc: p, Op: mem.OpSyncRMW, Addr: l, Value: 0, WValue: 1})
}
func rel(e *mem.Execution, p mem.ProcID, l mem.Addr) {
	e.Append(mem.Access{Proc: p, Op: mem.OpSyncWrite, Addr: l, Value: 0})
}
func w(e *mem.Execution, p mem.ProcID, a mem.Addr, v mem.Value) {
	e.Append(mem.Access{Proc: p, Op: mem.OpWrite, Addr: a, Value: v})
}
func r(e *mem.Execution, p mem.ProcID, a mem.Addr, v mem.Value) {
	e.Append(mem.Access{Proc: p, Op: mem.OpRead, Addr: a, Value: v})
}

func TestDisciplinedExecution(t *testing.T) {
	e := mem.NewExecution(2)
	acq(e, 0, lockA)
	w(e, 0, varX, 1)
	rel(e, 0, lockA)
	acq(e, 1, lockA)
	r(e, 1, varX, 1)
	w(e, 1, varX, 2)
	rel(e, 1, lockA)
	rep, err := Check(e)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("disciplined execution flagged: %s", rep)
	}
	if locks := rep.Protection[varX]; len(locks) != 1 || locks[0] != lockA {
		t.Errorf("protection of x = %v, want [lockA]", locks)
	}
	if rep.Accesses != 3 {
		t.Errorf("accesses = %d, want 3", rep.Accesses)
	}
}

func TestUnprotectedSharedAccess(t *testing.T) {
	e := mem.NewExecution(2)
	acq(e, 0, lockA)
	w(e, 0, varX, 1)
	rel(e, 0, lockA)
	w(e, 1, varX, 2) // no lock held
	rep, err := Check(e)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("unlocked shared write accepted")
	}
	if !strings.Contains(rep.String(), "x0") {
		t.Errorf("report: %s", rep)
	}
}

func TestThreadLocalExempt(t *testing.T) {
	e := mem.NewExecution(2)
	w(e, 0, varX, 1) // only P0 ever touches x: no lock needed
	r(e, 0, varX, 1)
	acq(e, 1, lockA)
	w(e, 1, varY, 1)
	rel(e, 1, lockA)
	w(e, 1, varY, 2) // y is P1-local too
	rep, err := Check(e)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("thread-local accesses flagged: %s", rep)
	}
	if len(rep.Protection) != 0 {
		t.Errorf("no shared locations expected: %v", rep.Protection)
	}
}

func TestLateSharingCatchesEmptyLockset(t *testing.T) {
	// P0 writes x unlocked (fine while local); P1 then touches it locked —
	// the candidate set is already empty, so sharing must flag it.
	e := mem.NewExecution(2)
	w(e, 0, varX, 1)
	acq(e, 1, lockA)
	r(e, 1, varX, 1)
	rel(e, 1, lockA)
	rep, err := Check(e)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("late-shared unprotected location accepted")
	}
}

func TestFailedTASDoesNotAcquire(t *testing.T) {
	e := mem.NewExecution(2)
	// P0 holds the lock; P1's TAS fails (reads 1) and must not count.
	acq(e, 0, lockA)
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: lockA, Value: 1, WValue: 1})
	w(e, 1, varX, 5) // P1 writes "under" its failed TAS
	rel(e, 0, lockA)
	w(e, 0, varX, 6)
	rep, err := Check(e)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("write under a failed TAS accepted")
	}
}

func TestTwoLocksIntersect(t *testing.T) {
	e := mem.NewExecution(2)
	const lockB mem.Addr = 101
	acq(e, 0, lockA)
	acq(e, 0, lockB)
	w(e, 0, varX, 1)
	rel(e, 0, lockB)
	rel(e, 0, lockA)
	acq(e, 1, lockB)
	w(e, 1, varX, 2)
	rel(e, 1, lockB)
	rep, err := Check(e)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("consistent lockB protection flagged: %s", rep)
	}
	if locks := rep.Protection[varX]; len(locks) != 1 || locks[0] != lockB {
		t.Errorf("protection = %v, want [lockB]", locks)
	}
}

func TestRequiresCompletionOrder(t *testing.T) {
	e := mem.NewExecution(1)
	e.Append(mem.Access{Proc: 0, Op: mem.OpRead, Addr: 0})
	e.Completed = nil
	if _, err := Check(e); err == nil {
		t.Fatal("expected error")
	}
}

// TestLockWorkloadTraceDisciplined runs the timed Lock workload and feeds its
// trace through the checker: the critical-section counter must come out
// protected by the lock on every policy.
func TestLockWorkloadTraceDisciplined(t *testing.T) {
	for _, pol := range []proc.Policy{proc.PolicySC, proc.PolicyWODef2} {
		p := workload.Lock(3, 3, 5, 5, workload.SpinTAS)
		cfg := machine.NewConfig(pol)
		cfg.RecordTrace = true
		res, err := machine.Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Check(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Errorf("%s: lock workload flagged: %s", pol, rep)
		}
		if locks := rep.Protection[workload.CtrAddr()]; len(locks) != 1 {
			t.Errorf("%s: counter protection = %v", pol, locks)
		}
	}
}

// TestBarrierWorkloadNotMonitorStyle: the barrier shares its payload through
// phase ordering, not locks, so the monitor-discipline checker must flag it —
// exactly why the paper frames these as *different* synchronization models.
func TestBarrierWorkloadNotMonitorStyle(t *testing.T) {
	p := workload.ProducerConsumer(3, 2)
	cfg := machine.NewConfig(proc.PolicyWODef2)
	cfg.RecordTrace = true
	res, err := machine.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("flag-based sharing should not satisfy the monitor discipline")
	}
}
