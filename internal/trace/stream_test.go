package trace

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

// countingReader counts bytes handed out, so tests can assert the decoder
// stopped reading at (shortly after) the first invalid record instead of
// draining the whole stream.
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// TestReadFailsFastOnBadEvent builds a document whose second event is invalid
// and pads it with a long valid tail; the incremental reader must reject it
// after reading only a small prefix, proving validation happens as events
// stream rather than after materializing the document.
func TestReadFailsFastOnBadEvent(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"version":1,"procs":2,"events":[`)
	b.WriteString(`{"proc":0,"index":0,"op":"W","addr":0,"value":1},`)
	b.WriteString(`{"proc":9,"index":0,"op":"W","addr":0,"value":1}`) // out of range
	for i := 1; i < 200000; i++ {
		fmt.Fprintf(&b, `,{"proc":0,"index":%d,"op":"W","addr":0,"value":1}`, i)
	}
	b.WriteString(`]}`)
	doc := b.String()
	cr := &countingReader{r: strings.NewReader(doc)}
	_, _, _, err := Read(cr)
	if err == nil {
		t.Fatal("Read accepted an out-of-range processor")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Read error = %v, want out-of-range processor", err)
	}
	// json.Decoder buffers in chunks, so allow some slack, but the decoder
	// must not have consumed the multi-MB tail behind the bad event.
	if cr.n > len(doc)/4 {
		t.Fatalf("Read consumed %d of %d bytes before rejecting event 1 — not failing fast", cr.n, len(doc))
	}
}

// TestReadTruncated pins the truncation witness: documents cut at various
// points all produce a decode error (and never a panic or an accepted
// half-execution).
func TestReadTruncated(t *testing.T) {
	full := `{"version":1,"procs":2,"init":{"0":3},` +
		`"events":[{"proc":0,"index":0,"op":"W","addr":0,"value":1},` +
		`{"proc":1,"index":0,"op":"Srw","addr":1,"value":0,"wvalue":1}],` +
		`"timings":[{"proc":0,"index":0,"op":"W","addr":0,"issue":1,"commit":2,"perform":9}]}`
	if _, _, _, err := Read(strings.NewReader(full)); err != nil {
		t.Fatalf("full document must parse: %v", err)
	}
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := Read(strings.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated document (%d of %d bytes) was accepted", cut, len(full))
		}
	}
}

// TestReadSectionDiscipline pins the incremental reader's section rules:
// shape before data, no duplicate sections, unknown sections skipped.
func TestReadSectionDiscipline(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		wantErr string // empty = accept
	}{
		{name: "events-before-procs",
			doc:     `{"events":[],"version":1,"procs":1}`,
			wantErr: "before version/procs"},
		{name: "timings-before-events",
			doc:     `{"version":1,"procs":1,"timings":[]}`,
			wantErr: "before events"},
		{name: "duplicate-events",
			doc:     `{"version":1,"procs":1,"events":[],"events":[]}`,
			wantErr: "duplicate"},
		{name: "missing-version",
			doc:     `{"procs":1,"events":[]}`,
			wantErr: "before version"},
		{name: "missing-procs-entirely",
			doc:     `{"version":1}`,
			wantErr: "missing processor count"},
		{name: "unknown-section-skipped",
			doc: `{"version":1,"procs":1,"future":{"a":[1,2,{"b":3}]},"events":[]}`},
		{name: "minimal",
			doc: `{"version":1,"procs":0,"events":[]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := Read(strings.NewReader(tc.doc))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Read(%s): %v", tc.doc, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Read(%s) = %v, want error containing %q", tc.doc, err, tc.wantErr)
			}
		})
	}
}
