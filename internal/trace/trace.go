// Package trace serializes executions and access-lifecycle logs to JSON, so
// traces recorded by the timed simulator (or any other producer) can be
// stored, diffed, and re-checked offline by cmd/racecheck and friends.
//
// The format is a single JSON document:
//
//	{
//	  "version": 1,
//	  "procs": 2,
//	  "init": {"0": 0, "1": 1},
//	  "events": [
//	    {"proc": 0, "index": 0, "op": "W", "addr": 0, "value": 1},
//	    {"proc": 1, "index": 0, "op": "Srw", "addr": 1, "value": 0, "wvalue": 1}
//	  ],
//	  "timings": [ {"proc":0,"index":0,"op":"W","addr":0,"issue":1,"commit":2,"perform":9} ]
//	}
//
// The events array is in completion order; "timings" is optional.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"weakorder/internal/conditions"
	"weakorder/internal/mem"
	"weakorder/internal/sim"
)

// Version is the current format version.
const Version = 1

// Document is the serialized form.
type Document struct {
	Version int              `json:"version"`
	Procs   int              `json:"procs"`
	Init    map[string]int64 `json:"init,omitempty"`
	Events  []EventJSON      `json:"events"`
	Timings []TimingJSON     `json:"timings,omitempty"`
}

// EventJSON is one event in completion order.
type EventJSON struct {
	Proc   int    `json:"proc"`
	Index  int    `json:"index"`
	Op     string `json:"op"`
	Addr   uint32 `json:"addr"`
	Value  int64  `json:"value"`
	WValue int64  `json:"wvalue,omitempty"`
}

// TimingJSON is one access lifecycle.
type TimingJSON struct {
	Proc    int    `json:"proc"`
	Index   int    `json:"index"`
	Op      string `json:"op"`
	Addr    uint32 `json:"addr"`
	Issue   int64  `json:"issue"`
	Commit  int64  `json:"commit"`
	Perform int64  `json:"perform"`
}

// opNames maps ops to their wire names (mem.Op.String values).
var opNames = map[mem.Op]string{
	mem.OpRead:      "R",
	mem.OpWrite:     "W",
	mem.OpSyncRead:  "Sr",
	mem.OpSyncWrite: "Sw",
	mem.OpSyncRMW:   "Srw",
}

func opFromName(s string) (mem.Op, error) {
	for op, n := range opNames {
		if n == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown op %q", s)
}

// Encode builds a Document from an execution (in completion order), initial
// memory, and an optional timing log.
func Encode(e *mem.Execution, init map[mem.Addr]mem.Value, timings []conditions.AccessTiming) (*Document, error) {
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	d := &Document{Version: Version, Procs: e.NumProcs}
	if len(init) > 0 {
		d.Init = make(map[string]int64, len(init))
		for a, v := range init {
			d.Init[strconv.FormatUint(uint64(a), 10)] = int64(v)
		}
	}
	order := e.Completed
	if order == nil {
		order = make([]mem.EventID, e.Len())
		for i := range order {
			order[i] = mem.EventID(i)
		}
	}
	for _, id := range order {
		ev := e.Event(id)
		ej := EventJSON{
			Proc:  int(ev.Proc),
			Index: ev.Index,
			Op:    opNames[ev.Op],
			Addr:  uint32(ev.Addr),
			Value: int64(ev.Value),
		}
		if ev.Op == mem.OpSyncRMW {
			ej.WValue = int64(ev.WValue)
		}
		d.Events = append(d.Events, ej)
	}
	for _, t := range timings {
		d.Timings = append(d.Timings, TimingJSON{
			Proc: t.Proc, Index: t.OpIndex, Op: opNames[t.Op], Addr: uint32(t.Addr),
			Issue: int64(t.Issue), Commit: int64(t.Commit), Perform: int64(t.Perform),
		})
	}
	return d, nil
}

// MaxProcs bounds the processor count a decoded document may declare.
// Documents are untrusted input; consumers allocate per-processor state, so an
// absurd count must be a decode error, not an out-of-memory.
const MaxProcs = 4096

// Decode reconstructs the execution, initial memory and timing log. The
// document is treated as untrusted input: out-of-range processors, unknown
// ops, non-dense indices, and timings referencing missing events are decode
// errors, never panics or silently oversized executions.
func Decode(d *Document) (*mem.Execution, map[mem.Addr]mem.Value, []conditions.AccessTiming, error) {
	if d.Version != Version {
		return nil, nil, nil, fmt.Errorf("trace: unsupported version %d", d.Version)
	}
	if d.Procs < 0 || d.Procs > MaxProcs {
		return nil, nil, nil, fmt.Errorf("trace: processor count %d out of range [0,%d]", d.Procs, MaxProcs)
	}
	e := mem.NewExecution(d.Procs)
	for i, ej := range d.Events {
		op, err := opFromName(ej.Op)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if ej.Proc < 0 || ej.Proc >= d.Procs {
			// AppendAt would silently grow the execution past the declared
			// processor count; reject instead.
			return nil, nil, nil, fmt.Errorf("trace: event %d: processor P%d out of range [0,%d)", i, ej.Proc, d.Procs)
		}
		if ej.Index < 0 {
			return nil, nil, nil, fmt.Errorf("trace: event %d: negative program-order index %d", i, ej.Index)
		}
		a := mem.Access{
			Proc:   mem.ProcID(ej.Proc),
			Op:     op,
			Addr:   mem.Addr(ej.Addr),
			Value:  mem.Value(ej.Value),
			WValue: mem.Value(ej.WValue),
		}
		e.AppendAt(a, ej.Index)
	}
	if err := e.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("trace: decoded execution invalid: %w", err)
	}
	var init map[mem.Addr]mem.Value
	if len(d.Init) > 0 {
		init = make(map[mem.Addr]mem.Value, len(d.Init))
		for k, v := range d.Init {
			n, err := strconv.ParseUint(k, 10, 32)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("trace: bad init address %q", k)
			}
			init[mem.Addr(n)] = mem.Value(v)
		}
	}
	var timings []conditions.AccessTiming
	if len(d.Timings) > 0 {
		// A timing entry must reference an event present in the execution;
		// a lifecycle for a missing access would make the Section-5.1
		// condition checkers reason about phantom operations.
		known := make(map[[2]int]bool, len(d.Events))
		for _, ej := range d.Events {
			known[[2]int{ej.Proc, ej.Index}] = true
		}
		for i, tj := range d.Timings {
			op, err := opFromName(tj.Op)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("trace: timing %d: %w", i, err)
			}
			if !known[[2]int{tj.Proc, tj.Index}] {
				return nil, nil, nil, fmt.Errorf("trace: timing %d references missing event P%d.%d", i, tj.Proc, tj.Index)
			}
			if tj.Issue < 0 || tj.Commit < tj.Issue || tj.Perform < tj.Commit {
				return nil, nil, nil, fmt.Errorf("trace: timing %d: lifecycle not ordered (issue %d, commit %d, perform %d)",
					i, tj.Issue, tj.Commit, tj.Perform)
			}
			timings = append(timings, conditions.AccessTiming{
				Proc: tj.Proc, OpIndex: tj.Index, Op: op, Addr: mem.Addr(tj.Addr),
				Issue: sim.Time(tj.Issue), Commit: sim.Time(tj.Commit), Perform: sim.Time(tj.Perform),
			})
		}
	}
	return e, init, timings, nil
}

// Write serializes to w as indented JSON.
func Write(w io.Writer, e *mem.Execution, init map[mem.Addr]mem.Value, timings []conditions.AccessTiming) error {
	d, err := Encode(e, init, timings)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Read deserializes from r incrementally: events and timings are decoded and
// validated one at a time as they stream off the reader, so a truncated or
// adversarial multi-GB document fails fast at the first bad or missing byte
// instead of being materialized whole before validation. The stream must
// declare "version" and "procs" before the "events" and "timings" arrays
// (the order Write emits); each section may appear at most once.
func Read(r io.Reader) (*mem.Execution, map[mem.Addr]mem.Value, []conditions.AccessTiming, error) {
	dec := json.NewDecoder(r)
	if err := expectDelim(dec, '{'); err != nil {
		return nil, nil, nil, err
	}
	var (
		e          *mem.Execution
		init       map[mem.Addr]mem.Value
		timings    []conditions.AccessTiming
		sawVersion bool
		seen       = map[string]bool{}
		nevents    int
		// known accumulates (proc, index) pairs of streamed events so timing
		// entries can be checked against real accesses as they arrive.
		known = map[[2]int]bool{}
	)
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("trace: %w", err)
		}
		key, ok := tok.(string)
		if !ok {
			return nil, nil, nil, fmt.Errorf("trace: expected object key, got %v", tok)
		}
		if seen[key] {
			return nil, nil, nil, fmt.Errorf("trace: duplicate %q section", key)
		}
		seen[key] = true
		switch key {
		case "version":
			var v int
			if err := dec.Decode(&v); err != nil {
				return nil, nil, nil, fmt.Errorf("trace: version: %w", err)
			}
			if v != Version {
				return nil, nil, nil, fmt.Errorf("trace: unsupported version %d", v)
			}
			sawVersion = true
		case "procs":
			var p int
			if err := dec.Decode(&p); err != nil {
				return nil, nil, nil, fmt.Errorf("trace: procs: %w", err)
			}
			if p < 0 || p > MaxProcs {
				return nil, nil, nil, fmt.Errorf("trace: processor count %d out of range [0,%d]", p, MaxProcs)
			}
			e = mem.NewExecution(p)
		case "init":
			var m map[string]int64
			if err := dec.Decode(&m); err != nil {
				return nil, nil, nil, fmt.Errorf("trace: init: %w", err)
			}
			if len(m) > 0 {
				init = make(map[mem.Addr]mem.Value, len(m))
				for k, v := range m {
					n, err := strconv.ParseUint(k, 10, 32)
					if err != nil {
						return nil, nil, nil, fmt.Errorf("trace: bad init address %q", k)
					}
					init[mem.Addr(n)] = mem.Value(v)
				}
			}
		case "events":
			if !sawVersion || e == nil {
				return nil, nil, nil, fmt.Errorf("trace: events before version/procs declaration")
			}
			if err := expectDelim(dec, '['); err != nil {
				return nil, nil, nil, err
			}
			for dec.More() {
				var ej EventJSON
				if err := dec.Decode(&ej); err != nil {
					return nil, nil, nil, fmt.Errorf("trace: event %d: %w", nevents, err)
				}
				op, err := opFromName(ej.Op)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("trace: event %d: %w", nevents, err)
				}
				if ej.Proc < 0 || ej.Proc >= e.NumProcs {
					// AppendAt would silently grow the execution past the
					// declared processor count; reject instead.
					return nil, nil, nil, fmt.Errorf("trace: event %d: processor P%d out of range [0,%d)", nevents, ej.Proc, e.NumProcs)
				}
				if ej.Index < 0 {
					return nil, nil, nil, fmt.Errorf("trace: event %d: negative program-order index %d", nevents, ej.Index)
				}
				e.AppendAt(mem.Access{
					Proc:   mem.ProcID(ej.Proc),
					Op:     op,
					Addr:   mem.Addr(ej.Addr),
					Value:  mem.Value(ej.Value),
					WValue: mem.Value(ej.WValue),
				}, ej.Index)
				known[[2]int{ej.Proc, ej.Index}] = true
				nevents++
			}
			if err := expectDelim(dec, ']'); err != nil {
				return nil, nil, nil, err
			}
		case "timings":
			if !sawVersion || e == nil {
				return nil, nil, nil, fmt.Errorf("trace: timings before version/procs declaration")
			}
			if !seen["events"] {
				// A timing entry must reference an event present in the
				// execution; a lifecycle for a missing access would make the
				// Section-5.1 condition checkers reason about phantom
				// operations.
				return nil, nil, nil, fmt.Errorf("trace: timings before events section")
			}
			if err := expectDelim(dec, '['); err != nil {
				return nil, nil, nil, err
			}
			for i := 0; dec.More(); i++ {
				var tj TimingJSON
				if err := dec.Decode(&tj); err != nil {
					return nil, nil, nil, fmt.Errorf("trace: timing %d: %w", i, err)
				}
				op, err := opFromName(tj.Op)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("trace: timing %d: %w", i, err)
				}
				if !known[[2]int{tj.Proc, tj.Index}] {
					return nil, nil, nil, fmt.Errorf("trace: timing %d references missing event P%d.%d", i, tj.Proc, tj.Index)
				}
				if tj.Issue < 0 || tj.Commit < tj.Issue || tj.Perform < tj.Commit {
					return nil, nil, nil, fmt.Errorf("trace: timing %d: lifecycle not ordered (issue %d, commit %d, perform %d)",
						i, tj.Issue, tj.Commit, tj.Perform)
				}
				timings = append(timings, conditions.AccessTiming{
					Proc: tj.Proc, OpIndex: tj.Index, Op: op, Addr: mem.Addr(tj.Addr),
					Issue: sim.Time(tj.Issue), Commit: sim.Time(tj.Commit), Perform: sim.Time(tj.Perform),
				})
			}
			if err := expectDelim(dec, ']'); err != nil {
				return nil, nil, nil, err
			}
		default:
			// Unknown sections are skipped token by token (forward
			// compatibility), still without materializing them as one value.
			if err := skipValue(dec); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, nil, nil, err
	}
	if !sawVersion {
		return nil, nil, nil, fmt.Errorf("trace: missing version")
	}
	if e == nil {
		return nil, nil, nil, fmt.Errorf("trace: missing processor count")
	}
	if err := e.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("trace: decoded execution invalid: %w", err)
	}
	return e, init, timings, nil
}

// expectDelim consumes one token and requires it to be the given delimiter.
func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("trace: expected %q, got %v", want, tok)
	}
	return nil
}

// skipValue consumes one JSON value (scalar, object, or array) token by
// token without building it in memory.
func skipValue(dec *json.Decoder) error {
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if d, ok := tok.(json.Delim); ok {
			switch d {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		}
		if depth == 0 {
			return nil
		}
	}
}
