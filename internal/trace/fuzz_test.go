package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary bytes through the untrusted-document decoder. The
// invariant is total safety: Read either rejects the input with an error or
// returns an execution that validates and round-trips through Encode — it
// never panics, never over-allocates from an absurd declared shape, and never
// yields an execution its own Validate would reject.
func FuzzRead(f *testing.F) {
	seeds := []string{
		`{"version": 1, "procs": 1, "events": []}`,
		`{"version": 1, "procs": 2, "init": {"0": 3},
		  "events": [{"proc":0,"index":0,"op":"W","addr":0,"value":1},
		             {"proc":1,"index":0,"op":"Srw","addr":1,"value":0,"wvalue":1}],
		  "timings": [{"proc":0,"index":0,"op":"W","addr":0,"issue":1,"commit":2,"perform":9}]}`,
		`{"version": 1, "procs": 1000000000, "events": []}`,
		`{"version": 1, "procs": 2, "events": [{"proc":7,"index":0,"op":"R","addr":0}]}`,
		`{"version": 1, "procs": 1, "events": [{"proc":0,"index":-1,"op":"R","addr":0}]}`,
		`{"version": 1, "procs": 1, "events": [{"proc":0,"index":0,"op":"R","addr":0}],
		  "timings": [{"proc":0,"index":9,"op":"R","addr":0,"issue":0,"commit":0,"perform":0}]}`,
		`{{{`,
		// Truncation witness: a document cut mid-array must fail fast with a
		// decode error from the incremental reader, never hang or panic.
		`{"version": 1, "procs": 2, "events": [{"proc":0,"index":0,"op":"W","addr":0,"value":1},
		             {"proc":1,"index"`,
		// Truncated mid-object and mid-key variants of the same witness.
		`{"version": 1, "procs": 2, "events": [{"proc":0,`,
		`{"version": 1, "pro`,
		// Sections out of the documented order: events before the shape is
		// declared must be rejected, not silently sized.
		`{"events": [{"proc":0,"index":0,"op":"R","addr":0}], "version": 1, "procs": 1}`,
		// Duplicate events sections must not concatenate.
		`{"version": 1, "procs": 1, "events": [], "events": [{"proc":0,"index":0,"op":"R","addr":0}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, init, timings, err := Read(bytes.NewReader(data))
		if err != nil {
			if !strings.Contains(err.Error(), "trace:") {
				t.Fatalf("error lost its package prefix: %v", err)
			}
			return
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("accepted execution fails Validate: %v", err)
		}
		if e.NumProcs > MaxProcs {
			t.Fatalf("accepted execution with %d processors (max %d)", e.NumProcs, MaxProcs)
		}
		if _, err := Encode(e, init, timings); err != nil {
			t.Fatalf("accepted document does not re-encode: %v", err)
		}
	})
}
