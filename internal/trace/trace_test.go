package trace

import (
	"bytes"
	"strings"
	"testing"

	"weakorder/internal/conditions"
	"weakorder/internal/core"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/proc"
	"weakorder/internal/workload"
)

func sampleExec() *mem.Execution {
	e := mem.NewExecution(2)
	e.Append(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1})
	e.Append(mem.Access{Proc: 0, Op: mem.OpSyncWrite, Addr: 1, Value: 1})
	e.Append(mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: 1, Value: 1, WValue: 2})
	e.Append(mem.Access{Proc: 1, Op: mem.OpRead, Addr: 0, Value: 1})
	return e
}

func TestRoundTrip(t *testing.T) {
	e := sampleExec()
	init := map[mem.Addr]mem.Value{0: 0, 1: 0, 7: 9}
	timings := []conditions.AccessTiming{
		{Proc: 0, OpIndex: 0, Op: mem.OpWrite, Addr: 0, Issue: 1, Commit: 2, Perform: 9},
	}
	var buf bytes.Buffer
	if err := Write(&buf, e, init, timings); err != nil {
		t.Fatal(err)
	}
	e2, init2, t2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Len() != e.Len() || e2.NumProcs != e.NumProcs {
		t.Fatalf("shape mismatch: %d/%d", e2.Len(), e2.NumProcs)
	}
	for i := 0; i < e.Len(); i++ {
		a, b := e.Event(mem.EventID(i)), e2.Event(mem.EventID(i))
		if a.Access != b.Access || a.Index != b.Index {
			t.Errorf("event %d: %v vs %v", i, a, b)
		}
	}
	if init2[7] != 9 || len(init2) != 3 {
		t.Errorf("init mismatch: %v", init2)
	}
	if len(t2) != 1 || t2[0] != timings[0] {
		t.Errorf("timings mismatch: %v", t2)
	}
	// Semantic round trip: race verdicts agree.
	r1, err := core.CheckExecution(e, core.DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.CheckExecution(e2, core.DRF0{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Free() != r2.Free() {
		t.Error("race verdict changed across serialization")
	}
}

func TestRoundTripOutOfOrderCompletion(t *testing.T) {
	e := mem.NewExecution(1)
	e.AppendAt(mem.Access{Proc: 0, Op: mem.OpRead, Addr: 1}, 1)
	e.AppendAt(mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 0, Value: 1}, 0)
	var buf bytes.Buffer
	if err := Write(&buf, e, nil, nil); err != nil {
		t.Fatal(err)
	}
	e2, _, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Event(e2.Completed[0]).Op != mem.OpRead {
		t.Error("completion order lost")
	}
	if e2.Event(e2.Completed[0]).Index != 1 {
		t.Error("program-order index lost")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"bad version", `{"version": 99, "procs": 1, "events": []}`},
		{"bad op", `{"version": 1, "procs": 1, "events": [{"proc":0,"index":0,"op":"XX","addr":0}]}`},
		{"sparse indices", `{"version": 1, "procs": 1, "events": [{"proc":0,"index":3,"op":"R","addr":0}]}`},
		{"bad init key", `{"version": 1, "procs": 1, "init": {"abc": 1}, "events": []}`},
		{"not json", `{{{`},
		{"truncated json", `{"version": 1, "procs": 2, "events": [{"proc":0,`},
		{"negative procs", `{"version": 1, "procs": -1, "events": []}`},
		{"absurd procs", `{"version": 1, "procs": 1000000000, "events": []}`},
		{"negative proc", `{"version": 1, "procs": 1, "events": [{"proc":-1,"index":0,"op":"R","addr":0}]}`},
		{"proc out of range", `{"version": 1, "procs": 2, "events": [{"proc":2,"index":0,"op":"R","addr":0}]}`},
		{"negative index", `{"version": 1, "procs": 1, "events": [{"proc":0,"index":-1,"op":"R","addr":0}]}`},
		{"duplicate index", `{"version": 1, "procs": 1, "events": [{"proc":0,"index":0,"op":"R","addr":0},{"proc":0,"index":0,"op":"R","addr":0}]}`},
		{"timing bad op", `{"version": 1, "procs": 1, "events": [{"proc":0,"index":0,"op":"R","addr":0}], "timings": [{"proc":0,"index":0,"op":"XX","addr":0,"issue":0,"commit":0,"perform":0}]}`},
		{"timing for missing event", `{"version": 1, "procs": 1, "events": [{"proc":0,"index":0,"op":"R","addr":0}], "timings": [{"proc":0,"index":5,"op":"R","addr":0,"issue":0,"commit":0,"perform":0}]}`},
		{"timing lifecycle out of order", `{"version": 1, "procs": 1, "events": [{"proc":0,"index":0,"op":"R","addr":0}], "timings": [{"proc":0,"index":0,"op":"R","addr":0,"issue":5,"commit":3,"perform":9}]}`},
		{"timing negative issue", `{"version": 1, "procs": 1, "events": [{"proc":0,"index":0,"op":"R","addr":0}], "timings": [{"proc":0,"index":0,"op":"R","addr":0,"issue":-1,"commit":0,"perform":0}]}`},
	}
	for _, c := range cases {
		if _, _, _, err := Read(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestTimedMachineTraceRoundTrip pipes a real simulator trace through the
// serializer and re-validates its sequential consistency.
func TestTimedMachineTraceRoundTrip(t *testing.T) {
	p := workload.ProducerConsumer(4, 3)
	cfg := machine.NewConfig(proc.PolicyWODef2)
	cfg.RecordTrace = true
	cfg.RecordTimings = true
	res, err := machine.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	init := make(map[mem.Addr]mem.Value)
	for a, v := range p.Init {
		init[a] = v
	}
	var buf bytes.Buffer
	if err := Write(&buf, res.Trace, init, res.Timings); err != nil {
		t.Fatal(err)
	}
	e2, init2, t2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.SCCheck(e2, init2)
	if err != nil {
		t.Fatal(err)
	}
	if !w.SC {
		t.Error("round-tripped trace lost sequential consistency")
	}
	if rep := conditions.Check(t2); !rep.OK() {
		t.Errorf("round-tripped timings violate conditions: %s", rep)
	}
}
