package interconnect

import (
	"fmt"

	"weakorder/internal/sim"
)

// TopologyKind selects the shape of the network.
type TopologyKind uint8

const (
	// TopoFlat is a symmetric crossbar: every hop costs Local. With Local
	// equal to the network's base latency this reproduces the plain Network
	// byte for byte.
	TopoFlat TopologyKind = iota
	// TopoDanceHall puts all processors on one side of an indirect switch
	// stage and all memory/directory nodes on the other — the classic
	// dance-hall organization. Crossing the hall (processor to directory or
	// back) costs Local + Remote; a processor-to-processor message (e.g. a
	// cache-to-cache forward) traverses the stage twice: Local + 2*Remote.
	TopoDanceHall
	// TopoClusters is a two-level NUMA-ish organization: processors are
	// grouped into clusters of ClusterSize, directory shards are distributed
	// round-robin over the clusters, intra-cluster hops cost Local, and
	// crossing the inter-cluster link adds Remote.
	TopoClusters
)

func (k TopologyKind) String() string {
	switch k {
	case TopoFlat:
		return "flat"
	case TopoDanceHall:
		return "dancehall"
	case TopoClusters:
		return "clusters"
	}
	return fmt.Sprintf("TopologyKind(%d)", uint8(k))
}

// ParseTopology maps a CLI name to a kind.
func ParseTopology(s string) (TopologyKind, error) {
	switch s {
	case "flat":
		return TopoFlat, nil
	case "dancehall":
		return TopoDanceHall, nil
	case "clusters":
		return TopoClusters, nil
	}
	return 0, fmt.Errorf("interconnect: unknown topology %q (want flat, dancehall, or clusters)", s)
}

// Topology is a pure per-hop latency function over node pairs. It composes
// under the fault injector and the metrics FabricTap — both wrap the fabric
// that consults the topology — so chaos testing and message accounting see
// real routes. It holds no mutable state: routing is a deterministic function
// of (src, dst), and jitter/FIFO policy stay with the Network.
type Topology struct {
	Kind TopologyKind
	// Procs is the processor count: nodes 0..Procs-1 are processor caches,
	// nodes >= Procs are directory/memory shards (the machine's numbering
	// convention).
	Procs int
	// Local is the base one-hop cost in cycles.
	Local sim.Time
	// Remote is the extra cost of each top-level crossing (switch stage or
	// inter-cluster link).
	Remote sim.Time
	// ClusterSize is processors per cluster for TopoClusters.
	ClusterSize int
}

// NewTopology builds a topology, clamping degenerate parameters the same way
// NewNetwork clamps latency.
func NewTopology(kind TopologyKind, procs int, local, remote sim.Time, clusterSize int) *Topology {
	if local < 1 {
		local = 1
	}
	if remote < 0 {
		remote = 0
	}
	if clusterSize < 1 {
		clusterSize = 1
	}
	return &Topology{Kind: kind, Procs: procs, Local: local, Remote: remote, ClusterSize: clusterSize}
}

// clusters returns the cluster count for TopoClusters.
func (t *Topology) clusters() int {
	n := (t.Procs + t.ClusterSize - 1) / t.ClusterSize
	if n < 1 {
		n = 1
	}
	return n
}

// cluster maps a node to its cluster: processors by contiguous blocks of
// ClusterSize, directory shards round-robin so every cluster is home to an
// even share of the address space.
func (t *Topology) cluster(id NodeID) int {
	if int(id) < t.Procs {
		return int(id) / t.ClusterSize
	}
	return (int(id) - t.Procs) % t.clusters()
}

// Latency returns the hop cost from src to dst.
func (t *Topology) Latency(src, dst NodeID) sim.Time {
	switch t.Kind {
	case TopoDanceHall:
		srcProc := int(src) < t.Procs
		dstProc := int(dst) < t.Procs
		if srcProc == dstProc {
			return t.Local + 2*t.Remote
		}
		return t.Local + t.Remote
	case TopoClusters:
		if t.cluster(src) == t.cluster(dst) {
			return t.Local
		}
		return t.Local + t.Remote
	default:
		return t.Local
	}
}
