// Package interconnect provides the timed message fabrics of the
// discrete-event machine: a split-transaction shared bus (fully serialized,
// delivery in request order) and a general point-to-point network
// (per-message latency with deterministic jitter, no cross-link ordering) —
// the two interconnect styles Figure 1 distinguishes.
package interconnect

import (
	"fmt"
	"math/rand"

	"weakorder/internal/sim"
)

// NodeID addresses an endpoint on the fabric. By convention the machine
// assigns 0..N-1 to processor caches and N to the directory/memory
// controller.
type NodeID int

// Message is an opaque payload delivered to an endpoint. The cache package
// defines the concrete protocol messages.
type Message interface{}

// Endpoint receives messages from the fabric.
type Endpoint interface {
	Deliver(src NodeID, msg Message)
}

// Fabric is the common interface of the bus and the network.
type Fabric interface {
	// Attach registers an endpoint. All endpoints must be attached before
	// the first Send.
	Attach(id NodeID, e Endpoint)
	// Send schedules delivery of msg from src to dst.
	Send(src, dst NodeID, msg Message)
	// Messages returns the number of messages sent so far.
	Messages() uint64
}

// sinkEP adapts an Endpoint to sim.Sink so deliveries can be scheduled by
// value (no closure per message). One adapter is allocated per Attach.
type sinkEP struct {
	ep Endpoint
}

func (s *sinkEP) DeliverEvent(src int, msg any) { s.ep.Deliver(NodeID(src), msg) }

// Network is a general interconnection network: each message takes
// Latency ± jitter cycles, independently, so two messages on different
// source/destination pairs (and even on the same pair, if jitter differs) may
// be delivered out of their send order — exactly the relaxation of Figure 1's
// configurations 2 and 4.
type Network struct {
	engine  *sim.Engine
	eps     map[NodeID]Endpoint
	sinks   map[NodeID]*sinkEP
	topo    *Topology
	latency sim.Time
	jitter  int
	rng     *rand.Rand
	sent    uint64
	// keepFIFO, when set, preserves per-(src,dst) send order even with
	// jitter (virtual-channel FIFOs); an ablation knob.
	keepFIFO bool
	lastArr  map[[2]NodeID]sim.Time
}

// NewNetwork builds a network fabric. latency is the base hop cost; jitter,
// when positive, adds a uniformly random 0..jitter-1 extra cycles per message
// drawn from rng (pass a seeded rng for reproducibility). fifo preserves
// per-link ordering.
func NewNetwork(engine *sim.Engine, latency sim.Time, jitter int, rng *rand.Rand, fifo bool) *Network {
	if latency < 1 {
		latency = 1
	}
	return &Network{
		engine:   engine,
		eps:      make(map[NodeID]Endpoint),
		sinks:    make(map[NodeID]*sinkEP),
		latency:  latency,
		jitter:   jitter,
		rng:      rng,
		keepFIFO: fifo,
		lastArr:  make(map[[2]NodeID]sim.Time),
	}
}

// SetTopology routes subsequent sends through topo: the base hop cost becomes
// a function of (src, dst) instead of the flat constant. A flat topology with
// Local equal to the constructor latency is behaviorally identical to no
// topology at all. Must be called before the first Send.
func (n *Network) SetTopology(topo *Topology) { n.topo = topo }

// Attach implements Fabric.
func (n *Network) Attach(id NodeID, e Endpoint) {
	n.eps[id] = e
	n.sinks[id] = &sinkEP{ep: e}
}

// Send implements Fabric.
func (n *Network) Send(src, dst NodeID, msg Message) {
	sink, ok := n.sinks[dst]
	if !ok {
		panic(fmt.Sprintf("interconnect: send to unattached node %d", dst))
	}
	n.sent++
	d := n.latency
	if n.topo != nil {
		d = n.topo.Latency(src, dst)
	}
	// The jitter draw happens on every send, topology or not, so routing
	// changes never shift the RNG stream of unrelated messages.
	if n.jitter > 0 && n.rng != nil {
		d += sim.Time(n.rng.Intn(n.jitter))
	}
	at := n.engine.Now() + d
	if n.keepFIFO {
		key := [2]NodeID{src, dst}
		if last := n.lastArr[key]; at <= last {
			at = last + 1
		}
		n.lastArr[key] = at
	}
	n.engine.DeliverAt(at, sink, int(src), msg)
}

// Messages implements Fabric.
func (n *Network) Messages() uint64 { return n.sent }

// Bus is a shared split-transaction bus: one message occupies the bus for
// Cycle cycles and messages are delivered strictly in request order — the
// fully serialized fabric of Figure 1's configurations 1 and 3.
type Bus struct {
	engine *sim.Engine
	eps    map[NodeID]Endpoint
	sinks  map[NodeID]*sinkEP
	cycle  sim.Time
	free   sim.Time // earliest time the bus is available
	sent   uint64
}

// NewBus builds a bus fabric; cycle is the per-message occupancy.
func NewBus(engine *sim.Engine, cycle sim.Time) *Bus {
	if cycle < 1 {
		cycle = 1
	}
	return &Bus{engine: engine, eps: make(map[NodeID]Endpoint), sinks: make(map[NodeID]*sinkEP), cycle: cycle}
}

// Attach implements Fabric.
func (b *Bus) Attach(id NodeID, e Endpoint) {
	b.eps[id] = e
	b.sinks[id] = &sinkEP{ep: e}
}

// Send implements Fabric.
func (b *Bus) Send(src, dst NodeID, msg Message) {
	sink, ok := b.sinks[dst]
	if !ok {
		panic(fmt.Sprintf("interconnect: send to unattached node %d", dst))
	}
	b.sent++
	start := b.engine.Now()
	if b.free > start {
		start = b.free
	}
	arrival := start + b.cycle
	b.free = arrival
	b.engine.DeliverAt(arrival, sink, int(src), msg)
}

// Messages implements Fabric.
func (b *Bus) Messages() uint64 { return b.sent }
