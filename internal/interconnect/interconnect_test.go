package interconnect

import (
	"math/rand"
	"testing"

	"weakorder/internal/sim"
)

// sink records deliveries with their arrival times.
type sink struct {
	engine *sim.Engine
	got    []arrival
}

type arrival struct {
	src NodeID
	msg Message
	at  sim.Time
}

func (s *sink) Deliver(src NodeID, msg Message) {
	s.got = append(s.got, arrival{src, msg, s.engine.Now()})
}

func TestNetworkDelivery(t *testing.T) {
	e := sim.NewEngine(0, 0)
	n := NewNetwork(e, 10, 0, nil, false)
	s := &sink{engine: e}
	n.Attach(1, s)
	n.Send(0, 1, "a")
	n.Send(0, 1, "b")
	if err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != 2 || s.got[0].at != 10 || s.got[1].at != 10 {
		t.Fatalf("arrivals = %v", s.got)
	}
	if n.Messages() != 2 {
		t.Errorf("messages = %d", n.Messages())
	}
}

func TestNetworkJitterCanReorder(t *testing.T) {
	// With jitter, two messages on the same link may arrive out of order
	// when FIFO is off; sweep seeds until a reorder shows up.
	reordered := false
	for seed := int64(0); seed < 50 && !reordered; seed++ {
		e := sim.NewEngine(0, 0)
		n := NewNetwork(e, 5, 20, rand.New(rand.NewSource(seed)), false)
		s := &sink{engine: e}
		n.Attach(1, s)
		n.Send(0, 1, "first")
		n.Send(0, 1, "second")
		if err := e.Run(nil); err != nil {
			t.Fatal(err)
		}
		if s.got[0].msg == "second" {
			reordered = true
		}
	}
	if !reordered {
		t.Error("jittered non-FIFO network never reordered; relaxation not modeled")
	}
}

func TestNetworkFIFOPreservesOrder(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		e := sim.NewEngine(0, 0)
		n := NewNetwork(e, 5, 20, rand.New(rand.NewSource(seed)), true)
		s := &sink{engine: e}
		n.Attach(1, s)
		for i := 0; i < 5; i++ {
			n.Send(0, 1, i)
		}
		if err := e.Run(nil); err != nil {
			t.Fatal(err)
		}
		for i, a := range s.got {
			if a.msg != i {
				t.Fatalf("seed %d: delivery %d got %v", seed, i, a.msg)
			}
		}
	}
}

func TestNetworkUnattachedPanics(t *testing.T) {
	e := sim.NewEngine(0, 0)
	n := NewNetwork(e, 1, 0, nil, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Send(0, 9, "x")
}

func TestBusSerializes(t *testing.T) {
	e := sim.NewEngine(0, 0)
	b := NewBus(e, 4)
	s1 := &sink{engine: e}
	s2 := &sink{engine: e}
	b.Attach(1, s1)
	b.Attach(2, s2)
	// Three sends at t=0: bus occupancy serializes them at 4, 8, 12.
	b.Send(0, 1, "a")
	b.Send(0, 2, "b")
	b.Send(0, 1, "c")
	if err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	if s1.got[0].at != 4 || s2.got[0].at != 8 || s1.got[1].at != 12 {
		t.Fatalf("bus arrivals: s1=%v s2=%v", s1.got, s2.got)
	}
	if b.Messages() != 3 {
		t.Errorf("messages = %d", b.Messages())
	}
}

func TestBusFreesAfterIdle(t *testing.T) {
	e := sim.NewEngine(0, 0)
	b := NewBus(e, 4)
	s := &sink{engine: e}
	b.Attach(1, s)
	b.Send(0, 1, "a")
	e.At(100, func() { b.Send(0, 1, "b") })
	if err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	if s.got[1].at != 104 {
		t.Fatalf("second arrival = %d, want 104 (no stale occupancy)", s.got[1].at)
	}
}
