package sim

import (
	"errors"
	"testing"
)

// engines runs a subtest against both schedulers; the heap engine is the
// reference the calendar engine must match event for event.
var engines = map[string]func(Time, uint64) *Engine{
	"calendar": NewEngine,
	"heap":     NewHeapEngine,
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(0, 0)
	var got []int
	e.At(5, func() { got = append(got, 2) })
	e.At(3, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 3) }) // same time: schedule order
	if err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 5 {
		t.Errorf("final time = %d, want 5", e.Now())
	}
	if e.Steps() != 3 {
		t.Errorf("steps = %d, want 3", e.Steps())
	}
}

func TestEngineAfterChains(t *testing.T) {
	e := NewEngine(0, 0)
	var times []Time
	var tick func()
	n := 0
	tick = func() {
		times = append(times, e.Now())
		n++
		if n < 4 {
			e.After(10, tick)
		}
	}
	e.After(0, tick)
	if err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 10, 20, 30}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("times = %v", times)
		}
	}
}

func TestEngineSchedulePastFails(t *testing.T) {
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			e := mk(0, 0)
			ran := false
			e.At(10, func() {
				e.At(5, func() { ran = true })
			})
			err := e.Run(nil)
			if !errors.Is(err, ErrSchedulePast) {
				t.Fatalf("err = %v, want ErrSchedulePast", err)
			}
			var se *ScheduleError
			if !errors.As(err, &se) || se.At != 5 || se.Now != 10 {
				t.Fatalf("err = %#v, want ScheduleError{At:5, Now:10}", err)
			}
			if ran {
				t.Error("past-time event must be dropped, not dispatched")
			}
		})
	}
}

func TestEngineTimeBudget(t *testing.T) {
	e := NewEngine(100, 0)
	var tick func()
	tick = func() { e.After(60, tick) }
	e.After(0, tick)
	if err := e.Run(nil); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestEngineEventBudget(t *testing.T) {
	e := NewEngine(0, 5)
	var tick func()
	tick = func() { e.After(1, tick) }
	e.After(0, tick)
	if err := e.Run(nil); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestEngineDonePredicate(t *testing.T) {
	e := NewEngine(0, 0)
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() { count++ })
	}
	err := e.Run(func() bool { return count >= 3 })
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3 (early stop)", count)
	}
	if e.Pending() != 7 {
		t.Errorf("pending = %d, want 7", e.Pending())
	}
}

func TestEngineDeadlockDetection(t *testing.T) {
	e := NewEngine(0, 0)
	e.At(1, func() {})
	err := e.Run(func() bool { return false })
	if err != ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestEngineDrainEmptyNilDone(t *testing.T) {
	e := NewEngine(0, 0)
	if err := e.Run(nil); err != nil {
		t.Fatalf("empty queue with nil done should succeed: %v", err)
	}
}
