// Package sim provides a small deterministic discrete-event simulation
// kernel. Components schedule callbacks at future times; ties are broken by
// schedule order, so a run is fully reproducible given the same inputs.
//
// The timed machine in internal/machine (processors, caches, directory,
// interconnect) is built on this kernel; the operational exploration layer in
// internal/model does not use it (exploration is untimed).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in cycles.
type Time int64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Clock is the read-only view of simulated time that instrumentation layers
// (internal/metrics) depend on: they timestamp observations but must never
// schedule events, so handing them a Clock instead of the Engine makes the
// zero-overhead-when-disabled argument checkable at the type level.
type Clock interface {
	Now() Time
}

// Engine is the discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	steps  uint64
	maxT   Time
	budget uint64
	failed error
}

// NewEngine returns an engine at time zero. maxTime bounds simulated time and
// maxEvents bounds the number of dispatched events; either being exceeded
// makes Run return ErrBudget. Pass 0 for no bound.
func NewEngine(maxTime Time, maxEvents uint64) *Engine {
	return &Engine{maxT: maxTime, budget: maxEvents}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events dispatched so far.
func (e *Engine) Steps() uint64 { return e.steps }

// At schedules fn to run at the absolute time t. Scheduling in the past
// panics: it always indicates a component bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now. d must be >= 0.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Fail aborts the simulation: Run stops dispatching and returns err before
// the next event. Components use it to surface protocol errors as values
// instead of panicking from deep inside an event callback. The first failure
// wins; later calls are ignored so cascading detections keep the root cause.
func (e *Engine) Fail(err error) {
	if e.failed == nil && err != nil {
		e.failed = err
	}
}

// Failed returns the error recorded by Fail, or nil.
func (e *Engine) Failed() error { return e.failed }

// ErrBudget is returned by Run when the time or event budget is exhausted
// before the event queue drains — usually a deadlock-free livelock (e.g. a
// spin loop that never observes its flag) or an unbounded retry storm.
var ErrBudget = fmt.Errorf("sim: time or event budget exhausted")

// Run dispatches events until the queue is empty, until the predicate done
// (if non-nil) returns true, or until a budget is exceeded. It returns nil on
// a drained queue or satisfied predicate.
func (e *Engine) Run(done func() bool) error {
	for e.queue.Len() > 0 {
		if e.failed != nil {
			return e.failed
		}
		if done != nil && done() {
			return nil
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		if e.maxT > 0 && e.now > e.maxT {
			return ErrBudget
		}
		e.steps++
		if e.budget > 0 && e.steps > e.budget {
			return ErrBudget
		}
		ev.fn()
	}
	if e.failed != nil {
		return e.failed
	}
	if done != nil && !done() {
		// The queue drained but the machine did not reach its goal: the
		// system deadlocked (nothing left to do).
		return ErrDeadlock
	}
	return nil
}

// ErrDeadlock is returned by Run when the event queue drains before the
// completion predicate holds. The paper argues (Section 5.3) that its
// implementation never deadlocks; the timed simulator surfaces violations of
// that argument as this error.
var ErrDeadlock = fmt.Errorf("sim: deadlock (event queue drained before completion)")

// Pending returns the number of undelivered events.
func (e *Engine) Pending() int { return e.queue.Len() }
