// Package sim provides a small deterministic discrete-event simulation
// kernel. Components schedule callbacks at future times; ties are broken by
// schedule order, so a run is fully reproducible given the same inputs.
//
// The timed machine in internal/machine (processors, caches, directory,
// interconnect) is built on this kernel; the operational exploration layer in
// internal/model does not use it (exploration is untimed).
//
// Two schedulers back the same Engine API. The default is a calendar queue: a
// fixed-size timing wheel of per-cycle slots holding value-typed events, with
// a binary min-heap fallback for events scheduled beyond the wheel horizon.
// Slot buffers and the overflow heap's backing array are recycled, so
// steady-state scheduling is allocation-free, and a whole cycle's slot is
// dispatched as one batch. NewHeapEngine builds the original
// container/heap-based scheduler (one allocation per event); it dispatches in
// exactly the same order and exists as the baseline for differential tests
// and benchmarks.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in cycles.
type Time int64

// Sink is a destination for a value-typed delivery event. Fabrics schedule
// message arrival through DeliverAt instead of a closure so that the hot
// send path does not allocate.
type Sink interface {
	DeliverEvent(src int, msg any)
}

// event is a scheduled callback (fn) or delivery (sink/src/msg). The calendar
// scheduler stores events by value in slot buffers; the legacy heap scheduler
// stores them behind pointers.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	sink Sink
	src  int
	msg  any
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// wheelSize is the calendar horizon in cycles. Events scheduled less than
// wheelSize cycles ahead land in their cycle's slot; anything further goes to
// the overflow heap. All latencies in the timed machine (hit, memory,
// network, bus) are far below this, so in steady state the overflow heap only
// sees watchdog and deep-backoff timers.
const (
	wheelSize = 1 << 10
	wheelMask = wheelSize - 1
)

// slot is one wheel cycle's batch of events, appended in schedule (seq)
// order. head marks how many have been dispatched; buffers are reset, not
// freed, so a warmed-up wheel never allocates.
type slot struct {
	head int
	evs  []event
}

// overflow is a value-typed min-heap ordered by (at, seq) for events beyond
// the wheel horizon.
type overflow struct {
	h []event
}

func (o *overflow) len() int    { return len(o.h) }
func (o *overflow) top() *event { return &o.h[0] }

func (o *overflow) less(i, j int) bool {
	if o.h[i].at != o.h[j].at {
		return o.h[i].at < o.h[j].at
	}
	return o.h[i].seq < o.h[j].seq
}

func (o *overflow) push(ev event) {
	o.h = append(o.h, ev)
	i := len(o.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !o.less(i, p) {
			break
		}
		o.h[i], o.h[p] = o.h[p], o.h[i]
		i = p
	}
}

func (o *overflow) pop() event {
	ev := o.h[0]
	n := len(o.h) - 1
	o.h[0] = o.h[n]
	o.h[n] = event{}
	o.h = o.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && o.less(l, s) {
			s = l
		}
		if r < n && o.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		o.h[i], o.h[s] = o.h[s], o.h[i]
		i = s
	}
	return ev
}

// Clock is the read-only view of simulated time that instrumentation layers
// (internal/metrics) depend on: they timestamp observations but must never
// schedule events, so handing them a Clock instead of the Engine makes the
// zero-overhead-when-disabled argument checkable at the type level.
type Clock interface {
	Now() Time
}

// Engine is the discrete-event simulator. The zero value is not usable; call
// NewEngine or NewHeapEngine.
type Engine struct {
	now    Time
	seq    uint64
	steps  uint64
	maxT   Time
	budget uint64
	failed error

	// legacy selects the original container/heap scheduler.
	legacy bool
	queue  eventQueue

	// Calendar scheduler state.
	live  int // events resident in wheel slots
	over  overflow
	wheel [wheelSize]slot
}

// NewEngine returns a calendar-queue engine at time zero. maxTime bounds
// simulated time and maxEvents bounds the number of dispatched events; either
// being exceeded makes Run return ErrBudget. Pass 0 for no bound.
func NewEngine(maxTime Time, maxEvents uint64) *Engine {
	return &Engine{maxT: maxTime, budget: maxEvents}
}

// NewHeapEngine returns an engine using the original binary-heap scheduler.
// It dispatches the same schedule in the same order as NewEngine; it is kept
// as the comparison baseline for equivalence tests and throughput benchmarks.
func NewHeapEngine(maxTime Time, maxEvents uint64) *Engine {
	return &Engine{maxT: maxTime, budget: maxEvents, legacy: true}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events dispatched so far.
func (e *Engine) Steps() uint64 { return e.steps }

// ErrSchedulePast is the sentinel matched (via errors.Is) by the
// ScheduleError recorded when a component schedules an event before the
// current time.
var ErrSchedulePast = fmt.Errorf("sim: schedule before now")

// ScheduleError reports a past-time scheduling attempt: a component bug, but
// surfaced as a run failure (like ErrProtocol in the cache layer) instead of
// a panic so harnesses can report it alongside the offending configuration.
type ScheduleError struct {
	At, Now Time
}

func (s *ScheduleError) Error() string {
	return fmt.Sprintf("sim: schedule at %d before now %d", s.At, s.Now)
}

// Is makes errors.Is(err, ErrSchedulePast) match.
func (s *ScheduleError) Is(target error) bool { return target == ErrSchedulePast }

// At schedules fn to run at the absolute time t. Scheduling in the past
// always indicates a component bug: the event is dropped and the run fails
// with a ScheduleError before the next dispatch.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		e.Fail(&ScheduleError{At: t, Now: e.now})
		return
	}
	e.seq++
	if e.legacy {
		heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
		return
	}
	e.place(event{at: t, seq: e.seq, fn: fn})
}

// DeliverAt schedules s.DeliverEvent(src, msg) at the absolute time t. On the
// calendar engine this is allocation-free (the event is stored by value); on
// the legacy heap engine it degrades to the closure it replaces. Past-time
// scheduling fails the run exactly like At.
func (e *Engine) DeliverAt(t Time, s Sink, src int, msg any) {
	if t < e.now {
		e.Fail(&ScheduleError{At: t, Now: e.now})
		return
	}
	e.seq++
	if e.legacy {
		heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: func() { s.DeliverEvent(src, msg) }})
		return
	}
	e.place(event{at: t, seq: e.seq, sink: s, src: src, msg: msg})
}

// place files a value event into its wheel slot or the overflow heap.
func (e *Engine) place(ev event) {
	if ev.at-e.now < wheelSize {
		s := &e.wheel[ev.at&wheelMask]
		s.evs = append(s.evs, ev)
		e.live++
		return
	}
	e.over.push(ev)
}

// After schedules fn to run d cycles from now. d must be >= 0.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Fail aborts the simulation: Run stops dispatching and returns err before
// the next event. Components use it to surface protocol errors as values
// instead of panicking from deep inside an event callback. The first failure
// wins; later calls are ignored so cascading detections keep the root cause.
func (e *Engine) Fail(err error) {
	if e.failed == nil && err != nil {
		e.failed = err
	}
}

// Failed returns the error recorded by Fail, or nil.
func (e *Engine) Failed() error { return e.failed }

// ErrBudget is returned by Run when the time or event budget is exhausted
// before the event queue drains — usually a deadlock-free livelock (e.g. a
// spin loop that never observes its flag) or an unbounded retry storm.
var ErrBudget = fmt.Errorf("sim: time or event budget exhausted")

// Run dispatches events until the queue is empty, until the predicate done
// (if non-nil) returns true, or until a budget is exceeded. It returns nil on
// a drained queue or satisfied predicate.
func (e *Engine) Run(done func() bool) error {
	if e.legacy {
		return e.runHeap(done)
	}
	return e.runWheel(done)
}

func (e *Engine) runHeap(done func() bool) error {
	for e.queue.Len() > 0 {
		if e.failed != nil {
			return e.failed
		}
		if done != nil && done() {
			return nil
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		if e.maxT > 0 && e.now > e.maxT {
			return ErrBudget
		}
		e.steps++
		if e.budget > 0 && e.steps > e.budget {
			return ErrBudget
		}
		ev.fn()
	}
	return e.finish(done)
}

// runWheel is the calendar dispatch loop: advance to the next populated
// cycle, then drain that cycle's slot as one batch, merging in any overflow
// events that carry the same timestamp (an event scheduled from far away can
// share a cycle with one scheduled inside the horizon; schedule order must
// still break the tie, so the merge compares sequence numbers).
func (e *Engine) runWheel(done func() bool) error {
	for e.live > 0 || e.over.len() > 0 {
		if e.failed != nil {
			return e.failed
		}
		if done != nil && done() {
			return nil
		}
		e.now = e.nextTime()
		if e.maxT > 0 && e.now > e.maxT {
			return ErrBudget
		}
		s := &e.wheel[e.now&wheelMask]
		// Every event in this slot is for the current cycle: inserts always
		// satisfy at-now < wheelSize, so a slot never holds two laps at once.
		for {
			hasW := s.head < len(s.evs)
			hasO := e.over.len() > 0 && e.over.top().at == e.now
			if !hasW && !hasO {
				break
			}
			if e.failed != nil {
				return e.failed
			}
			if done != nil && done() {
				return nil
			}
			var ev event
			if hasW && (!hasO || s.evs[s.head].seq < e.over.top().seq) {
				ev = s.evs[s.head]
				s.evs[s.head] = event{}
				s.head++
				e.live--
			} else {
				ev = e.over.pop()
			}
			e.steps++
			if e.budget > 0 && e.steps > e.budget {
				return ErrBudget
			}
			if ev.sink != nil {
				ev.sink.DeliverEvent(ev.src, ev.msg)
			} else {
				ev.fn()
			}
		}
		s.evs = s.evs[:0]
		s.head = 0
	}
	return e.finish(done)
}

// nextTime finds the earliest populated cycle: the wheel is scanned forward
// from now (any resident event is within wheelSize cycles, and the scan
// pointer only moves with time, so the cost amortizes to O(1) per event),
// bounded by the overflow heap's minimum.
func (e *Engine) nextTime() Time {
	best := Time(-1)
	if e.over.len() > 0 {
		best = e.over.top().at
	}
	if e.live > 0 {
		for d := Time(0); d < wheelSize; d++ {
			t := e.now + d
			if best >= 0 && t > best {
				break
			}
			s := &e.wheel[t&wheelMask]
			if s.head < len(s.evs) {
				return t
			}
		}
	}
	return best
}

func (e *Engine) finish(done func() bool) error {
	if e.failed != nil {
		return e.failed
	}
	if done != nil && !done() {
		// The queue drained but the machine did not reach its goal: the
		// system deadlocked (nothing left to do).
		return ErrDeadlock
	}
	return nil
}

// ErrDeadlock is returned by Run when the event queue drains before the
// completion predicate holds. The paper argues (Section 5.3) that its
// implementation never deadlocks; the timed simulator surfaces violations of
// that argument as this error.
var ErrDeadlock = fmt.Errorf("sim: deadlock (event queue drained before completion)")

// Pending returns the number of undelivered events.
func (e *Engine) Pending() int {
	if e.legacy {
		return e.queue.Len()
	}
	return e.live + e.over.len()
}
