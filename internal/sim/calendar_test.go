package sim

import (
	"errors"
	"testing"
)

// recSink records deliveries so tests can compare dispatch order across
// engines.
type recSink struct {
	log *[]int64
}

func (r recSink) DeliverEvent(src int, msg any) {
	*r.log = append(*r.log, int64(src)*1000000+msg.(int64))
}

// TestCalendarMatchesHeap drives both schedulers through the same
// pseudo-random event storm — self-rescheduling callbacks, bursts at shared
// timestamps, horizon-crossing delays — and requires the dispatch logs
// (event id + dispatch time) to be identical. This is the determinism
// contract the calendar queue must preserve byte for byte.
func TestCalendarMatchesHeap(t *testing.T) {
	type entry struct {
		id int
		at Time
	}
	run := func(mk func(Time, uint64) *Engine) []entry {
		e := mk(0, 0)
		var log []entry
		// Deterministic LCG so both engines see the same schedule.
		state := uint64(12345)
		next := func(n uint64) uint64 {
			state = state*6364136223846793005 + 1442695040888963407
			return (state >> 33) % n
		}
		id := 0
		var spawn func(depth int) func()
		spawn = func(depth int) func() {
			myID := id
			id++
			return func() {
				log = append(log, entry{myID, e.Now()})
				if depth >= 6 {
					return
				}
				k := int(next(3)) // 0..2 children
				for c := 0; c < k; c++ {
					var d Time
					switch next(4) {
					case 0:
						d = 0 // same-cycle batch
					case 1:
						d = Time(next(8)) // dense near future
					case 2:
						d = Time(next(200)) // mid horizon
					default:
						d = wheelSize - 2 + Time(next(6)) // straddles the horizon
					}
					e.At(e.Now()+d, spawn(depth+1))
				}
			}
		}
		for i := 0; i < 20; i++ {
			e.At(Time(next(uint64(2*wheelSize))), spawn(0))
		}
		if err := e.Run(nil); err != nil {
			t.Fatal(err)
		}
		if e.Pending() != 0 {
			t.Fatalf("pending = %d after drain", e.Pending())
		}
		return log
	}
	heapLog := run(NewHeapEngine)
	calLog := run(NewEngine)
	if len(heapLog) != len(calLog) {
		t.Fatalf("dispatched %d events on heap, %d on calendar", len(heapLog), len(calLog))
	}
	for i := range heapLog {
		if heapLog[i] != calLog[i] {
			t.Fatalf("dispatch %d: heap %+v, calendar %+v", i, heapLog[i], calLog[i])
		}
	}
}

// TestCalendarOverflowMerge pins the subtle tie: an event scheduled from far
// away lands in the overflow heap, a later-scheduled event for the same cycle
// lands in the wheel, and the earlier schedule (smaller seq, here the
// overflow one) must still dispatch first.
func TestCalendarOverflowMerge(t *testing.T) {
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			e := mk(0, 0)
			target := Time(2 * wheelSize)
			var got []int
			e.At(target, func() { got = append(got, 1) }) // beyond horizon: overflow
			e.At(target-10, func() {                      // within horizon of target when it runs
				e.At(target, func() { got = append(got, 2) }) // wheel
			})
			e.At(target, func() { got = append(got, 3) }) // overflow again
			if err := e.Run(nil); err != nil {
				t.Fatal(err)
			}
			if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 2 {
				t.Fatalf("order = %v, want [1 3 2] (schedule order within the cycle)", got)
			}
		})
	}
}

// TestDeliverAtOrdersWithAt checks value-typed deliveries interleave with
// closure events in strict schedule order on both engines.
func TestDeliverAtOrdersWithAt(t *testing.T) {
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			e := mk(0, 0)
			var log []int64
			s := recSink{log: &log}
			e.DeliverAt(5, s, 1, int64(10))
			e.At(5, func() { log = append(log, -1) })
			e.DeliverAt(5, s, 2, int64(20))
			e.At(3, func() { log = append(log, -2) })
			if err := e.Run(nil); err != nil {
				t.Fatal(err)
			}
			want := []int64{-2, 1000010, -1, 2000020}
			if len(log) != len(want) {
				t.Fatalf("log = %v, want %v", log, want)
			}
			for i := range want {
				if log[i] != want[i] {
					t.Fatalf("log = %v, want %v", log, want)
				}
			}
		})
	}
}

// TestDeliverAtPastFails mirrors the At past-time contract for the delivery
// fast path.
func TestDeliverAtPastFails(t *testing.T) {
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			e := mk(0, 0)
			var log []int64
			s := recSink{log: &log}
			e.At(10, func() { e.DeliverAt(5, s, 0, int64(1)) })
			if err := e.Run(nil); !errors.Is(err, ErrSchedulePast) {
				t.Fatalf("err = %v, want ErrSchedulePast", err)
			}
			if len(log) != 0 {
				t.Error("past-time delivery must be dropped")
			}
		})
	}
}

// TestCalendarSteadyStateAllocFree: once the wheel's slot buffers are warm, a
// self-rescheduling workload must not allocate per event.
func TestCalendarSteadyStateAllocFree(t *testing.T) {
	e := NewEngine(0, 0)
	n := 0
	limit := 0
	var tick func()
	tick = func() {
		n++
		if n < limit {
			e.After(1, tick)
		}
	}
	// Warm every slot: time keeps advancing across runs, so the whole wheel
	// must have seen at least one event before allocations are counted.
	n, limit = 0, 2*wheelSize
	e.After(0, tick)
	if err := e.Run(nil); err != nil {
		t.Fatal(err)
	}
	limit = 64
	allocs := testing.AllocsPerRun(10, func() {
		n = 0
		e.After(0, tick)
		if err := e.Run(nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state run allocated %.1f objects per run, want 0", allocs)
	}
}
