package sim

import (
	"errors"
	"testing"
)

// pastSink records deliveries for the DeliverAt variants.
type pastSink struct{ got int }

func (s *pastSink) DeliverEvent(src int, msg any) { s.got++ }

// TestSchedulePastTypedError pins the ErrSchedulePast contract on both
// engines and both scheduling entry points: a past-time At/DeliverAt records
// a ScheduleError, Run surfaces it as the typed error (errors.Is and
// errors.As both work), and the offending event is dropped, not dispatched.
func TestSchedulePastTypedError(t *testing.T) {
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			t.Run("At", func(t *testing.T) {
				e := mk(0, 0)
				ran := false
				e.After(10, func() {
					e.At(5, func() { ran = true }) // 5 < now=10: component bug
				})
				err := e.Run(nil)
				if !errors.Is(err, ErrSchedulePast) {
					t.Fatalf("Run = %v, want ErrSchedulePast", err)
				}
				var se *ScheduleError
				if !errors.As(err, &se) {
					t.Fatalf("Run error %v does not unwrap to *ScheduleError", err)
				}
				if se.At != 5 || se.Now != 10 {
					t.Fatalf("ScheduleError{At:%d, Now:%d}, want {5, 10}", se.At, se.Now)
				}
				if ran {
					t.Fatal("past-time event was dispatched")
				}
			})
			t.Run("DeliverAt", func(t *testing.T) {
				e := mk(0, 0)
				s := &pastSink{}
				e.After(10, func() { e.DeliverAt(3, s, 0, "late") })
				if err := e.Run(nil); !errors.Is(err, ErrSchedulePast) {
					t.Fatalf("Run = %v, want ErrSchedulePast", err)
				}
				if s.got != 0 {
					t.Fatal("past-time delivery was dispatched")
				}
			})
		})
	}
}

// TestSchedulePastPreemptsPendingWork asserts the failure is not silently
// drowned out by remaining work: events already queued after the violation
// never run, so the typed error reaches the caller before any later state
// change could mask it.
func TestSchedulePastPreemptsPendingWork(t *testing.T) {
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			e := mk(0, 0)
			laterRan := false
			e.After(20, func() { laterRan = true })
			e.After(10, func() { e.At(0, func() {}) })
			if err := e.Run(nil); !errors.Is(err, ErrSchedulePast) {
				t.Fatalf("Run = %v, want ErrSchedulePast", err)
			}
			if laterRan {
				t.Fatal("event after the violation still ran")
			}
			if e.Now() != 10 {
				t.Fatalf("engine advanced to %d after the failure, want 10", e.Now())
			}
		})
	}
}

// TestSchedulePastFirstErrorWins pins Fail's first-error-wins rule for the
// schedule sentinel: a later, different failure does not replace the
// original ScheduleError root cause.
func TestSchedulePastFirstErrorWins(t *testing.T) {
	other := errors.New("secondary failure")
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			e := mk(0, 0)
			e.After(10, func() {
				e.At(1, func() {})
				e.Fail(other)
			})
			err := e.Run(nil)
			if !errors.Is(err, ErrSchedulePast) {
				t.Fatalf("Run = %v, want the first (ScheduleError) failure", err)
			}
			if errors.Is(err, other) {
				t.Fatal("secondary failure replaced the ScheduleError root cause")
			}
		})
	}
}
