package machine

import (
	"fmt"
	"testing"

	"weakorder/internal/interconnect"
	"weakorder/internal/proc"
	"weakorder/internal/workload"
)

// benchCase is one point on the scaling grid: processor count, directory
// shard count, topology, and event-scheduler mode. The workload is the E13
// capacity kernel — every processor contends for one lock and does a little
// local work — so throughput is dominated by the machine core (scheduler,
// protocol, interconnect), not by workload construction.
type benchCase struct {
	procs    int
	shards   int
	topology interconnect.TopologyKind
	heap     bool
}

func (c benchCase) name() string {
	eng := "calendar"
	if c.heap {
		eng = "heap"
	}
	return fmt.Sprintf("p%d/shards%d/%s/%s", c.procs, c.shards, c.topology, eng)
}

// BenchmarkMachineRun sweeps the big-P configuration surface and reports
// simulated cycles per wall-clock second (simcycles/sec), the figure of
// merit BENCH_machine.json tracks. The heap rows are the legacy baseline
// engine; the calendar rows are the default.
func BenchmarkMachineRun(b *testing.B) {
	cases := []benchCase{
		{procs: 8, shards: 1, topology: interconnect.TopoFlat},
		{procs: 16, shards: 1, topology: interconnect.TopoFlat},
		{procs: 64, shards: 1, topology: interconnect.TopoFlat, heap: true},
		{procs: 64, shards: 1, topology: interconnect.TopoFlat},
		{procs: 64, shards: 4, topology: interconnect.TopoFlat},
		{procs: 64, shards: 4, topology: interconnect.TopoDanceHall},
		{procs: 64, shards: 8, topology: interconnect.TopoClusters},
		{procs: 64, shards: 8, topology: interconnect.TopoClusters, heap: true},
	}
	for _, c := range cases {
		b.Run(c.name(), func(b *testing.B) {
			prog := workload.Lock(c.procs, 2, 10, 10, workload.SpinSync)
			cfg := NewConfig(proc.PolicyWODef2)
			cfg.DirShards = c.shards
			cfg.Topology = c.topology
			cfg.HeapEngine = c.heap
			var cycles int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(prog, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles += int64(res.Cycles)
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(cycles)/secs, "simcycles/sec")
			}
		})
	}
}
