package machine

import (
	"bytes"
	"fmt"
	"testing"

	"weakorder/internal/cache"
	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/proc"
	"weakorder/internal/sim"
	"weakorder/internal/trace"
	"weakorder/internal/workload"
)

// TestShardOfPartition: the address→shard mapping is a partition — every
// address lands in exactly one in-range shard, and the mapping is a pure
// function of (address, shard count).
func TestShardOfPartition(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8} {
		counts := make([]int, shards)
		for a := mem.Addr(0); a < 1000; a++ {
			s := cache.ShardOf(a, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", a, shards, s)
			}
			if again := cache.ShardOf(a, shards); again != s {
				t.Fatalf("ShardOf(%d, %d) unstable: %d then %d", a, shards, s, again)
			}
			counts[s]++
		}
		for s, n := range counts {
			if n == 0 {
				t.Errorf("shards=%d: shard %d owns no address in 0..999", shards, s)
			}
		}
	}
}

// runFingerprint renders everything observable about a run that the shard
// count and the engine choice must not change: completion time, traffic,
// final memory, the recorded trace, the attribution tables, and the exported
// timeline, all as one byte string.
func runFingerprint(t *testing.T, r *Result) []byte {
	t.Helper()
	var b bytes.Buffer
	fmt.Fprintf(&b, "cycles=%d messages=%d\n", r.Cycles, r.Messages)
	for _, a := range []mem.Addr{workload.CtrAddr(), workload.XAddr()} {
		fmt.Fprintf(&b, "mem[%d]=%d\n", a, r.FinalMem[a])
	}
	if r.Trace != nil {
		b.WriteString(r.Trace.String())
	}
	if r.Metrics != nil {
		for _, tbl := range r.Metrics.Tables() {
			b.WriteString(tbl.String())
		}
		if err := r.Metrics.WriteTimeline(&b, "scale_test"); err != nil {
			t.Fatalf("WriteTimeline: %v", err)
		}
	}
	return b.Bytes()
}

// TestShardCountInvariance: a fault-free run's entire observable behavior —
// outcomes, cycle counts, message counts, trace, attribution, and the
// rendered timeline — is byte-identical at every directory shard count.
// Sharding only moves lines to different home nodes; it must never reorder
// the event stream.
func TestShardCountInvariance(t *testing.T) {
	progs := map[string]func() *Result{}
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		progs[fmt.Sprintf("shards=%d", shards)] = func() *Result {
			p := workload.Lock(4, 2, 4, 6, workload.SpinSync)
			cfg := NewConfig(proc.PolicyWODef2)
			cfg.DirShards = shards
			cfg.RecordTrace = true
			cfg.Metrics = true
			r, err := Run(p, cfg)
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			return r
		}
	}
	base := progs["shards=1"]()
	want := runFingerprint(t, base)
	for _, shards := range []int{2, 4} {
		name := fmt.Sprintf("shards=%d", shards)
		r := progs[name]()
		if got := runFingerprint(t, r); !bytes.Equal(got, want) {
			t.Errorf("%s: fingerprint differs from shards=1\nshards=1:\n%s\n%s:\n%s", name, want, name, got)
		}
		if len(r.DirShardStats) != shards {
			t.Errorf("%s: %d shard stat bags", name, len(r.DirShardStats))
		}
		if len(r.DirOccupancy) != shards {
			t.Errorf("%s: %d occupancy histograms", name, len(r.DirOccupancy))
		}
		// The aggregate directory counters are exactly the sum of the
		// per-shard bags.
		for _, n := range r.DirStats.Names() {
			var sum int64
			for _, s := range r.DirShardStats {
				sum += s.Get(n)
			}
			if sum != r.DirStats.Get(n) {
				t.Errorf("%s: counter %s: aggregate %d != shard sum %d", name, n, r.DirStats.Get(n), sum)
			}
		}
		// Both lock lines map somewhere; with 2+ shards the workload's two hot
		// addresses must not all collapse onto shard 0 by accident of the test.
		var active int
		for _, s := range r.DirShardStats {
			if s.Get("gets")+s.Get("getx") > 0 {
				active++
			}
		}
		if active < 2 {
			t.Errorf("%s: only %d shard(s) saw traffic; partitioning not exercised", name, active)
		}
	}
}

// TestShardedFaultTolerance: with the fault injector on, each shard runs its
// own queue and watchdog; the run must still complete correctly at several
// shard counts, with the injector actually perturbing traffic.
func TestShardedFaultTolerance(t *testing.T) {
	for _, shards := range []int{1, 4} {
		p := workload.Lock(4, 2, 4, 6, workload.SpinSync)
		cfg := NewConfig(proc.PolicyWODef2)
		cfg.DirShards = shards
		cfg.Faults = true
		cfg.FaultSeed = 12
		r, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got, want := r.FinalMem[workload.CtrAddr()], workload.LockTotal(4, 2); got != want {
			t.Errorf("shards=%d: counter = %d, want %d", shards, got, want)
		}
		if len(r.Injections) == 0 {
			t.Errorf("shards=%d: injector never fired; the scenario is not exercising fault handling", shards)
		}
	}
}

// TestTopologyDeterminism: every topology produces correct outcomes, and a
// repeated run — including under jitter and fault injection — is
// byte-identical, fault log and all.
func TestTopologyDeterminism(t *testing.T) {
	for _, topo := range []interconnect.TopologyKind{interconnect.TopoFlat, interconnect.TopoDanceHall, interconnect.TopoClusters} {
		run := func() *Result {
			p := workload.Lock(4, 2, 4, 6, workload.SpinSync)
			cfg := NewConfig(proc.PolicyWODef2)
			cfg.Topology = topo
			cfg.ClusterSize = 2
			cfg.RemoteLatency = 25
			cfg.NetJitter = 5
			cfg.Seed = 7
			cfg.Faults = true
			cfg.FaultSeed = 3
			r, err := Run(p, cfg)
			if err != nil {
				t.Fatalf("%s: %v", topo, err)
			}
			return r
		}
		a, b := run(), run()
		if got, want := a.FinalMem[workload.CtrAddr()], workload.LockTotal(4, 2); got != want {
			t.Errorf("%s: counter = %d, want %d", topo, got, want)
		}
		if a.Cycles != b.Cycles || a.Messages != b.Messages || a.InjectionLog != b.InjectionLog {
			t.Errorf("%s: nondeterministic repeat: (%d,%d) vs (%d,%d), logs equal=%v",
				topo, a.Cycles, a.Messages, b.Cycles, b.Messages, a.InjectionLog == b.InjectionLog)
		}
	}
}

// TestTopologyLatencyOrdering: remote hops cost cycles — a cross-cluster
// workload on the clusters topology cannot beat the flat network, and raising
// the remote latency cannot make it faster.
func TestTopologyLatencyOrdering(t *testing.T) {
	run := func(topo interconnect.TopologyKind, remote int) *Result {
		p := workload.ProducerConsumer(4, 3)
		cfg := NewConfig(proc.PolicyWODef2)
		cfg.Topology = topo
		cfg.ClusterSize = 2
		cfg.RemoteLatency = sim.Time(remote)
		r, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("%s/remote=%d: %v", topo, remote, err)
		}
		return r
	}
	flat := run(interconnect.TopoFlat, 0)
	near := run(interconnect.TopoClusters, 10)
	far := run(interconnect.TopoClusters, 60)
	if near.Cycles < flat.Cycles {
		t.Errorf("clusters (remote=10) finished in %d < flat %d", near.Cycles, flat.Cycles)
	}
	if far.Cycles < near.Cycles {
		t.Errorf("clusters remote=60 finished in %d < remote=10 %d", far.Cycles, near.Cycles)
	}
}

// TestHeapCalendarEquivalence: the calendar-queue engine and the legacy heap
// engine dispatch the identical event stream — whole-run fingerprints
// (trace, attribution tables, timeline) are byte-identical.
func TestHeapCalendarEquivalence(t *testing.T) {
	run := func(heap bool) *Result {
		p := workload.Lock(4, 2, 4, 6, workload.SpinSync)
		cfg := NewConfig(proc.PolicyWODef2)
		cfg.HeapEngine = heap
		cfg.NetJitter = 5
		cfg.Seed = 11
		cfg.RecordTrace = true
		cfg.Metrics = true
		r, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("heap=%v: %v", heap, err)
		}
		return r
	}
	cal, heap := runFingerprint(t, run(false)), runFingerprint(t, run(true))
	if !bytes.Equal(cal, heap) {
		t.Errorf("engines diverge:\ncalendar:\n%s\nheap:\n%s", cal, heap)
	}
}

// TestBigP: a 64-processor run — the scale target of the sharded directory —
// completes correctly with sharding, a non-flat topology, tracing, and
// metrics all on, and the cycle attribution still closes: every processor's
// class buckets sum exactly to its finish time.
func TestBigP(t *testing.T) {
	const nproc = 64
	p := workload.Lock(nproc, 1, 4, 8, workload.SpinSync)
	cfg := NewConfig(proc.PolicyWODef2)
	cfg.DirShards = 8
	cfg.Topology = interconnect.TopoClusters
	cfg.ClusterSize = 8
	cfg.RecordTrace = true
	cfg.Metrics = true
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.FinalMem[workload.CtrAddr()], workload.LockTotal(nproc, 1); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if len(r.ProcFinish) != nproc || len(r.Metrics.Procs) != nproc {
		t.Fatalf("result shape: %d finishes, %d metric tracks", len(r.ProcFinish), len(r.Metrics.Procs))
	}
	for _, pc := range r.Metrics.Procs {
		if pc.Total() != int64(pc.Finish) {
			t.Errorf("proc %d: attributed %d cycles, finish %d — attribution does not close", pc.Proc, pc.Total(), pc.Finish)
		}
	}
	// The timeline for a 64-track run must still validate.
	var b bytes.Buffer
	if err := r.Metrics.WriteTimeline(&b, "p64"); err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateTimeline(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	// And the 64-thread trace must survive the JSON round trip (the decoder's
	// MaxProcs bound sits well above this).
	var tb bytes.Buffer
	if err := trace.Write(&tb, r.Trace, map[mem.Addr]mem.Value{}, nil); err != nil {
		t.Fatal(err)
	}
	back, _, _, err := trace.Read(&tb)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != r.Trace.String() {
		t.Error("trace did not round-trip byte-identically at 64 threads")
	}
}
