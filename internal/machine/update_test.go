package machine

import (
	"testing"

	"weakorder/internal/conditions"
	"weakorder/internal/proc"
	"weakorder/internal/workload"
)

// updCfg builds an update-protocol config.
func updCfg(pol proc.Policy) Config {
	cfg := NewConfig(pol)
	cfg.Protocol = ProtocolUpdate
	cfg.RecordTrace = true
	return cfg
}

// TestUpdateProtocolCorrectness runs the DRF0 workloads on the write-update
// data path across policies: results and SC-ness must match the invalidation
// protocol's.
func TestUpdateProtocolCorrectness(t *testing.T) {
	const items = 6
	p := workload.ProducerConsumer(items, 5)
	want := workload.ProducerConsumerChecksum(items)
	for _, pol := range allPolicies {
		cfg := updCfg(pol)
		r, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if got := r.FinalMem[workload.XAddr()]; got != want {
			t.Errorf("%s: checksum = %d, want %d", pol, got, want)
		}
		checkSCTrace(t, "update/"+pol.String(), p, r)
	}
	lock := workload.Lock(3, 3, 4, 4, workload.SpinSync)
	for _, pol := range allPolicies {
		r, err := Run(lock, updCfg(pol))
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if got := r.FinalMem[workload.CtrAddr()]; got != workload.LockTotal(3, 3) {
			t.Errorf("%s: counter = %d", pol, got)
		}
	}
}

// TestUpdateProtocolConditions: the Section-5.1 conditions hold on the
// update data path too (commit = local apply, perform = all updates acked).
func TestUpdateProtocolConditions(t *testing.T) {
	p := workload.Fig3N(3, 4, 0)
	for _, pol := range []proc.Policy{proc.PolicyWODef1, proc.PolicyWODef2} {
		cfg := updCfg(pol)
		cfg.RecordTimings = true
		r, err := Run(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep := conditions.Check(r.Timings); !rep.OK() {
			t.Errorf("%s/update: %s", pol, rep)
		}
	}
}

// TestUpdateVsInvalidateTradeoff: on a producer/consumer pipeline the update
// protocol keeps the consumer's copy warm (reader misses vanish), at the cost
// of per-write update traffic — the classic trade-off, measurable here.
func TestUpdateVsInvalidateTradeoff(t *testing.T) {
	p := workload.ProducerConsumer(10, 5)
	inv, err := Run(p, func() Config {
		c := NewConfig(proc.PolicyWODef2)
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	upd, err := Run(p, func() Config {
		c := NewConfig(proc.PolicyWODef2)
		c.Protocol = ProtocolUpdate
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	var invReadMisses, updReadMisses int64
	for i := range inv.CacheStats {
		invReadMisses += inv.CacheStats[i].Get("read_misses")
		updReadMisses += upd.CacheStats[i].Get("read_misses")
	}
	if updReadMisses >= invReadMisses {
		t.Errorf("update protocol should cut read misses: inv=%d upd=%d", invReadMisses, updReadMisses)
	}
	if upd.DirStats.Get("updates") == 0 {
		t.Error("update protocol never sent updates")
	}
}

// TestUpdateJitteredStillSC: the update path must survive reordered delivery
// (the updateOverride guard).
func TestUpdateJitteredStillSC(t *testing.T) {
	p := workload.ProducerConsumer(5, 2)
	for seed := int64(0); seed < 8; seed++ {
		cfg := updCfg(proc.PolicyWODef2)
		cfg.NetJitter = 9
		cfg.FIFO = false
		cfg.Seed = seed
		r, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkSCTrace(t, "update/jitter", p, r)
	}
}
