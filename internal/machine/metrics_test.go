package machine

import (
	"errors"
	"runtime"
	"strings"
	"testing"

	"weakorder/internal/cache"
	"weakorder/internal/faults"
	"weakorder/internal/metrics"
	"weakorder/internal/par"
	"weakorder/internal/proc"
	"weakorder/internal/workload"
)

// metricsTablesString renders every aggregate table into one string (what
// `wosim -metrics` prints), for byte-comparison.
func metricsTablesString(rep *metrics.Report) string {
	var sb strings.Builder
	for _, tbl := range rep.Tables() {
		sb.WriteString(tbl.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestMetricsAttributionCloses checks the tentpole invariant on a real run:
// under every policy, each processor's six buckets total its lifetime
// exactly.
func TestMetricsAttributionCloses(t *testing.T) {
	for _, pol := range allPolicies {
		cfg := NewConfig(pol)
		cfg.Metrics = true
		res, err := Run(workload.Fig3(2, 30), cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Metrics == nil {
			t.Fatalf("%s: Metrics nil with Config.Metrics set", pol)
		}
		for _, p := range res.Metrics.Procs {
			if p.Total() != int64(p.Finish) {
				t.Errorf("%s P%d: buckets total %d, finish %d", pol, p.Proc, p.Total(), p.Finish)
			}
			for cl, n := range p.Cycles {
				if n < 0 {
					t.Errorf("%s P%d: negative %s cycles %d", pol, p.Proc, metrics.Class(cl), n)
				}
			}
		}
	}
}

// TestMetricsPolicyContrast pins the paper's Section-6 story in the
// attribution: the def1-style machine charges the releasing processor
// counter-stall cycles that the def2 machine eliminates (its release commits
// and the stall transfers to the reserve bit).
func TestMetricsPolicyContrast(t *testing.T) {
	prog := workload.Fig3(2, 40)
	run := func(pol proc.Policy) *Result {
		cfg := NewConfig(pol)
		cfg.Metrics = true
		res, err := Run(prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		return res
	}
	def1, def2 := run(proc.PolicyWODef1), run(proc.PolicyWODef2)
	if got := def1.Metrics.ProcStall(0, metrics.ClassCounterStall); got <= 0 {
		t.Errorf("def1 P0 counter-stall = %d, want > 0", got)
	}
	if got := def2.Metrics.ProcStall(0, metrics.ClassCounterStall); got != 0 {
		t.Errorf("def2 P0 counter-stall = %d, want 0", got)
	}
	if def2.ProcFinish[0] >= def1.ProcFinish[0] {
		t.Errorf("def2 P0 finish %d not earlier than def1 %d", def2.ProcFinish[0], def1.ProcFinish[0])
	}
	if len(def2.Metrics.ReserveOcc) == 0 {
		t.Error("def2 run set no reserve bits on the Figure-3 shape")
	}
}

// TestMetricsZeroOverhead checks the overhead-when-disabled argument's
// observable half: the same run with metrics on and off produces identical
// timing, traffic, and architectural results.
func TestMetricsZeroOverhead(t *testing.T) {
	for _, pol := range allPolicies {
		run := func(on bool) *Result {
			cfg := NewConfig(pol)
			cfg.NetJitter = 3
			cfg.Metrics = on
			res, err := Run(workload.Fig3(2, 25), cfg)
			if err != nil {
				t.Fatalf("%s metrics=%v: %v", pol, on, err)
			}
			return res
		}
		off, on := run(false), run(true)
		if off.Cycles != on.Cycles || off.Messages != on.Messages {
			t.Errorf("%s: metrics changed the run: cycles %d/%d messages %d/%d",
				pol, off.Cycles, on.Cycles, off.Messages, on.Messages)
		}
		for i := range off.ProcFinish {
			if off.ProcFinish[i] != on.ProcFinish[i] {
				t.Errorf("%s P%d: finish %d/%d", pol, i, off.ProcFinish[i], on.ProcFinish[i])
			}
		}
		if off.Metrics != nil {
			t.Errorf("%s: metrics-off run carries a report", pol)
		}
	}
}

// TestMetricsDeterministic reruns an identical faulty configuration — once
// per worker-pool width, since CLI and experiment callers run under the pool —
// and byte-compares the rendered tables and the timeline JSON.
func TestMetricsDeterministic(t *testing.T) {
	build := func() (string, string) {
		cfg := NewConfig(proc.PolicyWODef2)
		cfg.Metrics = true
		cfg.NetJitter = 4
		cfg.Faults = true
		cfg.FaultSeed = 7
		res, err := Run(workload.Fig3N(2, 3, 20), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.Metrics.WriteTimeline(&sb, "det"); err != nil {
			t.Fatal(err)
		}
		return metricsTablesString(res.Metrics), sb.String()
	}
	t1, j1 := build()
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		restore := par.SetWorkers(w)
		t2, j2 := build()
		restore()
		if t1 != t2 {
			t.Errorf("width %d: metrics tables differ between identical runs:\n%s\n----\n%s", w, t1, t2)
		}
		if j1 != j2 {
			t.Errorf("width %d: timeline JSON differs between identical runs", w)
		}
	}
	if err := metrics.ValidateTimeline([]byte(j1)); err != nil {
		t.Errorf("timeline invalid: %v", err)
	}
}

// TestMetricsUnderFaultsValidates exercises the recorder along the retry,
// NACK and reserve paths and checks the exported timeline stays well-formed.
func TestMetricsUnderFaultsValidates(t *testing.T) {
	cfg := NewConfig(proc.PolicyWODef2)
	cfg.Metrics = true
	cfg.Faults = true
	cfg.FaultSeed = 3
	cfg.FaultRates = faults.Rates{Drop: 0.2, Dup: 0.1, Delay: 0.1, Reorder: 0.05, MaxDelay: 12}
	res, err := Run(workload.Fig3N(2, 4, 15), cfg)
	if err != nil {
		t.Fatalf("faulty run failed outright: %v", err)
	}
	var sb strings.Builder
	if err := res.Metrics.WriteTimeline(&sb, "faulty"); err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateTimeline([]byte(sb.String())); err != nil {
		t.Errorf("timeline under faults invalid: %v", err)
	}
	// Fault recovery is where the two def2-specific buckets actually fire:
	// delayed acks hold the reserve window open long enough to park a
	// forwarded request, and dropped requests put processors into backoff.
	if got := res.Metrics.Stall(metrics.ClassReserveStall); got <= 0 {
		t.Errorf("reserve-stall = %d, want > 0 under this fault schedule", got)
	}
	if got := res.Metrics.Stall(metrics.ClassRetryBackoff); got <= 0 {
		t.Errorf("retry-backoff = %d, want > 0 under this fault schedule", got)
	}
}

// TestRetryStormNoPanic is the machine-level face of the backoff-overflow
// bugfix: a high drop rate with a deep retry budget drives attempt counts up;
// the run must end in a value error (or survive), never a scheduling panic.
func TestRetryStormNoPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("retry storm panicked: %v", r)
		}
	}()
	for seed := int64(1); seed <= 6; seed++ {
		cfg := NewConfig(proc.PolicyWODef2)
		cfg.Faults = true
		cfg.FaultSeed = seed
		cfg.FaultRates = faults.Rates{Drop: 0.9, MaxDelay: 8}
		cfg.RetryTimeout = 2
		cfg.RetryLimit = 100
		res, err := Run(workload.Fig3(1, 5), cfg)
		if err != nil {
			// Contained failures are acceptable under a 90% drop rate; a
			// panic or an unwrapped error is not.
			if !errors.Is(err, cache.ErrProtocol) && !strings.Contains(err.Error(), "machine:") {
				t.Errorf("seed %d: uncontained error: %v", seed, err)
			}
			continue
		}
		_ = res
	}
}

// TestWatchdogBackoffGrace is the watchdog false-positive regression. The
// scenario: an owner holds a line reserved while its own ordinary accesses
// retry through drop-induced exponential backoff; the directory transaction
// that routed a synchronization request to that owner stays open the whole
// time. With the old deadline (no backoff grace) the watchdog condemns the
// line even though the run is survivable; with the deadline extended by
// cache.BackoffBudget the same run completes. The seed sweep finds a
// provoking fault schedule, then the assertion pair pins both behaviours.
func TestWatchdogBackoffGrace(t *testing.T) {
	prog := workload.Fig3N(2, 6, 10)
	mkcfg := func(seed int64) Config {
		cfg := NewConfig(proc.PolicyWODef2)
		cfg.Faults = true
		cfg.FaultSeed = seed
		cfg.FaultRates = faults.Rates{Drop: 0.55, MaxDelay: 8}
		cfg.RetryTimeout = 40
		cfg.RetryLimit = 8
		// Deadline covering lost messages but not the backoff schedule —
		// the pre-fix effective deadline shape.
		cfg.WatchdogTimeout = 16 * cfg.RetryTimeout
		return cfg
	}
	provoking := int64(-1)
	for seed := int64(1); seed <= 80; seed++ {
		m := New(prog, mkcfg(seed))
		m.dir.SetWatchdogGrace(0) // old behaviour: deadline ignores backoff
		_, err := m.Run()
		if err == nil || !errors.Is(err, cache.ErrWatchdog) {
			continue
		}
		// Same schedule with the backoff-aware deadline: a false positive
		// must turn into a completed run.
		if res, err2 := Run(prog, mkcfg(seed)); err2 == nil && res != nil {
			provoking = seed
			break
		}
	}
	if provoking < 0 {
		t.Fatal("no fault schedule provoked a spurious ErrWatchdog in 80 seeds; regression scenario lost")
	}
	t.Logf("provoking fault seed: %d", provoking)
}
