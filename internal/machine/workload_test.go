package machine

import (
	"errors"
	"fmt"
	"testing"

	"weakorder/internal/mem"
	"weakorder/internal/proc"
	"weakorder/internal/program"
	"weakorder/internal/sim"
)

// frag compiles one code fragment (a single-thread program body).
func frag(t *testing.T, build func(b *program.Builder)) program.Code {
	t.Helper()
	b := program.NewBuilder("frag")
	b.Thread()
	build(b)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("frag: %v", err)
	}
	return p.Threads[0]
}

// skeleton builds the workload skeleton: n threads that halt immediately,
// with the shared addresses declared in Init so the directory owns them.
func skeleton(t *testing.T, n int, addrs ...mem.Addr) *program.Program {
	t.Helper()
	b := program.NewBuilder("skeleton")
	for _, a := range addrs {
		b.Init(a, 0)
	}
	for i := 0; i < n; i++ {
		b.Thread()
		b.Halt()
	}
	p, err := b.Build()
	if err != nil {
		t.Fatalf("skeleton: %v", err)
	}
	return p
}

// queueSource feeds each processor a fixed fragment queue.
type queueSource struct {
	jobs  [][]proc.Job
	pulls []int
	// failProc/failPull, when failPull > 0, inject an error on that
	// processor's Nth pull (1-based).
	failProc, failPull int
	failErr            error
}

func (s *queueSource) Next(p int) (proc.Job, bool, error) {
	s.pulls[p]++
	if s.failErr != nil && p == s.failProc && s.pulls[p] == s.failPull {
		return proc.Job{}, false, s.failErr
	}
	if len(s.jobs[p]) == 0 {
		return proc.Job{}, false, nil
	}
	j := s.jobs[p][0]
	s.jobs[p] = s.jobs[p][1:]
	return j, true, nil
}

// TestWorkloadFragmentsRunAsOneThread drives two processors through fragment
// streams and checks the single-logical-thread contract: registers persist
// across fragments, op indices stay contiguous (the recorded execution's
// Validate enforces per-processor index density), and arrival times hold
// back fragments scheduled in the future.
func TestWorkloadFragmentsRunAsOneThread(t *testing.T) {
	const a, b = mem.Addr(100), mem.Addr(101)
	src := &queueSource{
		pulls: make([]int, 2),
		jobs: [][]proc.Job{
			{
				// Fragment 1 leaves 7 in r2; fragment 2 stores r2, so the
				// final memory proves the register file crossed the boundary.
				{At: 0, Code: frag(t, func(bd *program.Builder) {
					bd.Mov(2, program.Imm(7))
					bd.Store(a, program.Imm(1))
				})},
				{At: 400, Code: frag(t, func(bd *program.Builder) {
					bd.Store(b, program.R(2))
				})},
			},
			{
				{At: 0, Code: frag(t, func(bd *program.Builder) {
					bd.Load(1, a)
				})},
				{At: 200, Code: frag(t, func(bd *program.Builder) {
					bd.Load(3, b)
				})},
			},
		},
	}
	cfg := NewConfig(proc.PolicyWODef2)
	cfg.RecordTrace = true
	cfg.RecordTimings = true
	cfg.Workload = src
	res, err := Run(skeleton(t, 2, a, b), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatalf("fragmented execution fails Validate (op indices not contiguous?): %v", err)
	}
	if res.FinalMem[b] != 7 {
		t.Fatalf("final mem[%d] = %d, want 7 (register file did not carry across fragments)", b, res.FinalMem[b])
	}
	if res.FinalRegs[0][2] != 7 {
		t.Fatalf("P0 r2 = %d, want 7", res.FinalRegs[0][2])
	}
	// P0's second fragment arrives at t=400; its store cannot issue earlier.
	for _, tm := range res.Timings {
		if tm.Proc == 0 && tm.OpIndex == 1 && tm.Issue < 400 {
			t.Fatalf("fragment arriving at 400 issued at %d", tm.Issue)
		}
	}
	if res.Cycles < 400 {
		t.Fatalf("run finished at %d, before the last arrival at 400", res.Cycles)
	}
	// Each processor pulls: its fragments plus the final exhausted pull.
	if src.pulls[0] != 3 || src.pulls[1] != 3 {
		t.Fatalf("pulls = %v, want [3 3]", src.pulls)
	}
}

// TestWorkloadBacklogRunsImmediately pins the open-loop backlog rule: an
// arrival time already in the past does not reschedule — the fragment starts
// in the same event, and the run still terminates.
func TestWorkloadBacklogRunsImmediately(t *testing.T) {
	const a = mem.Addr(100)
	var jobs []proc.Job
	// All ten arrivals at t=1; the processor falls behind on the first and
	// processes the rest as backlog.
	for i := 0; i < 10; i++ {
		v := mem.Value(i)
		jobs = append(jobs, proc.Job{At: 1, Code: frag(t, func(bd *program.Builder) {
			bd.Store(a, program.Imm(v))
		})})
	}
	src := &queueSource{pulls: make([]int, 1), jobs: [][]proc.Job{jobs}}
	cfg := NewConfig(proc.PolicyWODef2)
	cfg.Workload = src
	res, err := Run(skeleton(t, 1, a), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FinalMem[a] != 9 {
		t.Fatalf("final mem = %d, want 9 (all backlog fragments must run)", res.FinalMem[a])
	}
}

// TestWorkloadSourceErrorPropagates completes the ErrSchedulePast-style
// propagation sweep for the workload seam: a source failure surfaces from
// machine.Run with the processor identified and errors.Is still matching the
// source's sentinel through both the proc and machine wrapping layers.
func TestWorkloadSourceErrorPropagates(t *testing.T) {
	sentinel := errors.New("trace decode failed")
	src := &queueSource{
		pulls: make([]int, 2),
		jobs: [][]proc.Job{
			{{At: 0, Code: frag(t, func(bd *program.Builder) { bd.Store(100, program.Imm(1)) })}},
			{{At: 0, Code: frag(t, func(bd *program.Builder) { bd.Load(1, 100) })}},
		},
		failProc: 1, failPull: 2, failErr: sentinel,
	}
	cfg := NewConfig(proc.PolicyWODef2)
	cfg.Workload = src
	_, err := Run(skeleton(t, 2, 100), cfg)
	if err == nil {
		t.Fatal("Run succeeded despite a workload source failure")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run error %v does not unwrap to the source's sentinel", err)
	}
	want := fmt.Sprintf("P%d workload source", 1)
	if !contains(err.Error(), want) {
		t.Fatalf("Run error %q does not identify the processor (%q)", err, want)
	}
}

// TestWorkloadPastArrivalIsNotSchedulePast guards the backlog rule's
// interaction with the engine contract: a workload handing out At values far
// in the past must never turn into a sim.ErrSchedulePast failure — the
// processor absorbs backlog by running immediately instead of scheduling
// backwards.
func TestWorkloadPastArrivalIsNotSchedulePast(t *testing.T) {
	src := &queueSource{
		pulls: make([]int, 1),
		jobs: [][]proc.Job{{
			{At: 0, Code: frag(t, func(bd *program.Builder) { bd.Nop(500).Store(100, program.Imm(1)) })},
			// By the time the first fragment finishes, t >= 500; this
			// arrival is long past.
			{At: 3, Code: frag(t, func(bd *program.Builder) { bd.Store(100, program.Imm(2)) })},
		}},
	}
	cfg := NewConfig(proc.PolicyWODef2)
	cfg.Workload = src
	res, err := Run(skeleton(t, 1, 100), cfg)
	if err != nil {
		if errors.Is(err, sim.ErrSchedulePast) {
			t.Fatalf("backlogged arrival was scheduled into the past: %v", err)
		}
		t.Fatalf("Run: %v", err)
	}
	if res.FinalMem[100] != 2 {
		t.Fatalf("final mem = %d, want 2", res.FinalMem[100])
	}
}

// contains avoids importing strings for one call.
func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
