package machine

import (
	"testing"

	"weakorder/internal/core"
	"weakorder/internal/mem"
	"weakorder/internal/proc"
	"weakorder/internal/program"
	"weakorder/internal/workload"
)

var allPolicies = []proc.Policy{proc.PolicySC, proc.PolicyWODef1, proc.PolicyWODef2, proc.PolicyWODef2DRF1}

// runAll runs the program under every policy with tracing on and returns the
// results keyed by policy.
func runAll(t *testing.T, p *program.Program, tweak func(*Config)) map[proc.Policy]*Result {
	t.Helper()
	out := make(map[proc.Policy]*Result)
	for _, pol := range allPolicies {
		cfg := NewConfig(pol)
		cfg.RecordTrace = true
		if tweak != nil {
			tweak(&cfg)
		}
		r, err := Run(p, cfg)
		if err != nil {
			t.Fatalf("%s on %s: %v", p.Name, pol, err)
		}
		out[pol] = r
	}
	return out
}

// checkSCTrace asserts the recorded execution is sequentially consistent.
func checkSCTrace(t *testing.T, name string, p *program.Program, r *Result) {
	t.Helper()
	if r.Trace == nil {
		t.Fatalf("%s: no trace recorded", name)
	}
	init := make(map[mem.Addr]mem.Value)
	for _, a := range p.Addrs() {
		init[a] = 0
	}
	for a, v := range p.Init {
		init[a] = v
	}
	w, err := core.SCCheck(r.Trace, init)
	if err != nil {
		t.Fatalf("%s: SCCheck: %v", name, err)
	}
	if !w.SC {
		t.Errorf("%s: timed trace is not sequentially consistent:\n%s", name, r.Trace)
	}
}

func TestFig3AllPoliciesCorrect(t *testing.T) {
	p := workload.Fig3(2, 50)
	for pol, r := range runAll(t, p, nil) {
		// P1 (thread 1) must read the payload 42 into r1 on every weakly
		// ordered machine: the program is DRF0.
		if got := r.FinalRegs[1][1]; got != 42 {
			t.Errorf("%s: consumer read x=%d, want 42", pol, got)
		}
		checkSCTrace(t, pol.String(), p, r)
	}
}

// TestFig3Def2ReleasesEarlier reproduces the Figure 3 claim: under
// Definition 1 the producer stalls at the Unset until its write is globally
// performed, while the Section-5 implementation lets it continue; with work
// after the release, P0 finishes earlier under Def2 than under Def1.
func TestFig3Def2ReleasesEarlier(t *testing.T) {
	p := workload.Fig3(3, 0)
	res := runAll(t, p, func(c *Config) { c.NetLatency = 30 })
	def1P0 := res[proc.PolicyWODef1].ProcFinish[0]
	def2P0 := res[proc.PolicyWODef2].ProcFinish[0]
	if def2P0 >= def1P0 {
		t.Errorf("P0 finish: def2=%d should be < def1=%d", def2P0, def1P0)
	}
	// The paper: "P1's TestAndSet, however, will still be blocked until
	// P0's write is globally performed" — the consumer should not beat the
	// write's performance under either definition; its finish times are of
	// the same order (within a small factor).
	def1P1 := res[proc.PolicyWODef1].ProcFinish[1]
	def2P1 := res[proc.PolicyWODef2].ProcFinish[1]
	if def2P1*4 < def1P1 || def1P1*4 < def2P1 {
		t.Errorf("P1 finish should be comparable: def1=%d def2=%d", def1P1, def2P1)
	}
	// And the reserve-bit machinery must actually have engaged somewhere in
	// the def2 run.
	var reserves int64
	for _, cs := range res[proc.PolicyWODef2].CacheStats {
		reserves += cs.Get("reserves_set")
	}
	if reserves == 0 {
		t.Error("def2 run never set a reserve bit; the scenario is not exercising Section 5.3")
	}
}

func TestProducerConsumerAllPolicies(t *testing.T) {
	const items = 6
	p := workload.ProducerConsumer(items, 5)
	want := workload.ProducerConsumerChecksum(items)
	for pol, r := range runAll(t, p, nil) {
		if got := r.FinalMem[workload.XAddr()]; got != want {
			t.Errorf("%s: checksum = %d, want %d", pol, got, want)
		}
		checkSCTrace(t, pol.String(), p, r)
	}
}

func TestLockAllPolicies(t *testing.T) {
	for _, spin := range []workload.SpinKind{workload.SpinTAS, workload.SpinSync} {
		p := workload.Lock(3, 3, 4, 4, spin)
		want := workload.LockTotal(3, 3)
		for pol, r := range runAll(t, p, nil) {
			if got := r.FinalMem[workload.CtrAddr()]; got != want {
				t.Errorf("%s/%s: counter = %d, want %d", pol, spin, got, want)
			}
		}
	}
}

func TestBarrierAllPolicies(t *testing.T) {
	const nproc, phases = 4, 3
	p := workload.Barrier(nproc, phases, 10, workload.SpinSync)
	for pol, r := range runAll(t, p, nil) {
		if got := r.FinalMem[workload.SenseAddr()]; got != mem.Value(phases) {
			t.Errorf("%s: final sense = %d, want %d", pol, got, phases)
		}
	}
}

// TestBarrierDataSpinOnDef1 runs the racy data-read spin from the end of
// Section 6: Definition-1 hardware gives the intuitive answer even though the
// program has a race (the sync release waits for the payload writes).
func TestBarrierDataSpinOnDef1(t *testing.T) {
	p := workload.Barrier(3, 2, 10, workload.SpinData)
	cfg := NewConfig(proc.PolicyWODef1)
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.FinalMem[workload.SenseAddr()]; got != 2 {
		t.Errorf("final sense = %d, want 2", got)
	}
}

// TestArraySumAllPolicies reduces a 24-element vector on 4 processors with
// register-indexed loads and a lock-protected fold; the result must be exact
// on every policy (and the trace SC).
func TestArraySumAllPolicies(t *testing.T) {
	const nproc, n = 4, 24
	p := workload.ArraySum(nproc, n)
	want := workload.ArraySumTotal(n)
	for pol, r := range runAll(t, p, nil) {
		if got := r.FinalMem[workload.CtrAddr()]; got != want {
			t.Errorf("%s: sum = %d, want %d", pol, got, want)
		}
	}
	// One SC-trace validation (the trace is large; one policy suffices).
	cfg := NewConfig(proc.PolicyWODef2)
	cfg.RecordTrace = true
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSCTrace(t, "arraysum/def2", p, r)
}

// TestDeterminism: identical configs produce identical cycle counts and
// traffic.
func TestDeterminism(t *testing.T) {
	p := workload.Lock(3, 4, 6, 6, workload.SpinSync)
	cfg := NewConfig(proc.PolicyWODef2)
	cfg.NetJitter = 7
	cfg.Seed = 99
	a, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Messages != b.Messages {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", a.Cycles, a.Messages, b.Cycles, b.Messages)
	}
	cfg.Seed = 100
	c, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may differ; just must complete
}

// TestConfigDefaults: zero values fill in sane defaults.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{Policy: proc.PolicySC}
	cfg.defaults()
	if cfg.HitLatency < 1 || cfg.MemLatency < 1 || cfg.NetLatency < 1 || cfg.BusCycle < 1 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.MaxTime == 0 || cfg.MaxEvents == 0 {
		t.Error("budgets not defaulted")
	}
}

// TestFinalMemIncludesOwnerCopy: a dirty exclusive line's value must come
// from the owning cache, not the stale directory copy.
func TestFinalMemIncludesOwnerCopy(t *testing.T) {
	p := program.MustParse(`
name: dirty
init: x=0
thread:
    st x, 99
`).Program
	r, err := Run(p, NewConfig(proc.PolicyWODef2))
	if err != nil {
		t.Fatal(err)
	}
	var addr = p.Addrs()[0]
	if r.FinalMem[addr] != 99 {
		t.Errorf("final x = %d, want the owner's dirty value 99", r.FinalMem[addr])
	}
}

// TestTotalStall sums a counter across processors.
func TestTotalStall(t *testing.T) {
	p := workload.ProducerConsumer(3, 2)
	r, err := Run(p, NewConfig(proc.PolicySC))
	if err != nil {
		t.Fatal(err)
	}
	var manual int64
	for _, ps := range r.ProcStats {
		manual += ps.Get("read_stall_cycles")
	}
	if got := r.TotalStall("read_stall_cycles"); got != manual || got == 0 {
		t.Errorf("TotalStall = %d, manual = %d", got, manual)
	}
}

// TestBudgetExhaustionSurfacesAsError: an impossible completion (consumer
// waiting for a flag nobody sets) must end with ErrBudget, not hang.
func TestBudgetExhaustionSurfacesAsError(t *testing.T) {
	p := program.MustParse(`
name: stuck
init: f=0
thread:
wait:
    sync.ld r0, f
    beq r0, 0, wait
`).Program
	cfg := NewConfig(proc.PolicyWODef2)
	cfg.MaxTime = 5000
	if _, err := Run(p, cfg); err == nil {
		t.Fatal("expected a budget error for the stuck spinner")
	}
}

// TestBusFabric runs a workload over the serialized bus.
func TestBusFabric(t *testing.T) {
	p := workload.ProducerConsumer(4, 3)
	cfg := NewConfig(proc.PolicySC)
	cfg.Fabric = FabricBus
	cfg.RecordTrace = true
	r, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.FinalMem[workload.XAddr()]; got != workload.ProducerConsumerChecksum(4) {
		t.Errorf("bus checksum = %d", got)
	}
	checkSCTrace(t, "bus/SC", p, r)
}

// TestJitteredNetworkStillSC: with non-FIFO jittered delivery, DRF0 programs
// must still produce SC traces on the weakly ordered machines (the protocol's
// race guards absorb reordering).
func TestJitteredNetworkStillSC(t *testing.T) {
	p := workload.ProducerConsumer(5, 2)
	for _, fifo := range []bool{true, false} {
		for _, pol := range allPolicies {
			cfg := NewConfig(pol)
			cfg.NetJitter = 9
			cfg.Seed = 3
			cfg.FIFO = fifo
			cfg.RecordTrace = true
			r, err := Run(p, cfg)
			if err != nil {
				t.Fatalf("fifo=%v %s: %v", fifo, pol, err)
			}
			checkSCTrace(t, pol.String(), p, r)
		}
	}
}

// TestSCPolicySlowestDef2Fastest checks the performance ordering the paper
// predicts on a communication-heavy DRF0 workload: SC pays the most stalls;
// Def2 never pays the issuer-side sync stall Def1 pays.
func TestRelativePerformance(t *testing.T) {
	p := workload.ProducerConsumer(8, 20)
	res := runAll(t, p, nil)
	sc := res[proc.PolicySC].Cycles
	d1 := res[proc.PolicyWODef1].Cycles
	d2 := res[proc.PolicyWODef2].Cycles
	if !(sc >= d1) {
		t.Errorf("SC (%d) should be no faster than Def1 (%d)", sc, d1)
	}
	if !(d1 >= d2) {
		t.Errorf("Def1 (%d) should be no faster than Def2 (%d)", d1, d2)
	}
}
