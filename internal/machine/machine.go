// Package machine composes the timed system: processors (internal/proc) with
// private caches (internal/cache), a directory/memory controller, and an
// interconnect fabric, all driven by the discrete-event engine. It is the
// harness behind Figure 3 and the quantitative Definition-1-vs-Definition-2
// experiments.
package machine

import (
	"errors"
	"fmt"
	"math/rand"

	"weakorder/internal/cache"
	"weakorder/internal/conditions"
	"weakorder/internal/faults"
	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/proc"
	"weakorder/internal/program"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
)

// ProtocolKind selects the coherence action for data writes.
type ProtocolKind uint8

const (
	// ProtocolInvalidate is the Section-5.2 write-back invalidation
	// protocol (the default).
	ProtocolInvalidate ProtocolKind = iota
	// ProtocolUpdate multicasts data-write values to sharers instead of
	// invalidating them (a Rudolph/Segall-style update protocol; the paper
	// cites such designs among SC-preserving bus protocols).
	// Synchronization operations keep the exclusive/reserve path.
	ProtocolUpdate
)

// String implements fmt.Stringer.
func (p ProtocolKind) String() string {
	if p == ProtocolUpdate {
		return "update"
	}
	return "invalidate"
}

// FabricKind selects the interconnect style.
type FabricKind uint8

const (
	// FabricNetwork is a general interconnection network (per-message
	// latency, optional jitter).
	FabricNetwork FabricKind = iota
	// FabricBus is a fully serialized shared bus.
	FabricBus
)

// Config parameterizes one timed machine.
type Config struct {
	Policy   proc.Policy
	Fabric   FabricKind
	Protocol ProtocolKind
	// HitLatency is the cache-hit cost (default 1).
	HitLatency sim.Time
	// MemLatency is the directory processing cost per request (default 4).
	MemLatency sim.Time
	// NetLatency is the per-message base cost on the network fabric
	// (default 10); BusCycle the per-message bus occupancy (default 4).
	NetLatency sim.Time
	BusCycle   sim.Time
	// NetJitter adds uniform 0..NetJitter-1 extra cycles per message.
	NetJitter int
	// FIFO preserves per-link delivery order on the network (default
	// true via NewConfig; protocol correctness under non-FIFO delivery is
	// handled but reorderings make runs harder to interpret).
	FIFO bool
	// Seed drives the jitter RNG; runs are deterministic per seed.
	Seed int64
	// RecordTrace collects every completed access for post-run
	// SC/race-detector validation. Costs memory on long runs.
	RecordTrace bool
	// RecordTimings collects every access's (issue, commit, perform)
	// lifecycle for checking the Section-5.1 conditions
	// (internal/conditions).
	RecordTimings bool
	// MaxTime / MaxEvents bound the simulation (0 = generous defaults).
	MaxTime   sim.Time
	MaxEvents uint64
	// Faults wraps the fabric in a deterministic fault injector
	// (internal/faults) and switches the protocol into its fault-tolerant
	// mode: lenient message handling, bounded request retry with
	// exponential backoff, a bounded directory queue with NACKs, and the
	// directory transaction watchdog. Off by default; a fault-free run's
	// event stream is unchanged.
	Faults bool
	// FaultSeed seeds the injector's RNG (independent of Seed, so the same
	// workload can be swept across fault schedules).
	FaultSeed int64
	// FaultRates configures the injector; the zero value means
	// faults.DefaultRates().
	FaultRates faults.Rates
	// RetryTimeout/RetryLimit override the cache retransmission parameters
	// when Faults is on (0 = derived defaults).
	RetryTimeout sim.Time
	RetryLimit   int
	// QueueLimit bounds the directory's per-line request queue when Faults
	// is on (0 = derived default); overflow is NACKed.
	QueueLimit int
	// WatchdogTimeout overrides the directory watchdog's transaction
	// deadline when Faults is on (0 = derived default). On top of it the
	// machine always grants the watchdog a grace of cache.BackoffBudget —
	// the worst-case time a requester can legally sleep in retry backoff —
	// so the deadline only has to cover genuinely lost transactions.
	WatchdogTimeout sim.Time
	// Metrics enables the cycle-level observability layer
	// (internal/metrics): per-processor stall attribution, per-class fabric
	// traffic, reserve-bit and directory occupancy, and the exportable
	// timeline. Off by default; a run with metrics off allocates no recorder
	// and dispatches an identical event stream.
	Metrics bool
	// DirShards spreads the directory over this many address-interleaved
	// home nodes (fabric nodes n..n+DirShards-1, mapping cache.ShardOf).
	// 0/1 keeps the single home node. A fault-free run's event stream —
	// and with it every outcome, stat, and timeline — is identical at every
	// shard count; sharding only relieves home-node serialization once
	// topologies or future per-node service limits make it matter, and keeps
	// big-P directory state partitioned.
	DirShards int
	// Topology shapes the network fabric's per-hop latency (flat,
	// dance-hall, or two-level clusters; see interconnect.Topology). Flat is
	// the default and is byte-identical to no topology at all. Ignored on
	// the bus fabric, which is a single shared medium by definition.
	Topology interconnect.TopologyKind
	// RemoteLatency is the extra cost per top-level crossing for non-flat
	// topologies (default: NetLatency).
	RemoteLatency sim.Time
	// ClusterSize is processors per cluster for the clusters topology
	// (default 8).
	ClusterSize int
	// HeapEngine runs the simulation on the legacy binary-heap scheduler
	// instead of the calendar queue. Event order is identical; this exists
	// as the throughput-comparison baseline.
	HeapEngine bool
	// Workload attaches an open-loop fragment source to every processor
	// (internal/workload/openloop builds them from a spec or a recorded
	// trace). The program passed to New is then a skeleton: it sizes the
	// thread population and declares the address pools in Init; each thread
	// starts pulling fragments when its skeleton code halts. Nil runs the
	// program as-is.
	Workload proc.Workload
}

// NewConfig returns a Config with the documented defaults and the given
// policy.
func NewConfig(p proc.Policy) Config {
	return Config{
		Policy:     p,
		Fabric:     FabricNetwork,
		HitLatency: 1,
		MemLatency: 4,
		NetLatency: 10,
		BusCycle:   4,
		FIFO:       true,
		Seed:       1,
	}
}

func (c *Config) defaults() {
	if c.HitLatency < 1 {
		c.HitLatency = 1
	}
	if c.MemLatency < 1 {
		c.MemLatency = 1
	}
	if c.NetLatency < 1 {
		c.NetLatency = 10
	}
	if c.BusCycle < 1 {
		c.BusCycle = 4
	}
	if c.MaxTime == 0 {
		c.MaxTime = 50_000_000
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 200_000_000
	}
	if c.DirShards < 1 {
		c.DirShards = 1
	}
	if c.Topology != interconnect.TopoFlat && c.RemoteLatency < 1 {
		c.RemoteLatency = c.NetLatency
	}
	if c.ClusterSize < 1 {
		c.ClusterSize = 8
	}
	if c.Faults {
		if c.FaultRates.MaxDelay < 1 {
			c.FaultRates.MaxDelay = faults.DefaultRates().MaxDelay
		}
		if c.RetryTimeout < 1 {
			// Comfortably above one request/response round trip plus the
			// worst injected delay, so fault-free transactions never retry.
			c.RetryTimeout = 8 * (c.NetLatency + c.MemLatency + c.FaultRates.MaxDelay)
		}
		if c.RetryLimit < 1 {
			c.RetryLimit = 8
		}
		if c.QueueLimit < 1 {
			c.QueueLimit = 8
		}
		if c.WatchdogTimeout < 1 {
			// Lost-message deadline: a few full round trips. The watchdog's
			// effective deadline adds cache.BackoffBudget (set in New) for
			// time legally spent sleeping in retry backoff, so this no longer
			// needs to over-approximate the exponential budget itself — the
			// old shifted derivation overflowed for large RetryLimit exactly
			// like the unclamped cache backoff did.
			c.WatchdogTimeout = 16 * c.RetryTimeout
		}
	}
}

// Result reports one run.
type Result struct {
	// Cycles is the completion time of the last processor.
	Cycles sim.Time
	// ProcFinish is each processor's completion time.
	ProcFinish []sim.Time
	// ProcStats holds each processor's counters (stall cycles by class).
	ProcStats []*stats.Counters
	// CacheStats holds each cache's counters (hits, misses, reserves...).
	CacheStats []*stats.Counters
	// DirStats is the directory's counters, aggregated over shards when the
	// directory is sharded.
	DirStats *stats.Counters
	// DirShardStats is each directory shard's own counter bag (one entry for
	// the unsharded directory).
	DirShardStats []*stats.Counters
	// DirOccupancy is each shard's request-occupancy histogram: arriving
	// requests bucketed by how many transactions for the same line were
	// already open or queued.
	DirOccupancy [][]uint64
	// Messages is the total fabric traffic.
	Messages uint64
	// Trace is the recorded execution when Config.RecordTrace was set.
	Trace *mem.Execution
	// Timings is the access lifecycle log when Config.RecordTimings was
	// set, ready for conditions.Check / conditions.CheckRefined.
	Timings []conditions.AccessTiming
	// FinalMem is the coherent final memory state (owner copies folded in).
	FinalMem map[mem.Addr]mem.Value
	// FinalRegs is each thread's final register file.
	FinalRegs []([program.NumRegs]mem.Value)
	// Injections is the fault-injection log when Config.Faults was set
	// (nil otherwise); InjectionLog is its canonical rendering, compared
	// byte for byte by the chaos harness's replay check.
	Injections   []faults.Injection
	InjectionLog string
	// Metrics is the finalized observability report when Config.Metrics was
	// set (nil otherwise).
	Metrics *metrics.Report
}

// TotalStall sums a stall counter across processors.
func (r *Result) TotalStall(name string) int64 {
	var n int64
	for _, s := range r.ProcStats {
		n += s.Get(name)
	}
	return n
}

// tracer implements proc.Tracer over a shared execution.
type tracer struct {
	exec *mem.Execution
}

func (t *tracer) Record(a mem.Access, opIndex int) {
	t.exec.AppendAt(a, opIndex)
}

// timingSink implements proc.TimingSink over a shared log.
type timingSink struct {
	log []conditions.AccessTiming
}

func (s *timingSink) RecordTiming(t conditions.AccessTiming) { s.log = append(s.log, t) }

// Machine is one composed system ready to run.
type Machine struct {
	cfg    Config
	engine *sim.Engine
	procs  []*proc.Processor
	caches []*cache.Cache
	dir    cache.Directory
	fabric interconnect.Fabric
	inj    *faults.Injector
	rec    *metrics.Recorder
	trace  *mem.Execution
	times  *timingSink
	prog   *program.Program
}

// New composes a machine for the program.
func New(p *program.Program, cfg Config) *Machine {
	cfg.defaults()
	engine := sim.NewEngine(cfg.MaxTime, cfg.MaxEvents)
	if cfg.HeapEngine {
		engine = sim.NewHeapEngine(cfg.MaxTime, cfg.MaxEvents)
	}
	n := p.NumThreads()
	var fabric interconnect.Fabric
	switch cfg.Fabric {
	case FabricBus:
		fabric = interconnect.NewBus(engine, cfg.BusCycle)
	default:
		rng := rand.New(rand.NewSource(cfg.Seed))
		net := interconnect.NewNetwork(engine, cfg.NetLatency, cfg.NetJitter, rng, cfg.FIFO)
		if cfg.Topology != interconnect.TopoFlat {
			// The topology shapes the base fabric, *under* the metrics tap
			// and the fault injector composed below, so both see real routes.
			net.SetTopology(interconnect.NewTopology(cfg.Topology, n, cfg.NetLatency, cfg.RemoteLatency, cfg.ClusterSize))
		}
		fabric = net
	}
	var rec *metrics.Recorder
	if cfg.Metrics {
		// The tap sits under the fault injector: it observes the traffic
		// that actually enters the network (drops invisible, duplicates
		// counted twice — both are the real fabric load).
		rec = metrics.NewRecorder(engine, n)
		fabric = metrics.NewFabricTap(rec, fabric, classifyMsg)
	}
	var inj *faults.Injector
	if cfg.Faults {
		rates := cfg.FaultRates
		if rates.Zero() {
			rates = faults.DefaultRates()
		}
		inj = faults.NewInjector(engine, fabric, cfg.FaultSeed, rates)
		fabric = inj
		if cfg.QueueLimit < n {
			// Every processor must fit in the queue or contention alone
			// (no faults) could NACK a request into retry exhaustion.
			cfg.QueueLimit = n
		}
	}
	dirID := interconnect.NodeID(n)
	init := make(map[mem.Addr]mem.Value)
	for _, a := range p.Addrs() {
		init[a] = 0
	}
	for a, v := range p.Init {
		init[a] = v
	}
	var dir cache.Directory
	if cfg.DirShards > 1 {
		dir = cache.NewShardedDirectory(dirID, cfg.DirShards, engine, fabric, cfg.MemLatency, init)
	} else {
		dir = cache.NewDirectory(dirID, engine, fabric, cfg.MemLatency, init)
	}
	dir.SetMetrics(rec)
	if cfg.Faults {
		dir.SetLenient(true)
		dir.SetQueueLimit(cfg.QueueLimit)
		dir.EnableWatchdog(cfg.RetryTimeout, cfg.WatchdogTimeout)
		// A busy line is not lost while its requester (or the owner it was
		// routed to) is still inside the bounded retransmission schedule.
		dir.SetWatchdogGrace(cache.BackoffBudget(cfg.RetryTimeout, cfg.RetryLimit))
	}
	m := &Machine{cfg: cfg, engine: engine, dir: dir, fabric: fabric, inj: inj, rec: rec, prog: p}
	var tr *tracer
	if cfg.RecordTrace {
		m.trace = mem.NewExecution(n)
		tr = &tracer{exec: m.trace}
	}
	if cfg.RecordTimings {
		m.times = &timingSink{}
	}
	for i := 0; i < n; i++ {
		c := cache.New(interconnect.NodeID(i), engine, fabric, dirID, cfg.HitLatency)
		c.SetDirShards(cfg.DirShards)
		c.SetMetrics(rec)
		if cfg.Faults {
			c.SetLenient(true)
			c.SetRetry(cfg.RetryTimeout, cfg.RetryLimit)
		}
		m.caches = append(m.caches, c)
		var t proc.Tracer
		if tr != nil {
			t = tr
		}
		pr := proc.New(i, engine, c, p.Threads[i], cfg.Policy, t)
		if m.times != nil {
			pr.SetTimingSink(m.times)
		}
		pr.SetUpdateProtocol(cfg.Protocol == ProtocolUpdate)
		pr.SetMetrics(rec)
		if cfg.Workload != nil {
			pr.SetWorkload(cfg.Workload)
		}
		m.procs = append(m.procs, pr)
	}
	return m
}

// ProtocolFailure wraps a coherence ProtocolError that aborted a run with
// the reproduction context: the failure cycle, the recorded trace so far
// (when Config.RecordTrace was set), and the fault-injection log (when
// Config.Faults was set). It unwraps to the underlying error, so
// errors.Is(err, cache.ErrProtocol) still matches.
type ProtocolFailure struct {
	Err          error
	Cycle        sim.Time
	TraceDump    string
	InjectionLog string
}

// Error implements error: the underlying violation plus the dumps.
func (f *ProtocolFailure) Error() string {
	s := fmt.Sprintf("protocol failure @%d: %v", f.Cycle, f.Err)
	if f.TraceDump != "" {
		s += "\ntrace so far:\n" + f.TraceDump
	}
	if f.InjectionLog != "" {
		s += "injected faults:\n" + f.InjectionLog
	}
	return s
}

// Unwrap implements errors.Is/As chaining.
func (f *ProtocolFailure) Unwrap() error { return f.Err }

// traceDump renders the tail of the recorded execution for failure reports.
func (m *Machine) traceDump() string {
	if m.trace == nil {
		return ""
	}
	const maxDump = 4096
	s := m.trace.String()
	if len(s) > maxDump {
		s = "...\n" + s[len(s)-maxDump:]
	}
	return s
}

// Run executes the program to completion (all threads halted, all
// transactions drained) and returns the result.
func (m *Machine) Run() (*Result, error) {
	remaining := len(m.procs)
	for _, pr := range m.procs {
		pr.Start(func() { remaining-- })
	}
	// Run the event queue dry: processors halt along the way, and trailing
	// coherence traffic (outstanding write performance) still completes.
	if err := m.engine.Run(nil); err != nil {
		if errors.Is(err, cache.ErrProtocol) {
			f := &ProtocolFailure{Err: err, Cycle: m.engine.Now(), TraceDump: m.traceDump()}
			if m.inj != nil {
				f.InjectionLog = m.inj.LogString()
			}
			return nil, f
		}
		return nil, fmt.Errorf("machine: %w (policy %s)", err, m.cfg.Policy)
	}
	if remaining != 0 {
		return nil, fmt.Errorf("machine: %d processor(s) never finished (deadlock or livelock), policy %s", remaining, m.cfg.Policy)
	}
	res := &Result{
		DirStats:      m.dir.Counters(),
		DirShardStats: m.dir.ShardCounters(),
		DirOccupancy:  m.dir.Occupancy(),
		Messages:      m.fabric.Messages(),
		Trace:         m.trace,
		FinalMem:      make(map[mem.Addr]mem.Value),
	}
	if m.times != nil {
		res.Timings = m.times.log
	}
	if m.inj != nil {
		res.Injections = m.inj.Log()
		res.InjectionLog = m.inj.LogString()
	}
	var last sim.Time
	for i, pr := range m.procs {
		ft := pr.FinishTime()
		if ft > last {
			last = ft
		}
		res.ProcFinish = append(res.ProcFinish, ft)
		res.ProcStats = append(res.ProcStats, pr.Stats)
		res.CacheStats = append(res.CacheStats, m.caches[i].Stats)
	}
	res.Cycles = last
	if m.rec != nil {
		res.Metrics = m.rec.Report(res.ProcFinish)
	}
	// Collect the coherent final memory: owner caches override the
	// directory copy.
	for _, a := range m.prog.Addrs() {
		v, _ := m.dir.MemValue(a)
		if o := m.dir.Owner(a); o >= 0 && int(o) < len(m.caches) {
			if cv, st := m.caches[o].Snoop(a); st == cache.Exclusive {
				v = cv
			}
		}
		res.FinalMem[a] = v
	}
	res.FinalRegs = m.finalRegs()
	return res, nil
}

// finalRegs extracts each processor thread's registers. The proc package does
// not expose the thread directly; registers are reconstructed from the trace
// when recorded, otherwise omitted. To keep the common path simple the
// processor exposes them via Registers.
func (m *Machine) finalRegs() []([program.NumRegs]mem.Value) {
	out := make([]([program.NumRegs]mem.Value), len(m.procs))
	for i, pr := range m.procs {
		out[i] = pr.Registers()
	}
	return out
}

// classifyMsg names protocol messages for the metrics fabric tap (injected
// here so internal/metrics never needs to import internal/cache).
func classifyMsg(m interconnect.Message) metrics.MsgInfo {
	msg, ok := m.(cache.Msg)
	if !ok {
		return metrics.MsgInfo{}
	}
	return metrics.MsgInfo{Class: msg.Kind.String(), Addr: msg.Addr, OK: true}
}

// Run is the one-call convenience: compose and run.
func Run(p *program.Program, cfg Config) (*Result, error) {
	return New(p, cfg).Run()
}
