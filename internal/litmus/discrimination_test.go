package litmus

import "testing"

// TestNewMachinesDiscriminated: the relaxation-ladder machines are pairwise
// separated — from SC and from each other — by the corpus. For each pair the
// test finds an entry whose annotations differ and then actually runs it on
// both machines, so the separation claim rests on observed behavior, not just
// on the Expect tables.
func TestNewMachinesDiscriminated(t *testing.T) {
	pairs := [][2]string{
		{"SC", "tso"}, {"SC", "pso"}, {"SC", "rmo"},
		{"tso", "pso"}, {"tso", "rmo"}, {"pso", "rmo"},
	}
	corpus := Corpus()
	for _, pair := range pairs {
		var witness *Test
		for _, tt := range corpus {
			ea, oka := tt.Expect[pair[0]]
			eb, okb := tt.Expect[pair[1]]
			if oka && okb && ea != eb {
				witness = tt
				break
			}
		}
		if witness == nil {
			t.Errorf("no corpus entry separates %s from %s", pair[0], pair[1])
			continue
		}
		var obs [2]bool
		for i, name := range pair {
			f, ok := FactoryByName(name)
			if !ok {
				t.Fatalf("unknown machine %s", name)
			}
			o, err := Run(witness, f, nil)
			if err != nil {
				t.Fatalf("%s on %s: %v", witness.Name, name, err)
			}
			if !o.OK() {
				t.Errorf("%s on %s: observed %v, annotated %v", witness.Name, name, o.Observed, o.Expected)
			}
			obs[i] = o.Observed
		}
		if obs[0] == obs[1] {
			t.Errorf("%s does not separate %s from %s after all (both observed %v)",
				witness.Name, pair[0], pair[1], obs[0])
		} else {
			t.Logf("%s separates %s (%v) from %s (%v)", witness.Name, pair[0], obs[0], pair[1], obs[1])
		}
	}
}

// TestLadderMachinesAreWeaklyOrdered: the new machines join the
// weakly-ordered set (sync is a full fence for them) and FactoriesByNames
// resolves their bare names.
func TestLadderMachinesAreWeaklyOrdered(t *testing.T) {
	weak := map[string]bool{}
	for _, f := range WeaklyOrderedFactories() {
		weak[f.Name] = true
	}
	for _, name := range []string{"tso", "pso", "rmo"} {
		if !weak[name] {
			t.Errorf("%s missing from WeaklyOrderedFactories", name)
		}
	}
	fs, err := FactoriesByNames("tso, pso,rmo,tso")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("FactoriesByNames dedup: got %d factories, want 3", len(fs))
	}
	for i, want := range []string{"tso", "pso", "rmo"} {
		if fs[i].Name != want {
			t.Errorf("factory %d = %s, want %s", i, fs[i].Name, want)
		}
	}
	if _, ok := FactoryByName("rmo"); !ok {
		t.Error("FactoryByName(rmo) failed")
	}
}
