// Package litmus defines the litmus-test corpus used to reproduce Figure 1
// and to validate every operational machine, plus a runner that explores a
// test on a machine and reports whether the outcome of interest is reachable.
package litmus

import (
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/model"
	"weakorder/internal/par"
	"weakorder/internal/program"
)

// Factory names a machine constructor so tests and tables can iterate over
// hardware models uniformly.
type Factory struct {
	Name string
	New  func(*program.Program) model.Machine
}

// Factories returns the standard set of operational machines, in report
// order: the idealized reference first, then the Figure-1 relaxed machines,
// then the weakly ordered ones.
func Factories() []Factory {
	return []Factory{
		{"SC", func(p *program.Program) model.Machine { return model.NewSC(p) }},
		{"bus+writebuffer", func(p *program.Program) model.Machine { return model.NewWriteBuffer(p, "") }},
		{"bus+cache+writebuffer", func(p *program.Program) model.Machine { return model.NewWriteBuffer(p, "bus+cache+writebuffer") }},
		{"network-nocache", func(p *program.Program) model.Machine { return model.NewNetwork(p) }},
		{"network+cache-nonatomic", func(p *program.Program) model.Machine { return model.NewNonAtomic(p) }},
		{"WO-def1", func(p *program.Program) model.Machine { return model.NewWODef1(p) }},
		{"WO-def2", func(p *program.Program) model.Machine { return model.NewWODef2(p) }},
		{"WO-def2-drf1", func(p *program.Program) model.Machine { return model.NewWODef2DRF1(p) }},
		{"RP3-fence", func(p *program.Program) model.Machine { return model.NewFence(p) }},
		{"tso", func(p *program.Program) model.Machine { return model.NewTSO(p) }},
		{"pso", func(p *program.Program) model.Machine { return model.NewPSO(p) }},
		{"rmo", func(p *program.Program) model.Machine { return model.NewRMO(p) }},
	}
}

// FactoryByName returns the named factory, searching the standard set and the
// deliberately broken fixtures.
func FactoryByName(name string) (Factory, bool) {
	for _, f := range append(Factories(), BrokenFactories()...) {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// BrokenFactories returns the deliberately broken machines used to prove the
// contract checker has teeth: the cached network without write atomicity, and
// the Section-5 implementation with its reserve-bit stall ablated. Both claim
// (or approximate) weak ordering and both violate Definition 2 on DRF0
// programs, so fuzzing campaigns include them as known-bad controls.
func BrokenFactories() []Factory {
	return []Factory{
		{"network+cache-nonatomic", func(p *program.Program) model.Machine { return model.NewNonAtomic(p) }},
		{"WO-def2-noreserve", func(p *program.Program) model.Machine { return model.NewWODef2NoReserve(p) }},
	}
}

// FactoriesByNames resolves a comma-separated list of machine names into
// factories, in list order. Three aliases expand in place: "weak" to
// WeaklyOrderedFactories(), "all" to Factories(), and "broken" to
// BrokenFactories(). Duplicates are dropped, keeping the first occurrence; an
// unknown name is an error naming the offender.
func FactoriesByNames(csv string) ([]Factory, error) {
	var out []Factory
	seen := make(map[string]bool)
	add := func(f Factory) {
		if !seen[f.Name] {
			seen[f.Name] = true
			out = append(out, f)
		}
	}
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "":
			continue
		case "weak":
			for _, f := range WeaklyOrderedFactories() {
				add(f)
			}
		case "all":
			for _, f := range Factories() {
				add(f)
			}
		case "broken":
			for _, f := range BrokenFactories() {
				add(f)
			}
		default:
			f, ok := FactoryByName(name)
			if !ok {
				return nil, fmt.Errorf("litmus: unknown machine %q (try \"weak\", \"all\", or one of the Factories() names)", name)
			}
			add(f)
		}
	}
	return out, nil
}

// WeaklyOrderedFactories returns the machines that claim to be weakly ordered
// with respect to DRF0 under Definition 2 (and therefore must appear SC to
// every DRF0 program).
func WeaklyOrderedFactories() []Factory {
	var out []Factory
	for _, f := range Factories() {
		switch f.Name {
		case "WO-def1", "WO-def2", "WO-def2-drf1", "RP3-fence",
			// A write buffer drained at synchronization is weakly ordered
			// w.r.t. DRF0 as well; it is listed so the contract experiments
			// cover the Figure-1 hardware that *does* honor the contract.
			"bus+writebuffer", "bus+cache+writebuffer", "network-nocache",
			// The relaxation-ladder machines treat every sync op as a full
			// fence over a single multi-copy-atomic memory, so they satisfy
			// Definition 2 as well.
			"tso", "pso", "rmo":
			out = append(out, f)
		}
	}
	return out
}

// Test is one litmus test: a program, the outcome of interest, and the
// expected reachability of that outcome on each machine.
type Test struct {
	Name        string
	Description string
	Prog        *program.Program
	Cond        program.Cond
	// Expect maps machine name to whether the condition is reachable there.
	// Machines absent from the map are simply not asserted on.
	Expect map[string]bool
	// DRF0 records whether the program obeys DRF0 (checked independently by
	// the race tests; carried here so contract experiments can select
	// conforming programs).
	DRF0 bool
}

// Outcome reports one (test, machine) exploration.
type Outcome struct {
	Test     string
	Machine  string
	Observed bool // condition reachable
	Expected bool
	Asserted bool // whether Expect had an entry for this machine
	Stats    model.Stats
	Finals   int
}

// OK reports whether the observation matched the expectation (vacuously true
// when unasserted).
func (o Outcome) OK() bool { return !o.Asserted || o.Observed == o.Expected }

// String implements fmt.Stringer.
func (o Outcome) String() string {
	verdict := "allowed"
	if !o.Observed {
		verdict = "forbidden"
	}
	mark := ""
	if o.Asserted && !o.OK() {
		mark = "  << UNEXPECTED"
	}
	return fmt.Sprintf("%-24s %-24s %-9s (%s)%s", o.Test, o.Machine, verdict, o.Stats, mark)
}

// Run explores the test on one machine and evaluates the condition on every
// reachable final state.
func Run(t *Test, f Factory, x *model.Explorer) (Outcome, error) {
	if x == nil {
		x = &model.Explorer{}
	}
	o := Outcome{Test: t.Name, Machine: f.Name}
	if exp, ok := t.Expect[f.Name]; ok {
		o.Expected, o.Asserted = exp, true
	}
	st, err := x.FinalStates(f.New(t.Prog), func(fs *program.FinalState) bool {
		o.Finals++
		if t.Cond.Eval(fs) {
			o.Observed = true
			// Keep exploring only if the caller may want full counts; stop
			// early — reachability is decided.
			return false
		}
		return true
	})
	o.Stats = st
	if err != nil {
		return o, fmt.Errorf("litmus %s on %s: %w", t.Name, f.Name, err)
	}
	return o, nil
}

// RunAll runs every test on every factory, returning outcomes sorted by test
// then machine order. The (test, machine) cells are independent explorations,
// so they fan out through the par worker pool; results are assembled in input
// order, making the output identical at any pool width.
func RunAll(tests []*Test, fs []Factory, x *model.Explorer) ([]Outcome, error) {
	type cell struct {
		t *Test
		f Factory
	}
	cells := make([]cell, 0, len(tests)*len(fs))
	for _, t := range tests {
		for _, f := range fs {
			cells = append(cells, cell{t, f})
		}
	}
	out, err := par.Map(cells, 0, func(_ int, c cell) (Outcome, error) {
		return Run(c.t, c.f, x)
	})
	if err != nil {
		return out, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Test < out[j].Test })
	return out, nil
}
