package litmus

import (
	"os"
	"path/filepath"
	"testing"

	"weakorder/internal/program"
)

// loadFile parses one testdata litmus file into a Test.
func loadFile(t *testing.T, name string) *Test {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	res, err := program.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.Exists == nil {
		t.Fatalf("%s: no exists clause", name)
	}
	return &Test{Name: res.Program.Name, Prog: res.Program, Cond: res.Exists}
}

// TestLitmusFiles runs the testdata corpus across machines, asserting the
// file-based path (parse → explore → evaluate) agrees with the known
// verdicts.
func TestLitmusFiles(t *testing.T) {
	expectations := map[string]map[string]bool{
		"sb.litmus": {
			"SC":              false,
			"bus+writebuffer": true,
		},
		"mp-sync.litmus": {
			"SC":      false,
			"WO-def1": false,
			"WO-def2": false,
		},
		"faa-counter.litmus": {
			"SC":                      false,
			"WO-def2":                 false,
			"network+cache-nonatomic": true, // non-atomic RMW loses increments
		},
	}
	files, err := filepath.Glob(filepath.Join("testdata", "*.litmus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(expectations) {
		t.Fatalf("testdata has %d files, expectations cover %d", len(files), len(expectations))
	}
	for _, f := range files {
		name := filepath.Base(f)
		tst := loadFile(t, name)
		for machineName, want := range expectations[name] {
			fac, ok := FactoryByName(machineName)
			if !ok {
				t.Fatalf("unknown machine %s", machineName)
			}
			o, err := Run(tst, fac, nil)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, machineName, err)
			}
			if o.Observed != want {
				t.Errorf("%s on %s: observed=%v, want %v", name, machineName, o.Observed, want)
			}
		}
	}
}
