package litmus

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"weakorder/internal/model"
	"weakorder/internal/par"
)

// renderReport formats RunAll's outcomes the way cmd/litmus prints them: one
// Outcome.String() per line, in returned order.
func renderReport(t *testing.T, tests []*Test, fs []Factory) string {
	t.Helper()
	x := &model.Explorer{MaxTraceOps: 20}
	out, err := RunAll(tests, fs, x)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, o := range out {
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRunAllReportDeterministicAcrossPoolWidths pins RunAll's determinism
// contract over the exploration kernel: the report text is byte-identical
// whether the (test, machine) cells run on one worker, two, or fan out
// across every core, and the observed outcome of every cell is identical
// with the partial-order reduction on and off at every width. A diff here
// means some cell's outcome depends on scheduling or on the reduction —
// exactly the bug classes a memory-model checker cannot afford in its own
// harness.
func TestRunAllReportDeterministicAcrossPoolWidths(t *testing.T) {
	// A corpus slice large enough to make the pool reorder completions, small
	// enough to keep the test quick.
	tests := Corpus()
	if len(tests) > 6 {
		tests = tests[:6]
	}
	fs := Factories()
	widths := []int{1, 2, runtime.GOMAXPROCS(0)}

	// observed renders just the verdict columns (test, machine, reachable) —
	// the part that must also be invariant under FullExploration, whose
	// Stats differ by construction.
	observed := func(fullExpl bool) string {
		x := &model.Explorer{MaxTraceOps: 20, FullExploration: fullExpl}
		out, err := RunAll(tests, fs, x)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, o := range out {
			fmt.Fprintf(&b, "%s/%s=%v\n", o.Test, o.Machine, o.Observed)
		}
		return b.String()
	}

	var reports, verdictsPOR, verdictsFull []string
	for _, w := range widths {
		restore := par.SetWorkers(w)
		reports = append(reports, renderReport(t, tests, fs))
		verdictsPOR = append(verdictsPOR, observed(false))
		verdictsFull = append(verdictsFull, observed(true))
		restore()
	}
	for i := 1; i < len(widths); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("report differs between %d worker(s) and %d:\n--- %d ---\n%s--- %d ---\n%s",
				widths[0], widths[i], widths[0], reports[0], widths[i], reports[i])
		}
		if verdictsPOR[i] != verdictsPOR[0] || verdictsFull[i] != verdictsFull[0] {
			t.Fatalf("outcome sets differ across pool widths %d and %d", widths[0], widths[i])
		}
	}
	if verdictsPOR[0] != verdictsFull[0] {
		t.Fatalf("POR changed an observed outcome:\n--- POR ---\n%s--- full ---\n%s",
			verdictsPOR[0], verdictsFull[0])
	}
	// Sanity: the report actually contains one line per (test, machine) cell.
	if got, want := strings.Count(reports[0], "\n"), len(tests)*len(fs); got != want {
		t.Fatalf("report has %d lines, want %d", got, want)
	}
}

func TestFactoriesByNames(t *testing.T) {
	names := func(fs []Factory) []string {
		var out []string
		for _, f := range fs {
			out = append(out, f.Name)
		}
		return out
	}
	cases := []struct {
		csv  string
		want []string
	}{
		{"SC", []string{"SC"}},
		{"SC, WO-def2", []string{"SC", "WO-def2"}},
		{"weak", names(WeaklyOrderedFactories())},
		{"all", names(Factories())},
		{"broken", []string{"network+cache-nonatomic", "WO-def2-noreserve"}},
		// Duplicates collapse to the first occurrence; aliases and explicit
		// names mix freely.
		{"SC,SC,SC", []string{"SC"}},
		{"WO-def2,weak", append([]string{"WO-def2"}, func() []string {
			var rest []string
			for _, n := range names(WeaklyOrderedFactories()) {
				if n != "WO-def2" {
					rest = append(rest, n)
				}
			}
			return rest
		}()...)},
		{"", nil},
	}
	for _, tc := range cases {
		fs, err := FactoriesByNames(tc.csv)
		if err != nil {
			t.Fatalf("%q: %v", tc.csv, err)
		}
		got := names(fs)
		if len(got) != len(tc.want) {
			t.Fatalf("%q: got %v, want %v", tc.csv, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%q: got %v, want %v", tc.csv, got, tc.want)
			}
		}
	}
	if _, err := FactoriesByNames("weak,no-such-machine"); err == nil ||
		!strings.Contains(err.Error(), "no-such-machine") {
		t.Fatalf("unknown machine error = %v, want it to name the offender", err)
	}
}

// TestFactoryByNameFindsBrokenFixtures ensures the catch-and-shrink pipeline
// can resolve a violating machine's name back to a factory even when the
// machine is one of the deliberately broken fixtures outside Factories().
func TestFactoryByNameFindsBrokenFixtures(t *testing.T) {
	for _, name := range []string{"network+cache-nonatomic", "WO-def2-noreserve"} {
		f, ok := FactoryByName(name)
		if !ok {
			t.Fatalf("FactoryByName(%q) not found", name)
		}
		if f.New == nil {
			t.Fatalf("FactoryByName(%q) has nil constructor", name)
		}
	}
}
