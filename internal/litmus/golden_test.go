package litmus

import (
	"runtime"
	"strings"
	"testing"

	"weakorder/internal/model"
	"weakorder/internal/par"
)

// renderReport formats RunAll's outcomes the way cmd/litmus prints them: one
// Outcome.String() per line, in returned order.
func renderReport(t *testing.T, tests []*Test, fs []Factory) string {
	t.Helper()
	x := &model.Explorer{MaxTraceOps: 20}
	out, err := RunAll(tests, fs, x)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, o := range out {
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRunAllReportDeterministicAcrossPoolWidths pins RunAll's determinism
// contract: the report text is byte-identical whether the (test, machine)
// cells run on a single worker or fan out across every core. A diff here
// means some cell's outcome depends on scheduling — exactly the bug class a
// memory-model checker cannot afford in its own harness.
func TestRunAllReportDeterministicAcrossPoolWidths(t *testing.T) {
	// A corpus slice large enough to make the pool reorder completions, small
	// enough to keep the test quick.
	tests := Corpus()
	if len(tests) > 6 {
		tests = tests[:6]
	}
	fs := Factories()

	restore := par.SetWorkers(1)
	serial := renderReport(t, tests, fs)
	restore()

	restore = par.SetWorkers(runtime.GOMAXPROCS(0))
	wide := renderReport(t, tests, fs)
	restore()

	if serial != wide {
		t.Fatalf("report differs between 1 worker and %d workers:\n--- serial ---\n%s--- wide ---\n%s",
			runtime.GOMAXPROCS(0), serial, wide)
	}
	// Sanity: the report actually contains one line per (test, machine) cell.
	if got, want := strings.Count(serial, "\n"), len(tests)*len(fs); got != want {
		t.Fatalf("report has %d lines, want %d", got, want)
	}
}

func TestFactoriesByNames(t *testing.T) {
	names := func(fs []Factory) []string {
		var out []string
		for _, f := range fs {
			out = append(out, f.Name)
		}
		return out
	}
	cases := []struct {
		csv  string
		want []string
	}{
		{"SC", []string{"SC"}},
		{"SC, WO-def2", []string{"SC", "WO-def2"}},
		{"weak", names(WeaklyOrderedFactories())},
		{"all", names(Factories())},
		{"broken", []string{"network+cache-nonatomic", "WO-def2-noreserve"}},
		// Duplicates collapse to the first occurrence; aliases and explicit
		// names mix freely.
		{"SC,SC,SC", []string{"SC"}},
		{"WO-def2,weak", append([]string{"WO-def2"}, func() []string {
			var rest []string
			for _, n := range names(WeaklyOrderedFactories()) {
				if n != "WO-def2" {
					rest = append(rest, n)
				}
			}
			return rest
		}()...)},
		{"", nil},
	}
	for _, tc := range cases {
		fs, err := FactoriesByNames(tc.csv)
		if err != nil {
			t.Fatalf("%q: %v", tc.csv, err)
		}
		got := names(fs)
		if len(got) != len(tc.want) {
			t.Fatalf("%q: got %v, want %v", tc.csv, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%q: got %v, want %v", tc.csv, got, tc.want)
			}
		}
	}
	if _, err := FactoriesByNames("weak,no-such-machine"); err == nil ||
		!strings.Contains(err.Error(), "no-such-machine") {
		t.Fatalf("unknown machine error = %v, want it to name the offender", err)
	}
}

// TestFactoryByNameFindsBrokenFixtures ensures the catch-and-shrink pipeline
// can resolve a violating machine's name back to a factory even when the
// machine is one of the deliberately broken fixtures outside Factories().
func TestFactoryByNameFindsBrokenFixtures(t *testing.T) {
	for _, name := range []string{"network+cache-nonatomic", "WO-def2-noreserve"} {
		f, ok := FactoryByName(name)
		if !ok {
			t.Fatalf("FactoryByName(%q) not found", name)
		}
		if f.New == nil {
			t.Fatalf("FactoryByName(%q) has nil constructor", name)
		}
	}
}
