package litmus

import (
	"strings"
	"testing"

	"weakorder/internal/model"
)

func TestRunAllOverSubset(t *testing.T) {
	tests := []*Test{}
	for _, name := range []string{"fig1-dekker-data", "corr"} {
		tst, ok := ByName(name)
		if !ok {
			t.Fatalf("missing corpus test %s", name)
		}
		tests = append(tests, tst)
	}
	fs := []Factory{}
	for _, name := range []string{"SC", "bus+writebuffer"} {
		f, ok := FactoryByName(name)
		if !ok {
			t.Fatalf("missing factory %s", name)
		}
		fs = append(fs, f)
	}
	outs, err := RunAll(tests, fs, &model.Explorer{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 {
		t.Fatalf("outcomes = %d, want 4", len(outs))
	}
	for _, o := range outs {
		if !o.OK() {
			t.Errorf("unexpected observation: %s", o)
		}
	}
	// Outcome rendering.
	s := outs[0].String()
	if !strings.Contains(s, outs[0].Test) || !strings.Contains(s, outs[0].Machine) {
		t.Errorf("outcome string: %q", s)
	}
	bad := Outcome{Test: "t", Machine: "m", Observed: true, Expected: false, Asserted: true}
	if !strings.Contains(bad.String(), "UNEXPECTED") {
		t.Errorf("mismatch marker missing: %q", bad.String())
	}
}

func TestFactoryByNameUnknown(t *testing.T) {
	if _, ok := FactoryByName("no-such-machine"); ok {
		t.Fatal("unknown machine resolved")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("no-such-test"); ok {
		t.Fatal("unknown test resolved")
	}
}

func TestWeaklyOrderedFactoriesExcludeBrokenMachines(t *testing.T) {
	for _, f := range WeaklyOrderedFactories() {
		if f.Name == "network+cache-nonatomic" {
			t.Fatal("the broken machine must not claim weak ordering")
		}
	}
	if len(WeaklyOrderedFactories()) < 5 {
		t.Fatal("expected several weakly ordered machines")
	}
}
