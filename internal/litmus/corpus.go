package litmus

import "weakorder/internal/program"

// mk builds a Test from parser source; the exists clause becomes the
// condition of interest.
func mk(name, desc string, drf0 bool, src string, expect map[string]bool) *Test {
	r := program.MustParse(src)
	if r.Exists == nil {
		panic("litmus: corpus test without exists clause: " + name)
	}
	r.Program.Name = name
	return &Test{
		Name:        name,
		Description: desc,
		Prog:        r.Program,
		Cond:        r.Exists,
		Expect:      expect,
		DRF0:        drf0,
	}
}

// allowedOnRelaxedOnly marks an outcome reachable on every Figure-1 relaxed
// machine but not on SC. The weakly ordered machines relax data accesses too,
// so a racy outcome generally remains reachable there — Definition 2 promises
// nothing for racy programs.
func allowedOnRelaxedOnly() map[string]bool {
	return map[string]bool{
		"SC":                      false,
		"bus+writebuffer":         true,
		"bus+cache+writebuffer":   true,
		"network-nocache":         true,
		"network+cache-nonatomic": true,
		"WO-def1":                 true,
		"WO-def2":                 true,
		"WO-def2-drf1":            true,
		"RP3-fence":               true,
		"tso":                     true,
		"pso":                     true,
		"rmo":                     true,
	}
}

// forbiddenEverywhere marks an outcome no machine may produce.
func forbiddenEverywhere() map[string]bool {
	m := allowedOnRelaxedOnly()
	for k := range m {
		m[k] = false
	}
	return m
}

// Corpus returns the standard litmus tests.
func Corpus() []*Test {
	var tests []*Test

	// Figure 1: the store-buffering (Dekker) violation. "Result - P1 and P2
	// are both killed" corresponds to both loads returning 0.
	tests = append(tests, mk("fig1-dekker-data",
		"Figure 1: X=1;if(Y==0) || Y=1;if(X==0) with data accesses; both zeros violates SC",
		false, `
name: fig1-dekker-data
init: x=0 y=0
thread:
    st x, 1
    ld r0, y
thread:
    st y, 1
    ld r1, x
exists: 0:r0=0 && 1:r1=0
`, allowedOnRelaxedOnly()))

	// The same communication pattern expressed with synchronization
	// operations: every machine that recognizes synchronization must forbid
	// the violation. The NonAtomic machine ignores synchronization
	// entirely — that is exactly what makes it broken — so it still allows
	// the outcome.
	dekkerSyncExpect := forbiddenEverywhere()
	dekkerSyncExpect["network+cache-nonatomic"] = true
	tests = append(tests, mk("fig1-dekker-sync",
		"Dekker with hardware-recognizable synchronization accesses only",
		true, `
name: fig1-dekker-sync
init: x=0 y=0
thread:
    sync.st x, 1
    sync.ld r0, y
thread:
    sync.st y, 1
    sync.ld r1, x
exists: 0:r0=0 && 1:r1=0
`, dekkerSyncExpect))

	// Message passing with plain data accesses: racy, and the stale-data
	// outcome is visible on machines whose writes complete out of order
	// with later writes (reads passing writes does not reorder two writes,
	// so the write-buffer machines forbid it; the network machines allow
	// it).
	tests = append(tests, mk("mp-data",
		"message passing, data flag: r0=1 (saw flag) && r1=0 (stale payload)",
		false, `
name: mp-data
init: d=0 f=0
thread:
    st d, 1
    st f, 1
thread:
    ld r0, f
    ld r1, d
exists: 1:r0=1 && 1:r1=0
`, map[string]bool{
			"SC":                      false,
			"bus+writebuffer":         false, // FIFO buffer keeps d before f
			"bus+cache+writebuffer":   false,
			"network-nocache":         true, // f may reach its module first
			"network+cache-nonatomic": true, // f may propagate to P1 first
			"WO-def1":                 true,
			"WO-def2":                 true,
			"WO-def2-drf1":            true,
			"RP3-fence":               true,
			"tso":                     false, // single FIFO buffer keeps d before f
			"pso":                     true,  // per-address buffers: f may retire first
			"rmo":                     true,
		}))

	// Message passing with a synchronization flag: DRF0, so every weakly
	// ordered machine must forbid the stale read (Definition 2's promise).
	// Note the spin: without it the consumer's data read races with the
	// producer's data write in executions where the sync read completes
	// first, and the program would not obey DRF0 (the synchronization-order
	// edge would point the wrong way).
	tests = append(tests, mk("mp-sync",
		"message passing, sync flag with consumer spin: DRF0; stale payload impossible on WO hardware",
		true, `
name: mp-sync
init: d=0 f=0
thread:
    st d, 1
    sync.st f, 1
thread:
wait:
    sync.ld r0, f
    beq r0, 0, wait
    ld r1, d
exists: 1:r0=1 && 1:r1=0
`, map[string]bool{
			"SC":                      false,
			"bus+writebuffer":         false,
			"bus+cache+writebuffer":   false,
			"network-nocache":         false,
			"network+cache-nonatomic": true, // the broken machine: d's propagation may lag the atomic-looking f
			"WO-def1":                 false,
			"WO-def2":                 false,
			"WO-def2-drf1":            false,
			"RP3-fence":               false,
			"tso":                     false,
			"pso":                     false,
			"rmo":                     false, // consumer syncs reset the stale view
		}))

	// Load buffering: requires a read to be overtaken by a program-later
	// write of its own processor. None of the modeled machines speculate
	// loads, so the outcome is forbidden everywhere.
	tests = append(tests, mk("lb-data",
		"load buffering: r0=1 && r1=1 needs load-store reordering; no modeled machine does it",
		false, `
name: lb-data
init: x=0 y=0
thread:
    ld r0, x
    st y, 1
thread:
    ld r1, y
    st x, 1
exists: 0:r0=1 && 1:r1=1
`, forbiddenEverywhere()))

	// Coherence (CoRR): two reads of one location by one processor must not
	// observe a single remote write going backward. Write serialization
	// (condition 2 of Section 5.1) holds on every machine.
	tests = append(tests, mk("corr",
		"coherence: new-then-old reads of one location are forbidden everywhere",
		false, `
name: corr
init: x=0
thread:
    st x, 1
thread:
    ld r0, x
    ld r1, x
exists: 1:r0=1 && 1:r1=0
`, forbiddenEverywhere()))

	// IRIW with data accesses: two writers, two readers that disagree about
	// the order of independent writes. Only the non-atomic-store machine
	// can produce it.
	tests = append(tests, mk("iriw-data",
		"independent reads of independent writes: readers disagree on write order",
		false, `
name: iriw-data
init: x=0 y=0
thread:
    st x, 1
thread:
    st y, 1
thread:
    ld r0, x
    ld r1, y
thread:
    ld r2, y
    ld r3, x
exists: 2:r0=1 && 2:r1=0 && 3:r2=1 && 3:r3=0
`, map[string]bool{
			"SC":                      false,
			"bus+writebuffer":         false,
			"bus+cache+writebuffer":   false,
			"network-nocache":         false, // memory modules serialize each write globally
			"network+cache-nonatomic": true,  // store atomicity is broken
			"WO-def1":                 true,
			"WO-def2":                 true,
			"WO-def2-drf1":            true,
			"RP3-fence":               true,
			"tso":                     false, // single memory: writes are multi-copy atomic
			"pso":                     false,
			"rmo":                     true, // stale per-location views let readers disagree
		}))

	// IRIW with synchronization reads and writes: DRF0, forbidden on every
	// weakly ordered machine.
	tests = append(tests, mk("iriw-sync",
		"IRIW, all accesses synchronization: forbidden wherever sync is strongly ordered",
		true, `
name: iriw-sync
init: x=0 y=0
thread:
    sync.st x, 1
thread:
    sync.st y, 1
thread:
    sync.ld r0, x
    sync.ld r1, y
thread:
    sync.ld r2, y
    sync.ld r3, x
exists: 2:r0=1 && 2:r1=0 && 3:r2=1 && 3:r3=0
`, map[string]bool{
			"SC":                      false,
			"bus+writebuffer":         false,
			"bus+cache+writebuffer":   false,
			"network-nocache":         false,
			"network+cache-nonatomic": true, // NonAtomic ignores synchronization; store atomicity stays broken
			"WO-def1":                 false,
			"WO-def2":                 false,
			"WO-def2-drf1":            false,
			"RP3-fence":               false,
			"tso":                     false,
			"pso":                     false,
			"rmo":                     false,
		}))

	// Write-to-read causality with data accesses: P2 observes P1's write
	// (made after P1 read P0's write) yet misses P0's write — possible only
	// where store atomicity is broken (non-atomic cached stores; all the
	// weakly ordered machines relax data accesses the same way).
	tests = append(tests, mk("wrc-data",
		"write-to-read causality: racy; only non-atomic stores break it",
		false, `
name: wrc-data
init: x=0 y=0
thread:
    st x, 1
thread:
    ld r0, x
    st y, 1
thread:
    ld r1, y
    ld r2, x
exists: 1:r0=1 && 2:r1=1 && 2:r2=0
`, map[string]bool{
			"SC":                      false,
			"bus+writebuffer":         false,
			"bus+cache+writebuffer":   false,
			"network-nocache":         false, // modules serialize; reads block
			"network+cache-nonatomic": true,
			"WO-def1":                 true,
			"WO-def2":                 true,
			"WO-def2-drf1":            true,
			"RP3-fence":               true,
			"tso":                     false, // P1's read of x proves x=1 committed
			"pso":                     false,
			"rmo":                     true, // P2's second read may use a stale x view
		}))

	// Transitive causality through two synchronization locations — the
	// paper's op(P1,x) -> S(s) -> S(s) -> S(t) -> S(t) -> op(P3,x) chain as
	// a program. DRF0: every weakly ordered machine must deliver x.
	tests = append(tests, mk("wrc-transitive-sync",
		"causality chain across two sync locations; tests hb transitivity in hardware",
		true, `
name: wrc-transitive-sync
init: x=0 a=0 b=0
thread:
    st x, 1
    sync.st a, 1
thread:
w1:
    sync.ld r0, a
    beq r0, 0, w1
    sync.st b, 1
thread:
w2:
    sync.ld r1, b
    beq r1, 0, w2
    ld r2, x
exists: 2:r2=0
`, map[string]bool{
			"SC":                      false,
			"bus+writebuffer":         false,
			"bus+cache+writebuffer":   false,
			"network-nocache":         false,
			"network+cache-nonatomic": true,
			"WO-def1":                 false,
			"WO-def2":                 false,
			"WO-def2-drf1":            false,
			"RP3-fence":               false,
			"tso":                     false,
			"pso":                     false,
			"rmo":                     false, // the acquire-side sync resets P2's views
		}))

	// S: can P0's first write to x be ordered after P1's write to x even
	// though P1 observed P0's *second* access? Requires two same-processor
	// writes to different locations to reorder — the network-without-caches
	// relaxation precisely; FIFO write buffers and commit-ordered cached
	// stores both forbid it.
	tests = append(tests, mk("s-test",
		"S: write-write reordering observable through the final state",
		false, `
name: s-test
init: x=0 y=0
thread:
    st x, 2
    st y, 1
thread:
    ld r0, y
    st x, 1
exists: 1:r0=1 && [x]=2
`, map[string]bool{
			"SC":                      false,
			"bus+writebuffer":         false, // FIFO drain keeps x=2 before y=1
			"bus+cache+writebuffer":   false,
			"network-nocache":         true,  // x=2 and y=1 race to different modules
			"network+cache-nonatomic": false, // commit order serializes same-location writes
			"WO-def1":                 false,
			"WO-def2":                 false,
			"WO-def2-drf1":            false,
			"RP3-fence":               false,
			"tso":                     false, // FIFO drain keeps x=2 before y=1
			"pso":                     true,  // y=1 may retire while x=2 stays buffered
			"rmo":                     true,
		}))

	// 2+2W: both locations end with their *first* writer's value, requiring
	// a write-write reordering cycle. Forbidden under FIFO buffers and
	// commit-ordered stores; the unordered network allows it.
	tests = append(tests, mk("2+2w",
		"2+2W: cyclic write-write reordering across two locations",
		false, `
name: 2+2w
init: x=0 y=0
thread:
    st x, 1
    st y, 2
thread:
    st y, 1
    st x, 2
exists: [x]=1 && [y]=1
`, map[string]bool{
			"SC":                      false,
			"bus+writebuffer":         false,
			"bus+cache+writebuffer":   false,
			"network-nocache":         true,
			"network+cache-nonatomic": false,
			"WO-def1":                 false,
			"WO-def2":                 false,
			"WO-def2-drf1":            false,
			"RP3-fence":               false,
			"tso":                     false, // both buffers FIFO: the cycle is impossible
			"pso":                     true,  // each writer reorders its two stores
			"rmo":                     true,
		}))

	// The Figure 3 scenario as a reachability question: P0 writes x and
	// Unsets s; P1 TestAndSets s until it wins, then reads x. DRF0: the
	// only conflicting data accesses (W(x), R(x)) are ordered through s.
	// Every weakly ordered machine must make r1=0-after-winning impossible.
	tests = append(tests, mk("fig3-handoff",
		"Figure 3: lock hand-off; the winner must see the payload",
		true, `
name: fig3-handoff
init: x=0 s=1
thread:
    st x, 42
    sync.st s, 0
thread:
spin:
    tas r0, s, 1
    bne r0, 0, spin
    ld r1, x
exists: 1:r1=0
`, map[string]bool{
			"SC":                      false,
			"bus+writebuffer":         false,
			"bus+cache+writebuffer":   false,
			"network-nocache":         false,
			"network+cache-nonatomic": true,
			"WO-def1":                 false,
			"WO-def2":                 false,
			"WO-def2-drf1":            false,
			"RP3-fence":               false,
			"tso":                     false,
			"pso":                     false,
			"rmo":                     false, // the winning tas is a sync RMW: full fence
		}))

	// Mutual exclusion with a TestAndSet lock: both processors increment a
	// shared counter inside the critical section; losing an increment
	// would require a data race inside the section. DRF0 holds, so every
	// weakly ordered machine must deliver both increments.
	tests = append(tests, mk("tas-mutex",
		"TestAndSet critical sections: final counter must be 2 on WO hardware",
		true, `
name: tas-mutex
init: l=0 c=0
thread:
acq0:
    tas r0, l, 1
    bne r0, 0, acq0
    ld r1, c
    add r1, r1, 1
    st c, r1
    sync.st l, 0
thread:
acq1:
    tas r0, l, 1
    bne r0, 0, acq1
    ld r1, c
    add r1, r1, 1
    st c, r1
    sync.st l, 0
exists: !([c]=2)
`, map[string]bool{
			"SC":                      false,
			"bus+writebuffer":         false,
			"bus+cache+writebuffer":   false,
			"network-nocache":         false,
			"network+cache-nonatomic": true,
			"WO-def1":                 false,
			"WO-def2":                 false,
			"WO-def2-drf1":            false,
			"RP3-fence":               false,
			"tso":                     false,
			"pso":                     false,
			"rmo":                     false,
		}))

	// Spinning on a barrier count with a DATA read — the "limitation of
	// DRF0" discussed at the end of Section 6: the program is racy (the
	// data read races with the sync write), yet Definition-1 hardware
	// happens to give the intuitive result. Under Definition 2 nothing is
	// promised; the corpus records present behavior of each machine.
	tests = append(tests, mk("barrier-data-spin",
		"spin on a data read of a flag released by sync write; racy but benign on Def1 hardware",
		false, `
name: barrier-data-spin
init: d=0 f=0
thread:
    st d, 7
    sync.st f, 1
thread:
wait:
    ld r0, f
    beq r0, 0, wait
    ld r1, d
exists: 1:r1=0
`, map[string]bool{
			"SC":      false,
			"WO-def1": false, // Unset waits for W(d) to perform globally first
			"WO-def2": true,  // data spin creates no reservation hand-off
			"tso":     false, // sync.st drains d=7 before f becomes visible
			"pso":     false,
			"rmo":     true, // the spinning reader may keep a stale view of d
		}))

	// Message passing with a fenced producer but an unfenced consumer: the
	// producer's sync.st orders its stores on every buffer machine, so the
	// stale outcome now requires the *reader* to relax load-load order. This
	// is the shape that separates rmo from pso, and — on the weakly ordered
	// side — Definition 2 (which lets the release overtake outstanding data
	// propagations, reservation aside) from Definition 1 (whose release waits
	// for them).
	tests = append(tests, mk("mp-release",
		"message passing, fenced producer only: stale payload needs reader-side reordering",
		false, `
name: mp-release
init: d=0 f=0
thread:
    st d, 1
    sync.st f, 1
thread:
    ld r0, f
    ld r1, d
exists: 1:r0=1 && 1:r1=0
`, map[string]bool{
			"SC":                      false,
			"bus+writebuffer":         false, // sync drains the buffer before f commits
			"bus+cache+writebuffer":   false,
			"network-nocache":         false, // sync waits for d to perform globally
			"network+cache-nonatomic": true,  // d's propagation to P1 may lag f
			"WO-def1":                 false, // Definition 1: release waits for W(d) globally
			"WO-def2":                 true,  // Definition 2: release may overtake d's delivery
			"WO-def2-drf1":            true,
			"RP3-fence":               false,
			"tso":                     false,
			"pso":                     false,
			"rmo":                     true, // reader's second load may use a stale d view
		}))

	return tests
}

// ByName returns the corpus test with the given name.
func ByName(name string) (*Test, bool) {
	for _, t := range Corpus() {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}
