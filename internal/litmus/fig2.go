package litmus

import "weakorder/internal/mem"

// Figure 2 of the paper shows two executions on the idealized architecture:
// (a) obeys DRF0 — every pair of conflicting accesses is ordered by the
// happens-before relation through chains of synchronization on the same
// location — while (b) violates it. The printed figure's exact layout does
// not survive transcription, so the executions below reconstruct its
// documented structure: in (a) all cross-processor conflicts are bridged by
// S(·) chains; in (b) "the accesses of P0 conflict with the write of P1 but
// are not ordered with respect to it", and "the writes by P2 and P4 conflict,
// but are unordered".

// acc abbreviates access construction for execution building.
func acc(p mem.ProcID, op mem.Op, a mem.Addr, v mem.Value) mem.Access {
	return mem.Access{Proc: p, Op: op, Addr: a, Value: v}
}

// Locations used by the Figure 2 executions. Data variables x, y, z and
// synchronization variables a, b, c.
const (
	figX mem.Addr = iota
	figY
	figZ
	figA
	figB
	figC
)

// Figure2a returns the DRF0-obeying execution: six processors whose
// conflicting accesses are all ordered via synchronization chains. The
// completion order is the order of Append calls (time flows downward in the
// figure).
func Figure2a() *mem.Execution {
	e := mem.NewExecution(6)
	// P0 produces x, releases through a.
	e.Append(acc(0, mem.OpWrite, figX, 1))
	e.Append(acc(0, mem.OpSyncWrite, figA, 1))
	// P1 acquires a, reads x, produces y, releases through b.
	e.Append(acc(1, mem.OpSyncRMW, figA, 1)) // reads 1, writes WValue below
	e.Events[len(e.Events)-1].WValue = 2
	e.Append(acc(1, mem.OpRead, figX, 1))
	e.Append(acc(1, mem.OpWrite, figY, 10))
	e.Append(acc(1, mem.OpSyncWrite, figB, 1))
	// P2 acquires b, reads y, overwrites x (ordered after P0's and P1's
	// accesses through the a-then-b chain), releases through c.
	e.Append(acc(2, mem.OpSyncRMW, figB, 1))
	e.Events[len(e.Events)-1].WValue = 2
	e.Append(acc(2, mem.OpRead, figY, 10))
	e.Append(acc(2, mem.OpWrite, figX, 2))
	e.Append(acc(2, mem.OpSyncWrite, figC, 1))
	// P3 acquires c and reads both x and y.
	e.Append(acc(3, mem.OpSyncRMW, figC, 1))
	e.Events[len(e.Events)-1].WValue = 2
	e.Append(acc(3, mem.OpRead, figX, 2))
	e.Append(acc(3, mem.OpRead, figY, 10))
	// P4 produces z and releases through a second round on a; P5 acquires
	// a after it and reads z.
	e.Append(acc(4, mem.OpWrite, figZ, 5))
	e.Append(acc(4, mem.OpSyncWrite, figA, 3))
	e.Append(acc(5, mem.OpSyncRMW, figA, 3))
	e.Events[len(e.Events)-1].WValue = 4
	e.Append(acc(5, mem.OpRead, figZ, 5))
	return e
}

// Figure2b returns the DRF0-violating execution: P0's read and write of x
// conflict with P1's write of x with no intervening synchronization, and P2's
// and P4's writes of y conflict while the only synchronization chain (a)
// bridges P2 to P3, not to P4.
func Figure2b() *mem.Execution {
	e := mem.NewExecution(5)
	// P0 reads then writes x...
	e.Append(acc(0, mem.OpRead, figX, 0))
	e.Append(acc(0, mem.OpWrite, figX, 1))
	// ...while P1 writes x with no synchronization anywhere: races.
	e.Append(acc(1, mem.OpWrite, figX, 2))
	// P2 produces y and releases through a; P3 acquires a and reads y:
	// this pair is properly ordered.
	e.Append(acc(2, mem.OpWrite, figY, 10))
	e.Append(acc(2, mem.OpSyncWrite, figA, 1))
	e.Append(acc(3, mem.OpSyncRMW, figA, 1))
	e.Events[len(e.Events)-1].WValue = 2
	e.Append(acc(3, mem.OpRead, figY, 10))
	// P4 also writes y, unordered with P2's write and P3's read.
	e.Append(acc(4, mem.OpWrite, figY, 20))
	return e
}
