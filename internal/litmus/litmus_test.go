package litmus

import (
	"testing"

	"weakorder/internal/core"
	"weakorder/internal/model"
)

// TestCorpusExpectations runs every corpus test on every machine and checks
// each asserted reachability verdict. This is the repository's empirical
// Figure-1 reproduction: the Dekker violation must be reachable on exactly
// the relaxed configurations the paper lists, and impossible under SC.
func TestCorpusExpectations(t *testing.T) {
	for _, tst := range Corpus() {
		for _, f := range Factories() {
			tst, f := tst, f
			t.Run(tst.Name+"/"+f.Name, func(t *testing.T) {
				o, err := Run(tst, f, nil)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if !o.OK() {
					t.Errorf("%s on %s: observed reachable=%v, want %v (%s)",
						tst.Name, f.Name, o.Observed, o.Expected, o.Stats)
				}
			})
		}
	}
}

// TestCorpusDRF0Flags verifies each corpus test's recorded DRF0 flag against
// the actual Definition-3 check over all idealized executions.
func TestCorpusDRF0Flags(t *testing.T) {
	for _, tst := range Corpus() {
		tst := tst
		t.Run(tst.Name, func(t *testing.T) {
			// Spin loops make the execution set infinite; enumerate all
			// idealized executions up to a length bound (every corpus race
			// already manifests in short executions; the longest minimal
			// complete run in the corpus is 8 operations).
			enum := &model.Enumerator{Prog: tst.Prog, Explorer: &model.Explorer{MaxTraceOps: 14}}
			rep, err := core.CheckProgram(enum, core.DRF0{}, 1)
			if err != nil {
				t.Fatalf("CheckProgram: %v", err)
			}
			if rep.Obeys() != tst.DRF0 {
				t.Errorf("%s: DRF0 check says obeys=%v, corpus says %v (%s)",
					tst.Name, rep.Obeys(), tst.DRF0, rep)
			}
		})
	}
}

// TestFigure2 checks the two Figure-2 executions: (a) obeys DRF0, (b) has
// exactly the two race clusters the caption describes.
func TestFigure2(t *testing.T) {
	repA, err := core.CheckExecution(Figure2a(), core.DRF0{})
	if err != nil {
		t.Fatalf("figure 2a: %v", err)
	}
	if !repA.Free() {
		t.Errorf("figure 2a should obey DRF0; got %s", repA)
	}
	repB, err := core.CheckExecution(Figure2b(), core.DRF0{})
	if err != nil {
		t.Fatalf("figure 2b: %v", err)
	}
	if repB.Free() {
		t.Fatalf("figure 2b should violate DRF0")
	}
	// Expect races on x between P0 and P1 (two pairs: R/W and W/W) and on y
	// between P4 and both P2's write and P3's read.
	onX, onY := 0, 0
	for _, r := range repB.Races {
		switch r.A.Addr {
		case figX:
			onX++
		case figY:
			onY++
		}
	}
	if onX != 2 || onY != 2 {
		t.Errorf("figure 2b races: got %d on x, %d on y, want 2 and 2: %s", onX, onY, repB)
	}
	// Figure 2a should also satisfy Lemma 1's read-value condition.
	ord, err := core.BuildOrders(Figure2a(), core.DRF0{})
	if err != nil {
		t.Fatalf("orders: %v", err)
	}
	if l1 := core.CheckLemma1(ord, nil); !l1.OK() {
		t.Errorf("figure 2a should satisfy Lemma 1: %s", l1)
	}
}

// TestFigure2aUnderDRF1 checks that the reconstruction also obeys the
// Section-6 refined model (its releases are all sync writes or RMWs).
func TestFigure2aUnderDRF1(t *testing.T) {
	rep, err := core.CheckExecution(Figure2a(), core.DRF1{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Free() {
		t.Errorf("figure 2a should obey DRF1: %s", rep)
	}
}
