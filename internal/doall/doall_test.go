package doall

import (
	"strings"
	"testing"

	"weakorder/internal/core"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/model"
	"weakorder/internal/proc"
	"weakorder/internal/workload"
)

func bar() Barrier {
	c, s := workload.DoAllBarrier()
	return Barrier{Counter: c, Sense: s}
}

// buildExec constructs a synthetic execution with explicit phases.
func buildExec(events ...mem.Access) *mem.Execution {
	e := mem.NewExecution(2)
	for _, a := range events {
		e.Append(a)
	}
	return e
}

func TestCleanPhasedExecution(t *testing.T) {
	c, s := workload.DoAllBarrier()
	e := buildExec(
		// Phase 0: disjoint writes.
		mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 10, Value: 1},
		mem.Access{Proc: 1, Op: mem.OpWrite, Addr: 11, Value: 2},
		// Barrier arrivals.
		mem.Access{Proc: 0, Op: mem.OpSyncRMW, Addr: c, Value: 0, WValue: 1},
		mem.Access{Proc: 1, Op: mem.OpSyncRMW, Addr: c, Value: 1, WValue: 2},
		mem.Access{Proc: 1, Op: mem.OpSyncWrite, Addr: s, Value: 1},
		// Phase 1: cross reads of phase-0 writes.
		mem.Access{Proc: 0, Op: mem.OpRead, Addr: 11, Value: 2},
		mem.Access{Proc: 1, Op: mem.OpRead, Addr: 10, Value: 1},
	)
	rep, err := Check(e, bar())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean phased execution flagged: %s", rep)
	}
	if rep.Phases != 2 {
		t.Errorf("phases = %d, want 2", rep.Phases)
	}
	if rep.Accesses != 4 {
		t.Errorf("accesses = %d, want 4", rep.Accesses)
	}
}

func TestIntraPhaseConflictFlagged(t *testing.T) {
	e := buildExec(
		mem.Access{Proc: 0, Op: mem.OpWrite, Addr: 10, Value: 1},
		mem.Access{Proc: 1, Op: mem.OpRead, Addr: 10, Value: 1}, // same phase!
	)
	rep, err := Check(e, bar())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("intra-phase conflict accepted")
	}
	if !strings.Contains(rep.String(), "phase 0") {
		t.Errorf("report: %s", rep)
	}
}

func TestReadSharingWithinPhaseAllowed(t *testing.T) {
	e := buildExec(
		mem.Access{Proc: 0, Op: mem.OpRead, Addr: 10, Value: 0},
		mem.Access{Proc: 1, Op: mem.OpRead, Addr: 10, Value: 0},
	)
	rep, err := Check(e, bar())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("read sharing flagged: %s", rep)
	}
}

// TestDoAllWorkloadDisciplined runs the double-buffered stencil on the timed
// machine and checks its trace against the phase discipline (and SC).
func TestDoAllWorkloadDisciplined(t *testing.T) {
	p := workload.DoAll(3, 3, false)
	cfg := machine.NewConfig(proc.PolicyWODef2)
	cfg.RecordTrace = true
	res, err := machine.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(res.Trace, bar())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("disciplined stencil flagged: %s", rep)
	}
	if rep.Phases != 4 {
		// 3 barrier episodes -> phases 0..3 (the final stores land in
		// phase 3).
		t.Errorf("phases = %d, want 4", rep.Phases)
	}
	w, err := core.SCCheck(res.Trace, p.Init)
	if err != nil {
		t.Fatal(err)
	}
	if !w.SC {
		t.Error("stencil trace not SC")
	}
}

// TestDoAllSkewedViolates: the same-phase neighbor read breaks the
// discipline, and the timed trace shows it.
func TestDoAllSkewedViolates(t *testing.T) {
	p := workload.DoAll(3, 2, true)
	cfg := machine.NewConfig(proc.PolicyWODef2)
	cfg.RecordTrace = true
	res, err := machine.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(res.Trace, bar())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("skewed stencil passed the phase discipline")
	}
}

// TestDoAllIsDRF0 confirms the disciplined version also obeys DRF0 at the
// whole-program level (bounded enumeration), tying the paradigm back to
// Definition 3.
func TestDoAllIsDRF0(t *testing.T) {
	p := workload.DoAll(2, 1, false)
	enum := &model.Enumerator{Prog: p, Explorer: &model.Explorer{MaxTraceOps: 18}}
	rep, err := core.CheckProgram(enum, core.DRF0{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Obeys() {
		t.Errorf("disciplined do-all should obey DRF0: %s", rep)
	}
}

// TestDoAllDeterministicResult: the stencil's carried values are data-flow
// deterministic under the discipline; every policy must agree.
func TestDoAllDeterministicResult(t *testing.T) {
	p := workload.DoAll(3, 3, false)
	var want []mem.Value
	for _, pol := range []proc.Policy{proc.PolicySC, proc.PolicyWODef1, proc.PolicyWODef2, proc.PolicyWODef2DRF1} {
		res, err := machine.Run(p, machine.NewConfig(pol))
		if err != nil {
			t.Fatal(err)
		}
		var got []mem.Value
		for tid := 0; tid < 3; tid++ {
			got = append(got, res.FinalMem[workload.DoAllResult(3, tid)])
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: result[%d] = %d, want %d", pol, i, got[i], want[i])
			}
		}
	}
	for i, v := range want {
		if v == 0 {
			t.Errorf("result[%d] is zero; the stencil did not run", i)
		}
	}
}
