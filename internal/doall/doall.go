// Package doall implements the phase-discipline checker for the second
// specialized synchronization model the paper's conclusion proposes:
// "parallelism only from do-all loops". In that paradigm execution alternates
// between parallel phases separated by barriers; a program is race-free iff
// no two threads conflict on a location *within* one phase (cross-phase
// conflicts are ordered by the barrier).
//
// The checker segments each thread's accesses into phases by counting its
// barrier arrivals — synchronization read-modify-writes on the designated
// barrier counter — and flags any intra-phase cross-thread conflict on a data
// location. Barrier-infrastructure accesses (the counter and sense flag) are
// exempt, as is phase 0 sharing of read-only data initialized before the
// parallel region.
package doall

import (
	"fmt"
	"strings"

	"weakorder/internal/mem"
)

// Barrier designates the locations implementing the barrier.
type Barrier struct {
	// Counter is the arrival counter (FetchAdd target): a sync RMW on it
	// advances the issuing thread to its next phase.
	Counter mem.Addr
	// Sense is the release flag waiters spin on; accesses to it are exempt
	// from conflict checking.
	Sense mem.Addr
}

// Violation is one intra-phase cross-thread conflict.
type Violation struct {
	Phase int
	A, B  mem.Event
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("phase %d: %s conflicts with %s", v.Phase, v.A.Access, v.B.Access)
}

// Report is the verdict for one execution.
type Report struct {
	Phases     int // highest phase index observed + 1
	Accesses   int // data accesses checked
	Violations []Violation
}

// OK reports whether the execution obeys the do-all discipline.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// String implements fmt.Stringer.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("do-all discipline holds: %d data accesses across %d phase(s)", r.Accesses, r.Phases)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "do-all discipline violated (%d phases):\n", r.Phases)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return strings.TrimRight(b.String(), "\n")
}

// access is one data access tagged with its thread's phase.
type access struct {
	ev    mem.Event
	phase int
}

// Check validates an execution against the do-all discipline. The execution
// may come from any machine; only program order per thread matters, so no
// completion order is required.
func Check(e *mem.Execution, bar Barrier) (*Report, error) {
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("doall: %w", err)
	}
	rep := &Report{}
	phase := make(map[mem.ProcID]int)
	// Walk in program order per thread.
	byLoc := make(map[mem.Addr][]access)
	for _, ids := range e.ByProc() {
		for _, id := range ids {
			ev := e.Event(id)
			if ev.Op.IsSync() {
				if ev.Op == mem.OpSyncRMW && ev.Addr == bar.Counter {
					phase[ev.Proc]++
					if phase[ev.Proc]+1 > rep.Phases {
						rep.Phases = phase[ev.Proc] + 1
					}
				}
				continue
			}
			if ev.Addr == bar.Counter || ev.Addr == bar.Sense {
				continue // barrier infrastructure
			}
			rep.Accesses++
			byLoc[ev.Addr] = append(byLoc[ev.Addr], access{ev: ev, phase: phase[ev.Proc]})
		}
	}
	if rep.Phases == 0 {
		rep.Phases = 1
	}
	for _, accs := range byLoc {
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				a, b := accs[i], accs[j]
				if a.phase != b.phase || a.ev.Proc == b.ev.Proc {
					continue
				}
				if !mem.Conflicts(a.ev.Op, b.ev.Op) {
					continue
				}
				rep.Violations = append(rep.Violations, Violation{Phase: a.phase, A: a.ev, B: b.ev})
			}
		}
	}
	return rep, nil
}
