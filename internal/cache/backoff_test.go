package cache

import (
	"errors"
	"testing"

	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
	"weakorder/internal/sim"
)

// TestBackoffClamp pins the clamped exponential-backoff schedule. The
// regression: the old `retryTimeout << uint(attempts)` shifted unbounded, so
// attempt counts past ~55 drove the delay through the int64 sign bit and the
// engine panicked scheduling an event in the past.
func TestBackoffClamp(t *testing.T) {
	cases := []struct {
		timeout  sim.Time
		attempts int
		want     sim.Time
	}{
		{0, 5, 0},                                    // retries disabled
		{-3, 5, 0},                                   // nonsense timeout
		{100, 0, 100},                                // first attempt: base timeout
		{100, 3, 800},                                // doubling below the clamp
		{100, maxBackoffShift, 100 << maxBackoffShift}, // at the clamp
		{100, maxBackoffShift + 1, 100 << maxBackoffShift},
		{100, 63, 100 << maxBackoffShift},  // old code: negative delay, panic
		{100, 200, 100 << maxBackoffShift}, // old code: shift >= 64, zero delay
		{100, -1, 100},                     // defensive: treat as attempt 0
		{maxBackoffTotal + 1, 0, maxBackoffTotal},
		{maxBackoffTotal / 2, 5, maxBackoffTotal}, // product saturates
	}
	for _, tc := range cases {
		got := backoffFor(tc.timeout, tc.attempts)
		if got != tc.want {
			t.Errorf("backoffFor(%d, %d) = %d, want %d", tc.timeout, tc.attempts, got, tc.want)
		}
		if got < 0 {
			t.Errorf("backoffFor(%d, %d) went negative", tc.timeout, tc.attempts)
		}
	}
}

// TestBackoffBudget checks the watchdog-grace derivation: the sum of every
// clamped backoff across the retry budget, monotone in the limit, saturating
// instead of overflowing.
func TestBackoffBudget(t *testing.T) {
	if got := BackoffBudget(0, 8); got != 0 {
		t.Errorf("budget with retries disabled = %d", got)
	}
	// limit 2 => attempts 0..3: 100+200+400+800.
	if got := BackoffBudget(100, 2); got != 1500 {
		t.Errorf("BackoffBudget(100, 2) = %d, want 1500", got)
	}
	small, large := BackoffBudget(100, 4), BackoffBudget(100, 8)
	if small >= large {
		t.Errorf("budget not monotone: limit 4 -> %d, limit 8 -> %d", small, large)
	}
	if got := BackoffBudget(100, 10_000); got <= 0 || got > maxBackoffTotal {
		t.Errorf("deep budget out of range: %d", got)
	}
	if got := BackoffBudget(100, 500_000); got != maxBackoffTotal {
		t.Errorf("huge budget should saturate at %d, got %d", maxBackoffTotal, got)
	}
	if got := BackoffBudget(maxBackoffTotal, 10_000); got != maxBackoffTotal {
		t.Errorf("huge timeout should saturate at %d, got %d", maxBackoffTotal, got)
	}
}

// TestRetryHighAttemptsNoOverflow drives a cache transaction through a deep
// retry schedule: the directory endpoint is replaced by a sink that drops
// every request, the retry limit is far beyond the overflow threshold, and
// the time budget is opened wide so the exponential schedule actually runs.
// With the unclamped shift this panicked ("sim: schedule at ... before now")
// around attempt 57; now the run must end in a clean ErrRetryExhausted.
func TestRetryHighAttemptsNoOverflow(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("retry schedule panicked: %v", r)
		}
	}()
	engine := sim.NewEngine(0, 0) // no time/event budget: let the schedule run
	net := interconnect.NewNetwork(engine, 1, 0, nil, true)
	net.Attach(1, blackhole{}) // the "directory" silently eats every request
	c := New(0, engine, net, 1, 1)
	c.SetRetry(128, 100)
	fired := false
	c.AcquireShared(2, false, func(v mem.Value) { fired = true })
	err := engine.Run(nil)
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("err = %v, want ErrRetryExhausted", err)
	}
	if fired {
		t.Error("read completed although every request was dropped")
	}
}

// blackhole is an endpoint that drops everything it receives.
type blackhole struct{}

func (blackhole) Deliver(interconnect.NodeID, interconnect.Message) {}
