package cache

import (
	"fmt"
	"sort"

	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
)

// dirLine is the directory's view of one line: exclusive owner or sharer set,
// the memory value, and a per-line transaction queue (the directory processes
// one transaction per line at a time, queueing the rest in arrival order).
type dirLine struct {
	owner   interconnect.NodeID // -1 when none
	sharers map[interconnect.NodeID]bool
	value   mem.Value
	busy    bool
	queue   []queuedReq
	// epoch numbers this line's transactions; it increments when one opens
	// and is stamped on every message the transaction emits, so stale
	// (duplicated or delayed) acknowledgements and forwards identify
	// themselves by carrying a closed epoch.
	epoch uint64
	// pendingFrom is the set of nodes whose InvAck/UpdateAck the in-flight
	// transaction still awaits. A set, not a counter: a duplicated ack from
	// a node already accounted for cannot decrement twice.
	pendingFrom map[interconnect.NodeID]bool
	requester   interconnect.NodeID
	// curSrc/curSeq identify the request that opened the in-flight
	// transaction, and seen records the highest request seq ever opened per
	// source, so a fabric-duplicated request (same src and seq) is ignored
	// rather than re-processed — re-processing a completed GetX could steal
	// ownership from its rightful current holder.
	curSrc interconnect.NodeID
	curSeq uint64
	seen   map[interconnect.NodeID]uint64
	// busySince is when the in-flight transaction opened (watchdog input).
	busySince sim.Time
}

type queuedReq struct {
	src interconnect.NodeID
	msg Msg
}

// DirShard is one home node: a full-map directory plus backing memory for
// the slice of the address space it owns. A single-shard machine gives it the
// whole address space; NewShardedDirectory composes several over an address
// partition. Either way it is the complete, unmodified protocol engine — the
// sharding layer above it only routes.
type DirShard struct {
	ID     interconnect.NodeID
	engine *sim.Engine
	fabric interconnect.Fabric
	memLat sim.Time
	lines  map[mem.Addr]*dirLine
	Stats  *stats.Counters

	// Hot-path counter handles (see stats.Hot).
	hGets, hGetx, hQueued stats.Hot

	// lenient tolerates messages explainable as fabric faults (see
	// Cache.SetLenient); strict mode raises ErrProtocol for them.
	lenient bool
	// queueLimit bounds the per-line request queue; requests beyond it are
	// NACKed so the requester backs off and retries. Zero (the default)
	// keeps the legacy unbounded queue and never NACKs.
	queueLimit int
	// Watchdog: while any line is busy, a recurring check every wdInterval
	// cycles fails the run with ErrWatchdog if a transaction has been open
	// longer than wdTimeout (plus wdGrace, see SetWatchdogGrace). Armed
	// lazily so an idle directory schedules no events and the engine's queue
	// still drains.
	wdInterval sim.Time
	wdTimeout  sim.Time
	wdGrace    sim.Time
	wdArmed    bool

	// occ is the request-occupancy histogram: each arriving request is
	// bucketed by how many transactions for its line were already open or
	// queued (the last bucket absorbs the tail). Kept per shard so hot-shard
	// contention is directly visible in capacity studies.
	occ [occBuckets]uint64

	// rec, when non-nil, receives per-line transaction occupancy spans.
	rec *metrics.Recorder
}

// NewDirectory builds the directory/memory controller. init supplies initial
// memory contents; memLat is the lookup latency applied to each request it
// processes.
func NewDirectory(id interconnect.NodeID, engine *sim.Engine, fabric interconnect.Fabric, memLat sim.Time, init map[mem.Addr]mem.Value) *DirShard {
	if memLat < 1 {
		memLat = 1
	}
	d := &DirShard{
		ID:     id,
		engine: engine,
		fabric: fabric,
		memLat: memLat,
		lines:  make(map[mem.Addr]*dirLine),
		Stats:  stats.NewCounters(),
	}
	for a, v := range init {
		d.lines[a] = d.newLine(v)
	}
	fabric.Attach(id, d)
	return d
}

// SetLenient switches the directory into fault-tolerant mode (see
// Cache.SetLenient).
func (d *DirShard) SetLenient(on bool) { d.lenient = on }

// SetQueueLimit bounds the per-line request queue to n entries; further
// requests are NACKed. Zero restores the unbounded legacy behaviour.
func (d *DirShard) SetQueueLimit(n int) { d.queueLimit = n }

// EnableWatchdog arms the transaction watchdog: every interval cycles (while
// any line is busy) it checks for a transaction open longer than timeout and
// fails the run with ErrWatchdog — a lost message with no recovery path.
func (d *DirShard) EnableWatchdog(interval, timeout sim.Time) {
	if interval < 1 {
		interval = 1
	}
	d.wdInterval = interval
	d.wdTimeout = timeout
}

// SetWatchdogGrace extends the watchdog deadline by grace cycles. A
// transaction can be open, through no fault of its own, while its requester
// (or the owner servicing a routed request) legitimately sleeps through its
// retransmission backoff schedule — the watchdog deadline must cover the
// worst-case remaining backoff (cache.BackoffBudget) on top of the
// lost-message timeout, or heavy-but-survivable fault rates raise spurious
// ErrWatchdog failures.
func (d *DirShard) SetWatchdogGrace(grace sim.Time) {
	if grace < 0 {
		grace = 0
	}
	d.wdGrace = grace
}

// SetMetrics attaches a cycle-observability recorder (nil to detach).
func (d *DirShard) SetMetrics(rec *metrics.Recorder) { d.rec = rec }

// fail aborts the simulation with a ProtocolError detected by the directory.
func (d *DirShard) fail(kind error, format string, args ...interface{}) {
	d.engine.Fail(&ProtocolError{
		Node: d.ID, Dir: true, Cycle: d.engine.Now(),
		Reason: fmt.Sprintf(format, args...), Kind: kind,
	})
}

// failMsg aborts the simulation with a message-triggered ProtocolError.
func (d *DirShard) failMsg(src interconnect.NodeID, msg Msg, format string, args ...interface{}) {
	d.engine.Fail(&ProtocolError{
		Node: d.ID, Dir: true, Cycle: d.engine.Now(), Msg: msg, HasMsg: true, From: src,
		Reason: fmt.Sprintf(format, args...),
	})
}

// tolerate mirrors Cache.tolerate for the directory side.
func (d *DirShard) tolerate(stat string, src interconnect.NodeID, msg Msg, format string, args ...interface{}) bool {
	if d.lenient {
		d.Stats.Add("tolerated_"+stat, 1)
		return true
	}
	d.failMsg(src, msg, format, args...)
	return false
}

func (d *DirShard) newLine(v mem.Value) *dirLine {
	return &dirLine{
		owner:       -1,
		sharers:     make(map[interconnect.NodeID]bool),
		value:       v,
		pendingFrom: make(map[interconnect.NodeID]bool),
		seen:        make(map[interconnect.NodeID]uint64),
	}
}

func (d *DirShard) line(a mem.Addr) *dirLine {
	l := d.lines[a]
	if l == nil {
		l = d.newLine(0)
		d.lines[a] = l
	}
	return l
}

// dupRequest reports whether the request is a fabric duplicate of one the
// directory already opened, is processing, or has queued. Untagged requests
// (Seq 0, from hand-crafted tests) are never deduplicated.
func (d *DirShard) dupRequest(l *dirLine, src interconnect.NodeID, msg Msg) bool {
	if msg.Seq == 0 {
		return false
	}
	if l.seen[src] >= msg.Seq {
		return true
	}
	if l.busy && l.curSrc == src && l.curSeq == msg.Seq {
		return true
	}
	for _, q := range l.queue {
		if q.src == src && q.msg.Seq == msg.Seq {
			return true
		}
	}
	return false
}

// open starts a transaction: the line goes busy, the epoch advances, and the
// request is remembered for duplicate suppression and the watchdog.
func (d *DirShard) open(l *dirLine, src interconnect.NodeID, msg Msg) {
	l.busy = true
	l.epoch++
	l.curSrc = src
	l.curSeq = msg.Seq
	l.busySince = d.engine.Now()
	if msg.Seq > l.seen[src] {
		l.seen[src] = msg.Seq
	}
	if d.rec.Enabled() {
		d.rec.DirOpen(msg.Addr, fmt.Sprintf("%s P%d", msg.Kind, src))
	}
	d.armWatchdog()
	d.engine.After(d.memLat, func() { d.process(l, src, msg) })
}

// closeTxn ends the line's in-flight transaction.
func (d *DirShard) closeTxn(a mem.Addr, l *dirLine) {
	l.busy = false
	d.rec.DirClosed(a)
}

// Deliver implements interconnect.Endpoint.
func (d *DirShard) Deliver(src interconnect.NodeID, m interconnect.Message) {
	if d.engine.Failed() != nil {
		return
	}
	msg, ok := m.(Msg)
	if !ok {
		d.engine.Fail(&ProtocolError{
			Node: d.ID, Dir: true, Cycle: d.engine.Now(),
			Reason: fmt.Sprintf("non-protocol message %T", m),
		})
		return
	}
	switch msg.Kind {
	case MsgGetS, MsgGetX, MsgUpdateReq:
		l := d.line(msg.Addr)
		if d.dupRequest(l, src, msg) {
			d.Stats.Add("tolerated_dup_request", 1)
			return
		}
		depth := 0
		if l.busy {
			depth = 1 + len(l.queue)
		}
		if depth >= occBuckets {
			depth = occBuckets - 1
		}
		d.occ[depth]++
		if l.busy {
			if d.queueLimit > 0 && len(l.queue) >= d.queueLimit {
				d.Stats.Add("nacks_sent", 1)
				d.fabric.Send(d.ID, src, Msg{Kind: MsgNack, Addr: msg.Addr, Seq: msg.Seq})
				return
			}
			l.queue = append(l.queue, queuedReq{src, msg})
			d.hQueued.Add(d.Stats, "queued_requests", 1)
			return
		}
		d.open(l, src, msg)
	case MsgInvAck, MsgUpdateAck:
		d.onAck(src, msg)
	case MsgDowngrade:
		d.onDowngrade(src, msg)
	case MsgTransfer:
		d.onTransfer(src, msg)
	default:
		d.failMsg(src, msg, "unexpected %s", msg.Kind)
	}
}

// process starts a transaction for a line previously opened by open().
func (d *DirShard) process(l *dirLine, src interconnect.NodeID, msg Msg) {
	if d.engine.Failed() != nil {
		return
	}
	switch msg.Kind {
	case MsgGetS:
		d.hGets.Add(d.Stats, "gets", 1)
		if l.owner >= 0 && l.owner != src {
			// Route to the exclusive owner (the paper's "the next request
			// for it will be routed to Pi"). The line stays busy until the
			// owner's Downgrade arrives.
			l.requester = src
			d.fabric.Send(d.ID, l.owner, Msg{Kind: MsgFwdS, Addr: msg.Addr, Requester: src, Sync: msg.Sync, Seq: msg.Seq, Epoch: l.epoch})
			return
		}
		if l.owner == src {
			// The recorded owner re-reading its own line cannot happen
			// fault-free (it would hit locally); re-grant for robustness.
			d.closeTxn(msg.Addr, l)
			d.fabric.Send(d.ID, src, Msg{Kind: MsgData, Addr: msg.Addr, Value: l.value, Excl: true, Performed: true, Seq: msg.Seq, Epoch: l.epoch})
			d.drain(l)
			return
		}
		l.sharers[src] = true
		d.closeTxn(msg.Addr, l)
		d.fabric.Send(d.ID, src, Msg{Kind: MsgData, Addr: msg.Addr, Value: l.value, Performed: true, Seq: msg.Seq, Epoch: l.epoch})
		d.drain(l)
	case MsgGetX:
		d.hGetx.Add(d.Stats, "getx", 1)
		if l.owner >= 0 && l.owner != src {
			d.fabric.Send(d.ID, l.owner, Msg{Kind: MsgFwdX, Addr: msg.Addr, Requester: src, Sync: msg.Sync, Seq: msg.Seq, Epoch: l.epoch})
			l.requester = src
			return
		}
		if l.owner == src {
			// The owner re-requesting exclusivity cannot happen without
			// evictions; treat as immediate re-grant for robustness.
			d.closeTxn(msg.Addr, l)
			d.fabric.Send(d.ID, src, Msg{Kind: MsgData, Addr: msg.Addr, Value: l.value, Excl: true, Performed: true, Seq: msg.Seq, Epoch: l.epoch})
			d.drain(l)
			return
		}
		// Invalidate sharers (if any); forward the line to the requester in
		// parallel, per the paper's protocol.
		targets := make([]interconnect.NodeID, 0, len(l.sharers))
		for s := range l.sharers {
			if s != src {
				targets = append(targets, s)
			}
		}
		sortNodes(targets)
		l.sharers = make(map[interconnect.NodeID]bool)
		l.owner = src
		if len(targets) == 0 {
			d.closeTxn(msg.Addr, l)
			d.fabric.Send(d.ID, src, Msg{Kind: MsgData, Addr: msg.Addr, Value: l.value, Excl: true, Performed: true, Seq: msg.Seq, Epoch: l.epoch})
			d.drain(l)
			return
		}
		l.pendingFrom = make(map[interconnect.NodeID]bool, len(targets))
		for _, t := range targets {
			l.pendingFrom[t] = true
		}
		l.requester = src
		d.fabric.Send(d.ID, src, Msg{Kind: MsgData, Addr: msg.Addr, Value: l.value, Excl: true, Performed: false, Seq: msg.Seq, Epoch: l.epoch})
		for _, t := range targets {
			d.fabric.Send(d.ID, t, Msg{Kind: MsgInv, Addr: msg.Addr, Epoch: l.epoch})
		}
	case MsgUpdateReq:
		// Write-update data path: memory takes the value; every other
		// holder of a copy receives it; the writer is acked once all have
		// acknowledged (its write is then globally performed).
		d.Stats.Add("updates", 1)
		l.value = msg.Value
		targets := make([]interconnect.NodeID, 0, len(l.sharers)+1)
		for s := range l.sharers {
			if s != src {
				targets = append(targets, s)
			}
		}
		if l.owner >= 0 && l.owner != src {
			targets = append(targets, l.owner)
		}
		sortNodes(targets)
		if len(targets) == 0 {
			d.closeTxn(msg.Addr, l)
			d.fabric.Send(d.ID, src, Msg{Kind: MsgWriteAck, Addr: msg.Addr, Seq: msg.Seq, Epoch: l.epoch})
			d.drain(l)
			return
		}
		l.pendingFrom = make(map[interconnect.NodeID]bool, len(targets))
		for _, t := range targets {
			l.pendingFrom[t] = true
		}
		l.requester = src
		for _, t := range targets {
			d.fabric.Send(d.ID, t, Msg{Kind: MsgUpdate, Addr: msg.Addr, Value: msg.Value, Epoch: l.epoch})
		}
	default:
		d.failMsg(src, msg, "process %s", msg.Kind)
	}
}

// onAck collects InvAck/UpdateAck for the in-flight transaction. Duplicated
// acks are idempotent: each pending node is crossed off a set at most once,
// so the completion condition can never be reached early by double-counting.
func (d *DirShard) onAck(src interconnect.NodeID, msg Msg) {
	l := d.line(msg.Addr)
	if !l.busy || len(l.pendingFrom) == 0 {
		d.tolerate("stray_ack", src, msg, "stray %s for x%d", msg.Kind, msg.Addr)
		return
	}
	if msg.Epoch != 0 && msg.Epoch != l.epoch {
		d.tolerate("stale_ack", src, msg, "%s for x%d from a closed epoch (current %d)", msg.Kind, msg.Addr, l.epoch)
		return
	}
	if !l.pendingFrom[src] {
		d.tolerate("dup_ack", src, msg, "%s for x%d from node %d not pending", msg.Kind, msg.Addr, src)
		return
	}
	delete(l.pendingFrom, src)
	if len(l.pendingFrom) == 0 {
		// "When the directory receives all the acks pertaining to a
		// particular write, it sends its ack to the processor cache that
		// issued the write."
		d.fabric.Send(d.ID, l.requester, Msg{Kind: MsgWriteAck, Addr: msg.Addr, Seq: l.curSeq, Epoch: l.epoch})
		d.closeTxn(msg.Addr, l)
		d.drain(l)
	}
}

func (d *DirShard) onDowngrade(src interconnect.NodeID, msg Msg) {
	l := d.line(msg.Addr)
	if !l.busy || l.owner < 0 {
		d.tolerate("stray_downgrade", src, msg, "stray Downgrade for x%d", msg.Addr)
		return
	}
	if msg.Epoch != 0 && msg.Epoch != l.epoch {
		d.tolerate("stale_downgrade", src, msg, "Downgrade for x%d from a closed epoch (current %d)", msg.Addr, l.epoch)
		return
	}
	l.value = msg.Value
	// Both the downgraded old owner and the requester (supplied directly by
	// the old owner) now hold shared copies.
	l.sharers[l.owner] = true
	l.sharers[l.requester] = true
	l.owner = -1
	d.closeTxn(msg.Addr, l)
	d.drain(l)
}

func (d *DirShard) onTransfer(src interconnect.NodeID, msg Msg) {
	l := d.line(msg.Addr)
	if !l.busy || l.owner < 0 {
		d.tolerate("stray_transfer", src, msg, "stray Transfer for x%d", msg.Addr)
		return
	}
	if msg.Epoch != 0 && msg.Epoch != l.epoch {
		d.tolerate("stale_transfer", src, msg, "Transfer for x%d from a closed epoch (current %d)", msg.Addr, l.epoch)
		return
	}
	l.value = msg.Value
	l.owner = l.requester
	d.closeTxn(msg.Addr, l)
	d.drain(l)
}

// sortNodes orders a multicast target list. The sharer set is a map, so
// without the sort the send order — and with it the per-message jitter draw
// and bus occupancy slots — would vary run to run on identical configs.
func sortNodes(ns []interconnect.NodeID) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}

// drain processes the next queued request for the line, if any.
func (d *DirShard) drain(l *dirLine) {
	if l.busy || len(l.queue) == 0 {
		return
	}
	q := l.queue[0]
	l.queue = l.queue[1:]
	d.open(l, q.src, q.msg)
}

// armWatchdog schedules the next watchdog check unless one is already
// pending or the watchdog is disabled.
func (d *DirShard) armWatchdog() {
	if d.wdInterval <= 0 || d.wdArmed {
		return
	}
	d.wdArmed = true
	d.engine.After(d.wdInterval, d.watchdogTick)
}

// watchdogTick fails the run if a transaction overstayed its timeout, and
// re-arms only while some line is still busy — so an idle machine's event
// queue drains and Run terminates normally.
func (d *DirShard) watchdogTick() {
	d.wdArmed = false
	if d.engine.Failed() != nil {
		return
	}
	now := d.engine.Now()
	var expired *dirLine
	var expiredAddr mem.Addr
	anyBusy := false
	for a, l := range d.lines {
		if !l.busy {
			continue
		}
		anyBusy = true
		if now-l.busySince >= d.wdTimeout+d.wdGrace && (expired == nil || a < expiredAddr) {
			expired, expiredAddr = l, a
		}
	}
	if expired != nil {
		d.fail(ErrWatchdog, "transaction for x%d (from node %d, seq %d, epoch %d) busy since cycle %d",
			expiredAddr, expired.curSrc, expired.curSeq, expired.epoch, expired.busySince)
		return
	}
	if anyBusy {
		d.armWatchdog()
	}
}

// MemValue returns the directory's memory value for final-state collection.
func (d *DirShard) MemValue(a mem.Addr) (mem.Value, bool) {
	l := d.lines[a]
	if l == nil {
		return 0, false
	}
	return l.value, true
}

// Owner returns the current exclusive owner of a line (-1 none).
func (d *DirShard) Owner(a mem.Addr) interconnect.NodeID {
	l := d.lines[a]
	if l == nil {
		return -1
	}
	return l.owner
}

// occBuckets is the request-occupancy histogram width (see the occ field).
const occBuckets = 8

// Counters implements Directory: a lone shard's aggregate is its own bag.
func (d *DirShard) Counters() *stats.Counters { return d.Stats }

// ShardCounters implements Directory.
func (d *DirShard) ShardCounters() []*stats.Counters { return []*stats.Counters{d.Stats} }

// Shards implements Directory.
func (d *DirShard) Shards() int { return 1 }

// Occupancy implements Directory: one histogram per shard.
func (d *DirShard) Occupancy() [][]uint64 {
	h := make([]uint64, occBuckets)
	copy(h, d.occ[:])
	return [][]uint64{h}
}
