package cache

import (
	"fmt"

	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
)

// dirLine is the directory's view of one line: exclusive owner or sharer set,
// the memory value, and a per-line transaction queue (the directory processes
// one transaction per line at a time, queueing the rest in arrival order).
type dirLine struct {
	owner   interconnect.NodeID // -1 when none
	sharers map[interconnect.NodeID]bool
	value   mem.Value
	busy    bool
	queue   []queuedReq
	// invalidation collection for the in-flight GetX
	pendingAcks int
	requester   interconnect.NodeID
}

type queuedReq struct {
	src interconnect.NodeID
	msg Msg
}

// Directory is the home node: full-map directory plus backing memory.
type Directory struct {
	ID     interconnect.NodeID
	engine *sim.Engine
	fabric interconnect.Fabric
	memLat sim.Time
	lines  map[mem.Addr]*dirLine
	Stats  *stats.Counters
}

// NewDirectory builds the directory/memory controller. init supplies initial
// memory contents; memLat is the lookup latency applied to each request it
// processes.
func NewDirectory(id interconnect.NodeID, engine *sim.Engine, fabric interconnect.Fabric, memLat sim.Time, init map[mem.Addr]mem.Value) *Directory {
	if memLat < 1 {
		memLat = 1
	}
	d := &Directory{
		ID:     id,
		engine: engine,
		fabric: fabric,
		memLat: memLat,
		lines:  make(map[mem.Addr]*dirLine),
		Stats:  stats.NewCounters(),
	}
	for a, v := range init {
		d.lines[a] = d.newLine(v)
	}
	fabric.Attach(id, d)
	return d
}

func (d *Directory) newLine(v mem.Value) *dirLine {
	return &dirLine{owner: -1, sharers: make(map[interconnect.NodeID]bool), value: v}
}

func (d *Directory) line(a mem.Addr) *dirLine {
	l := d.lines[a]
	if l == nil {
		l = d.newLine(0)
		d.lines[a] = l
	}
	return l
}

// Deliver implements interconnect.Endpoint.
func (d *Directory) Deliver(src interconnect.NodeID, m interconnect.Message) {
	msg, ok := m.(Msg)
	if !ok {
		panic(fmt.Sprintf("directory: non-protocol message %T", m))
	}
	switch msg.Kind {
	case MsgGetS, MsgGetX, MsgUpdateReq:
		l := d.line(msg.Addr)
		if l.busy {
			l.queue = append(l.queue, queuedReq{src, msg})
			d.Stats.Add("queued_requests", 1)
			return
		}
		d.engine.After(d.memLat, func() { d.process(l, src, msg) })
		l.busy = true
	case MsgInvAck, MsgUpdateAck:
		d.onInvAck(msg)
	case MsgDowngrade:
		d.onDowngrade(src, msg)
	case MsgTransfer:
		d.onTransfer(msg)
	default:
		panic(fmt.Sprintf("directory: unexpected %s", msg.Kind))
	}
}

// process starts a transaction for a line previously marked busy.
func (d *Directory) process(l *dirLine, src interconnect.NodeID, msg Msg) {
	switch msg.Kind {
	case MsgGetS:
		d.Stats.Add("gets", 1)
		if l.owner >= 0 {
			// Route to the exclusive owner (the paper's "the next request
			// for it will be routed to Pi"). The line stays busy until the
			// owner's Downgrade arrives.
			l.requester = src
			d.fabric.Send(d.ID, l.owner, Msg{Kind: MsgFwdS, Addr: msg.Addr, Requester: src, Sync: msg.Sync})
			return
		}
		l.sharers[src] = true
		l.busy = false
		d.fabric.Send(d.ID, src, Msg{Kind: MsgData, Addr: msg.Addr, Value: l.value, Performed: true})
		d.drain(l)
	case MsgGetX:
		d.Stats.Add("getx", 1)
		if l.owner >= 0 && l.owner != src {
			d.fabric.Send(d.ID, l.owner, Msg{Kind: MsgFwdX, Addr: msg.Addr, Requester: src, Sync: msg.Sync})
			l.requester = src
			return
		}
		if l.owner == src {
			// The owner re-requesting exclusivity cannot happen without
			// evictions; treat as immediate re-grant for robustness.
			l.busy = false
			d.fabric.Send(d.ID, src, Msg{Kind: MsgData, Addr: msg.Addr, Value: l.value, Excl: true, Performed: true})
			d.drain(l)
			return
		}
		// Invalidate sharers (if any); forward the line to the requester in
		// parallel, per the paper's protocol.
		targets := make([]interconnect.NodeID, 0, len(l.sharers))
		for s := range l.sharers {
			if s != src {
				targets = append(targets, s)
			}
		}
		l.sharers = make(map[interconnect.NodeID]bool)
		l.owner = src
		if len(targets) == 0 {
			l.busy = false
			d.fabric.Send(d.ID, src, Msg{Kind: MsgData, Addr: msg.Addr, Value: l.value, Excl: true, Performed: true})
			d.drain(l)
			return
		}
		l.pendingAcks = len(targets)
		l.requester = src
		d.fabric.Send(d.ID, src, Msg{Kind: MsgData, Addr: msg.Addr, Value: l.value, Excl: true, Performed: false})
		for _, t := range targets {
			d.fabric.Send(d.ID, t, Msg{Kind: MsgInv, Addr: msg.Addr})
		}
	case MsgUpdateReq:
		// Write-update data path: memory takes the value; every other
		// holder of a copy receives it; the writer is acked once all have
		// acknowledged (its write is then globally performed).
		d.Stats.Add("updates", 1)
		l.value = msg.Value
		targets := make([]interconnect.NodeID, 0, len(l.sharers)+1)
		for s := range l.sharers {
			if s != src {
				targets = append(targets, s)
			}
		}
		if l.owner >= 0 && l.owner != src {
			targets = append(targets, l.owner)
		}
		if len(targets) == 0 {
			l.busy = false
			d.fabric.Send(d.ID, src, Msg{Kind: MsgWriteAck, Addr: msg.Addr})
			d.drain(l)
			return
		}
		l.pendingAcks = len(targets)
		l.requester = src
		for _, t := range targets {
			d.fabric.Send(d.ID, t, Msg{Kind: MsgUpdate, Addr: msg.Addr, Value: msg.Value})
		}
	default:
		panic(fmt.Sprintf("directory: process %s", msg.Kind))
	}
}

func (d *Directory) onInvAck(msg Msg) {
	l := d.line(msg.Addr)
	if !l.busy || l.pendingAcks <= 0 {
		panic(fmt.Sprintf("directory: stray InvAck for x%d", msg.Addr))
	}
	l.pendingAcks--
	if l.pendingAcks == 0 {
		// "When the directory receives all the acks pertaining to a
		// particular write, it sends its ack to the processor cache that
		// issued the write."
		d.fabric.Send(d.ID, l.requester, Msg{Kind: MsgWriteAck, Addr: msg.Addr})
		l.busy = false
		d.drain(l)
	}
}

func (d *Directory) onDowngrade(src interconnect.NodeID, msg Msg) {
	l := d.line(msg.Addr)
	if !l.busy {
		panic(fmt.Sprintf("directory: stray Downgrade for x%d", msg.Addr))
	}
	l.value = msg.Value
	// Both the downgraded old owner and the requester (supplied directly by
	// the old owner) now hold shared copies.
	l.sharers[l.owner] = true
	l.sharers[l.requester] = true
	l.owner = -1
	l.busy = false
	d.drain(l)
}

func (d *Directory) onTransfer(msg Msg) {
	l := d.line(msg.Addr)
	if !l.busy {
		panic(fmt.Sprintf("directory: stray Transfer for x%d", msg.Addr))
	}
	l.value = msg.Value
	l.owner = l.requester
	l.busy = false
	d.drain(l)
}

// drain processes the next queued request for the line, if any.
func (d *Directory) drain(l *dirLine) {
	if l.busy || len(l.queue) == 0 {
		return
	}
	q := l.queue[0]
	l.queue = l.queue[1:]
	l.busy = true
	d.engine.After(d.memLat, func() { d.process(l, q.src, q.msg) })
}

// MemValue returns the directory's memory value for final-state collection.
func (d *Directory) MemValue(a mem.Addr) (mem.Value, bool) {
	l := d.lines[a]
	if l == nil {
		return 0, false
	}
	return l.value, true
}

// Owner returns the current exclusive owner of a line (-1 none).
func (d *Directory) Owner(a mem.Addr) interconnect.NodeID {
	l := d.lines[a]
	if l == nil {
		return -1
	}
	return l.owner
}
