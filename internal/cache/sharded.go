package cache

import (
	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
)

// Directory is the home-side interface the machine composes against: either a
// single *DirShard owning the whole address space or a *ShardedDirectory
// spreading it over several home nodes. Everything behind it is the same
// unmodified protocol engine; the interface only exists so the machine's
// wiring, fault plumbing, and final-state collection are shard-count
// agnostic.
type Directory interface {
	SetLenient(on bool)
	SetQueueLimit(n int)
	EnableWatchdog(interval, timeout sim.Time)
	SetWatchdogGrace(grace sim.Time)
	SetMetrics(rec *metrics.Recorder)
	// MemValue returns the home memory value for final-state collection.
	MemValue(a mem.Addr) (mem.Value, bool)
	// Owner returns the current exclusive owner of a line (-1 none).
	Owner(a mem.Addr) interconnect.NodeID
	// Counters returns the protocol counters aggregated over all shards; for
	// a single shard it is that shard's live bag.
	Counters() *stats.Counters
	// ShardCounters returns each shard's own counter bag, in shard order.
	ShardCounters() []*stats.Counters
	// Shards returns the shard count.
	Shards() int
	// Occupancy returns each shard's request-occupancy histogram.
	Occupancy() [][]uint64
}

// ShardOf is the canonical deterministic address→shard mapping: the address's
// integer value (exactly what AppendKey serializes into state keys) modulo
// the shard count. Every layer — the machine's wiring, the cache's request
// routing, and the partitioning tests — must use this one function, so an
// address has exactly one home shard by construction.
func ShardOf(a mem.Addr, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(uint64(a) % uint64(shards))
}

// ShardedDirectory is N DirShards behind one Directory: shard i sits at
// fabric node base+i and owns every address with ShardOf(a, N) == i. Each
// shard keeps its own request queues, watchdog, stats, and occupancy
// histogram; there is no shared state between shards, so a fault-free
// machine's event stream is independent of the shard count (messages only
// change their destination node, never their content, count, or timing).
type ShardedDirectory struct {
	base   interconnect.NodeID
	shards []*DirShard
}

// NewShardedDirectory builds n shards at fabric nodes base..base+n-1,
// splitting init by ShardOf.
func NewShardedDirectory(base interconnect.NodeID, n int, engine *sim.Engine, fabric interconnect.Fabric, memLat sim.Time, init map[mem.Addr]mem.Value) *ShardedDirectory {
	if n < 1 {
		n = 1
	}
	s := &ShardedDirectory{base: base, shards: make([]*DirShard, n)}
	for i := 0; i < n; i++ {
		sub := make(map[mem.Addr]mem.Value)
		for a, v := range init {
			if ShardOf(a, n) == i {
				sub[a] = v
			}
		}
		s.shards[i] = NewDirectory(base+interconnect.NodeID(i), engine, fabric, memLat, sub)
	}
	return s
}

// Shard returns shard i (for tests poking at per-shard state).
func (s *ShardedDirectory) Shard(i int) *DirShard { return s.shards[i] }

// shardFor routes an address to its home shard.
func (s *ShardedDirectory) shardFor(a mem.Addr) *DirShard {
	return s.shards[ShardOf(a, len(s.shards))]
}

// SetLenient implements Directory.
func (s *ShardedDirectory) SetLenient(on bool) {
	for _, d := range s.shards {
		d.SetLenient(on)
	}
}

// SetQueueLimit implements Directory.
func (s *ShardedDirectory) SetQueueLimit(n int) {
	for _, d := range s.shards {
		d.SetQueueLimit(n)
	}
}

// EnableWatchdog implements Directory: every shard runs its own watchdog over
// its own lines.
func (s *ShardedDirectory) EnableWatchdog(interval, timeout sim.Time) {
	for _, d := range s.shards {
		d.EnableWatchdog(interval, timeout)
	}
}

// SetWatchdogGrace implements Directory.
func (s *ShardedDirectory) SetWatchdogGrace(grace sim.Time) {
	for _, d := range s.shards {
		d.SetWatchdogGrace(grace)
	}
}

// SetMetrics implements Directory.
func (s *ShardedDirectory) SetMetrics(rec *metrics.Recorder) {
	for _, d := range s.shards {
		d.SetMetrics(rec)
	}
}

// MemValue implements Directory.
func (s *ShardedDirectory) MemValue(a mem.Addr) (mem.Value, bool) {
	return s.shardFor(a).MemValue(a)
}

// Owner implements Directory.
func (s *ShardedDirectory) Owner(a mem.Addr) interconnect.NodeID {
	return s.shardFor(a).Owner(a)
}

// Counters implements Directory: a fresh bag merging every shard in shard
// order (deterministic registration order regardless of per-shard traffic).
func (s *ShardedDirectory) Counters() *stats.Counters {
	if len(s.shards) == 1 {
		return s.shards[0].Stats
	}
	agg := stats.NewCounters()
	for _, d := range s.shards {
		agg.Merge(d.Stats)
	}
	return agg
}

// ShardCounters implements Directory.
func (s *ShardedDirectory) ShardCounters() []*stats.Counters {
	out := make([]*stats.Counters, len(s.shards))
	for i, d := range s.shards {
		out[i] = d.Stats
	}
	return out
}

// Shards implements Directory.
func (s *ShardedDirectory) Shards() int { return len(s.shards) }

// Occupancy implements Directory.
func (s *ShardedDirectory) Occupancy() [][]uint64 {
	out := make([][]uint64, len(s.shards))
	for i, d := range s.shards {
		out[i] = d.Occupancy()[0]
	}
	return out
}
