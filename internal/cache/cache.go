package cache

import (
	"fmt"

	"weakorder/internal/interconnect"
	"weakorder/internal/mem"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
)

// LineState is a cache line's coherence state.
type LineState uint8

const (
	// Invalid: no copy.
	Invalid LineState = iota
	// Shared: clean read-only copy; other caches may also hold it.
	Shared
	// Exclusive: the only copy, writable (dirty).
	Exclusive
)

// String implements fmt.Stringer.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	default:
		return "?"
	}
}

// line is one cached line, including the Section-5.3 reserve bit.
type line struct {
	state    LineState
	value    mem.Value
	reserved bool
}

// mshr tracks one outstanding transaction for an address.
type mshr struct {
	exclusive    bool // GetX (else GetS)
	update       bool // UpdateReq (write-update protocol)
	dataArrived  bool
	performed    bool // WriteAck (or Performed Data) received
	invWhilePend bool // an Inv overtook our pending read: don't install
	// updateOverride holds a newer value delivered by a MsgUpdate that
	// overtook our pending fill (non-FIFO fabrics): the fill installs it
	// instead of the stale Data payload.
	updateOverride *mem.Value
	value          mem.Value
	excl           bool
	// onData fires at commit (Data arrival; for reads, value binding).
	onData func(old mem.Value)
	// onPerformed fires at global performance (writes/syncs only).
	onPerformed func()
	// free callbacks waiting for the MSHR to clear.
	onFree []func()
}

// Cache is one processor's cache and weak-ordering bookkeeping.
type Cache struct {
	ID     interconnect.NodeID
	engine *sim.Engine
	fabric interconnect.Fabric
	dir    interconnect.NodeID
	hitLat sim.Time

	lines map[mem.Addr]*line
	mshrs map[mem.Addr]*mshr

	// counter is the paper's outstanding-access counter: incremented on
	// every miss sent, decremented when the transaction's data has arrived
	// (reads) or the access is globally performed (writes/syncs).
	counter       int
	onCounterZero []func()

	// stalledFwds queues remote synchronization requests (forwarded by the
	// directory) that hit a reserved line; they are serviced when the
	// counter reads zero (Section 5.3's stalled-request queue).
	stalledFwds []stalledFwd
	// pendingFwds queues forwards that arrived before our own Data for the
	// same line (message-race guard).
	pendingFwds map[mem.Addr][]stalledFwd

	// Stats counts hits, misses, reserve stalls, etc.
	Stats *stats.Counters
}

type stalledFwd struct {
	src interconnect.NodeID
	msg Msg
}

// New builds a cache attached to the fabric.
func New(id interconnect.NodeID, engine *sim.Engine, fabric interconnect.Fabric, dir interconnect.NodeID, hitLat sim.Time) *Cache {
	if hitLat < 1 {
		hitLat = 1
	}
	c := &Cache{
		ID:          id,
		engine:      engine,
		fabric:      fabric,
		dir:         dir,
		hitLat:      hitLat,
		lines:       make(map[mem.Addr]*line),
		mshrs:       make(map[mem.Addr]*mshr),
		pendingFwds: make(map[mem.Addr][]stalledFwd),
		Stats:       stats.NewCounters(),
	}
	fabric.Attach(id, c)
	return c
}

// Counter returns the outstanding-access counter.
func (c *Cache) Counter() int { return c.counter }

// OnCounterZero registers fn to run when the counter reads zero (immediately
// if it already does).
func (c *Cache) OnCounterZero(fn func()) {
	if c.counter == 0 {
		fn()
		return
	}
	c.onCounterZero = append(c.onCounterZero, fn)
}

// Busy reports whether an outstanding transaction exists for the address.
func (c *Cache) Busy(a mem.Addr) bool { return c.mshrs[a] != nil }

// OnFree registers fn to run when the address's MSHR clears (immediately if
// free).
func (c *Cache) OnFree(a mem.Addr, fn func()) {
	m := c.mshrs[a]
	if m == nil {
		fn()
		return
	}
	m.onFree = append(m.onFree, fn)
}

// State returns the line's current state (Invalid if absent).
func (c *Cache) State(a mem.Addr) LineState {
	if l := c.lines[a]; l != nil {
		return l.state
	}
	return Invalid
}

// incCounter / decCounter maintain the paper's counter and fire zero-events.
func (c *Cache) incCounter() { c.counter++ }

func (c *Cache) decCounter() {
	c.counter--
	if c.counter < 0 {
		panic(fmt.Sprintf("cache %d: counter went negative", c.ID))
	}
	if c.counter == 0 {
		// "All reserve bits are reset when the counter reads zero."
		for _, l := range c.lines {
			l.reserved = false
		}
		cbs := c.onCounterZero
		c.onCounterZero = nil
		for _, fn := range cbs {
			fn()
		}
		// Service remote synchronization requests stalled on reserve bits.
		stalled := c.stalledFwds
		c.stalledFwds = nil
		for _, s := range stalled {
			c.serviceFwd(s.src, s.msg)
		}
	}
}

// AcquireShared ensures the line is at least Shared and calls done with its
// value. Callbacks run *synchronously* with the decision (hit) or with Data
// arrival (miss), so the line state they observe cannot be stolen by a
// concurrent forward in between; the processor charges hit latency itself
// before its next step.
func (c *Cache) AcquireShared(a mem.Addr, sync bool, done func(v mem.Value)) {
	if l := c.lines[a]; l != nil && l.state != Invalid {
		c.Stats.Add("hits", 1)
		done(l.value)
		return
	}
	if c.mshrs[a] != nil {
		panic(fmt.Sprintf("cache %d: AcquireShared with busy MSHR for x%d", c.ID, a))
	}
	c.Stats.Add("read_misses", 1)
	c.incCounter()
	c.mshrs[a] = &mshr{onData: func(v mem.Value) { done(v) }}
	c.fabric.Send(c.ID, c.dir, Msg{Kind: MsgGetS, Addr: a, Sync: sync})
}

// AcquireExclusive ensures the line is Exclusive. committed runs at the
// commit point with the line's pre-access value (the caller then applies its
// write via WriteLocal); performed runs when the access is globally performed
// (nil allowed). sync marks a synchronization access. Like AcquireShared,
// callbacks are synchronous with the moment the line is exclusively held, so
// WriteLocal/Reserve inside committed can never observe a stolen line.
func (c *Cache) AcquireExclusive(a mem.Addr, sync bool, committed func(old mem.Value), performed func()) {
	if l := c.lines[a]; l != nil && l.state == Exclusive {
		// Sole copy: commit and global performance coincide.
		c.Stats.Add("hits", 1)
		committed(l.value)
		if performed != nil {
			performed()
		}
		return
	}
	if c.mshrs[a] != nil {
		panic(fmt.Sprintf("cache %d: AcquireExclusive with busy MSHR for x%d", c.ID, a))
	}
	c.Stats.Add("write_misses", 1)
	c.incCounter()
	c.mshrs[a] = &mshr{exclusive: true, onData: committed, onPerformed: performed}
	c.fabric.Send(c.ID, c.dir, Msg{Kind: MsgGetX, Addr: a, Sync: sync})
}

// WriteUpdate performs a data write under the write-update protocol: the
// local copy (if any) commits immediately; the value travels to the directory,
// which updates memory and multicasts it to the other sharers. performed runs
// when every sharer has acknowledged (nil allowed). Exclusive hits complete
// locally like in the invalidation protocol. The caller must have checked
// Busy first.
func (c *Cache) WriteUpdate(a mem.Addr, v mem.Value, performed func()) {
	if l := c.lines[a]; l != nil && l.state == Exclusive {
		c.Stats.Add("hits", 1)
		l.value = v
		if performed != nil {
			performed()
		}
		return
	}
	if c.mshrs[a] != nil {
		panic(fmt.Sprintf("cache %d: WriteUpdate with busy MSHR for x%d", c.ID, a))
	}
	if l := c.lines[a]; l != nil {
		l.value = v // provisional local commit; directory order prevails
	}
	c.Stats.Add("update_writes", 1)
	c.incCounter()
	c.mshrs[a] = &mshr{exclusive: true, update: true, dataArrived: true, onPerformed: performed}
	c.fabric.Send(c.ID, c.dir, Msg{Kind: MsgUpdateReq, Addr: a, Value: v})
}

// onUpdate applies a directory-serialized update to the local copy.
func (c *Cache) onUpdate(msg Msg) {
	if l := c.lines[msg.Addr]; l != nil {
		l.value = msg.Value
	} else if m := c.mshrs[msg.Addr]; m != nil && !m.dataArrived {
		// The update overtook our pending fill: remember it so the fill
		// installs the newer value.
		v := msg.Value
		m.updateOverride = &v
	}
	c.Stats.Add("updates_received", 1)
	c.fabric.Send(c.ID, c.dir, Msg{Kind: MsgUpdateAck, Addr: msg.Addr})
}

// WriteLocal commits a value into an Exclusive line. It is called by the
// processor inside a committed callback (or on an exclusive hit).
func (c *Cache) WriteLocal(a mem.Addr, v mem.Value) {
	l := c.lines[a]
	if l == nil || l.state != Exclusive {
		panic(fmt.Sprintf("cache %d: WriteLocal to non-exclusive line x%d", c.ID, a))
	}
	l.value = v
}

// Reserve sets the reserve bit on an Exclusive line; the bit clears
// automatically when the counter reads zero.
func (c *Cache) Reserve(a mem.Addr) {
	l := c.lines[a]
	if l == nil || l.state != Exclusive {
		panic(fmt.Sprintf("cache %d: Reserve on non-exclusive line x%d", c.ID, a))
	}
	if c.counter == 0 {
		return // nothing outstanding: reservation would clear immediately
	}
	l.reserved = true
	c.Stats.Add("reserves_set", 1)
}

// Reserved reports whether the line currently has its reserve bit set.
func (c *Cache) Reserved(a mem.Addr) bool {
	l := c.lines[a]
	return l != nil && l.reserved
}

// Deliver implements interconnect.Endpoint.
func (c *Cache) Deliver(src interconnect.NodeID, m interconnect.Message) {
	msg, ok := m.(Msg)
	if !ok {
		panic(fmt.Sprintf("cache %d: non-protocol message %T", c.ID, m))
	}
	switch msg.Kind {
	case MsgData:
		c.onDataArrival(msg)
	case MsgWriteAck:
		c.onWriteAck(msg)
	case MsgInv:
		c.onInv(src, msg)
	case MsgUpdate:
		c.onUpdate(msg)
	case MsgFwdS, MsgFwdX:
		c.onFwd(src, msg)
	default:
		panic(fmt.Sprintf("cache %d: unexpected %s", c.ID, msg.Kind))
	}
}

func (c *Cache) onDataArrival(msg Msg) {
	m := c.mshrs[msg.Addr]
	if m == nil {
		panic(fmt.Sprintf("cache %d: Data for x%d with no MSHR", c.ID, msg.Addr))
	}
	v := msg.Value
	if m.updateOverride != nil {
		// A directory-serialized update overtook this fill: install (and
		// return) the newer value — the access legally serializes after it.
		v = *m.updateOverride
	}
	m.dataArrived = true
	m.value = v
	m.excl = msg.Excl
	if msg.Performed {
		m.performed = true
	}
	// Install the line at commit.
	st := Shared
	if msg.Excl {
		st = Exclusive
	}
	if m.invWhilePend && !msg.Excl {
		// An invalidation overtook this read: bind the value to the waiting
		// read but do not cache the line.
		st = Invalid
	}
	if st == Invalid {
		delete(c.lines, msg.Addr)
	} else {
		c.lines[msg.Addr] = &line{state: st, value: v}
	}
	// Synchronous with installation: the committed callback (which applies
	// the processor's write) runs before any other message can touch the
	// line.
	if m.onData != nil {
		m.onData(v)
	}
	c.maybeCompleteMSHR(msg.Addr, m)
}

func (c *Cache) onWriteAck(msg Msg) {
	m := c.mshrs[msg.Addr]
	if m == nil {
		panic(fmt.Sprintf("cache %d: WriteAck for x%d with no MSHR", c.ID, msg.Addr))
	}
	m.performed = true
	c.maybeCompleteMSHR(msg.Addr, m)
}

// maybeCompleteMSHR retires the transaction once all its parts are in:
// reads need Data; writes need Data plus global performance.
func (c *Cache) maybeCompleteMSHR(a mem.Addr, m *mshr) {
	if c.mshrs[a] != m || !m.dataArrived {
		return
	}
	if m.exclusive && !m.performed {
		return
	}
	delete(c.mshrs, a)
	if m.exclusive && m.onPerformed != nil {
		m.onPerformed()
	}
	c.decCounter()
	frees := m.onFree
	m.onFree = nil
	for _, fn := range frees {
		fn()
	}
	// Forwards that raced ahead of our Data can be serviced now.
	if pend := c.pendingFwds[a]; len(pend) > 0 {
		delete(c.pendingFwds, a)
		for _, f := range pend {
			c.onFwd(f.src, f.msg)
		}
	}
}

func (c *Cache) onInv(src interconnect.NodeID, msg Msg) {
	if m := c.mshrs[msg.Addr]; m != nil && !m.dataArrived {
		// The invalidation overtook our pending fill.
		m.invWhilePend = true
	}
	if l := c.lines[msg.Addr]; l != nil {
		delete(c.lines, msg.Addr)
	}
	c.Stats.Add("invalidations", 1)
	c.fabric.Send(c.ID, c.dir, Msg{Kind: MsgInvAck, Addr: msg.Addr})
}

// onFwd handles FwdS/FwdX from the directory: supply the line to the
// requester. Synchronization requests for a reserved line stall until the
// counter reads zero.
func (c *Cache) onFwd(src interconnect.NodeID, msg Msg) {
	// A transaction of our own is still in flight for this line (our Data
	// has not arrived, or our write is not yet performed): park the forward
	// until the MSHR completes so the local access stays atomic.
	if c.mshrs[msg.Addr] != nil {
		c.pendingFwds[msg.Addr] = append(c.pendingFwds[msg.Addr], stalledFwd{src, msg})
		return
	}
	l := c.lines[msg.Addr]
	if l == nil || l.state != Exclusive {
		panic(fmt.Sprintf("cache %d: %s for x%d we do not own", c.ID, msg.Kind, msg.Addr))
	}
	if msg.Sync && l.reserved {
		// Section 5.3: a synchronization request routed to a processor is
		// serviced only if the reserve bit is reset; otherwise it is
		// stalled until the counter reads zero.
		c.Stats.Add("reserve_stalls", 1)
		c.stalledFwds = append(c.stalledFwds, stalledFwd{src, msg})
		return
	}
	c.serviceFwd(src, msg)
}

func (c *Cache) serviceFwd(src interconnect.NodeID, msg Msg) {
	l := c.lines[msg.Addr]
	if l == nil || l.state != Exclusive {
		panic(fmt.Sprintf("cache %d: servicing %s for x%d we no longer own", c.ID, msg.Kind, msg.Addr))
	}
	switch msg.Kind {
	case MsgFwdS:
		l.state = Shared
		l.reserved = false
		c.fabric.Send(c.ID, msg.Requester, Msg{Kind: MsgData, Addr: msg.Addr, Value: l.value, Performed: true})
		c.fabric.Send(c.ID, c.dir, Msg{Kind: MsgDowngrade, Addr: msg.Addr, Value: l.value})
	case MsgFwdX:
		v := l.value
		delete(c.lines, msg.Addr)
		c.fabric.Send(c.ID, msg.Requester, Msg{Kind: MsgData, Addr: msg.Addr, Value: v, Excl: true, Performed: true})
		c.fabric.Send(c.ID, c.dir, Msg{Kind: MsgTransfer, Addr: msg.Addr, Value: v})
	default:
		panic(fmt.Sprintf("cache %d: serviceFwd of %s", c.ID, msg.Kind))
	}
}

// Snoop returns the cached value for final-state collection after a run (the
// machine asks the owner first, then memory).
func (c *Cache) Snoop(a mem.Addr) (mem.Value, LineState) {
	if l := c.lines[a]; l != nil {
		return l.value, l.state
	}
	return 0, Invalid
}
